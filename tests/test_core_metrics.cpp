// Tests for NDR/ARR accounting and Pareto-front extraction.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "math/check.hpp"

namespace {

using hbrp::core::ConfusionMatrix;
using hbrp::core::OperatingPoint;
using hbrp::core::pareto_front;
using hbrp::ecg::BeatClass;

TEST(Confusion, EmptyMatrix) {
  const ConfusionMatrix cm;
  EXPECT_EQ(cm.total(), 0u);
  EXPECT_DOUBLE_EQ(cm.ndr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.arr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.flagged_fraction(), 0.0);
}

TEST(Confusion, NdrCountsOnlyTrueNormals) {
  ConfusionMatrix cm;
  cm.add(BeatClass::N, BeatClass::N);
  cm.add(BeatClass::N, BeatClass::N);
  cm.add(BeatClass::N, BeatClass::V);        // normal flagged -> hurts NDR
  cm.add(BeatClass::N, BeatClass::Unknown);  // also hurts NDR
  EXPECT_DOUBLE_EQ(cm.ndr(), 0.5);
  EXPECT_EQ(cm.total_normal(), 4u);
}

TEST(Confusion, ArrCountsUnknownAsRecognized) {
  ConfusionMatrix cm;
  cm.add(BeatClass::V, BeatClass::V);        // recognized
  cm.add(BeatClass::V, BeatClass::L);        // wrong class, still recognized
  cm.add(BeatClass::L, BeatClass::Unknown);  // recognized
  cm.add(BeatClass::L, BeatClass::N);        // missed!
  EXPECT_DOUBLE_EQ(cm.arr(), 0.75);
  EXPECT_EQ(cm.total_abnormal(), 4u);
}

TEST(Confusion, FlaggedFraction) {
  ConfusionMatrix cm;
  cm.add(BeatClass::N, BeatClass::N);
  cm.add(BeatClass::N, BeatClass::V);
  cm.add(BeatClass::V, BeatClass::V);
  cm.add(BeatClass::L, BeatClass::N);
  EXPECT_DOUBLE_EQ(cm.flagged_fraction(), 0.5);
}

TEST(Confusion, Accuracy) {
  ConfusionMatrix cm;
  cm.add(BeatClass::N, BeatClass::N);
  cm.add(BeatClass::V, BeatClass::V);
  cm.add(BeatClass::L, BeatClass::L);
  cm.add(BeatClass::L, BeatClass::Unknown);  // U counts as wrong
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
}

TEST(Confusion, UnknownTruthRejected) {
  ConfusionMatrix cm;
  EXPECT_THROW(cm.add(BeatClass::Unknown, BeatClass::N), hbrp::Error);
  EXPECT_THROW(cm.count(BeatClass::Unknown, BeatClass::N), hbrp::Error);
}

TEST(Confusion, MergeAddsCounts) {
  ConfusionMatrix a, b;
  a.add(BeatClass::N, BeatClass::N);
  b.add(BeatClass::N, BeatClass::V);
  b.add(BeatClass::V, BeatClass::V);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_DOUBLE_EQ(a.ndr(), 0.5);
  EXPECT_DOUBLE_EQ(a.arr(), 1.0);
}

TEST(Pareto, RemovesDominatedPoints) {
  std::vector<OperatingPoint> pts = {
      {0.0, 0.95, 0.90},
      {0.1, 0.93, 0.95},
      {0.2, 0.94, 0.94},  // dominated by the 0.1 point? no: lower ARR but
                          // also lower NDR than 0.95@0.90? dominated by
                          // neither on ARR, but 0.1 point has ARR 0.95 and
                          // NDR 0.93 < 0.94 -> 0.2 point survives
      {0.3, 0.80, 0.93},  // dominated (0.94 NDR at ARR 0.94 beats it)
  };
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].arr, 0.90);
  EXPECT_DOUBLE_EQ(front[1].arr, 0.94);
  EXPECT_DOUBLE_EQ(front[2].arr, 0.95);
  // NDR decreases as ARR increases along a proper front.
  EXPECT_GE(front[0].ndr, front[1].ndr);
  EXPECT_GE(front[1].ndr, front[2].ndr);
}

TEST(Pareto, SinglePointAndEmpty) {
  EXPECT_TRUE(pareto_front({}).empty());
  const auto front = pareto_front({{0.5, 0.9, 0.97}});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_DOUBLE_EQ(front[0].alpha, 0.5);
}

TEST(Pareto, EqualArrKeepsBestNdr) {
  const auto front = pareto_front({{0.0, 0.90, 0.97}, {0.1, 0.95, 0.97}});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_DOUBLE_EQ(front[0].ndr, 0.95);
}

using hbrp::core::AamiClass;
using hbrp::core::AamiConfusion;
using hbrp::core::to_aami;

TEST(Aami, BeatClassMapping) {
  // L is a conduction-pattern normal under EC57; Unknown maps to Q.
  EXPECT_EQ(to_aami(BeatClass::N), AamiClass::N);
  EXPECT_EQ(to_aami(BeatClass::L), AamiClass::N);
  EXPECT_EQ(to_aami(BeatClass::V), AamiClass::V);
  EXPECT_EQ(to_aami(BeatClass::Unknown), AamiClass::Q);
  EXPECT_FALSE(hbrp::core::is_aami_abnormal(AamiClass::N));
  EXPECT_TRUE(hbrp::core::is_aami_abnormal(AamiClass::Q));
}

TEST(Aami, SensitivityIncludesMisses) {
  AamiConfusion cm;
  cm.add(AamiClass::V, AamiClass::V);
  cm.add(AamiClass::V, AamiClass::V);
  cm.add(AamiClass::V, AamiClass::N);
  cm.add_missed(AamiClass::V);  // undetected beats count against recall
  EXPECT_DOUBLE_EQ(cm.sensitivity(AamiClass::V), 2.0 / 4.0);
  EXPECT_EQ(cm.total_truth(), 4u);
  EXPECT_EQ(cm.total_matched(), 3u);
}

TEST(Aami, PpvIncludesFalseDetections) {
  AamiConfusion cm;
  cm.add(AamiClass::V, AamiClass::V);
  cm.add(AamiClass::N, AamiClass::V);
  cm.add_false_detection(AamiClass::V);  // noise spike called a beat
  EXPECT_DOUBLE_EQ(cm.ppv(AamiClass::V), 1.0 / 3.0);
}

TEST(Aami, NdrArrLiftedOntoAamiTaxonomy) {
  AamiConfusion cm;
  cm.add(AamiClass::N, AamiClass::N);
  cm.add(AamiClass::N, AamiClass::N);
  cm.add(AamiClass::N, AamiClass::V);  // false alarm on a normal
  cm.add(AamiClass::V, AamiClass::V);
  cm.add(AamiClass::S, AamiClass::Q);  // escalated-to-unknown counts as
                                       // recognized abnormal
  cm.add(AamiClass::F, AamiClass::N);  // abnormal lost as normal
  cm.add_missed(AamiClass::V);         // missed abnormal hurts ARR
  EXPECT_DOUBLE_EQ(cm.ndr(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.arr(), 2.0 / 4.0);
}

TEST(Aami, MergeAddsAllThreeAccounts) {
  AamiConfusion a, b;
  a.add(AamiClass::N, AamiClass::N);
  a.add_missed(AamiClass::V);
  b.add(AamiClass::N, AamiClass::N);
  b.add_false_detection(AamiClass::Q);
  a.merge(b);
  EXPECT_EQ(a.count(AamiClass::N, AamiClass::N), 2u);
  EXPECT_EQ(a.missed(AamiClass::V), 1u);
  EXPECT_EQ(a.false_detections(AamiClass::Q), 1u);
  EXPECT_EQ(a.total_truth(), 3u);
}

}  // namespace
