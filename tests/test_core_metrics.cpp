// Tests for NDR/ARR accounting and Pareto-front extraction.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "math/check.hpp"

namespace {

using hbrp::core::ConfusionMatrix;
using hbrp::core::OperatingPoint;
using hbrp::core::pareto_front;
using hbrp::ecg::BeatClass;

TEST(Confusion, EmptyMatrix) {
  const ConfusionMatrix cm;
  EXPECT_EQ(cm.total(), 0u);
  EXPECT_DOUBLE_EQ(cm.ndr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.arr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.flagged_fraction(), 0.0);
}

TEST(Confusion, NdrCountsOnlyTrueNormals) {
  ConfusionMatrix cm;
  cm.add(BeatClass::N, BeatClass::N);
  cm.add(BeatClass::N, BeatClass::N);
  cm.add(BeatClass::N, BeatClass::V);        // normal flagged -> hurts NDR
  cm.add(BeatClass::N, BeatClass::Unknown);  // also hurts NDR
  EXPECT_DOUBLE_EQ(cm.ndr(), 0.5);
  EXPECT_EQ(cm.total_normal(), 4u);
}

TEST(Confusion, ArrCountsUnknownAsRecognized) {
  ConfusionMatrix cm;
  cm.add(BeatClass::V, BeatClass::V);        // recognized
  cm.add(BeatClass::V, BeatClass::L);        // wrong class, still recognized
  cm.add(BeatClass::L, BeatClass::Unknown);  // recognized
  cm.add(BeatClass::L, BeatClass::N);        // missed!
  EXPECT_DOUBLE_EQ(cm.arr(), 0.75);
  EXPECT_EQ(cm.total_abnormal(), 4u);
}

TEST(Confusion, FlaggedFraction) {
  ConfusionMatrix cm;
  cm.add(BeatClass::N, BeatClass::N);
  cm.add(BeatClass::N, BeatClass::V);
  cm.add(BeatClass::V, BeatClass::V);
  cm.add(BeatClass::L, BeatClass::N);
  EXPECT_DOUBLE_EQ(cm.flagged_fraction(), 0.5);
}

TEST(Confusion, Accuracy) {
  ConfusionMatrix cm;
  cm.add(BeatClass::N, BeatClass::N);
  cm.add(BeatClass::V, BeatClass::V);
  cm.add(BeatClass::L, BeatClass::L);
  cm.add(BeatClass::L, BeatClass::Unknown);  // U counts as wrong
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
}

TEST(Confusion, UnknownTruthRejected) {
  ConfusionMatrix cm;
  EXPECT_THROW(cm.add(BeatClass::Unknown, BeatClass::N), hbrp::Error);
  EXPECT_THROW(cm.count(BeatClass::Unknown, BeatClass::N), hbrp::Error);
}

TEST(Confusion, MergeAddsCounts) {
  ConfusionMatrix a, b;
  a.add(BeatClass::N, BeatClass::N);
  b.add(BeatClass::N, BeatClass::V);
  b.add(BeatClass::V, BeatClass::V);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_DOUBLE_EQ(a.ndr(), 0.5);
  EXPECT_DOUBLE_EQ(a.arr(), 1.0);
}

TEST(Pareto, RemovesDominatedPoints) {
  std::vector<OperatingPoint> pts = {
      {0.0, 0.95, 0.90},
      {0.1, 0.93, 0.95},
      {0.2, 0.94, 0.94},  // dominated by the 0.1 point? no: lower ARR but
                          // also lower NDR than 0.95@0.90? dominated by
                          // neither on ARR, but 0.1 point has ARR 0.95 and
                          // NDR 0.93 < 0.94 -> 0.2 point survives
      {0.3, 0.80, 0.93},  // dominated (0.94 NDR at ARR 0.94 beats it)
  };
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].arr, 0.90);
  EXPECT_DOUBLE_EQ(front[1].arr, 0.94);
  EXPECT_DOUBLE_EQ(front[2].arr, 0.95);
  // NDR decreases as ARR increases along a proper front.
  EXPECT_GE(front[0].ndr, front[1].ndr);
  EXPECT_GE(front[1].ndr, front[2].ndr);
}

TEST(Pareto, SinglePointAndEmpty) {
  EXPECT_TRUE(pareto_front({}).empty());
  const auto front = pareto_front({{0.5, 0.9, 0.97}});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_DOUBLE_EQ(front[0].alpha, 0.5);
}

TEST(Pareto, EqualArrKeepsBestNdr) {
  const auto front = pareto_front({{0.0, 0.90, 0.97}, {0.1, 0.95, 0.97}});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_DOUBLE_EQ(front[0].ndr, 0.95);
}

}  // namespace
