// Tests for the scaled conjugate gradient optimizer on standard problems.
#include <gtest/gtest.h>

#include <cmath>

#include "math/check.hpp"
#include "opt/scg.hpp"

namespace {

using hbrp::opt::minimize_scg;
using hbrp::opt::Objective;
using hbrp::opt::ScgOptions;

// f(x) = sum c_i (x_i - t_i)^2 — convex quadratic with known minimum.
class Quadratic final : public Objective {
 public:
  Quadratic(std::vector<double> scale, std::vector<double> target)
      : scale_(std::move(scale)), target_(std::move(target)) {}
  std::size_t dimension() const override { return scale_.size(); }
  double eval(std::span<const double> x, std::span<double> g) override {
    double f = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - target_[i];
      f += scale_[i] * d * d;
      g[i] = 2.0 * scale_[i] * d;
    }
    return f;
  }

 private:
  std::vector<double> scale_, target_;
};

// Rosenbrock in n dimensions — the classic ill-conditioned valley.
class Rosenbrock final : public Objective {
 public:
  explicit Rosenbrock(std::size_t n) : n_(n) {}
  std::size_t dimension() const override { return n_; }
  double eval(std::span<const double> x, std::span<double> g) override {
    double f = 0.0;
    std::fill(g.begin(), g.end(), 0.0);
    for (std::size_t i = 0; i + 1 < n_; ++i) {
      const double a = x[i + 1] - x[i] * x[i];
      const double b = 1.0 - x[i];
      f += 100.0 * a * a + b * b;
      g[i] += -400.0 * a * x[i] - 2.0 * b;
      g[i + 1] += 200.0 * a;
    }
    return f;
  }

 private:
  std::size_t n_;
};

TEST(Scg, SolvesWellConditionedQuadratic) {
  Quadratic q({1.0, 1.0, 1.0}, {2.0, -3.0, 0.5});
  std::vector<double> x = {10.0, 10.0, 10.0};
  const auto r = minimize_scg(q, x);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 2.0, 1e-4);
  EXPECT_NEAR(x[1], -3.0, 1e-4);
  EXPECT_NEAR(x[2], 0.5, 1e-4);
  EXPECT_LT(r.final_loss, 1e-8);
}

TEST(Scg, SolvesIllConditionedQuadratic) {
  // Condition number 1e4.
  Quadratic q({1.0, 100.0, 10000.0}, {1.0, 2.0, 3.0});
  std::vector<double> x = {0.0, 0.0, 0.0};
  ScgOptions opt;
  opt.max_iterations = 500;
  const auto r = minimize_scg(q, x, opt);
  EXPECT_NEAR(x[0], 1.0, 1e-3);
  EXPECT_NEAR(x[1], 2.0, 1e-3);
  EXPECT_NEAR(x[2], 3.0, 1e-3);
  EXPECT_LT(r.final_loss, 1e-5);
}

TEST(Scg, DescendsRosenbrock) {
  Rosenbrock f(4);
  std::vector<double> x = {-1.2, 1.0, -1.2, 1.0};
  ScgOptions opt;
  opt.max_iterations = 2000;
  const auto r = minimize_scg(f, x, opt);
  EXPECT_LT(r.final_loss, 1e-3);
  for (double xi : x) EXPECT_NEAR(xi, 1.0, 0.1);
}

TEST(Scg, LossIsMonotoneNonIncreasing) {
  Rosenbrock f(6);
  std::vector<double> x(6, 0.0);
  const auto r = minimize_scg(f, x);
  ASSERT_GE(r.history.size(), 2u);
  for (std::size_t i = 1; i < r.history.size(); ++i)
    EXPECT_LE(r.history[i], r.history[i - 1] + 1e-12);
}

TEST(Scg, StartingAtOptimumConvergesImmediately) {
  Quadratic q({1.0, 2.0}, {0.0, 0.0});
  std::vector<double> x = {0.0, 0.0};
  const auto r = minimize_scg(q, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 3);
  EXPECT_DOUBLE_EQ(r.final_loss, 0.0);
}

TEST(Scg, RespectsIterationBudget) {
  Rosenbrock f(10);
  std::vector<double> x(10, -2.0);
  ScgOptions opt;
  opt.max_iterations = 5;
  const auto r = minimize_scg(f, x, opt);
  EXPECT_LE(r.iterations, 5);
  EXPECT_LT(r.final_loss, r.initial_loss);  // still made progress
}

TEST(Scg, SizeMismatchThrows) {
  Quadratic q({1.0}, {0.0});
  std::vector<double> x = {0.0, 1.0};
  EXPECT_THROW(minimize_scg(q, x), hbrp::Error);
}

TEST(Scg, InvalidOptionsThrow) {
  Quadratic q({1.0}, {0.0});
  std::vector<double> x = {1.0};
  ScgOptions opt;
  opt.max_iterations = 0;
  EXPECT_THROW(minimize_scg(q, x, opt), hbrp::Error);
}

TEST(Scg, InitialLossReported) {
  Quadratic q({1.0}, {0.0});
  std::vector<double> x = {3.0};
  const auto r = minimize_scg(q, x);
  EXPECT_DOUBLE_EQ(r.initial_loss, 9.0);
}

}  // namespace
