// Tests for the MMD operator and multi-lead wave delineation, validated
// against the generator's analytic fiducials.
#include <gtest/gtest.h>

#include <cmath>

#include "delineation/mmd.hpp"
#include "dsp/morphology.hpp"
#include "ecg/synth.hpp"
#include "math/check.hpp"

namespace {

using hbrp::delineation::compare_fiducials;
using hbrp::delineation::delineate_beat;
using hbrp::delineation::delineate_beat_multilead;
using hbrp::delineation::mmd;
using hbrp::dsp::Signal;
using hbrp::ecg::Fiducials;

TEST(Mmd, ZeroOnLinearRamp) {
  // dilate + erode - 2x == 0 for affine signals (max+min symmetric).
  Signal x(200);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<int>(3 * i);
  const Signal m = mmd(x, 9);
  for (std::size_t i = 10; i + 10 < x.size(); ++i) EXPECT_EQ(m[i], 0);
}

TEST(Mmd, NegativeAtPeakPositiveAtValley) {
  Signal x(100, 0);
  x[50] = 100;   // peak
  x[20] = -100;  // valley
  const Signal m = mmd(x, 5);
  EXPECT_LT(m[50], 0);
  EXPECT_GT(m[20], 0);
}

TEST(Mmd, RespondsAtWaveBoundaries) {
  // A flat-top pulse: MMD at the pulse scale is positive at the corners.
  Signal x(300, 0);
  for (std::size_t i = 100; i < 160; ++i) x[i] = 200;
  const Signal m = mmd(x, 31);
  EXPECT_GT(m[99], 0);   // onset corner (concave-up)
  EXPECT_GT(m[160], 0);  // end corner
}

hbrp::ecg::Record clean_record(hbrp::ecg::RecordProfile profile,
                               std::uint64_t seed) {
  hbrp::ecg::SynthConfig cfg;
  cfg.profile = profile;
  cfg.duration_s = 60.0;
  cfg.noise_scale = 0.25;  // light noise: delineation quality test
  cfg.seed = seed;
  return hbrp::ecg::generate_record(cfg);
}

std::vector<Signal> conditioned_leads(const hbrp::ecg::Record& rec) {
  std::vector<Signal> out;
  for (const auto& lead : rec.leads)
    out.push_back(hbrp::dsp::condition_ecg(lead));
  return out;
}

TEST(Delineate, QrsBoundariesWithinTolerance) {
  const auto rec = clean_record(hbrp::ecg::RecordProfile::NormalSinus, 1);
  const auto leads = conditioned_leads(rec);
  double onset_err = 0.0, end_err = 0.0;
  std::size_t n = 0;
  for (const auto& b : rec.beats) {
    if (b.sample < 400 || b.sample + 400 >= leads[0].size()) continue;
    const Fiducials f = delineate_beat(leads[0], b.sample);
    ASSERT_NE(f.qrs_onset, Fiducials::kNoFiducial);
    onset_err += std::abs(static_cast<double>(f.qrs_onset) -
                          static_cast<double>(b.fiducials.qrs_onset));
    end_err += std::abs(static_cast<double>(f.qrs_end) -
                        static_cast<double>(b.fiducials.qrs_end));
    ++n;
  }
  ASSERT_GT(n, 30u);
  // 360 Hz: 10 samples ~ 28 ms.
  EXPECT_LT(onset_err / static_cast<double>(n), 12.0);
  EXPECT_LT(end_err / static_cast<double>(n), 14.0);
}

TEST(Delineate, PWavePresenceMatchesClass) {
  const auto rec = clean_record(hbrp::ecg::RecordProfile::PvcOccasional, 2);
  const auto leads = conditioned_leads(rec);
  std::size_t correct = 0, total = 0;
  for (const auto& b : rec.beats) {
    if (b.sample < 400 || b.sample + 400 >= leads[0].size()) continue;
    const Fiducials f = delineate_beat_multilead(leads, b.sample);
    ++total;
    correct += (f.has_p() == b.fiducials.has_p());
  }
  ASSERT_GT(total, 30u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.8);
}

TEST(Delineate, TPeakLocatedOnNormalBeats) {
  const auto rec = clean_record(hbrp::ecg::RecordProfile::NormalSinus, 3);
  const auto leads = conditioned_leads(rec);
  double err = 0.0;
  std::size_t n = 0, found = 0, total = 0;
  for (const auto& b : rec.beats) {
    if (b.sample < 400 || b.sample + 400 >= leads[0].size()) continue;
    const Fiducials f = delineate_beat(leads[0], b.sample);
    ++total;
    if (f.t_peak == Fiducials::kNoFiducial) continue;
    ++found;
    err += std::abs(static_cast<double>(f.t_peak) -
                    static_cast<double>(b.fiducials.t_peak));
    ++n;
  }
  ASSERT_GT(total, 30u);
  EXPECT_GT(static_cast<double>(found) / static_cast<double>(total), 0.9);
  EXPECT_LT(err / static_cast<double>(n), 15.0);
}

TEST(Delineate, MultileadFusionRejectsOneBadLead) {
  const auto rec = clean_record(hbrp::ecg::RecordProfile::NormalSinus, 4);
  auto leads = conditioned_leads(rec);
  // Destroy lead 2 with an implausible constant.
  std::fill(leads[2].begin(), leads[2].end(), 0);
  const auto& b = rec.beats[rec.beats.size() / 2];
  const Fiducials fused = delineate_beat_multilead(leads, b.sample);
  EXPECT_NE(fused.qrs_onset, Fiducials::kNoFiducial);
  EXPECT_NEAR(static_cast<double>(fused.qrs_onset),
              static_cast<double>(b.fiducials.qrs_onset), 15.0);
}

TEST(Delineate, RPeakPropagatedVerbatim) {
  const auto rec = clean_record(hbrp::ecg::RecordProfile::NormalSinus, 5);
  const auto leads = conditioned_leads(rec);
  const auto& b = rec.beats[5];
  EXPECT_EQ(delineate_beat(leads[0], b.sample).r_peak, b.sample);
  EXPECT_EQ(delineate_beat_multilead(leads, b.sample).r_peak, b.sample);
}

TEST(Delineate, EdgeBeatsDoNotCrash) {
  const auto rec = clean_record(hbrp::ecg::RecordProfile::NormalSinus, 6);
  const auto leads = conditioned_leads(rec);
  EXPECT_NO_THROW(delineate_beat(leads[0], 0));
  EXPECT_NO_THROW(delineate_beat(leads[0], leads[0].size() - 1));
}

TEST(Delineate, InvalidArgsThrow) {
  Signal x(100, 0);
  hbrp::delineation::DelineatorConfig cfg;
  cfg.fs_hz = 0;
  EXPECT_THROW(delineate_beat(x, 50, cfg), hbrp::Error);
  EXPECT_THROW(delineate_beat(x, 100), hbrp::Error);
  EXPECT_THROW(delineate_beat_multilead({}, 0), hbrp::Error);
}

TEST(CompareFiducials, CountsAndErrors) {
  Fiducials ref;
  ref.r_peak = 1000;
  ref.qrs_onset = 980;
  ref.qrs_end = 1030;
  ref.t_peak = 1110;

  Fiducials det;
  det.r_peak = 1000;
  det.qrs_onset = 985;   // off by 5
  det.qrs_end = 1027;    // off by 3
  // t_peak missed

  const auto err = compare_fiducials(det, ref);
  EXPECT_EQ(err.points_compared, 3u);
  EXPECT_EQ(err.points_missed, 1u);
  EXPECT_NEAR(err.mean_abs_error_samples, (0 + 5 + 3) / 3.0, 1e-12);
}

TEST(CompareFiducials, EmptyReference) {
  const auto err = compare_fiducials(Fiducials{}, Fiducials{});
  EXPECT_EQ(err.points_compared, 0u);
  EXPECT_EQ(err.points_missed, 0u);
  EXPECT_DOUBLE_EQ(err.mean_abs_error_samples, 0.0);
}

}  // namespace
