// Randomized round-trip sweeps of the WFDB writer/reader: arbitrary signal
// content, annotation spacings and record shapes must survive the on-disk
// format bit-exactly.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "ecg/mitdb.hpp"
#include "math/rng.hpp"

namespace {

namespace fs = std::filesystem;
using hbrp::ecg::BeatClass;
using hbrp::ecg::Record;

fs::path temp_dir(const char* tag) {
  const auto dir = fs::temp_directory_path() /
                   (std::string("hbrp_fuzz_") + tag + "_" +
                    std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

Record random_record(hbrp::math::Rng& rng, std::size_t leads, int fmt) {
  Record rec;
  rec.name = "fz" + std::to_string(rng.uniform_index(100000));
  rec.fs_hz = 360;
  const std::size_t n = 100 + rng.uniform_index(20000);
  rec.leads.resize(leads);
  for (auto& lead : rec.leads) {
    lead.resize(n);
    for (auto& v : lead) {
      // Format 212 stores 12-bit two's complement; format 16 full int16.
      v = fmt == 212 ? static_cast<int>(rng.uniform_int(-2048, 2047))
                     : static_cast<int>(rng.uniform_int(-32768, 32767));
    }
  }
  // Random annotation train with wildly varying gaps (exercises the SKIP
  // escape on both sides of the 1024-sample boundary).
  std::size_t t = rng.uniform_index(50);
  while (t < n) {
    hbrp::ecg::BeatAnnotation ann;
    ann.sample = t;
    ann.cls = static_cast<BeatClass>(rng.uniform_index(3));
    rec.beats.push_back(ann);
    t += 1 + rng.uniform_index(4000);
  }
  return rec;
}

class MitdbFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MitdbFuzz, RoundTrip212) {
  hbrp::math::Rng rng(GetParam());
  const auto dir = temp_dir("f212");
  const Record rec = random_record(rng, 2, 212);
  hbrp::ecg::mitdb::write_record(rec, dir);
  const Record back = hbrp::ecg::mitdb::read_record(dir, rec.name);
  EXPECT_EQ(back.leads, rec.leads);
  ASSERT_EQ(back.beats.size(), rec.beats.size());
  for (std::size_t i = 0; i < rec.beats.size(); ++i) {
    EXPECT_EQ(back.beats[i].sample, rec.beats[i].sample);
    EXPECT_EQ(back.beats[i].cls, rec.beats[i].cls);
  }
  fs::remove_all(dir);
}

TEST_P(MitdbFuzz, RoundTrip16) {
  hbrp::math::Rng rng(GetParam() + 1000);
  const auto dir = temp_dir("f16");
  const std::size_t leads = 1 + rng.uniform_index(3);
  Record rec = random_record(rng, leads, 16);
  hbrp::ecg::mitdb::WriteOptions opt;
  opt.signal_format = 16;
  hbrp::ecg::mitdb::write_record(rec, dir, opt);
  const Record back = hbrp::ecg::mitdb::read_record(dir, rec.name);
  EXPECT_EQ(back.leads, rec.leads);
  EXPECT_EQ(back.beats.size(), rec.beats.size());
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MitdbFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
