// Scenario-engine unit tests: deterministic compilation, episode
// semantics (RR irregularity, VT runs, pacing spikes, lead-off
// obscuration, timeline warps), RR statistics, and the AAMI verdict
// scorer. No classifier and no sockets — these are the fast checks the
// chaos/runner suite builds on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "scenario/episodes.hpp"
#include "scenario/runner.hpp"

namespace {

using namespace hbrp;
using scenario::Episode;
using scenario::EpisodeKind;
using scenario::ScenarioSpec;
using scenario::ScenarioStream;
using scenario::TruthBeat;

constexpr int kFs = dsp::kMitBihFs;

ScenarioSpec base_spec(const char* name, std::uint64_t seed = 41,
                       double duration_s = 40.0) {
  ScenarioSpec spec;
  spec.name = name;
  spec.seed = seed;
  spec.duration_s = duration_s;
  return spec;
}

TEST(ScenarioBuild, DeterministicInSeed) {
  auto spec = base_spec("det");
  spec.episodes.push_back({EpisodeKind::AfibIrregularRr, 5.0, 20.0, 1.0});
  spec.episodes.push_back({EpisodeKind::ArtefactStorm, 28.0, 6.0, 1.0});
  const auto a = scenario::build_scenario(spec);
  const auto b = scenario::build_scenario(spec);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    if (std::isnan(a.samples[i])) {
      EXPECT_TRUE(std::isnan(b.samples[i])) << i;
    } else {
      EXPECT_EQ(a.samples[i], b.samples[i]) << i;  // bit-identical
    }
  }
  ASSERT_EQ(a.truth.size(), b.truth.size());
  for (std::size_t i = 0; i < a.truth.size(); ++i) {
    EXPECT_EQ(a.truth[i].sample, b.truth[i].sample);
    EXPECT_EQ(a.truth[i].aami, b.truth[i].aami);
    EXPECT_EQ(a.truth[i].obscured, b.truth[i].obscured);
  }

  spec.seed ^= 1;
  const auto c = scenario::build_scenario(spec);
  const bool same = a.samples.size() == c.samples.size() &&
                    std::equal(a.samples.begin(), a.samples.end(),
                               c.samples.begin(), c.samples.end(),
                               [](double x, double y) {
                                 return x == y ||
                                        (std::isnan(x) && std::isnan(y));
                               });
  EXPECT_FALSE(same) << "different seed must not reproduce the stream";
}

TEST(ScenarioBuild, AfibWidensRrDistribution) {
  const auto clean = scenario::build_scenario(base_spec("clean"));
  auto spec = base_spec("afib");
  spec.episodes.push_back(
      {EpisodeKind::AfibIrregularRr, 2.0, spec.duration_s - 4.0, 1.0});
  const auto afib = scenario::build_scenario(spec);
  // The Snippet-1 discriminator features must separate the two regimes.
  EXPECT_GT(afib.rr.sdnn_ms, 3.0 * clean.rr.sdnn_ms);
  EXPECT_GT(afib.rr.rmssd_ms, 3.0 * clean.rr.rmssd_ms);
  EXPECT_GT(afib.rr.pnn50, 0.5);
  EXPECT_LT(clean.rr.pnn50, 0.4);
}

TEST(ScenarioBuild, SustainedVtRunWithFusionOnset) {
  auto spec = base_spec("vt");
  spec.episodes.push_back({EpisodeKind::SustainedVt, 15.0, 10.0, 1.0});
  const auto s = scenario::build_scenario(spec);
  std::size_t v = 0, f = 0;
  for (const TruthBeat& tb : s.truth) {
    v += tb.aami == core::AamiClass::V;
    f += tb.aami == core::AamiClass::F;
  }
  EXPECT_EQ(f, 1u) << "exactly one fusion beat at VT onset";
  // ~10 s at 150-180 bpm.
  EXPECT_GE(v, 20u);
  // Consecutive V beats run fast: median VT RR well under the sinus RR.
  std::vector<std::size_t> vt_peaks;
  for (const TruthBeat& tb : s.truth)
    if (tb.aami == core::AamiClass::V) vt_peaks.push_back(tb.sample);
  const auto rr = scenario::rr_statistics(vt_peaks, kFs);
  EXPECT_LT(rr.mean_ms, 450.0);
  EXPECT_GT(rr.mean_ms, 300.0);
}

TEST(ScenarioBuild, PacedRhythmSpikesAndQTruth) {
  auto spec = base_spec("paced");
  spec.episodes.push_back(
      {EpisodeKind::PacedRhythm, 2.0, spec.duration_s - 4.0, 1.0});
  const auto s = scenario::build_scenario(spec);
  std::size_t q = 0;
  for (const TruthBeat& tb : s.truth) q += tb.aami == core::AamiClass::Q;
  EXPECT_GT(q, s.truth.size() / 2);
  // The stimulus artefact reaches near-rail amplitudes no organic QRS in
  // this generator does.
  const double peak = *std::max_element(s.samples.begin(), s.samples.end());
  EXPECT_GT(peak, 1700.0);
}

TEST(ScenarioBuild, ElectrodeDropObscuresAndInjectsNonFinite) {
  auto spec = base_spec("drop");
  spec.episodes.push_back({EpisodeKind::ElectrodeDrop, 10.0, 15.0, 1.0});
  const auto s = scenario::build_scenario(spec);
  EXPECT_GT(s.artefact_samples, static_cast<std::size_t>(2 * kFs));
  std::size_t obscured = 0;
  for (const TruthBeat& tb : s.truth) obscured += tb.obscured;
  EXPECT_GT(obscured, 0u);
  EXPECT_LT(obscured, s.truth.size());
  const bool has_nonfinite = std::any_of(
      s.samples.begin(), s.samples.end(),
      [](double x) { return !std::isfinite(x); });
  EXPECT_TRUE(has_nonfinite) << "driver garbage must survive to the "
                                "untrusted double boundary";
}

TEST(ScenarioBuild, ClockSkewStretchesTimeline) {
  auto spec = base_spec("skew");
  const auto plain = scenario::build_scenario(spec);
  spec.episodes.push_back(
      {EpisodeKind::ClockSkew, 0.0, spec.duration_s, 0.03});
  const auto skewed = scenario::build_scenario(spec);
  const auto n = static_cast<double>(plain.samples.size());
  EXPECT_NEAR(static_cast<double>(skewed.samples.size()), 1.03 * n,
              0.002 * n);
  // Same plan, same seed: beat k is beat k, just displaced by the skew.
  ASSERT_EQ(skewed.truth.size(), plain.truth.size());
  const TruthBeat& last = skewed.truth.back();
  const TruthBeat& ref = plain.truth.back();
  EXPECT_NEAR(static_cast<double>(last.sample),
              1.03 * static_cast<double>(ref.sample),
              0.005 * static_cast<double>(ref.sample) + 3.0);
}

TEST(ScenarioBuild, RateMismatchWarpsOnlyItsSegment) {
  auto spec = base_spec("mismatch");
  const auto plain = scenario::build_scenario(spec);
  const double w0 = 15.0, wlen = 10.0, factor = 300.0 / 360.0;
  spec.episodes.push_back({EpisodeKind::RateMismatch, w0, wlen, factor});
  const auto warped = scenario::build_scenario(spec);
  EXPECT_LT(warped.samples.size(), plain.samples.size());
  ASSERT_EQ(warped.truth.size(), plain.truth.size());
  const auto before = static_cast<std::size_t>(w0 * kFs);
  const auto shift = static_cast<std::ptrdiff_t>(plain.samples.size()) -
                     static_cast<std::ptrdiff_t>(warped.samples.size());
  for (std::size_t i = 0; i < plain.truth.size(); ++i) {
    if (plain.truth[i].sample < before) {
      EXPECT_EQ(warped.truth[i].sample, plain.truth[i].sample);
    } else if (plain.truth[i].sample >=
               static_cast<std::size_t>((w0 + wlen) * kFs)) {
      EXPECT_EQ(static_cast<std::ptrdiff_t>(plain.truth[i].sample) -
                    static_cast<std::ptrdiff_t>(warped.truth[i].sample),
                shift);
    }
  }
}

TEST(ScenarioSuite, StandardScenariosCoverEveryKindOnce) {
  const auto specs = scenario::standard_scenarios(60.0, 9000);
  ASSERT_EQ(specs.size(), 10u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].seed, 9000 + i);
    EXPECT_DOUBLE_EQ(specs[i].duration_s, 60.0);
    for (std::size_t j = i + 1; j < specs.size(); ++j)
      EXPECT_NE(specs[i].name, specs[j].name);
  }
  // Every episode kind appears somewhere in the suite.
  for (const EpisodeKind k :
       {EpisodeKind::AfibIrregularRr, EpisodeKind::SustainedVt,
        EpisodeKind::PacedRhythm, EpisodeKind::ArtefactStorm,
        EpisodeKind::ElectrodeDrop, EpisodeKind::ClockSkew,
        EpisodeKind::RateMismatch, EpisodeKind::SupraventricularRun,
        EpisodeKind::MorphologyShift}) {
    const bool found = std::any_of(
        specs.begin(), specs.end(), [k](const ScenarioSpec& s) {
          return std::any_of(
              s.episodes.begin(), s.episodes.end(),
              [k](const Episode& e) { return e.kind == k; });
        });
    EXPECT_TRUE(found) << scenario::to_string(k);
  }
}

TEST(RrStatistics, KnownSequences) {
  // 360 Hz, constant RR of 360 samples = 1000 ms.
  std::vector<std::size_t> steady;
  for (std::size_t i = 0; i < 10; ++i) steady.push_back(1000 + i * 360);
  const auto s = scenario::rr_statistics(steady, kFs);
  EXPECT_NEAR(s.mean_ms, 1000.0, 1e-9);
  EXPECT_NEAR(s.sdnn_ms, 0.0, 1e-9);
  EXPECT_NEAR(s.pnn50, 0.0, 1e-9);

  // Alternating 800/1200 ms: every successive difference is 400 ms.
  std::vector<std::size_t> alt{0};
  for (std::size_t i = 0; i < 10; ++i)
    alt.push_back(alt.back() + (i % 2 == 0 ? 288 : 432));
  const auto a = scenario::rr_statistics(alt, kFs);
  EXPECT_NEAR(a.mean_ms, 1000.0, 1.0);
  EXPECT_NEAR(a.rmssd_ms, 400.0, 1.0);
  EXPECT_NEAR(a.pnn50, 1.0, 1e-9);

  EXPECT_EQ(scenario::rr_statistics({42}, kFs).mean_ms, 0.0);
}

TEST(ScoreVerdicts, MatchMissFalseAndObscured) {
  ScenarioStream stream;
  stream.fs_hz = kFs;
  stream.samples.resize(10000, 1024.0);
  stream.truth = {
      {1000, ecg::BeatClass::N, core::AamiClass::N, false},
      {2000, ecg::BeatClass::V, core::AamiClass::V, false},
      {3000, ecg::BeatClass::N, core::AamiClass::N, true},   // obscured
      {4000, ecg::BeatClass::V, core::AamiClass::V, false},  // missed
  };
  const std::vector<scenario::Verdict> verdicts = {
      {0, 1010, static_cast<std::uint8_t>(ecg::BeatClass::N), 0},
      {1, 1995, static_cast<std::uint8_t>(ecg::BeatClass::V), 0},
      {2, 6000, static_cast<std::uint8_t>(ecg::BeatClass::V), 0},  // false
  };
  const auto sc = scenario::score_verdicts(stream, verdicts);
  EXPECT_EQ(sc.truth_beats, 4u);
  EXPECT_EQ(sc.matched, 2u);
  EXPECT_EQ(sc.missed, 1u);
  EXPECT_EQ(sc.obscured, 1u);
  EXPECT_EQ(sc.false_detections, 1u);
  EXPECT_DOUBLE_EQ(sc.miss_rate, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(sc.ndr, 1.0);
  // One V recognized, one V missed.
  EXPECT_DOUBLE_EQ(sc.arr, 0.5);
  EXPECT_DOUBLE_EQ(sc.false_rate, 1.0 / 3.0);
}

TEST(ScoreVerdicts, ToleranceBoundsAreRespected) {
  ScenarioStream stream;
  stream.fs_hz = kFs;
  stream.samples.resize(5000, 1024.0);
  stream.truth = {{1000, ecg::BeatClass::N, core::AamiClass::N, false}};
  const auto tol = static_cast<std::uint64_t>(std::lround(0.15 * kFs));
  const std::vector<scenario::Verdict> inside = {
      {0, 1000 + tol, static_cast<std::uint8_t>(ecg::BeatClass::N), 0}};
  const std::vector<scenario::Verdict> outside = {
      {0, 1000 + tol + 1, static_cast<std::uint8_t>(ecg::BeatClass::N), 0}};
  EXPECT_EQ(scenario::score_verdicts(stream, inside).matched, 1u);
  EXPECT_EQ(scenario::score_verdicts(stream, outside).matched, 0u);
  EXPECT_EQ(scenario::score_verdicts(stream, outside).missed, 1u);
}

}  // namespace
