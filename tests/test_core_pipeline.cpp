// End-to-end tests of the real-time pipeline (Fig. 6 system (3)).
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "ecg/synth.hpp"
#include "math/check.hpp"

namespace {

using hbrp::core::PipelineConfig;
using hbrp::core::RealTimePipeline;
using hbrp::ecg::BeatClass;

// One trained classifier shared by every test in this file.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hbrp::ecg::DatasetBuilderConfig cfg;
    cfg.record_duration_s = 120.0;
    cfg.max_per_record_per_class = 20;
    cfg.seed = 51;
    const auto ts1 = hbrp::ecg::build_dataset({150, 150, 150}, cfg);
    cfg.max_per_record_per_class = 80;
    cfg.seed = 52;
    const auto ts2 = hbrp::ecg::build_dataset({1200, 120, 150}, cfg);
    hbrp::core::TwoStepConfig tcfg;
    tcfg.ga.population = 4;
    tcfg.ga.generations = 2;
    tcfg.seed = 5;
    const hbrp::core::TwoStepTrainer trainer(ts1, ts2, tcfg);
    const auto trained = trainer.run();
    bundle_ = new hbrp::embedded::EmbeddedClassifier(trained.quantize());
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }

  static hbrp::ecg::Record test_record(hbrp::ecg::RecordProfile profile,
                                       std::uint64_t seed) {
    hbrp::ecg::SynthConfig cfg;
    cfg.profile = profile;
    cfg.duration_s = 120.0;
    cfg.seed = seed;
    return hbrp::ecg::generate_record(cfg);
  }

  static const hbrp::embedded::EmbeddedClassifier* bundle_;
};

const hbrp::embedded::EmbeddedClassifier* PipelineTest::bundle_ = nullptr;

TEST_F(PipelineTest, ProcessesRecordEndToEnd) {
  const RealTimePipeline pipeline(*bundle_);
  const auto rec = test_record(hbrp::ecg::RecordProfile::PvcOccasional, 61);
  const auto result = pipeline.process(rec);
  // Nearly every annotated beat should surface (detector sensitivity).
  EXPECT_GT(result.beats.size(), rec.beats.size() * 9 / 10);
  EXPECT_LT(result.beats.size(), rec.beats.size() * 11 / 10);
}

TEST_F(PipelineTest, OnlyFlaggedBeatsAreDelineated) {
  const RealTimePipeline pipeline(*bundle_);
  const auto rec = test_record(hbrp::ecg::RecordProfile::PvcBigeminy, 62);
  const auto result = pipeline.process(rec);
  std::size_t delineated = 0;
  for (const auto& b : result.beats) {
    EXPECT_EQ(b.delineated, hbrp::ecg::is_pathological(b.predicted));
    delineated += b.delineated;
    if (b.delineated)
      EXPECT_NE(b.fiducials.qrs_onset, hbrp::ecg::Fiducials::kNoFiducial);
  }
  EXPECT_EQ(delineated, result.flagged_count());
  EXPECT_GT(delineated, 0u);
}

TEST_F(PipelineTest, GateOffDelineatesEverything) {
  PipelineConfig cfg;
  cfg.gate_delineation = false;
  const RealTimePipeline pipeline(*bundle_, cfg);
  const auto rec = test_record(hbrp::ecg::RecordProfile::NormalSinus, 63);
  const auto result = pipeline.process(rec);
  for (const auto& b : result.beats) EXPECT_TRUE(b.delineated);
}

TEST_F(PipelineTest, FlaggedFractionTracksRecordMix) {
  const RealTimePipeline pipeline(*bundle_);
  const auto normal =
      pipeline.process(test_record(hbrp::ecg::RecordProfile::NormalSinus, 64));
  const auto lbbb =
      pipeline.process(test_record(hbrp::ecg::RecordProfile::Lbbb, 65));
  // An LBBB patient should trigger the detailed analysis almost always,
  // a normal-sinus one rarely.
  EXPECT_LT(normal.flagged_fraction(), 0.45);
  EXPECT_GT(lbbb.flagged_fraction(), 0.7);
  EXPECT_GT(lbbb.flagged_fraction(), normal.flagged_fraction() + 0.3);
}

TEST_F(PipelineTest, BeatClassificationQualityOnRecords) {
  // Match pipeline beats back to annotations and score NDR/ARR.
  const RealTimePipeline pipeline(*bundle_);
  hbrp::core::ConfusionMatrix cm;
  for (std::uint64_t seed = 70; seed < 73; ++seed) {
    const auto rec =
        test_record(seed % 2 == 0 ? hbrp::ecg::RecordProfile::PvcOccasional
                                  : hbrp::ecg::RecordProfile::Lbbb,
                    seed);
    const auto result = pipeline.process(rec);
    std::size_t ai = 0;
    for (const auto& b : result.beats) {
      while (ai < rec.beats.size() && rec.beats[ai].sample + 15 < b.r_peak)
        ++ai;
      if (ai < rec.beats.size() &&
          rec.beats[ai].sample <= b.r_peak + 15)
        cm.add(rec.beats[ai].cls, b.predicted);
    }
  }
  EXPECT_GT(cm.total(), 300u);
  EXPECT_GT(cm.arr(), 0.75);
  EXPECT_GT(cm.ndr(), 0.6);
}

TEST_F(PipelineTest, WindowGeometryValidated) {
  PipelineConfig cfg;
  cfg.window_before = 90;  // 90 + 100 != 200 expected by the projector
  EXPECT_THROW(RealTimePipeline(*bundle_, cfg), hbrp::Error);
}

TEST_F(PipelineTest, EmptyRecordRejected) {
  const RealTimePipeline pipeline(*bundle_);
  hbrp::ecg::Record empty;
  EXPECT_THROW(pipeline.process(empty), hbrp::Error);
}

TEST_F(PipelineTest, FlaggedFractionEmptyResult) {
  hbrp::core::PipelineResult empty;
  EXPECT_DOUBLE_EQ(empty.flagged_fraction(), 0.0);
  EXPECT_EQ(empty.flagged_count(), 0u);
}

}  // namespace
