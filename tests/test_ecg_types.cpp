// Unit tests for the core ECG domain types.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "ecg/dataset.hpp"
#include "ecg/types.hpp"
#include "math/check.hpp"

namespace {

using hbrp::ecg::AdcSpec;
using hbrp::ecg::BeatClass;
using hbrp::ecg::Fiducials;

TEST(BeatClassType, PathologyRule) {
  EXPECT_FALSE(hbrp::ecg::is_pathological(BeatClass::N));
  EXPECT_TRUE(hbrp::ecg::is_pathological(BeatClass::V));
  EXPECT_TRUE(hbrp::ecg::is_pathological(BeatClass::L));
  EXPECT_TRUE(hbrp::ecg::is_pathological(BeatClass::Unknown));
}

TEST(BeatClassType, Names) {
  EXPECT_STREQ(to_string(BeatClass::N), "N");
  EXPECT_STREQ(to_string(BeatClass::V), "V");
  EXPECT_STREQ(to_string(BeatClass::L), "L");
  EXPECT_STREQ(to_string(BeatClass::Unknown), "U");
}

TEST(AdcSpecType, MidScaleAndClamping) {
  const AdcSpec adc;
  EXPECT_EQ(adc.to_adu(0.0), 1024);
  EXPECT_EQ(adc.to_adu(1.0), 1224);   // +200 adu/mV
  EXPECT_EQ(adc.to_adu(-1.0), 824);
  EXPECT_EQ(adc.to_adu(100.0), 2047);  // clamps at full scale
  EXPECT_EQ(adc.to_adu(-100.0), 0);
}

TEST(AdcSpecType, RoundTripWithinLsb) {
  const AdcSpec adc;
  for (double mv = -2.0; mv <= 2.0; mv += 0.173) {
    const double back = adc.to_mv(adc.to_adu(mv));
    EXPECT_NEAR(back, mv, 0.5 / adc.gain_adu_per_mv);
  }
}

TEST(FiducialsType, CountAndPresence) {
  Fiducials f;
  EXPECT_EQ(f.count(), 0u);
  EXPECT_FALSE(f.has_p());
  f.r_peak = 100;
  f.qrs_onset = 90;
  f.qrs_end = 115;
  EXPECT_EQ(f.count(), 3u);
  f.p_peak = 60;
  EXPECT_TRUE(f.has_p());
  EXPECT_EQ(f.count(), 4u);
}

TEST(RecordType, DurationHelpers) {
  hbrp::ecg::Record rec;
  EXPECT_EQ(rec.duration_samples(), 0u);
  EXPECT_DOUBLE_EQ(rec.duration_s(), 0.0);
  rec.fs_hz = 360;
  rec.leads.push_back(hbrp::dsp::Signal(720, 0));
  EXPECT_EQ(rec.duration_samples(), 720u);
  EXPECT_DOUBLE_EQ(rec.duration_s(), 2.0);
}

TEST(DatasetSpecType, Totals) {
  const hbrp::ecg::DatasetSpec s{3, 4, 5};
  EXPECT_EQ(s.total(), 12u);
}

TEST(PaperSplitsApi, ScaleValidation) {
  EXPECT_THROW(hbrp::ecg::load_paper_splits(0.0), hbrp::Error);
  EXPECT_THROW(hbrp::ecg::load_paper_splits(-1.0), hbrp::Error);
  EXPECT_THROW(hbrp::ecg::load_paper_splits(1.5), hbrp::Error);
}

TEST(CacheDir, EnvironmentOverride) {
  ::setenv("HBRP_CACHE_DIR", "/tmp/hbrp-test-cache-xyz", 1);
  EXPECT_EQ(hbrp::ecg::default_cache_dir(), "/tmp/hbrp-test-cache-xyz");
  ::unsetenv("HBRP_CACHE_DIR");
  EXPECT_EQ(hbrp::ecg::default_cache_dir(), "/tmp/hbrp-cache");
}

}  // namespace
