// Fleet telemetry primitives: histogram bucketing/quantiles, atomic
// maxima, JSON snapshots, and concurrency-safety of recording.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "service/telemetry.hpp"

namespace {

using hbrp::service::AtomicMax;
using hbrp::service::FleetTelemetry;
using hbrp::service::LatencyHistogram;
using hbrp::service::SessionTelemetry;

TEST(FleetTelemetry, HistogramEmptyReportsZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_us(0.5), 0.0);
  EXPECT_EQ(h.mean_us(), 0.0);
}

TEST(FleetTelemetry, HistogramQuantilesAreConservativeBucketEdges) {
  LatencyHistogram h;
  for (int us = 1; us <= 1000; ++us) h.record_us(static_cast<double>(us));
  EXPECT_EQ(h.count(), 1000u);
  // Quantiles come back as power-of-two upper bucket edges and must never
  // under-report the true quantile.
  const double p50 = h.quantile_us(0.50);
  const double p99 = h.quantile_us(0.99);
  EXPECT_GE(p50, 500.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_GE(p99, 990.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_GE(p99, p50);
  EXPECT_NEAR(h.mean_us(), 500.5, 1.0);
}

TEST(FleetTelemetry, HistogramSaturatesExtremes) {
  LatencyHistogram h;
  h.record_us(-5.0);   // clamped into the first bucket
  h.record_us(0.25);   // sub-microsecond
  h.record_us(1e12);   // beyond the last bucket: saturates, no overflow
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GT(h.quantile_us(1.0), 1e6);
}

TEST(FleetTelemetry, HistogramBucketEdgesAreMonotone) {
  // The documented geometry: bucket 0 is [0,1) us, bucket i is
  // [2^(i-1), 2^i) us. A value placed in bucket i must therefore report a
  // quantile edge of exactly 2^i, and walking the quantile axis must be
  // monotone non-decreasing — a dashboard reading p50 <= p90 <= p99 relies
  // on the bucket walk never going backwards.
  LatencyHistogram h;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets - 1; ++i) {
    LatencyHistogram single;
    const double v = i == 0 ? 0.5 : static_cast<double>(1u << (i - 1));
    single.record_us(v);
    EXPECT_EQ(single.quantile_us(1.0), static_cast<double>(1ull << i))
        << "value " << v << " should land in bucket " << i;
  }

  for (int i = 0; i < 10000; ++i)
    h.record_us(static_cast<double>((i * 37) % 100000));
  double prev = 0.0;
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = h.quantile_us(q);
    EXPECT_GE(cur, prev) << "quantile walk went backwards at q=" << q;
    // Every reported quantile is an exact bucket upper edge (power of two).
    const auto as_int = static_cast<std::uint64_t>(cur);
    EXPECT_EQ(static_cast<double>(as_int), cur);
    EXPECT_EQ(as_int & (as_int - 1), 0u) << cur << " is not a bucket edge";
    prev = cur;
  }
}

TEST(FleetTelemetry, AtomicMaxTracksRunningMaximum) {
  AtomicMax m;
  EXPECT_EQ(m.value(), 0u);
  m.note(7);
  m.note(3);
  EXPECT_EQ(m.value(), 7u);
  m.note(123);
  EXPECT_EQ(m.value(), 123u);
}

TEST(FleetTelemetry, AtomicMaxConcurrentHighWaterIsExact) {
  // The CAS loop must never lose the true maximum, no matter how writers
  // interleave — including writers racing with strictly smaller values and
  // a reader polling mid-flight. The global max is planted exactly once by
  // one thread at an arbitrary point in its sequence.
  constexpr int kThreads = 8, kPerThread = 50000;
  constexpr std::uint64_t kPlanted = 1u << 30;
  AtomicMax m;
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        // Descending runs maximize CAS contention on stale `cur` values.
        m.note(static_cast<std::uint64_t>(kPerThread - i + w));
        if (w == 3 && i == kPerThread / 2) m.note(kPlanted);
      }
    });
  }
  std::uint64_t observed = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = m.value();
    EXPECT_GE(v, observed) << "high-water mark moved backwards";
    observed = v;
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(m.value(), kPlanted);
}

TEST(FleetTelemetry, SessionJsonHasSchemaFields) {
  SessionTelemetry t;
  t.samples_offered.store(100);
  t.beats_out.store(7);
  t.pathological_beats.store(3);
  t.latency.record_us(250.0);
  const std::string json = t.json(42, 17);
  for (const char* key :
       {"\"id\": 42", "\"queue_depth\": 17", "\"samples_offered\": 100",
        "\"beats_out\": 7", "\"pathological_rate\"", "\"queue_high_water\"",
        "\"beat_latency_p50_us\"", "\"beat_latency_p99_us\"",
        "\"sqi_degradations\""})
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 1);
}

TEST(FleetTelemetry, FleetJsonHasSchemaFields) {
  FleetTelemetry t;
  t.sessions_opened.store(9);
  t.pumps.store(4);
  const std::string json = t.json(3, 1234);
  for (const char* key :
       {"\"sessions_open\": 3", "\"queued_samples\": 1234",
        "\"sessions_opened\": 9", "\"pumps\": 4", "\"offers_rejected\"",
        "\"batched_beats\""})
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
}

TEST(FleetTelemetry, ConcurrentRecordingLosesNothing) {
  // The lock-free contract: concurrent writers from many threads, a reader
  // snapshotting mid-flight, and an exact total at the end.
  LatencyHistogram h;
  SessionTelemetry t;
  constexpr int kThreads = 4, kPerThread = 25000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record_us(static_cast<double>((w * kPerThread + i) % 4096));
        t.beats_out.fetch_add(1, std::memory_order_relaxed);
        t.queue_high_water.note(static_cast<std::uint64_t>(i));
      }
    });
  }
  std::string snapshot;
  for (int i = 0; i < 50; ++i) snapshot = t.json(1, 0);  // racing reader
  for (auto& w : writers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(t.beats_out.load(), static_cast<std::uint64_t>(kThreads *
                                                           kPerThread));
  EXPECT_EQ(t.queue_high_water.value(),
            static_cast<std::uint64_t>(kPerThread - 1));
  EXPECT_FALSE(snapshot.empty());
}

}  // namespace
