// Tests for the genetic optimizer over ternary projection matrices.
#include <gtest/gtest.h>

#include "math/check.hpp"
#include "opt/ga.hpp"

namespace {

using hbrp::opt::GaOptions;
using hbrp::opt::optimize_projection;
using hbrp::rp::TernaryMatrix;

// Toy fitness: fraction of +1 entries. The GA should drive matrices toward
// all-ones despite the Achlioptas prior favouring zeros 2:1.
double plus_density(const TernaryMatrix& m) {
  double count = 0.0;
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) count += (m.at(r, c) == 1);
  return count / static_cast<double>(m.rows() * m.cols());
}

TEST(Ga, ImprovesToyFitness) {
  GaOptions opt;
  opt.population = 16;
  opt.generations = 40;
  opt.mutation_rate = 0.05;
  opt.seed = 1;
  const auto r = optimize_projection(4, 20, plus_density, opt);
  // Random Achlioptas matrices average 1/6 density of +1.
  EXPECT_GT(r.best_fitness, 0.5);
  EXPECT_EQ(plus_density(r.best), r.best_fitness);
}

TEST(Ga, HistoryIsMonotoneWithElitism) {
  GaOptions opt;
  opt.population = 10;
  opt.generations = 15;
  opt.seed = 2;
  const auto r = optimize_projection(4, 10, plus_density, opt);
  ASSERT_EQ(r.history.size(), opt.generations + 1);
  for (std::size_t i = 1; i < r.history.size(); ++i)
    EXPECT_GE(r.history[i], r.history[i - 1]);
}

TEST(Ga, DeterministicInSeed) {
  GaOptions opt;
  opt.population = 8;
  opt.generations = 5;
  opt.seed = 3;
  const auto a = optimize_projection(3, 12, plus_density, opt);
  const auto b = optimize_projection(3, 12, plus_density, opt);
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
}

TEST(Ga, DifferentSeedsExploreDifferently) {
  GaOptions opt;
  opt.population = 8;
  opt.generations = 3;
  opt.seed = 4;
  const auto a = optimize_projection(3, 30, plus_density, opt);
  opt.seed = 5;
  const auto b = optimize_projection(3, 30, plus_density, opt);
  EXPECT_FALSE(a.best == b.best);
}

TEST(Ga, EvaluationCountMatchesSchedule) {
  GaOptions opt;
  opt.population = 10;
  opt.generations = 4;
  opt.elite = 2;
  opt.seed = 6;
  const auto r = optimize_projection(2, 8, plus_density, opt);
  // Initial population + (population - elite) children per generation.
  EXPECT_EQ(r.evaluations, 10u + 4u * 8u);
}

TEST(Ga, ZeroMutationPureSelectionStillRuns) {
  GaOptions opt;
  opt.population = 6;
  opt.generations = 4;
  opt.mutation_rate = 0.0;
  opt.seed = 7;
  const auto r = optimize_projection(2, 10, plus_density, opt);
  EXPECT_GE(r.best_fitness, 0.0);
}

TEST(Ga, ParallelMatchesSerialExactly) {
  GaOptions opt;
  opt.population = 10;
  opt.generations = 6;
  opt.seed = 99;
  opt.executor = nullptr;
  const auto serial = optimize_projection(4, 16, plus_density, opt);
  const hbrp::core::Executor executor(4);
  opt.executor = &executor;
  const auto parallel = optimize_projection(4, 16, plus_density, opt);
  EXPECT_EQ(parallel.best, serial.best);
  EXPECT_DOUBLE_EQ(parallel.best_fitness, serial.best_fitness);
  ASSERT_EQ(parallel.history.size(), serial.history.size());
  for (std::size_t i = 0; i < serial.history.size(); ++i)
    EXPECT_DOUBLE_EQ(parallel.history[i], serial.history[i]);
}

TEST(Ga, PaperDefaultsMatchSectionIIIA) {
  const GaOptions opt;
  EXPECT_EQ(opt.population, 20u);
  EXPECT_EQ(opt.generations, 30u);
}

TEST(Ga, InvalidOptionsThrow) {
  GaOptions opt;
  opt.population = 1;
  EXPECT_THROW(optimize_projection(2, 4, plus_density, opt), hbrp::Error);
  opt = {};
  opt.elite = opt.population;
  EXPECT_THROW(optimize_projection(2, 4, plus_density, opt), hbrp::Error);
  opt = {};
  EXPECT_THROW(optimize_projection(2, 4, nullptr, opt), hbrp::Error);
}

}  // namespace
