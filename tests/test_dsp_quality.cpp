// Tests for the streaming signal-quality estimator: clean signal stays
// Good, each fault signature demotes correctly, hysteresis governs
// recovery, and corrupt int32 garbage cannot overflow the accumulators.
#include <gtest/gtest.h>

#include <limits>

#include "dsp/quality.hpp"
#include "ecg/synth.hpp"
#include "math/check.hpp"

namespace {

using hbrp::dsp::QualityConfig;
using hbrp::dsp::Sample;
using hbrp::dsp::Signal;
using hbrp::dsp::SignalQuality;
using hbrp::dsp::SignalQualityEstimator;

Signal synth_lead(std::uint64_t seed, double seconds = 30.0) {
  hbrp::ecg::SynthConfig cfg;
  cfg.profile = hbrp::ecg::RecordProfile::PvcOccasional;
  cfg.duration_s = seconds;
  cfg.num_leads = 1;
  cfg.seed = seed;
  return hbrp::ecg::generate_record(cfg).leads[0];
}

// Pushes a signal; returns the worst state observed at any chunk boundary.
SignalQuality run_worst(SignalQualityEstimator& est, const Signal& sig) {
  SignalQuality worst = SignalQuality::Good;
  for (const Sample x : sig)
    if (const auto s = est.push(x)) worst = std::max(worst, *s);
  return worst;
}

TEST(SignalQuality, CleanSynthRecordsStayGood) {
  // The gating must be transparent on realistic clean signal — otherwise
  // it would silently change classification results (acceptance criterion
  // (c) of the fault-injection suite).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SignalQualityEstimator est;
    EXPECT_EQ(run_worst(est, synth_lead(seed)), SignalQuality::Good)
        << "seed " << seed;
  }
}

TEST(SignalQuality, LeadOffFlatLineGoesBad) {
  SignalQualityEstimator est;
  run_worst(est, synth_lead(7, 5.0));
  ASSERT_EQ(est.state(), SignalQuality::Good);
  // Detached electrode: exactly constant at some level.
  const Signal flat(2 * est.chunk_samples(), 1024);
  EXPECT_EQ(run_worst(est, flat), SignalQuality::Bad);
  EXPECT_EQ(est.state(), SignalQuality::Bad);
  EXPECT_LE(est.last_chunk().variance, 2.0);
}

TEST(SignalQuality, SaturationPlateauGoesBad) {
  SignalQualityEstimator est;
  run_worst(est, synth_lead(8, 5.0));
  const Signal railed(2 * est.chunk_samples(), 2047);
  EXPECT_EQ(run_worst(est, railed), SignalQuality::Bad);
  EXPECT_GT(est.last_chunk().clipped, est.chunk_samples() / 2);
}

TEST(SignalQuality, ImpulseBurstGoesSuspectNotBad) {
  SignalQualityEstimator est;
  Signal sig = synth_lead(9, 10.0);
  // Electrosurgery-style spikes: well above impulse_delta, sparse enough
  // not to clip or flat-line, dense enough to cross the suspect fraction.
  for (std::size_t i = est.chunk_samples(); i < sig.size(); i += 20)
    sig[i] = (i / 20) % 2 ? 1900 : 120;
  const SignalQuality worst = run_worst(est, sig);
  EXPECT_EQ(worst, SignalQuality::Suspect);
}

TEST(SignalQuality, HysteresisRecoversOneStepPerCleanStreak) {
  QualityConfig cfg;
  cfg.recover_chunks = 2;
  SignalQualityEstimator est(cfg);
  const Signal clean = synth_lead(10, 60.0);
  const std::size_t chunk = est.chunk_samples();

  // Drive to Bad.
  const Signal flat(2 * chunk, 1024);
  run_worst(est, flat);
  ASSERT_EQ(est.state(), SignalQuality::Bad);

  // Feed clean chunks one at a time and watch the ladder: two chunks to
  // Suspect, two more to Good — never a direct Bad -> Good jump.
  std::vector<SignalQuality> states;
  for (std::size_t c = 0; c < 5; ++c) {
    for (std::size_t i = 0; i < chunk; ++i)
      if (const auto s = est.push(clean[(c + 4) * chunk + i]))
        states.push_back(*s);
  }
  ASSERT_EQ(states.size(), 5u);
  EXPECT_EQ(states[0], SignalQuality::Bad);
  EXPECT_EQ(states[1], SignalQuality::Suspect);
  EXPECT_EQ(states[2], SignalQuality::Suspect);
  EXPECT_EQ(states[3], SignalQuality::Good);
  EXPECT_EQ(states[4], SignalQuality::Good);
}

TEST(SignalQuality, OneBadChunkResetsRecoveryProgress) {
  QualityConfig cfg;
  cfg.recover_chunks = 2;
  SignalQualityEstimator est(cfg);
  const std::size_t chunk = est.chunk_samples();
  const Signal clean = synth_lead(11, 30.0);
  const Signal flat(chunk, 1024);

  run_worst(est, flat);
  run_worst(est, flat);
  ASSERT_EQ(est.state(), SignalQuality::Bad);
  // One clean chunk (progress), then a bad one: back to square one.
  for (std::size_t i = 0; i < chunk; ++i) est.push(clean[4 * chunk + i]);
  run_worst(est, flat);
  EXPECT_EQ(est.state(), SignalQuality::Bad);
  // Needs the full streak again.
  for (std::size_t i = 0; i < chunk; ++i) est.push(clean[6 * chunk + i]);
  EXPECT_EQ(est.state(), SignalQuality::Bad);
  for (std::size_t i = 0; i < chunk; ++i) est.push(clean[7 * chunk + i]);
  EXPECT_EQ(est.state(), SignalQuality::Suspect);
}

TEST(SignalQuality, Int32GarbageIsClampedNotOverflowed) {
  // Hostile/corrupt samples far outside the ADC range must degrade into
  // clipping (and a Bad grade), not overflow the int64 accumulators; this
  // is the case the UBSan tier watches.
  SignalQualityEstimator est;
  Signal garbage(2 * est.chunk_samples());
  for (std::size_t i = 0; i < garbage.size(); ++i)
    garbage[i] = i % 2 ? std::numeric_limits<Sample>::max()
                       : std::numeric_limits<Sample>::min();
  EXPECT_EQ(run_worst(est, garbage), SignalQuality::Bad);
  EXPECT_EQ(est.last_chunk().clipped, est.chunk_samples());
}

TEST(SignalQuality, ResetReturnsToInitialState) {
  SignalQualityEstimator est;
  const Signal flat(2 * est.chunk_samples(), 500);
  run_worst(est, flat);
  ASSERT_EQ(est.state(), SignalQuality::Bad);
  est.reset();
  EXPECT_EQ(est.state(), SignalQuality::Good);
  EXPECT_EQ(run_worst(est, synth_lead(12, 5.0)), SignalQuality::Good);
}

TEST(SignalQuality, ConfigValidation) {
  QualityConfig cfg;
  cfg.fs_hz = 0;
  EXPECT_THROW(SignalQualityEstimator{cfg}, hbrp::Error);
  cfg = {};
  cfg.chunk_s = 0.0;
  EXPECT_THROW(SignalQualityEstimator{cfg}, hbrp::Error);
  cfg = {};
  cfg.rail_low = cfg.rail_high;
  EXPECT_THROW(SignalQualityEstimator{cfg}, hbrp::Error);
  cfg = {};
  cfg.recover_chunks = 0;
  EXPECT_THROW(SignalQualityEstimator{cfg}, hbrp::Error);
}

}  // namespace
