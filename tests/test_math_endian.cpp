// Tests for math/endian.hpp — the single audited little-endian codec that
// both model files (core/model_io) and wire frames (net/wire) go through.
#include "math/endian.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "math/check.hpp"

namespace {

using hbrp::math::append_le;
using hbrp::math::ByteReader;
using hbrp::math::load_le;
using hbrp::math::store_le;
using hbrp::math::wire_size_v;

TEST(Endian, ByteOrderIsLittleEndianByConstruction) {
  unsigned char buf[8] = {};
  store_le<std::uint32_t>(buf, 0x11223344u);
  EXPECT_EQ(buf[0], 0x44);
  EXPECT_EQ(buf[1], 0x33);
  EXPECT_EQ(buf[2], 0x22);
  EXPECT_EQ(buf[3], 0x11);

  store_le<std::uint16_t>(buf, 0xECB5u);
  EXPECT_EQ(buf[0], 0xB5);
  EXPECT_EQ(buf[1], 0xEC);

  store_le<std::uint64_t>(buf, 0x0102030405060708ull);
  EXPECT_EQ(buf[0], 0x08);
  EXPECT_EQ(buf[7], 0x01);
}

template <typename T>
void roundtrip(T v) {
  unsigned char buf[sizeof(T)];
  store_le<T>(buf, v);
  EXPECT_EQ(load_le<T>(buf), v);
}

TEST(Endian, RoundtripsEveryWidthIncludingExtremes) {
  roundtrip<std::uint8_t>(0xAB);
  roundtrip<std::uint16_t>(std::numeric_limits<std::uint16_t>::max());
  roundtrip<std::uint32_t>(std::numeric_limits<std::uint32_t>::max());
  roundtrip<std::uint64_t>(std::numeric_limits<std::uint64_t>::max());
  roundtrip<std::int32_t>(std::numeric_limits<std::int32_t>::min());
  roundtrip<std::int32_t>(-1);
  roundtrip<std::int64_t>(std::numeric_limits<std::int64_t>::min());
}

TEST(Endian, FloatingPointTravelsAsIeeeBitPattern) {
  roundtrip<double>(0.0);
  roundtrip<double>(-0.0);
  roundtrip<double>(1.0 / 3.0);
  roundtrip<double>(std::numeric_limits<double>::denorm_min());
  roundtrip<double>(std::numeric_limits<double>::infinity());
  roundtrip<float>(-1.5f);

  // NaN payload bits must survive exactly (bit pattern, not value, is
  // what is serialized).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  unsigned char buf[8];
  store_le<double>(buf, nan);
  const double back = load_le<double>(buf);
  EXPECT_TRUE(std::isnan(back));

  // -0.0 and +0.0 are distinct on the wire.
  unsigned char pos[8], neg[8];
  store_le<double>(pos, 0.0);
  store_le<double>(neg, -0.0);
  EXPECT_NE(0, std::memcmp(pos, neg, 8));
}

TEST(Endian, AppendGrowsStringAndVectorIdentically) {
  std::string s;
  std::vector<unsigned char> v;
  append_le<std::uint32_t>(s, 0xDEADBEEFu);
  append_le<std::uint32_t>(v, 0xDEADBEEFu);
  append_le<double>(s, 2.5);
  append_le<double>(v, 2.5);
  ASSERT_EQ(s.size(), v.size());
  ASSERT_EQ(s.size(), wire_size_v<std::uint32_t> + wire_size_v<double>);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(static_cast<unsigned char>(s[i]), v[i]) << "byte " << i;
}

TEST(Endian, ByteReaderDecodesSequentiallyWithAccounting) {
  std::vector<unsigned char> buf;
  append_le<std::uint16_t>(buf, 0xECB5u);
  append_le<std::int32_t>(buf, -42);
  append_le<double>(buf, 3.25);
  buf.push_back(0x7F);

  ByteReader r(buf.data(), buf.size());
  EXPECT_EQ(r.remaining(), buf.size());
  EXPECT_EQ(r.get<std::uint16_t>(), 0xECB5u);
  EXPECT_EQ(r.get<std::int32_t>(), -42);
  EXPECT_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.consumed(), buf.size() - 1);
  const unsigned char* tail = r.bytes(1);
  EXPECT_EQ(tail[0], 0x7F);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Endian, ByteReaderThrowsOnTruncationInsteadOfReading) {
  std::vector<unsigned char> buf;
  append_le<std::uint32_t>(buf, 7u);

  ByteReader r(buf.data(), buf.size());
  EXPECT_THROW((void)r.get<std::uint64_t>(), hbrp::Error);
  // A failed get consumes nothing; the buffer is still decodable.
  EXPECT_EQ(r.get<std::uint32_t>(), 7u);
  EXPECT_THROW((void)r.bytes(1), hbrp::Error);
  EXPECT_THROW((void)r.get<std::uint8_t>(), hbrp::Error);

  ByteReader empty(nullptr, 0);
  EXPECT_THROW((void)empty.get<std::uint8_t>(), hbrp::Error);
  EXPECT_EQ(empty.remaining(), 0u);
}

}  // namespace
