// Model lifecycle tests: ModelBundle encode/decode/digest hardening, the
// deprecated model_io shim, BundleRegistry admission/eviction/rollback
// edges, deterministic A/B splits, FleetEngine hot-swap identity (the
// verdict stream splits at the swap boundary into an exact prefix of the
// old model's run and an exact suffix of the new model's run, for any
// thread/shard count), and the gateway MODEL_PUSH wire path mid-ingest —
// including every NACK leaving the active model and the live traffic
// untouched.
#include <gtest/gtest.h>

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/model_io.hpp"
#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "ecg/synth.hpp"
#include "lifecycle/ab.hpp"
#include "lifecycle/bundle.hpp"
#include "lifecycle/registry.hpp"
#include "math/check.hpp"
#include "math/rng.hpp"
#include "net/client.hpp"
#include "net/gateway.hpp"
#include "net/push.hpp"
#include "net/socket.hpp"
#include "service/fleet.hpp"

namespace {

namespace fs = std::filesystem;
using namespace hbrp;
using Clock = std::chrono::steady_clock;

// --- cheap hand-built fixtures (no training) -------------------------------

core::TrainedClassifier make_model(std::uint64_t seed, std::size_t k = 8,
                                   std::size_t cols = 50,
                                   std::size_t downsample = 4) {
  math::Rng rng(seed);
  auto p = rp::make_achlioptas(k, cols, rng);
  nfc::NeuroFuzzyClassifier nfc(k);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t l = 0; l < 3; ++l)
      nfc.mf(i, l) = {rng.normal(0, 200), rng.uniform(5.0, 150.0)};
  return core::TrainedClassifier{rp::BeatProjector(std::move(p), downsample),
                                 std::move(nfc), rng.uniform(0.1, 0.5)};
}

drift::TrainingCentroids make_centroids(std::uint64_t seed,
                                        std::size_t k = 8) {
  math::Rng rng(seed);
  drift::TrainingCentroids tc;
  tc.coefficients = k;
  tc.scale = rng.uniform(50.0, 150.0);
  for (int c = 0; c < 3; ++c) {
    drift::TrainingCentroids::Centroid ct;
    for (std::size_t i = 0; i < k; ++i) ct.mean.push_back(rng.normal(0, 300));
    ct.mass = rng.uniform(10.0, 500.0);
    ct.sigma = rng.uniform(20.0, 90.0);
    tc.centroids.push_back(std::move(ct));
  }
  return tc;
}

lifecycle::ModelBundle make_bundle(std::uint64_t version, std::uint64_t seed,
                                   bool with_centroids = true) {
  lifecycle::ModelBundle b{
      .version = version, .model = make_model(seed), .alpha_test = 0.25};
  if (with_centroids) b.centroids = make_centroids(seed + 1);
  return b;
}

std::shared_ptr<const service::SessionModel> make_session_model(
    std::uint64_t version, std::uint64_t seed, std::size_t k = 8,
    std::size_t cols = 50) {
  return std::make_shared<const service::SessionModel>(service::SessionModel{
      version, make_model(seed, k, cols).quantize(), nullptr});
}

fs::path temp_path(const char* tag) {
  return fs::temp_directory_path() /
         (std::string("hbrp_lifecycle_") + tag + "_" +
          std::to_string(::getpid()) + ".bin");
}

// --- bundle format ---------------------------------------------------------

TEST(LifecycleBundle, RoundTripPreservesEverything) {
  const lifecycle::ModelBundle b = make_bundle(7, 100);
  const auto image = lifecycle::encode_bundle(b);
  const lifecycle::ModelBundle back = lifecycle::decode_bundle(image);

  EXPECT_EQ(back.version, 7u);
  EXPECT_DOUBLE_EQ(back.alpha_test, b.alpha_test);
  EXPECT_EQ(back.model.projector.matrix(), b.model.projector.matrix());
  EXPECT_EQ(back.model.projector.downsample_factor(),
            b.model.projector.downsample_factor());
  EXPECT_DOUBLE_EQ(back.model.alpha_train, b.model.alpha_train);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t l = 0; l < 3; ++l) {
      EXPECT_DOUBLE_EQ(back.model.nfc.mf(i, l).center,
                       b.model.nfc.mf(i, l).center);
      EXPECT_DOUBLE_EQ(back.model.nfc.mf(i, l).sigma,
                       b.model.nfc.mf(i, l).sigma);
    }
  ASSERT_EQ(back.centroids.centroids.size(), b.centroids.centroids.size());
  EXPECT_EQ(back.centroids.coefficients, b.centroids.coefficients);
  EXPECT_DOUBLE_EQ(back.centroids.scale, b.centroids.scale);
  for (std::size_t c = 0; c < b.centroids.centroids.size(); ++c) {
    EXPECT_EQ(back.centroids.centroids[c].mean, b.centroids.centroids[c].mean);
    EXPECT_DOUBLE_EQ(back.centroids.centroids[c].mass,
                     b.centroids.centroids[c].mass);
    EXPECT_DOUBLE_EQ(back.centroids.centroids[c].sigma,
                     b.centroids.centroids[c].sigma);
  }
}

TEST(LifecycleBundle, SeedlessBundleRoundTrips) {
  const lifecycle::ModelBundle b = make_bundle(3, 200, /*with_centroids=*/false);
  const auto back = lifecycle::decode_bundle(lifecycle::encode_bundle(b));
  EXPECT_TRUE(back.centroids.centroids.empty());
  const auto model = lifecycle::instantiate_bundle(back);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->version, 3u);
  EXPECT_EQ(model->centroids, nullptr) << "no seeds means drift stays off";
}

TEST(LifecycleBundle, DigestIsStableAndContentSensitive) {
  const lifecycle::ModelBundle b = make_bundle(4, 300);
  const auto image = lifecycle::encode_bundle(b);
  EXPECT_EQ(lifecycle::bundle_digest(image),
            lifecycle::bundle_digest(lifecycle::encode_bundle(b)));
  auto tampered = image;
  tampered[tampered.size() / 2] ^= 0x40u;
  EXPECT_NE(lifecycle::bundle_digest(tampered),
            lifecycle::bundle_digest(image));
}

TEST(LifecycleBundle, CorruptionAnywhereIsRejected) {
  const auto image = lifecycle::encode_bundle(make_bundle(5, 400));
  // Truncations at every boundary class, plus a sweep of single-bit flips:
  // the magic, the size field, the CRC and the payload are all covered.
  for (const std::size_t len : {std::size_t{0}, std::size_t{4},
                                std::size_t{15}, image.size() - 1}) {
    const std::span<const unsigned char> cut(image.data(), len);
    EXPECT_THROW((void)lifecycle::decode_bundle(cut), hbrp::Error)
        << "truncated to " << len;
  }
  for (std::size_t pos = 0; pos < image.size(); pos += 37) {
    auto bad = image;
    bad[pos] ^= 0x01u;
    EXPECT_THROW((void)lifecycle::decode_bundle(bad), hbrp::Error)
        << "flip at byte " << pos;
  }
}

TEST(LifecycleBundle, SaveLoadIsAtomicAndSelfDescribing) {
  const auto path = temp_path("save");
  const lifecycle::ModelBundle b = make_bundle(9, 500);
  lifecycle::save_bundle(b, path);
  const auto back = lifecycle::load_bundle(path);
  EXPECT_EQ(back.version, 9u);
  EXPECT_EQ(back.model.projector.matrix(), b.model.projector.matrix());
  // The shim recognizes the bundle magic and loads it as-is.
  const auto shimmed = lifecycle::load_bundle_or_model(path);
  EXPECT_EQ(shimmed.version, 9u);
  fs::remove(path);
}

// Satellite: old on-disk caches written by core::save_model keep loading
// through the shim — wrapped as version 1, no drift seeds (the legacy
// format never carried any).
TEST(LifecycleBundle, LegacyModelCacheLoadsThroughShim) {
  const auto path = temp_path("legacy");
  const core::TrainedClassifier model = make_model(600);
  core::save_model(model, path);
  const lifecycle::ModelBundle b = lifecycle::load_bundle_or_model(path);
  EXPECT_EQ(b.version, 1u);
  EXPECT_TRUE(b.centroids.centroids.empty());
  EXPECT_EQ(b.model.projector.matrix(), model.projector.matrix());
  EXPECT_DOUBLE_EQ(b.model.alpha_train, model.alpha_train);
  EXPECT_LT(b.alpha_test, 0.0) << "legacy loads deploy at alpha_train";
  fs::remove(path);
}

TEST(LifecycleBundle, InstantiateRejectsCentroidSkew) {
  lifecycle::ModelBundle b = make_bundle(2, 700);
  b.centroids = make_centroids(701, /*k=*/6);  // model has 8 coefficients
  EXPECT_THROW((void)lifecycle::instantiate_bundle(b), hbrp::Error)
      << "seeds from another RP space must never attach to this model";
}

// --- registry --------------------------------------------------------------

TEST(LifecycleRegistry, DuplicateVersionRefusedEvenWithNewContent) {
  lifecycle::BundleRegistry reg;
  EXPECT_EQ(reg.admit(make_session_model(5, 1), 11),
            lifecycle::AdmitResult::Ok);
  EXPECT_EQ(reg.admit(make_session_model(5, 2), 22),
            lifecycle::AdmitResult::Duplicate);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(LifecycleRegistry, DowngradeBelowActiveRefused) {
  lifecycle::BundleRegistry reg;
  ASSERT_EQ(reg.admit(make_session_model(5, 1), 0),
            lifecycle::AdmitResult::Ok);
  ASSERT_TRUE(reg.promote(5));
  EXPECT_EQ(reg.admit(make_session_model(3, 2), 0),
            lifecycle::AdmitResult::Downgrade);
  // With nothing active there is no downgrade notion: a fresh registry
  // takes any version.
  lifecycle::BundleRegistry fresh;
  EXPECT_EQ(fresh.admit(make_session_model(3, 2), 0),
            lifecycle::AdmitResult::Ok);
}

TEST(LifecycleRegistry, GeometryMismatchWithIncumbentRefused) {
  lifecycle::BundleRegistry reg;
  ASSERT_EQ(reg.admit(make_session_model(1, 1), 0),
            lifecycle::AdmitResult::Ok);
  ASSERT_TRUE(reg.promote(1));
  EXPECT_EQ(reg.admit(make_session_model(2, 2, /*k=*/6), 0),
            lifecycle::AdmitResult::BadGeometry);
  EXPECT_EQ(reg.admit(make_session_model(2, 2, /*k=*/8, /*cols=*/40), 0),
            lifecycle::AdmitResult::BadGeometry);
  EXPECT_EQ(reg.admit(make_session_model(2, 2), 0),
            lifecycle::AdmitResult::Ok);
}

TEST(LifecycleRegistry, PromoteRollbackAreInverses) {
  lifecycle::BundleRegistry reg;
  EXPECT_FALSE(reg.rollback()) << "nothing to roll back to yet";
  ASSERT_EQ(reg.admit(make_session_model(1, 1), 0),
            lifecycle::AdmitResult::Ok);
  ASSERT_TRUE(reg.promote(1));
  EXPECT_FALSE(reg.rollback()) << "no previously active version";
  ASSERT_EQ(reg.admit(make_session_model(2, 2), 0),
            lifecycle::AdmitResult::Ok);
  ASSERT_TRUE(reg.promote(2));
  EXPECT_EQ(reg.active_version(), 2u);
  ASSERT_TRUE(reg.rollback());
  EXPECT_EQ(reg.active_version(), 1u);
  ASSERT_TRUE(reg.rollback()) << "rollback swaps, so it is its own inverse";
  EXPECT_EQ(reg.active_version(), 2u);
  EXPECT_FALSE(reg.promote(99)) << "unknown versions cannot be promoted";
}

TEST(LifecycleRegistry, EvictionHonoursPinsActiveAndRollbackTarget) {
  lifecycle::BundleRegistry reg(lifecycle::RegistryConfig{3});
  ASSERT_EQ(reg.admit(make_session_model(1, 1), 0),
            lifecycle::AdmitResult::Ok);
  ASSERT_TRUE(reg.promote(1));
  ASSERT_EQ(reg.admit(make_session_model(2, 2), 0),
            lifecycle::AdmitResult::Ok);
  ASSERT_TRUE(reg.promote(2));  // active 2, rollback target 1
  ASSERT_EQ(reg.admit(make_session_model(3, 3), 0),
            lifecycle::AdmitResult::Ok);

  // Pin version 3 the way a live session would: by holding its model.
  std::shared_ptr<const service::SessionModel> pin = reg.find(3);
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ(reg.pins(3), 1u);
  // v1 is the rollback target, v2 is active, v3 is pinned: nothing may go.
  EXPECT_EQ(reg.admit(make_session_model(4, 4), 0),
            lifecycle::AdmitResult::RegistryFull);

  pin.reset();
  EXPECT_EQ(reg.pins(3), 0u);
  EXPECT_EQ(reg.admit(make_session_model(4, 4), 0),
            lifecycle::AdmitResult::Ok)
      << "the unpinned non-active slot must be reclaimed";
  EXPECT_EQ(reg.find(3), nullptr) << "version 3 was the eviction victim";
  EXPECT_NE(reg.find(1), nullptr) << "the rollback target must survive";
}

TEST(LifecycleRegistry, PromoteWhilePinnedKeepsOldModelAddressable) {
  lifecycle::BundleRegistry reg;
  ASSERT_EQ(reg.admit(make_session_model(1, 1), 0),
            lifecycle::AdmitResult::Ok);
  ASSERT_TRUE(reg.promote(1));
  // Sessions still hold version 1 while the ward promotes version 2.
  std::shared_ptr<const service::SessionModel> pinned = reg.find(1);
  ASSERT_EQ(reg.admit(make_session_model(2, 2), 0),
            lifecycle::AdmitResult::Ok);
  EXPECT_TRUE(reg.promote(2));
  EXPECT_EQ(reg.active_version(), 2u);
  EXPECT_EQ(reg.pins(1), 1u);
  // The pinned incumbent remains addressable for the swap tail and for
  // rollback — promotion never invalidates it.
  EXPECT_EQ(reg.find(1), pinned);
  ASSERT_TRUE(reg.rollback());
  EXPECT_EQ(reg.active(), pinned);
}

// --- A/B split -------------------------------------------------------------

TEST(LifecycleAb, DeterministicSeededAndRoughlyBalanced) {
  const lifecycle::AbSplit split{1234, 50};
  std::size_t arm_b = 0;
  for (std::uint64_t node = 0; node < 1000; ++node) {
    const std::uint8_t a = split.arm(node);
    EXPECT_EQ(a, split.arm(node)) << "assignment must be a pure function";
    EXPECT_LE(a, 1);
    arm_b += a;
  }
  EXPECT_GT(arm_b, 350u);
  EXPECT_LT(arm_b, 650u);

  const lifecycle::AbSplit all_a{1234, 0};
  const lifecycle::AbSplit all_b{1234, 100};
  const lifecycle::AbSplit reseeded{99, 50};
  std::size_t moved = 0;
  for (std::uint64_t node = 0; node < 200; ++node) {
    EXPECT_EQ(all_a.arm(node), 0);
    EXPECT_EQ(all_b.arm(node), 1);
    moved += split.arm(node) != reseeded.arm(node) ? 1u : 0u;
  }
  EXPECT_GT(moved, 0u) << "the seed must actually permute the split";
}

// --- fleet hot-swap (trained models) ---------------------------------------

struct VerdictSig {
  std::uint64_t sequence;
  std::uint64_t r_peak;
  std::uint8_t beat_class;
  std::uint8_t quality;
  bool operator==(const VerdictSig&) const = default;
};

struct TaggedVerdict {
  VerdictSig sig;
  std::uint64_t model_version;
};

class LifecycleSwapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecg::DatasetBuilderConfig cfg;
    cfg.record_duration_s = 120.0;
    cfg.max_per_record_per_class = 20;
    cfg.seed = 191;
    ts1_ = new ecg::BeatDataset(ecg::build_dataset({150, 150, 150}, cfg));
    cfg.max_per_record_per_class = 80;
    cfg.seed = 192;
    const auto ts2 = ecg::build_dataset({1200, 120, 150}, cfg);
    core::TwoStepConfig tcfg;
    tcfg.ga.population = 4;
    tcfg.ga.generations = 2;
    tcfg.seed = 19;
    trained_a_ = new core::TrainedClassifier(
        core::TwoStepTrainer(*ts1_, ts2, tcfg).run());
    tcfg.seed = 29;  // an independently evolved projection matrix
    trained_b_ = new core::TrainedClassifier(
        core::TwoStepTrainer(*ts1_, ts2, tcfg).run());
    clf_a_ = new embedded::EmbeddedClassifier(trained_a_->quantize());
    clf_b_ = new embedded::EmbeddedClassifier(trained_b_->quantize());
    centroids_a_ = std::make_shared<const drift::TrainingCentroids>(
        core::compute_training_centroids(*clf_a_, *ts1_));
    centroids_b_ = std::make_shared<const drift::TrainingCentroids>(
        core::compute_training_centroids(*clf_b_, *ts1_));
  }
  static void TearDownTestSuite() {
    centroids_a_.reset();
    centroids_b_.reset();
    delete clf_a_;
    delete clf_b_;
    delete trained_a_;
    delete trained_b_;
    delete ts1_;
    clf_a_ = clf_b_ = nullptr;
    trained_a_ = trained_b_ = nullptr;
    ts1_ = nullptr;
  }

  static std::shared_ptr<const service::SessionModel> model_b(
      std::uint64_t version = 2) {
    return std::make_shared<const service::SessionModel>(
        service::SessionModel{version, *clf_b_, centroids_b_});
  }

  static ecg::BeatDataset* ts1_;
  static core::TrainedClassifier* trained_a_;
  static core::TrainedClassifier* trained_b_;
  static embedded::EmbeddedClassifier* clf_a_;
  static embedded::EmbeddedClassifier* clf_b_;
  static std::shared_ptr<const drift::TrainingCentroids> centroids_a_;
  static std::shared_ptr<const drift::TrainingCentroids> centroids_b_;
};

ecg::BeatDataset* LifecycleSwapTest::ts1_ = nullptr;
core::TrainedClassifier* LifecycleSwapTest::trained_a_ = nullptr;
core::TrainedClassifier* LifecycleSwapTest::trained_b_ = nullptr;
embedded::EmbeddedClassifier* LifecycleSwapTest::clf_a_ = nullptr;
embedded::EmbeddedClassifier* LifecycleSwapTest::clf_b_ = nullptr;
std::shared_ptr<const drift::TrainingCentroids>
    LifecycleSwapTest::centroids_a_;
std::shared_ptr<const drift::TrainingCentroids>
    LifecycleSwapTest::centroids_b_;

std::vector<double> patient_lead(std::uint64_t seed, double seconds) {
  ecg::SynthConfig cfg;
  cfg.profile = ecg::RecordProfile::PvcOccasional;
  cfg.duration_s = seconds;
  cfg.num_leads = 1;
  cfg.seed = seed;
  const auto rec = ecg::generate_record(cfg);
  return {rec.leads[0].begin(), rec.leads[0].end()};
}

/// Direct ingest of a double lead on one engine; returns tagged verdicts.
std::vector<TaggedVerdict> run_engine(
    const embedded::EmbeddedClassifier& classifier,
    std::span<const double> lead, std::size_t threads, std::size_t shards,
    const std::function<void(service::FleetEngine&, service::SessionId,
                             std::size_t)>& mid_hook = nullptr) {
  service::FleetConfig cfg;
  cfg.threads = threads;
  cfg.shards = shards;
  service::FleetEngine engine(classifier, cfg);
  std::vector<TaggedVerdict> out;
  const auto id =
      engine.open_session([&out](const service::SessionResult& r) {
        out.push_back(TaggedVerdict{
            VerdictSig{r.sequence, static_cast<std::uint64_t>(r.beat.r_peak),
                       static_cast<std::uint8_t>(r.beat.predicted),
                       static_cast<std::uint8_t>(r.beat.quality)},
            r.model_version});
      });
  EXPECT_TRUE(id.has_value());
  std::size_t off = 0;
  while (off < lead.size()) {
    const std::size_t n = std::min<std::size_t>(2048, lead.size() - off);
    off += engine.offer(*id, lead.subspan(off, n)).accepted;
    engine.pump();
    if (mid_hook) mid_hook(engine, *id, off);
  }
  engine.drain();
  EXPECT_TRUE(engine.close_session(*id));
  return out;
}

std::vector<VerdictSig> sigs(const std::vector<TaggedVerdict>& tagged) {
  std::vector<VerdictSig> out;
  out.reserve(tagged.size());
  for (const auto& t : tagged) out.push_back(t.sig);
  return out;
}

// The acceptance criterion, engine-level: the swapped run's verdicts split
// at the swap sequence into an exact prefix of the model-A run and an
// exact suffix of the model-B run — for any thread/shard count.
TEST_F(LifecycleSwapTest, SwapSplitsVerdictStreamExactly) {
  const auto lead = patient_lead(40, 25.0);
  const auto ref_a = run_engine(*clf_a_, lead, 1, 1);
  const auto ref_b = run_engine(*clf_b_, lead, 1, 1);
  ASSERT_FALSE(ref_a.empty());
  ASSERT_EQ(ref_a.size(), ref_b.size())
      << "detection is classifier-independent, so beat counts must agree";
  ASSERT_NE(sigs(ref_a), sigs(ref_b))
      << "the two models must be distinguishable for this test to bite";
  for (const auto& t : ref_a) EXPECT_EQ(t.model_version, 1u);

  const std::pair<std::size_t, std::size_t> combos[] = {{1, 1}, {2, 2}, {4, 2}};
  for (const auto& [threads, shards] : combos) {
    bool staged = false;
    const auto swapped = run_engine(
        *clf_a_, lead, threads, shards,
        [&staged, this](service::FleetEngine& engine, service::SessionId id,
                        std::size_t off) {
          if (!staged && off >= 2048 * 3) {
            EXPECT_TRUE(engine.stage_swap(id, model_b()));
            staged = true;
          }
        });
    ASSERT_EQ(swapped.size(), ref_a.size());
    // The swap point is the first verdict tagged with the new version.
    std::size_t split = swapped.size();
    for (std::size_t i = 0; i < swapped.size(); ++i) {
      if (swapped[i].model_version == 2u) {
        split = i;
        break;
      }
    }
    ASSERT_GT(split, 0u) << "swap must not predate the first beat";
    ASSERT_LT(split, swapped.size()) << "swap must land mid-stream";
    for (std::size_t i = 0; i < swapped.size(); ++i) {
      if (i < split) {
        EXPECT_EQ(swapped[i].sig, ref_a[i].sig)
            << "prefix diverged at " << i << " (threads " << threads << ")";
        EXPECT_EQ(swapped[i].model_version, 1u);
      } else {
        EXPECT_EQ(swapped[i].sig, ref_b[i].sig)
            << "suffix diverged at " << i << " (threads " << threads << ")";
        EXPECT_EQ(swapped[i].model_version, 2u);
      }
      EXPECT_EQ(swapped[i].sig.sequence, i) << "no gaps, no duplicates";
    }
  }
}

TEST_F(LifecycleSwapTest, RestagingSameModelIsIdempotent) {
  const auto lead = patient_lead(41, 12.0);
  service::FleetEngine engine(*clf_a_, {});
  std::vector<TaggedVerdict> out;
  const auto id =
      engine.open_session([&out](const service::SessionResult& r) {
        out.push_back(TaggedVerdict{VerdictSig{}, r.model_version});
      });
  ASSERT_TRUE(id.has_value());
  const auto m = model_b();
  std::size_t off = 0;
  bool staged = false;
  while (off < lead.size()) {
    const std::size_t n = std::min<std::size_t>(2048, lead.size() - off);
    off += engine.offer(*id, std::span<const double>(lead).subspan(off, n))
               .accepted;
    engine.pump();
    if (!staged && off >= 2048 * 2) {
      EXPECT_TRUE(engine.stage_swap(*id, m));
      engine.pump();  // applies the swap
      EXPECT_TRUE(engine.stage_swap(*id, m));  // same model again
      staged = true;
    }
  }
  engine.drain();
  const service::SessionTelemetry* t = engine.session_telemetry(*id);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->swap_count.load(), 1u)
      << "re-staging the identical model must not count as a second swap";
  EXPECT_EQ(t->model_version.load(), 2u);
  EXPECT_EQ(engine.telemetry().swaps_staged.load(), 2u);
  EXPECT_EQ(engine.telemetry().swaps_applied.load(), 1u);
  EXPECT_TRUE(engine.close_session(*id));
}

// Satellite (a): the swap re-seeds the drift tracker from the NEW bundle's
// centroids — the old tracker state (built in the old RP space) is
// discarded, so the fresh beat count restarts below the old one.
TEST_F(LifecycleSwapTest, SwapReseedsDriftFromBundleCentroids) {
  const auto lead = patient_lead(42, 20.0);
  service::FleetConfig cfg;
  cfg.session.drift_centroids = centroids_a_;  // deprecated route, model A
  service::FleetEngine engine(*clf_a_, cfg);
  const auto id = engine.open_session([](const service::SessionResult&) {});
  ASSERT_TRUE(id.has_value());

  // Three quarters of the stream on the old seeds, one quarter on the new:
  // the fresh tracker's beat count must restart well below the old one.
  const std::size_t pre_swap = lead.size() * 3 / 4;
  std::size_t off = 0;
  while (off < pre_swap) {
    const std::size_t n = std::min<std::size_t>(2048, pre_swap - off);
    off += engine.offer(*id, std::span<const double>(lead).subspan(off, n))
               .accepted;
    engine.pump();
  }
  const service::SessionTelemetry* t = engine.session_telemetry(*id);
  ASSERT_NE(t, nullptr);
  const std::uint64_t beats_before = t->drift_beats.load();
  ASSERT_GT(beats_before, 4u) << "first half must classify some beats";

  ASSERT_TRUE(engine.stage_swap(*id, model_b()));
  engine.pump();  // applies the swap, re-seeding from centroids_b_
  while (off < lead.size()) {
    const std::size_t n = std::min<std::size_t>(2048, lead.size() - off);
    off += engine.offer(*id, std::span<const double>(lead).subspan(off, n))
               .accepted;
    engine.pump();
  }
  engine.drain();
  const std::uint64_t beats_after = t->drift_beats.load();
  EXPECT_LT(beats_after, beats_before)
      << "a fresh tracker seeded from the new bundle restarts its count";
  EXPECT_EQ(t->model_version.load(), 2u);
  EXPECT_EQ(t->swap_count.load(), 1u);
  EXPECT_TRUE(engine.close_session(*id));
}

// --- gateway wire path -----------------------------------------------------

std::vector<dsp::Sample> wire_codes(const std::vector<double>& lead) {
  const core::MonitorConfig mc;
  std::vector<dsp::Sample> codes;
  codes.reserve(lead.size());
  dsp::Sample last = 0;
  for (const double x : lead)
    codes.push_back(
        net::SensorNodeClient::sanitize(x, mc.quality, last, nullptr));
  return codes;
}

std::vector<VerdictSig> direct_ingest(
    const embedded::EmbeddedClassifier& classifier,
    std::span<const dsp::Sample> codes) {
  service::FleetEngine engine(classifier, {});
  std::vector<VerdictSig> out;
  const auto id =
      engine.open_session([&out](const service::SessionResult& r) {
        out.push_back(VerdictSig{r.sequence,
                                 static_cast<std::uint64_t>(r.beat.r_peak),
                                 static_cast<std::uint8_t>(r.beat.predicted),
                                 static_cast<std::uint8_t>(r.beat.quality)});
      });
  EXPECT_TRUE(id.has_value());
  std::size_t off = 0;
  while (off < codes.size()) {
    const std::size_t n = std::min<std::size_t>(1024, codes.size() - off);
    off += engine.offer(*id, codes.subspan(off, n)).accepted;
    engine.pump();
  }
  engine.drain();
  EXPECT_TRUE(engine.close_session(*id));
  return out;
}

struct GatewayHarness {
  net::GatewayServer gw;
  std::thread thread;
  GatewayHarness(const embedded::EmbeddedClassifier& classifier,
                 net::GatewayConfig cfg)
      : gw(classifier, std::move(cfg)), thread([this] { gw.serve(); }) {}
  ~GatewayHarness() {
    gw.stop();
    thread.join();
  }
};

/// Splits a wire verdict stream against the two reference runs: everything
/// before the first divergence from ref_a must equal ref_a, everything
/// from it on must equal ref_b. Returns the split index.
std::size_t expect_split(const std::vector<VerdictSig>& got,
                         const std::vector<VerdictSig>& ref_a,
                         const std::vector<VerdictSig>& ref_b) {
  EXPECT_EQ(got.size(), ref_a.size()) << "dropped or duplicated verdicts";
  std::size_t split = got.size();
  for (std::size_t i = 0; i < got.size() && i < ref_a.size(); ++i) {
    if (!(got[i] == ref_a[i])) {
      split = i;
      break;
    }
  }
  for (std::size_t i = split; i < got.size() && i < ref_b.size(); ++i)
    EXPECT_EQ(got[i], ref_b[i]) << "suffix diverged from the new model at "
                                << i << " (split " << split << ")";
  return split;
}

// The acceptance criterion, wire-level: a MODEL_PUSH mid-ingest hot-swaps
// every targeted session at a beat boundary — each client's verdict stream
// is an exact prefix of the old model's run followed by an exact suffix of
// the new model's run, with zero drops or duplicates, for 1 and 2 reactors.
TEST_F(LifecycleSwapTest, GatewayPushMidIngestSwapsEverySession) {
  constexpr std::size_t kClients = 2;
  std::vector<std::vector<double>> leads;
  std::vector<std::vector<dsp::Sample>> codes;
  std::vector<std::vector<VerdictSig>> ref_a(kClients), ref_b(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    leads.push_back(patient_lead(60 + i, 20.0));
    codes.push_back(wire_codes(leads[i]));
    ref_a[i] = direct_ingest(*clf_a_, codes[i]);
    ref_b[i] = direct_ingest(*clf_b_, codes[i]);
    ASSERT_FALSE(ref_a[i].empty());
    ASSERT_EQ(ref_a[i].size(), ref_b[i].size());
  }

  const lifecycle::ModelBundle bundle{
      .version = 2, .model = *trained_b_, .centroids = *centroids_b_};

  for (const std::size_t reactors : {std::size_t{1}, std::size_t{2}}) {
    net::GatewayConfig gcfg;
    gcfg.reactors = reactors;
    GatewayHarness harness(*clf_a_, gcfg);
    ASSERT_EQ(harness.gw.active_model_version(), 1u);

    std::atomic<std::size_t> at_barrier{0};
    std::atomic<bool> pushed{false};
    std::vector<std::vector<VerdictSig>> got(kClients);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        net::NodeConfig ncfg;
        ncfg.port = harness.gw.port();
        ncfg.node_id = static_cast<std::uint32_t>(i);
        ncfg.policy = net::TxPolicy::StreamEverything;
        net::SensorNodeClient client(*clf_a_, ncfg);
        client.set_verdict_sink(
            [&got, i](std::uint64_t seq, const net::BeatVerdictMsg& v) {
              got[i].push_back(
                  VerdictSig{seq, v.r_peak, v.beat_class, v.quality});
            });
        const std::span<const double> lead(leads[i]);
        // Rendezvous: hold the stream mid-ingest until the push lands so
        // the swap provably targets live sessions with traffic in flight —
        // the session must exist and have delivered verdicts on the OLD
        // model before the push, else it would simply open on the new one.
        // Feed a second at a time past the halfway mark until the first
        // verdict lands (detector warm-up is signal-dependent).
        std::size_t fed = lead.size() / 2;
        client.push(lead.first(fed));
        while (got[i].empty() && fed < lead.size()) {
          const std::size_t step =
              std::min<std::size_t>(360, lead.size() - fed);
          client.push(lead.subspan(fed, step));
          fed += step;
          for (int s = 0; s < 50 && got[i].empty(); ++s) client.poll_once(5);
        }
        EXPECT_FALSE(got[i].empty()) << "client " << i;
        at_barrier.fetch_add(1);
        while (!pushed.load()) {
          client.poll_once(5);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        client.push(lead.subspan(fed));
        client.finish();
        EXPECT_TRUE(client.drain(30000)) << "client " << i;
        client.close(5000);
      });
    }
    while (at_barrier.load() < kClients)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const net::PushResult push =
        net::push_bundle(harness.gw.port(), bundle);
    EXPECT_TRUE(push.delivered) << push.error;
    EXPECT_EQ(push.status, net::ModelPushStatus::Ok);
    EXPECT_EQ(push.version, 2u);
    pushed.store(true);
    for (auto& t : threads) t.join();

    EXPECT_EQ(harness.gw.active_model_version(), 2u);
    EXPECT_EQ(harness.gw.stats().model_pushes_ok.load(), 1u);
    EXPECT_EQ(harness.gw.engine().telemetry().swaps_applied.load(),
              kClients)
        << "every live session must apply the swap";
    for (std::size_t i = 0; i < kClients; ++i) {
      const std::size_t split = expect_split(got[i], ref_a[i], ref_b[i]);
      EXPECT_LT(split, got[i].size())
          << "client " << i << ": the swap must land before the stream ends"
          << " (reactors " << reactors << ")";
      for (std::size_t j = 0; j < got[i].size(); ++j)
        EXPECT_EQ(got[i][j].sequence, j);
    }
  }
}

/// Minimal hand-rolled pusher that can announce a digest of our choosing —
/// the one NACK (BadDigest) an honest client can never produce.
net::PushResult raw_push(std::uint16_t port, const net::ModelPushMsg& m,
                         std::span<const unsigned char> image,
                         std::size_t chunk) {
  net::PushResult res;
  res.version = m.version;
  net::Socket sock = net::connect_loopback(port);
  if (!sock.valid()) {
    res.error = "connect failed";
    return res;
  }
  pollfd p{};
  p.fd = sock.fd();
  p.events = POLLOUT;
  if (::poll(&p, 1, 5000) <= 0 || !net::connect_finished(sock.fd())) {
    res.error = "connect failed";
    return res;
  }
  std::vector<unsigned char> out;
  net::append_frame(out, net::FrameType::ModelPush, 0,
                    net::encode_model_push(m));
  for (std::size_t i = 0; i * chunk < image.size(); ++i)
    net::append_frame(
        out, net::FrameType::ModelPushPart, i,
        image.subspan(i * chunk,
                      std::min(chunk, image.size() - i * chunk)));
  std::size_t head = 0;
  net::FrameParser parser;
  unsigned char buf[8192];
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (Clock::now() < deadline) {
    p.events = static_cast<short>(POLLIN | (head < out.size() ? POLLOUT : 0));
    (void)::poll(&p, 1, 20);
    if (head < out.size()) {
      const net::IoResult w = net::send_some(
          sock.fd(), std::span<const unsigned char>(out).subspan(head));
      if (w.error) {
        res.error = "send failed";
        return res;
      }
      head += w.n;
    }
    const net::IoResult r = net::recv_some(sock.fd(), buf);
    if (r.n > 0) {
      if (!parser.feed(std::span<const unsigned char>(buf, r.n))) {
        res.error = "corrupt ack";
        return res;
      }
      net::FrameView f;
      while (parser.next(f) == net::FrameParser::Status::Ok) {
        if (f.type != net::FrameType::ModelAck) continue;
        const auto ack = net::decode_model_ack(f.payload);
        if (!ack.has_value()) {
          res.error = "bad ack";
          return res;
        }
        res.delivered = true;
        res.status = ack->status;
        res.version = ack->version;
        return res;
      }
    } else if (r.eof || r.error) {
      res.error = "closed before ack";
      return res;
    }
  }
  res.error = "timeout";
  return res;
}

// Satellite (c) over the wire: every refused push is NACKed with the right
// reason, the active model never moves, and a client streaming through the
// whole barrage gets the bit-identical old-model verdict stream.
TEST_F(LifecycleSwapTest, NackedPushesLeaveModelAndTrafficUntouched) {
  const auto lead = patient_lead(70, 18.0);
  const auto codes = wire_codes(lead);
  const auto ref_a = direct_ingest(*clf_a_, codes);
  ASSERT_FALSE(ref_a.empty());

  net::GatewayConfig gcfg;
  gcfg.reactors = 1;
  GatewayHarness harness(*clf_a_, gcfg);
  const std::uint16_t port = harness.gw.port();

  std::vector<VerdictSig> got;
  std::atomic<bool> half_done{false};
  std::atomic<bool> pushes_done{false};
  std::thread client_thread([&] {
    net::NodeConfig ncfg;
    ncfg.port = port;
    ncfg.policy = net::TxPolicy::StreamEverything;
    net::SensorNodeClient client(*clf_a_, ncfg);
    client.set_verdict_sink(
        [&got](std::uint64_t seq, const net::BeatVerdictMsg& v) {
          got.push_back(VerdictSig{seq, v.r_peak, v.beat_class, v.quality});
        });
    const std::span<const double> span(lead);
    // Feed at least half, then keep feeding a second at a time until the
    // gateway has delivered a verdict — the NACK barrage below must hit a
    // session that is provably live with traffic in flight.
    std::size_t fed = span.size() / 2;
    client.push(span.first(fed));
    while (got.empty() && fed < span.size()) {
      const std::size_t step = std::min<std::size_t>(360, span.size() - fed);
      client.push(span.subspan(fed, step));
      fed += step;
      for (int i = 0; i < 50 && got.empty(); ++i) client.poll_once(5);
    }
    EXPECT_FALSE(got.empty());
    half_done.store(true);
    while (!pushes_done.load()) {
      client.poll_once(5);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    client.push(span.subspan(fed));
    client.finish();
    EXPECT_TRUE(client.drain(30000));
    client.close(5000);
  });
  while (!half_done.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // (1) Duplicate: version 1 is the seeded incumbent.
  const lifecycle::ModelBundle dup{.version = 1, .model = *trained_b_};
  auto r = net::push_bundle(port, dup);
  EXPECT_TRUE(r.delivered) << r.error;
  EXPECT_EQ(r.status, net::ModelPushStatus::Duplicate);

  // (2) Malformed: valid framing, garbage bundle image (digest matches,
  // decode must throw).
  std::vector<unsigned char> garbage(4096, 0x5Au);
  r = net::push_image(port, 6, garbage);
  EXPECT_TRUE(r.delivered) << r.error;
  EXPECT_EQ(r.status, net::ModelPushStatus::Malformed);

  // (3) Malformed: a real bundle with one payload byte flipped — the
  // announced digest is recomputed over the tampered image, so it passes
  // the digest check and must die on the bundle's own CRC.
  const lifecycle::ModelBundle v3{.version = 3, .model = *trained_b_};
  auto tampered = lifecycle::encode_bundle(v3);
  tampered[tampered.size() - 9] ^= 0x10u;
  r = net::push_image(port, 3, tampered);
  EXPECT_TRUE(r.delivered) << r.error;
  EXPECT_EQ(r.status, net::ModelPushStatus::Malformed);

  // (4) BadGeometry: a well-formed bundle whose projector shape does not
  // match the incumbent's.
  const lifecycle::ModelBundle odd{
      .version = 4, .model = make_model(900, /*k=*/6, /*cols=*/30)};
  ASSERT_NE(odd.model.projector.expected_window(),
            trained_a_->projector.expected_window());
  r = net::push_bundle(port, odd);
  EXPECT_TRUE(r.delivered) << r.error;
  EXPECT_EQ(r.status, net::ModelPushStatus::BadGeometry);

  // (5) BadDigest: announce a digest that does not match the bytes.
  const auto good = lifecycle::encode_bundle(v3);
  net::ModelPushMsg lie;
  lie.version = 3;
  lie.total_bytes = good.size();
  lie.digest = lifecycle::bundle_digest(good) ^ 0xDEADBEEFull;
  lie.chunk_bytes = 8192;
  lie.part_count =
      static_cast<std::uint32_t>((good.size() + 8191) / 8192);
  r = raw_push(port, lie, good, 8192);
  EXPECT_TRUE(r.delivered) << r.error;
  EXPECT_EQ(r.status, net::ModelPushStatus::BadDigest);

  // (6) TooLarge: an announce whose size exceeds the bundle cap is NACKed
  // before any part is accepted.
  net::ModelPushMsg huge;
  huge.version = 5;
  huge.total_bytes = net::kMaxBundleBytes + 1;
  huge.digest = 1;
  huge.chunk_bytes = 8192;
  huge.part_count = 4096;
  r = raw_push(port, huge, {}, 8192);
  EXPECT_TRUE(r.delivered) << r.error;
  EXPECT_EQ(r.status, net::ModelPushStatus::TooLarge);

  EXPECT_EQ(harness.gw.active_model_version(), 1u)
      << "six refused pushes must not move the active model";
  EXPECT_EQ(harness.gw.stats().model_push_nacks.load(), 6u);
  EXPECT_EQ(harness.gw.stats().model_pushes_ok.load(), 0u);
  EXPECT_EQ(harness.gw.engine().telemetry().swaps_staged.load(), 0u);

  pushes_done.store(true);
  client_thread.join();
  EXPECT_EQ(got, ref_a) << "traffic through the barrage must be "
                           "bit-identical to the old model's run";
}

// Satellite (c): downgrade refusal and rollback after a deployment, over
// the wire. Registry-full behavior with every slot protected.
TEST_F(LifecycleSwapTest, DowngradeRollbackAndRegistryFullOverWire) {
  net::GatewayConfig gcfg;
  gcfg.reactors = 1;
  gcfg.registry.max_slots = 2;  // initial + exactly one more
  GatewayHarness harness(*clf_a_, gcfg);
  const std::uint16_t port = harness.gw.port();

  const lifecycle::ModelBundle v10{
      .version = 10, .model = *trained_b_, .centroids = *centroids_b_};
  auto r = net::push_bundle(port, v10);
  ASSERT_TRUE(r.delivered) << r.error;
  ASSERT_EQ(r.status, net::ModelPushStatus::Ok);
  EXPECT_EQ(harness.gw.active_model_version(), 10u);

  // Downgrade: older than the new incumbent.
  const lifecycle::ModelBundle v7{.version = 7, .model = *trained_b_};
  r = net::push_bundle(port, v7);
  EXPECT_TRUE(r.delivered) << r.error;
  EXPECT_EQ(r.status, net::ModelPushStatus::Downgrade);

  // RegistryFull: both slots are now active (10) and rollback target (1).
  const lifecycle::ModelBundle v11{.version = 11, .model = *trained_b_};
  r = net::push_bundle(port, v11);
  EXPECT_TRUE(r.delivered) << r.error;
  EXPECT_EQ(r.status, net::ModelPushStatus::RegistryFull);

  // Rollback after the deployment: back to version 1, staged fleet-wide.
  EXPECT_TRUE(harness.gw.rollback_model());
  EXPECT_EQ(harness.gw.active_model_version(), 1u);
  // Rollback swaps active and previous, so a second one re-deploys v10.
  EXPECT_TRUE(harness.gw.rollback_model());
  EXPECT_EQ(harness.gw.active_model_version(), 10u);
}

// A/B: with a split enabled, an accepted push deploys to arm B only; arm A
// sessions keep the incumbent verdict stream while arm B swaps — and
// promote_candidate() graduates it fleet-wide.
TEST_F(LifecycleSwapTest, AbSplitDeploysCandidateToArmBOnly) {
  // Pick two node ids on opposite arms of the default split.
  lifecycle::AbSplit split;
  split.percent_b = 50;
  std::uint32_t node_a = 0, node_b = 0;
  bool have_a = false, have_b = false;
  for (std::uint32_t n = 0; n < 64 && !(have_a && have_b); ++n) {
    if (split.arm(n) == 0 && !have_a) {
      node_a = n;
      have_a = true;
    } else if (split.arm(n) == 1 && !have_b) {
      node_b = n;
      have_b = true;
    }
  }
  ASSERT_TRUE(have_a && have_b);

  const auto lead = patient_lead(80, 16.0);
  const auto codes = wire_codes(lead);
  const auto ref_a = direct_ingest(*clf_a_, codes);
  const auto ref_b = direct_ingest(*clf_b_, codes);
  ASSERT_FALSE(ref_a.empty());

  net::GatewayConfig gcfg;
  gcfg.reactors = 1;
  GatewayHarness harness(*clf_a_, gcfg);
  harness.gw.enable_ab(split);
  ASSERT_TRUE(harness.gw.ab_enabled());

  const lifecycle::ModelBundle bundle{
      .version = 2, .model = *trained_b_, .centroids = *centroids_b_};

  std::atomic<std::size_t> at_barrier{0};
  std::atomic<bool> pushed{false};
  std::vector<std::vector<VerdictSig>> got(2);
  std::vector<std::thread> threads;
  const std::uint32_t nodes[2] = {node_a, node_b};
  for (std::size_t i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      net::NodeConfig ncfg;
      ncfg.port = harness.gw.port();
      ncfg.node_id = nodes[i];
      ncfg.policy = net::TxPolicy::StreamEverything;
      net::SensorNodeClient client(*clf_a_, ncfg);
      client.set_verdict_sink(
          [&got, i](std::uint64_t seq, const net::BeatVerdictMsg& v) {
            got[i].push_back(
                VerdictSig{seq, v.r_peak, v.beat_class, v.quality});
          });
      const std::span<const double> span(lead);
      // Session must be live on its arm's model before the candidate push
      // (see the mid-ingest test for why); feed until the first verdict.
      std::size_t fed = span.size() / 2;
      client.push(span.first(fed));
      while (got[i].empty() && fed < span.size()) {
        const std::size_t step = std::min<std::size_t>(360, span.size() - fed);
        client.push(span.subspan(fed, step));
        fed += step;
        for (int s = 0; s < 50 && got[i].empty(); ++s) client.poll_once(5);
      }
      EXPECT_FALSE(got[i].empty()) << "client " << i;
      at_barrier.fetch_add(1);
      while (!pushed.load()) {
        client.poll_once(5);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      client.push(span.subspan(fed));
      client.finish();
      EXPECT_TRUE(client.drain(30000));
      client.close(5000);
    });
  }
  while (at_barrier.load() < 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const auto push = net::push_bundle(harness.gw.port(), bundle);
  EXPECT_TRUE(push.delivered) << push.error;
  EXPECT_EQ(push.status, net::ModelPushStatus::Ok);
  pushed.store(true);
  for (auto& t : threads) t.join();

  // Candidate deployments do not move the fleet-wide active version.
  EXPECT_EQ(harness.gw.active_model_version(), 1u);
  EXPECT_EQ(harness.gw.stats().ab_sessions_a.load(), 1u);
  EXPECT_EQ(harness.gw.stats().ab_sessions_b.load(), 1u);
  // Arm A never swaps: its stream is the incumbent's, end to end.
  EXPECT_EQ(got[0], ref_a) << "arm A must be untouched";
  // Arm B splits from the incumbent onto the candidate mid-stream.
  const std::size_t split_at = expect_split(got[1], ref_a, ref_b);
  EXPECT_LT(split_at, got[1].size()) << "arm B must actually swap";

  // Graduation: the candidate becomes the fleet-wide active version.
  EXPECT_TRUE(harness.gw.promote_candidate());
  EXPECT_EQ(harness.gw.active_model_version(), 2u);
  EXPECT_FALSE(harness.gw.promote_candidate())
      << "nothing left to graduate";
}

}  // namespace
