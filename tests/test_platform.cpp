// Tests for the platform models: cycle costs, duty-cycle composition,
// code-size inventory and the energy model.
#include <gtest/gtest.h>

#include "math/check.hpp"
#include "platform/codesize.hpp"
#include "platform/cycles.hpp"
#include "platform/energy.hpp"
#include "platform/icyheart.hpp"

namespace {

using namespace hbrp::platform;

KernelCosts paper_costs() {
  return KernelCosts(CycleModel{}, 360, MorphologyImpl::NaivePerSample);
}

ScenarioParams paper_scenario() {
  ScenarioParams p;
  p.beat_rate_hz = 1.2;
  p.flagged_fraction = 0.22;
  return p;
}

TEST(Cycles, MorphologyNaiveScalesWithElement) {
  const auto k = paper_costs();
  EXPECT_GT(k.morphology_pass_per_sample(71),
            2.0 * k.morphology_pass_per_sample(31));
}

TEST(Cycles, DequeIsConstantAndCheaper) {
  const KernelCosts deq(CycleModel{}, 360, MorphologyImpl::MonotonicDeque);
  EXPECT_DOUBLE_EQ(deq.morphology_pass_per_sample(71),
                   deq.morphology_pass_per_sample(151));
  const auto naive = paper_costs();
  EXPECT_LT(deq.morphology_pass_per_sample(71),
            naive.morphology_pass_per_sample(71) / 5.0);
}

TEST(Cycles, RpClassifierIsTinyVsConditioning) {
  // Table III's first observation: the RP-NFC needs far less effort than
  // filtering + peak detection. Compare per-second consumption.
  const auto k = paper_costs();
  const double classifier_per_s =
      1.2 * k.rp_classifier_per_beat(8, 200, 4);
  const double conditioning_per_s =
      360.0 * (k.conditioning_per_sample() + k.wavelet_per_sample() +
               k.peak_logic_per_sample());
  EXPECT_LT(classifier_per_s, conditioning_per_s / 20.0);
}

TEST(Cycles, CostsGrowWithCoefficients) {
  const auto k = paper_costs();
  EXPECT_LT(k.rp_classifier_per_beat(8, 200, 4),
            k.rp_classifier_per_beat(16, 200, 4));
  EXPECT_LT(k.rp_classifier_per_beat(16, 200, 4),
            k.rp_classifier_per_beat(32, 200, 4));
}

TEST(Cycles, DownsamplingCutsProjectionCost) {
  const auto k = paper_costs();
  EXPECT_LT(k.rp_projection_per_beat(8, 200, 4),
            k.rp_projection_per_beat(8, 200, 1) / 2.0);
}

TEST(Cycles, InvalidArgsThrow) {
  EXPECT_THROW(KernelCosts(CycleModel{}, 0), hbrp::Error);
  const auto k = paper_costs();
  EXPECT_THROW(k.rp_projection_per_beat(8, 200, 0), hbrp::Error);
}

TEST(DutyCycle, TableIIIOrdering) {
  // duty(classifier) << duty(sub1) < duty(system3) < duty(sub2).
  const auto k = paper_costs();
  const auto p = paper_scenario();
  const IcyHeartSpec soc;
  const double d_cls = load_rp_classifier(k, p).duty_cycle(soc);
  const double d_1 = load_subsystem1(k, p).duty_cycle(soc);
  const double d_2 = load_subsystem2(k, p).duty_cycle(soc);
  const double d_3 = load_system3(k, p).duty_cycle(soc);
  EXPECT_LT(d_cls, 0.01);   // "less than 1% of the duty cycle"
  EXPECT_LT(d_cls, d_1);
  EXPECT_LT(d_1, d_3);
  EXPECT_LT(d_3, d_2);
  // The headline: gated system saves a large fraction vs always-on.
  const double saving = (d_2 - d_3) / d_2;
  EXPECT_GT(saving, 0.4);
  EXPECT_LT(saving, 0.9);
}

TEST(DutyCycle, GatingSavingsShrinkWithFlaggedFraction) {
  const auto k = paper_costs();
  auto p = paper_scenario();
  const IcyHeartSpec soc;
  p.flagged_fraction = 0.1;
  const double d3_low = load_system3(k, p).duty_cycle(soc);
  p.flagged_fraction = 0.9;
  const double d3_high = load_system3(k, p).duty_cycle(soc);
  EXPECT_LT(d3_low, d3_high);
  // At ~100% flagged the gated system approaches (and with the per-beat
  // re-filtering overhead can exceed) the always-on one.
  const double d2 = load_subsystem2(k, p).duty_cycle(soc);
  EXPECT_GT(d3_high, 0.75 * d2);
}

TEST(DutyCycle, AllWithinRealTimeBudget) {
  const auto k = paper_costs();
  const auto p = paper_scenario();
  const IcyHeartSpec soc;
  EXPECT_LT(load_subsystem2(k, p).duty_cycle(soc), 1.0);
  EXPECT_LT(load_system3(k, p).duty_cycle(soc), 1.0);
}

TEST(DutyCycle, ScenarioValidation) {
  const auto k = paper_costs();
  ScenarioParams p = paper_scenario();
  p.beat_rate_hz = 0.0;
  EXPECT_THROW(load_subsystem1(k, p), hbrp::Error);
  p = paper_scenario();
  p.flagged_fraction = 1.5;
  EXPECT_THROW(load_system3(k, p), hbrp::Error);
  p = paper_scenario();
  p.window = 201;
  EXPECT_THROW(load_rp_classifier(k, p), hbrp::Error);
}

TEST(CodeSize, MatchesTableIII) {
  const CodeSizeModel model;
  EXPECT_NEAR(model.rp_classifier_kb(), 1.64, 0.02);
  EXPECT_NEAR(model.subsystem1_kb(), 30.29, 0.05);
  EXPECT_NEAR(model.subsystem2_kb(), 46.39, 0.05);
  EXPECT_NEAR(model.system3_kb(), 76.68, 0.05);
}

TEST(CodeSize, InventoryConsistent) {
  const CodeSizeModel model;
  EXPECT_FALSE(model.rp_classifier_items().empty());
  EXPECT_FALSE(model.acquisition_items().empty());
  EXPECT_FALSE(model.delineation_items().empty());
  // The composed system is the sum of its stage inventories.
  EXPECT_NEAR(model.system3_kb(),
              model.subsystem1_kb() + model.subsystem2_kb(), 1e-9);
}

TEST(CodeSize, FitsIcyHeartMemoryWithRoom) {
  const CodeSizeModel model;
  const IcyHeartSpec soc;
  EXPECT_LT(model.system3_kb() * 1024.0,
            static_cast<double>(soc.ram_bytes));
}

TEST(Energy, ProposedBeatsBaselineOnAllAxes) {
  const auto k = paper_costs();
  const auto p = paper_scenario();
  const IcyHeartSpec soc;
  const PowerModel power;
  const PayloadModel payload;
  const auto base = energy_baseline(k, p, soc, power, payload);
  const auto prop = energy_proposed(k, p, soc, power, payload);
  EXPECT_LT(prop.compute_w, base.compute_w);
  EXPECT_LT(prop.radio_w, base.radio_w);
  EXPECT_LT(prop.total_w(), base.total_w());
  EXPECT_DOUBLE_EQ(prop.rest_w, base.rest_w);
}

TEST(Energy, SavingsInPaperRegime) {
  const auto k = paper_costs();
  const auto p = paper_scenario();
  const IcyHeartSpec soc;
  const PowerModel power;
  const PayloadModel payload;
  const auto base = energy_baseline(k, p, soc, power, payload);
  const auto prop = energy_proposed(k, p, soc, power, payload);
  const double radio_saving = relative_saving(base.radio_w, prop.radio_w);
  const double compute_saving =
      relative_saving(base.compute_w, prop.compute_w);
  const double total_saving = relative_saving(base.total_w(), prop.total_w());
  // Paper: 68% wireless, 63% computation, ~23% total.
  EXPECT_GT(radio_saving, 0.5);
  EXPECT_LT(radio_saving, 0.85);
  EXPECT_GT(compute_saving, 0.4);
  EXPECT_LT(compute_saving, 0.85);
  EXPECT_GT(total_saving, 0.1);
  EXPECT_LT(total_saving, 0.4);
}

TEST(Energy, ComputeRadioShareNearPaperAssumption) {
  // [1]: computation + communication ~ 34% of node energy for the baseline.
  const auto base =
      energy_baseline(paper_costs(), paper_scenario(), IcyHeartSpec{},
                      PowerModel{}, PayloadModel{});
  EXPECT_GT(base.compute_radio_share(), 0.25);
  EXPECT_LT(base.compute_radio_share(), 0.45);
}

TEST(Energy, PayloadModelBytes) {
  const PayloadModel payload;
  EXPECT_EQ(payload.full_beat_bytes(), 2u + 9u * 2u);
  EXPECT_EQ(payload.normal_beat_bytes(), 2u + 2u);
}

TEST(Energy, RelativeSavingValidation) {
  EXPECT_DOUBLE_EQ(relative_saving(10.0, 5.0), 0.5);
  EXPECT_THROW(relative_saving(0.0, 1.0), hbrp::Error);
}

TEST(Energy, OverloadedPlatformRejected) {
  // A scenario exceeding real-time capacity must be flagged, not silently
  // clamped.
  const auto k = paper_costs();
  auto p = paper_scenario();
  p.beat_rate_hz = 500.0;  // absurd workload
  IcyHeartSpec slow;
  slow.clock_hz = 1.0e5;
  const PowerModel power;
  const PayloadModel payload;
  EXPECT_THROW(energy_baseline(k, p, slow, power, payload), hbrp::Error);
}

}  // namespace
