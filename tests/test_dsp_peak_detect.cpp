// Tests for the wavelet-based R-peak detector, validated against the
// synthetic generator's ground-truth annotations.
#include <gtest/gtest.h>

#include "dsp/morphology.hpp"
#include "dsp/peak_detect.hpp"
#include "ecg/synth.hpp"

namespace {

using hbrp::dsp::detect_r_peaks;
using hbrp::dsp::match_peaks;
using hbrp::dsp::PeakMatchStats;
using hbrp::dsp::Signal;

Signal conditioned_lead(const hbrp::ecg::Record& rec) {
  return hbrp::dsp::condition_ecg(rec.leads[0]);
}

std::vector<std::size_t> annotation_peaks(const hbrp::ecg::Record& rec) {
  std::vector<std::size_t> out;
  for (const auto& b : rec.beats) out.push_back(b.sample);
  return out;
}

// AAMI-style matching tolerance: 150 ms at 360 Hz.
constexpr std::size_t kTol = 54;

struct ProfileCase {
  hbrp::ecg::RecordProfile profile;
  const char* name;
};

class PeakDetectOnProfile : public ::testing::TestWithParam<ProfileCase> {};

TEST_P(PeakDetectOnProfile, HighSensitivityAndPrecision) {
  hbrp::ecg::SynthConfig cfg;
  cfg.profile = GetParam().profile;
  cfg.duration_s = 120.0;
  cfg.num_leads = 1;
  cfg.seed = 77;
  const auto rec = hbrp::ecg::generate_record(cfg);
  const auto det = detect_r_peaks(conditioned_lead(rec));
  const PeakMatchStats stats = match_peaks(det, annotation_peaks(rec), kTol);
  EXPECT_GT(stats.sensitivity(), 0.98) << GetParam().name;
  EXPECT_GT(stats.positive_predictivity(), 0.98) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, PeakDetectOnProfile,
    ::testing::Values(
        ProfileCase{hbrp::ecg::RecordProfile::NormalSinus, "normal"},
        ProfileCase{hbrp::ecg::RecordProfile::PvcOccasional, "pvc"},
        ProfileCase{hbrp::ecg::RecordProfile::PvcBigeminy, "bigeminy"},
        ProfileCase{hbrp::ecg::RecordProfile::Lbbb, "lbbb"}),
    [](const auto& info) { return info.param.name; });

TEST(PeakDetect, RobustAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    hbrp::ecg::SynthConfig cfg;
    cfg.profile = hbrp::ecg::RecordProfile::PvcOccasional;
    cfg.duration_s = 60.0;
    cfg.num_leads = 1;
    cfg.seed = seed;
    const auto rec = hbrp::ecg::generate_record(cfg);
    const auto det = detect_r_peaks(conditioned_lead(rec));
    const auto stats = match_peaks(det, annotation_peaks(rec), kTol);
    EXPECT_GT(stats.sensitivity(), 0.95) << "seed " << seed;
    EXPECT_GT(stats.positive_predictivity(), 0.93) << "seed " << seed;
  }
}

TEST(PeakDetect, CleanSignalNearPerfect) {
  hbrp::ecg::SynthConfig cfg;
  cfg.profile = hbrp::ecg::RecordProfile::NormalSinus;
  cfg.duration_s = 60.0;
  cfg.num_leads = 1;
  cfg.noise_scale = 0.0;
  cfg.seed = 5;
  const auto rec = hbrp::ecg::generate_record(cfg);
  const auto det = detect_r_peaks(conditioned_lead(rec));
  const auto stats = match_peaks(det, annotation_peaks(rec), kTol);
  EXPECT_GT(stats.sensitivity(), 0.995);
  EXPECT_GT(stats.positive_predictivity(), 0.995);
}

TEST(PeakDetect, PeaksSortedAndRefractorySpaced) {
  hbrp::ecg::SynthConfig cfg;
  cfg.duration_s = 60.0;
  cfg.num_leads = 1;
  cfg.seed = 11;
  const auto rec = hbrp::ecg::generate_record(cfg);
  hbrp::dsp::PeakDetectorConfig det_cfg;
  const auto det = detect_r_peaks(conditioned_lead(rec), det_cfg);
  const auto refractory =
      static_cast<std::size_t>(det_cfg.refractory_s * det_cfg.fs_hz);
  for (std::size_t i = 1; i < det.size(); ++i) {
    EXPECT_LT(det[i - 1], det[i]);
    EXPECT_GE(det[i] - det[i - 1], refractory);
  }
}

TEST(PeakDetect, EmptyAndShortSignals) {
  EXPECT_TRUE(detect_r_peaks({}).empty());
  EXPECT_TRUE(detect_r_peaks(Signal(5, 100)).empty());
  EXPECT_TRUE(detect_r_peaks(Signal(5000, 0)).empty());
}

TEST(PeakDetect, InvalidConfigThrows) {
  hbrp::dsp::PeakDetectorConfig cfg;
  cfg.fs_hz = 0;
  EXPECT_THROW(detect_r_peaks(Signal(100, 0), cfg), hbrp::Error);
  cfg = {};
  cfg.detect_scale = 4;
  EXPECT_THROW(detect_r_peaks(Signal(100, 0), cfg), hbrp::Error);
}

TEST(MatchPeaks, ExactAndToleranceMatching) {
  const std::vector<std::size_t> ref = {100, 200, 300};
  const auto s1 = match_peaks({100, 200, 300}, ref, 5);
  EXPECT_EQ(s1.true_positive, 3u);
  EXPECT_EQ(s1.false_positive, 0u);
  EXPECT_EQ(s1.false_negative, 0u);

  const auto s2 = match_peaks({104, 196, 350}, ref, 5);
  EXPECT_EQ(s2.true_positive, 2u);
  EXPECT_EQ(s2.false_positive, 1u);
  EXPECT_EQ(s2.false_negative, 1u);
}

TEST(MatchPeaks, DetectionUsedOnlyOnce) {
  // One detection cannot satisfy two reference beats.
  const auto s = match_peaks({100}, {98, 102}, 5);
  EXPECT_EQ(s.true_positive, 1u);
  EXPECT_EQ(s.false_negative, 1u);
  EXPECT_EQ(s.false_positive, 0u);
}

TEST(MatchPeaks, EmptyInputs) {
  const auto s1 = match_peaks({}, {100}, 5);
  EXPECT_EQ(s1.false_negative, 1u);
  EXPECT_DOUBLE_EQ(s1.sensitivity(), 0.0);
  const auto s2 = match_peaks({100}, {}, 5);
  EXPECT_EQ(s2.false_positive, 1u);
  EXPECT_DOUBLE_EQ(s2.positive_predictivity(), 0.0);
  const auto s3 = match_peaks({}, {}, 5);
  EXPECT_DOUBLE_EQ(s3.sensitivity(), 0.0);
}

}  // namespace
