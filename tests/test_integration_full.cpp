// Full-system integration: the entire lifecycle a downstream user would
// run — build datasets, train the two-step framework, persist the model,
// reload it, deploy it into both the batch pipeline and the streaming
// monitor against a WFDB-round-tripped record, and check the figures of
// merit end to end.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "core/model_io.hpp"
#include "core/pipeline.hpp"
#include "core/streaming.hpp"
#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "ecg/mitdb.hpp"

namespace {

namespace fs = std::filesystem;

TEST(IntegrationFull, TrainPersistDeployClassify) {
  using namespace hbrp;

  // 1. Datasets.
  ecg::DatasetBuilderConfig dcfg;
  dcfg.record_duration_s = 120.0;
  dcfg.max_per_record_per_class = 20;
  dcfg.seed = 71;
  const auto ts1 = ecg::build_dataset({150, 150, 150}, dcfg);
  dcfg.max_per_record_per_class = 80;
  dcfg.seed = 72;
  const auto ts2 = ecg::build_dataset({1500, 140, 170}, dcfg);

  // 2. Two-step training.
  core::TwoStepConfig tcfg;
  tcfg.ga.population = 4;
  tcfg.ga.generations = 2;
  tcfg.seed = 73;
  const core::TwoStepTrainer trainer(ts1, ts2, tcfg);
  const auto trained = trainer.run();

  // 3. Persist + reload.
  const fs::path model_path =
      fs::temp_directory_path() /
      ("hbrp_integration_" + std::to_string(::getpid()) + ".model");
  core::save_model(trained, model_path);
  const auto reloaded = core::load_model(model_path);
  fs::remove(model_path);

  // 4. A test record that has been through the WFDB on-disk format.
  ecg::SynthConfig scfg;
  scfg.profile = ecg::RecordProfile::PvcBigeminy;
  scfg.duration_s = 90.0;
  scfg.num_leads = 2;
  scfg.seed = 74;
  ecg::Record rec = ecg::generate_record(scfg);
  rec.name = "int100";
  const fs::path wfdb_dir =
      fs::temp_directory_path() /
      ("hbrp_integration_wfdb_" + std::to_string(::getpid()));
  ecg::mitdb::write_record(rec, wfdb_dir);
  const ecg::Record from_disk = ecg::mitdb::read_record(wfdb_dir, "int100");
  fs::remove_all(wfdb_dir);
  ASSERT_EQ(from_disk.beats.size(), rec.beats.size());

  // 5. Batch pipeline on the reloaded model.
  const core::RealTimePipeline pipeline(reloaded.quantize());
  const auto result = pipeline.process(from_disk);
  EXPECT_GT(result.beats.size(), from_disk.beats.size() * 85 / 100);

  // Score against the annotations (they survived the WFDB round trip).
  core::ConfusionMatrix cm;
  std::size_t ai = 0;
  for (const auto& b : result.beats) {
    while (ai < from_disk.beats.size() &&
           from_disk.beats[ai].sample + 20 < b.r_peak)
      ++ai;
    if (ai < from_disk.beats.size() &&
        from_disk.beats[ai].sample <= b.r_peak + 20)
      cm.add(from_disk.beats[ai].cls, b.predicted);
  }
  EXPECT_GT(cm.total(), 80u);
  EXPECT_GT(cm.arr(), 0.7);
  EXPECT_GT(cm.ndr(), 0.6);

  // 6. Streaming monitor agrees with the batch pipeline on this record.
  core::StreamingBeatMonitor monitor(reloaded.quantize());
  std::vector<core::MonitorBeat> streamed;
  for (const auto x : from_disk.leads[0]) {
    auto batch = monitor.push(x);
    streamed.insert(streamed.end(), batch.begin(), batch.end());
  }
  auto tail = monitor.flush();
  streamed.insert(streamed.end(), tail.begin(), tail.end());

  std::size_t agree = 0, compared = 0;
  for (const auto& b : result.beats) {
    if (b.r_peak < 1000 || b.r_peak + 1000 > from_disk.leads[0].size())
      continue;
    for (const auto& s : streamed) {
      if (s.r_peak + 5 >= b.r_peak && s.r_peak <= b.r_peak + 5) {
        ++compared;
        agree += (s.predicted == b.predicted);
        break;
      }
    }
  }
  ASSERT_GT(compared, 50u);
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(compared), 0.95);
}

}  // namespace
