// The batched evaluation engine: core::Executor scheduling/determinism
// contracts, the BeatBatch arena container, and exact equivalence of every
// batch entry point with its per-beat counterpart.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/batch.hpp"
#include "core/executor.hpp"
#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "embedded/bundle.hpp"
#include "math/fixed.hpp"
#include "nfc/train.hpp"

namespace {

using hbrp::core::BeatBatch;
using hbrp::core::Executor;

hbrp::ecg::BeatDataset quick_split(const hbrp::ecg::DatasetSpec& spec,
                                   std::uint64_t seed, std::size_t cap) {
  hbrp::ecg::DatasetBuilderConfig cfg;
  cfg.record_duration_s = 90.0;
  cfg.max_per_record_per_class = cap;
  cfg.seed = seed;
  return hbrp::ecg::build_dataset(spec, cfg);
}

// ---------------------------------------------------------------- Executor

TEST(Executor, VisitsEachIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    const Executor executor(threads);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    executor.parallel_for(n, [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
  }
}

TEST(Executor, ZeroThreadsMeansHardwareConcurrency) {
  const Executor executor(0);
  EXPECT_EQ(executor.threads(), Executor::hardware_threads());
  EXPECT_GE(executor.threads(), 1u);
}

TEST(Executor, EmptyAndSingleItemJobs) {
  const Executor executor(4);
  std::atomic<int> count{0};
  executor.parallel_for(0, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  executor.parallel_for(1, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 1);
}

TEST(Executor, NestedParallelForRunsInlineWithoutDeadlock) {
  const Executor executor(2);
  constexpr std::size_t outer = 8, inner = 16;
  std::vector<std::atomic<int>> hits(outer * inner);
  executor.parallel_for(outer, [&](std::size_t i) {
    executor.parallel_for(inner, [&, i](std::size_t j) {
      ++hits[i * inner + j];
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1);
}

TEST(Executor, ExceptionPropagatesToCaller) {
  const Executor executor(4);
  EXPECT_THROW(executor.parallel_for(100,
                                     [](std::size_t i) {
                                       if (i == 37)
                                         throw std::runtime_error("boom");
                                     }),
               std::runtime_error);
  // The executor must stay usable after a failed job.
  std::atomic<int> count{0};
  executor.parallel_for(10, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(Executor, SequentialJobsReuseWorkers) {
  const Executor executor(4);
  std::atomic<int> count{0};
  for (int round = 0; round < 50; ++round)
    executor.parallel_for(20, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 50 * 20);
}

// ---------------------------------------------------------------- BeatBatch

TEST(BeatBatch, RoundTripsDatasetExactly) {
  const auto ds = quick_split({40, 40, 40}, 71, 15);
  const BeatBatch batch = BeatBatch::from_dataset(ds);
  ASSERT_EQ(batch.size(), ds.beats.size());
  EXPECT_EQ(batch.window_length(), ds.window_size());
  EXPECT_EQ(batch.windows().size(), batch.size() * batch.window_length());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.label(i), ds.beats[i].label);
    const auto w = batch.window(i);
    ASSERT_EQ(w.size(), ds.beats[i].samples.size());
    for (std::size_t s = 0; s < w.size(); ++s)
      ASSERT_EQ(w[s], ds.beats[i].samples[s]);
  }
}

TEST(BeatBatch, AppendClearAndValidation) {
  BeatBatch batch(4);
  EXPECT_TRUE(batch.empty());
  const hbrp::dsp::Sample w1[] = {1, -2, 3, -4};
  batch.append(w1, hbrp::ecg::BeatClass::V);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.label(0), hbrp::ecg::BeatClass::V);
  const hbrp::dsp::Sample bad[] = {1, 2};
  EXPECT_THROW(batch.append(bad, hbrp::ecg::BeatClass::N),
               hbrp::Error);
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_THROW(batch.window(0), hbrp::Error);
}

// ------------------------------------------------- batch/scalar equivalence

struct EngineFixture : ::testing::Test {
  void SetUp() override {
    ds = quick_split({80, 50, 50}, 81, 25);
    batch = hbrp::core::BeatBatch::from_dataset(ds);
    hbrp::math::Rng rng(82);
    projector = std::make_unique<hbrp::rp::BeatProjector>(
        hbrp::rp::make_achlioptas(8, ds.window_size() / 4, rng), 4);
    const auto d = hbrp::core::project_dataset(ds, *projector);
    nfc = std::make_unique<hbrp::nfc::NeuroFuzzyClassifier>(8);
    hbrp::nfc::init_from_statistics(*nfc, d.u, d.labels);
    bundle = std::make_unique<hbrp::embedded::EmbeddedClassifier>(
        *projector,
        hbrp::embedded::IntClassifier::from_float(*nfc),
        hbrp::math::to_q16(0.05));
  }

  hbrp::ecg::BeatDataset ds;
  hbrp::core::BeatBatch batch{1};
  std::unique_ptr<hbrp::rp::BeatProjector> projector;
  std::unique_ptr<hbrp::nfc::NeuroFuzzyClassifier> nfc;
  std::unique_ptr<hbrp::embedded::EmbeddedClassifier> bundle;
};

TEST_F(EngineFixture, ProjectBatchBitIdenticalToPerBeat) {
  const std::size_t k = projector->coefficients();
  std::vector<double> batched(batch.size() * k);
  hbrp::rp::ProjectionScratch scratch;
  projector->project_batch(batch.windows(), batch.size(), batched, scratch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto u = projector->project(ds.beats[i].samples);
    for (std::size_t c = 0; c < k; ++c)
      ASSERT_EQ(batched[i * k + c], u[c]) << "beat " << i;
  }
}

TEST_F(EngineFixture, ProjectIntBatchBitIdenticalToPerBeat) {
  const std::size_t k = projector->coefficients();
  std::vector<std::int32_t> batched(batch.size() * k);
  hbrp::rp::ProjectionScratch scratch;
  projector->project_int_batch(batch.windows(), batch.size(), batched,
                               scratch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto u = projector->project_int(ds.beats[i].samples);
    for (std::size_t c = 0; c < k; ++c)
      ASSERT_EQ(batched[i * k + c], u[c]) << "beat " << i;
  }
}

TEST_F(EngineFixture, NfcClassifyBatchMatchesPerBeat) {
  const std::size_t k = projector->coefficients();
  std::vector<double> u(batch.size() * k);
  hbrp::rp::ProjectionScratch scratch;
  projector->project_batch(batch.windows(), batch.size(), u, scratch);
  for (const double alpha : {0.0, 0.05, 0.5}) {
    std::vector<hbrp::ecg::BeatClass> out(batch.size());
    nfc->classify_batch(u, batch.size(), alpha, out);
    for (std::size_t i = 0; i < batch.size(); ++i)
      ASSERT_EQ(out[i],
                nfc->classify({u.data() + i * k, k}, alpha))
          << "alpha " << alpha << " beat " << i;
  }
}

TEST_F(EngineFixture, EmbeddedClassifyBatchMatchesClassifyWindow) {
  std::vector<hbrp::ecg::BeatClass> out(batch.size());
  hbrp::embedded::ClassifyScratch scratch;
  bundle->classify_batch(batch.windows(), batch.size(), out, scratch);
  for (std::size_t i = 0; i < batch.size(); ++i)
    ASSERT_EQ(out[i], bundle->classify_window(ds.beats[i].samples))
        << "beat " << i;
}

TEST_F(EngineFixture, BatchEntryPointsHandleEmptyAndSingleBeat) {
  hbrp::rp::ProjectionScratch scratch;
  hbrp::embedded::ClassifyScratch escratch;
  const std::size_t k = projector->coefficients();

  // Empty batch: every entry point is a no-op.
  projector->project_batch({}, 0, {}, scratch);
  projector->project_int_batch({}, 0, {}, scratch);
  nfc->classify_batch({}, 0, 0.1, {});
  bundle->classify_batch({}, 0, {}, escratch);

  // Single beat: identical to the scalar call.
  std::vector<double> u(k);
  projector->project_batch(batch.window(0), 1, u, scratch);
  const auto expect = projector->project(ds.beats[0].samples);
  for (std::size_t c = 0; c < k; ++c) ASSERT_EQ(u[c], expect[c]);
  hbrp::ecg::BeatClass cls;
  bundle->classify_batch(batch.window(0), 1, {&cls, 1}, escratch);
  EXPECT_EQ(cls, bundle->classify_window(ds.beats[0].samples));
}

TEST_F(EngineFixture, BatchSizeMismatchesAreRejected) {
  hbrp::rp::ProjectionScratch scratch;
  const std::size_t k = projector->coefficients();
  std::vector<double> u(batch.size() * k);
  // Output span too small for the count.
  EXPECT_THROW(projector->project_batch(batch.windows(), batch.size(),
                                        {u.data(), k}, scratch),
               hbrp::Error);
  // Window span not a multiple of the expected window.
  EXPECT_THROW(projector->project_batch(batch.windows().subspan(1),
                                        batch.size(), u, scratch),
               hbrp::Error);
}

TEST_F(EngineFixture, EvaluateParallelIdenticalToSerial) {
  const auto data = hbrp::core::project_dataset(batch, *projector);
  const Executor executor(4);
  for (const double alpha : {0.0, 0.05, 0.3}) {
    const auto serial = hbrp::core::evaluate(*nfc, data, alpha);
    const auto parallel = hbrp::core::evaluate(*nfc, data, alpha, &executor);
    EXPECT_EQ(serial.ndr(), parallel.ndr());
    EXPECT_EQ(serial.arr(), parallel.arr());
  }
}

TEST_F(EngineFixture, EvaluateEmbeddedBatchAndParallelIdenticalToLegacy) {
  const auto legacy = hbrp::core::evaluate_embedded(*bundle, ds);
  const auto batched = hbrp::core::evaluate_embedded(*bundle, batch);
  const Executor executor(4);
  const auto parallel =
      hbrp::core::evaluate_embedded(*bundle, batch, &executor);
  EXPECT_EQ(legacy.ndr(), batched.ndr());
  EXPECT_EQ(legacy.arr(), batched.arr());
  EXPECT_EQ(legacy.ndr(), parallel.ndr());
  EXPECT_EQ(legacy.arr(), parallel.arr());
}

TEST_F(EngineFixture, ProjectDatasetBatchIdenticalToPerBeatOverload) {
  const auto a = hbrp::core::project_dataset(ds, *projector);
  const auto b = hbrp::core::project_dataset(batch, *projector);
  ASSERT_EQ(a.u.rows(), b.u.rows());
  ASSERT_EQ(a.u.cols(), b.u.cols());
  ASSERT_EQ(a.labels, b.labels);
  for (std::size_t i = 0; i < a.u.rows(); ++i)
    for (std::size_t c = 0; c < a.u.cols(); ++c)
      ASSERT_EQ(a.u.at(i, c), b.u.at(i, c));
}

}  // namespace
