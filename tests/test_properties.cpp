// Cross-module property sweeps: invariants that must hold for arbitrary
// inputs, checked over parameterized random instances.
#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "dsp/morphology.hpp"
#include "dsp/resample.hpp"
#include "embedded/int_classifier.hpp"
#include "math/check.hpp"
#include "math/rng.hpp"
#include "nfc/classifier.hpp"
#include "rp/packed_matrix.hpp"

namespace {

using hbrp::math::Rng;

// ---------------------------------------------------------------------------
// Packed matrix == dense matrix, for arbitrary shapes and inputs.
class PackedEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackedEquivalence, ApplyAgreesWithDense) {
  Rng rng(GetParam());
  const std::size_t k = 1 + rng.uniform_index(40);
  const std::size_t d = 1 + rng.uniform_index(300);
  const auto p = hbrp::rp::make_achlioptas(k, d, rng);
  const hbrp::rp::PackedTernaryMatrix packed(p);
  hbrp::dsp::Signal v(d);
  for (auto& x : v) x = static_cast<int>(rng.uniform_int(-4096, 4095));
  EXPECT_EQ(packed.apply(v), p.apply(std::span<const hbrp::dsp::Sample>(v)));
  EXPECT_EQ(packed.unpack(), p);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackedEquivalence,
                         ::testing::Range<std::uint64_t>(1, 16));

// ---------------------------------------------------------------------------
// Morphology identities on random signals.
class MorphologyProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MorphologyProperties, OrderAndCompositionLaws) {
  Rng rng(GetParam());
  hbrp::dsp::Signal x(200 + rng.uniform_index(200));
  for (auto& v : x) v = static_cast<int>(rng.uniform_int(-300, 300));
  const std::size_t len = 2 * rng.uniform_index(10) + 3;

  const auto er = hbrp::dsp::erode(x, len);
  const auto di = hbrp::dsp::dilate(x, len);
  const auto op = hbrp::dsp::open(x, len);
  const auto cl = hbrp::dsp::close(x, len);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(er[i], x[i]);
    EXPECT_GE(di[i], x[i]);
    EXPECT_LE(er[i], op[i]);   // erosion <= opening
    EXPECT_LE(op[i], x[i]);    // opening <= id
    EXPECT_LE(x[i], cl[i]);    // id <= closing
    EXPECT_LE(cl[i], di[i]);   // closing <= dilation
  }
  // Idempotence.
  EXPECT_EQ(hbrp::dsp::open(op, len), op);
  EXPECT_EQ(hbrp::dsp::close(cl, len), cl);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MorphologyProperties,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Defuzzification consistency between the float and integer rules.
class DefuzzifyConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DefuzzifyConsistency, FloatAndIntAgreeOnScaledValues) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    // Random fuzzy triples and alpha; int version sees the same ratios
    // scaled to 31-bit integers.
    std::array<double, 3> f{};
    for (auto& v : f) v = rng.uniform(0.0, 1.0);
    const double alpha = rng.uniform(0.0, 1.0);
    const double scale = 1e6;
    std::array<std::uint32_t, 3> fi{};
    for (std::size_t i = 0; i < 3; ++i)
      fi[i] = static_cast<std::uint32_t>(f[i] * scale);
    // Rebuild the float values from the quantized ones so both rules see
    // exactly the same numbers.
    hbrp::nfc::FuzzyValues fq{};
    for (std::size_t i = 0; i < 3; ++i)
      fq[i] = static_cast<double>(fi[i]) / scale;

    const auto float_cls = hbrp::nfc::defuzzify(fq, alpha);
    const auto int_cls = hbrp::embedded::IntClassifier::defuzzify(
        fi, hbrp::math::to_q16(alpha));
    // Q16 quantization of alpha can flip beats sitting exactly on the
    // margin; tolerate only flips between the argmax class and Unknown.
    if (float_cls != int_cls) {
      const bool margin_flip =
          float_cls == hbrp::ecg::BeatClass::Unknown ||
          int_cls == hbrp::ecg::BeatClass::Unknown;
      EXPECT_TRUE(margin_flip)
          << "f=(" << fq[0] << "," << fq[1] << "," << fq[2]
          << ") alpha=" << alpha;
      // And the margin must actually be near alpha for a legal flip.
      std::array<double, 3> sorted = fq;
      std::sort(sorted.begin(), sorted.end());
      const double sum = fq[0] + fq[1] + fq[2];
      const double margin = (sorted[2] - sorted[1]) / std::max(sum, 1e-12);
      EXPECT_NEAR(margin, alpha, 0.01);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DefuzzifyConsistency,
                         ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------------
// Downsampling preserves means (up to rounding) for arbitrary factors.
class DownsampleProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DownsampleProperties, MeanPreservedWithinRounding) {
  Rng rng(GetParam());
  hbrp::dsp::Signal x(40 + rng.uniform_index(400));
  for (auto& v : x) v = static_cast<int>(rng.uniform_int(-2000, 2000));
  const std::size_t factor = 1 + rng.uniform_index(8);
  const auto y = hbrp::dsp::downsample_avg(x, factor);
  double mx = 0, my = 0;
  for (auto v : x) mx += v;
  for (auto v : y) my += v;
  mx /= static_cast<double>(x.size());
  my /= static_cast<double>(y.size());
  EXPECT_NEAR(mx, my, 1.0 + 2000.0 * static_cast<double>(factor) /
                              static_cast<double>(x.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DownsampleProperties,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// NFC invariances.
class NfcProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NfcProperties, ClassifyInvariantToCoefficientPermutationOfMfs) {
  // Swapping coefficient index k across all classes together (inputs too)
  // must not change any classification: the product is order-free.
  Rng rng(GetParam());
  const std::size_t k = 4 + rng.uniform_index(8);
  hbrp::nfc::NeuroFuzzyClassifier a(k), b(k);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t l = 0; l < 3; ++l)
      a.mf(i, l) = {rng.normal(0, 100), rng.uniform(1.0, 50.0)};
  const auto perm = rng.permutation(k);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t l = 0; l < 3; ++l) b.mf(i, l) = a.mf(perm[i], l);

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> u(k), pu(k);
    for (std::size_t i = 0; i < k; ++i) u[i] = rng.normal(0, 120);
    for (std::size_t i = 0; i < k; ++i) pu[i] = u[perm[i]];
    const double alpha = rng.uniform(0.0, 0.9);
    EXPECT_EQ(a.classify(u, alpha), b.classify(pu, alpha));
  }
}

TEST_P(NfcProperties, AlphaMonotonicityOfUnknowns) {
  Rng rng(GetParam() + 100);
  const std::size_t k = 6;
  hbrp::nfc::NeuroFuzzyClassifier nfc(k);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t l = 0; l < 3; ++l)
      nfc.mf(i, l) = {rng.normal(0, 100), rng.uniform(5.0, 60.0)};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> u(k);
    for (auto& v : u) v = rng.normal(0, 150);
    bool was_unknown = false;
    for (double alpha : {0.0, 0.1, 0.3, 0.6, 0.9}) {
      const bool unknown =
          nfc.classify(u, alpha) == hbrp::ecg::BeatClass::Unknown;
      // Once Unknown, always Unknown as alpha rises.
      EXPECT_TRUE(!was_unknown || unknown);
      was_unknown = unknown;
    }
  }
}

TEST_P(NfcProperties, ClassifyBatchEquivalentToPerBeat) {
  // The batch forward pass must agree with classify() row by row for any
  // batch size — including the empty and single-beat edges — on both the
  // float and the integer path.
  Rng rng(GetParam() + 200);
  const std::size_t k = 2 + rng.uniform_index(12);
  hbrp::nfc::NeuroFuzzyClassifier nfc(k);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t l = 0; l < 3; ++l)
      nfc.mf(i, l) = {rng.normal(0, 100), rng.uniform(5.0, 60.0)};
  const auto integer = hbrp::embedded::IntClassifier::from_float(nfc);

  for (const std::size_t count :
       {std::size_t{0}, std::size_t{1}, 2 + rng.uniform_index(60)}) {
    std::vector<double> u(count * k);
    std::vector<std::int32_t> ui(count * k);
    for (std::size_t i = 0; i < u.size(); ++i) {
      u[i] = std::round(rng.normal(0, 150));
      ui[i] = static_cast<std::int32_t>(u[i]);
    }
    const double alpha = rng.uniform(0.0, 0.9);
    const auto alpha_q16 =
        static_cast<std::uint32_t>(alpha * 65536.0);

    std::vector<hbrp::ecg::BeatClass> out(count), out_int(count);
    nfc.classify_batch(u, count, alpha, out);
    integer.classify_batch(ui, count, alpha_q16, out_int);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(out[i], nfc.classify({u.data() + i * k, k}, alpha));
      EXPECT_EQ(out_int[i],
                integer.classify({ui.data() + i * k, k}, alpha_q16));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NfcProperties,
                         ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------------
// Confusion-matrix arithmetic under random fills.
TEST(MetricsProperties, CountsAlwaysConsistent) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    hbrp::core::ConfusionMatrix cm;
    const int n = 1 + static_cast<int>(rng.uniform_index(500));
    for (int i = 0; i < n; ++i)
      cm.add(static_cast<hbrp::ecg::BeatClass>(rng.uniform_index(3)),
             static_cast<hbrp::ecg::BeatClass>(rng.uniform_index(4)));
    EXPECT_EQ(cm.total(), static_cast<std::size_t>(n));
    EXPECT_EQ(cm.total_normal() + cm.total_abnormal(), cm.total());
    EXPECT_GE(cm.ndr(), 0.0);
    EXPECT_LE(cm.ndr(), 1.0);
    EXPECT_GE(cm.arr(), 0.0);
    EXPECT_LE(cm.arr(), 1.0);
    EXPECT_GE(cm.flagged_fraction(), 0.0);
    EXPECT_LE(cm.flagged_fraction(), 1.0);
  }
}

}  // namespace
