// Round-trip tests for the WFDB (MIT-BIH) format reader/writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <filesystem>

#include "ecg/mitdb.hpp"
#include "ecg/synth.hpp"

namespace {

namespace fs = std::filesystem;
using hbrp::ecg::BeatClass;
using hbrp::ecg::Record;

class MitdbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("hbrp_mitdb_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

Record small_record(int leads, std::uint64_t seed) {
  hbrp::ecg::SynthConfig cfg;
  cfg.duration_s = 20.0;
  cfg.num_leads = leads;
  cfg.profile = hbrp::ecg::RecordProfile::PvcOccasional;
  cfg.seed = seed;
  Record rec = hbrp::ecg::generate_record(cfg);
  rec.name = "rec" + std::to_string(seed);
  return rec;
}

TEST_F(MitdbTest, RoundTrip212) {
  Record rec = small_record(2, 1);
  hbrp::ecg::mitdb::write_record(rec, dir_);
  const Record back = hbrp::ecg::mitdb::read_record(dir_, rec.name);
  EXPECT_EQ(back.fs_hz, rec.fs_hz);
  ASSERT_EQ(back.leads.size(), 2u);
  EXPECT_EQ(back.leads[0], rec.leads[0]);
  EXPECT_EQ(back.leads[1], rec.leads[1]);
  ASSERT_EQ(back.beats.size(), rec.beats.size());
  for (std::size_t i = 0; i < rec.beats.size(); ++i) {
    EXPECT_EQ(back.beats[i].sample, rec.beats[i].sample);
    EXPECT_EQ(back.beats[i].cls, rec.beats[i].cls);
  }
}

TEST_F(MitdbTest, RoundTrip16ThreeLeads) {
  Record rec = small_record(3, 2);
  hbrp::ecg::mitdb::WriteOptions opt;
  opt.signal_format = 16;
  hbrp::ecg::mitdb::write_record(rec, dir_, opt);
  const Record back = hbrp::ecg::mitdb::read_record(dir_, rec.name);
  ASSERT_EQ(back.leads.size(), 3u);
  for (std::size_t l = 0; l < 3; ++l) EXPECT_EQ(back.leads[l], rec.leads[l]);
  EXPECT_EQ(back.beats.size(), rec.beats.size());
}

TEST_F(MitdbTest, Format212NegativeSamplesSurvive) {
  Record rec;
  rec.name = "neg";
  rec.fs_hz = 360;
  rec.leads = {{-2048, -1, 0, 1, 2047}, {100, -100, 5, -5, 0}};
  hbrp::ecg::mitdb::write_record(rec, dir_);
  const Record back = hbrp::ecg::mitdb::read_record(dir_, "neg");
  EXPECT_EQ(back.leads[0], rec.leads[0]);
  EXPECT_EQ(back.leads[1], rec.leads[1]);
}

TEST_F(MitdbTest, LongGapsUseSkipEscape) {
  Record rec;
  rec.name = "gaps";
  rec.fs_hz = 360;
  rec.leads = {hbrp::dsp::Signal(200000, 0), hbrp::dsp::Signal(200000, 0)};
  // Deltas straddle the 1024-sample limit of a bare annotation word.
  rec.beats.push_back({100, BeatClass::N, {}});
  rec.beats.push_back({1000, BeatClass::V, {}});
  rec.beats.push_back({90000, BeatClass::L, {}});
  rec.beats.push_back({199999, BeatClass::N, {}});
  hbrp::ecg::mitdb::write_record(rec, dir_);
  const Record back = hbrp::ecg::mitdb::read_record(dir_, "gaps");
  ASSERT_EQ(back.beats.size(), 4u);
  EXPECT_EQ(back.beats[0].sample, 100u);
  EXPECT_EQ(back.beats[1].sample, 1000u);
  EXPECT_EQ(back.beats[2].sample, 90000u);
  EXPECT_EQ(back.beats[3].sample, 199999u);
  EXPECT_EQ(back.beats[2].cls, BeatClass::L);
}

TEST_F(MitdbTest, Format212RequiresTwoLeads) {
  Record rec = small_record(3, 3);
  EXPECT_THROW(hbrp::ecg::mitdb::write_record(rec, dir_), hbrp::Error);
}

TEST_F(MitdbTest, UnsortedAnnotationsRejected) {
  Record rec;
  rec.name = "bad";
  rec.fs_hz = 360;
  rec.leads = {hbrp::dsp::Signal(1000, 0), hbrp::dsp::Signal(1000, 0)};
  rec.beats.push_back({500, BeatClass::N, {}});
  rec.beats.push_back({400, BeatClass::N, {}});
  EXPECT_THROW(hbrp::ecg::mitdb::write_record(rec, dir_), hbrp::Error);
}

TEST_F(MitdbTest, MissingRecordThrows) {
  EXPECT_THROW(hbrp::ecg::mitdb::read_record(dir_, "nope"), hbrp::Error);
}

TEST(MitdbCodes, BeatClassMapping) {
  using namespace hbrp::ecg::mitdb;
  EXPECT_EQ(beat_class_from_code(kCodeNormal), BeatClass::N);
  EXPECT_EQ(beat_class_from_code(kCodeLbbb), BeatClass::L);
  EXPECT_EQ(beat_class_from_code(kCodePvc), BeatClass::V);
  EXPECT_FALSE(beat_class_from_code(2).has_value());   // RBBB unsupported
  EXPECT_FALSE(beat_class_from_code(28).has_value());
  EXPECT_EQ(code_from_beat_class(BeatClass::N), kCodeNormal);
  EXPECT_EQ(code_from_beat_class(BeatClass::L), kCodeLbbb);
  EXPECT_EQ(code_from_beat_class(BeatClass::V), kCodePvc);
  EXPECT_THROW(code_from_beat_class(BeatClass::Unknown), hbrp::Error);
}

}  // namespace
