// Fault-injection robustness suite (the monitor under realistic
// acquisition failures): lead-off and saturation windows must produce no
// beats, the beat stream must recover to the clean-signal sequence after
// the fault ends, clean-segment classifications must be untouched by the
// gating, and non-finite / garbage input must be absorbed and counted.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/streaming.hpp"
#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "ecg/synth.hpp"
#include "math/check.hpp"
#include "testing/fault_inject.hpp"

namespace {

using hbrp::core::MonitorBeat;
using hbrp::core::MonitorConfig;
using hbrp::core::StreamingBeatMonitor;
using hbrp::dsp::SignalQuality;
using hbrp::testing::FaultEvent;
using hbrp::testing::FaultInjector;
using hbrp::testing::FaultInjectorConfig;
using hbrp::testing::FaultKind;

constexpr int kFs = hbrp::dsp::kMitBihFs;

class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hbrp::ecg::DatasetBuilderConfig cfg;
    cfg.record_duration_s = 120.0;
    cfg.max_per_record_per_class = 20;
    cfg.seed = 61;
    const auto ts1 = hbrp::ecg::build_dataset({150, 150, 150}, cfg);
    cfg.max_per_record_per_class = 80;
    cfg.seed = 62;
    const auto ts2 = hbrp::ecg::build_dataset({1200, 120, 150}, cfg);
    hbrp::core::TwoStepConfig tcfg;
    tcfg.ga.population = 4;
    tcfg.ga.generations = 2;
    tcfg.seed = 6;
    const hbrp::core::TwoStepTrainer trainer(ts1, ts2, tcfg);
    bundle_ = new hbrp::embedded::EmbeddedClassifier(trainer.run().quantize());
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }

  static hbrp::dsp::Signal clean_lead(std::uint64_t seed, double seconds) {
    hbrp::ecg::SynthConfig cfg;
    cfg.profile = hbrp::ecg::RecordProfile::PvcOccasional;
    cfg.duration_s = seconds;
    cfg.num_leads = 1;
    cfg.seed = seed;
    return hbrp::ecg::generate_record(cfg).leads[0];
  }

  static std::vector<MonitorBeat> run_int(StreamingBeatMonitor& monitor,
                                          const hbrp::dsp::Signal& lead) {
    std::vector<MonitorBeat> beats;
    for (const auto x : lead) {
      auto batch = monitor.push(x);
      beats.insert(beats.end(), batch.begin(), batch.end());
    }
    auto tail = monitor.flush();
    beats.insert(beats.end(), tail.begin(), tail.end());
    return beats;
  }

  static std::vector<MonitorBeat> run_raw(StreamingBeatMonitor& monitor,
                                          const std::vector<double>& lead) {
    std::vector<MonitorBeat> beats;
    for (const double x : lead) {
      auto batch = monitor.push(x);
      beats.insert(beats.end(), batch.begin(), batch.end());
    }
    auto tail = monitor.flush();
    beats.insert(beats.end(), tail.begin(), tail.end());
    return beats;
  }

  static bool has_match(const std::vector<MonitorBeat>& beats,
                        std::size_t r_peak, std::size_t tolerance = 5) {
    for (const auto& b : beats)
      if (b.r_peak + tolerance >= r_peak && b.r_peak <= r_peak + tolerance)
        return true;
    return false;
  }

  static const hbrp::embedded::EmbeddedClassifier* bundle_;
};

const hbrp::embedded::EmbeddedClassifier* FaultInjectionTest::bundle_ =
    nullptr;

// --- injector unit behaviour ---------------------------------------------

TEST_F(FaultInjectionTest, InjectorIsDeterministicAndShapedRight) {
  const auto lead = clean_lead(21, 10.0);
  FaultInjectorConfig cfg;
  cfg.seed = 42;
  cfg.events = {
      {FaultKind::LeadOff, 1000, 500, 0.0, 0.0},
      {FaultKind::DropSamples, 2000, 100, 0.0, 0.0},
      {FaultKind::DupSamples, 3000, 100, 0.0, 0.0},
      {FaultKind::GaussianNoise, 400, 200, 40.0, 0.0},
  };
  const auto a = FaultInjector::apply(lead, cfg);
  const auto b = FaultInjector::apply(lead, cfg);
  EXPECT_EQ(a, b);  // bit-reproducible
  // 100 dropped, 100 duplicated: net length unchanged.
  EXPECT_EQ(a.size(), lead.size());
  // Lead-off window is exactly constant.
  for (std::size_t i = 1100; i < 1400; ++i) EXPECT_EQ(a[i], 0.0);
  // Outside every event the stream is untouched (drop/dup cancel by 3000).
  for (std::size_t i = 0; i < 400; ++i)
    EXPECT_EQ(a[i], static_cast<double>(lead[i]));
}

TEST_F(FaultInjectionTest, InjectorEmitsNonFinite) {
  const auto lead = clean_lead(22, 5.0);
  FaultInjectorConfig cfg;
  cfg.events = {{FaultKind::NonFinite, 100, 1000, 0.0, 0.2}};
  const auto out = FaultInjector::apply(lead, cfg);
  std::size_t non_finite = 0;
  for (const double v : out) non_finite += !std::isfinite(v);
  EXPECT_GT(non_finite, 100u);
  EXPECT_LT(non_finite, 400u);
}

// --- the acceptance scenario: lead-off + saturation ----------------------

TEST_F(FaultInjectionTest, LeadOffAndSaturationAreGatedAndRecovered) {
  const double seconds = 90.0;
  const auto lead = clean_lead(23, seconds);

  // Fault window [30 s, 40 s): five seconds of detached electrode, then
  // five seconds of railed front-end.
  const std::size_t f_start = 30 * kFs, f_mid = 35 * kFs, f_end = 40 * kFs;
  FaultInjectorConfig fcfg;
  fcfg.seed = 7;
  fcfg.events = {
      {FaultKind::LeadOff, f_start, f_mid - f_start, 0.0, 0.0},
      {FaultKind::Saturation, f_mid, f_end - f_mid, 0.0, 0.0},
  };
  const auto faulted = FaultInjector::apply(lead, fcfg);
  ASSERT_EQ(faulted.size(), lead.size());

  StreamingBeatMonitor gated(*bundle_);
  const auto fault_beats = run_raw(gated, faulted);  // (a) must not crash

  StreamingBeatMonitor reference(*bundle_);
  const auto clean_beats = run_int(reference, lead);

  // (a) No beats inside the fault window. One SQI chunk (0.5 s) of grace
  // at the head covers the detection latency of the degradation machine;
  // inside that grace the monitor is not yet in BadSignal.
  const std::size_t qchunk = static_cast<std::size_t>(0.5 * kFs);
  for (const auto& b : fault_beats) {
    EXPECT_FALSE(b.r_peak >= f_start + qchunk && b.r_peak < f_end)
        << "beat emitted at " << b.r_peak << " inside the fault window";
    EXPECT_NE(b.quality, SignalQuality::Bad);
  }
  EXPECT_GE(gated.stats().degradations, 1u);
  EXPECT_GE(gated.stats().recoveries, 1u);
  EXPECT_GT(gated.stats().bad_signal_samples, 5u * kFs);

  // (b) Recovery: after the fault ends, the machine needs 2x2 clean SQI
  // chunks (2 s) to walk Bad -> Suspect -> Good plus the conditioner
  // warm-up; from 44 s on, the clean-signal beat sequence must reappear
  // with at most one beat missing.
  const std::size_t recovered_from = 44 * kFs;
  std::size_t expected = 0, found = 0;
  for (const auto& b : clean_beats) {
    if (b.r_peak < recovered_from) continue;
    ++expected;
    found += has_match(fault_beats, b.r_peak);
  }
  ASSERT_GT(expected, 40u);
  EXPECT_GE(found + 1, expected);

  // (c) Clean segments are untouched: beats comfortably before the fault
  // match the clean run in position *and* label.
  const std::size_t pre_fault = f_start - 2 * kFs;
  std::size_t pre_expected = 0, pre_matched = 0;
  for (const auto& b : clean_beats) {
    if (b.r_peak >= pre_fault) continue;
    ++pre_expected;
    for (const auto& f : fault_beats)
      if (f.r_peak + 5 >= b.r_peak && f.r_peak <= b.r_peak + 5) {
        pre_matched += f.predicted == b.predicted;
        break;
      }
  }
  ASSERT_GT(pre_expected, 20u);
  EXPECT_GE(pre_matched + 1, pre_expected);
}

TEST_F(FaultInjectionTest, GatingIsTransparentOnCleanSignal) {
  // Acceptance (c), strongest form: on clean signal the gated monitor is
  // bit-identical to the un-gated one — same beats, same labels.
  const auto lead = clean_lead(24, 60.0);

  MonitorConfig ungated_cfg;
  ungated_cfg.quality_gating = false;
  StreamingBeatMonitor gated(*bundle_);
  StreamingBeatMonitor ungated(*bundle_, ungated_cfg);

  const auto a = run_int(gated, lead);
  const auto b = run_int(ungated, lead);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].r_peak, b[i].r_peak);
    EXPECT_EQ(a[i].predicted, b[i].predicted);
    EXPECT_EQ(a[i].quality, SignalQuality::Good);
  }
  EXPECT_EQ(gated.stats().degradations, 0u);
  EXPECT_EQ(gated.stats().suspect_beats, 0u);
}

TEST_F(FaultInjectionTest, NonFiniteBurstIsRejectedAndCounted) {
  const auto lead = clean_lead(25, 30.0);
  FaultInjectorConfig fcfg;
  fcfg.seed = 9;
  fcfg.events = {{FaultKind::NonFinite, 10 * kFs, 2 * kFs, 0.0, 0.3}};
  const auto faulted = FaultInjector::apply(lead, fcfg);

  StreamingBeatMonitor monitor(*bundle_);
  const auto beats = run_raw(monitor, faulted);  // must not throw
  EXPECT_GT(monitor.stats().rejected_nonfinite, 100u);
  EXPECT_EQ(monitor.stats().samples_in, faulted.size());
  EXPECT_GT(beats.size(), 20u);  // the record is still monitored
}

TEST_F(FaultInjectionTest, ImpulseBurstEscalatesToUnknown) {
  auto lead = clean_lead(26, 60.0);
  FaultInjectorConfig fcfg;
  fcfg.seed = 11;
  fcfg.events = {{FaultKind::ImpulseNoise, 20 * kFs, 10 * kFs, 900.0, 0.08}};
  const auto faulted = FaultInjector::apply(lead, fcfg);

  StreamingBeatMonitor monitor(*bundle_);
  const auto beats = run_raw(monitor, faulted);
  // Beats inside the burst that were detected at all must carry the
  // Suspect tag and the safe-default Unknown class (=> pathological, so
  // the node escalates to full delineation instead of guessing).
  std::size_t suspect = 0;
  for (const auto& b : beats)
    if (b.quality == SignalQuality::Suspect) {
      EXPECT_EQ(b.predicted, hbrp::ecg::BeatClass::Unknown);
      EXPECT_TRUE(hbrp::ecg::is_pathological(b.predicted));
      ++suspect;
    }
  EXPECT_GT(suspect, 0u);
  EXPECT_EQ(monitor.stats().suspect_beats, suspect);
}

TEST_F(FaultInjectionTest, DropAndDupGlitchesDoNotCrashOrDesync) {
  const auto lead = clean_lead(27, 45.0);
  FaultInjectorConfig fcfg;
  fcfg.seed = 13;
  fcfg.events = {
      {FaultKind::DropSamples, 10 * kFs, kFs / 2, 0.0, 0.0},
      {FaultKind::DupSamples, 25 * kFs, kFs / 2, 0.0, 0.0},
  };
  const auto faulted = FaultInjector::apply(lead, fcfg);

  StreamingBeatMonitor monitor(*bundle_);
  const auto beats = run_raw(monitor, faulted);
  // Monotone, de-duplicated output stream survives timeline glitches.
  for (std::size_t i = 1; i < beats.size(); ++i)
    EXPECT_GT(beats[i].r_peak, beats[i - 1].r_peak + 30);
  EXPECT_GT(beats.size(), 30u);
}

TEST_F(FaultInjectionTest, GarbageIntSamplesAreClampedAndCounted) {
  StreamingBeatMonitor monitor(*bundle_);
  monitor.push(std::numeric_limits<hbrp::dsp::Sample>::max());
  monitor.push(std::numeric_limits<hbrp::dsp::Sample>::min());
  monitor.push(-1);
  monitor.push(5000);
  monitor.push(1024);
  EXPECT_EQ(monitor.stats().samples_in, 5u);
  EXPECT_EQ(monitor.stats().clamped, 4u);
  // Still functional afterwards.
  const auto lead = clean_lead(28, 20.0);
  StreamingBeatMonitor fresh(*bundle_);
  EXPECT_GT(run_int(fresh, lead).size(), 10u);
}

TEST(BurstTrain, GeneratesBoundedSeededBursts) {
  std::vector<FaultEvent> events;
  hbrp::math::Rng rng(77);
  hbrp::testing::append_burst_train(events, rng, FaultKind::LeadOff,
                                    /*start=*/1000, /*span=*/36000,
                                    /*count=*/5, /*min_len=*/180,
                                    /*max_len=*/720, /*magnitude=*/10.0);
  ASSERT_EQ(events.size(), 5u);
  for (const FaultEvent& e : events) {
    EXPECT_EQ(e.kind, FaultKind::LeadOff);
    EXPECT_GE(e.start, 1000u);
    EXPECT_LE(e.start + e.duration, 1000u + 36000u);
    EXPECT_GE(e.duration, 180u);
    EXPECT_LE(e.duration, 720u);
    EXPECT_DOUBLE_EQ(e.magnitude, 10.0);
  }
  // Same seed, same schedule — the property the scenario engine leans on.
  std::vector<FaultEvent> again;
  hbrp::math::Rng rng2(77);
  hbrp::testing::append_burst_train(again, rng2, FaultKind::LeadOff, 1000,
                                    36000, 5, 180, 720, 10.0);
  ASSERT_EQ(again.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(again[i].start, events[i].start);
    EXPECT_EQ(again[i].duration, events[i].duration);
  }
}

}  // namespace
