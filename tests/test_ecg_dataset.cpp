// Tests for dataset assembly (Table I splits) and serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <filesystem>
#include <fstream>

#include "ecg/dataset.hpp"

namespace {

namespace fs = std::filesystem;
using hbrp::ecg::BeatClass;
using hbrp::ecg::BeatDataset;
using hbrp::ecg::DatasetBuilderConfig;
using hbrp::ecg::DatasetSpec;

DatasetBuilderConfig quick_cfg(std::uint64_t seed = 7) {
  DatasetBuilderConfig cfg;
  cfg.record_duration_s = 90.0;  // short records keep tests fast
  cfg.seed = seed;
  return cfg;
}

TEST(Dataset, FillsExactQuotas) {
  const DatasetSpec spec{40, 25, 30};
  const BeatDataset ds = hbrp::ecg::build_dataset(spec, quick_cfg());
  const DatasetSpec c = ds.counts();
  EXPECT_EQ(c.n, 40u);
  EXPECT_EQ(c.v, 25u);
  EXPECT_EQ(c.l, 30u);
  EXPECT_EQ(ds.beats.size(), spec.total());
}

TEST(Dataset, WindowsHaveRequestedShape) {
  DatasetBuilderConfig cfg = quick_cfg();
  cfg.window_before = 80;
  cfg.window_after = 120;
  const BeatDataset ds = hbrp::ecg::build_dataset({10, 5, 5}, cfg);
  EXPECT_EQ(ds.window_size(), 200u);
  for (const auto& b : ds.beats) EXPECT_EQ(b.samples.size(), 200u);
}

TEST(Dataset, DeterministicInSeed) {
  const DatasetSpec spec{15, 10, 10};
  const BeatDataset a = hbrp::ecg::build_dataset(spec, quick_cfg(9));
  const BeatDataset b = hbrp::ecg::build_dataset(spec, quick_cfg(9));
  ASSERT_EQ(a.beats.size(), b.beats.size());
  for (std::size_t i = 0; i < a.beats.size(); ++i) {
    EXPECT_EQ(a.beats[i].label, b.beats[i].label);
    EXPECT_EQ(a.beats[i].samples, b.beats[i].samples);
  }
}

TEST(Dataset, RPeakCenteredWindows) {
  // The window is cut around the detected peak: the maximum of the
  // conditioned beat should sit near index `window_before` for N beats.
  const BeatDataset ds = hbrp::ecg::build_dataset({30, 1, 1}, quick_cfg(11));
  std::size_t near = 0, total = 0;
  for (const auto& b : ds.beats) {
    if (b.label != BeatClass::N) continue;
    const auto it = std::max_element(b.samples.begin(), b.samples.end());
    const auto pos =
        static_cast<std::size_t>(it - b.samples.begin());
    ++total;
    if (pos >= ds.window_before - 8 && pos <= ds.window_before + 8) ++near;
  }
  EXPECT_GT(static_cast<double>(near) / static_cast<double>(total), 0.9);
}

TEST(Dataset, OracleAndDetectedPeaksBothWork) {
  DatasetBuilderConfig cfg = quick_cfg(13);
  cfg.use_detected_peaks = false;
  const BeatDataset oracle = hbrp::ecg::build_dataset({20, 10, 10}, cfg);
  EXPECT_EQ(oracle.beats.size(), 40u);
}

TEST(Dataset, EmptySpecThrows) {
  EXPECT_THROW(hbrp::ecg::build_dataset({0, 0, 0}, quick_cfg()), hbrp::Error);
}

TEST(Dataset, SaveLoadRoundTrip) {
  const fs::path path =
      fs::temp_directory_path() /
      ("hbrp_ds_" + std::to_string(::getpid()) + ".bin");
  const BeatDataset ds = hbrp::ecg::build_dataset({12, 6, 6}, quick_cfg(17));
  hbrp::ecg::save_dataset(ds, path);
  const BeatDataset back = hbrp::ecg::load_dataset(path);
  EXPECT_EQ(back.fs_hz, ds.fs_hz);
  EXPECT_EQ(back.window_before, ds.window_before);
  EXPECT_EQ(back.window_after, ds.window_after);
  ASSERT_EQ(back.beats.size(), ds.beats.size());
  for (std::size_t i = 0; i < ds.beats.size(); ++i) {
    EXPECT_EQ(back.beats[i].label, ds.beats[i].label);
    EXPECT_EQ(back.beats[i].samples, ds.beats[i].samples);
  }
  fs::remove(path);
}

TEST(Dataset, LoadMissingFileThrows) {
  EXPECT_THROW(hbrp::ecg::load_dataset("/nonexistent/x.bin"), hbrp::Error);
}

TEST(Dataset, LoadRejectsCorruptMagic) {
  const fs::path path =
      fs::temp_directory_path() /
      ("hbrp_bad_" + std::to_string(::getpid()) + ".bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTADATASET";
  }
  EXPECT_THROW(hbrp::ecg::load_dataset(path), hbrp::Error);
  fs::remove(path);
}

TEST(Dataset, LoadOrBuildUsesCache) {
  const fs::path path =
      fs::temp_directory_path() /
      ("hbrp_cache_" + std::to_string(::getpid()) + ".bin");
  fs::remove(path);
  const DatasetSpec spec{8, 4, 4};
  const BeatDataset first = hbrp::ecg::load_or_build(path, spec, quick_cfg(19));
  EXPECT_TRUE(fs::exists(path));
  const BeatDataset second =
      hbrp::ecg::load_or_build(path, spec, quick_cfg(19));
  ASSERT_EQ(second.beats.size(), first.beats.size());
  for (std::size_t i = 0; i < first.beats.size(); ++i)
    EXPECT_EQ(second.beats[i].samples, first.beats[i].samples);
  fs::remove(path);
}

TEST(Dataset, LoadOrBuildRebuildsOnSpecMismatch) {
  const fs::path path =
      fs::temp_directory_path() /
      ("hbrp_stale_" + std::to_string(::getpid()) + ".bin");
  fs::remove(path);
  hbrp::ecg::load_or_build(path, {8, 4, 4}, quick_cfg(21));
  const BeatDataset rebuilt =
      hbrp::ecg::load_or_build(path, {10, 5, 5}, quick_cfg(21));
  const DatasetSpec c = rebuilt.counts();
  EXPECT_EQ(c.n, 10u);
  EXPECT_EQ(c.v, 5u);
  EXPECT_EQ(c.l, 5u);
  fs::remove(path);
}

TEST(Dataset, PaperSpecsMatchTableOne) {
  EXPECT_EQ(hbrp::ecg::kTrainingSet1.total(), 450u);
  EXPECT_EQ(hbrp::ecg::kTrainingSet2.total(), 12000u);
  EXPECT_EQ(hbrp::ecg::kTestSet.total(), 89012u);
  EXPECT_EQ(hbrp::ecg::kTestSet.n, 74355u);
  EXPECT_EQ(hbrp::ecg::kTestSet.v, 6618u);
  EXPECT_EQ(hbrp::ecg::kTestSet.l, 8039u);
}

}  // namespace
