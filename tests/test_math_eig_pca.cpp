// Tests for the Jacobi eigensolver and PCA baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "math/eig.hpp"
#include "math/pca.hpp"
#include "math/rng.hpp"

namespace {

using hbrp::math::Mat;
using hbrp::math::Pca;
using hbrp::math::Vec;

TEST(Eig, DiagonalMatrix) {
  Mat a(3, 3);
  a.at(0, 0) = 3.0;
  a.at(1, 1) = 1.0;
  a.at(2, 2) = 2.0;
  const auto r = hbrp::math::eig_symmetric(a);
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_NEAR(r.values[0], 3.0, 1e-12);
  EXPECT_NEAR(r.values[1], 2.0, 1e-12);
  EXPECT_NEAR(r.values[2], 1.0, 1e-12);
}

TEST(Eig, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Mat a(2, 2, {2, 1, 1, 2});
  const auto r = hbrp::math::eig_symmetric(a);
  EXPECT_NEAR(r.values[0], 3.0, 1e-12);
  EXPECT_NEAR(r.values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(r.vectors.at(0, 0)), std::sqrt(0.5), 1e-9);
  EXPECT_NEAR(r.vectors.at(0, 0), r.vectors.at(1, 0), 1e-9);
}

TEST(Eig, ReconstructsMatrix) {
  hbrp::math::Rng rng(1);
  const std::size_t n = 12;
  Mat a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      a.at(i, j) = rng.normal();
      a.at(j, i) = a.at(i, j);
    }
  const auto r = hbrp::math::eig_symmetric(a);
  // A == V diag(w) V^T
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k)
        acc += r.vectors.at(i, k) * r.values[k] * r.vectors.at(j, k);
      EXPECT_NEAR(acc, a.at(i, j), 1e-8);
    }
}

TEST(Eig, VectorsOrthonormal) {
  hbrp::math::Rng rng(2);
  const std::size_t n = 10;
  Mat a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      a.at(i, j) = rng.uniform(-1, 1);
      a.at(j, i) = a.at(i, j);
    }
  const auto r = hbrp::math::eig_symmetric(a);
  for (std::size_t c1 = 0; c1 < n; ++c1)
    for (std::size_t c2 = 0; c2 < n; ++c2) {
      double d = 0.0;
      for (std::size_t k = 0; k < n; ++k)
        d += r.vectors.at(k, c1) * r.vectors.at(k, c2);
      EXPECT_NEAR(d, c1 == c2 ? 1.0 : 0.0, 1e-9);
    }
}

TEST(Eig, RejectsNonSquare) {
  Mat a(2, 3);
  EXPECT_THROW(hbrp::math::eig_symmetric(a), hbrp::Error);
}

TEST(Eig, RejectsAsymmetric) {
  Mat a(2, 2, {1, 2, 3, 4});
  EXPECT_THROW(hbrp::math::eig_symmetric(a), hbrp::Error);
}

TEST(Pca, RecoversDominantDirection) {
  // Points spread along (1,1) with small orthogonal noise.
  hbrp::math::Rng rng(3);
  const std::size_t n = 500;
  Mat data(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.normal(0.0, 5.0);
    const double noise = rng.normal(0.0, 0.1);
    data.at(i, 0) = t + noise;
    data.at(i, 1) = t - noise;
  }
  const Pca pca = Pca::fit(data, 1);
  const auto b = pca.basis().row(0);
  EXPECT_NEAR(std::abs(b[0]), std::sqrt(0.5), 0.02);
  EXPECT_NEAR(std::abs(b[1]), std::sqrt(0.5), 0.02);
  EXPECT_GT(pca.explained_variance_ratio(), 0.99);
}

TEST(Pca, TransformCentersData) {
  Mat data(4, 2, {1, 10, 3, 10, 1, 12, 3, 12});
  const Pca pca = Pca::fit(data, 2);
  // Mean is (2, 11); transforming the mean itself gives zero scores.
  const Vec scores = pca.transform(Vec{2.0, 11.0});
  EXPECT_NEAR(scores[0], 0.0, 1e-9);
  EXPECT_NEAR(scores[1], 0.0, 1e-9);
}

TEST(Pca, RoundTripWithFullRank) {
  hbrp::math::Rng rng(4);
  Mat data(50, 3);
  for (auto& v : data.flat()) v = rng.uniform(-2, 2);
  const Pca pca = Pca::fit(data, 3);
  for (std::size_t r = 0; r < 5; ++r) {
    const Vec x(data.row(r).begin(), data.row(r).end());
    const Vec back = pca.inverse_transform(pca.transform(x));
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(back[c], x[c], 1e-8);
  }
}

TEST(Pca, BatchTransformMatchesSingle) {
  hbrp::math::Rng rng(5);
  Mat data(20, 4);
  for (auto& v : data.flat()) v = rng.normal();
  const Pca pca = Pca::fit(data, 2);
  const Mat batch = pca.transform(data);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const Vec single = pca.transform(data.row(r));
    for (std::size_t k = 0; k < 2; ++k)
      EXPECT_DOUBLE_EQ(batch.at(r, k), single[k]);
  }
}

TEST(Pca, VarianceSortedDescending) {
  hbrp::math::Rng rng(6);
  Mat data(100, 5);
  for (std::size_t i = 0; i < 100; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      data.at(i, j) = rng.normal(0.0, double(5 - j));
  const Pca pca = Pca::fit(data, 5);
  for (std::size_t k = 1; k < 5; ++k)
    EXPECT_GE(pca.explained_variance()[k - 1], pca.explained_variance()[k]);
}

TEST(Pca, InvalidArgsThrow) {
  Mat one(1, 3);
  EXPECT_THROW(Pca::fit(one, 1), hbrp::Error);
  Mat ok(5, 3);
  EXPECT_THROW(Pca::fit(ok, 0), hbrp::Error);
  EXPECT_THROW(Pca::fit(ok, 4), hbrp::Error);
}

TEST(Pca, TransformSizeMismatchThrows) {
  Mat data(10, 3);
  for (std::size_t i = 0; i < 10; ++i) data.at(i, 0) = double(i);
  const Pca pca = Pca::fit(data, 2);
  EXPECT_THROW(pca.transform(Vec{1.0, 2.0}), hbrp::Error);
  EXPECT_THROW(pca.inverse_transform(Vec{1.0, 2.0, 3.0}), hbrp::Error);
}

}  // namespace
