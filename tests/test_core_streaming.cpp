// Tests for the streaming beat monitor: agreement with the batch pipeline,
// chunk-boundary behaviour, memory/latency bounds.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/streaming.hpp"
#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "ecg/synth.hpp"
#include "math/check.hpp"

namespace {

using hbrp::core::MonitorBeat;
using hbrp::core::MonitorConfig;
using hbrp::core::StreamingBeatMonitor;

class StreamingMonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hbrp::ecg::DatasetBuilderConfig cfg;
    cfg.record_duration_s = 120.0;
    cfg.max_per_record_per_class = 20;
    cfg.seed = 81;
    const auto ts1 = hbrp::ecg::build_dataset({150, 150, 150}, cfg);
    cfg.max_per_record_per_class = 80;
    cfg.seed = 82;
    const auto ts2 = hbrp::ecg::build_dataset({1200, 120, 150}, cfg);
    hbrp::core::TwoStepConfig tcfg;
    tcfg.ga.population = 4;
    tcfg.ga.generations = 2;
    tcfg.seed = 8;
    const hbrp::core::TwoStepTrainer trainer(ts1, ts2, tcfg);
    bundle_ = new hbrp::embedded::EmbeddedClassifier(trainer.run().quantize());
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }

  static std::vector<MonitorBeat> run_monitor(const hbrp::dsp::Signal& lead,
                                              const MonitorConfig& cfg = {}) {
    StreamingBeatMonitor monitor(*bundle_, cfg);
    std::vector<MonitorBeat> beats;
    for (const auto x : lead) {
      auto batch = monitor.push(x);
      beats.insert(beats.end(), batch.begin(), batch.end());
    }
    auto tail = monitor.flush();
    beats.insert(beats.end(), tail.begin(), tail.end());
    return beats;
  }

  static const hbrp::embedded::EmbeddedClassifier* bundle_;
};

const hbrp::embedded::EmbeddedClassifier* StreamingMonitorTest::bundle_ =
    nullptr;

hbrp::ecg::Record monitor_record(std::uint64_t seed, double seconds = 60.0) {
  hbrp::ecg::SynthConfig cfg;
  cfg.profile = hbrp::ecg::RecordProfile::PvcOccasional;
  cfg.duration_s = seconds;
  cfg.num_leads = 1;
  cfg.seed = seed;
  return hbrp::ecg::generate_record(cfg);
}

TEST_F(StreamingMonitorTest, AgreesWithBatchPipeline) {
  const auto rec = monitor_record(1);
  const auto streaming = run_monitor(rec.leads[0]);

  hbrp::core::PipelineConfig pcfg;
  const hbrp::core::RealTimePipeline pipeline(*bundle_, pcfg);
  const auto batch = pipeline.process(rec);

  // Every batch beat away from the record borders must appear in the
  // streaming output with the same classification.
  std::size_t matched = 0, compared = 0;
  for (const auto& b : batch.beats) {
    if (b.r_peak < 1000 || b.r_peak + 1000 > rec.leads[0].size()) continue;
    ++compared;
    for (const auto& s : streaming) {
      if (s.r_peak + 5 >= b.r_peak && s.r_peak <= b.r_peak + 5) {
        if (s.predicted == b.predicted) ++matched;
        break;
      }
    }
  }
  ASSERT_GT(compared, 30u);
  EXPECT_GE(static_cast<double>(matched) / static_cast<double>(compared),
            0.97);
}

TEST_F(StreamingMonitorTest, NoDuplicatesAcrossChunks) {
  const auto rec = monitor_record(2, 90.0);
  const auto beats = run_monitor(rec.leads[0]);
  for (std::size_t i = 1; i < beats.size(); ++i)
    EXPECT_GT(beats[i].r_peak, beats[i - 1].r_peak + 30)
        << "duplicate or out-of-order beat at " << i;
}

TEST_F(StreamingMonitorTest, BeatCountTracksAnnotations) {
  const auto rec = monitor_record(3, 90.0);
  const auto beats = run_monitor(rec.leads[0]);
  EXPECT_GT(beats.size(), rec.beats.size() * 85 / 100);
  EXPECT_LT(beats.size(), rec.beats.size() * 108 / 100);
}

TEST_F(StreamingMonitorTest, MemoryBoundWellUnderIcyHeartRam) {
  const StreamingBeatMonitor monitor(*bundle_);
  // Samples are int32 in this model; even so the whole working set must sit
  // far below the 96 KB of the SoC.
  EXPECT_LT(monitor.memory_samples() * sizeof(hbrp::dsp::Sample),
            48u * 1024u);
}

TEST_F(StreamingMonitorTest, LatencyBounded) {
  const StreamingBeatMonitor monitor(*bundle_);
  // Conditioner delay plus one chunk: ~8.6 s at the default config.
  EXPECT_LT(monitor.latency(), static_cast<std::size_t>(10 * 360));
}

TEST_F(StreamingMonitorTest, ConfigValidation) {
  MonitorConfig cfg;
  cfg.window_before = 10;  // mismatched geometry
  EXPECT_THROW(StreamingBeatMonitor(*bundle_, cfg), hbrp::Error);

  cfg = {};
  cfg.overlap_s = 0.3;  // shorter than a beat window
  EXPECT_THROW(StreamingBeatMonitor(*bundle_, cfg), hbrp::Error);

  cfg = {};
  cfg.chunk_s = 3.0;  // chunk must exceed twice the overlap
  EXPECT_THROW(StreamingBeatMonitor(*bundle_, cfg), hbrp::Error);
}

TEST_F(StreamingMonitorTest, FlushFinalizesTailBeats) {
  // A record shorter than one chunk: nothing is emitted until flush.
  const auto rec = monitor_record(4, 6.0);
  StreamingBeatMonitor monitor(*bundle_);
  std::size_t emitted_during = 0;
  for (const auto x : rec.leads[0]) emitted_during += monitor.push(x).size();
  EXPECT_EQ(emitted_during, 0u);
  const auto tail = monitor.flush();
  EXPECT_GT(tail.size(), 3u);
}

TEST_F(StreamingMonitorTest, ReusableAfterFlush) {
  const auto rec = monitor_record(5, 30.0);
  StreamingBeatMonitor monitor(*bundle_);
  auto run_once = [&]() {
    std::vector<MonitorBeat> beats;
    for (const auto x : rec.leads[0]) {
      auto b = monitor.push(x);
      beats.insert(beats.end(), b.begin(), b.end());
    }
    auto tail = monitor.flush();
    beats.insert(beats.end(), tail.begin(), tail.end());
    return beats;
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].r_peak, second[i].r_peak);
    EXPECT_EQ(first[i].predicted, second[i].predicted);
  }
}

}  // namespace
