// Tests for the streaming beat monitor: agreement with the batch pipeline,
// chunk-boundary behaviour, memory/latency bounds.
#include <gtest/gtest.h>

#include <limits>

#include "core/pipeline.hpp"
#include "core/streaming.hpp"
#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "ecg/synth.hpp"
#include "math/check.hpp"

namespace {

using hbrp::core::MonitorBeat;
using hbrp::core::MonitorConfig;
using hbrp::core::StreamingBeatMonitor;

class StreamingMonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hbrp::ecg::DatasetBuilderConfig cfg;
    cfg.record_duration_s = 120.0;
    cfg.max_per_record_per_class = 20;
    cfg.seed = 81;
    const auto ts1 = hbrp::ecg::build_dataset({150, 150, 150}, cfg);
    cfg.max_per_record_per_class = 80;
    cfg.seed = 82;
    const auto ts2 = hbrp::ecg::build_dataset({1200, 120, 150}, cfg);
    hbrp::core::TwoStepConfig tcfg;
    tcfg.ga.population = 4;
    tcfg.ga.generations = 2;
    tcfg.seed = 8;
    const hbrp::core::TwoStepTrainer trainer(ts1, ts2, tcfg);
    bundle_ = new hbrp::embedded::EmbeddedClassifier(trainer.run().quantize());
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }

  static std::vector<MonitorBeat> run_monitor(const hbrp::dsp::Signal& lead,
                                              const MonitorConfig& cfg = {}) {
    StreamingBeatMonitor monitor(*bundle_, cfg);
    std::vector<MonitorBeat> beats;
    for (const auto x : lead) {
      auto batch = monitor.push(x);
      beats.insert(beats.end(), batch.begin(), batch.end());
    }
    auto tail = monitor.flush();
    beats.insert(beats.end(), tail.begin(), tail.end());
    return beats;
  }

  static const hbrp::embedded::EmbeddedClassifier* bundle_;
};

const hbrp::embedded::EmbeddedClassifier* StreamingMonitorTest::bundle_ =
    nullptr;

hbrp::ecg::Record monitor_record(std::uint64_t seed, double seconds = 60.0) {
  hbrp::ecg::SynthConfig cfg;
  cfg.profile = hbrp::ecg::RecordProfile::PvcOccasional;
  cfg.duration_s = seconds;
  cfg.num_leads = 1;
  cfg.seed = seed;
  return hbrp::ecg::generate_record(cfg);
}

TEST_F(StreamingMonitorTest, AgreesWithBatchPipeline) {
  const auto rec = monitor_record(1);
  const auto streaming = run_monitor(rec.leads[0]);

  hbrp::core::PipelineConfig pcfg;
  const hbrp::core::RealTimePipeline pipeline(*bundle_, pcfg);
  const auto batch = pipeline.process(rec);

  // Every batch beat away from the record borders must appear in the
  // streaming output with the same classification.
  std::size_t matched = 0, compared = 0;
  for (const auto& b : batch.beats) {
    if (b.r_peak < 1000 || b.r_peak + 1000 > rec.leads[0].size()) continue;
    ++compared;
    for (const auto& s : streaming) {
      if (s.r_peak + 5 >= b.r_peak && s.r_peak <= b.r_peak + 5) {
        if (s.predicted == b.predicted) ++matched;
        break;
      }
    }
  }
  ASSERT_GT(compared, 30u);
  EXPECT_GE(static_cast<double>(matched) / static_cast<double>(compared),
            0.97);
}

TEST_F(StreamingMonitorTest, NoDuplicatesAcrossChunks) {
  const auto rec = monitor_record(2, 90.0);
  const auto beats = run_monitor(rec.leads[0]);
  for (std::size_t i = 1; i < beats.size(); ++i)
    EXPECT_GT(beats[i].r_peak, beats[i - 1].r_peak + 30)
        << "duplicate or out-of-order beat at " << i;
}

TEST_F(StreamingMonitorTest, BeatCountTracksAnnotations) {
  const auto rec = monitor_record(3, 90.0);
  const auto beats = run_monitor(rec.leads[0]);
  EXPECT_GT(beats.size(), rec.beats.size() * 85 / 100);
  EXPECT_LT(beats.size(), rec.beats.size() * 108 / 100);
}

TEST_F(StreamingMonitorTest, MemoryBoundWellUnderIcyHeartRam) {
  const StreamingBeatMonitor monitor(*bundle_);
  // Samples are int32 in this model; even so the whole working set must sit
  // far below the 96 KB of the SoC.
  EXPECT_LT(monitor.memory_samples() * sizeof(hbrp::dsp::Sample),
            48u * 1024u);
}

TEST_F(StreamingMonitorTest, LatencyBounded) {
  const StreamingBeatMonitor monitor(*bundle_);
  // Conditioner delay plus one chunk: ~8.6 s at the default config.
  EXPECT_LT(monitor.latency(), static_cast<std::size_t>(10 * 360));
}

TEST_F(StreamingMonitorTest, ConfigValidation) {
  MonitorConfig cfg;
  cfg.window_before = 10;  // mismatched geometry
  EXPECT_THROW(StreamingBeatMonitor(*bundle_, cfg), hbrp::Error);

  cfg = {};
  cfg.overlap_s = 0.3;  // shorter than a beat window
  EXPECT_THROW(StreamingBeatMonitor(*bundle_, cfg), hbrp::Error);

  cfg = {};
  cfg.chunk_s = 3.0;  // chunk must exceed twice the overlap
  EXPECT_THROW(StreamingBeatMonitor(*bundle_, cfg), hbrp::Error);
}

TEST_F(StreamingMonitorTest, FlushFinalizesTailBeats) {
  // A record shorter than one chunk: nothing is emitted until flush.
  const auto rec = monitor_record(4, 6.0);
  StreamingBeatMonitor monitor(*bundle_);
  std::size_t emitted_during = 0;
  for (const auto x : rec.leads[0]) emitted_during += monitor.push(x).size();
  EXPECT_EQ(emitted_during, 0u);
  const auto tail = monitor.flush();
  EXPECT_GT(tail.size(), 3u);
}

TEST_F(StreamingMonitorTest, FlushOnEmptyMonitorIsSafeAndEmpty) {
  StreamingBeatMonitor monitor(*bundle_);
  EXPECT_TRUE(monitor.flush().empty());
  EXPECT_TRUE(monitor.flush().empty());  // idempotent
  // A handful of samples (far less than one beat window) also yields none.
  for (int i = 0; i < 10; ++i) monitor.push(1024);
  EXPECT_TRUE(monitor.flush().empty());
  // And the monitor is still usable afterwards.
  const auto rec = monitor_record(6, 30.0);
  std::vector<MonitorBeat> beats;
  for (const auto x : rec.leads[0]) {
    auto b = monitor.push(x);
    beats.insert(beats.end(), b.begin(), b.end());
  }
  auto tail = monitor.flush();
  beats.insert(beats.end(), tail.begin(), tail.end());
  EXPECT_GT(beats.size(), 15u);
}

TEST_F(StreamingMonitorTest, FlushRightAfterChunkSlideLosesNothing) {
  // Feed exactly up to the first chunk scan, flush immediately, and check
  // the combined output against an uninterrupted run of the same prefix:
  // beats straddling the freshly-slid overlap region must be reported
  // exactly once.
  const auto rec = monitor_record(7, 60.0);
  StreamingBeatMonitor probe(*bundle_);

  // Find the sample index at which the first scan fires.
  std::size_t first_scan_end = 0;
  for (std::size_t i = 0; i < rec.leads[0].size(); ++i) {
    if (!probe.push(rec.leads[0][i]).empty()) {
      first_scan_end = i + 1;
      break;
    }
  }
  ASSERT_GT(first_scan_end, 0u) << "record never filled a chunk";
  probe.flush();

  StreamingBeatMonitor monitor(*bundle_);
  std::vector<MonitorBeat> interrupted;
  for (std::size_t i = 0; i < first_scan_end; ++i) {
    auto b = monitor.push(rec.leads[0][i]);
    interrupted.insert(interrupted.end(), b.begin(), b.end());
  }
  auto tail = monitor.flush();
  interrupted.insert(interrupted.end(), tail.begin(), tail.end());

  // Nothing double-reported across the slide...
  for (std::size_t i = 1; i < interrupted.size(); ++i)
    EXPECT_GT(interrupted[i].r_peak, interrupted[i - 1].r_peak + 30)
        << "duplicate across slide+flush at " << i;
  // ...nothing beyond the data fed...
  for (const auto& b : interrupted) EXPECT_LT(b.r_peak, first_scan_end);
  // ...and nothing lost: every beat the full-record run reports well
  // inside the prefix must also be reported by the interrupted run.
  const auto full = run_monitor(rec.leads[0]);
  std::size_t expected = 0, found = 0;
  for (const auto& b : full) {
    if (b.r_peak + 400 >= first_scan_end) continue;
    ++expected;
    for (const auto& other : interrupted)
      if (other.r_peak + 5 >= b.r_peak && other.r_peak <= b.r_peak + 5) {
        ++found;
        break;
      }
  }
  ASSERT_GT(expected, 5u);
  EXPECT_EQ(found, expected);
}

TEST_F(StreamingMonitorTest, BeatsStraddlingOverlapAgreeAcrossChunkSizes) {
  // Different chunk lengths place the overlap regions at different spots;
  // any beat lost or duplicated at a boundary shows up as a disagreement
  // between the two runs.
  const auto rec = monitor_record(8, 60.0);
  MonitorConfig small_chunks;
  small_chunks.chunk_s = 5.5;
  const auto a = run_monitor(rec.leads[0]);
  const auto b = run_monitor(rec.leads[0], small_chunks);

  EXPECT_LE(a.size() > b.size() ? a.size() - b.size() : b.size() - a.size(),
            1u);
  std::size_t matched = 0;
  for (const auto& beat : a)
    for (const auto& other : b)
      if (other.r_peak + 5 >= beat.r_peak &&
          other.r_peak <= beat.r_peak + 5) {
        matched += other.predicted == beat.predicted;
        break;
      }
  ASSERT_GT(a.size(), 40u);
  EXPECT_GE(matched + 1, a.size());
}

TEST_F(StreamingMonitorTest, StatsCountSanitizedInputs) {
  StreamingBeatMonitor monitor(*bundle_);
  monitor.push(std::numeric_limits<double>::quiet_NaN());
  monitor.push(std::numeric_limits<double>::infinity());
  monitor.push(-std::numeric_limits<double>::infinity());
  monitor.push(1e9);    // clamped high
  monitor.push(-1e9);   // clamped low
  monitor.push(1024.0); // fine
  monitor.push(4000);   // integer path, clamped
  const auto& stats = monitor.stats();
  EXPECT_EQ(stats.samples_in, 7u);
  EXPECT_EQ(stats.rejected_nonfinite, 3u);
  EXPECT_EQ(stats.clamped, 3u);
  // Stats survive flush(); the quality machine resets.
  monitor.flush();
  EXPECT_EQ(monitor.stats().samples_in, 7u);
  EXPECT_EQ(monitor.quality(), hbrp::dsp::SignalQuality::Good);
}

TEST_F(StreamingMonitorTest, ReusableAfterFlush) {
  const auto rec = monitor_record(5, 30.0);
  StreamingBeatMonitor monitor(*bundle_);
  auto run_once = [&]() {
    std::vector<MonitorBeat> beats;
    for (const auto x : rec.leads[0]) {
      auto b = monitor.push(x);
      beats.insert(beats.end(), b.begin(), b.end());
    }
    auto tail = monitor.flush();
    beats.insert(beats.end(), tail.begin(), tail.end());
    return beats;
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].r_peak, second[i].r_peak);
    EXPECT_EQ(first[i].predicted, second[i].predicted);
  }
}

}  // namespace
