// Tests for the streaming conditioning chain: bit-exact equivalence with
// the batch operators, delay accounting and bounded memory.
#include <gtest/gtest.h>

#include "dsp/morphology.hpp"
#include "dsp/streaming.hpp"
#include "ecg/synth.hpp"
#include "math/check.hpp"
#include "math/rng.hpp"

namespace {

using hbrp::dsp::DelayLine;
using hbrp::dsp::Signal;
using hbrp::dsp::SlidingExtremum;
using hbrp::dsp::StreamingConditioner;

Signal random_signal(std::size_t n, std::uint64_t seed) {
  hbrp::math::Rng rng(seed);
  Signal x(n);
  for (auto& v : x) v = static_cast<int>(rng.uniform_int(-500, 500));
  return x;
}

Signal run_streaming_extremum(SlidingExtremum::Kind kind, std::size_t len,
                              const Signal& x) {
  SlidingExtremum f(kind, len);
  Signal out;
  for (const auto v : x)
    if (const auto y = f.push(v)) out.push_back(*y);
  const auto tail = f.flush();
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

class ExtremumEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExtremumEquivalence, MatchesBatchOperator) {
  const auto [len, seed] = GetParam();
  const Signal x = random_signal(400, static_cast<std::uint64_t>(seed));
  EXPECT_EQ(run_streaming_extremum(SlidingExtremum::Kind::Min,
                                   static_cast<std::size_t>(len), x),
            hbrp::dsp::erode(x, static_cast<std::size_t>(len)));
  EXPECT_EQ(run_streaming_extremum(SlidingExtremum::Kind::Max,
                                   static_cast<std::size_t>(len), x),
            hbrp::dsp::dilate(x, static_cast<std::size_t>(len)));
}

INSTANTIATE_TEST_SUITE_P(
    LengthsAndSeeds, ExtremumEquivalence,
    ::testing::Combine(::testing::Values(1, 3, 5, 9, 71, 151),
                       ::testing::Values(1, 2, 3)));

TEST(SlidingExtremum, DelayIsHalfWindow) {
  SlidingExtremum f(SlidingExtremum::Kind::Min, 9);
  EXPECT_EQ(f.delay(), 4u);
  int produced = 0;
  for (int i = 0; i < 4; ++i)
    if (f.push(i)) ++produced;
  EXPECT_EQ(produced, 0);
  EXPECT_TRUE(f.push(99).has_value());
}

TEST(SlidingExtremum, EvenLengthRejected) {
  EXPECT_THROW(SlidingExtremum(SlidingExtremum::Kind::Min, 4), hbrp::Error);
  EXPECT_THROW(SlidingExtremum(SlidingExtremum::Kind::Max, 0), hbrp::Error);
}

TEST(SlidingExtremum, FlushResetsForReuse) {
  SlidingExtremum f(SlidingExtremum::Kind::Max, 5);
  const Signal x = random_signal(60, 9);
  Signal first;
  for (const auto v : x)
    if (const auto y = f.push(v)) first.push_back(*y);
  auto t1 = f.flush();
  first.insert(first.end(), t1.begin(), t1.end());

  Signal second;
  for (const auto v : x)
    if (const auto y = f.push(v)) second.push_back(*y);
  auto t2 = f.flush();
  second.insert(second.end(), t2.begin(), t2.end());
  EXPECT_EQ(first, second);
}

TEST(SlidingExtremum, MemoryBoundHolds) {
  SlidingExtremum f(SlidingExtremum::Kind::Min, 151);
  EXPECT_LE(f.memory_samples(), 2u * 75u + 2u);
}

TEST(DelayLineTest, DelaysExactly) {
  DelayLine d(3);
  EXPECT_FALSE(d.push(1).has_value());
  EXPECT_FALSE(d.push(2).has_value());
  EXPECT_FALSE(d.push(3).has_value());
  EXPECT_EQ(d.push(4).value(), 1);
  EXPECT_EQ(d.push(5).value(), 2);
  const auto tail = d.flush();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0], 3);
  EXPECT_EQ(tail[2], 5);
}

TEST(DelayLineTest, ZeroDelayPassesThrough) {
  DelayLine d(0);
  EXPECT_EQ(d.push(7).value(), 7);
  EXPECT_TRUE(d.flush().empty());
}

Signal run_streaming_conditioner(const Signal& x,
                                 const hbrp::dsp::FilterConfig& cfg) {
  StreamingConditioner cond(cfg);
  Signal out;
  for (const auto v : x)
    if (const auto y = cond.push(v)) out.push_back(*y);
  const auto tail = cond.flush();
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

TEST(StreamingConditionerTest, MatchesBatchOnRandomSignal) {
  const Signal x = random_signal(3000, 11);
  const hbrp::dsp::FilterConfig cfg;
  const Signal batch = hbrp::dsp::condition_ecg(x, cfg);
  const Signal streamed = run_streaming_conditioner(x, cfg);
  ASSERT_EQ(streamed.size(), batch.size());
  // Interior must match exactly. The borders interact with the replicated
  // edges of *intermediate* signals, where streaming (which replicates the
  // true chain outputs) is actually more faithful than re-batching; allow
  // the border region to differ.
  const std::size_t border =
      2 * (cfg.baseline_open_len + cfg.baseline_close_len);
  for (std::size_t i = border; i + border < batch.size(); ++i)
    EXPECT_EQ(streamed[i], batch[i]) << "sample " << i;
}

TEST(StreamingConditionerTest, MatchesBatchOnEcg) {
  hbrp::ecg::SynthConfig scfg;
  scfg.duration_s = 20.0;
  scfg.num_leads = 1;
  scfg.seed = 12;
  const auto rec = hbrp::ecg::generate_record(scfg);
  const hbrp::dsp::FilterConfig cfg;
  const Signal batch = hbrp::dsp::condition_ecg(rec.leads[0], cfg);
  const Signal streamed = run_streaming_conditioner(rec.leads[0], cfg);
  ASSERT_EQ(streamed.size(), batch.size());
  const std::size_t border =
      2 * (cfg.baseline_open_len + cfg.baseline_close_len);
  std::size_t mismatches = 0;
  for (std::size_t i = border; i + border < batch.size(); ++i)
    mismatches += (streamed[i] != batch[i]);
  EXPECT_EQ(mismatches, 0u);
}

TEST(StreamingConditionerTest, DelayMatchesDeclared) {
  // Outputs start exactly after `delay()` pushes.
  const hbrp::dsp::FilterConfig cfg;
  StreamingConditioner cond(cfg);
  const Signal x = random_signal(2000, 13);
  std::size_t first_output_at = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (cond.push(x[i])) {
      first_output_at = i;
      break;
    }
  }
  EXPECT_EQ(first_output_at, cond.delay());
}

TEST(StreamingConditionerTest, MemoryBoundIsSmall) {
  const hbrp::dsp::FilterConfig cfg;
  const StreamingConditioner cond(cfg);
  // The whole conditioning state must be a few structuring elements, far
  // below one second of signal (360 samples) per lead.
  EXPECT_LT(cond.memory_samples(), 1000u);
}

TEST(StreamingConditionerTest, InvalidConfigRejected) {
  hbrp::dsp::FilterConfig cfg;
  cfg.baseline_open_len = 151;
  cfg.baseline_close_len = 71;
  EXPECT_THROW(StreamingConditioner{cfg}, hbrp::Error);
}

}  // namespace
