// Wire-path replay under chaos: the scenario engine driven through
// SensorNodeClient -> ChaosProxy -> GatewayServer, asserting the
// acceptance properties of the adversarial ward:
//   - the StreamEverything verdict stream through *lossless* chaos
//     (fragmentation + latency jitter) is bit-identical to direct
//     FleetEngine ingest of the same scenario;
//   - the Selective path survives *lossy* chaos (seeded connection kills
//     mid-upload, frame bit-flips): every pathological upload still gets
//     exactly one verdict after retransmission + dedup — none lost, none
//     duplicated;
//   - direct ingest itself is thread/shard-invariant on scenario streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "scenario/chaos.hpp"
#include "scenario/episodes.hpp"
#include "scenario/runner.hpp"

namespace {

using namespace hbrp;
using scenario::ChaosConfig;
using scenario::EpisodeKind;
using scenario::ScenarioSpec;

class ScenarioChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecg::DatasetBuilderConfig cfg;
    cfg.record_duration_s = 120.0;
    cfg.max_per_record_per_class = 20;
    cfg.seed = 211;
    const auto ts1 = ecg::build_dataset({150, 150, 150}, cfg);
    cfg.max_per_record_per_class = 80;
    cfg.seed = 212;
    const auto ts2 = ecg::build_dataset({1200, 120, 150}, cfg);
    core::TwoStepConfig tcfg;
    tcfg.ga.population = 4;
    tcfg.ga.generations = 2;
    tcfg.seed = 21;
    const core::TwoStepTrainer trainer(ts1, ts2, tcfg);
    bundle_ = new embedded::EmbeddedClassifier(trainer.run().quantize());
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }

  static ScenarioSpec vt_spec() {
    // VT + PVC background: a dense supply of pathological beats, i.e. of
    // FULL_BEAT uploads for the selective path to lose and recover.
    ScenarioSpec spec;
    spec.name = "vt_for_chaos";
    spec.seed = 303;
    spec.duration_s = 30.0;
    spec.background = ecg::RecordProfile::PvcOccasional;
    spec.episodes.push_back({EpisodeKind::SustainedVt, 8.0, 10.0, 1.0});
    return spec;
  }

  static const embedded::EmbeddedClassifier* bundle_;
};

const embedded::EmbeddedClassifier* ScenarioChaosTest::bundle_ = nullptr;

TEST_F(ScenarioChaosTest, DirectIngestIsThreadShardInvariant) {
  ScenarioSpec spec;
  spec.name = "invariance";
  spec.seed = 71;
  spec.duration_s = 20.0;
  spec.episodes.push_back({EpisodeKind::ArtefactStorm, 6.0, 5.0, 1.0});
  const auto stream = scenario::build_scenario(spec);
  const auto a = scenario::run_direct(*bundle_, stream, 1, 1);
  const auto b = scenario::run_direct(*bundle_, stream, 4, 3);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST_F(ScenarioChaosTest, StreamPathThroughLosslessChaosIsBitIdentical) {
  ScenarioSpec spec;
  spec.name = "stream_chaos";
  spec.seed = 88;
  spec.duration_s = 20.0;
  spec.background = ecg::RecordProfile::PvcOccasional;
  const auto stream = scenario::build_scenario(spec);
  const auto reference = scenario::run_direct(*bundle_, stream);
  ASSERT_FALSE(reference.empty());

  ChaosConfig chaos;
  chaos.seed = 5;
  chaos.max_burst = 97;  // brutal fragmentation, prime on purpose
  chaos.jitter_probability = 0.4;
  chaos.jitter_max_ms = 2;
  const auto wire = scenario::run_wire(
      *bundle_, stream, net::TxPolicy::StreamEverything, &chaos);
  EXPECT_TRUE(wire.completed);
  EXPECT_EQ(wire.verdicts, reference)
      << "delay + fragmentation must never change the verdict stream";
  EXPECT_EQ(wire.tx.verdict_seq_gaps, 0u);
  EXPECT_EQ(wire.chaos_kills, 0u);
  EXPECT_GT(wire.tx.bytes_tx, 0u);
}

// Satellite: FULL_BEAT retransmission + verdict-as-ack survive forced
// mid-upload disconnects. The kill budget is sized to land inside upload
// bursts (a FULL_BEAT frame is ~850 bytes on the wire).
TEST_F(ScenarioChaosTest, SelectiveUploadsSurviveConnectionKills) {
  const auto stream = scenario::build_scenario(vt_spec());
  ChaosConfig chaos;
  chaos.seed = 17;
  chaos.kill_probability = 0.6;
  chaos.kill_after_min_bytes = 1500;
  chaos.kill_after_max_bytes = 6000;
  const auto wire = scenario::run_wire(
      *bundle_, stream, net::TxPolicy::Selective, &chaos, 1, 1,
      /*drain_budget_ms=*/60000);

  ASSERT_TRUE(wire.completed) << "drain must finish despite kills";
  EXPECT_GT(wire.chaos_kills, 0u) << "the chaos must actually bite";
  EXPECT_GT(wire.tx.reconnects, 0u);
  EXPECT_GT(wire.tx.retransmits, 0u);
  EXPECT_GT(wire.tx.beats_uploaded, 10u);

  // Exactly one verdict per upload: none lost...
  EXPECT_EQ(wire.tx.verdicts_rx, wire.tx.beats_uploaded);
  ASSERT_EQ(wire.verdicts.size(), wire.tx.beats_uploaded);
  // ...and none duplicated: seqs are exactly {0 .. uploads-1}.
  std::set<std::uint64_t> seqs;
  for (const auto& v : wire.verdicts) seqs.insert(v.seq);
  EXPECT_EQ(seqs.size(), wire.verdicts.size());
  EXPECT_EQ(*seqs.rbegin(), wire.tx.beats_uploaded - 1);
  // The at-least-once machinery visibly engaged somewhere: either the
  // gateway saw a duplicate upload or the client dropped a duplicate
  // verdict (which one depends on where each kill landed).
  EXPECT_GT(wire.gateway_full_beat_dups + wire.tx.verdict_dups +
                wire.tx.retransmits,
            0u);
}

// Satellite: the same guarantee under frame corruption — a flipped bit
// must never produce a wrong verdict, only a detected teardown + retry.
TEST_F(ScenarioChaosTest, SelectiveUploadsSurviveBitFlips) {
  const auto stream = scenario::build_scenario(vt_spec());
  ChaosConfig chaos;
  chaos.seed = 29;
  chaos.bit_flip_rate = 3e-4;
  const auto wire = scenario::run_wire(
      *bundle_, stream, net::TxPolicy::Selective, &chaos, 1, 1,
      /*drain_budget_ms=*/60000);

  ASSERT_TRUE(wire.completed);
  EXPECT_GT(wire.chaos_bit_flips, 0u);
  EXPECT_EQ(wire.tx.verdicts_rx, wire.tx.beats_uploaded);
  std::set<std::uint64_t> seqs;
  for (const auto& v : wire.verdicts) seqs.insert(v.seq);
  EXPECT_EQ(seqs.size(), wire.verdicts.size());

  // A corrupted frame is detected by CRC on one side or the other; with
  // this flip rate at least one teardown is statistically certain (and
  // deterministic for this seed).
  EXPECT_GT(wire.tx.parse_rejects + wire.tx.reconnects, 0u);

  // CRC guarantees no corrupted frame was ever *accepted*: every verdict
  // that reached the sink carries a well-formed class.
  for (const auto& v : wire.verdicts)
    EXPECT_LE(v.beat_class,
              static_cast<std::uint8_t>(ecg::BeatClass::Unknown));
}

TEST_F(ScenarioChaosTest, SelectiveCleanLinkMatchesChaosLinkVerdicts) {
  // The chaos shim must be *transparent* end-to-end: the set of uploaded
  // beats and their verdicts after recovery equal the clean-link run.
  const auto stream = scenario::build_scenario(vt_spec());
  const auto clean = scenario::run_wire(*bundle_, stream,
                                        net::TxPolicy::Selective, nullptr);
  ASSERT_TRUE(clean.completed);

  ChaosConfig chaos;
  chaos.seed = 17;
  chaos.kill_probability = 0.6;
  chaos.kill_after_min_bytes = 1500;
  chaos.kill_after_max_bytes = 6000;
  const auto chaotic = scenario::run_wire(
      *bundle_, stream, net::TxPolicy::Selective, &chaos, 1, 1, 60000);
  ASSERT_TRUE(chaotic.completed);

  // Local normal-beat log is computed on the node, untouched by the link.
  EXPECT_EQ(chaotic.local_log, clean.local_log);

  // Verdicts may arrive in a different order after retransmission;
  // compare as seq-sorted sets.
  auto sort_by_seq = [](std::vector<scenario::Verdict> v) {
    std::sort(v.begin(), v.end(),
              [](const scenario::Verdict& a, const scenario::Verdict& b) {
                return a.seq < b.seq;
              });
    return v;
  };
  EXPECT_EQ(sort_by_seq(chaotic.verdicts), sort_by_seq(clean.verdicts));
}

}  // namespace
