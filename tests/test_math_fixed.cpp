// Tests for fixed-point conversion helpers used by the embedded kernels.
#include <gtest/gtest.h>

#include "math/fixed.hpp"

namespace {

using namespace hbrp::math;

TEST(Fixed, GradeRoundTripEndpoints) {
  EXPECT_EQ(to_grade(0.0), 0u);
  EXPECT_EQ(to_grade(1.0), 0xFFFFu);
  EXPECT_EQ(to_grade(-0.5), 0u);
  EXPECT_EQ(to_grade(2.0), 0xFFFFu);
}

TEST(Fixed, GradeRoundsToNearest) {
  EXPECT_EQ(to_grade(0.5), 32768u);
  // One grade step is 1/65535; half a step up should round up.
  const double step = 1.0 / 65535.0;
  EXPECT_EQ(to_grade(10 * step + 0.6 * step), 11u);
  EXPECT_EQ(to_grade(10 * step + 0.4 * step), 10u);
}

TEST(Fixed, GradeRoundTripError) {
  for (int g = 0; g <= 0xFFFF; g += 37) {
    const auto g16 = static_cast<std::uint16_t>(g);
    EXPECT_EQ(to_grade(from_grade(g16)), g16);
  }
}

TEST(Fixed, Q16Conversions) {
  EXPECT_EQ(to_q16(0.0), 0u);
  EXPECT_EQ(to_q16(1.0), kQ16One);
  EXPECT_EQ(to_q16(0.5), kQ16One / 2);
  EXPECT_NEAR(from_q16(to_q16(0.123)), 0.123, 1.0 / 65536.0);
  EXPECT_EQ(to_q16(-1.0), 0u);
  EXPECT_EQ(to_q16(7.0), kQ16One);
}

TEST(Fixed, Headroom32) {
  EXPECT_EQ(headroom32(0), 31);
  EXPECT_EQ(headroom32(1), 31);
  EXPECT_EQ(headroom32(0x80000000u), 0);
  EXPECT_EQ(headroom32(0x0000FFFFu), 16);
  EXPECT_EQ(headroom32(0x00010000u), 15);
}

TEST(Fixed, SaturateI16) {
  EXPECT_EQ(saturate_i16(0), 0);
  EXPECT_EQ(saturate_i16(32767), 32767);
  EXPECT_EQ(saturate_i16(32768), 32767);
  EXPECT_EQ(saturate_i16(-32768), -32768);
  EXPECT_EQ(saturate_i16(-32769), -32768);
  EXPECT_EQ(saturate_i16(1000000), 32767);
}

TEST(Fixed, RshiftRoundSymmetric) {
  EXPECT_EQ(rshift_round(10, 2), 3);   // 2.5 -> 3
  EXPECT_EQ(rshift_round(-10, 2), -3); // -2.5 -> -3 (symmetric)
  EXPECT_EQ(rshift_round(9, 2), 2);    // 2.25 -> 2
  EXPECT_EQ(rshift_round(-9, 2), -2);
  EXPECT_EQ(rshift_round(7, 0), 7);
}

TEST(Fixed, RshiftRoundMatchesDoubleRounding) {
  for (int x = -1000; x <= 1000; x += 17) {
    for (int s = 1; s <= 4; ++s) {
      const double expect = std::abs(x / double(1 << s));
      const double got = std::abs(double(rshift_round(x, s)));
      EXPECT_NEAR(got, expect, 0.5) << "x=" << x << " s=" << s;
    }
  }
}

}  // namespace
