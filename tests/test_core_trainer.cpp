// Integration tests of the two-step training framework on synthetic splits.
#include <gtest/gtest.h>

#include "core/pca_baseline.hpp"
#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "math/check.hpp"

namespace {

using hbrp::core::calibrate_alpha;
using hbrp::core::ConfusionMatrix;
using hbrp::core::evaluate;
using hbrp::core::project_dataset;
using hbrp::core::TwoStepConfig;
using hbrp::core::TwoStepTrainer;
using hbrp::ecg::BeatDataset;

// Shared fixture: build the splits once for the whole suite (expensive).
class TrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hbrp::ecg::DatasetBuilderConfig cfg;
    cfg.record_duration_s = 120.0;
    cfg.max_per_record_per_class = 20;
    cfg.seed = 41;
    ts1_ = new BeatDataset(hbrp::ecg::build_dataset({150, 150, 150}, cfg));
    cfg.max_per_record_per_class = 80;
    cfg.seed = 42;
    ts2_ = new BeatDataset(hbrp::ecg::build_dataset({1500, 140, 170}, cfg));
    cfg.seed = 43;
    test_ = new BeatDataset(hbrp::ecg::build_dataset({2500, 220, 280}, cfg));
  }
  static void TearDownTestSuite() {
    delete ts1_;
    delete ts2_;
    delete test_;
    ts1_ = ts2_ = test_ = nullptr;
  }

  static TwoStepConfig quick_config() {
    TwoStepConfig cfg;
    cfg.coefficients = 8;
    cfg.ga.population = 4;
    cfg.ga.generations = 2;
    cfg.seed = 9;
    return cfg;
  }

  static const BeatDataset* ts1_;
  static const BeatDataset* ts2_;
  static const BeatDataset* test_;
};

const BeatDataset* TrainerTest::ts1_ = nullptr;
const BeatDataset* TrainerTest::ts2_ = nullptr;
const BeatDataset* TrainerTest::test_ = nullptr;

TEST_F(TrainerTest, ProjectDatasetShape) {
  hbrp::math::Rng rng(1);
  hbrp::rp::BeatProjector proj(hbrp::rp::make_achlioptas(8, 50, rng), 4);
  const auto d = project_dataset(*ts1_, proj);
  EXPECT_EQ(d.u.rows(), 450u);
  EXPECT_EQ(d.u.cols(), 8u);
  EXPECT_EQ(d.labels.size(), 450u);
}

TEST_F(TrainerTest, TrainWithProjectionMeetsArrOnTs2) {
  const TwoStepTrainer trainer(*ts1_, *ts2_, quick_config());
  hbrp::math::Rng rng(2);
  const auto p = hbrp::rp::make_achlioptas(8, 50, rng);
  const auto trained = trainer.train_with_projection(p);
  const auto d2 = project_dataset(*ts2_, trained.projector);
  const ConfusionMatrix cm = evaluate(trained.nfc, d2, trained.alpha_train);
  EXPECT_GE(cm.arr(), 0.97);
  EXPECT_GT(cm.ndr(), 0.5);
}

TEST_F(TrainerTest, CalibratedAlphaIsMinimal) {
  const TwoStepTrainer trainer(*ts1_, *ts2_, quick_config());
  hbrp::math::Rng rng(3);
  const auto trained =
      trainer.train_with_projection(hbrp::rp::make_achlioptas(8, 50, rng));
  const auto d2 = project_dataset(*ts2_, trained.projector);
  const double alpha = trained.alpha_train;
  if (alpha > 0.0) {
    // Slightly below the calibrated alpha the ARR constraint must fail.
    const ConfusionMatrix below =
        evaluate(trained.nfc, d2, std::max(0.0, alpha * 0.9 - 1e-9));
    EXPECT_LT(below.arr(), 0.97);
  }
  const ConfusionMatrix at = evaluate(trained.nfc, d2, alpha);
  EXPECT_GE(at.arr(), 0.97);
}

TEST_F(TrainerTest, AlphaMonotonicity) {
  // Raising alpha must not lower ARR and must not raise NDR.
  const TwoStepTrainer trainer(*ts1_, *ts2_, quick_config());
  hbrp::math::Rng rng(4);
  const auto trained =
      trainer.train_with_projection(hbrp::rp::make_achlioptas(8, 50, rng));
  const auto d2 = project_dataset(*ts2_, trained.projector);
  double prev_arr = -1.0, prev_ndr = 2.0;
  for (double alpha : {0.0, 0.05, 0.15, 0.4, 0.8}) {
    const ConfusionMatrix cm = evaluate(trained.nfc, d2, alpha);
    EXPECT_GE(cm.arr() + 1e-12, prev_arr);
    EXPECT_LE(cm.ndr() - 1e-12, prev_ndr);
    prev_arr = cm.arr();
    prev_ndr = cm.ndr();
  }
}

TEST_F(TrainerTest, GaRunImprovesOrMatchesFitness) {
  auto cfg = quick_config();
  const TwoStepTrainer trainer(*ts1_, *ts2_, cfg);
  const auto trained = trainer.run();
  const auto& history = trainer.last_history();
  ASSERT_GE(history.size(), 2u);
  EXPECT_GE(history.back(), history.front());
  // Final classifier performs on the held-out test set.
  const auto dt = project_dataset(*test_, trained.projector);
  const ConfusionMatrix cm = evaluate(trained.nfc, dt, trained.alpha_train);
  EXPECT_GT(cm.ndr(), 0.7);
  EXPECT_GT(cm.arr(), 0.8);
}

TEST_F(TrainerTest, EmbeddedQuantizationSmallGap) {
  const TwoStepTrainer trainer(*ts1_, *ts2_, quick_config());
  hbrp::math::Rng rng(5);
  const auto trained =
      trainer.train_with_projection(hbrp::rp::make_achlioptas(8, 50, rng));
  const auto dt = project_dataset(*test_, trained.projector);
  const ConfusionMatrix float_cm =
      evaluate(trained.nfc, dt, trained.alpha_train);
  const auto bundle = trained.quantize();
  const ConfusionMatrix int_cm = hbrp::core::evaluate_embedded(bundle, *test_);
  // Table II: the PC-vs-WBSN gap is a few percentage points.
  EXPECT_NEAR(int_cm.ndr(), float_cm.ndr(), 0.12);
  EXPECT_NEAR(int_cm.arr(), float_cm.arr(), 0.12);
}

TEST_F(TrainerTest, QuantizeHonorsAlphaTestOverride) {
  const TwoStepTrainer trainer(*ts1_, *ts2_, quick_config());
  hbrp::math::Rng rng(6);
  const auto trained =
      trainer.train_with_projection(hbrp::rp::make_achlioptas(8, 50, rng));
  const auto b1 = trained.quantize();
  EXPECT_EQ(b1.alpha_q16(), hbrp::math::to_q16(trained.alpha_train));
  const auto b2 = trained.quantize(hbrp::embedded::MfShape::Linearized, 0.5);
  EXPECT_EQ(b2.alpha_q16(), hbrp::math::to_q16(0.5));
}

TEST_F(TrainerTest, PcaBaselineTrainsAndClassifies) {
  hbrp::core::PcaBaselineConfig cfg;
  cfg.coefficients = 8;
  const auto pca_cls = hbrp::core::train_pca_baseline(*ts1_, *ts2_, cfg);
  const auto dt = project_dataset(*test_, pca_cls);
  const ConfusionMatrix cm =
      evaluate(pca_cls.nfc, dt, pca_cls.alpha_train);
  EXPECT_GT(cm.ndr(), 0.6);
  EXPECT_GT(cm.arr(), 0.8);
  EXPECT_GT(pca_cls.pca.explained_variance_ratio(), 0.5);
}

TEST_F(TrainerTest, CalibrateAlphaRejectsAllNormalData) {
  hbrp::math::Rng rng(7);
  hbrp::rp::BeatProjector proj(hbrp::rp::make_achlioptas(8, 50, rng), 4);
  hbrp::core::ProjectedDataset d;
  d.u = hbrp::math::Mat(3, 8);
  d.labels = {hbrp::ecg::BeatClass::N, hbrp::ecg::BeatClass::N,
              hbrp::ecg::BeatClass::N};
  hbrp::nfc::NeuroFuzzyClassifier nfc(8);
  EXPECT_THROW(calibrate_alpha(nfc, d, 0.97), hbrp::Error);
  EXPECT_THROW(calibrate_alpha(nfc, d, 0.0), hbrp::Error);
}

TEST_F(TrainerTest, MismatchedSplitsRejected) {
  hbrp::ecg::BeatDataset odd = *ts1_;
  odd.window_before = 50;  // declares a different geometry
  EXPECT_THROW(TwoStepTrainer(odd, *ts2_, quick_config()), hbrp::Error);
}

}  // namespace
