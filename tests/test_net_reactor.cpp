// Multi-reactor gateway tests: per-session verdict bit-identity across
// reactor counts (with concurrent mixed wards), the same identity through
// chaos-proxy fragmentation, FULL_BEAT exactly-once dedup when kills force
// reconnects onto different reactors, the adaptive idle backoff, and the
// poll(2) fallback backend.
#include <gtest/gtest.h>

#include <cstdlib>
#include <chrono>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "ecg/synth.hpp"
#include "net/client.hpp"
#include "net/gateway.hpp"
#include "scenario/chaos.hpp"
#include "scenario/episodes.hpp"
#include "scenario/runner.hpp"
#include "service/fleet.hpp"

namespace {

using namespace hbrp;
using Clock = std::chrono::steady_clock;
using scenario::ChaosConfig;
using scenario::ScenarioSpec;

class NetReactorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecg::DatasetBuilderConfig cfg;
    cfg.record_duration_s = 120.0;
    cfg.max_per_record_per_class = 20;
    cfg.seed = 191;
    const auto ts1 = ecg::build_dataset({150, 150, 150}, cfg);
    cfg.max_per_record_per_class = 80;
    cfg.seed = 192;
    const auto ts2 = ecg::build_dataset({1200, 120, 150}, cfg);
    core::TwoStepConfig tcfg;
    tcfg.ga.population = 4;
    tcfg.ga.generations = 2;
    tcfg.seed = 19;
    const core::TwoStepTrainer trainer(ts1, ts2, tcfg);
    bundle_ = new embedded::EmbeddedClassifier(trainer.run().quantize());
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }

  static const embedded::EmbeddedClassifier* bundle_;
};

const embedded::EmbeddedClassifier* NetReactorTest::bundle_ = nullptr;

std::vector<double> patient_lead(std::uint64_t seed, double seconds = 15.0) {
  ecg::SynthConfig cfg;
  cfg.profile = seed % 2 == 0 ? ecg::RecordProfile::PvcOccasional
                              : ecg::RecordProfile::NormalSinus;
  cfg.duration_s = seconds;
  cfg.num_leads = 1;
  cfg.seed = seed;
  const auto rec = ecg::generate_record(cfg);
  return {rec.leads[0].begin(), rec.leads[0].end()};
}

std::vector<dsp::Sample> wire_codes(const std::vector<double>& lead) {
  const core::MonitorConfig mc;
  std::vector<dsp::Sample> codes;
  codes.reserve(lead.size());
  dsp::Sample last = 0;
  for (const double x : lead)
    codes.push_back(
        net::SensorNodeClient::sanitize(x, mc.quality, last, nullptr));
  return codes;
}

struct VerdictSig {
  std::uint64_t sequence;
  std::uint64_t r_peak;
  std::uint8_t beat_class;
  std::uint8_t quality;
  bool operator==(const VerdictSig&) const = default;
};

std::vector<VerdictSig> direct_ingest(
    const embedded::EmbeddedClassifier& classifier,
    std::span<const dsp::Sample> codes) {
  service::FleetEngine engine(classifier, {});
  std::vector<VerdictSig> out;
  const auto id = engine.open_session([&out](const service::SessionResult& r) {
    out.push_back(VerdictSig{r.sequence,
                             static_cast<std::uint64_t>(r.beat.r_peak),
                             static_cast<std::uint8_t>(r.beat.predicted),
                             static_cast<std::uint8_t>(r.beat.quality)});
  });
  EXPECT_TRUE(id.has_value());
  std::size_t off = 0;
  while (off < codes.size()) {
    const std::size_t n = std::min<std::size_t>(1024, codes.size() - off);
    off += engine.offer(*id, codes.subspan(off, n)).accepted;
    engine.pump();
  }
  engine.drain();
  EXPECT_TRUE(engine.close_session(*id));
  return out;
}

struct GatewayHarness {
  net::GatewayServer gw;
  std::thread thread;

  GatewayHarness(const embedded::EmbeddedClassifier& classifier,
                 net::GatewayConfig cfg)
      : gw(classifier, std::move(cfg)), thread([this] { gw.serve(); }) {}
  ~GatewayHarness() {
    gw.stop();
    thread.join();
  }
};

// The tentpole contract: a ward of concurrent mixed-policy clients gets
// bit-identical per-session verdict streams no matter how many reactor
// threads the gateway shards them across.
TEST_F(NetReactorTest, VerdictStreamsAreReactorCountInvariant) {
  constexpr std::size_t kClients = 6;
  std::vector<std::vector<double>> leads;
  std::vector<std::vector<VerdictSig>> reference(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    leads.push_back(patient_lead(40 + i));
    reference[i] = direct_ingest(*bundle_, wire_codes(leads[i]));
    ASSERT_FALSE(reference[i].empty()) << "client " << i;
  }

  for (const std::size_t reactors : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}}) {
    net::GatewayConfig gcfg;
    gcfg.reactors = reactors;
    GatewayHarness harness(*bundle_, gcfg);
    ASSERT_EQ(harness.gw.reactor_count(), reactors);

    std::vector<std::vector<VerdictSig>> got(kClients);
    std::vector<net::TxStats> stats(kClients);
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        net::NodeConfig ncfg;
        ncfg.port = harness.gw.port();
        ncfg.node_id = static_cast<std::uint32_t>(i);
        ncfg.policy = net::TxPolicy::StreamEverything;
        net::SensorNodeClient client(*bundle_, ncfg);
        client.set_verdict_sink(
            [&got, i](std::uint64_t seq, const net::BeatVerdictMsg& v) {
              got[i].push_back(
                  VerdictSig{seq, v.r_peak, v.beat_class, v.quality});
            });
        client.push(std::span<const double>(leads[i]));
        client.finish();
        EXPECT_TRUE(client.drain(30000))
            << "client " << i << " reactors " << reactors;
        client.close(5000);
        stats[i] = client.stats();
      });
    }
    for (auto& t : threads) t.join();

    for (std::size_t i = 0; i < kClients; ++i) {
      EXPECT_EQ(got[i], reference[i])
          << "client " << i << " diverges at " << reactors << " reactors";
      EXPECT_EQ(stats[i].verdict_seq_gaps, 0u);
      EXPECT_EQ(stats[i].frames_dropped, 0u);
    }
    // The per-reactor snapshot is well-formed and names the backend.
    const std::string rj = harness.gw.reactors_json();
    EXPECT_NE(rj.find("\"backend\""), std::string::npos) << rj;
  }
}

// Worst-case framing through the chaos proxy: every relay write is capped
// to a prime burst size, so frames arrive shredded across reads. The
// verdict stream must match the unfragmented wire run bit for bit, on one
// reactor and on several.
TEST_F(NetReactorTest, FragmentedStreamIsReactorInvariant) {
  ScenarioSpec spec;
  spec.name = "reactor_fragmentation";
  spec.seed = 501;
  spec.duration_s = 30.0;
  const auto stream = scenario::build_scenario(spec);

  const auto clean = scenario::run_wire(
      *bundle_, stream, net::TxPolicy::StreamEverything, nullptr, 1, 1);
  ASSERT_TRUE(clean.completed);
  ASSERT_FALSE(clean.verdicts.empty());

  ChaosConfig chaos;
  chaos.seed = 11;
  chaos.max_burst = 89;
  for (const std::size_t reactors : {std::size_t{1}, std::size_t{2}}) {
    const auto wire = scenario::run_wire(
        *bundle_, stream, net::TxPolicy::StreamEverything, &chaos, reactors,
        reactors);
    ASSERT_TRUE(wire.completed) << reactors << " reactors";
    EXPECT_EQ(wire.verdicts, clean.verdicts)
        << "fragmentation changed the verdict stream at " << reactors
        << " reactors";
    EXPECT_EQ(wire.tx.verdict_seq_gaps, 0u);
  }
}

// Seeded connection kills force the client through reconnects; each
// reconnect may land its connection (and thus its session) on a different
// reactor. The at-least-once upload contract must still dedup to
// exactly-once verdicts, with no duplicate FULL_BEAT counted fleet-side.
TEST_F(NetReactorTest, KillsAndReconnectsKeepUploadsExactlyOnce) {
  // PVC background + a VT run: a dense supply of pathological beats, i.e.
  // of FULL_BEAT uploads for the kills to land inside.
  ScenarioSpec spec;
  spec.name = "reactor_kill_chaos";
  spec.seed = 502;
  spec.duration_s = 40.0;
  spec.background = ecg::RecordProfile::PvcOccasional;
  spec.episodes.push_back(
      {scenario::EpisodeKind::SustainedVt, 10.0, 15.0, 1.0});
  const auto stream = scenario::build_scenario(spec);

  ChaosConfig chaos;
  chaos.seed = 17;
  chaos.kill_probability = 0.6;
  chaos.kill_after_min_bytes = 1500;
  chaos.kill_after_max_bytes = 6000;
  const auto wire = scenario::run_wire(
      *bundle_, stream, net::TxPolicy::Selective, &chaos, 3, 3,
      /*drain_budget_ms=*/60000);

  ASSERT_TRUE(wire.completed) << "drain must finish despite kills";
  EXPECT_GT(wire.chaos_kills, 0u) << "the chaos must actually bite";
  EXPECT_GT(wire.tx.reconnects, 0u);
  EXPECT_GT(wire.tx.beats_uploaded, 0u);

  // Exactly-once downstream of at-least-once uploads: unique verdict seqs
  // covering every upload, and the fleet counted no duplicate windows.
  std::set<std::uint64_t> seqs;
  for (const auto& v : wire.verdicts) seqs.insert(v.seq);
  EXPECT_EQ(seqs.size(), wire.verdicts.size());
  EXPECT_EQ(wire.tx.verdicts_rx, wire.tx.beats_uploaded);
}

// The idle backoff: a gateway with nothing to do must widen its poll
// timeout instead of spinning at the base cadence, yet still notice and
// serve a late client promptly.
TEST_F(NetReactorTest, IdleBackoffBoundsWakeupsAndStaysResponsive) {
  net::GatewayConfig gcfg;
  gcfg.reactors = 2;
  GatewayHarness harness(*bundle_, gcfg);

  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  const std::uint64_t idle = harness.gw.stats().idle_wakeups.load();
  EXPECT_GT(idle, 0u);
  // At the 5 ms base cadence two reactors would burn ~200 wakeups in
  // 500 ms; the exponential backoff (5 -> 320 ms) keeps each reactor to a
  // handful. Generous bound: sleep scheduling jitter must not flake this.
  EXPECT_LT(idle, 60u) << "idle backoff is not widening the poll timeout";

  // A late client still gets full service with prompt verdicts.
  const auto lead = patient_lead(77, 10.0);
  const auto reference = direct_ingest(*bundle_, wire_codes(lead));
  net::NodeConfig ncfg;
  ncfg.port = harness.gw.port();
  net::SensorNodeClient client(*bundle_, ncfg);
  std::vector<VerdictSig> got;
  client.set_verdict_sink(
      [&got](std::uint64_t seq, const net::BeatVerdictMsg& v) {
        got.push_back(VerdictSig{seq, v.r_peak, v.beat_class, v.quality});
      });
  client.push(std::span<const double>(lead));
  client.finish();
  EXPECT_TRUE(client.drain(20000));
  client.close(5000);
  EXPECT_EQ(got, reference);
}

// HBRP_NET_POLL=1 swaps every reactor onto the poll(2) fallback backend;
// results must be indistinguishable from the epoll path.
TEST_F(NetReactorTest, PollFallbackBackendIsBitIdentical) {
  const auto lead = patient_lead(88);
  const auto reference = direct_ingest(*bundle_, wire_codes(lead));
  ASSERT_FALSE(reference.empty());

  ::setenv("HBRP_NET_POLL", "1", 1);
  {
    net::GatewayConfig gcfg;
    gcfg.reactors = 2;
    GatewayHarness harness(*bundle_, gcfg);
    const std::string rj = harness.gw.reactors_json();
    EXPECT_NE(rj.find("\"backend\": \"poll\""), std::string::npos) << rj;

    net::NodeConfig ncfg;
    ncfg.port = harness.gw.port();
    net::SensorNodeClient client(*bundle_, ncfg);
    std::vector<VerdictSig> got;
    client.set_verdict_sink(
        [&got](std::uint64_t seq, const net::BeatVerdictMsg& v) {
          got.push_back(VerdictSig{seq, v.r_peak, v.beat_class, v.quality});
        });
    client.push(std::span<const double>(lead));
    client.finish();
    EXPECT_TRUE(client.drain(20000));
    client.close(5000);
    EXPECT_EQ(got, reference);
  }
  ::unsetenv("HBRP_NET_POLL");
}

}  // namespace
