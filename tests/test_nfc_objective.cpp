// Direct tests of the NFC training objective: analytic gradients versus
// central finite differences, and the width-decay term's behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "math/check.hpp"
#include "math/rng.hpp"
#include "nfc/objective.hpp"
#include "nfc/train.hpp"

namespace {

using hbrp::ecg::BeatClass;
using hbrp::math::Mat;
using hbrp::nfc::NeuroFuzzyClassifier;
using hbrp::nfc::TrainingObjective;

struct Problem {
  Mat u;
  std::vector<BeatClass> labels;
  NeuroFuzzyClassifier nfc;
};

Problem make_problem(std::size_t k, std::size_t n, std::uint64_t seed) {
  hbrp::math::Rng rng(seed);
  Problem p{Mat(n, k), {}, NeuroFuzzyClassifier(k)};
  p.labels.reserve(n);
  for (std::size_t row = 0; row < n; ++row) {
    const auto cls = static_cast<std::size_t>(row % 3);
    p.labels.push_back(static_cast<BeatClass>(cls));
    for (std::size_t c = 0; c < k; ++c)
      p.u.at(row, c) =
          3.0 * static_cast<double>(cls) + rng.normal(0.0, 1.0);
  }
  hbrp::nfc::init_from_statistics(p.nfc, p.u, p.labels);
  return p;
}

class ObjectiveGradient : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObjectiveGradient, MatchesCentralFiniteDifferences) {
  Problem p = make_problem(3, 30, GetParam());
  TrainingObjective obj(p.nfc, p.u, p.labels, 0.0, {});
  auto params = p.nfc.to_params();
  std::vector<double> grad(params.size());
  obj.eval(params, grad);

  const double eps = 1e-6;
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto lo = params, hi = params;
    lo[i] -= eps;
    hi[i] += eps;
    std::vector<double> scratch(params.size());
    const double f_lo = obj.eval(lo, scratch);
    const double f_hi = obj.eval(hi, scratch);
    const double fd = (f_hi - f_lo) / (2 * eps);
    EXPECT_NEAR(grad[i], fd, 1e-5 * std::max(1.0, std::abs(fd)))
        << "param " << i;
  }
}

TEST_P(ObjectiveGradient, WidthDecayGradientMatchesFiniteDifferences) {
  Problem p = make_problem(2, 18, GetParam() + 50);
  auto params = p.nfc.to_params();
  std::vector<double> ref(params.begin() +
                              static_cast<std::ptrdiff_t>(params.size() / 2),
                          params.end());
  TrainingObjective obj(p.nfc, p.u, p.labels, 0.1, ref);
  // Perturb away from the reference so the decay term is active.
  for (std::size_t i = params.size() / 2; i < params.size(); ++i)
    params[i] += 0.3;
  std::vector<double> grad(params.size());
  obj.eval(params, grad);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto lo = params, hi = params;
    lo[i] -= eps;
    hi[i] += eps;
    std::vector<double> scratch(params.size());
    const double fd = (obj.eval(hi, scratch) - obj.eval(lo, scratch)) /
                      (2 * eps);
    EXPECT_NEAR(grad[i], fd, 1e-5 * std::max(1.0, std::abs(fd)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectiveGradient,
                         ::testing::Range<std::uint64_t>(1, 5));

TEST(Objective, LossDecreasesAlongNegativeGradient) {
  Problem p = make_problem(4, 60, 9);
  TrainingObjective obj(p.nfc, p.u, p.labels, 0.0, {});
  auto params = p.nfc.to_params();
  std::vector<double> grad(params.size());
  const double f0 = obj.eval(params, grad);
  double norm = 0.0;
  for (const double g : grad) norm += g * g;
  const double step = 1e-3 / std::sqrt(std::max(norm, 1e-12));
  for (std::size_t i = 0; i < params.size(); ++i)
    params[i] -= step * grad[i];
  std::vector<double> scratch(params.size());
  EXPECT_LT(obj.eval(params, scratch), f0);
}

TEST(Objective, WidthDecayAtReferenceAddsNothing) {
  Problem p = make_problem(2, 12, 11);
  auto params = p.nfc.to_params();
  std::vector<double> ref(params.begin() +
                              static_cast<std::ptrdiff_t>(params.size() / 2),
                          params.end());
  TrainingObjective plain(p.nfc, p.u, p.labels, 0.0, {});
  TrainingObjective decayed(p.nfc, p.u, p.labels, 0.5, ref);
  std::vector<double> g1(params.size()), g2(params.size());
  EXPECT_DOUBLE_EQ(plain.eval(params, g1), decayed.eval(params, g2));
}

TEST(Objective, ValidatesConstruction) {
  Problem p = make_problem(2, 12, 13);
  Mat wrong(12, 3);
  EXPECT_THROW(TrainingObjective(p.nfc, wrong, p.labels, 0.0, {}),
               hbrp::Error);
  std::vector<BeatClass> short_labels(5, BeatClass::N);
  EXPECT_THROW(TrainingObjective(p.nfc, p.u, short_labels, 0.0, {}),
               hbrp::Error);
  EXPECT_THROW(TrainingObjective(p.nfc, p.u, p.labels, 0.1, {1.0}),
               hbrp::Error);
}

}  // namespace
