// Kernel-layer equivalence gates: the sparse-index projection vs. the dense
// and packed reference kernels, the batch fuzzification kernels vs. the
// per-value canonical forms, and scalar-vs-AVX2 bit-identity. These tests
// are the enforcement of the equivalence contract documented in
// src/kernels/*.hpp and DESIGN.md §10.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "embedded/int_classifier.hpp"
#include "math/check.hpp"
#include "kernels/cpu.hpp"
#include "kernels/fuzzify.hpp"
#include "kernels/sparse_ternary.hpp"
#include "math/rng.hpp"
#include "nfc/classifier.hpp"
#include "rp/achlioptas.hpp"
#include "rp/packed_matrix.hpp"

namespace {

namespace kernels = hbrp::kernels;
using hbrp::dsp::Sample;
using hbrp::math::Rng;
using hbrp::rp::make_achlioptas;
using hbrp::rp::PackedTernaryMatrix;
using hbrp::rp::TernaryMatrix;

kernels::SparseTernary sparse_from(const TernaryMatrix& m) {
  return kernels::SparseTernary::build(
      m.rows(), m.cols(),
      [&m](std::size_t r, std::size_t c) { return m.at(r, c); });
}

std::vector<Sample> random_samples(std::size_t n, Rng& rng, std::int32_t lo,
                                   std::int32_t hi) {
  std::vector<Sample> v(n);
  for (Sample& x : v) x = static_cast<Sample>(rng.uniform_int(lo, hi));
  return v;
}

// --- sparse-index projection vs. the dense/packed references ---------------

TEST(SparseTernary, MatchesDenseAndPackedOnRandomShapes) {
  Rng rng(20250806);
  for (const std::size_t k : {std::size_t{8}, std::size_t{16}, std::size_t{32}}) {
    for (int rep = 0; rep < 8; ++rep) {
      const TernaryMatrix dense = make_achlioptas(k, 50, rng);
      const PackedTernaryMatrix packed(dense);
      const kernels::SparseTernary sparse = sparse_from(dense);

      const std::vector<Sample> v = random_samples(50, rng, -2048, 2047);
      std::vector<std::int32_t> ref_int(k), got_int(k);
      std::vector<double> ref_f(k), got_f(k);
      packed.apply_into(v, ref_int);
      dense.apply_into(v, ref_f);
      sparse.apply_into(v, std::span<std::int32_t>(got_int));
      sparse.apply_into(v, std::span<double>(got_f));

      EXPECT_EQ(ref_int, got_int) << "k=" << k << " rep=" << rep;
      // Integer-sample inputs: every partial sum is exact in double, so the
      // float path is bit-identical, not merely close.
      for (std::size_t r = 0; r < k; ++r)
        EXPECT_EQ(ref_f[r], got_f[r]) << "k=" << k << " row=" << r;
    }
  }
}

TEST(SparseTernary, AllZeroRowsAndNoNegativeRows) {
  TernaryMatrix m(4, 50);
  // Row 0 all zero; row 1 no negatives; row 2 no positives; row 3 mixed.
  for (std::size_t c = 0; c < 50; c += 3) m.set(1, c, 1);
  for (std::size_t c = 1; c < 50; c += 4) m.set(2, c, -1);
  for (std::size_t c = 0; c < 50; ++c)
    m.set(3, c, static_cast<std::int8_t>(c % 3 == 0 ? 1 : (c % 3 == 1 ? -1 : 0)));
  const kernels::SparseTernary sparse = sparse_from(m);

  Rng rng(7);
  const std::vector<Sample> v = random_samples(50, rng, -5000, 5000);
  std::vector<std::int32_t> ref(4), got(4);
  std::vector<double> ref_f(4), got_f(4);
  m.apply_into(v, ref);
  m.apply_into(v, ref_f);
  sparse.apply_into(v, std::span<std::int32_t>(got));
  sparse.apply_into(v, std::span<double>(got_f));
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got_f[0], 0.0);
  EXPECT_EQ(ref, got);
  for (std::size_t r = 0; r < 4; ++r) EXPECT_EQ(ref_f[r], got_f[r]);
}

TEST(SparseTernary, ExtremeSampleValuesWrapLikeReference) {
  // Integer overflow must wrap identically to the packed kernel (int32
  // accumulation is modular either way).
  TernaryMatrix m(2, 4);
  m.set(0, 0, 1);
  m.set(0, 1, 1);
  m.set(0, 2, 1);
  m.set(1, 0, 1);
  m.set(1, 1, -1);
  const PackedTernaryMatrix packed(m);
  const kernels::SparseTernary sparse = sparse_from(m);
  const std::int32_t big = std::numeric_limits<std::int32_t>::max();
  const std::vector<Sample> v = {big, big, big, -7};
  std::vector<std::int32_t> ref(2), got(2);
  packed.apply_into(v, ref);
  sparse.apply_into(v, std::span<std::int32_t>(got));
  EXPECT_EQ(ref, got);
}

TEST(SparseTernary, NonzerosAndShapeAccessors) {
  Rng rng(11);
  const TernaryMatrix m = make_achlioptas(16, 50, rng);
  const kernels::SparseTernary sparse = sparse_from(m);
  EXPECT_EQ(sparse.rows(), 16u);
  EXPECT_EQ(sparse.cols(), 50u);
  std::size_t nnz = 0;
  for (std::size_t r = 0; r < 16; ++r)
    for (std::size_t c = 0; c < 50; ++c) nnz += m.at(r, c) != 0;
  EXPECT_EQ(sparse.nonzeros(), nnz);
}

// --- integer MF batch kernels vs. the canonical scalar grades --------------

TEST(FuzzifyInt, LinearizedBatchMatchesScalarEverywhere) {
  // Sweep MF shapes incl. s = 1 (degenerate), huge s, and x values placed
  // exactly on every segment breakpoint — the AVX2 exact-division fixup has
  // to hold on all of them.
  Rng rng(42);
  const std::uint32_t s_values[] = {1,      2,      3,       40,
                                    4147,   65535,  1 << 20, (1u << 31) - 1};
  for (const std::uint32_t s : s_values) {
    const std::int32_t center =
        static_cast<std::int32_t>(rng.uniform_int(-100000, 100000));
    std::vector<std::int32_t> xs;
    // Breakpoints and their neighbours, both sides of the centre.
    for (const std::int64_t mult : {0, 1, 2, 4}) {
      const std::int64_t off = mult * static_cast<std::int64_t>(s);
      for (const std::int64_t d : {-1, 0, 1}) {
        for (const std::int64_t sign : {-1, 1}) {
          const std::int64_t x = center + sign * (off + d);
          if (x >= std::numeric_limits<std::int32_t>::min() &&
              x <= std::numeric_limits<std::int32_t>::max())
            xs.push_back(static_cast<std::int32_t>(x));
        }
      }
    }
    for (int i = 0; i < 37; ++i)  // odd count exercises the scalar tail
      xs.push_back(static_cast<std::int32_t>(
          rng.uniform_int(std::numeric_limits<std::int32_t>::min(),
                          std::numeric_limits<std::int32_t>::max())));

    std::vector<std::uint16_t> got(xs.size());
    kernels::linearized_eval_batch(center, s, xs.data(), xs.size(), got.data());
    for (std::size_t i = 0; i < xs.size(); ++i)
      EXPECT_EQ(got[i], kernels::linearized_grade(center, s, xs[i]))
          << "s=" << s << " x=" << xs[i] << " center=" << center;
  }
}

#if HBRP_KERNELS_X86
TEST(FuzzifyInt, LinearizedAvx2BitIdenticalToScalar) {
  if (!kernels::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(99);
  for (int rep = 0; rep < 50; ++rep) {
    const std::int32_t center = static_cast<std::int32_t>(
        rng.uniform_int(std::numeric_limits<std::int32_t>::min(),
                        std::numeric_limits<std::int32_t>::max()));
    const std::uint32_t s = static_cast<std::uint32_t>(
        rng.uniform_int(1, std::numeric_limits<std::uint32_t>::max()));
    std::vector<std::int32_t> xs(129);
    for (std::int32_t& x : xs)
      x = static_cast<std::int32_t>(
          rng.uniform_int(std::numeric_limits<std::int32_t>::min(),
                          std::numeric_limits<std::int32_t>::max()));
    std::vector<std::uint16_t> scalar(xs.size()), avx2(xs.size());
    kernels::linearized_eval_batch_scalar(center, s, xs.data(), xs.size(),
                                          scalar.data());
    kernels::linearized_eval_batch_avx2(center, s, xs.data(), xs.size(),
                                        avx2.data());
    EXPECT_EQ(scalar, avx2) << "center=" << center << " s=" << s;
  }
}

TEST(FuzzifyFloat, Avx2BitIdenticalToScalar) {
  if (!kernels::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(123);
  const std::size_t k = 16;
  const std::size_t count = 37;  // non-multiple of 4: exercises the tail
  std::vector<double> u(count * k), centers(3 * k), nhiv(3 * k);
  for (double& x : u) x = rng.uniform(-500.0, 500.0);
  for (double& c : centers) c = rng.uniform(-500.0, 500.0);
  for (double& h : nhiv) {
    const double sigma = rng.uniform(0.5, 50.0);
    h = -0.5 / (sigma * sigma);
  }
  std::vector<double> scalar(count * 3), avx2(count * 3);
  kernels::log_fuzzy_batch_scalar(u.data(), count, k, centers.data(),
                                  nhiv.data(), scalar.data());
  kernels::log_fuzzy_batch_avx2(u.data(), count, k, centers.data(),
                                nhiv.data(), avx2.data());
  for (std::size_t i = 0; i < scalar.size(); ++i)
    EXPECT_EQ(scalar[i], avx2[i]) << "i=" << i;
}
#endif  // HBRP_KERNELS_X86

TEST(FuzzifyInt, TriangularBatchMatchesScalar) {
  Rng rng(5);
  for (const std::uint32_t half_base : {1u, 2u, 100u, 65536u}) {
    const std::int32_t center =
        static_cast<std::int32_t>(rng.uniform_int(-5000, 5000));
    std::vector<std::int32_t> xs(41);
    for (std::int32_t& x : xs)
      x = static_cast<std::int32_t>(rng.uniform_int(-200000, 200000));
    std::vector<std::uint16_t> got(xs.size());
    kernels::triangular_eval_batch(center, half_base, xs.data(), xs.size(),
                                   got.data());
    for (std::size_t i = 0; i < xs.size(); ++i)
      EXPECT_EQ(got[i], kernels::triangular_grade(center, half_base, xs[i]));
  }
}

// --- batch classifier paths vs. per-beat references ------------------------

hbrp::nfc::NeuroFuzzyClassifier random_nfc(std::size_t k, Rng& rng) {
  hbrp::nfc::NeuroFuzzyClassifier nfc(k);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t l = 0; l < hbrp::ecg::kNumClasses; ++l) {
      nfc.mf(j, l).center = rng.uniform(-200.0, 200.0);
      nfc.mf(j, l).sigma = rng.uniform(1.0, 80.0);
    }
  return nfc;
}

TEST(ClassifierBatch, FloatBatchMatchesPerBeatClassify) {
  Rng rng(314);
  const std::size_t k = 12, count = 301;
  const auto nfc = random_nfc(k, rng);
  std::vector<double> u(count * k);
  for (double& x : u) x = rng.uniform(-300.0, 300.0);
  std::vector<hbrp::ecg::BeatClass> batch(count);
  nfc.classify_batch(u, count, 0.1, batch);
  for (std::size_t i = 0; i < count; ++i)
    EXPECT_EQ(batch[i],
              nfc.classify(std::span<const double>(u).subspan(i * k, k), 0.1))
        << "beat " << i;
}

TEST(ClassifierBatch, IntBatchMatchesPerBeatClassify) {
  Rng rng(2718);
  const std::size_t k = 12, count = 300;
  const auto nfc = random_nfc(k, rng);
  for (const auto shape : {hbrp::embedded::MfShape::Linearized,
                           hbrp::embedded::MfShape::Triangular}) {
    const auto ic = hbrp::embedded::IntClassifier::from_float(nfc, shape);
    std::vector<std::int32_t> u(count * k);
    for (std::int32_t& x : u)
      x = static_cast<std::int32_t>(rng.uniform_int(-400, 400));
    std::vector<hbrp::ecg::BeatClass> batch(count);
    hbrp::embedded::FuzzifyScratch scratch;
    ic.classify_batch(u, count, 6554, batch, scratch);
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(batch[i],
                ic.classify(std::span<const std::int32_t>(u).subspan(i * k, k),
                            6554))
          << "beat " << i;
  }
}

TEST(ClassifierBatch, IntSmallBatchFallbackMatches) {
  Rng rng(161803);
  const std::size_t k = 8, count = 5;  // below the tiled-path threshold
  const auto ic = hbrp::embedded::IntClassifier::from_float(random_nfc(k, rng));
  std::vector<std::int32_t> u(count * k);
  for (std::int32_t& x : u)
    x = static_cast<std::int32_t>(rng.uniform_int(-400, 400));
  std::vector<hbrp::ecg::BeatClass> batch(count);
  ic.classify_batch(u, count, 0, batch);
  for (std::size_t i = 0; i < count; ++i)
    EXPECT_EQ(batch[i],
              ic.classify(std::span<const std::int32_t>(u).subspan(i * k, k), 0));
}

// --- dispatch plumbing -----------------------------------------------------

TEST(CpuDispatch, ResolveLevelHonoursForceScalar) {
  using kernels::resolve_level;
  using kernels::SimdLevel;
  EXPECT_EQ(resolve_level(nullptr, true), SimdLevel::Avx2);
  EXPECT_EQ(resolve_level(nullptr, false), SimdLevel::Scalar);
  EXPECT_EQ(resolve_level("1", true), SimdLevel::Scalar);
  EXPECT_EQ(resolve_level("true", true), SimdLevel::Scalar);
  EXPECT_EQ(resolve_level("yes", true), SimdLevel::Scalar);
  EXPECT_EQ(resolve_level("on", true), SimdLevel::Scalar);
  EXPECT_EQ(resolve_level("0", true), SimdLevel::Avx2);
  EXPECT_EQ(resolve_level("", true), SimdLevel::Avx2);
}

TEST(CpuDispatch, ToStringCoversLevels) {
  EXPECT_STREQ(kernels::to_string(kernels::SimdLevel::Scalar), "scalar");
  EXPECT_STREQ(kernels::to_string(kernels::SimdLevel::Avx2), "avx2");
  EXPECT_FALSE(kernels::cpu_model_name().empty());
}

TEST(SparseTernary, RejectsOversizedColumns) {
  EXPECT_THROW(kernels::SparseTernary::build(
                   1, 70000, [](std::size_t, std::size_t) { return 0; }),
               hbrp::Error);
}

}  // namespace
