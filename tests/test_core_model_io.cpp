// Tests for trained-model serialization.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <vector>

#include "core/model_io.hpp"
#include "math/check.hpp"
#include "math/crc32.hpp"
#include "math/rng.hpp"

namespace {

namespace fs = std::filesystem;
using hbrp::core::load_model;
using hbrp::core::load_or_train;
using hbrp::core::save_model;
using hbrp::core::TrainedClassifier;

TrainedClassifier make_model(std::uint64_t seed) {
  hbrp::math::Rng rng(seed);
  auto p = hbrp::rp::make_achlioptas(8, 50, rng);
  hbrp::nfc::NeuroFuzzyClassifier nfc(8);
  for (std::size_t k = 0; k < 8; ++k)
    for (std::size_t l = 0; l < 3; ++l)
      nfc.mf(k, l) = {rng.normal(0, 200), rng.uniform(5.0, 150.0)};
  return TrainedClassifier{hbrp::rp::BeatProjector(std::move(p), 4),
                           std::move(nfc), rng.uniform(0.0, 0.5)};
}

fs::path temp_path(const char* tag) {
  return fs::temp_directory_path() /
         (std::string("hbrp_model_") + tag + "_" + std::to_string(::getpid()) +
          ".bin");
}

TEST(ModelIo, RoundTripPreservesEverything) {
  const auto path = temp_path("rt");
  const TrainedClassifier model = make_model(1);
  save_model(model, path);
  const TrainedClassifier back = load_model(path);

  EXPECT_EQ(back.projector.matrix(), model.projector.matrix());
  EXPECT_EQ(back.projector.downsample_factor(),
            model.projector.downsample_factor());
  EXPECT_DOUBLE_EQ(back.alpha_train, model.alpha_train);
  for (std::size_t k = 0; k < 8; ++k)
    for (std::size_t l = 0; l < 3; ++l) {
      EXPECT_DOUBLE_EQ(back.nfc.mf(k, l).center, model.nfc.mf(k, l).center);
      EXPECT_DOUBLE_EQ(back.nfc.mf(k, l).sigma, model.nfc.mf(k, l).sigma);
    }
  fs::remove(path);
}

TEST(ModelIo, ReloadedModelClassifiesIdentically) {
  const auto path = temp_path("cls");
  const TrainedClassifier model = make_model(2);
  save_model(model, path);
  const TrainedClassifier back = load_model(path);

  hbrp::math::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    hbrp::dsp::Signal window(200);
    for (auto& x : window) x = static_cast<int>(rng.uniform_int(-800, 800));
    const auto u1 = model.projector.project(window);
    const auto u2 = back.projector.project(window);
    EXPECT_EQ(model.nfc.classify(u1, model.alpha_train),
              back.nfc.classify(u2, back.alpha_train));
  }
  // The quantized bundles agree too.
  const auto b1 = model.quantize();
  const auto b2 = back.quantize();
  hbrp::dsp::Signal window(200);
  for (auto& x : window) x = static_cast<int>(rng.uniform_int(-800, 800));
  EXPECT_EQ(b1.classify_window(window), b2.classify_window(window));
  fs::remove(path);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW(load_model("/nonexistent/model.bin"), hbrp::Error);
}

TEST(ModelIo, CorruptMagicRejected) {
  const auto path = temp_path("bad");
  {
    std::ofstream out(path, std::ios::binary);
    out << "GARBAGEGARBAGE";
  }
  EXPECT_THROW(load_model(path), hbrp::Error);
  fs::remove(path);
}

TEST(ModelIo, TruncatedFileRejected) {
  const auto path = temp_path("trunc");
  const TrainedClassifier model = make_model(4);
  save_model(model, path);
  const auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
  EXPECT_THROW(load_model(path), hbrp::Error);
  fs::remove(path);
}

// --- corruption robustness (fuzz-style sweeps, cf. test_mitdb_fuzz) ------

std::vector<char> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void spit(const fs::path& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool models_equal(const TrainedClassifier& a, const TrainedClassifier& b) {
  if (a.projector.matrix() != b.projector.matrix()) return false;
  if (a.projector.downsample_factor() != b.projector.downsample_factor())
    return false;
  if (a.alpha_train != b.alpha_train) return false;
  for (std::size_t k = 0; k < a.nfc.coefficients(); ++k)
    for (std::size_t l = 0; l < 3; ++l)
      if (a.nfc.mf(k, l).center != b.nfc.mf(k, l).center ||
          a.nfc.mf(k, l).sigma != b.nfc.mf(k, l).sigma)
        return false;
  return true;
}

TEST(ModelIo, SingleByteCorruptionSweepNeverMisloads) {
  // Acceptance criterion: a model file with any single corrupted byte
  // either loads identically (unused padding) or throws hbrp::Error —
  // never crashes, never silently yields a different model.
  const auto path = temp_path("sweep");
  const TrainedClassifier model = make_model(6);
  save_model(model, path);
  const std::vector<char> original = slurp(path);
  ASSERT_FALSE(original.empty());

  std::size_t rejected = 0, identical = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    std::vector<char> corrupt = original;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
    spit(path, corrupt);
    try {
      const TrainedClassifier back = load_model(path);
      EXPECT_TRUE(models_equal(back, model))
          << "silent misload with byte " << i << " corrupted";
      ++identical;
    } catch (const hbrp::Error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(rejected + identical, original.size());
  // The v2 format has no unchecked padding: everything is covered by the
  // magic, the size fields or the payload CRC.
  EXPECT_EQ(rejected, original.size());
  fs::remove(path);
}

TEST(ModelIo, TruncationSweepRejected) {
  const auto path = temp_path("truncsweep");
  const TrainedClassifier model = make_model(7);
  save_model(model, path);
  const auto size = fs::file_size(path);
  for (const std::uintmax_t keep :
       {std::uintmax_t{0}, std::uintmax_t{1}, std::uintmax_t{7},
        std::uintmax_t{8}, std::uintmax_t{12}, std::uintmax_t{15},
        std::uintmax_t{16}, size / 4, size / 2, size - 1}) {
    const TrainedClassifier fresh = make_model(7);
    save_model(fresh, path);
    fs::resize_file(path, keep);
    EXPECT_THROW(load_model(path), hbrp::Error) << "kept " << keep << " bytes";
  }
  fs::remove(path);
}

TEST(ModelIo, InflatedLengthFieldsRejectedBeforeAllocation) {
  const auto path = temp_path("inflate");
  const TrainedClassifier model = make_model(8);
  save_model(model, path);
  std::vector<char> bytes = slurp(path);

  // Payload-size field (offset 8): huge declared size must be rejected by
  // the file-size cross-check, long before any allocation.
  auto patch_u32 = [](std::vector<char>& buf, std::size_t at,
                      std::uint32_t v) {
    std::memcpy(buf.data() + at, &v, sizeof(v));
  };
  std::vector<char> corrupt = bytes;
  patch_u32(corrupt, 8, 0x7FFFFFFFu);
  spit(path, corrupt);
  EXPECT_THROW(load_model(path), hbrp::Error);

  // Rows field (payload offset 0 => file offset 16), with the CRC redone
  // so only the bounds / consistency checks stand between the attacker
  // and a multi-gigabyte allocation.
  corrupt = bytes;
  patch_u32(corrupt, 16, 0x00FFFFFFu);
  const std::uint32_t crc = hbrp::math::crc32(corrupt.data() + 16,
                                              corrupt.size() - 16);
  patch_u32(corrupt, 12, crc);
  spit(path, corrupt);
  EXPECT_THROW(load_model(path), hbrp::Error);

  // Same for cols (file offset 20).
  corrupt = bytes;
  patch_u32(corrupt, 20, 0x00FFFFFFu);
  patch_u32(corrupt, 12,
            hbrp::math::crc32(corrupt.data() + 16, corrupt.size() - 16));
  spit(path, corrupt);
  EXPECT_THROW(load_model(path), hbrp::Error);

  fs::remove(path);
}

TEST(ModelIo, SaveIsAtomicAndLeavesNoTempFile) {
  const auto path = temp_path("atomic");
  const TrainedClassifier model = make_model(9);
  save_model(model, path);
  // No temp sibling left behind, and overwriting an existing (even
  // corrupt) file works.
  fs::path tmp = path;
  tmp += ".tmp";
  EXPECT_FALSE(fs::exists(tmp));
  spit(path, std::vector<char>{'j', 'u', 'n', 'k'});
  save_model(model, path);
  EXPECT_FALSE(fs::exists(tmp));
  EXPECT_TRUE(models_equal(load_model(path), model));
  fs::remove(path);
}

TEST(ModelIo, LoadOrTrainFallsBackOnCorruptCache) {
  // A corrupt cache file is a cache miss, not a fatal error: the node
  // retrains and repairs the cache in place.
  const auto path = temp_path("fallback");
  const TrainedClassifier model = make_model(10);
  save_model(model, path);
  auto bytes = slurp(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  spit(path, bytes);

  int train_calls = 0;
  auto trainer = [&train_calls]() {
    ++train_calls;
    return make_model(11);
  };
  const auto repaired = load_or_train(path, trainer);
  EXPECT_EQ(train_calls, 1);  // corrupt file fell through to training
  EXPECT_TRUE(models_equal(repaired, make_model(11)));
  // The cache is healthy again: a second call serves from disk.
  const auto cached = load_or_train(path, trainer);
  EXPECT_EQ(train_calls, 1);
  EXPECT_TRUE(models_equal(cached, repaired));
  fs::remove(path);
}

TEST(ModelIo, LoadOrTrainCachesResult) {
  const auto path = temp_path("cache");
  fs::remove(path);
  int train_calls = 0;
  auto trainer = [&train_calls]() {
    ++train_calls;
    return make_model(5);
  };
  const auto first = load_or_train(path, trainer);
  EXPECT_EQ(train_calls, 1);
  const auto second = load_or_train(path, trainer);
  EXPECT_EQ(train_calls, 1);  // served from disk
  EXPECT_EQ(second.projector.matrix(), first.projector.matrix());
  fs::remove(path);
}

}  // namespace
