// Tests for trained-model serialization.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "core/model_io.hpp"
#include "math/check.hpp"
#include "math/rng.hpp"

namespace {

namespace fs = std::filesystem;
using hbrp::core::load_model;
using hbrp::core::load_or_train;
using hbrp::core::save_model;
using hbrp::core::TrainedClassifier;

TrainedClassifier make_model(std::uint64_t seed) {
  hbrp::math::Rng rng(seed);
  auto p = hbrp::rp::make_achlioptas(8, 50, rng);
  hbrp::nfc::NeuroFuzzyClassifier nfc(8);
  for (std::size_t k = 0; k < 8; ++k)
    for (std::size_t l = 0; l < 3; ++l)
      nfc.mf(k, l) = {rng.normal(0, 200), rng.uniform(5.0, 150.0)};
  return TrainedClassifier{hbrp::rp::BeatProjector(std::move(p), 4),
                           std::move(nfc), rng.uniform(0.0, 0.5)};
}

fs::path temp_path(const char* tag) {
  return fs::temp_directory_path() /
         (std::string("hbrp_model_") + tag + "_" + std::to_string(::getpid()) +
          ".bin");
}

TEST(ModelIo, RoundTripPreservesEverything) {
  const auto path = temp_path("rt");
  const TrainedClassifier model = make_model(1);
  save_model(model, path);
  const TrainedClassifier back = load_model(path);

  EXPECT_EQ(back.projector.matrix(), model.projector.matrix());
  EXPECT_EQ(back.projector.downsample_factor(),
            model.projector.downsample_factor());
  EXPECT_DOUBLE_EQ(back.alpha_train, model.alpha_train);
  for (std::size_t k = 0; k < 8; ++k)
    for (std::size_t l = 0; l < 3; ++l) {
      EXPECT_DOUBLE_EQ(back.nfc.mf(k, l).center, model.nfc.mf(k, l).center);
      EXPECT_DOUBLE_EQ(back.nfc.mf(k, l).sigma, model.nfc.mf(k, l).sigma);
    }
  fs::remove(path);
}

TEST(ModelIo, ReloadedModelClassifiesIdentically) {
  const auto path = temp_path("cls");
  const TrainedClassifier model = make_model(2);
  save_model(model, path);
  const TrainedClassifier back = load_model(path);

  hbrp::math::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    hbrp::dsp::Signal window(200);
    for (auto& x : window) x = static_cast<int>(rng.uniform_int(-800, 800));
    const auto u1 = model.projector.project(window);
    const auto u2 = back.projector.project(window);
    EXPECT_EQ(model.nfc.classify(u1, model.alpha_train),
              back.nfc.classify(u2, back.alpha_train));
  }
  // The quantized bundles agree too.
  const auto b1 = model.quantize();
  const auto b2 = back.quantize();
  hbrp::dsp::Signal window(200);
  for (auto& x : window) x = static_cast<int>(rng.uniform_int(-800, 800));
  EXPECT_EQ(b1.classify_window(window), b2.classify_window(window));
  fs::remove(path);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW(load_model("/nonexistent/model.bin"), hbrp::Error);
}

TEST(ModelIo, CorruptMagicRejected) {
  const auto path = temp_path("bad");
  {
    std::ofstream out(path, std::ios::binary);
    out << "GARBAGEGARBAGE";
  }
  EXPECT_THROW(load_model(path), hbrp::Error);
  fs::remove(path);
}

TEST(ModelIo, TruncatedFileRejected) {
  const auto path = temp_path("trunc");
  const TrainedClassifier model = make_model(4);
  save_model(model, path);
  const auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
  EXPECT_THROW(load_model(path), hbrp::Error);
  fs::remove(path);
}

TEST(ModelIo, LoadOrTrainCachesResult) {
  const auto path = temp_path("cache");
  fs::remove(path);
  int train_calls = 0;
  auto trainer = [&train_calls]() {
    ++train_calls;
    return make_model(5);
  };
  const auto first = load_or_train(path, trainer);
  EXPECT_EQ(train_calls, 1);
  const auto second = load_or_train(path, trainer);
  EXPECT_EQ(train_calls, 1);  // served from disk
  EXPECT_EQ(second.projector.matrix(), first.projector.matrix());
  fs::remove(path);
}

}  // namespace
