// Tests for net/wire.hpp — framing, typed codecs, and the incremental
// FrameParser (fragmentation tolerance, strict corruption handling).
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "math/endian.hpp"
#include "math/rng.hpp"

namespace {

using namespace hbrp;
using net::FrameParser;
using net::FrameType;
using net::FrameView;

std::vector<unsigned char> hello_frame(std::uint32_t node = 7) {
  net::HelloMsg m;
  m.node_id = node;
  m.policy = net::TxPolicy::Selective;
  m.window = 200;
  m.fs_hz = 360;
  std::vector<unsigned char> out;
  net::append_frame(out, FrameType::Hello, 0, net::encode_hello(m));
  return out;
}

TEST(WireCodec, HelloRoundtrip) {
  net::HelloMsg m;
  m.node_id = 0xA1B2C3D4u;
  m.policy = net::TxPolicy::Selective;
  m.window = 200;
  m.fs_hz = 360;
  const auto got = net::decode_hello(net::encode_hello(m));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->node_id, m.node_id);
  EXPECT_EQ(got->policy, m.policy);
  EXPECT_EQ(got->window, m.window);
  EXPECT_EQ(got->fs_hz, m.fs_hz);
}

TEST(WireCodec, HelloAckAndVerdictRoundtrip) {
  net::HelloAckMsg a;
  a.session = 0x1122334455667788ull;
  a.status = net::HelloStatus::FleetFull;
  const auto ga = net::decode_hello_ack(net::encode_hello_ack(a));
  ASSERT_TRUE(ga.has_value());
  EXPECT_EQ(ga->session, a.session);
  EXPECT_EQ(ga->status, a.status);

  net::BeatVerdictMsg v;
  v.r_peak = 123456789ull;
  v.beat_class = 2;
  v.quality = 1;
  const auto gv = net::decode_beat_verdict(net::encode_beat_verdict(v));
  ASSERT_TRUE(gv.has_value());
  EXPECT_EQ(gv->r_peak, v.r_peak);
  EXPECT_EQ(gv->beat_class, v.beat_class);
  EXPECT_EQ(gv->quality, v.quality);

  const auto gk =
      net::decode_ack(net::encode_ack(net::AckMsg{FrameType::FullBeat}));
  ASSERT_TRUE(gk.has_value());
  EXPECT_EQ(gk->acked, FrameType::FullBeat);
}

TEST(WireCodec, SampleChunkRoundtripPreservesSignedCodes) {
  const std::vector<dsp::Sample> in = {0, 1, -1, 2047, -2048, 1024};
  const auto payload = net::encode_sample_chunk(in);
  std::vector<dsp::Sample> out;
  ASSERT_TRUE(net::decode_sample_chunk(payload, out));
  EXPECT_EQ(out, in);
}

TEST(WireCodec, FullBeatRoundtripAndZeroSampleEscalation) {
  net::FullBeatMsg m;
  m.r_peak = 9999;
  m.beat_class = 1;
  m.quality = 0;
  std::vector<dsp::Sample> window(200);
  for (std::size_t i = 0; i < window.size(); ++i)
    window[i] = static_cast<dsp::Sample>(i) - 100;
  const auto payload = net::encode_full_beat(m, window);

  net::FullBeatMsg got;
  std::vector<dsp::Sample> got_window;
  ASSERT_TRUE(net::decode_full_beat(payload, got, got_window));
  EXPECT_EQ(got.r_peak, m.r_peak);
  EXPECT_EQ(got.count, 200);
  EXPECT_EQ(got_window, window);

  // Suspect-signal escalation: metadata only, no window.
  const auto meta = net::encode_full_beat(m, {});
  ASSERT_TRUE(net::decode_full_beat(meta, got, got_window));
  EXPECT_EQ(got.count, 0);
  EXPECT_TRUE(got_window.empty());
}

TEST(WireCodec, DecodersRejectWrongSizes) {
  const auto hello = net::encode_hello(net::HelloMsg{});
  auto shorter = hello;
  shorter.pop_back();
  EXPECT_FALSE(net::decode_hello(shorter).has_value());
  auto longer = hello;
  longer.push_back(0);
  EXPECT_FALSE(net::decode_hello(longer).has_value());

  // SampleChunk payloads must be a whole number of int32 codes.
  std::vector<unsigned char> ragged(7, 0);
  std::vector<dsp::Sample> out;
  EXPECT_FALSE(net::decode_sample_chunk(ragged, out));
  EXPECT_FALSE(net::decode_sample_chunk({}, out));  // empty chunk is invalid

  // FullBeat whose declared count disagrees with the payload size.
  net::FullBeatMsg m;
  std::vector<dsp::Sample> window(4, 0);
  auto fb = net::encode_full_beat(m, window);
  fb.pop_back();
  net::FullBeatMsg got;
  EXPECT_FALSE(net::decode_full_beat(fb, got, out));
}

TEST(WireFrame, ParserRoundtripsFramesOfEveryType) {
  std::vector<unsigned char> bytes = hello_frame();
  const std::vector<dsp::Sample> codes = {10, 20, 30};
  net::append_frame(bytes, FrameType::SampleChunk, 0,
                    net::encode_sample_chunk(codes));
  net::append_frame(bytes, FrameType::Heartbeat, 5, {});
  net::append_frame(bytes, FrameType::Bye, 0, {});

  FrameParser p;
  ASSERT_TRUE(p.feed(bytes));
  FrameView f;
  ASSERT_EQ(p.next(f), FrameParser::Status::Ok);
  EXPECT_EQ(f.type, FrameType::Hello);
  ASSERT_EQ(p.next(f), FrameParser::Status::Ok);
  EXPECT_EQ(f.type, FrameType::SampleChunk);
  std::vector<dsp::Sample> out;
  ASSERT_TRUE(net::decode_sample_chunk(f.payload, out));
  EXPECT_EQ(out, codes);
  ASSERT_EQ(p.next(f), FrameParser::Status::Ok);
  EXPECT_EQ(f.type, FrameType::Heartbeat);
  EXPECT_EQ(f.seq, 5u);
  EXPECT_TRUE(f.payload.empty());
  ASSERT_EQ(p.next(f), FrameParser::Status::Ok);
  EXPECT_EQ(f.type, FrameType::Bye);
  EXPECT_EQ(p.next(f), FrameParser::Status::NeedMore);
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(WireFrame, ParserHandlesByteAtATimeDelivery) {
  std::vector<unsigned char> bytes = hello_frame();
  net::append_frame(bytes, FrameType::Heartbeat, 1, {});

  FrameParser p;
  FrameView f;
  std::size_t frames = 0;
  for (const unsigned char b : bytes) {
    ASSERT_TRUE(p.feed(std::span<const unsigned char>(&b, 1)));
    while (p.next(f) == FrameParser::Status::Ok) ++frames;
    ASSERT_FALSE(p.corrupt());
  }
  EXPECT_EQ(frames, 2u);
}

TEST(WireFrame, EveryFlippedBitIsCaughtAndSticky) {
  // A flip in a length byte can make the parser wait for a longer payload
  // instead of failing immediately (the bytes that follow get swallowed as
  // that phantom payload), so the invariant under test is: a corrupted
  // frame is NEVER accepted — no frame is produced, and once enough bytes
  // arrive the stream goes Corrupt and stays there.
  const std::vector<unsigned char> clean = hello_frame();
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    auto bytes = clean;
    bytes[byte] ^= 0x01;
    FrameParser p;
    ASSERT_TRUE(p.feed(bytes));
    FrameView f;
    std::size_t produced = 0;
    // Chase with pristine frames: more than any in-bounds phantom length
    // the single-bit flip could have demanded (11 + 2^16 would exceed the
    // payload bound and fail immediately).
    for (int i = 0; i < 40 && !p.corrupt(); ++i) {
      while (p.next(f) == FrameParser::Status::Ok) ++produced;
      if (p.corrupt()) break;
      auto more = hello_frame();
      if (!p.feed(more)) break;
    }
    while (p.next(f) == FrameParser::Status::Ok) ++produced;
    EXPECT_EQ(produced, 0u) << "flip in byte " << byte
                            << " let a corrupted frame through";
    EXPECT_TRUE(p.corrupt()) << "flip in byte " << byte;
    EXPECT_FALSE(p.error().empty());
    // Sticky: a pristine frame does not resurrect the stream.
    auto fresh = hello_frame();
    EXPECT_FALSE(p.feed(fresh));
    EXPECT_EQ(p.next(f), FrameParser::Status::Corrupt);
  }
}

TEST(WireFrame, TruncatedFrameStaysNeedMoreUntilCompleted) {
  const std::vector<unsigned char> bytes = hello_frame();
  FrameParser p;
  ASSERT_TRUE(p.feed(std::span<const unsigned char>(bytes.data(),
                                                    bytes.size() - 1)));
  FrameView f;
  EXPECT_EQ(p.next(f), FrameParser::Status::NeedMore);
  ASSERT_TRUE(p.feed(std::span<const unsigned char>(
      bytes.data() + bytes.size() - 1, 1)));
  EXPECT_EQ(p.next(f), FrameParser::Status::Ok);
  EXPECT_EQ(f.type, FrameType::Hello);
}

TEST(WireFrame, HostileLengthFieldIsRejectedBeforeBuffering) {
  auto bytes = hello_frame();
  // Rewrite payload_len to a huge value; CRC no longer matters because the
  // length bound fires first — the parser must not wait for 4 GiB.
  hbrp::math::store_le<std::uint32_t>(bytes.data() + 4, 0xFFFFFFFFu);
  FrameParser p;
  ASSERT_TRUE(p.feed(bytes));
  FrameView f;
  EXPECT_EQ(p.next(f), FrameParser::Status::Corrupt);
}

TEST(WireFrame, UnknownTypeAndBadVersionAreCorrupt) {
  {
    auto bytes = hello_frame();
    bytes[3] = 0xEE;  // frame type
    // Type is CRC-protected, so this also breaks the CRC — but a parser
    // must reject it even with a fixed-up CRC. Rebuild the frame honestly:
    FrameParser p;
    ASSERT_TRUE(p.feed(bytes));
    FrameView f;
    EXPECT_EQ(p.next(f), FrameParser::Status::Corrupt);
  }
  {
    auto bytes = hello_frame();
    bytes[2] = net::kProtocolVersion + 1;
    FrameParser p;
    ASSERT_TRUE(p.feed(bytes));
    FrameView f;
    EXPECT_EQ(p.next(f), FrameParser::Status::Corrupt);
  }
}

TEST(WireFrame, BacklogBoundStopsANeverCompletingPeer) {
  // A peer that streams plausible garbage without ever completing a frame
  // must hit the parser's backlog bound, not grow memory forever.
  FrameParser p;
  std::vector<unsigned char> junk(4096, 0xEC);
  bool ok = true;
  for (int i = 0; ok && i < 1024; ++i) ok = p.feed(junk);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(p.corrupt());
}

// --- seeded fuzz: the parser under adversarial byte streams --------------
// Invariants, regardless of input: next() never crashes, the buffered
// backlog never exceeds one max frame plus the feed slop, and once
// Corrupt the parser stays Corrupt (no resync on a byte stream).

/// Drains the parser, checking invariants; returns frames produced.
std::size_t drain_all(FrameParser& p) {
  std::size_t frames = 0;
  for (;;) {
    FrameView f;
    const auto st = p.next(f);
    if (st == FrameParser::Status::Ok) {
      ++frames;
      EXPECT_LE(f.payload.size(), net::kMaxPayloadBytes);
      continue;
    }
    if (st == FrameParser::Status::Corrupt) {
      EXPECT_TRUE(p.corrupt());
      FrameView again;
      EXPECT_EQ(p.next(again), FrameParser::Status::Corrupt) << "sticky";
    }
    return frames;
  }
}

TEST(WireFuzz, RandomTruncationAndConcatenationNeverCrashes) {
  math::Rng rng(20260808);
  for (int round = 0; round < 200; ++round) {
    // A legitimate multi-frame stream, truncated at a random byte and
    // re-fed in random fragment sizes.
    std::vector<unsigned char> stream;
    const auto frames = 1 + rng.uniform_index(4);
    for (std::uint64_t i = 0; i < frames; ++i) {
      const auto f = hello_frame(static_cast<std::uint32_t>(i));
      stream.insert(stream.end(), f.begin(), f.end());
    }
    const std::size_t cut = rng.uniform_index(stream.size() + 1);
    stream.resize(cut);

    FrameParser p;
    std::size_t off = 0, produced = 0;
    while (off < stream.size() && !p.corrupt()) {
      const std::size_t n = std::min<std::size_t>(
          1 + rng.uniform_index(64), stream.size() - off);
      ASSERT_TRUE(p.feed(std::span<const unsigned char>(stream)
                             .subspan(off, n)));
      off += n;
      produced += drain_all(p);
    }
    // A truncated tail is NeedMore, never Corrupt: every complete frame
    // before the cut must have been delivered.
    EXPECT_FALSE(p.corrupt());
    EXPECT_EQ(produced, cut / hello_frame().size());
    EXPECT_LE(p.buffered(), hello_frame().size());
  }
}

TEST(WireFuzz, RandomHeaderCorruptionIsCaughtOrHarmless) {
  math::Rng rng(97);
  const auto clean = hello_frame();
  for (int round = 0; round < 500; ++round) {
    auto bytes = clean;
    // Corrupt 1-4 random bits anywhere in the frame.
    const auto flips = 1 + rng.uniform_index(4);
    for (std::uint64_t i = 0; i < flips; ++i) {
      const std::size_t at = rng.uniform_index(bytes.size());
      bytes[at] = static_cast<unsigned char>(
          bytes[at] ^ (1u << rng.uniform_index(8)));
    }
    FrameParser p;
    FrameView f;
    if (!p.feed(bytes)) {
      EXPECT_TRUE(p.corrupt());  // hostile length rejected at feed time
      continue;
    }
    const auto st = p.next(f);
    if (st == FrameParser::Status::Ok) {
      // Only possible if the flips cancelled out to a valid CRC — with a
      // real CRC-32 that means the frame decoded identically.
      EXPECT_EQ(f.type, FrameType::Hello);
    } else if (st == FrameParser::Status::Corrupt) {
      FrameView again;
      EXPECT_EQ(p.next(again), FrameParser::Status::Corrupt) << "sticky";
      EXPECT_FALSE(p.error().empty());
    }
    // NeedMore is fine too (a length flip that still passes the bound
    // makes the parser wait for bytes that never come) — but it must not
    // have over-buffered while waiting.
    EXPECT_LE(p.buffered(), net::kHeaderBytes + net::kMaxPayloadBytes);
  }
}

TEST(WireFuzz, OversizedLengthFieldsNeverAllocate) {
  math::Rng rng(131);
  const auto clean = hello_frame();
  for (int round = 0; round < 200; ++round) {
    auto bytes = clean;
    // Write a hostile 32-bit length just past the bound, up to UINT32_MAX.
    const auto hostile = static_cast<std::uint32_t>(
        net::kMaxPayloadBytes + 1 +
        rng.uniform_index(0xFFFFFFFFu - net::kMaxPayloadBytes - 1));
    math::store_le<std::uint32_t>(&bytes[4], hostile);
    FrameParser p;
    const bool fed = p.feed(bytes);
    if (fed) {
      FrameView f;
      EXPECT_EQ(p.next(f), FrameParser::Status::Corrupt);
    }
    EXPECT_TRUE(p.corrupt());
    // The bound check fires before buffering grows toward the hostile
    // length: nothing beyond the bytes actually fed is ever retained.
    EXPECT_LE(p.buffered(), bytes.size());
  }
}

TEST(WireFuzz, PureGarbageStreamsStayBounded) {
  math::Rng rng(777);
  for (int round = 0; round < 100; ++round) {
    FrameParser p;
    bool alive = true;
    for (int chunk = 0; alive && chunk < 64; ++chunk) {
      std::vector<unsigned char> junk(1 + rng.uniform_index(512));
      for (auto& b : junk)
        b = static_cast<unsigned char>(rng.uniform_index(256));
      alive = p.feed(junk);
      (void)drain_all(p);
      EXPECT_LE(p.buffered(),
                2 * (net::kHeaderBytes + net::kMaxPayloadBytes));
    }
  }
}

}  // namespace
