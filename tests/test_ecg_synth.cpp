// Tests for the synthetic ECG generator: structure, rhythm, morphology and
// determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ecg/morphology.hpp"
#include "ecg/synth.hpp"

namespace {

using hbrp::ecg::BeatClass;
using hbrp::ecg::generate_record;
using hbrp::ecg::RecordProfile;
using hbrp::ecg::SynthConfig;

SynthConfig quick_cfg(RecordProfile profile, std::uint64_t seed,
                      double duration = 60.0) {
  SynthConfig cfg;
  cfg.profile = profile;
  cfg.duration_s = duration;
  cfg.seed = seed;
  return cfg;
}

TEST(Synth, RecordStructure) {
  const auto rec = generate_record(quick_cfg(RecordProfile::NormalSinus, 1));
  EXPECT_EQ(rec.fs_hz, 360);
  ASSERT_EQ(rec.leads.size(), 3u);
  const std::size_t n = 60 * 360;
  for (const auto& lead : rec.leads) EXPECT_EQ(lead.size(), n);
  EXPECT_FALSE(rec.beats.empty());
  EXPECT_NEAR(rec.duration_s(), 60.0, 0.01);
}

TEST(Synth, DeterministicInSeed) {
  const auto a = generate_record(quick_cfg(RecordProfile::PvcBigeminy, 42));
  const auto b = generate_record(quick_cfg(RecordProfile::PvcBigeminy, 42));
  EXPECT_EQ(a.leads, b.leads);
  ASSERT_EQ(a.beats.size(), b.beats.size());
  for (std::size_t i = 0; i < a.beats.size(); ++i) {
    EXPECT_EQ(a.beats[i].sample, b.beats[i].sample);
    EXPECT_EQ(a.beats[i].cls, b.beats[i].cls);
  }
}

TEST(Synth, DifferentSeedsDiffer) {
  const auto a = generate_record(quick_cfg(RecordProfile::NormalSinus, 1));
  const auto b = generate_record(quick_cfg(RecordProfile::NormalSinus, 2));
  EXPECT_NE(a.leads[0], b.leads[0]);
}

TEST(Synth, SamplesWithinAdcRange) {
  const auto rec = generate_record(quick_cfg(RecordProfile::PvcBigeminy, 3));
  for (const auto& lead : rec.leads)
    for (auto s : lead) {
      EXPECT_GE(s, 0);
      EXPECT_LE(s, 2047);
    }
}

TEST(Synth, AnnotationsSortedAndInRange) {
  const auto rec = generate_record(quick_cfg(RecordProfile::Lbbb, 4));
  for (std::size_t i = 0; i < rec.beats.size(); ++i) {
    EXPECT_LT(rec.beats[i].sample, rec.duration_samples());
    if (i > 0) EXPECT_GT(rec.beats[i].sample, rec.beats[i - 1].sample);
  }
}

TEST(Synth, HeartRateRespected) {
  auto cfg = quick_cfg(RecordProfile::NormalSinus, 5, 120.0);
  cfg.heart_rate_bpm = 75.0;
  const auto rec = generate_record(cfg);
  const double beats_per_min = static_cast<double>(rec.beats.size()) / 2.0;
  EXPECT_NEAR(beats_per_min, 75.0, 4.0);
}

TEST(Synth, RPeakIsLocalAmplitudeExtremum) {
  auto cfg = quick_cfg(RecordProfile::NormalSinus, 6);
  cfg.noise_scale = 0.0;
  const auto rec = generate_record(cfg);
  const auto& lead = rec.leads[0];
  // On a noise-free record the annotated R sample should be within a few
  // samples of the local maximum.
  for (const auto& b : rec.beats) {
    if (b.sample < 40 || b.sample + 40 >= lead.size()) continue;
    const auto begin = lead.begin() + static_cast<long>(b.sample) - 15;
    const auto end = lead.begin() + static_cast<long>(b.sample) + 15;
    const auto peak = std::max_element(begin, end);
    EXPECT_NEAR(static_cast<double>(peak - lead.begin()),
                static_cast<double>(b.sample), 4.0);
  }
}

struct MixCase {
  RecordProfile profile;
  const char* name;
};

class SynthMix : public ::testing::TestWithParam<MixCase> {};

TEST_P(SynthMix, ClassMixMatchesProfile) {
  const auto rec =
      generate_record(quick_cfg(GetParam().profile, 7, 300.0));
  std::size_t n = 0, v = 0, l = 0;
  for (const auto& b : rec.beats) {
    n += b.cls == BeatClass::N;
    v += b.cls == BeatClass::V;
    l += b.cls == BeatClass::L;
  }
  const double total = static_cast<double>(rec.beats.size());
  const auto mix = hbrp::ecg::expected_mix(GetParam().profile);
  EXPECT_NEAR(n / total, mix.n, 0.08) << GetParam().name;
  EXPECT_NEAR(v / total, mix.v, 0.08) << GetParam().name;
  EXPECT_NEAR(l / total, mix.l, 0.08) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, SynthMix,
    ::testing::Values(MixCase{RecordProfile::NormalSinus, "normal"},
                      MixCase{RecordProfile::PvcOccasional, "pvc"},
                      MixCase{RecordProfile::PvcBigeminy, "bigeminy"},
                      MixCase{RecordProfile::Lbbb, "lbbb"}),
    [](const auto& info) { return info.param.name; });

TEST(Synth, PvcIsPrematureWithCompensatoryPause) {
  const auto rec =
      generate_record(quick_cfg(RecordProfile::PvcOccasional, 8, 300.0));
  // Collect normal-to-normal RR as the baseline.
  std::vector<double> nn;
  for (std::size_t i = 1; i < rec.beats.size(); ++i)
    if (rec.beats[i].cls == BeatClass::N && rec.beats[i - 1].cls == BeatClass::N)
      nn.push_back(
          static_cast<double>(rec.beats[i].sample - rec.beats[i - 1].sample));
  ASSERT_FALSE(nn.empty());
  double nn_mean = 0;
  for (double x : nn) nn_mean += x;
  nn_mean /= static_cast<double>(nn.size());

  std::size_t checked = 0;
  for (std::size_t i = 1; i + 1 < rec.beats.size(); ++i) {
    if (rec.beats[i].cls != BeatClass::V) continue;
    if (rec.beats[i - 1].cls == BeatClass::V ||
        rec.beats[i + 1].cls == BeatClass::V)
      continue;
    const double rr_in =
        static_cast<double>(rec.beats[i].sample - rec.beats[i - 1].sample);
    const double rr_out =
        static_cast<double>(rec.beats[i + 1].sample - rec.beats[i].sample);
    EXPECT_LT(rr_in, 0.92 * nn_mean);   // premature
    EXPECT_GT(rr_out, 1.05 * nn_mean);  // compensatory pause
    ++checked;
  }
  EXPECT_GT(checked, 3u);
}

TEST(Synth, PvcHasNoPWave) {
  const auto rec =
      generate_record(quick_cfg(RecordProfile::PvcOccasional, 9, 120.0));
  for (const auto& b : rec.beats) {
    if (b.cls == BeatClass::V)
      EXPECT_FALSE(b.fiducials.has_p());
    else
      EXPECT_TRUE(b.fiducials.has_p());
  }
}

TEST(Synth, FiducialOrderingIsAnatomical) {
  auto cfg = quick_cfg(RecordProfile::Lbbb, 10, 120.0);
  const auto rec = generate_record(cfg);
  for (const auto& b : rec.beats) {
    const auto& f = b.fiducials;
    if (f.has_p()) {
      EXPECT_LT(f.p_onset, f.p_peak);
      EXPECT_LT(f.p_peak, f.p_end);
      EXPECT_LE(f.p_end, f.qrs_onset + 40);  // P ends before/near QRS onset
    }
    EXPECT_LT(f.qrs_onset, f.r_peak);
    EXPECT_LT(f.r_peak, f.qrs_end);
    EXPECT_LT(f.qrs_end, f.t_end);
  }
}

TEST(Synth, LbbbQrsWiderThanNormal) {
  auto cfg_n = quick_cfg(RecordProfile::NormalSinus, 11, 120.0);
  auto cfg_l = quick_cfg(RecordProfile::Lbbb, 11, 120.0);
  const auto rec_n = generate_record(cfg_n);
  const auto rec_l = generate_record(cfg_l);
  auto mean_qrs = [](const hbrp::ecg::Record& rec, BeatClass cls) {
    double acc = 0;
    std::size_t cnt = 0;
    for (const auto& b : rec.beats) {
      if (b.cls != cls) continue;
      acc += static_cast<double>(b.fiducials.qrs_end - b.fiducials.qrs_onset);
      ++cnt;
    }
    return acc / static_cast<double>(cnt);
  };
  // Widths here are the +-2.5-sigma analytic extents, which read wider than
  // clinical QRS measurements; the class separation is what matters.
  const double w_n = mean_qrs(rec_n, BeatClass::N) / 360.0;
  const double w_l = mean_qrs(rec_l, BeatClass::L) / 360.0;
  EXPECT_LT(w_n, 0.17);
  EXPECT_GT(w_l, 0.18);
  EXPECT_GT(w_l, 1.3 * w_n);
}

TEST(Synth, NoiseScaleZeroGivesCleanBaseline) {
  auto cfg = quick_cfg(RecordProfile::NormalSinus, 12);
  cfg.noise_scale = 0.0;
  const auto rec = generate_record(cfg);
  // Between beats (far from any wave) the signal sits at the ADC baseline.
  const auto& lead = rec.leads[0];
  std::size_t quiet = 0;
  for (std::size_t i = 1; i < rec.beats.size(); ++i) {
    const std::size_t prev_end = rec.beats[i - 1].fiducials.t_end;
    const std::size_t next_start = rec.beats[i].fiducials.has_p()
                                       ? rec.beats[i].fiducials.p_onset
                                       : rec.beats[i].fiducials.qrs_onset;
    if (next_start <= prev_end + 10) continue;
    const std::size_t mid = (prev_end + next_start) / 2;
    EXPECT_NEAR(lead[mid], 1024, 8);
    ++quiet;
  }
  EXPECT_GT(quiet, 10u);
}

TEST(Synth, InvalidConfigThrows) {
  SynthConfig cfg;
  cfg.fs_hz = 0;
  EXPECT_THROW(generate_record(cfg), hbrp::Error);
  cfg = {};
  cfg.num_leads = 4;
  EXPECT_THROW(generate_record(cfg), hbrp::Error);
  cfg = {};
  cfg.duration_s = 0.5;
  EXPECT_THROW(generate_record(cfg), hbrp::Error);
}

TEST(Morphology, TemplatesHaveClassSignatures) {
  hbrp::math::Rng rng(13);
  const auto n = hbrp::ecg::make_template(BeatClass::N, rng);
  const auto v = hbrp::ecg::make_template(BeatClass::V, rng);
  const auto l = hbrp::ecg::make_template(BeatClass::L, rng);
  const auto fn = n.fiducials();
  const auto fv = v.fiducials();
  const auto fl = l.fiducials();
  EXPECT_TRUE(fn.has_p);
  EXPECT_FALSE(fv.has_p);
  EXPECT_TRUE(fl.has_p);
  const double wn = fn.qrs_end - fn.qrs_onset;
  const double wv = fv.qrs_end - fv.qrs_onset;
  const double wl = fl.qrs_end - fl.qrs_onset;
  EXPECT_GT(wv, wn);
  EXPECT_GT(wl, wn);
}

TEST(Morphology, ValueAtPeaksNearR) {
  hbrp::math::Rng rng(14);
  const auto m = hbrp::ecg::make_template(BeatClass::N, rng);
  // R-peak region should dominate the waveform.
  double best_t = -1.0, best_v = -1e9;
  for (double t = -0.4; t <= 0.5; t += 0.001) {
    const double v = m.value_at(t);
    if (v > best_v) {
      best_v = v;
      best_t = t;
    }
  }
  EXPECT_NEAR(best_t, 0.0, 0.02);
  EXPECT_GT(best_v, 0.5);
}

TEST(Morphology, UnknownClassHasNoTemplate) {
  hbrp::math::Rng rng(15);
  EXPECT_THROW(hbrp::ecg::make_template(BeatClass::Unknown, rng), hbrp::Error);
}

}  // namespace
