// Tests for 1-D morphological operators and the ECG conditioning chain.
#include <cmath>
#include <gtest/gtest.h>

#include <algorithm>

#include "dsp/morphology.hpp"
#include "math/rng.hpp"

namespace {

using hbrp::dsp::Signal;

TEST(Morphology, ErodeIsSlidingMin) {
  const Signal x = {5, 3, 8, 1, 9, 2, 7};
  const Signal e = hbrp::dsp::erode(x, 3);
  const Signal expect = {3, 3, 1, 1, 1, 2, 2};
  EXPECT_EQ(e, expect);
}

TEST(Morphology, DilateIsSlidingMax) {
  const Signal x = {5, 3, 8, 1, 9, 2, 7};
  const Signal d = hbrp::dsp::dilate(x, 3);
  const Signal expect = {5, 8, 8, 9, 9, 9, 7};
  EXPECT_EQ(d, expect);
}

TEST(Morphology, LengthOneIsIdentity) {
  const Signal x = {4, -2, 7};
  EXPECT_EQ(hbrp::dsp::erode(x, 1), x);
  EXPECT_EQ(hbrp::dsp::dilate(x, 1), x);
}

TEST(Morphology, EvenLengthThrows) {
  const Signal x = {1, 2, 3};
  EXPECT_THROW(hbrp::dsp::erode(x, 2), hbrp::Error);
  EXPECT_THROW(hbrp::dsp::dilate(x, 4), hbrp::Error);
}

TEST(Morphology, EmptySignal) {
  const Signal x;
  EXPECT_TRUE(hbrp::dsp::erode(x, 3).empty());
  EXPECT_TRUE(hbrp::dsp::dilate(x, 3).empty());
}

TEST(Morphology, ErodeDilateDuality) {
  // erode(x) == -dilate(-x)
  hbrp::math::Rng rng(1);
  Signal x(200);
  for (auto& v : x) v = static_cast<int>(rng.uniform_int(-100, 100));
  Signal neg = x;
  for (auto& v : neg) v = -v;
  const Signal e = hbrp::dsp::erode(x, 7);
  Signal d = hbrp::dsp::dilate(neg, 7);
  for (auto& v : d) v = -v;
  EXPECT_EQ(e, d);
}

TEST(Morphology, OpeningIsIdempotent) {
  hbrp::math::Rng rng(2);
  Signal x(300);
  for (auto& v : x) v = static_cast<int>(rng.uniform_int(-50, 50));
  const Signal once = hbrp::dsp::open(x, 5);
  const Signal twice = hbrp::dsp::open(once, 5);
  EXPECT_EQ(once, twice);
}

TEST(Morphology, ClosingIsIdempotent) {
  hbrp::math::Rng rng(3);
  Signal x(300);
  for (auto& v : x) v = static_cast<int>(rng.uniform_int(-50, 50));
  const Signal once = hbrp::dsp::close(x, 5);
  const Signal twice = hbrp::dsp::close(once, 5);
  EXPECT_EQ(once, twice);
}

TEST(Morphology, OpeningBelowClosingAbove) {
  // Anti-extensivity of opening, extensivity of closing.
  hbrp::math::Rng rng(4);
  Signal x(300);
  for (auto& v : x) v = static_cast<int>(rng.uniform_int(-50, 50));
  const Signal o = hbrp::dsp::open(x, 9);
  const Signal c = hbrp::dsp::close(x, 9);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(o[i], x[i]);
    EXPECT_GE(c[i], x[i]);
  }
}

TEST(Morphology, OpeningRemovesNarrowPeak) {
  Signal x(50, 10);
  x[25] = 100;  // one-sample spike
  const Signal o = hbrp::dsp::open(x, 3);
  EXPECT_EQ(o[25], 10);
}

TEST(Morphology, ClosingFillsNarrowPit) {
  Signal x(50, 10);
  x[25] = -100;
  const Signal c = hbrp::dsp::close(x, 3);
  EXPECT_EQ(c[25], 10);
}

TEST(Morphology, FilterConfigScalesWithRate) {
  const auto cfg360 = hbrp::dsp::FilterConfig::for_rate(360);
  const auto cfg90 = hbrp::dsp::FilterConfig::for_rate(90);
  EXPECT_EQ(cfg360.baseline_open_len % 2, 1u);
  EXPECT_EQ(cfg360.baseline_close_len % 2, 1u);
  EXPECT_GT(cfg360.baseline_open_len, cfg90.baseline_open_len);
  EXPECT_LT(cfg360.baseline_open_len, cfg360.baseline_close_len);
  EXPECT_LT(cfg90.baseline_open_len, cfg90.baseline_close_len);
}

TEST(Morphology, BaselineEstimateTracksSlowDrift) {
  // Slow triangular drift with a narrow QRS-like spike on top: the estimate
  // should follow the drift and ignore the spike.
  const std::size_t n = 2000;
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int drift = static_cast<int>(i / 10);
    x[i] = drift;
  }
  x[1000] = x[1000] + 500;  // spike
  const Signal base = hbrp::dsp::baseline_estimate(x);
  // Mid-signal, away from borders, baseline is close to the drift.
  for (std::size_t i = 300; i < n - 300; ++i)
    EXPECT_NEAR(base[i], static_cast<int>(i / 10), 30) << "at " << i;
}

TEST(Morphology, RemoveBaselineCentersSignal) {
  const std::size_t n = 3000;
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = 1024 + static_cast<int>(100.0 * std::sin(i * 0.002));
  const Signal out = hbrp::dsp::remove_baseline(x);
  for (std::size_t i = 300; i < n - 300; ++i)
    EXPECT_NEAR(out[i], 0, 25) << "at " << i;
}

TEST(Morphology, SuppressNoiseKillsImpulses) {
  Signal x(500, 0);
  x[100] = 300;
  x[101] = -280;
  x[300] = 250;
  const Signal out = hbrp::dsp::suppress_noise(x);
  EXPECT_LT(std::abs(out[100]), 50);
  EXPECT_LT(std::abs(out[300]), 50);
}

TEST(Morphology, ConditionPreservesQrsScaleFeatures) {
  // A QRS-like triangular bump (width ~25 samples at 360 Hz) must survive
  // conditioning with most of its amplitude.
  const std::size_t n = 4000;
  Signal x(n, 1024);
  const std::size_t c = 2000;
  for (int k = -12; k <= 12; ++k)
    x[c + static_cast<std::size_t>(k + 12) - 12] =
        1024 + 200 - 16 * std::abs(k);
  const Signal out = hbrp::dsp::condition_ecg(x);
  const auto peak = *std::max_element(out.begin() + 1900, out.begin() + 2100);
  EXPECT_GT(peak, 120);
}

TEST(Morphology, InvalidBaselineConfigThrows) {
  hbrp::dsp::FilterConfig cfg;
  cfg.baseline_open_len = 151;
  cfg.baseline_close_len = 71;
  const Signal x(100, 0);
  EXPECT_THROW(hbrp::dsp::baseline_estimate(x, cfg), hbrp::Error);
}

}  // namespace
