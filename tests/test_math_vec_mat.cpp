// Unit tests for vector/matrix primitives.
#include <gtest/gtest.h>

#include "math/mat.hpp"
#include "math/vec.hpp"

namespace {

using hbrp::math::Mat;
using hbrp::math::Vec;

TEST(Vec, DotBasics) {
  Vec a = {1.0, 2.0, 3.0};
  Vec b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(hbrp::math::dot(a, b), 4.0 - 10.0 + 18.0);
}

TEST(Vec, DotSizeMismatchThrows) {
  Vec a = {1.0}, b = {1.0, 2.0};
  EXPECT_THROW(hbrp::math::dot(a, b), hbrp::Error);
}

TEST(Vec, DotEmptyIsZero) {
  Vec a, b;
  EXPECT_DOUBLE_EQ(hbrp::math::dot(a, b), 0.0);
}

TEST(Vec, Norms) {
  Vec a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(hbrp::math::norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(hbrp::math::norm2_sq(a), 25.0);
}

TEST(Vec, AxpyAccumulates) {
  Vec x = {1.0, 2.0};
  Vec y = {10.0, 20.0};
  hbrp::math::axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(Vec, ScaleInPlace) {
  Vec x = {1.0, -2.0};
  hbrp::math::scale(x, -3.0);
  EXPECT_DOUBLE_EQ(x[0], -3.0);
  EXPECT_DOUBLE_EQ(x[1], 6.0);
}

TEST(Vec, AddSub) {
  Vec a = {1.0, 2.0}, b = {0.5, -0.5};
  const Vec s = hbrp::math::add(a, b);
  const Vec d = hbrp::math::sub(a, b);
  EXPECT_DOUBLE_EQ(s[0], 1.5);
  EXPECT_DOUBLE_EQ(s[1], 1.5);
  EXPECT_DOUBLE_EQ(d[0], 0.5);
  EXPECT_DOUBLE_EQ(d[1], 2.5);
}

TEST(Vec, MeanVariance) {
  Vec a = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(hbrp::math::mean(a), 5.0);
  EXPECT_NEAR(hbrp::math::variance(a), 32.0 / 7.0, 1e-12);
}

TEST(Vec, MeanEmptyThrows) {
  Vec a;
  EXPECT_THROW(hbrp::math::mean(a), hbrp::Error);
}

TEST(Vec, MaxAbs) {
  Vec a = {-7.0, 3.0, 6.5};
  EXPECT_DOUBLE_EQ(hbrp::math::max_abs(a), 7.0);
  EXPECT_DOUBLE_EQ(hbrp::math::max_abs(Vec{}), 0.0);
}

TEST(Mat, ConstructionAndIndexing) {
  Mat m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Mat, ConstructionFromDataValidatesSize) {
  EXPECT_NO_THROW(Mat(2, 2, {1.0, 2.0, 3.0, 4.0}));
  EXPECT_THROW(Mat(2, 2, {1.0, 2.0}), hbrp::Error);
}

TEST(Mat, RowSpanView) {
  Mat m(2, 2, {1.0, 2.0, 3.0, 4.0});
  auto r1 = m.row(1);
  EXPECT_DOUBLE_EQ(r1[0], 3.0);
  EXPECT_DOUBLE_EQ(r1[1], 4.0);
  r1[0] = 7.0;
  EXPECT_DOUBLE_EQ(m.at(1, 0), 7.0);
  EXPECT_THROW(m.row(2), hbrp::Error);
}

TEST(Mat, MatVec) {
  Mat m(2, 3, {1, 0, -1, 2, 1, 0});
  const Vec v = {3.0, 4.0, 5.0};
  const Vec out = m.mul(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], 10.0);
}

TEST(Mat, MatVecSizeMismatchThrows) {
  Mat m(2, 3);
  Vec v = {1.0, 2.0};
  EXPECT_THROW(m.mul(v), hbrp::Error);
}

TEST(Mat, MatMatMatchesHandComputation) {
  Mat a(2, 2, {1, 2, 3, 4});
  Mat b(2, 2, {5, 6, 7, 8});
  const Mat c = a.mul(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(Mat, MatMatInnerMismatchThrows) {
  Mat a(2, 3), b(2, 3);
  EXPECT_THROW(a.mul(b), hbrp::Error);
}

TEST(Mat, IdentityIsNeutral) {
  Mat a(3, 3, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Mat i = Mat::identity(3);
  EXPECT_EQ(a.mul(i), a);
  EXPECT_EQ(i.mul(a), a);
}

TEST(Mat, TransposeInvolution) {
  Mat a(2, 3, {1, 2, 3, 4, 5, 6});
  const Mat t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(Mat, EqualityComparesShapeAndData) {
  Mat a(1, 2, {1, 2});
  Mat b(2, 1, {1, 2});
  EXPECT_FALSE(a == b);
  Mat c(1, 2, {1, 2});
  EXPECT_TRUE(a == c);
}

}  // namespace
