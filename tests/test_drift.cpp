// drift::DriftTracker unit tests — pure clustering mechanics, no signal
// chain. Geometry used throughout: k = 4 coefficients, scale = 10, so a
// point r "training sigmas" along one axis is r * 20 integer units
// (normalization divides by scale * sqrt(k) = 20).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "drift/tracker.hpp"
#include "math/check.hpp"

namespace {

using hbrp::drift::DriftConfig;
using hbrp::drift::DriftObservation;
using hbrp::drift::DriftTracker;
using hbrp::drift::TrainingCentroids;

constexpr double kUnit = 20.0;  ///< integer units per training sigma

TrainingCentroids two_seed_centroids() {
  TrainingCentroids tc;
  tc.coefficients = 4;
  tc.scale = 10.0;
  tc.centroids.push_back({{0.0, 0.0, 0.0, 0.0}, 100.0});
  tc.centroids.push_back({{100.0, 100.0, 100.0, 100.0}, 50.0});
  return tc;
}

TrainingCentroids one_seed_centroids(double mass = 100.0) {
  TrainingCentroids tc;
  tc.coefficients = 4;
  tc.scale = 10.0;
  tc.centroids.push_back({{0.0, 0.0, 0.0, 0.0}, mass});
  return tc;
}

std::array<std::int32_t, 4> axis0(double sigmas) {
  return {static_cast<std::int32_t>(sigmas * kUnit), 0, 0, 0};
}

TEST(DriftTracker, SeedsAreLiveClusters) {
  DriftTracker t(two_seed_centroids());
  EXPECT_EQ(t.coefficients(), 4u);
  ASSERT_EQ(t.cluster_count(), 2u);
  EXPECT_TRUE(t.cluster(0).seeded);
  EXPECT_TRUE(t.cluster(1).seeded);
  EXPECT_DOUBLE_EQ(t.cluster(0).mass, 100.0);
  EXPECT_DOUBLE_EQ(t.cluster(1).mass, 50.0);
  EXPECT_EQ(t.beats(), 0u);
  EXPECT_DOUBLE_EQ(t.score(), 0.0);
}

TEST(DriftTracker, ConstructorRejectsBudgetAtSeedCount) {
  DriftConfig cfg;
  cfg.max_clusters = 2;  // == seed count: no room to discover
  EXPECT_THROW(DriftTracker(two_seed_centroids(), cfg), hbrp::Error);
}

TEST(DriftTracker, NearbyBeatAssignsWithoutNovelty) {
  DriftTracker t(two_seed_centroids());
  const auto u = axis0(0.4);  // inside the default assign radius (0.5)
  const DriftObservation obs = t.observe(u);
  EXPECT_FALSE(obs.novel);
  EXPECT_NEAR(obs.distance, 0.4, 1e-12);
  EXPECT_EQ(t.cluster_count(), 2u);
  EXPECT_DOUBLE_EQ(t.cluster(0).mass, 101.0);
  EXPECT_EQ(t.novel_beats(), 0u);
}

TEST(DriftTracker, WelfordMatchesBatchMoments) {
  // Seed mass 100 at mean 0 with zero M2 is exactly equivalent to having
  // already seen 100 points at the origin, so the cluster's running
  // moments must equal the batch moments of {100 zeros} ∪ {observations}.
  DriftConfig cfg;
  cfg.assign_threshold = 3.0;  // wide: every observation joins the seed
  DriftTracker t(one_seed_centroids(100.0), cfg);
  const std::vector<double> xs = {10, -14, 33, 5, -21, 44, 0, 17};
  for (const double x : xs) {
    const std::array<std::int32_t, 4> u = {static_cast<std::int32_t>(x), 0,
                                           0, 0};
    t.observe(u);
  }
  ASSERT_EQ(t.cluster_count(), 1u);
  const auto c = t.cluster(0);
  const double n = 100.0 + static_cast<double>(xs.size());
  double sum = 0.0;
  for (const double x : xs) sum += x;
  const double mean = sum / n;
  double m2 = 100.0 * mean * mean;  // the 100 origin points
  for (const double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_DOUBLE_EQ(c.mass, n);
  EXPECT_NEAR(c.mean[0], mean, 1e-9);
  EXPECT_NEAR(c.m2[0], m2, 1e-7);
  EXPECT_NEAR(c.mean[1], 0.0, 1e-12);
  EXPECT_NEAR(c.m2[1], 0.0, 1e-12);
}

TEST(DriftTracker, DistantBeatFoundsClusterAndStaysNovel) {
  DriftTracker t(two_seed_centroids());
  const auto u = axis0(5.0);
  const DriftObservation first = t.observe(u);
  EXPECT_TRUE(first.novel);
  EXPECT_NEAR(first.distance, 5.0, 1e-12);
  ASSERT_EQ(t.cluster_count(), 3u);
  EXPECT_FALSE(t.cluster(2).seeded);
  EXPECT_DOUBLE_EQ(t.cluster(2).mass, 1.0);

  // Repeats join the discovered cluster but are still novel: discovered
  // clusters never launder novelty.
  const DriftObservation second = t.observe(u);
  EXPECT_TRUE(second.novel);
  EXPECT_EQ(t.cluster_count(), 3u);
  EXPECT_DOUBLE_EQ(t.cluster(2).mass, 2.0);
  EXPECT_EQ(t.novel_beats(), 2u);
}

TEST(DriftTracker, PristineSeedsAnchorNovelty) {
  // A wide assign radius lets a sustained 2-sigma shift drag the live
  // seeded cluster toward itself — but novelty is judged against the
  // pristine training centroid, so the shift stays novel forever.
  DriftConfig cfg;
  cfg.max_clusters = 4;
  cfg.assign_threshold = 3.0;
  cfg.novelty_threshold = 0.6;
  DriftTracker t(one_seed_centroids(10.0), cfg);
  const auto shifted = axis0(2.0);
  DriftObservation obs;
  for (int i = 0; i < 50; ++i) obs = t.observe(shifted);
  // The live cluster has all but converged on the shift...
  EXPECT_GT(t.cluster(0).mean[0], 0.8 * 2.0 * kUnit);
  // ...yet the beat still reads as 2 sigmas from the pristine seed.
  EXPECT_NEAR(obs.distance, 2.0, 1e-12);
  EXPECT_TRUE(obs.novel);
  EXPECT_EQ(t.novel_beats(), 50u);
}

TEST(DriftTracker, BudgetEvictsLeastMassUnseeded) {
  DriftConfig cfg;
  cfg.max_clusters = 4;  // 2 seeds + 2 discoverable
  DriftTracker t(two_seed_centroids(), cfg);

  const auto c_loc = axis0(5.0);   // cluster C, observed twice -> mass 2
  const auto d_loc = axis0(-5.0);  // cluster D, observed once  -> mass 1
  t.observe(c_loc);
  t.observe(c_loc);
  t.observe(d_loc);
  ASSERT_EQ(t.cluster_count(), 4u);

  // A fifth distinct shape must evict D (least-mass unseeded), not a seed.
  const std::array<std::int32_t, 4> e_loc = {0, 100, 0, 0};
  t.observe(e_loc);
  EXPECT_EQ(t.evictions(), 1u);
  ASSERT_EQ(t.cluster_count(), 4u);
  bool saw_c = false, saw_d = false, saw_e = false;
  std::size_t seeded = 0;
  for (std::size_t i = 0; i < t.cluster_count(); ++i) {
    const auto c = t.cluster(i);
    if (c.seeded) ++seeded;
    if (c.mean[0] > 50.0 && c.mean[1] < 50.0 && !c.seeded) saw_c = true;
    if (c.mean[0] < -50.0) saw_d = true;
    if (c.mean[1] > 50.0 && c.mean[0] < 50.0 && !c.seeded) saw_e = true;
  }
  EXPECT_EQ(seeded, 2u);
  EXPECT_TRUE(saw_c);
  EXPECT_FALSE(saw_d);
  EXPECT_TRUE(saw_e);
}

TEST(DriftTracker, SeedsSurviveEvictionPressure) {
  DriftConfig cfg;
  cfg.max_clusters = 4;
  DriftTracker t(two_seed_centroids(), cfg);
  // A parade of mutually distant shapes (4 sigmas apart) churns the
  // discovered slots; the seeds must never be squeezed out.
  for (int j = 0; j < 10; ++j) {
    const std::array<std::int32_t, 4> u = {0, 0, 200 + 80 * j, 0};
    t.observe(u);
  }
  EXPECT_GE(t.evictions(), 8u);
  ASSERT_EQ(t.cluster_count(), 4u);
  std::size_t seeded = 0;
  for (std::size_t i = 0; i < t.cluster_count(); ++i)
    if (t.cluster(i).seeded) ++seeded;
  EXPECT_EQ(seeded, 2u);
  // Untouched seeds keep their exact training means.
  EXPECT_DOUBLE_EQ(t.cluster(0).mean[0], 0.0);
  EXPECT_DOUBLE_EQ(t.cluster(1).mean[0], 100.0);
}

TEST(DriftTracker, MergeUsesPooledMoments) {
  DriftConfig cfg;
  cfg.max_clusters = 4;
  cfg.assign_threshold = 1.0;  // the 2-sigma beat founds...
  cfg.merge_threshold = 5.0;   // ...then immediately merges into the seed
  DriftTracker t(one_seed_centroids(100.0), cfg);
  t.observe(axis0(2.0));
  EXPECT_EQ(t.merges(), 1u);
  ASSERT_EQ(t.cluster_count(), 1u);
  const auto c = t.cluster(0);
  EXPECT_TRUE(c.seeded);
  EXPECT_DOUBLE_EQ(c.mass, 101.0);
  // Chan's pooled combine: mean = 40/101, M2 = 40^2 * (100*1)/101.
  EXPECT_NEAR(c.mean[0], 40.0 / 101.0, 1e-12);
  EXPECT_NEAR(c.m2[0], 1600.0 * 100.0 / 101.0, 1e-9);
}

TEST(DriftTracker, WindowScoreAlarmLatchAndRearm) {
  DriftConfig cfg;
  cfg.max_clusters = 4;
  cfg.window_beats = 8;
  cfg.alarm_threshold = 0.5;
  cfg.min_beats = 8;
  DriftTracker t(one_seed_centroids(), cfg);

  const auto novel = axis0(5.0);
  const auto familiar = axis0(0.0);
  DriftObservation obs;
  for (int i = 0; i < 8; ++i) obs = t.observe(novel);
  EXPECT_DOUBLE_EQ(obs.score, 1.0);
  EXPECT_TRUE(obs.alarm);
  EXPECT_TRUE(t.alarm_active());
  EXPECT_EQ(t.alarms(), 1u);

  // Familiar beats wash the window; the alarm drops below threshold and
  // clears (latched only while score >= threshold).
  for (int i = 0; i < 5; ++i) obs = t.observe(familiar);
  EXPECT_DOUBLE_EQ(obs.score, 3.0 / 8.0);
  EXPECT_FALSE(t.alarm_active());
  EXPECT_EQ(t.alarms(), 1u);

  // A second burst re-arms: the rising edge counts again.
  for (int i = 0; i < 8; ++i) obs = t.observe(novel);
  EXPECT_TRUE(t.alarm_active());
  EXPECT_EQ(t.alarms(), 2u);
}

TEST(DriftTracker, MinBeatsSuppressesEarlyAlarm) {
  DriftConfig cfg;
  cfg.max_clusters = 4;
  cfg.window_beats = 4;
  cfg.alarm_threshold = 0.5;
  cfg.min_beats = 32;
  DriftTracker t(one_seed_centroids(), cfg);
  const auto novel = axis0(5.0);
  for (int i = 0; i < 31; ++i) {
    const auto obs = t.observe(novel);
    EXPECT_FALSE(obs.alarm) << "beat " << i;
  }
  const auto obs = t.observe(novel);  // beat 32 crosses min_beats
  EXPECT_TRUE(obs.alarm);
  EXPECT_EQ(t.alarms(), 1u);
}

TEST(DriftTracker, DigestIsDeterministicAndSensitive) {
  DriftTracker a(two_seed_centroids());
  DriftTracker b(two_seed_centroids());
  EXPECT_EQ(a.state_digest(), b.state_digest());
  for (int i = 0; i < 20; ++i) {
    const std::array<std::int32_t, 4> u = {i * 13 - 50, i * 7, 0, 0};
    a.observe(u);
    b.observe(u);
    ASSERT_EQ(a.state_digest(), b.state_digest()) << "beat " << i;
  }
  a.observe(axis0(1.0));
  b.observe(axis0(1.1));
  EXPECT_NE(a.state_digest(), b.state_digest());
}

TEST(DriftTracker, ResetSessionRestoresSeedsKeepsCounters) {
  DriftConfig cfg;
  cfg.max_clusters = 6;
  cfg.window_beats = 8;
  cfg.min_beats = 4;
  DriftTracker t(two_seed_centroids(), cfg);
  for (int i = 0; i < 10; ++i) t.observe(axis0(5.0));
  const std::uint64_t beats = t.beats();
  const std::uint64_t novels = t.novel_beats();
  EXPECT_GT(t.cluster_count(), 2u);
  EXPECT_GT(t.score(), 0.0);

  t.reset_session();
  ASSERT_EQ(t.cluster_count(), 2u);
  EXPECT_TRUE(t.cluster(0).seeded);
  EXPECT_DOUBLE_EQ(t.cluster(0).mass, 100.0);
  EXPECT_DOUBLE_EQ(t.cluster(1).mass, 50.0);
  EXPECT_DOUBLE_EQ(t.score(), 0.0);
  EXPECT_FALSE(t.alarm_active());
  EXPECT_EQ(t.beats(), beats);
  EXPECT_EQ(t.novel_beats(), novels);

  // The tracker is fully usable after reset (pool invariant intact).
  for (int i = 0; i < 10; ++i) t.observe(axis0(5.0));
  EXPECT_GT(t.cluster_count(), 2u);
}

TEST(DriftTracker, ObserveRejectsWrongWidth) {
  DriftTracker t(two_seed_centroids());
  const std::array<std::int32_t, 3> narrow = {0, 0, 0};
  EXPECT_THROW(t.observe(narrow), hbrp::Error);
}

TEST(DriftTracker, PathologicalBeatsAreNeverNovel) {
  // A pathological verdict gates novelty off no matter how far the beat
  // sits: the classifier already escalates those, so they must neither
  // raise novel_beats nor contribute to the score's numerator or
  // denominator — 40 far V beats followed by near normals stay silent.
  DriftConfig cfg;
  cfg.window_beats = 8;
  cfg.min_beats = 1;
  DriftTracker t(one_seed_centroids(), cfg);
  for (int i = 0; i < 40; ++i) {
    const DriftObservation obs =
        t.observe(axis0(6.0), /*normal_classified=*/false);
    EXPECT_FALSE(obs.novel);
    EXPECT_DOUBLE_EQ(obs.score, 0.0);
    EXPECT_FALSE(obs.alarm);
  }
  EXPECT_EQ(t.novel_beats(), 0u);
  EXPECT_EQ(t.alarms(), 0u);

  // The same geometry marked normal flips novel immediately.
  const DriftObservation obs = t.observe(axis0(6.0));
  EXPECT_TRUE(obs.novel);
  EXPECT_EQ(t.novel_beats(), 1u);
}

TEST(DriftTracker, ScoreDenominatorFlooredAtHalfWindow) {
  // Window 8 -> denominator floor 4. One novel normal in a window whose
  // other beats were all pathological scores 1/4, not 1/1: a lone normal
  // beat mid-VT cannot alarm the tracker by itself.
  DriftConfig cfg;
  cfg.window_beats = 8;
  cfg.min_beats = 1;
  DriftTracker t(one_seed_centroids(), cfg);
  for (int i = 0; i < 7; ++i)
    t.observe(axis0(6.0), /*normal_classified=*/false);
  const DriftObservation obs = t.observe(axis0(6.0));
  EXPECT_TRUE(obs.novel);
  EXPECT_DOUBLE_EQ(obs.score, 0.25);
  EXPECT_FALSE(obs.alarm);
}

TEST(DriftTracker, PerSeedSigmaNormalizesNoveltyDistance) {
  // Seed B carries its own sigma (40 = 4x the global scale), so a beat
  // 60 units from B measures 60 / (40 * sqrt(4)) = 0.75 of B's sigmas —
  // not the 1.5 the global scale would report. Seed A has no sigma and
  // keeps the global fallback.
  TrainingCentroids tc;
  tc.coefficients = 4;
  tc.scale = 10.0;
  tc.centroids.push_back({{0.0, 0.0, 0.0, 0.0}, 100.0});
  tc.centroids.push_back({{1000.0, 0.0, 0.0, 0.0}, 50.0, 40.0});
  DriftConfig cfg;
  cfg.novelty_threshold = 1.0;
  DriftTracker t(tc, cfg);

  const std::array<std::int32_t, 4> near_b = {1060, 0, 0, 0};
  const DriftObservation wide = t.observe(near_b);
  EXPECT_NEAR(wide.distance, 0.75, 1e-12);
  EXPECT_FALSE(wide.novel);

  // The same offset from the sigma-less seed A uses the global unit:
  // 60 / (10 * sqrt(4)) = 3.0 sigmas, well past the threshold.
  const std::array<std::int32_t, 4> near_a = {60, 0, 0, 0};
  const DriftObservation tight = t.observe(near_a);
  EXPECT_NEAR(tight.distance, 3.0, 1e-12);
  EXPECT_TRUE(tight.novel);
}

}  // namespace
