// Tests for the float neuro-fuzzy classifier and its SCG training.
#include <gtest/gtest.h>

#include <cmath>

#include "math/check.hpp"
#include "math/rng.hpp"
#include "nfc/classifier.hpp"
#include "nfc/train.hpp"

namespace {

using hbrp::ecg::BeatClass;
using hbrp::math::Mat;
using hbrp::nfc::defuzzify;
using hbrp::nfc::FuzzyValues;
using hbrp::nfc::GaussianMF;
using hbrp::nfc::NeuroFuzzyClassifier;

TEST(GaussianMf, GradeValues) {
  GaussianMF m{2.0, 1.0};
  EXPECT_DOUBLE_EQ(m.grade(2.0), 1.0);
  EXPECT_NEAR(m.grade(3.0), std::exp(-0.5), 1e-12);
  EXPECT_NEAR(m.grade(0.0), std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.log_grade(2.0), 0.0);
}

TEST(GaussianMf, SymmetricAroundCenter) {
  GaussianMF m{-1.0, 2.5};
  for (double d = 0.1; d < 10.0; d += 0.7)
    EXPECT_NEAR(m.grade(-1.0 + d), m.grade(-1.0 - d), 1e-12);
}

TEST(Defuzzify, AlphaZeroAlwaysAssignsArgmax) {
  EXPECT_EQ(defuzzify({0.5, 0.9, 0.8}, 0.0), BeatClass::V);
  EXPECT_EQ(defuzzify({1.0, 0.99, 0.99}, 0.0), BeatClass::N);
  EXPECT_EQ(defuzzify({0.1, 0.1, 0.2}, 0.0), BeatClass::L);
}

TEST(Defuzzify, HighAlphaDemandsSeparation) {
  // M1=1.0, M2=0.9, S=2.4: margin 0.1 < 0.2*2.4 -> Unknown.
  EXPECT_EQ(defuzzify({1.0, 0.9, 0.5}, 0.2), BeatClass::Unknown);
  // Margin 0.9 >= 0.2*1.2 -> assigned.
  EXPECT_EQ(defuzzify({1.0, 0.1, 0.1}, 0.2), BeatClass::N);
}

TEST(Defuzzify, BoundaryEqualityAssigns) {
  // (M1-M2) == alpha*S exactly -> assigned (>= in the paper).
  const FuzzyValues f = {1.0, 0.5, 0.0};
  // S = 1.5, M1-M2 = 0.5, alpha = 1/3 exactly.
  EXPECT_EQ(defuzzify(f, 0.5 / 1.5), BeatClass::N);
}

TEST(Defuzzify, AlphaOutOfRangeThrows) {
  EXPECT_THROW(defuzzify({1, 0, 0}, -0.1), hbrp::Error);
  EXPECT_THROW(defuzzify({1, 0, 0}, 1.1), hbrp::Error);
}

TEST(Defuzzify, ScaleInvariance) {
  const FuzzyValues a = {0.8, 0.3, 0.1};
  FuzzyValues b;
  for (std::size_t i = 0; i < 3; ++i) b[i] = a[i] * 1e-6;
  for (double alpha : {0.0, 0.1, 0.3, 0.6})
    EXPECT_EQ(defuzzify(a, alpha), defuzzify(b, alpha));
}

TEST(Nfc, ForwardMatchesManualProduct) {
  NeuroFuzzyClassifier nfc(2);
  nfc.mf(0, 0) = {0.0, 1.0};
  nfc.mf(0, 1) = {5.0, 2.0};
  nfc.mf(0, 2) = {-5.0, 1.0};
  nfc.mf(1, 0) = {1.0, 1.0};
  nfc.mf(1, 1) = {0.0, 3.0};
  nfc.mf(1, 2) = {2.0, 0.5};
  const std::vector<double> u = {0.5, 1.5};
  const auto lf = nfc.log_fuzzy(u);
  for (std::size_t l = 0; l < 3; ++l) {
    const double expect =
        nfc.mf(0, l).log_grade(u[0]) + nfc.mf(1, l).log_grade(u[1]);
    EXPECT_NEAR(lf[l], expect, 1e-12);
  }
  const auto f = nfc.fuzzy(u);
  const double top = *std::max_element(f.begin(), f.end());
  EXPECT_DOUBLE_EQ(top, 1.0);  // normalized to max 1
}

TEST(Nfc, ClassifyPicksNearestClassCenter) {
  NeuroFuzzyClassifier nfc(1);
  nfc.mf(0, 0) = {0.0, 1.0};
  nfc.mf(0, 1) = {10.0, 1.0};
  nfc.mf(0, 2) = {20.0, 1.0};
  EXPECT_EQ(nfc.classify(std::vector<double>{0.1}, 0.1), BeatClass::N);
  EXPECT_EQ(nfc.classify(std::vector<double>{9.8}, 0.1), BeatClass::V);
  EXPECT_EQ(nfc.classify(std::vector<double>{19.5}, 0.1), BeatClass::L);
  // Halfway between two centers: ambiguous -> Unknown at nonzero alpha.
  EXPECT_EQ(nfc.classify(std::vector<double>{5.0}, 0.1), BeatClass::Unknown);
}

TEST(Nfc, UnderflowImmunityForManyCoefficients) {
  // 32 coefficients far from centers would underflow a naive product; the
  // log-domain forward must still produce the right argmax.
  NeuroFuzzyClassifier nfc(32);
  std::vector<double> u(32);
  for (std::size_t k = 0; k < 32; ++k) {
    u[k] = 100.0;
    nfc.mf(k, 0) = {90.0, 1.0};   // 10 sigma away each -> product ~ e^-1600
    nfc.mf(k, 1) = {80.0, 1.0};   // even farther
    nfc.mf(k, 2) = {120.0, 1.0};
  }
  EXPECT_EQ(nfc.classify(u, 0.0), BeatClass::N);
  const auto f = nfc.fuzzy(u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_GE(f[1], 0.0);
}

TEST(Nfc, ParamsRoundTrip) {
  hbrp::math::Rng rng(1);
  NeuroFuzzyClassifier nfc(4);
  for (std::size_t k = 0; k < 4; ++k)
    for (std::size_t l = 0; l < 3; ++l)
      nfc.mf(k, l) = {rng.normal(0, 10), rng.uniform(0.1, 5.0)};
  const auto params = nfc.to_params();
  EXPECT_EQ(params.size(), 2u * 4u * 3u);
  NeuroFuzzyClassifier other(4);
  other.from_params(params);
  for (std::size_t k = 0; k < 4; ++k)
    for (std::size_t l = 0; l < 3; ++l) {
      EXPECT_DOUBLE_EQ(other.mf(k, l).center, nfc.mf(k, l).center);
      EXPECT_NEAR(other.mf(k, l).sigma, nfc.mf(k, l).sigma, 1e-12);
    }
}

TEST(Nfc, InvalidAccessThrows) {
  NeuroFuzzyClassifier nfc(2);
  EXPECT_THROW(nfc.mf(2, 0), hbrp::Error);
  EXPECT_THROW(nfc.mf(0, 3), hbrp::Error);
  EXPECT_THROW(nfc.log_fuzzy(std::vector<double>{1.0}), hbrp::Error);
  EXPECT_THROW(NeuroFuzzyClassifier(0), hbrp::Error);
  std::vector<double> bad(3, 0.0);
  EXPECT_THROW(nfc.from_params(bad), hbrp::Error);
}

// --- training -------------------------------------------------------------

struct Clusters {
  Mat u;
  std::vector<BeatClass> labels;
};

// Three Gaussian clusters in `dim` dimensions with given separation.
Clusters make_clusters(std::size_t per_class, std::size_t dim,
                       double separation, std::uint64_t seed) {
  hbrp::math::Rng rng(seed);
  Clusters out;
  out.u = Mat(3 * per_class, dim);
  out.labels.resize(3 * per_class);
  for (std::size_t cls = 0; cls < 3; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = cls * per_class + i;
      out.labels[row] = static_cast<BeatClass>(cls);
      for (std::size_t k = 0; k < dim; ++k)
        out.u.at(row, k) =
            separation * static_cast<double>(cls) * (k % 2 ? 1.0 : -1.0) +
            rng.normal();
    }
  }
  return out;
}

TEST(NfcTrain, InitFromStatisticsRecoversClusterMeans) {
  const Clusters data = make_clusters(100, 3, 5.0, 2);
  NeuroFuzzyClassifier nfc(3);
  hbrp::nfc::init_from_statistics(nfc, data.u, data.labels);
  for (std::size_t k = 0; k < 3; ++k)
    for (std::size_t cls = 0; cls < 3; ++cls) {
      const double expect =
          5.0 * static_cast<double>(cls) * (k % 2 ? 1.0 : -1.0);
      EXPECT_NEAR(nfc.mf(k, cls).center, expect, 0.4);
      EXPECT_NEAR(nfc.mf(k, cls).sigma, 1.0, 0.3);
    }
}

TEST(NfcTrain, TrainingReducesCrossEntropy) {
  const Clusters data = make_clusters(60, 4, 1.5, 3);
  NeuroFuzzyClassifier nfc(4);
  hbrp::nfc::init_from_statistics(nfc, data.u, data.labels);
  const double before = hbrp::nfc::cross_entropy(nfc, data.u, data.labels);
  const auto result = hbrp::nfc::train(nfc, data.u, data.labels);
  const double after = hbrp::nfc::cross_entropy(nfc, data.u, data.labels);
  EXPECT_LE(after, before + 1e-9);
  EXPECT_NEAR(result.final_loss, after, 1e-9);
  EXPECT_GT(result.iterations, 0);
}

TEST(NfcTrain, SeparableClustersClassifyNearPerfectly) {
  const Clusters data = make_clusters(80, 4, 6.0, 4);
  NeuroFuzzyClassifier nfc(4);
  hbrp::nfc::train(nfc, data.u, data.labels);
  std::size_t correct = 0;
  for (std::size_t row = 0; row < data.u.rows(); ++row)
    correct += nfc.classify(data.u.row(row), 0.0) == data.labels[row];
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(data.u.rows()),
            0.99);
}

TEST(NfcTrain, OverlappingClustersStillImprove) {
  const Clusters data = make_clusters(120, 4, 1.0, 5);
  NeuroFuzzyClassifier nfc(4);
  hbrp::nfc::init_from_statistics(nfc, data.u, data.labels);
  std::size_t correct_init = 0;
  for (std::size_t row = 0; row < data.u.rows(); ++row)
    correct_init += nfc.classify(data.u.row(row), 0.0) == data.labels[row];
  const auto result = hbrp::nfc::train(nfc, data.u, data.labels);
  std::size_t correct = 0;
  for (std::size_t row = 0; row < data.u.rows(); ++row)
    correct += nfc.classify(data.u.row(row), 0.0) == data.labels[row];
  EXPECT_GE(correct + 5, correct_init);  // no collapse
  EXPECT_LT(result.final_loss, result.initial_loss + 1e-12);
}

TEST(NfcTrain, GradientMatchesFiniteDifferences) {
  // Verify the analytic gradient through the public train() machinery:
  // compare cross-entropy finite differences against an SCG single step
  // by probing the objective indirectly — per-parameter FD on cross_entropy
  // after from_params.
  const Clusters data = make_clusters(20, 2, 2.0, 6);
  NeuroFuzzyClassifier nfc(2);
  hbrp::nfc::init_from_statistics(nfc, data.u, data.labels);
  // Build FD gradient of the cross-entropy in parameter space.
  auto params = nfc.to_params();
  const double eps = 1e-6;
  std::vector<double> fd(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p1 = params, p2 = params;
    p1[i] -= eps;
    p2[i] += eps;
    NeuroFuzzyClassifier a(2), b(2);
    a.from_params(p1);
    b.from_params(p2);
    fd[i] = (hbrp::nfc::cross_entropy(b, data.u, data.labels) -
             hbrp::nfc::cross_entropy(a, data.u, data.labels)) /
            (2 * eps);
  }
  // One SCG iteration from this exact point must move downhill along -fd:
  // check the directional derivative of the train step is negative.
  NeuroFuzzyClassifier trained(2);
  hbrp::nfc::TrainOptions opt;
  opt.scg.max_iterations = 1;
  hbrp::nfc::train(trained, data.u, data.labels, opt);
  const auto moved = trained.to_params();
  double along = 0.0;
  for (std::size_t i = 0; i < params.size(); ++i)
    along += (moved[i] - params[i]) * fd[i];
  EXPECT_LE(along, 1e-12);  // step has negative projection on the gradient
}

TEST(NfcTrain, RejectsInvalidDatasets) {
  NeuroFuzzyClassifier nfc(2);
  Mat u(4, 3);  // wrong coefficient count
  std::vector<BeatClass> labels(4, BeatClass::N);
  EXPECT_THROW(hbrp::nfc::init_from_statistics(nfc, u, labels), hbrp::Error);

  Mat u2(4, 2);
  std::vector<BeatClass> short_labels(3, BeatClass::N);
  EXPECT_THROW(hbrp::nfc::init_from_statistics(nfc, u2, short_labels),
               hbrp::Error);

  std::vector<BeatClass> with_unknown(4, BeatClass::Unknown);
  EXPECT_THROW(hbrp::nfc::init_from_statistics(nfc, u2, with_unknown),
               hbrp::Error);

  // A class with no examples.
  std::vector<BeatClass> missing = {BeatClass::N, BeatClass::N, BeatClass::V,
                                    BeatClass::V};
  EXPECT_THROW(hbrp::nfc::init_from_statistics(nfc, u2, missing), hbrp::Error);
}

}  // namespace
