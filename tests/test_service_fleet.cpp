// Fleet service layer: determinism across shard/thread counts, equivalence
// with a standalone monitor, admission control, backpressure policies under
// clean and fault-injected input, rate caps, in-order delivery, and
// close/re-open mid-stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/streaming.hpp"
#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "ecg/synth.hpp"
#include "service/fleet.hpp"
#include "testing/fault_inject.hpp"

namespace {

using hbrp::service::BackpressurePolicy;
using hbrp::service::FleetConfig;
using hbrp::service::FleetEngine;
using hbrp::service::OfferOutcome;
using hbrp::service::SessionConfig;
using hbrp::service::SessionId;
using hbrp::service::SessionResult;

class FleetEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hbrp::ecg::DatasetBuilderConfig cfg;
    cfg.record_duration_s = 120.0;
    cfg.max_per_record_per_class = 20;
    cfg.seed = 181;
    const auto ts1 = hbrp::ecg::build_dataset({150, 150, 150}, cfg);
    cfg.max_per_record_per_class = 80;
    cfg.seed = 182;
    const auto ts2 = hbrp::ecg::build_dataset({1200, 120, 150}, cfg);
    hbrp::core::TwoStepConfig tcfg;
    tcfg.ga.population = 4;
    tcfg.ga.generations = 2;
    tcfg.seed = 18;
    const hbrp::core::TwoStepTrainer trainer(ts1, ts2, tcfg);
    bundle_ = new hbrp::embedded::EmbeddedClassifier(trainer.run().quantize());
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }

  static const hbrp::embedded::EmbeddedClassifier* bundle_;
};

const hbrp::embedded::EmbeddedClassifier* FleetEngineTest::bundle_ = nullptr;

std::vector<double> patient_lead(std::uint64_t seed, double seconds = 45.0) {
  hbrp::ecg::SynthConfig cfg;
  cfg.profile = seed % 2 == 0 ? hbrp::ecg::RecordProfile::PvcOccasional
                              : hbrp::ecg::RecordProfile::NormalSinus;
  cfg.duration_s = seconds;
  cfg.num_leads = 1;
  cfg.seed = seed;
  const auto rec = hbrp::ecg::generate_record(cfg);
  return {rec.leads[0].begin(), rec.leads[0].end()};
}

/// The per-session output signature the determinism tests compare.
struct BeatSig {
  std::uint64_t sequence;
  std::size_t r_peak;
  hbrp::ecg::BeatClass predicted;
  hbrp::dsp::SignalQuality quality;
  bool operator==(const BeatSig&) const = default;
};

BeatSig signature(const SessionResult& r) {
  return {r.sequence, r.beat.r_peak, r.beat.predicted, r.beat.quality};
}

/// Replays `leads` as concurrent sessions against one engine configuration:
/// chunked round-robin offers with a pump after every round, then drain and
/// close. Returns one signature sequence per input lead.
std::vector<std::vector<BeatSig>> replay_fleet(
    const hbrp::embedded::EmbeddedClassifier& classifier,
    const std::vector<std::vector<double>>& leads, std::size_t threads,
    std::size_t shards, std::size_t chunk = 1024) {
  FleetConfig cfg;
  cfg.threads = threads;
  cfg.shards = shards;
  cfg.max_sessions = leads.size();
  FleetEngine engine(classifier, cfg);

  std::vector<std::vector<BeatSig>> out(leads.size());
  std::vector<SessionId> ids;
  for (std::size_t i = 0; i < leads.size(); ++i) {
    auto id = engine.open_session([&out, i](const SessionResult& r) {
      out[i].push_back(signature(r));
    });
    EXPECT_TRUE(id.has_value());
    ids.push_back(*id);
  }

  std::size_t offset = 0;
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t i = 0; i < leads.size(); ++i) {
      if (offset >= leads[i].size()) continue;
      any = true;
      const std::size_t n = std::min(chunk, leads[i].size() - offset);
      const auto res = engine.offer(
          ids[i], std::span<const double>(leads[i].data() + offset, n));
      EXPECT_EQ(res.accepted, n);  // queues are sized for the schedule
    }
    offset += chunk;
    engine.pump();
  }
  engine.drain();
  for (const SessionId id : ids) EXPECT_TRUE(engine.close_session(id));
  return out;
}

TEST_F(FleetEngineTest, MatchesStandaloneMonitor) {
  const auto lead = patient_lead(7);

  // Reference: the classifying monitor fed directly.
  hbrp::core::StreamingBeatMonitor monitor(*bundle_);
  std::vector<hbrp::core::MonitorBeat> reference;
  const hbrp::core::BeatSink ref_sink =
      [&](const hbrp::core::MonitorBeat& b) { reference.push_back(b); };
  for (const double x : lead) monitor.push(x, ref_sink);
  monitor.flush(ref_sink);

  const auto fleet = replay_fleet(*bundle_, {lead}, 2, 2);
  ASSERT_EQ(fleet.size(), 1u);
  ASSERT_EQ(fleet[0].size(), reference.size());
  ASSERT_GT(reference.size(), 20u);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(fleet[0][i].sequence, i);
    EXPECT_EQ(fleet[0][i].r_peak, reference[i].r_peak);
    EXPECT_EQ(fleet[0][i].predicted, reference[i].predicted);
    EXPECT_EQ(fleet[0][i].quality, reference[i].quality);
  }
}

TEST_F(FleetEngineTest, DeterministicAcrossThreadsAndShards) {
  std::vector<std::vector<double>> leads;
  for (std::uint64_t s = 1; s <= 6; ++s) leads.push_back(patient_lead(s));

  const auto serial = replay_fleet(*bundle_, leads, 1, 1);
  std::size_t beats = 0;
  for (const auto& seq : serial) beats += seq.size();
  ASSERT_GT(beats, 100u);

  for (const auto& [threads, shards] :
       {std::pair<std::size_t, std::size_t>{2, 3}, {4, 4}, {3, 1}}) {
    const auto sharded = replay_fleet(*bundle_, leads, threads, shards);
    ASSERT_EQ(sharded.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(sharded[i], serial[i])
          << "session " << i << " diverged at threads=" << threads
          << " shards=" << shards;
  }
}

TEST_F(FleetEngineTest, InOrderDenseSequencedDelivery) {
  std::vector<std::vector<double>> leads = {patient_lead(11),
                                            patient_lead(12)};
  const auto out = replay_fleet(*bundle_, leads, 4, 2, 357);
  for (const auto& seq : out) {
    ASSERT_GT(seq.size(), 10u);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i].sequence, i);  // dense, strictly increasing
      if (i > 0) {
        EXPECT_GT(seq[i].r_peak, seq[i - 1].r_peak);
      }
    }
  }
}

TEST_F(FleetEngineTest, AdmissionControlMaxSessions) {
  FleetConfig cfg;
  cfg.max_sessions = 2;
  FleetEngine engine(*bundle_, cfg);

  const auto a = engine.open_session({});
  const auto b = engine.open_session({});
  ASSERT_TRUE(a && b);
  EXPECT_FALSE(engine.open_session({}).has_value());
  EXPECT_EQ(engine.telemetry().sessions_rejected.load(), 1u);
  EXPECT_EQ(engine.session_count(), 2u);

  EXPECT_TRUE(engine.close_session(*a));
  const auto c = engine.open_session({});
  EXPECT_TRUE(c.has_value());
  EXPECT_NE(*c, *a);  // ids are never reused
}

TEST_F(FleetEngineTest, AdmissionControlQueueBound) {
  FleetConfig cfg;
  cfg.max_queued_samples = 1000;
  FleetEngine engine(*bundle_, cfg);
  const auto id = engine.open_session({});
  ASSERT_TRUE(id);

  const std::vector<double> big(800, 1024.0);
  EXPECT_EQ(engine.offer(*id, std::span<const double>(big)).accepted, 800u);
  const std::vector<double> more(300, 1024.0);
  const auto res = engine.offer(*id, std::span<const double>(more));
  EXPECT_EQ(res.accepted, 0u);
  EXPECT_EQ(res.rejected, 300u);
  EXPECT_EQ(engine.telemetry().offers_rejected.load(), 1u);

  engine.pump();  // frees the gauge
  EXPECT_EQ(engine.queued_samples(), 0u);
  EXPECT_EQ(engine.offer(*id, std::span<const double>(more)).accepted, 300u);
}

TEST_F(FleetEngineTest, UnknownSessionOfferIsRejected) {
  FleetEngine engine(*bundle_, {});
  const std::vector<double> x(10, 0.0);
  const auto res = engine.offer(SessionId{999}, std::span<const double>(x));
  EXPECT_EQ(res.accepted, 0u);
  EXPECT_EQ(res.rejected, 10u);
  EXPECT_FALSE(engine.close_session(SessionId{999}));
}

TEST_F(FleetEngineTest, BackpressureBlockDefersWithoutLoss) {
  FleetConfig cfg;
  cfg.session.queue_capacity = 500;
  cfg.session.backpressure = BackpressurePolicy::Block;
  FleetEngine engine(*bundle_, cfg);
  const auto id = engine.open_session({});
  ASSERT_TRUE(id);

  const auto lead = patient_lead(21, 20.0);
  std::size_t offset = 0;
  while (offset < lead.size()) {
    const auto res = engine.offer(
        *id, std::span<const double>(lead.data() + offset,
                                     lead.size() - offset));
    EXPECT_EQ(res.evicted, 0u);
    EXPECT_EQ(res.rejected, 0u);
    EXPECT_EQ(res.accepted + res.deferred, lead.size() - offset);
    offset += res.accepted;
    if (res.deferred > 0) engine.pump();  // make room, then retry
  }
  engine.drain();

  const auto* t = engine.session_telemetry(*id);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->samples_accepted.load(), lead.size());
  EXPECT_EQ(t->samples_processed.load(), lead.size());
  EXPECT_EQ(t->samples_evicted.load(), 0u);
  EXPECT_EQ(t->samples_rejected.load(), 0u);
  EXPECT_GT(t->samples_deferred.load(), 0u);  // backpressure did engage
  EXPECT_LE(t->queue_high_water.value(), 500u);
}

TEST_F(FleetEngineTest, BackpressureDropOldestEvictsWithCount) {
  FleetConfig cfg;
  cfg.session.queue_capacity = 500;
  cfg.session.backpressure = BackpressurePolicy::DropOldest;
  FleetEngine engine(*bundle_, cfg);
  const auto id = engine.open_session({});
  ASSERT_TRUE(id);

  const std::vector<double> burst(1200, 1024.0);
  const auto res = engine.offer(*id, std::span<const double>(burst));
  EXPECT_EQ(res.accepted, 500u);
  EXPECT_EQ(res.evicted, 700u);  // overflowing prefix of the burst
  EXPECT_EQ(res.deferred + res.rejected, 0u);
  EXPECT_EQ(engine.queued_samples(), 500u);

  // A second burst evicts the queued remainder of the first.
  const std::vector<double> burst2(300, 900.0);
  const auto res2 = engine.offer(*id, std::span<const double>(burst2));
  EXPECT_EQ(res2.accepted, 300u);
  EXPECT_EQ(res2.evicted, 300u);
  EXPECT_EQ(engine.queued_samples(), 500u);

  const auto* t = engine.session_telemetry(*id);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->samples_evicted.load(), 1000u);
  EXPECT_LE(t->queue_high_water.value(), 500u);
}

TEST_F(FleetEngineTest, BackpressureRejectTailDrops) {
  FleetConfig cfg;
  cfg.session.queue_capacity = 500;
  cfg.session.backpressure = BackpressurePolicy::Reject;
  FleetEngine engine(*bundle_, cfg);
  const auto id = engine.open_session({});
  ASSERT_TRUE(id);

  const std::vector<double> burst(1200, 1024.0);
  const auto res = engine.offer(*id, std::span<const double>(burst));
  EXPECT_EQ(res.accepted, 500u);
  EXPECT_EQ(res.rejected, 700u);
  EXPECT_EQ(res.evicted + res.deferred, 0u);
  EXPECT_EQ(engine.queued_samples(), 500u);
}

TEST_F(FleetEngineTest, FaultInjectedBurstsHonorBackpressure) {
  // Bursty, corrupt input: NaN garbage, lead-off, duplicated samples, fed
  // in irregular chunk sizes against a small DropOldest queue. The engine
  // must absorb it all with bounded queues and coherent accounting.
  const auto lead = patient_lead(31, 30.0);
  hbrp::testing::FaultInjectorConfig fcfg;
  fcfg.seed = 404;
  const auto n = lead.size();
  fcfg.events = {
      {hbrp::testing::FaultKind::NonFinite, n / 10, n / 20, 0.0, 0.3},
      {hbrp::testing::FaultKind::LeadOff, n / 2, n / 10, 0.0, 0.0},
      {hbrp::testing::FaultKind::DupSamples, 3 * n / 4, n / 10, 0.0, 0.0},
  };
  hbrp::testing::FaultInjector injector(fcfg);
  std::vector<double> corrupted;
  for (const double x : lead)
    for (const double y :
         injector.feed(static_cast<hbrp::dsp::Sample>(x)))
      corrupted.push_back(y);

  FleetConfig cfg;
  cfg.session.queue_capacity = 700;
  cfg.session.max_samples_per_pump = 512;
  cfg.session.backpressure = BackpressurePolicy::DropOldest;
  FleetEngine engine(*bundle_, cfg);
  std::size_t delivered = 0;
  const auto id =
      engine.open_session([&](const SessionResult&) { ++delivered; });
  ASSERT_TRUE(id);

  std::size_t offset = 0, burst = 97;
  while (offset < corrupted.size()) {
    const std::size_t take = std::min(burst, corrupted.size() - offset);
    engine.offer(*id,
                 std::span<const double>(corrupted.data() + offset, take));
    offset += take;
    burst = burst * 31 % 1203 + 64;  // deterministic irregular burst sizes
    if (burst % 3 == 0) engine.pump();
  }
  engine.drain();
  EXPECT_TRUE(engine.close_session(*id));

  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(engine.queued_samples(), 0u);
  EXPECT_EQ(engine.telemetry().beats_out.load(), delivered);
}

TEST_F(FleetEngineTest, RateCapBoundsWorkPerPump) {
  FleetConfig cfg;
  cfg.session.max_samples_per_pump = 1000;
  FleetEngine engine(*bundle_, cfg);
  const auto id = engine.open_session({});
  ASSERT_TRUE(id);

  const std::vector<double> x(5000, 1024.0);
  ASSERT_EQ(engine.offer(*id, std::span<const double>(x)).accepted, 5000u);
  engine.pump();
  EXPECT_EQ(engine.queued_samples(), 4000u);
  engine.pump();
  EXPECT_EQ(engine.queued_samples(), 3000u);
  engine.drain();
  EXPECT_EQ(engine.queued_samples(), 0u);
}

TEST_F(FleetEngineTest, CloseMidStreamDeliversTailThenReopenIsClean) {
  const auto lead = patient_lead(41);

  FleetEngine engine(*bundle_, {});
  std::vector<BeatSig> first, second;
  const auto a = engine.open_session(
      [&](const SessionResult& r) { first.push_back(signature(r)); });
  ASSERT_TRUE(a);
  // Half the record, then close mid-stream: the buffered tail must come out.
  const std::size_t half = lead.size() / 2;
  engine.offer(*a, std::span<const double>(lead.data(), half));
  engine.drain();
  const std::size_t before_close = first.size();
  EXPECT_TRUE(engine.close_session(*a));
  EXPECT_GT(first.size(), before_close);  // close flushed buffered beats

  // Re-open and replay the full record: fresh state, fresh sequence space.
  const auto b = engine.open_session(
      [&](const SessionResult& r) { second.push_back(signature(r)); });
  ASSERT_TRUE(b);
  engine.offer(*b, std::span<const double>(lead));
  engine.drain();
  EXPECT_TRUE(engine.close_session(*b));
  ASSERT_FALSE(second.empty());
  EXPECT_EQ(second.front().sequence, 0u);
}

TEST_F(FleetEngineTest, TelemetryJsonSnapshot) {
  FleetEngine engine(*bundle_, {});
  const auto id = engine.open_session({});
  ASSERT_TRUE(id);
  const auto lead = patient_lead(51, 20.0);
  engine.offer(*id, std::span<const double>(lead));
  engine.drain();

  const std::string json = engine.telemetry_json();
  EXPECT_NE(json.find("\"fleet\""), std::string::npos);
  EXPECT_NE(json.find("\"sessions\""), std::string::npos);
  EXPECT_NE(json.find("\"beat_latency_p99_us\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(FleetEngineTest, ConcurrentProducersWithLivePump) {
  // Four producer threads streaming distinct patients while the main
  // thread pumps: exercises the offer/pump locking under TSan.
  constexpr std::size_t kProducers = 4;
  FleetConfig cfg;
  cfg.threads = 2;
  FleetEngine engine(*bundle_, cfg);

  std::vector<SessionId> ids;
  std::vector<std::vector<BeatSig>> out(kProducers);
  for (std::size_t i = 0; i < kProducers; ++i) {
    const auto id = engine.open_session([&out, i](const SessionResult& r) {
      out[i].push_back(signature(r));
    });
    ASSERT_TRUE(id);
    ids.push_back(*id);
  }

  std::vector<std::thread> producers;
  for (std::size_t i = 0; i < kProducers; ++i) {
    producers.emplace_back([&, i] {
      const auto lead = patient_lead(60 + i, 20.0);
      std::size_t offset = 0;
      while (offset < lead.size()) {
        const std::size_t take = std::min<std::size_t>(512,
                                                       lead.size() - offset);
        const auto res = engine.offer(
            ids[i], std::span<const double>(lead.data() + offset, take));
        offset += res.accepted;
        if (res.accepted == 0) std::this_thread::yield();
      }
    });
  }
  for (int round = 0; round < 10000 &&
                      (engine.queued_samples() > 0 || round < 50);
       ++round)
    engine.pump();
  for (auto& p : producers) p.join();
  engine.drain();

  for (std::size_t i = 0; i < kProducers; ++i) {
    const auto* t = engine.session_telemetry(ids[i]);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->samples_processed.load(), t->samples_accepted.load());
    for (std::size_t j = 0; j < out[i].size(); ++j)
      EXPECT_EQ(out[i][j].sequence, j);
  }
  // Close before `out` goes out of scope: the destructor would otherwise
  // flush the buffered tails into sinks whose capture is already dead.
  for (const SessionId id : ids) EXPECT_TRUE(engine.close_session(id));
}

}  // namespace
