// Chaos tests for the model-lifecycle wire path: MODEL_PUSH through the
// PR-6 fault-injecting proxy. Kills mid-transfer and flipped bits must
// leave the gateway serving its old version with zero disturbance to
// concurrent beat traffic; forced fragmentation must not stop a healthy
// push; and a hot-swap landing mid morphology-shift must re-arm the drift
// alarm against the NEW bundle's seeds.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "ecg/synth.hpp"
#include "lifecycle/bundle.hpp"
#include "net/client.hpp"
#include "net/gateway.hpp"
#include "net/push.hpp"
#include "scenario/chaos.hpp"
#include "service/fleet.hpp"

namespace {

using namespace hbrp;
using scenario::ChaosConfig;
using scenario::ChaosProxy;

class LifecycleChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecg::DatasetBuilderConfig cfg;
    cfg.record_duration_s = 120.0;
    cfg.max_per_record_per_class = 20;
    cfg.seed = 191;
    ts1_ = new ecg::BeatDataset(ecg::build_dataset({150, 150, 150}, cfg));
    cfg.max_per_record_per_class = 80;
    cfg.seed = 192;
    const auto ts2 = ecg::build_dataset({1200, 120, 150}, cfg);
    core::TwoStepConfig tcfg;
    tcfg.ga.population = 4;
    tcfg.ga.generations = 2;
    tcfg.seed = 19;
    trained_a_ = new core::TrainedClassifier(
        core::TwoStepTrainer(*ts1_, ts2, tcfg).run());
    tcfg.seed = 29;
    trained_b_ = new core::TrainedClassifier(
        core::TwoStepTrainer(*ts1_, ts2, tcfg).run());
    clf_a_ = new embedded::EmbeddedClassifier(trained_a_->quantize());
    clf_b_ = new embedded::EmbeddedClassifier(trained_b_->quantize());
    centroids_a_ = std::make_shared<const drift::TrainingCentroids>(
        core::compute_training_centroids(*clf_a_, *ts1_));
    centroids_b_ = std::make_shared<const drift::TrainingCentroids>(
        core::compute_training_centroids(*clf_b_, *ts1_));
  }
  static void TearDownTestSuite() {
    centroids_a_.reset();
    centroids_b_.reset();
    delete clf_a_;
    delete clf_b_;
    delete trained_a_;
    delete trained_b_;
    delete ts1_;
    clf_a_ = clf_b_ = nullptr;
    trained_a_ = trained_b_ = nullptr;
    ts1_ = nullptr;
  }

  static lifecycle::ModelBundle bundle_b(std::uint64_t version = 2) {
    return lifecycle::ModelBundle{
        .version = version, .model = *trained_b_, .centroids = *centroids_b_};
  }

  static ecg::BeatDataset* ts1_;
  static core::TrainedClassifier* trained_a_;
  static core::TrainedClassifier* trained_b_;
  static embedded::EmbeddedClassifier* clf_a_;
  static embedded::EmbeddedClassifier* clf_b_;
  static std::shared_ptr<const drift::TrainingCentroids> centroids_a_;
  static std::shared_ptr<const drift::TrainingCentroids> centroids_b_;
};

ecg::BeatDataset* LifecycleChaosTest::ts1_ = nullptr;
core::TrainedClassifier* LifecycleChaosTest::trained_a_ = nullptr;
core::TrainedClassifier* LifecycleChaosTest::trained_b_ = nullptr;
embedded::EmbeddedClassifier* LifecycleChaosTest::clf_a_ = nullptr;
embedded::EmbeddedClassifier* LifecycleChaosTest::clf_b_ = nullptr;
std::shared_ptr<const drift::TrainingCentroids>
    LifecycleChaosTest::centroids_a_;
std::shared_ptr<const drift::TrainingCentroids>
    LifecycleChaosTest::centroids_b_;

std::vector<double> patient_lead(std::uint64_t seed, double seconds) {
  ecg::SynthConfig cfg;
  cfg.profile = ecg::RecordProfile::PvcOccasional;
  cfg.duration_s = seconds;
  cfg.num_leads = 1;
  cfg.seed = seed;
  const auto rec = ecg::generate_record(cfg);
  return {rec.leads[0].begin(), rec.leads[0].end()};
}

std::vector<dsp::Sample> wire_codes(const std::vector<double>& lead) {
  const core::MonitorConfig mc;
  std::vector<dsp::Sample> codes;
  codes.reserve(lead.size());
  dsp::Sample last = 0;
  for (const double x : lead)
    codes.push_back(
        net::SensorNodeClient::sanitize(x, mc.quality, last, nullptr));
  return codes;
}

struct VerdictSig {
  std::uint64_t sequence;
  std::uint64_t r_peak;
  std::uint8_t beat_class;
  std::uint8_t quality;
  bool operator==(const VerdictSig&) const = default;
};

std::vector<VerdictSig> direct_ingest(
    const embedded::EmbeddedClassifier& classifier,
    std::span<const dsp::Sample> codes) {
  service::FleetEngine engine(classifier, {});
  std::vector<VerdictSig> out;
  const auto id = engine.open_session([&out](const service::SessionResult& r) {
    out.push_back(VerdictSig{r.sequence,
                             static_cast<std::uint64_t>(r.beat.r_peak),
                             static_cast<std::uint8_t>(r.beat.predicted),
                             static_cast<std::uint8_t>(r.beat.quality)});
  });
  EXPECT_TRUE(id.has_value());
  std::size_t off = 0;
  while (off < codes.size()) {
    const std::size_t n = std::min<std::size_t>(1024, codes.size() - off);
    off += engine.offer(*id, codes.subspan(off, n)).accepted;
    engine.pump();
  }
  engine.drain();
  EXPECT_TRUE(engine.close_session(*id));
  return out;
}

struct GatewayHarness {
  net::GatewayServer gw;
  std::thread thread;
  GatewayHarness(const embedded::EmbeddedClassifier& classifier,
                 net::GatewayConfig cfg)
      : gw(classifier, std::move(cfg)), thread([this] { gw.serve(); }) {}
  ~GatewayHarness() {
    gw.stop();
    thread.join();
  }
};

struct ChaosHarness {
  ChaosProxy proxy;
  std::thread thread;
  explicit ChaosHarness(ChaosConfig cfg)
      : proxy(std::move(cfg)), thread([this] { proxy.serve(); }) {}
  ~ChaosHarness() {
    proxy.stop();
    thread.join();
  }
};

// A connection killed mid-transfer — wherever the byte budget lands — must
// never move the gateway off its old version, and a client streaming beats
// directly alongside the carnage must see the bit-identical old-model
// verdict stream with no drops.
TEST_F(LifecycleChaosTest, KilledPushLeavesGatewayOnOldVersion) {
  const auto lead = patient_lead(120, 15.0);
  const auto ref_a = direct_ingest(*clf_a_, wire_codes(lead));
  ASSERT_FALSE(ref_a.empty());

  net::GatewayConfig gcfg;
  gcfg.reactors = 1;
  GatewayHarness harness(*clf_a_, gcfg);

  // Every proxied connection dies after a few hundred relayed bytes —
  // always inside the bundle image, which is tens of KB.
  ChaosConfig ccfg;
  ccfg.upstream_port = harness.gw.port();
  ccfg.seed = 21;
  ccfg.kill_probability = 1.0;
  ccfg.kill_after_min_bytes = 256;
  ccfg.kill_after_max_bytes = 1024;
  ChaosHarness chaos(ccfg);

  const auto image = lifecycle::encode_bundle(bundle_b());
  ASSERT_GT(image.size(), ccfg.kill_after_max_bytes)
      << "the kill budget must land inside the transfer";

  std::vector<VerdictSig> got;
  std::atomic<bool> pushes_done{false};
  std::atomic<bool> half_done{false};
  std::thread client_thread([&] {
    net::NodeConfig ncfg;
    ncfg.port = harness.gw.port();  // direct: the chaos is pushes-only
    ncfg.policy = net::TxPolicy::StreamEverything;
    net::SensorNodeClient client(*clf_a_, ncfg);
    client.set_verdict_sink(
        [&got](std::uint64_t seq, const net::BeatVerdictMsg& v) {
          got.push_back(VerdictSig{seq, v.r_peak, v.beat_class, v.quality});
        });
    const std::span<const double> span(lead);
    // Feed past the halfway mark until the first verdict lands so the
    // chaos-harassed pushes provably target a live session (detector
    // warm-up is signal-dependent).
    std::size_t fed = span.size() / 2;
    client.push(span.first(fed));
    while (got.empty() && fed < span.size()) {
      const std::size_t step = std::min<std::size_t>(360, span.size() - fed);
      client.push(span.subspan(fed, step));
      fed += step;
      for (int i = 0; i < 50 && got.empty(); ++i) client.poll_once(5);
    }
    EXPECT_FALSE(got.empty());
    half_done.store(true);
    while (!pushes_done.load()) {
      client.poll_once(5);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    client.push(span.subspan(fed));
    client.finish();
    EXPECT_TRUE(client.drain(30000));
    client.close(5000);
  });
  while (!half_done.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  for (int attempt = 0; attempt < 3; ++attempt) {
    const net::PushResult r =
        net::push_image(chaos.proxy.port(), 2, image, /*timeout_ms=*/8000);
    EXPECT_FALSE(r.delivered)
        << "attempt " << attempt << " should die mid-transfer, got status "
        << static_cast<int>(r.status);
  }
  // Under load a dying connection can tear down through a path the proxy
  // does not count as a kill, so require the kill budget to have fired at
  // least once; the per-attempt delivery failures above are the real gate.
  EXPECT_GE(chaos.proxy.stats().conns_killed.load(), 1u)
      << "the chaos must actually bite";
  EXPECT_EQ(harness.gw.active_model_version(), 1u);
  EXPECT_EQ(harness.gw.stats().model_pushes_ok.load(), 0u);
  EXPECT_EQ(harness.gw.engine().telemetry().swaps_staged.load(), 0u);

  pushes_done.store(true);
  client_thread.join();
  EXPECT_EQ(got, ref_a)
      << "killed pushes must not disturb concurrent beat traffic";
}

// Flipped bits anywhere in the transfer die on a CRC — the per-frame
// wire CRC or the bundle's own — and the gateway keeps its old version.
TEST_F(LifecycleChaosTest, BitFlippedPushIsRejected) {
  net::GatewayConfig gcfg;
  gcfg.reactors = 1;
  GatewayHarness harness(*clf_a_, gcfg);

  ChaosConfig ccfg;
  ccfg.upstream_port = harness.gw.port();
  ccfg.seed = 33;
  ccfg.bit_flip_rate = 5e-4;  // ~dozens of flips across a multi-KB image
  ChaosHarness chaos(ccfg);

  const auto image = lifecycle::encode_bundle(bundle_b());
  const net::PushResult r =
      net::push_image(chaos.proxy.port(), 2, image, /*timeout_ms=*/8000);
  EXPECT_TRUE(!r.delivered || r.status != net::ModelPushStatus::Ok)
      << "a corrupted transfer must never be acknowledged Ok";
  EXPECT_GT(chaos.proxy.stats().bits_flipped.load(), 0u)
      << "the chaos must actually bite";
  EXPECT_EQ(harness.gw.active_model_version(), 1u);
  EXPECT_EQ(harness.gw.stats().model_pushes_ok.load(), 0u);
}

// Forced worst-case TCP fragmentation (every relay write capped to a prime
// burst) only slows a healthy push down — it must still deliver, verify
// and swap.
TEST_F(LifecycleChaosTest, FragmentedPushStillDelivers) {
  net::GatewayConfig gcfg;
  gcfg.reactors = 1;
  GatewayHarness harness(*clf_a_, gcfg);

  ChaosConfig ccfg;
  ccfg.upstream_port = harness.gw.port();
  ccfg.seed = 47;
  ccfg.max_burst = 89;
  ChaosHarness chaos(ccfg);

  const net::PushResult r =
      net::push_bundle(chaos.proxy.port(), bundle_b(), /*timeout_ms=*/30000);
  EXPECT_TRUE(r.delivered) << r.error;
  EXPECT_EQ(r.status, net::ModelPushStatus::Ok);
  EXPECT_EQ(r.version, 2u);
  EXPECT_EQ(harness.gw.active_model_version(), 2u);
  EXPECT_GT(chaos.proxy.stats().bytes_relayed.load(), 0u);
}

// Satellite (b): a hot-swap landing while the drift alarm is latched must
// re-seed the tracker from the NEW bundle's centroids and re-arm the
// alarm — the new model's tracker starts fresh and trips again on its own
// evidence, not the old model's.
TEST_F(LifecycleChaosTest, SwapDuringDriftAlarmReArmsAgainstNewSeeds) {
  const auto lead = patient_lead(130, 60.0);

  service::FleetConfig fcfg;
  // Mechanical alarm tuning: with the novelty gate far below the clean
  // band (~0.8 sigmas) every normal beat reads as novel, so the alarm
  // latches as soon as min_beats of history exist — on old and new seeds
  // alike. This test is about the re-arm mechanics, not the thresholds.
  fcfg.session.drift.novelty_threshold = 0.3;
  fcfg.session.drift.min_beats = 8;
  fcfg.session.model = std::make_shared<const service::SessionModel>(
      service::SessionModel{1, *clf_a_, centroids_a_});
  service::FleetEngine engine(*clf_a_, fcfg);
  const auto id = engine.open_session([](const service::SessionResult&) {});
  ASSERT_TRUE(id.has_value());
  const service::SessionTelemetry* t = engine.session_telemetry(*id);
  ASSERT_NE(t, nullptr);

  const std::span<const double> span(lead);
  const std::size_t pre_swap = lead.size() * 2 / 3;
  std::size_t off = 0;
  while (off < pre_swap) {
    const std::size_t n = std::min<std::size_t>(2048, pre_swap - off);
    off += engine.offer(*id, span.subspan(off, n)).accepted;
    engine.pump();
  }
  const std::uint64_t alarms_before = t->drift_alarms.load();
  const std::uint64_t beats_before = t->drift_beats.load();
  ASSERT_GE(alarms_before, 1u) << "the alarm must be armed before the swap";
  ASSERT_EQ(t->drift_alarm_active.load(), 1u);

  ASSERT_TRUE(engine.stage_swap(
      *id, std::make_shared<const service::SessionModel>(
               service::SessionModel{2, *clf_b_, centroids_b_})));
  engine.pump();  // applies the swap: fresh tracker on the new seeds

  while (off < lead.size()) {
    const std::size_t n = std::min<std::size_t>(2048, lead.size() - off);
    off += engine.offer(*id, span.subspan(off, n)).accepted;
    engine.pump();
  }
  engine.drain();

  EXPECT_EQ(t->swap_count.load(), 1u);
  EXPECT_EQ(t->model_version.load(), 2u);
  EXPECT_LT(t->drift_beats.load(), beats_before)
      << "the tracker must have restarted from the new bundle's seeds";
  EXPECT_GE(t->drift_alarms.load(), 1u)
      << "the alarm must re-trip on the new tracker's own evidence";
  EXPECT_EQ(t->drift_alarm_active.load(), 1u)
      << "the shift is still present, so the re-armed alarm must latch";
  EXPECT_TRUE(engine.close_session(*id));
}

}  // namespace
