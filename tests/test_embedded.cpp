// Tests for the integer (WBSN) classifier: MF shapes, fuzzification
// renormalization, division-free defuzzification and float/int agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "embedded/bundle.hpp"
#include "embedded/int_classifier.hpp"
#include "embedded/linear_mf.hpp"
#include "math/check.hpp"
#include "math/fixed.hpp"
#include "math/rng.hpp"

namespace {

using hbrp::ecg::BeatClass;
using hbrp::embedded::IntClassifier;
using hbrp::embedded::kGradeAtS;
using hbrp::embedded::LinearizedMF;
using hbrp::embedded::MfShape;
using hbrp::embedded::TriangularMF;

TEST(LinearMf, AnchorValues) {
  // c = 0, sigma such that S = 100.
  const LinearizedMF mf{0, 100};
  EXPECT_EQ(mf.eval(0), 65535);
  EXPECT_EQ(mf.eval(100), kGradeAtS);
  EXPECT_EQ(mf.eval(-100), kGradeAtS);
  EXPECT_EQ(mf.eval(200), 1);   // at 2S the shallow segment reaches 1
  EXPECT_EQ(mf.eval(399), 1);   // flat tail
  EXPECT_EQ(mf.eval(400), 0);   // 4S -> 0
  EXPECT_EQ(mf.eval(-400), 0);
  EXPECT_EQ(mf.eval(1000000), 0);
}

TEST(LinearMf, MonotoneDecayFromCenter) {
  const LinearizedMF mf{50, 73};
  std::uint16_t prev = 65535;
  for (std::int32_t x = 50; x < 50 + 5 * 73; ++x) {
    const std::uint16_t g = mf.eval(x);
    EXPECT_LE(g, prev) << "x=" << x;
    prev = g;
  }
}

TEST(LinearMf, SymmetricAroundCenter) {
  const LinearizedMF mf{-300, 41};
  for (std::int32_t d = 0; d < 200; d += 7)
    EXPECT_EQ(mf.eval(-300 + d), mf.eval(-300 - d));
}

TEST(LinearMf, TracksGaussianWithinTolerance) {
  // Inside |x-c| < 2S the linearization should stay close to the Gaussian
  // (this is the property Fig. 4 illustrates).
  const double sigma = 40.0;
  const LinearizedMF mf = LinearizedMF::from_gaussian(0.0, sigma);
  for (double x = -2 * 2.35 * sigma; x <= 2 * 2.35 * sigma; x += 3.0) {
    const double gauss = std::exp(-0.5 * (x / sigma) * (x / sigma));
    const double lin =
        static_cast<double>(mf.eval(static_cast<std::int32_t>(x))) / 65535.0;
    EXPECT_NEAR(lin, gauss, 0.18) << "x=" << x;
  }
}

TEST(LinearMf, FromGaussianRoundsAndFloors) {
  const LinearizedMF a = LinearizedMF::from_gaussian(10.4, 100.0);
  EXPECT_EQ(a.center, 10);
  EXPECT_EQ(a.s, 235u);  // 2.35 * 100
  const LinearizedMF tiny = LinearizedMF::from_gaussian(0.0, 0.01);
  EXPECT_GE(tiny.s, 1u);  // never a zero width
  EXPECT_THROW(LinearizedMF::from_gaussian(0.0, 0.0), hbrp::Error);
}

TEST(TriangularMf, SupportAndPeak) {
  const TriangularMF mf{0, 200};
  EXPECT_EQ(mf.eval(0), 65535);
  EXPECT_EQ(mf.eval(100), 32768);  // halfway down, rounded
  EXPECT_EQ(mf.eval(199), 328);
  EXPECT_EQ(mf.eval(200), 0);      // zero exactly at the base edge
  EXPECT_EQ(mf.eval(-200), 0);
  EXPECT_EQ(mf.eval(5000), 0);
}

TEST(TriangularMf, NarrowerEffectiveSupportThanLinearized) {
  // Same trained Gaussian: the triangular MF is zero beyond 2S where the
  // linearized MF still returns 1 — the root cause of the Fig. 5 gap.
  const double sigma = 30.0;
  const auto lin = LinearizedMF::from_gaussian(0.0, sigma);
  const auto tri = TriangularMF::from_gaussian(0.0, sigma);
  const auto x = static_cast<std::int32_t>(3.0 * 2.35 * sigma);
  EXPECT_GT(lin.eval(x), 0);
  EXPECT_EQ(tri.eval(x), 0);
}

TEST(ReferenceShapes, MatchIntegerImplementations) {
  const double sigma = 55.0;
  const auto lin = LinearizedMF::from_gaussian(1000.0, sigma);
  const auto tri = TriangularMF::from_gaussian(1000.0, sigma);
  for (double x = 600; x <= 1400; x += 11) {
    const double ref_lin =
        hbrp::embedded::linearized_reference(1000.0, sigma, x);
    const double ref_tri =
        hbrp::embedded::triangular_reference(1000.0, sigma, x);
    EXPECT_NEAR(
        static_cast<double>(lin.eval(static_cast<std::int32_t>(x))) / 65535.0,
        ref_lin, 0.01);
    EXPECT_NEAR(
        static_cast<double>(tri.eval(static_cast<std::int32_t>(x))) / 65535.0,
        ref_tri, 0.01);
  }
}

// Builds a small trained-looking float NFC with well-separated classes.
hbrp::nfc::NeuroFuzzyClassifier toy_nfc(std::size_t k) {
  hbrp::nfc::NeuroFuzzyClassifier nfc(k);
  for (std::size_t i = 0; i < k; ++i) {
    nfc.mf(i, 0) = {0.0, 50.0};
    nfc.mf(i, 1) = {400.0, 80.0};
    nfc.mf(i, 2) = {-400.0, 60.0};
  }
  return nfc;
}

TEST(IntClassifier, AgreesWithFloatOnClearBeats) {
  const auto nfc = toy_nfc(8);
  const auto cls = IntClassifier::from_float(nfc);
  hbrp::math::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const int which = static_cast<int>(rng.uniform_index(3));
    const double center = which == 0 ? 0.0 : (which == 1 ? 400.0 : -400.0);
    std::vector<double> uf(8);
    std::vector<std::int32_t> ui(8);
    for (std::size_t i = 0; i < 8; ++i) {
      ui[i] = static_cast<std::int32_t>(center + rng.normal(0.0, 30.0));
      uf[i] = static_cast<double>(ui[i]);
    }
    EXPECT_EQ(cls.classify(ui, 0), nfc.classify(uf, 0.0));
  }
}

TEST(IntClassifier, FuzzifyKeepsRatios) {
  // With identical grades per class across coefficients, the accumulators
  // must preserve the grade ordering.
  const auto nfc = toy_nfc(4);
  const auto cls = IntClassifier::from_float(nfc);
  const std::vector<std::int32_t> u(4, 30);  // closest to class 0
  const auto f = cls.fuzzify(u);
  EXPECT_GT(f[0], f[1]);
  EXPECT_GT(f[0], f[2]);
}

TEST(IntClassifier, FuzzifyNeverOverflows) {
  // All grades at maximum: accumulators must stay valid through 32 steps.
  hbrp::nfc::NeuroFuzzyClassifier nfc(32);
  for (std::size_t k = 0; k < 32; ++k)
    for (std::size_t l = 0; l < 3; ++l) nfc.mf(k, l) = {0.0, 1000.0};
  const auto cls = IntClassifier::from_float(nfc);
  const std::vector<std::int32_t> u(32, 0);
  const auto f = cls.fuzzify(u);
  for (const auto v : f) EXPECT_GT(v, 0u);
}

TEST(IntClassifier, SingleCoefficient) {
  const auto nfc = toy_nfc(1);
  const auto cls = IntClassifier::from_float(nfc);
  EXPECT_EQ(cls.classify(std::vector<std::int32_t>{10}, 0), BeatClass::N);
  EXPECT_EQ(cls.classify(std::vector<std::int32_t>{390}, 0), BeatClass::V);
}

TEST(IntClassifier, DefuzzifyRules) {
  using hbrp::math::to_q16;
  // Clear winner.
  EXPECT_EQ(IntClassifier::defuzzify({1000, 10, 10}, to_q16(0.3)),
            BeatClass::N);
  // Close race at high alpha -> Unknown.
  EXPECT_EQ(IntClassifier::defuzzify({1000, 990, 10}, to_q16(0.3)),
            BeatClass::Unknown);
  // Same race at alpha = 0 -> argmax.
  EXPECT_EQ(IntClassifier::defuzzify({1000, 990, 10}, 0), BeatClass::N);
  // All-zero fuzzy values -> Unknown (safe direction).
  EXPECT_EQ(IntClassifier::defuzzify({0, 0, 0}, 0), BeatClass::Unknown);
  // Boundary: (M1-M2)*2^16 == alpha*S exactly -> assigned.
  // M1=3, M2=1, S=4: margin/sum = 0.5.
  EXPECT_EQ(IntClassifier::defuzzify({3, 1, 0}, to_q16(0.5)), BeatClass::N);
  EXPECT_EQ(IntClassifier::defuzzify({3, 1, 0}, to_q16(0.5) + 1),
            BeatClass::Unknown);
}

TEST(IntClassifier, DefuzzifyAlphaValidated) {
  EXPECT_THROW(IntClassifier::defuzzify({1, 0, 0}, hbrp::math::kQ16One + 1),
               hbrp::Error);
}

TEST(IntClassifier, TriangularMoreUnknowns) {
  // Far from every class the triangular classifier yields Unknown while the
  // linearized one can still rank (its tails saturate at 1, not 0).
  const auto nfc = toy_nfc(8);
  const auto lin = IntClassifier::from_float(nfc, MfShape::Linearized);
  const auto tri = IntClassifier::from_float(nfc, MfShape::Triangular);
  // 3S past the class-1 centre (sigma 80 -> S = 188): inside the linearized
  // MF's flat-1 tail but outside the triangular MF's 2S support.
  const std::vector<std::int32_t> far(8, 400 + 564);
  EXPECT_EQ(tri.classify(far, 0), BeatClass::Unknown);
  EXPECT_NE(lin.classify(far, 0), BeatClass::Unknown);
}

TEST(IntClassifier, MemoryAndAccessors) {
  const auto nfc = toy_nfc(8);
  const auto lin = IntClassifier::from_float(nfc, MfShape::Linearized);
  EXPECT_EQ(lin.memory_bytes(), 8u * 3u * sizeof(LinearizedMF));
  EXPECT_EQ(lin.linear_mf(0, 1).center, 400);
  EXPECT_THROW(lin.triangular_mf(0, 0), hbrp::Error);
  EXPECT_THROW(lin.linear_mf(8, 0), hbrp::Error);
  const auto tri = IntClassifier::from_float(nfc, MfShape::Triangular);
  EXPECT_THROW(tri.linear_mf(0, 0), hbrp::Error);
  EXPECT_EQ(tri.triangular_mf(0, 2).center, -400);
}

TEST(Bundle, ClassifyWindowRunsFullChain) {
  hbrp::math::Rng rng(2);
  auto p = hbrp::rp::make_achlioptas(8, 50, rng);
  hbrp::rp::BeatProjector proj(p, 4);
  const auto nfc = toy_nfc(8);
  hbrp::embedded::EmbeddedClassifier bundle(
      proj, IntClassifier::from_float(nfc), 0);
  const hbrp::dsp::Signal window(200, 0);
  // A zero window projects to zeros -> nearest class 0 (centres at 0).
  EXPECT_EQ(bundle.classify_window(window), BeatClass::N);
  EXPECT_EQ(bundle.memory_bytes(),
            proj.packed().memory_bytes() +
                bundle.classifier().memory_bytes());
}

TEST(Bundle, AlphaValidatedAndTunable) {
  hbrp::math::Rng rng(3);
  hbrp::rp::BeatProjector proj(hbrp::rp::make_achlioptas(4, 50, rng), 4);
  hbrp::embedded::EmbeddedClassifier bundle(
      proj, IntClassifier::from_float(toy_nfc(4)), 0);
  bundle.set_alpha_q16(hbrp::math::to_q16(0.5));
  EXPECT_EQ(bundle.alpha_q16(), hbrp::math::to_q16(0.5));
  EXPECT_THROW(bundle.set_alpha_q16(hbrp::math::kQ16One + 1), hbrp::Error);
}

TEST(Bundle, CoefficientMismatchRejected) {
  hbrp::math::Rng rng(4);
  hbrp::rp::BeatProjector proj(hbrp::rp::make_achlioptas(4, 50, rng), 4);
  EXPECT_THROW(hbrp::embedded::EmbeddedClassifier(
                   proj, IntClassifier::from_float(toy_nfc(8)), 0),
               hbrp::Error);
}

TEST(Bundle, ExportCHeaderContainsTables) {
  hbrp::math::Rng rng(5);
  hbrp::rp::BeatProjector proj(hbrp::rp::make_achlioptas(8, 50, rng), 4);
  hbrp::embedded::EmbeddedClassifier bundle(
      proj, IntClassifier::from_float(toy_nfc(8)), 12345);
  std::ostringstream out;
  bundle.export_c_header(out, "HBRP");
  const std::string header = out.str();
  EXPECT_NE(header.find("#define HBRP_COEFFICIENTS 8"), std::string::npos);
  EXPECT_NE(header.find("#define HBRP_INPUT_SAMPLES 50"), std::string::npos);
  EXPECT_NE(header.find("#define HBRP_DOWNSAMPLE 4"), std::string::npos);
  EXPECT_NE(header.find("#define HBRP_ALPHA_Q16 12345u"), std::string::npos);
  EXPECT_NE(header.find("HBRP_projection"), std::string::npos);
  EXPECT_NE(header.find("HBRP_mf_center"), std::string::npos);
  EXPECT_NE(header.find("HBRP_mf_width"), std::string::npos);
  EXPECT_NE(header.find("400, "), std::string::npos);  // a class-1 centre
}

}  // namespace
