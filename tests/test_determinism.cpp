// Reproducibility guarantees: every stochastic component must be bit-stable
// given its seed, across the full training stack.
#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "dsp/streaming.hpp"
#include "ecg/dataset.hpp"

namespace {

using hbrp::ecg::BeatDataset;

BeatDataset quick_split(const hbrp::ecg::DatasetSpec& spec,
                        std::uint64_t seed, std::size_t cap) {
  hbrp::ecg::DatasetBuilderConfig cfg;
  cfg.record_duration_s = 90.0;
  cfg.max_per_record_per_class = cap;
  cfg.seed = seed;
  return hbrp::ecg::build_dataset(spec, cfg);
}

TEST(Determinism, FullTwoStepTrainingIsBitStable) {
  const auto ts1 = quick_split({60, 60, 60}, 21, 15);
  const auto ts2 = quick_split({400, 60, 70}, 22, 60);
  hbrp::core::TwoStepConfig cfg;
  cfg.ga.population = 4;
  cfg.ga.generations = 2;
  cfg.seed = 23;
  const hbrp::core::TwoStepTrainer trainer(ts1, ts2, cfg);
  const auto a = trainer.run();
  const auto b = trainer.run();
  EXPECT_EQ(a.projector.matrix(), b.projector.matrix());
  EXPECT_DOUBLE_EQ(a.alpha_train, b.alpha_train);
  for (std::size_t k = 0; k < 8; ++k)
    for (std::size_t l = 0; l < 3; ++l) {
      EXPECT_DOUBLE_EQ(a.nfc.mf(k, l).center, b.nfc.mf(k, l).center);
      EXPECT_DOUBLE_EQ(a.nfc.mf(k, l).sigma, b.nfc.mf(k, l).sigma);
    }
}

TEST(Determinism, ParallelTrainingBitIdenticalToSerial) {
  // The engine's core contract: the executor thread count must not change
  // any trained artefact or metric. Run the full two-step framework fully
  // serial and with four executor threads and compare everything.
  const auto ts1 = quick_split({60, 60, 60}, 51, 15);
  const auto ts2 = quick_split({400, 60, 70}, 52, 60);
  hbrp::core::TwoStepConfig cfg;
  cfg.ga.population = 5;
  cfg.ga.generations = 3;
  cfg.seed = 53;

  cfg.threads = 1;
  const hbrp::core::TwoStepTrainer serial(ts1, ts2, cfg);
  const auto a = serial.run();
  const auto ha = serial.last_history();

  cfg.threads = 4;
  const hbrp::core::TwoStepTrainer parallel(ts1, ts2, cfg);
  const auto b = parallel.run();
  const auto hb = parallel.last_history();

  EXPECT_EQ(a.projector.matrix(), b.projector.matrix());
  EXPECT_DOUBLE_EQ(a.alpha_train, b.alpha_train);
  for (std::size_t k = 0; k < 8; ++k)
    for (std::size_t l = 0; l < 3; ++l) {
      EXPECT_DOUBLE_EQ(a.nfc.mf(k, l).center, b.nfc.mf(k, l).center);
      EXPECT_DOUBLE_EQ(a.nfc.mf(k, l).sigma, b.nfc.mf(k, l).sigma);
    }
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i)
    EXPECT_DOUBLE_EQ(ha[i], hb[i]);

  // Metrics on an independent evaluation set agree exactly too, whichever
  // executor computes them.
  const auto test = quick_split({300, 50, 60}, 54, 60);
  const auto proj_a = hbrp::core::project_dataset(test, a.projector);
  const auto proj_b = hbrp::core::project_dataset(test, b.projector);
  const hbrp::core::Executor executor(4);
  const auto cm_serial =
      hbrp::core::evaluate(a.nfc, proj_a, a.alpha_train);
  const auto cm_parallel =
      hbrp::core::evaluate(b.nfc, proj_b, b.alpha_train, &executor);
  EXPECT_DOUBLE_EQ(cm_serial.ndr(), cm_parallel.ndr());
  EXPECT_DOUBLE_EQ(cm_serial.arr(), cm_parallel.arr());
}

TEST(Determinism, FitnessIsAPureFunctionOfTheMatrix) {
  const auto ts1 = quick_split({60, 60, 60}, 31, 15);
  const auto ts2 = quick_split({400, 60, 70}, 32, 60);
  const hbrp::core::TwoStepTrainer trainer(ts1, ts2, {});
  hbrp::math::Rng rng(33);
  const auto p = hbrp::rp::make_achlioptas(8, 50, rng);
  const double f1 = trainer.fitness(p);
  const double f2 = trainer.fitness(p);
  EXPECT_DOUBLE_EQ(f1, f2);
}

TEST(Determinism, StreamingConditionerIndependentOfPushGranularity) {
  // Feeding samples one by one is the only interface, but interleaving
  // flush-queries or constructing a fresh conditioner must not change
  // anything — outputs depend only on the input sequence.
  hbrp::math::Rng rng(41);
  hbrp::dsp::Signal x(2000);
  for (auto& v : x) v = static_cast<int>(rng.uniform_int(-400, 400));

  auto run = [&x]() {
    hbrp::dsp::StreamingConditioner cond;
    hbrp::dsp::Signal out;
    for (const auto v : x)
      if (const auto y = cond.push(v)) out.push_back(*y);
    const auto tail = cond.flush();
    out.insert(out.end(), tail.begin(), tail.end());
    return out;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
