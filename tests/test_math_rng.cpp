// Unit and statistical tests for the deterministic PRNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "math/rng.hpp"

namespace {

using hbrp::math::Rng;

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[size_t(i)]);
}

TEST(Rng, ZeroSeedProducesNonZeroState) {
  Rng a(0);
  // A broken all-zero xoshiro state would emit only zeros.
  bool any_nonzero = false;
  for (int i = 0; i < 8; ++i) any_nonzero |= (a.next() != 0);
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformRangeRejectsInvertedBounds) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(1.0, 0.0), hbrp::Error);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(6);
  EXPECT_THROW(rng.uniform_index(0), hbrp::Error);
}

TEST(Rng, UniformIndexUnbiased) {
  // Chi-square-style check on a non-power-of-two range.
  Rng rng(8);
  const std::uint64_t n = 5;
  std::vector<int> counts(n, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(n)];
  for (auto c : counts)
    EXPECT_NEAR(c, draws / double(n), 4.0 * std::sqrt(draws / double(n)));
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(10);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, NormalNegativeStddevThrows) {
  Rng rng(11);
  EXPECT_THROW(rng.normal(0.0, -1.0), hbrp::Error);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(1.0 / 6.0);
  EXPECT_NEAR(hits / double(n), 1.0 / 6.0, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(14);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / double(n), 0.25, 0.02);
  EXPECT_NEAR(counts[2] / double(n), 0.75, 0.02);
}

TEST(Rng, CategoricalInvalidWeightsThrow) {
  Rng rng(15);
  EXPECT_THROW(rng.categorical({}), hbrp::Error);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), hbrp::Error);
  EXPECT_THROW(rng.categorical({1.0, -1.0}), hbrp::Error);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(16);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationEmptyAndSingleton) {
  Rng rng(17);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto p = rng.permutation(1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 0u);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(18);
  // Over many draws every index should visit every position.
  std::vector<std::vector<int>> pos(5, std::vector<int>(5, 0));
  for (int t = 0; t < 2000; ++t) {
    const auto p = rng.permutation(5);
    for (std::size_t i = 0; i < 5; ++i) ++pos[i][p[i]];
  }
  for (const auto& row : pos)
    for (int c : row) EXPECT_GT(c, 0);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(19);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (child1.next() == child2.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
