// Block-vs-sample equivalence gates for the SoA DSP front-end
// (src/kernels/dsp_condition / dsp_wavelet / dsp_peaks).
//
// The refactor's contract is bit-identity: every block kernel must produce
// exactly the output of the per-sample / batch operator it replaces, for any
// input length and any block partition, on both dispatch targets. These
// suites are run twice by scripts/ci.sh — once under the normal dispatcher
// and once with HBRP_FORCE_SCALAR=1 — so a divergence in either code path
// fails CI, not just on AVX2 hosts.
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "core/streaming.hpp"
#include "core/trainer.hpp"
#include "dsp/morphology.hpp"
#include "dsp/peak_detect.hpp"
#include "dsp/streaming.hpp"
#include "dsp/wavelet.hpp"
#include "ecg/dataset.hpp"
#include "ecg/synth.hpp"
#include "kernels/cpu.hpp"
#include "kernels/dsp_condition.hpp"
#include "kernels/dsp_peaks.hpp"
#include "kernels/dsp_wavelet.hpp"
#include "math/rng.hpp"
#include "testing/fault_inject.hpp"

namespace {

using namespace hbrp;

// Lengths straddling every structural edge: empty, shorter than the noise
// element, shorter than the morphology elements, exactly the conditioner
// delay (224 for the default config), one past it, twice it, and long.
const std::size_t kEdgeLengths[] = {0, 1, 2, 5, 70, 223, 224, 448, 449, 1000};

dsp::Signal random_signal(std::size_t n, std::uint64_t seed) {
  dsp::Signal x(n);
  math::Rng rng(seed);
  for (auto& v : x) v = static_cast<int>(rng.uniform_int(-2048, 2047));
  return x;
}

dsp::Signal conditioned_record(ecg::RecordProfile profile, std::uint64_t seed,
                               double seconds = 60.0) {
  ecg::SynthConfig cfg;
  cfg.profile = profile;
  cfg.duration_s = seconds;
  cfg.num_leads = 1;
  cfg.seed = seed;
  return dsp::condition_ecg(ecg::generate_record(cfg).leads[0]);
}

// --- condition_ecg_block vs dsp::condition_ecg -----------------------------

TEST(KernelsDspCondition, BlockMatchesBatchOperatorAcrossLengths) {
  kernels::ConditionScratch scratch;  // reused: stale state must not leak
  dsp::Signal out;
  for (const std::size_t n : kEdgeLengths) {
    const auto x = random_signal(n, 100 + n);
    kernels::condition_ecg_block(x, dsp::FilterConfig{}, scratch, out);
    EXPECT_EQ(out, dsp::condition_ecg(x)) << "length " << n;
  }
}

TEST(KernelsDspCondition, BlockMatchesBatchOperatorForRateConfigs) {
  kernels::ConditionScratch scratch;
  dsp::Signal out;
  for (const int fs : {250, 360, 500}) {
    const auto cfg = dsp::FilterConfig::for_rate(fs);
    const auto x = random_signal(2000, 7 + static_cast<std::uint64_t>(fs));
    kernels::condition_ecg_block(x, cfg, scratch, out);
    EXPECT_EQ(out, dsp::condition_ecg(x, cfg)) << "fs " << fs;
  }
}

TEST(KernelsDspCondition, ErodeDilateBlocksMatchOperators) {
  kernels::ConditionScratch scratch;
  dsp::Signal out;
  const auto x = random_signal(777, 3);
  for (const std::size_t len : {3u, 71u, 151u}) {
    kernels::erode_block(x, len, scratch, out);
    EXPECT_EQ(out, dsp::erode(x, len)) << "erode len " << len;
    kernels::dilate_block(x, len, scratch, out);
    EXPECT_EQ(out, dsp::dilate(x, len)) << "dilate len " << len;
  }
}

TEST(KernelsDspCondition, ScalarAndAvx2AreBitIdentical) {
#if HBRP_KERNELS_X86
  if (!kernels::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  kernels::ConditionScratch s1, s2;
  dsp::Signal a, b;
  for (const std::size_t n : kEdgeLengths) {
    const auto x = random_signal(n, 500 + n);
    kernels::condition_ecg_block_scalar(x, dsp::FilterConfig{}, s1, a);
    kernels::condition_ecg_block_avx2(x, dsp::FilterConfig{}, s2, b);
    EXPECT_EQ(a, b) << "length " << n;
  }
#else
  GTEST_SKIP() << "x86-only comparison";
#endif
}

// --- BlockConditioner vs dsp::StreamingConditioner -------------------------

// Feeds `x` to a BlockConditioner chopped into random pieces with a random
// mix of push / push_block / mid-stream sync calls, then flush_tail; the
// result must equal the per-sample StreamingConditioner output + flush.
TEST(KernelsDspConditioner, MatchesStreamingConditionerUnderRandomPartitions) {
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    math::Rng rng(900 + trial);
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 3000));
    const auto x = random_signal(n, 40 + trial);

    dsp::StreamingConditioner ref;
    dsp::Signal expected;
    for (const auto v : x)
      if (const auto y = ref.push(v)) expected.push_back(*y);
    for (const auto y : ref.flush()) expected.push_back(y);

    kernels::BlockConditioner block;
    dsp::Signal got;
    std::size_t i = 0;
    while (i < n) {
      const int action = static_cast<int>(rng.uniform_int(0, 3));
      if (action == 0) {
        block.push(x[i++], got);
      } else if (action == 1) {
        const auto take = std::min<std::size_t>(
            n - i, static_cast<std::size_t>(rng.uniform_int(1, 700)));
        block.push_block(std::span<const dsp::Sample>(x.data() + i, take),
                         got);
        i += take;
      } else {
        block.sync(got);
      }
    }
    block.flush_tail(got);
    EXPECT_EQ(got, expected) << "trial " << trial << " n " << n;
  }
}

TEST(KernelsDspConditioner, ReusableAfterFlushTail) {
  kernels::BlockConditioner block;
  const auto x = random_signal(1500, 77);
  dsp::Signal first, second;
  block.push_block(std::span<const dsp::Sample>(x), first);
  block.flush_tail(first);
  block.push_block(std::span<const dsp::Sample>(x), second);
  block.flush_tail(second);
  EXPECT_EQ(first, second);

  dsp::Signal after_reset;
  block.push_block(std::span<const dsp::Sample>(x.data(), 700), after_reset);
  block.reset();  // drop mid-stream state entirely
  after_reset.clear();
  block.push_block(std::span<const dsp::Sample>(x), after_reset);
  block.flush_tail(after_reset);
  EXPECT_EQ(after_reset, first);
}

TEST(KernelsDspConditioner, DelayAndMemoryContract) {
  const kernels::BlockConditioner block;
  const dsp::StreamingConditioner ref;
  EXPECT_EQ(block.delay(), ref.delay());
  EXPECT_GT(block.batch_slack(), 0u);
  // The monitor budgets this figure; it must bound history + pending.
  EXPECT_EQ(block.memory_samples(), 2 * block.delay() + 256);
}

// --- wavelet_decompose_block vs dsp::wavelet_decompose ---------------------

TEST(KernelsDspWavelet, BlockMatchesBatchAcrossLengthsAndScales) {
  kernels::WaveletScratch scratch;
  dsp::WaveletDecomposition out;
  for (const std::size_t n : {0u, 1u, 2u, 7u, 15u, 100u, 1000u, 10800u}) {
    const auto x = random_signal(n, 60 + n);
    for (std::size_t scales = 1; scales <= dsp::kWaveletScales; ++scales) {
      kernels::wavelet_decompose_block(x, scales, scratch, out);
      const auto ref = dsp::wavelet_decompose(x, scales);
      for (std::size_t j = 0; j < dsp::kWaveletScales; ++j)
        EXPECT_EQ(out.detail[j], ref.detail[j])
            << "n " << n << " scales " << scales << " detail " << j;
      EXPECT_EQ(out.approx, ref.approx) << "n " << n << " scales " << scales;
    }
  }
}

TEST(KernelsDspWavelet, ScalarAndAvx2AreBitIdentical) {
#if HBRP_KERNELS_X86
  if (!kernels::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  kernels::WaveletScratch s1, s2;
  dsp::WaveletDecomposition a, b;
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    math::Rng rng(300 + trial);
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 5000));
    const auto x = random_signal(n, 800 + trial);
    kernels::wavelet_decompose_block_scalar(x, dsp::kWaveletScales, s1, a);
    kernels::wavelet_decompose_block_avx2(x, dsp::kWaveletScales, s2, b);
    for (std::size_t j = 0; j < dsp::kWaveletScales; ++j)
      EXPECT_EQ(a.detail[j], b.detail[j]) << "trial " << trial;
    EXPECT_EQ(a.approx, b.approx) << "trial " << trial;
  }
#else
  GTEST_SKIP() << "x86-only comparison";
#endif
}

// --- detect_r_peaks_block vs dsp::detect_r_peaks ---------------------------

TEST(KernelsDspPeaks, BlockDetectorMatchesReferenceOnRecords) {
  const ecg::RecordProfile profiles[] = {
      ecg::RecordProfile::NormalSinus, ecg::RecordProfile::PvcOccasional,
      ecg::RecordProfile::PvcBigeminy, ecg::RecordProfile::Lbbb};
  kernels::PeakScratch scratch;  // reused across records on purpose
  std::vector<std::size_t> peaks;
  for (const auto profile : profiles) {
    for (const std::uint64_t seed : {11u, 12u}) {
      const auto sig = conditioned_record(profile, seed);
      kernels::detect_r_peaks_block(sig, dsp::PeakDetectorConfig{}, scratch,
                                    peaks);
      EXPECT_EQ(peaks, dsp::detect_r_peaks(sig))
          << "profile " << static_cast<int>(profile) << " seed " << seed;
    }
  }
}

TEST(KernelsDspPeaks, BlockDetectorHandlesDegenerateInputs) {
  kernels::PeakScratch scratch;
  std::vector<std::size_t> peaks;
  for (const std::size_t n : {0u, 1u, 5u, 64u}) {
    const dsp::Signal flat(n, 0);
    kernels::detect_r_peaks_block(flat, dsp::PeakDetectorConfig{}, scratch,
                                  peaks);
    EXPECT_EQ(peaks, dsp::detect_r_peaks(flat)) << "flat n " << n;
  }
}

TEST(KernelsDspPeaks, AdaptiveDetectorRespectsRefractoryAndOrdering) {
  const auto sig = conditioned_record(ecg::RecordProfile::NormalSinus, 21);
  dsp::PeakDetectorConfig cfg;
  cfg.kind = dsp::PeakDetectorKind::AdaptiveThreshold;
  kernels::PeakScratch scratch;
  std::vector<std::size_t> peaks;
  kernels::detect_r_peaks_kind(sig, cfg, scratch, peaks);
  ASSERT_FALSE(peaks.empty());
  const auto refractory =
      static_cast<std::size_t>(cfg.refractory_s * cfg.fs_hz);
  for (std::size_t i = 1; i < peaks.size(); ++i) {
    EXPECT_LT(peaks[i - 1], peaks[i]);
    EXPECT_GE(peaks[i] - peaks[i - 1], refractory);
  }
  // 60 s of clean 75 bpm sinus: the fast path must see roughly every beat.
  EXPECT_GE(peaks.size(), 60u);
  EXPECT_LE(peaks.size(), 110u);
}

TEST(KernelsDspPeaks, KindDispatchSelectsDetector) {
  const auto sig = conditioned_record(ecg::RecordProfile::PvcOccasional, 5);
  kernels::PeakScratch scratch;
  std::vector<std::size_t> by_kind, direct;
  dsp::PeakDetectorConfig cfg;  // kind defaults to Wavelet
  kernels::detect_r_peaks_kind(sig, cfg, scratch, by_kind);
  kernels::detect_r_peaks_block(sig, cfg, scratch, direct);
  EXPECT_EQ(by_kind, direct);
  cfg.kind = dsp::PeakDetectorKind::AdaptiveThreshold;
  kernels::detect_r_peaks_kind(sig, cfg, scratch, by_kind);
  kernels::detect_r_peaks_adaptive(sig, cfg, scratch, direct);
  EXPECT_EQ(by_kind, direct);
}

// --- StreamingBeatMonitor: push_block vs per-sample push -------------------

class KernelsDspMonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecg::DatasetBuilderConfig cfg;
    cfg.record_duration_s = 120.0;
    cfg.max_per_record_per_class = 20;
    cfg.seed = 81;
    const auto ts1 = ecg::build_dataset({150, 150, 150}, cfg);
    cfg.max_per_record_per_class = 80;
    cfg.seed = 82;
    const auto ts2 = ecg::build_dataset({1200, 120, 150}, cfg);
    core::TwoStepConfig tcfg;
    tcfg.ga.population = 4;
    tcfg.ga.generations = 2;
    tcfg.seed = 8;
    const core::TwoStepTrainer trainer(ts1, ts2, tcfg);
    bundle_ = new embedded::EmbeddedClassifier(trainer.run().quantize());
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }
  static const embedded::EmbeddedClassifier* bundle_;
};

const embedded::EmbeddedClassifier* KernelsDspMonitorTest::bundle_ = nullptr;

// The faulted double stream exercises the sanitizer, the SQI state machine
// and the conditioner resets together; the beat stream must not depend on
// how the caller batches samples.
TEST_F(KernelsDspMonitorTest, PushBlockMatchesPerSampleUnderFaults) {
  ecg::SynthConfig scfg;
  scfg.profile = ecg::RecordProfile::PvcOccasional;
  scfg.duration_s = 90.0;
  scfg.num_leads = 1;
  scfg.seed = 2026;
  const auto rec = ecg::generate_record(scfg);
  const auto& lead = rec.leads[0];
  const auto fs = static_cast<std::size_t>(rec.fs_hz);

  const auto make_stream = [&] {
    hbrp::testing::FaultInjectorConfig fcfg;
    fcfg.seed = 99;
    fcfg.events = {
        {hbrp::testing::FaultKind::LeadOff, lead.size() / 4, 6 * fs, 0.0, 0.0},
        {hbrp::testing::FaultKind::Saturation, lead.size() / 2, 4 * fs, 0.0, 0.0},
        {hbrp::testing::FaultKind::NonFinite, 3 * lead.size() / 4, 2 * fs, 0.0,
         0.25},
    };
    hbrp::testing::FaultInjector injector(fcfg);
    std::vector<double> stream;
    for (const auto x : lead)
      for (const double y : injector.feed(x)) stream.push_back(y);
    return stream;
  };
  const auto stream = make_stream();

  struct Seen {
    std::size_t r_peak;
    ecg::BeatClass predicted;
    dsp::SignalQuality quality;
    bool operator==(const Seen&) const = default;
  };
  const auto run = [&](auto&& feed) {
    core::StreamingBeatMonitor monitor(*bundle_);
    std::vector<Seen> seen;
    const core::BeatSink sink = [&](const core::MonitorBeat& b) {
      seen.push_back({b.r_peak, b.predicted, b.quality});
    };
    feed(monitor, sink);
    monitor.flush(sink);
    return seen;
  };

  const auto per_sample =
      run([&](core::StreamingBeatMonitor& m, const core::BeatSink& sink) {
        for (const double x : stream) m.push(x, sink);
      });
  ASSERT_FALSE(per_sample.empty());

  // Fixed large blocks, tiny blocks, and randomly ragged blocks must all
  // reproduce the per-sample beat stream exactly.
  for (const std::uint64_t mode : {0u, 1u, 2u}) {
    const auto blocked = run([&](core::StreamingBeatMonitor& m,
                                 const core::BeatSink& sink) {
      math::Rng rng(55 + mode);
      std::size_t i = 0;
      while (i < stream.size()) {
        std::size_t take = mode == 0   ? 1024
                           : mode == 1 ? 3
                                       : static_cast<std::size_t>(
                                             rng.uniform_int(1, 2000));
        take = std::min(take, stream.size() - i);
        m.push_block(std::span<const double>(stream.data() + i, take), sink);
        i += take;
      }
    });
    EXPECT_EQ(blocked, per_sample) << "mode " << mode;
  }
}

}  // namespace
