// Tests for Achlioptas random projections: generation, packing, projection
// paths and Johnson-Lindenstrauss behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "math/check.hpp"
#include "rp/achlioptas.hpp"
#include "rp/packed_matrix.hpp"
#include "rp/projector.hpp"

namespace {

using hbrp::math::Rng;
using hbrp::rp::make_achlioptas;
using hbrp::rp::PackedTernaryMatrix;
using hbrp::rp::TernaryMatrix;

TEST(Achlioptas, ElementDistribution) {
  Rng rng(1);
  int plus = 0, minus = 0, zero = 0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const auto e = hbrp::rp::sample_achlioptas_element(rng);
    plus += (e == 1);
    minus += (e == -1);
    zero += (e == 0);
  }
  EXPECT_NEAR(plus / double(n), 1.0 / 6.0, 0.01);
  EXPECT_NEAR(minus / double(n), 1.0 / 6.0, 0.01);
  EXPECT_NEAR(zero / double(n), 2.0 / 3.0, 0.01);
}

TEST(Achlioptas, MatrixShapeAndDensity) {
  Rng rng(2);
  const TernaryMatrix p = make_achlioptas(8, 50, rng);
  EXPECT_EQ(p.rows(), 8u);
  EXPECT_EQ(p.cols(), 50u);
  EXPECT_NEAR(p.density(), 1.0 / 3.0, 0.12);
}

TEST(Achlioptas, DeterministicInRng) {
  Rng a(3), b(3);
  EXPECT_EQ(make_achlioptas(4, 10, a), make_achlioptas(4, 10, b));
}

TEST(Achlioptas, EmptyShapeThrows) {
  Rng rng(4);
  EXPECT_THROW(make_achlioptas(0, 10, rng), hbrp::Error);
  EXPECT_THROW(make_achlioptas(4, 0, rng), hbrp::Error);
}

TEST(TernaryMat, SetValidatesValues) {
  TernaryMatrix m(2, 2);
  EXPECT_NO_THROW(m.set(0, 0, 1));
  EXPECT_NO_THROW(m.set(0, 1, -1));
  EXPECT_THROW(m.set(1, 0, 2), hbrp::Error);
  EXPECT_THROW(m.set(2, 0, 1), hbrp::Error);
}

TEST(TernaryMat, ApplyMatchesHandComputation) {
  TernaryMatrix m(2, 3);
  m.set(0, 0, 1);
  m.set(0, 2, -1);
  m.set(1, 1, 1);
  const std::vector<double> v = {3.0, 5.0, 7.0};
  const auto u = m.apply(std::span<const double>(v));
  ASSERT_EQ(u.size(), 2u);
  EXPECT_DOUBLE_EQ(u[0], -4.0);
  EXPECT_DOUBLE_EQ(u[1], 5.0);
}

TEST(TernaryMat, IntAndDoubleApplyAgree) {
  Rng rng(5);
  const TernaryMatrix p = make_achlioptas(8, 50, rng);
  hbrp::dsp::Signal iv(50);
  std::vector<double> dv(50);
  for (std::size_t i = 0; i < 50; ++i) {
    iv[i] = static_cast<int>(rng.uniform_int(-1024, 1023));
    dv[i] = static_cast<double>(iv[i]);
  }
  const auto ui = p.apply(std::span<const hbrp::dsp::Sample>(iv));
  const auto ud = p.apply(std::span<const double>(dv));
  for (std::size_t r = 0; r < 8; ++r)
    EXPECT_DOUBLE_EQ(static_cast<double>(ui[r]), ud[r]);
}

TEST(TernaryMat, ToMatRoundValues) {
  Rng rng(6);
  const TernaryMatrix p = make_achlioptas(3, 4, rng);
  const auto m = p.to_mat();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_DOUBLE_EQ(m.at(r, c), static_cast<double>(p.at(r, c)));
}

TEST(Packed, RoundTripExact) {
  Rng rng(7);
  const TernaryMatrix p = make_achlioptas(16, 53, rng);  // odd col count
  const PackedTernaryMatrix packed(p);
  EXPECT_EQ(packed.unpack(), p);
  for (std::size_t r = 0; r < p.rows(); ++r)
    for (std::size_t c = 0; c < p.cols(); ++c)
      EXPECT_EQ(packed.at(r, c), p.at(r, c));
}

TEST(Packed, MemoryIsQuarterOfBytePerElement) {
  Rng rng(8);
  const TernaryMatrix p = make_achlioptas(8, 48, rng);
  const PackedTernaryMatrix packed(p);
  // 48 cols -> 12 bytes per row -> 96 bytes total vs 384 at 1 byte/elem.
  EXPECT_EQ(packed.memory_bytes(), 8u * 12u);
  EXPECT_EQ(packed.memory_bytes() * 4, p.rows() * p.cols());
}

TEST(Packed, ApplyMatchesDense) {
  Rng rng(9);
  const TernaryMatrix p = make_achlioptas(32, 50, rng);
  const PackedTernaryMatrix packed(p);
  hbrp::dsp::Signal v(50);
  for (auto& x : v) x = static_cast<int>(rng.uniform_int(-2048, 2047));
  EXPECT_EQ(packed.apply(v), p.apply(std::span<const hbrp::dsp::Sample>(v)));
}

TEST(Packed, AtOutOfRangeThrows) {
  Rng rng(10);
  const PackedTernaryMatrix packed(make_achlioptas(2, 5, rng));
  EXPECT_THROW(packed.at(2, 0), hbrp::Error);
  EXPECT_THROW(packed.at(0, 5), hbrp::Error);
}

TEST(Jl, DistortionNearOneForLargeK) {
  // With k = 32 the JL estimate should concentrate near 1.
  Rng rng(11);
  const TernaryMatrix p = make_achlioptas(32, 200, rng);
  hbrp::math::Mat points(20, 200);
  for (auto& v : points.flat()) v = rng.normal();
  const auto stats = hbrp::rp::jl_distortion(p, points);
  EXPECT_NEAR(stats.mean, 1.0, 0.1);
  EXPECT_GT(stats.min, 0.5);
  EXPECT_LT(stats.max, 1.6);
}

TEST(Jl, SmallerKHasWiderSpread) {
  Rng rng(12);
  hbrp::math::Mat points(20, 200);
  for (auto& v : points.flat()) v = rng.normal();
  const auto s8 = hbrp::rp::jl_distortion(make_achlioptas(8, 200, rng), points);
  const auto s64 =
      hbrp::rp::jl_distortion(make_achlioptas(64, 200, rng), points);
  EXPECT_GT(s8.max - s8.min, s64.max - s64.min);
}

TEST(Jl, InvalidInputsThrow) {
  Rng rng(13);
  const TernaryMatrix p = make_achlioptas(4, 10, rng);
  hbrp::math::Mat wrong_dim(5, 9);
  EXPECT_THROW(hbrp::rp::jl_distortion(p, wrong_dim), hbrp::Error);
  hbrp::math::Mat one_point(1, 10);
  EXPECT_THROW(hbrp::rp::jl_distortion(p, one_point), hbrp::Error);
  hbrp::math::Mat identical(3, 10);  // all-zero rows -> no valid pairs
  EXPECT_THROW(hbrp::rp::jl_distortion(p, identical), hbrp::Error);
}

TEST(Projector, WindowChainDimensions) {
  Rng rng(14);
  hbrp::rp::BeatProjector proj(make_achlioptas(8, 50, rng), 4);
  EXPECT_EQ(proj.coefficients(), 8u);
  EXPECT_EQ(proj.expected_window(), 200u);
  hbrp::dsp::Signal window(200, 100);
  EXPECT_EQ(proj.project(window).size(), 8u);
  EXPECT_EQ(proj.project_int(window).size(), 8u);
}

TEST(Projector, FloatAndIntPathsAgree) {
  Rng rng(15);
  hbrp::rp::BeatProjector proj(make_achlioptas(16, 50, rng), 4);
  hbrp::dsp::Signal window(200);
  for (auto& x : window) x = static_cast<int>(rng.uniform_int(-900, 900));
  const auto fd = proj.project(window);
  const auto fi = proj.project_int(window);
  for (std::size_t i = 0; i < fd.size(); ++i)
    EXPECT_DOUBLE_EQ(fd[i], static_cast<double>(fi[i]));
}

TEST(Projector, WrongWindowSizeThrows) {
  Rng rng(16);
  hbrp::rp::BeatProjector proj(make_achlioptas(8, 50, rng), 4);
  hbrp::dsp::Signal bad(199, 0);
  EXPECT_THROW(proj.project(bad), hbrp::Error);
  EXPECT_THROW(proj.project_int(bad), hbrp::Error);
}

TEST(Projector, DownsampleOneIsDirectProjection) {
  Rng rng(17);
  const TernaryMatrix p = make_achlioptas(8, 50, rng);
  hbrp::rp::BeatProjector proj(p, 1);
  EXPECT_EQ(proj.expected_window(), 50u);
  hbrp::dsp::Signal window(50);
  for (auto& x : window) x = static_cast<int>(rng.uniform_int(-100, 100));
  const auto direct = p.apply(std::span<const hbrp::dsp::Sample>(window));
  EXPECT_EQ(proj.project_int(window), direct);
}

}  // namespace
