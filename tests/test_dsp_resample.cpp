// Tests for integer resampling and window extraction.
#include <gtest/gtest.h>

#include "dsp/resample.hpp"
#include "math/check.hpp"

namespace {

using hbrp::dsp::Signal;

TEST(Resample, DownsampleAveragesGroups) {
  const Signal x = {1, 3, 5, 7, 10, 14};
  const Signal y = hbrp::dsp::downsample_avg(x, 2);
  const Signal expect = {2, 6, 12};
  EXPECT_EQ(y, expect);
}

TEST(Resample, DownsampleRoundsToNearest) {
  const Signal x = {1, 2};  // mean 1.5 -> 2
  EXPECT_EQ(hbrp::dsp::downsample_avg(x, 2)[0], 2);
  const Signal neg = {-1, -2};  // mean -1.5 -> -2 (symmetric)
  EXPECT_EQ(hbrp::dsp::downsample_avg(neg, 2)[0], -2);
}

TEST(Resample, DownsamplePartialTail) {
  const Signal x = {4, 4, 4, 10};
  const Signal y = hbrp::dsp::downsample_avg(x, 3);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_EQ(y[0], 4);
  EXPECT_EQ(y[1], 10);  // tail group of one
}

TEST(Resample, FactorOneIsIdentity) {
  const Signal x = {1, 2, 3};
  EXPECT_EQ(hbrp::dsp::downsample_avg(x, 1), x);
  EXPECT_EQ(hbrp::dsp::decimate(x, 1), x);
}

TEST(Resample, FactorZeroThrows) {
  const Signal x = {1};
  EXPECT_THROW(hbrp::dsp::downsample_avg(x, 0), hbrp::Error);
  EXPECT_THROW(hbrp::dsp::decimate(x, 0), hbrp::Error);
}

TEST(Resample, DecimateTakesEveryNth) {
  const Signal x = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  const Signal y = hbrp::dsp::decimate(x, 4);
  const Signal expect = {0, 4, 8};
  EXPECT_EQ(y, expect);
}

TEST(Resample, PaperWindowSizes) {
  // 200-sample beat window at 360 Hz downsampled 4x -> 50 samples at 90 Hz.
  const Signal window(200, 1);
  EXPECT_EQ(hbrp::dsp::downsample_avg(window, 4).size(), 50u);
  EXPECT_EQ(hbrp::dsp::decimate(window, 4).size(), 50u);
}

TEST(Window, ExtractCentered) {
  Signal x(100);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<int>(i);
  const Signal w = hbrp::dsp::extract_window(x, 50, 10, 10);
  ASSERT_EQ(w.size(), 20u);
  EXPECT_EQ(w[0], 40);
  EXPECT_EQ(w[10], 50);  // peak sits at index `before`
  EXPECT_EQ(w[19], 59);
}

TEST(Window, ClampsAtBorders) {
  Signal x = {7, 8, 9};
  const Signal w = hbrp::dsp::extract_window(x, 0, 2, 3);
  const Signal expect = {7, 7, 7, 8, 9};
  EXPECT_EQ(w, expect);
  const Signal w2 = hbrp::dsp::extract_window(x, 2, 1, 3);
  const Signal expect2 = {8, 9, 9, 9};
  EXPECT_EQ(w2, expect2);
}

TEST(Window, InvalidArgsThrow) {
  Signal x = {1, 2, 3};
  EXPECT_THROW(hbrp::dsp::extract_window({}, 0, 1, 1), hbrp::Error);
  EXPECT_THROW(hbrp::dsp::extract_window(x, 3, 1, 1), hbrp::Error);
}

}  // namespace
