// Unit tests for streaming statistics, percentiles and histograms.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "math/rng.hpp"
#include "math/stats.hpp"

namespace {

using hbrp::math::RunningStats;

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, StableForShiftedData) {
  // Welford should not lose precision with a large offset.
  RunningStats s;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(s.variance(), 1.001, 0.01);
}

TEST(RunningStats, MergeEqualsSequential) {
  hbrp::math::Rng rng(2);
  RunningStats all, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 250 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(Percentile, KnownValues) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(hbrp::math::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(hbrp::math::percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(hbrp::math::percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(hbrp::math::percentile(xs, 25), 2.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(hbrp::math::percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(hbrp::math::percentile(xs, 10), 1.0);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> xs = {9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(hbrp::math::median(xs), 5.0);
}

TEST(Percentile, InvalidArgsThrow) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(hbrp::math::percentile({}, 50), hbrp::Error);
  EXPECT_THROW(hbrp::math::percentile(xs, -1), hbrp::Error);
  EXPECT_THROW(hbrp::math::percentile(xs, 101), hbrp::Error);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(hbrp::math::pearson(a, b), 1.0, 1e-12);
  std::vector<double> c = {-2, -4, -6, -8};
  EXPECT_NEAR(hbrp::math::pearson(a, c), -1.0, 1e-12);
}

TEST(Pearson, IndependentSeriesNearZero) {
  hbrp::math::Rng rng(5);
  std::vector<double> a(5000), b(5000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.normal();
    b[i] = rng.normal();
  }
  EXPECT_NEAR(hbrp::math::pearson(a, b), 0.0, 0.05);
}

TEST(Pearson, ConstantSeriesThrows) {
  const std::vector<double> a = {1, 1, 1};
  const std::vector<double> b = {1, 2, 3};
  EXPECT_THROW(hbrp::math::pearson(a, b), hbrp::Error);
}

TEST(Histogram, CountsAndClamping) {
  const std::vector<double> xs = {-10.0, 0.1, 0.4, 0.6, 0.9, 10.0};
  const auto h = hbrp::math::histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 3u);  // -10 clamped into first bin
  EXPECT_EQ(h[1], 3u);  // +10 clamped into last bin
}

TEST(Histogram, InvalidArgsThrow) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(hbrp::math::histogram(xs, 0.0, 1.0, 0), hbrp::Error);
  EXPECT_THROW(hbrp::math::histogram(xs, 1.0, 0.0, 4), hbrp::Error);
}

}  // namespace
