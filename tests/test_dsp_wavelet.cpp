// Tests for the à-trous quadratic-spline wavelet decomposition.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dsp/wavelet.hpp"
#include "math/check.hpp"
#include "math/rng.hpp"

namespace {

using hbrp::dsp::Signal;
using hbrp::dsp::wavelet_decompose;

TEST(Wavelet, OutputsMatchInputLength) {
  const Signal x(1000, 7);
  const auto dec = wavelet_decompose(x);
  for (const auto& d : dec.detail) EXPECT_EQ(d.size(), x.size());
  EXPECT_EQ(dec.approx.size(), x.size());
}

TEST(Wavelet, ConstantSignalHasZeroDetails) {
  const Signal x(500, 123);
  const auto dec = wavelet_decompose(x);
  for (const auto& d : dec.detail)
    for (auto v : d) EXPECT_EQ(v, 0);
  for (auto v : dec.approx) EXPECT_EQ(v, 123);
}

TEST(Wavelet, ScalesParameterValidated) {
  const Signal x(100, 0);
  EXPECT_THROW(wavelet_decompose(x, 0), hbrp::Error);
  EXPECT_THROW(wavelet_decompose(x, 5), hbrp::Error);
  EXPECT_NO_THROW(wavelet_decompose(x, 2));
}

TEST(Wavelet, LinearityOfDetails) {
  hbrp::math::Rng rng(1);
  Signal a(400), b(400);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<int>(rng.uniform_int(-200, 200));
    b[i] = static_cast<int>(rng.uniform_int(-200, 200));
  }
  Signal sum(400);
  for (std::size_t i = 0; i < a.size(); ++i) sum[i] = a[i] + b[i];
  const auto da = wavelet_decompose(a);
  const auto db = wavelet_decompose(b);
  const auto ds = wavelet_decompose(sum);
  // The highpass stage is exactly linear; the lowpass rounding introduces
  // +-1 per level, so allow a small tolerance at deeper scales.
  for (std::size_t j = 0; j < hbrp::dsp::kWaveletScales; ++j) {
    for (std::size_t i = 50; i + 50 < a.size(); ++i) {
      EXPECT_NEAR(ds.detail[j][i], da.detail[j][i] + db.detail[j][i],
                  j == 0 ? 0 : 24)
          << "scale " << j << " sample " << i;
    }
  }
}

TEST(Wavelet, StepProducesAlignedExtremum) {
  // A rising step at index 500 should produce a positive detail extremum
  // near 500 at every scale (delay compensation keeps them aligned).
  Signal x(1000, 0);
  for (std::size_t i = 500; i < x.size(); ++i) x[i] = 400;
  const auto dec = wavelet_decompose(x);
  for (std::size_t j = 0; j < hbrp::dsp::kWaveletScales; ++j) {
    const auto& d = dec.detail[j];
    const auto it = std::max_element(d.begin() + 400, d.begin() + 600);
    const auto pos = static_cast<std::size_t>(it - d.begin());
    EXPECT_NEAR(static_cast<double>(pos), 500.0, 1 << (j + 1))
        << "scale " << j;
    EXPECT_GT(*it, 0);
  }
}

TEST(Wavelet, RPeakGeneratesOppositeSignPair) {
  // A triangular "R wave": the detail signal should show a +/- modulus
  // maxima pair bracketing the apex, with a zero crossing near it.
  Signal x(2000, 0);
  const std::size_t c = 1000;
  for (int k = -10; k <= 10; ++k)
    x[c + static_cast<std::size_t>(k) + 10 - 10] = 500 - 50 * std::abs(k);
  const auto dec = wavelet_decompose(x);
  const auto& w = dec.detail[2];
  const auto max_it = std::max_element(w.begin() + 900, w.begin() + 1100);
  const auto min_it = std::min_element(w.begin() + 900, w.begin() + 1100);
  EXPECT_GT(*max_it, 0);
  EXPECT_LT(*min_it, 0);
  const auto max_pos = max_it - w.begin();
  const auto min_pos = min_it - w.begin();
  EXPECT_LT(max_pos, min_pos);  // rising slope first, then falling
  EXPECT_NEAR(static_cast<double>(max_pos + min_pos) / 2.0, 1000.0, 12.0);
}

TEST(Wavelet, DeeperScalesRespondToSlowerFeatures) {
  // A slow sinusoid should put far more energy in scale 4 than scale 1.
  Signal x(4000);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<int>(300.0 * std::sin(2.0 * 3.14159265 * i / 180.0));
  const auto dec = wavelet_decompose(x);
  auto energy = [](const Signal& s) {
    double e = 0;
    for (std::size_t i = 200; i + 200 < s.size(); ++i)
      e += double(s[i]) * s[i];
    return e;
  };
  EXPECT_GT(energy(dec.detail[3]), 20.0 * energy(dec.detail[0]));
}

TEST(Wavelet, EmptyAndTinySignals) {
  EXPECT_NO_THROW(wavelet_decompose(Signal{}));
  EXPECT_NO_THROW(wavelet_decompose(Signal{1, 2, 3}));
}

}  // namespace
