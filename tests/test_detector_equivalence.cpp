// Accuracy gate for the adaptive-threshold R-peak fast path against the
// paper's wavelet detector (ISSUE: the adaptive detector is selectable per
// session, so it must be demonstrably interchangeable before a deployment
// flips the switch).
//
// The gates are deliberately RELATIVE: both detectors share one known blind
// spot (apex-polarity confusion on some LBBB seeds drops both below 0.4
// sensitivity), so a hard absolute per-record floor would pin the test to
// synth-generator quirks rather than to the detectors. Instead we require
// (a) aggregate sensitivity/precision against annotated truth within a small
// margin of the wavelet detector across a profile sweep, and (b) high direct
// peak-for-peak agreement between the two detectors on every clean record
// and across the adversarial scenario suite.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "dsp/morphology.hpp"
#include "dsp/peak_detect.hpp"
#include "ecg/synth.hpp"
#include "kernels/dsp_condition.hpp"
#include "kernels/dsp_peaks.hpp"
#include "scenario/episodes.hpp"

namespace {

using namespace hbrp;

struct Counts {
  std::size_t tp = 0, fp = 0, fn = 0;
  void add(const dsp::PeakMatchStats& s) {
    tp += s.true_positive;
    fp += s.false_positive;
    fn += s.false_negative;
  }
  double sensitivity() const {
    return tp + fn == 0 ? 1.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fn);
  }
  double precision() const {
    return tp + fp == 0 ? 1.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fp);
  }
};

std::vector<std::size_t> detect(const dsp::Signal& conditioned,
                                dsp::PeakDetectorKind kind,
                                kernels::PeakScratch& scratch) {
  dsp::PeakDetectorConfig cfg;
  cfg.kind = kind;
  std::vector<std::size_t> peaks;
  kernels::detect_r_peaks_kind(conditioned, cfg, scratch, peaks);
  return peaks;
}

TEST(DetectorEquivalence, AdaptiveTracksWaveletAcrossProfiles) {
  const ecg::RecordProfile profiles[] = {
      ecg::RecordProfile::NormalSinus, ecg::RecordProfile::PvcOccasional,
      ecg::RecordProfile::PvcBigeminy, ecg::RecordProfile::Lbbb};
  const std::size_t tol = 18;  // 50 ms at 360 Hz, the usual AAMI window

  kernels::PeakScratch scratch;
  Counts wavelet_vs_truth, adaptive_vs_truth;
  Counts agreement;  // adaptive matched against wavelet directly
  for (const auto profile : profiles) {
    for (const std::uint64_t seed : {3u, 4u, 5u}) {
      ecg::SynthConfig cfg;
      cfg.profile = profile;
      cfg.duration_s = 90.0;
      cfg.num_leads = 1;
      cfg.seed = seed;
      const auto rec = ecg::generate_record(cfg);
      const auto sig = dsp::condition_ecg(rec.leads[0]);

      std::vector<std::size_t> truth;
      for (const auto& b : rec.beats) truth.push_back(b.sample);

      const auto wav = detect(sig, dsp::PeakDetectorKind::Wavelet, scratch);
      const auto ada =
          detect(sig, dsp::PeakDetectorKind::AdaptiveThreshold, scratch);
      wavelet_vs_truth.add(dsp::match_peaks(wav, truth, tol));
      adaptive_vs_truth.add(dsp::match_peaks(ada, truth, tol));
      agreement.add(dsp::match_peaks(ada, wav, tol));
    }
  }

  // The fast path must stay within 3% aggregate sensitivity and 5%
  // aggregate precision of the wavelet detector over the whole sweep.
  EXPECT_GE(adaptive_vs_truth.sensitivity(),
            wavelet_vs_truth.sensitivity() - 0.03)
      << "adaptive Se " << adaptive_vs_truth.sensitivity() << " vs wavelet "
      << wavelet_vs_truth.sensitivity();
  EXPECT_GE(adaptive_vs_truth.precision(),
            wavelet_vs_truth.precision() - 0.05)
      << "adaptive P " << adaptive_vs_truth.precision() << " vs wavelet "
      << wavelet_vs_truth.precision();
  // And the two detectors must be telling the same story beat for beat.
  EXPECT_GE(agreement.sensitivity(), 0.90);
  EXPECT_GE(agreement.precision(), 0.90);
}

TEST(DetectorEquivalence, AdaptiveTracksWaveletOnScenarioSuite) {
  // The adversarial suite streams doubles through the untrusted-ADC
  // boundary; sanitize the way the monitor front door does (non-finite ->
  // hold is overkill here, zero suffices for a detector-level comparison).
  const auto suite = scenario::standard_scenarios(40.0, 2400);
  kernels::PeakScratch peak_scratch;
  kernels::ConditionScratch cond_scratch;
  Counts agreement;
  for (const auto& spec : suite) {
    const auto stream = scenario::build_scenario(spec);
    dsp::Signal raw(stream.samples.size());
    for (std::size_t i = 0; i < stream.samples.size(); ++i) {
      const double x = stream.samples[i];
      raw[i] = std::isfinite(x)
                   ? static_cast<dsp::Sample>(std::lround(
                         std::clamp(x, -32768.0, 32767.0)))
                   : 0;
    }
    dsp::Signal sig;
    kernels::condition_ecg_block(raw, dsp::FilterConfig{}, cond_scratch, sig);

    const auto wav = detect(sig, dsp::PeakDetectorKind::Wavelet, peak_scratch);
    const auto ada =
        detect(sig, dsp::PeakDetectorKind::AdaptiveThreshold, peak_scratch);
    agreement.add(dsp::match_peaks(ada, wav, 18));
  }
  // Artefact storms and electrode drops legitimately make both detectors
  // fire differently inside corrupted stretches; across the whole suite the
  // two must still agree on the overwhelming majority of beats.
  EXPECT_GE(agreement.sensitivity(), 0.80)
      << "suite agreement Se " << agreement.sensitivity();
  EXPECT_GE(agreement.precision(), 0.80)
      << "suite agreement P " << agreement.precision();
}

}  // namespace
