// Tests for the gradient-descent baseline optimizer.
#include <gtest/gtest.h>

#include "math/check.hpp"
#include "opt/gd.hpp"
#include "opt/scg.hpp"

namespace {

using hbrp::opt::GdOptions;
using hbrp::opt::minimize_gd;
using hbrp::opt::Objective;

class Quadratic final : public Objective {
 public:
  Quadratic(std::vector<double> scale, std::vector<double> target)
      : scale_(std::move(scale)), target_(std::move(target)) {}
  std::size_t dimension() const override { return scale_.size(); }
  double eval(std::span<const double> x, std::span<double> g) override {
    double f = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - target_[i];
      f += scale_[i] * d * d;
      g[i] = 2.0 * scale_[i] * d;
    }
    return f;
  }

 private:
  std::vector<double> scale_, target_;
};

class Rosenbrock final : public Objective {
 public:
  explicit Rosenbrock(std::size_t n) : n_(n) {}
  std::size_t dimension() const override { return n_; }
  double eval(std::span<const double> x, std::span<double> g) override {
    double f = 0.0;
    std::fill(g.begin(), g.end(), 0.0);
    for (std::size_t i = 0; i + 1 < n_; ++i) {
      const double a = x[i + 1] - x[i] * x[i];
      const double b = 1.0 - x[i];
      f += 100.0 * a * a + b * b;
      g[i] += -400.0 * a * x[i] - 2.0 * b;
      g[i + 1] += 200.0 * a;
    }
    return f;
  }

 private:
  std::size_t n_;
};

TEST(Gd, SolvesQuadratic) {
  Quadratic q({1.0, 2.0}, {3.0, -1.0});
  std::vector<double> x = {0.0, 0.0};
  GdOptions opt;
  opt.max_iterations = 500;
  const auto r = minimize_gd(q, x, opt);
  EXPECT_NEAR(x[0], 3.0, 1e-3);
  EXPECT_NEAR(x[1], -1.0, 1e-3);
  EXPECT_LT(r.final_loss, 1e-5);
}

TEST(Gd, MonotoneHistory) {
  Rosenbrock f(4);
  std::vector<double> x(4, 0.0);
  const auto r = minimize_gd(f, x);
  for (std::size_t i = 1; i < r.history.size(); ++i)
    EXPECT_LE(r.history[i], r.history[i - 1] + 1e-12);
}

TEST(Gd, BoldDriverRecoversFromTooLargeRate) {
  Quadratic q({100.0}, {1.0});
  std::vector<double> x = {10.0};
  GdOptions opt;
  opt.learning_rate = 1.0;  // way too large; must shrink and still converge
  opt.max_iterations = 300;
  const auto r = minimize_gd(q, x, opt);
  EXPECT_LT(r.final_loss, 1e-4);
}

TEST(Gd, ConvergesAtOptimumImmediately) {
  Quadratic q({1.0}, {0.0});
  std::vector<double> x = {0.0};
  const auto r = minimize_gd(q, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 1);
}

TEST(Gd, ScgReachesLowerLossAtEqualBudget) {
  // The justification for SCG (paper Section II): same objective, same
  // iteration budget, conjugate directions win on curved valleys.
  for (const int budget : {20, 50}) {
    Rosenbrock f(6);
    std::vector<double> x_gd(6, -1.0), x_scg(6, -1.0);
    GdOptions gd_opt;
    gd_opt.max_iterations = budget;
    hbrp::opt::ScgOptions scg_opt;
    scg_opt.max_iterations = budget;
    const auto gd = minimize_gd(f, x_gd, gd_opt);
    const auto scg = hbrp::opt::minimize_scg(f, x_scg, scg_opt);
    EXPECT_LE(scg.final_loss, gd.final_loss * 1.5) << "budget " << budget;
  }
}

TEST(Gd, InvalidOptionsThrow) {
  Quadratic q({1.0}, {0.0});
  std::vector<double> x = {1.0};
  GdOptions opt;
  opt.max_iterations = 0;
  EXPECT_THROW(minimize_gd(q, x, opt), hbrp::Error);
  opt = {};
  opt.learning_rate = 0.0;
  EXPECT_THROW(minimize_gd(q, x, opt), hbrp::Error);
  opt = {};
  opt.momentum = 1.0;
  EXPECT_THROW(minimize_gd(q, x, opt), hbrp::Error);
  std::vector<double> wrong = {1.0, 2.0};
  EXPECT_THROW(minimize_gd(q, wrong, GdOptions{}), hbrp::Error);
}

}  // namespace
