// End-to-end loopback tests for the src/net subsystem: gateway + client
// round trips, verdict bit-identity vs direct FleetEngine ingest across
// thread/shard counts, the selective-transmission policy, corrupted-frame
// rejection, reconnect recovery with at-least-once uploads, admission
// refusal, and session-leak checks.
#include <gtest/gtest.h>

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "ecg/synth.hpp"
#include "net/client.hpp"
#include "net/gateway.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "service/fleet.hpp"

namespace {

using namespace hbrp;
using Clock = std::chrono::steady_clock;

class NetLoopbackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecg::DatasetBuilderConfig cfg;
    cfg.record_duration_s = 120.0;
    cfg.max_per_record_per_class = 20;
    cfg.seed = 181;
    const auto ts1 = ecg::build_dataset({150, 150, 150}, cfg);
    cfg.max_per_record_per_class = 80;
    cfg.seed = 182;
    const auto ts2 = ecg::build_dataset({1200, 120, 150}, cfg);
    core::TwoStepConfig tcfg;
    tcfg.ga.population = 4;
    tcfg.ga.generations = 2;
    tcfg.seed = 18;
    const core::TwoStepTrainer trainer(ts1, ts2, tcfg);
    bundle_ = new embedded::EmbeddedClassifier(trainer.run().quantize());
  }
  static void TearDownTestSuite() {
    delete bundle_;
    bundle_ = nullptr;
  }

  static const embedded::EmbeddedClassifier* bundle_;
};

const embedded::EmbeddedClassifier* NetLoopbackTest::bundle_ = nullptr;

std::vector<double> patient_lead(std::uint64_t seed, double seconds = 30.0) {
  ecg::SynthConfig cfg;
  cfg.profile = seed % 2 == 0 ? ecg::RecordProfile::PvcOccasional
                              : ecg::RecordProfile::NormalSinus;
  cfg.duration_s = seconds;
  cfg.num_leads = 1;
  cfg.seed = seed;
  const auto rec = ecg::generate_record(cfg);
  return {rec.leads[0].begin(), rec.leads[0].end()};
}

/// The exact integer codes a node's double input becomes on the wire.
std::vector<dsp::Sample> wire_codes(const std::vector<double>& lead) {
  const core::MonitorConfig mc;
  std::vector<dsp::Sample> codes;
  codes.reserve(lead.size());
  dsp::Sample last = 0;
  for (const double x : lead)
    codes.push_back(net::SensorNodeClient::sanitize(x, mc.quality, last,
                                                    nullptr));
  return codes;
}

struct VerdictSig {
  std::uint64_t sequence;
  std::uint64_t r_peak;
  std::uint8_t beat_class;
  std::uint8_t quality;
  bool operator==(const VerdictSig&) const = default;
};

/// Reference path: the same sanitized codes offered straight into a
/// FleetEngine session (no sockets), pumped to completion.
std::vector<VerdictSig> direct_ingest(
    const embedded::EmbeddedClassifier& classifier,
    std::span<const dsp::Sample> codes, std::size_t threads,
    std::size_t shards) {
  service::FleetConfig cfg;
  cfg.threads = threads;
  cfg.shards = shards;
  service::FleetEngine engine(classifier, cfg);
  std::vector<VerdictSig> out;
  const auto id =
      engine.open_session([&out](const service::SessionResult& r) {
        out.push_back(VerdictSig{
            r.sequence, static_cast<std::uint64_t>(r.beat.r_peak),
            static_cast<std::uint8_t>(r.beat.predicted),
            static_cast<std::uint8_t>(r.beat.quality)});
      });
  EXPECT_TRUE(id.has_value());
  std::size_t off = 0;
  while (off < codes.size()) {
    const std::size_t n = std::min<std::size_t>(1024, codes.size() - off);
    const auto res = engine.offer(*id, codes.subspan(off, n));
    off += res.accepted;
    engine.pump();
  }
  engine.drain();
  EXPECT_TRUE(engine.close_session(*id));
  return out;
}

/// Gateway on its own serve() thread; stopped and joined on destruction.
struct GatewayHarness {
  net::GatewayServer gw;
  std::thread thread;

  GatewayHarness(const embedded::EmbeddedClassifier& classifier,
                 net::GatewayConfig cfg)
      : gw(classifier, std::move(cfg)),
        thread([this] { gw.serve(); }) {}
  ~GatewayHarness() {
    gw.stop();
    thread.join();
  }
};

bool poll_client_until(net::SensorNodeClient& cl,
                       const std::function<bool()>& done,
                       int budget_ms = 10000) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
  while (Clock::now() < deadline) {
    if (done()) return true;
    cl.poll_once(2);
  }
  return done();
}

/// Waits until the gateway has finalized every connection and session (its
/// serve thread needs a round or two after the last client leaves).
void await_gateway_idle(net::GatewayServer& gw, int budget_ms = 5000) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
  while ((gw.connection_count() != 0 || gw.engine().session_count() != 0) &&
         Clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

TEST_F(NetLoopbackTest, GracefulCloseReleasesConnectionAndSession) {
  GatewayHarness harness(*bundle_, {});
  net::NodeConfig ncfg;
  ncfg.port = harness.gw.port();
  net::SensorNodeClient client(*bundle_, ncfg);
  ASSERT_TRUE(poll_client_until(client, [&] { return client.established(); }));
  EXPECT_EQ(harness.gw.engine().session_count(), 1u);
  client.close(5000);
  EXPECT_EQ(client.state(), net::LinkState::Closed);
  await_gateway_idle(harness.gw);
  EXPECT_EQ(harness.gw.connection_count(), 0u);
  EXPECT_EQ(harness.gw.engine().session_count(), 0u);
  EXPECT_EQ(harness.gw.stats().conns_accepted.load(), 1u);
  EXPECT_EQ(harness.gw.stats().conns_closed.load(), 1u);
}

TEST_F(NetLoopbackTest, StreamEverythingIsBitIdenticalToDirectIngest) {
  const auto lead = patient_lead(7);
  const auto codes = wire_codes(lead);
  const auto reference = direct_ingest(*bundle_, codes, 1, 1);
  ASSERT_FALSE(reference.empty());
  // The engine's own determinism contract, restated here because the wire
  // claim leans on it: any thread/shard count produces the same stream.
  EXPECT_EQ(direct_ingest(*bundle_, codes, 4, 3), reference);

  for (const auto [threads, shards] :
       {std::pair<std::size_t, std::size_t>{1, 1}, {4, 3}}) {
    net::GatewayConfig gcfg;
    gcfg.fleet.threads = threads;
    gcfg.fleet.shards = shards;
    GatewayHarness harness(*bundle_, gcfg);

    net::NodeConfig ncfg;
    ncfg.port = harness.gw.port();
    ncfg.policy = net::TxPolicy::StreamEverything;
    net::SensorNodeClient client(*bundle_, ncfg);
    std::vector<VerdictSig> got;
    client.set_verdict_sink(
        [&got](std::uint64_t seq, const net::BeatVerdictMsg& v) {
          got.push_back(VerdictSig{seq, v.r_peak, v.beat_class, v.quality});
        });

    client.push(std::span<const double>(lead));
    client.finish();
    EXPECT_TRUE(client.drain(20000));
    client.close(5000);

    EXPECT_EQ(client.state(), net::LinkState::Closed);
    EXPECT_EQ(got, reference)
        << "threads=" << threads << " shards=" << shards;
    EXPECT_EQ(client.stats().verdict_seq_gaps, 0u);
    EXPECT_EQ(client.stats().frames_dropped, 0u);
  }
}

TEST_F(NetLoopbackTest, IntegerAndSanitizedDoublePushesAreEquivalent) {
  // The double path may carry non-finite garbage; what crosses the wire is
  // the sanitized code stream, so verdicts must match pushing those codes.
  auto lead = patient_lead(9);
  lead[100] = std::numeric_limits<double>::quiet_NaN();
  lead[101] = std::numeric_limits<double>::infinity();
  lead[500] = 1e12;  // clamped to the rail
  const auto codes = wire_codes(lead);
  const auto reference = direct_ingest(*bundle_, codes, 2, 2);

  GatewayHarness harness(*bundle_, {});
  net::NodeConfig ncfg;
  ncfg.port = harness.gw.port();
  net::SensorNodeClient client(*bundle_, ncfg);
  std::vector<VerdictSig> got;
  client.set_verdict_sink(
      [&got](std::uint64_t seq, const net::BeatVerdictMsg& v) {
        got.push_back(VerdictSig{seq, v.r_peak, v.beat_class, v.quality});
      });
  client.push(std::span<const double>(lead));
  client.finish();
  EXPECT_TRUE(client.drain(20000));
  client.close(5000);

  EXPECT_EQ(got, reference);
  EXPECT_EQ(client.stats().sanitized_nonfinite, 2u);
}

TEST_F(NetLoopbackTest, SelectivePolicyKeepsNormalBeatsLocal) {
  // Mostly-normal rhythm: the node's monitor equals the fleet session's
  // monitor, so the reference run predicts the exact local/upload split.
  const auto lead = patient_lead(9);
  const auto reference = direct_ingest(*bundle_, wire_codes(lead), 1, 1);
  std::size_t expect_local = 0, expect_full = 0, expect_meta = 0;
  for (const auto& r : reference) {
    const bool good = static_cast<dsp::SignalQuality>(r.quality) ==
                      dsp::SignalQuality::Good;
    const bool path =
        ecg::is_pathological(static_cast<ecg::BeatClass>(r.beat_class));
    if (good && !path)
      ++expect_local;  // 1-byte record, zero radio
    else if (good)
      ++expect_full;  // full window upload
    else
      ++expect_meta;  // Suspect signal: escalation metadata, no window
  }
  ASSERT_GT(expect_local, 0u);
  ASSERT_GT(expect_full, 0u);

  GatewayHarness harness(*bundle_, {});
  net::NodeConfig ncfg;
  ncfg.port = harness.gw.port();
  ncfg.policy = net::TxPolicy::Selective;
  ncfg.heartbeat_interval_ms = 0;  // exact byte accounting below
  net::SensorNodeClient client(*bundle_, ncfg);
  std::vector<std::uint64_t> verdict_seqs;
  client.set_verdict_sink(
      [&verdict_seqs](std::uint64_t seq, const net::BeatVerdictMsg&) {
        verdict_seqs.push_back(seq);
      });

  client.push(std::span<const double>(lead));
  client.finish();
  EXPECT_TRUE(client.drain(20000));
  client.close(5000);

  const net::TxStats& s = client.stats();
  EXPECT_EQ(s.beats_local, expect_local);
  EXPECT_EQ(s.beats_uploaded, expect_full + expect_meta);
  EXPECT_EQ(client.local_log().size(), s.beats_local);
  EXPECT_EQ(client.unacked_full_beats(), 0u) << "every upload must be acked";
  // One gateway verdict per distinct upload, in upload order.
  ASSERT_EQ(verdict_seqs.size(), s.beats_uploaded);
  for (std::size_t i = 0; i < verdict_seqs.size(); ++i)
    EXPECT_EQ(verdict_seqs[i], i);
  // Local records carry class+quality in 4 bits; normal beats only.
  for (const std::uint8_t rec : client.local_log()) {
    EXPECT_FALSE(ecg::is_pathological(
        static_cast<ecg::BeatClass>(rec & 0x3u)));
    EXPECT_EQ(static_cast<dsp::SignalQuality>((rec >> 2) & 0x3u),
              dsp::SignalQuality::Good);
  }

  const auto& gs = harness.gw.stats();
  EXPECT_EQ(gs.full_beats_rx.load(), s.beats_uploaded);
  EXPECT_EQ(gs.samples_rx.load(), 0u) << "selective mode ships no raw chunks";

  // Exact bytes-on-wire accounting: HELLO + BYE + one frame per upload —
  // nothing else leaves the node (heartbeats disabled above).
  const std::size_t w = bundle_->projector().expected_window();
  const std::uint64_t expect_bytes =
      (net::kHeaderBytes + 11) + net::kHeaderBytes +
      expect_full * (net::kHeaderBytes + 12 + sizeof(dsp::Sample) * w) +
      expect_meta * (net::kHeaderBytes + 12);
  EXPECT_EQ(s.bytes_tx, expect_bytes);

  // The paper's point: the selective policy costs a fraction of shipping
  // the raw 4-byte-per-sample stream.
  const std::uint64_t stream_everything_bytes =
      static_cast<std::uint64_t>(lead.size()) * sizeof(dsp::Sample);
  EXPECT_LT(s.bytes_tx, stream_everything_bytes / 2);
  const platform::PowerModel power;
  EXPECT_GT(net::radio_energy_j(s, power), 0.0);
  EXPECT_LT(net::radio_energy_j(s, power),
            static_cast<double>(stream_everything_bytes) *
                power.radio_j_per_byte / 2);
}

TEST_F(NetLoopbackTest, GatewayDropsCorruptAndOutOfSeqConnections) {
  GatewayHarness harness(*bundle_, {});
  const std::uint16_t port = harness.gw.port();

  const auto raw_session = [&](const std::vector<unsigned char>& bytes) {
    net::Socket s = net::connect_loopback(port);
    ASSERT_TRUE(s.valid());
    // Loopback connect completes fast; wait for writability then blast.
    pollfd p{};
    p.fd = s.fd();
    p.events = POLLOUT;
    ASSERT_GT(::poll(&p, 1, 2000), 0);
    std::size_t off = 0;
    const auto deadline = Clock::now() + std::chrono::seconds(5);
    while (off < bytes.size() && Clock::now() < deadline) {
      const auto r = net::send_some(
          s.fd(), std::span<const unsigned char>(bytes).subspan(off));
      if (r.n > 0) off += r.n;
      if (r.error) break;
      if (r.would_block) std::this_thread::sleep_for(
          std::chrono::milliseconds(1));
    }
    // The gateway must answer by closing the connection.
    unsigned char buf[512];
    p.events = POLLIN;
    while (Clock::now() < deadline) {
      (void)::poll(&p, 1, 50);
      const auto r = net::recv_some(s.fd(), buf);
      if (r.eof || r.error) return;
      if (r.would_block) continue;
    }
    FAIL() << "gateway did not close the misbehaving connection";
  };

  // 1) Garbage from byte one: parser Corrupt, no session ever opened.
  raw_session(std::vector<unsigned char>(64, 0xA5));

  // 2) Valid HELLO, then a frame whose CRC is wrong.
  {
    net::HelloMsg m;
    m.policy = net::TxPolicy::StreamEverything;
    m.fs_hz = 360;
    std::vector<unsigned char> bytes;
    net::append_frame(bytes, net::FrameType::Hello, 0, net::encode_hello(m));
    const std::size_t mark = bytes.size();
    net::append_frame(bytes, net::FrameType::Heartbeat, 1, {});
    bytes[mark + net::kHeaderBytes - 1] ^= 0xFF;  // corrupt the CRC
    raw_session(bytes);
  }

  // 3) Valid HELLO, then a chunk with a sequence gap.
  {
    net::HelloMsg m;
    m.policy = net::TxPolicy::StreamEverything;
    m.fs_hz = 360;
    std::vector<unsigned char> bytes;
    net::append_frame(bytes, net::FrameType::Hello, 0, net::encode_hello(m));
    const std::vector<dsp::Sample> codes(16, 100);
    net::append_frame(bytes, net::FrameType::SampleChunk, 5,
                      net::encode_sample_chunk(codes));
    raw_session(bytes);
  }

  // 4) Selective HELLO with a window the gateway's model cannot accept.
  {
    net::HelloMsg m;
    m.policy = net::TxPolicy::Selective;
    m.window = static_cast<std::uint16_t>(
        bundle_->projector().expected_window() + 7);
    m.fs_hz = 360;
    std::vector<unsigned char> bytes;
    net::append_frame(bytes, net::FrameType::Hello, 0, net::encode_hello(m));
    raw_session(bytes);
  }

  // Give the gateway a beat to finish closing, then check the books: every
  // abuse was counted, nothing crashed, and no session leaked.
  await_gateway_idle(harness.gw);
  EXPECT_EQ(harness.gw.connection_count(), 0u);
  EXPECT_EQ(harness.gw.engine().session_count(), 0u);
  const auto& gs = harness.gw.stats();
  EXPECT_GE(gs.frame_rejects.load(), 2u);   // garbage + bad CRC
  EXPECT_GE(gs.seq_rejects.load(), 1u);     // the chunk gap
  EXPECT_GE(gs.conns_dropped_protocol.load(), 3u);

  // A well-behaved client still gets full service afterwards.
  const auto lead = patient_lead(3, 10.0);
  const auto reference = direct_ingest(*bundle_, wire_codes(lead), 1, 1);
  net::NodeConfig ncfg;
  ncfg.port = port;
  net::SensorNodeClient client(*bundle_, ncfg);
  std::vector<VerdictSig> got;
  client.set_verdict_sink(
      [&got](std::uint64_t seq, const net::BeatVerdictMsg& v) {
        got.push_back(VerdictSig{seq, v.r_peak, v.beat_class, v.quality});
      });
  client.push(std::span<const double>(lead));
  client.finish();
  EXPECT_TRUE(client.drain(20000));
  client.close(5000);
  EXPECT_EQ(got, reference);
}

TEST_F(NetLoopbackTest, ClientReconnectsWithBackoffAndResendsUnacked) {
  const auto lead = patient_lead(4);  // PVC profile: guarantees uploads
  std::uint16_t port = 0;

  net::NodeConfig ncfg;
  ncfg.policy = net::TxPolicy::Selective;
  ncfg.backoff_initial_ms = 5;
  ncfg.backoff_max_ms = 50;

  std::vector<std::uint64_t> verdict_seqs;
  std::optional<net::SensorNodeClient> client;

  {
    GatewayHarness first(*bundle_, {});
    port = first.gw.port();
    ncfg.port = port;
    client.emplace(*bundle_, ncfg);
    client->set_verdict_sink(
        [&verdict_seqs](std::uint64_t seq, const net::BeatVerdictMsg&) {
          verdict_seqs.push_back(seq);
        });
    ASSERT_TRUE(poll_client_until(
        *client, [&] { return client->established(); }));
    // Queue the whole record (uploads land in the unacked window), then
    // kill the gateway before the client gets to flush everything.
    client->push(std::span<const double>(lead));
    client->finish();
    ASSERT_GT(client->stats().beats_uploaded, 0u);
  }

  // Gateway is gone: the client must notice and enter backoff, not crash.
  ASSERT_TRUE(poll_client_until(*client, [&] {
    return client->state() == net::LinkState::Backoff ||
           client->state() == net::LinkState::Connecting ||
           client->state() == net::LinkState::Idle;
  }));

  // Same port, new gateway (a fresh fleet): the client reconnects and
  // retransmits every unacked upload until acked.
  GatewayHarness second(*bundle_, [&] {
    net::GatewayConfig g;
    g.port = port;
    return g;
  }());
  ASSERT_TRUE(poll_client_until(
      *client,
      [&] { return client->established() && client->unacked_full_beats() == 0; },
      20000));
  EXPECT_GE(client->stats().reconnects, 1u);
  client->close(5000);
  EXPECT_EQ(client->state(), net::LinkState::Closed);

  // Every upload produced exactly one verdict (the gateway dedupes
  // at-least-once retransmits): seqs are unique and cover the uploads.
  std::sort(verdict_seqs.begin(), verdict_seqs.end());
  EXPECT_TRUE(std::adjacent_find(verdict_seqs.begin(), verdict_seqs.end()) ==
              verdict_seqs.end())
      << "duplicate verdict for a retransmitted upload";
  EXPECT_EQ(verdict_seqs.size(), client->stats().beats_uploaded);
  await_gateway_idle(second.gw);
  EXPECT_EQ(second.gw.engine().session_count(), 0u);
}

TEST_F(NetLoopbackTest, AdmissionRefusalIsSignalledAndRecoverable) {
  net::GatewayConfig gcfg;
  gcfg.fleet.max_sessions = 1;
  GatewayHarness harness(*bundle_, gcfg);

  net::NodeConfig acfg;
  acfg.port = harness.gw.port();
  net::SensorNodeClient a(*bundle_, acfg);
  ASSERT_TRUE(poll_client_until(a, [&] { return a.established(); }));

  net::NodeConfig bcfg = acfg;
  bcfg.backoff_initial_ms = 5;
  bcfg.backoff_max_ms = 20;
  net::SensorNodeClient b(*bundle_, bcfg);
  ASSERT_TRUE(poll_client_until(
      b, [&] { return b.stats().hello_rejects >= 2; }));
  EXPECT_FALSE(b.established());
  EXPECT_EQ(harness.gw.engine().session_count(), 1u);

  // The slot frees when A leaves; B's ongoing retry loop must then win it.
  a.close(5000);
  ASSERT_TRUE(poll_client_until(b, [&] { return b.established(); }));
  EXPECT_EQ(harness.gw.engine().session_count(), 1u);
  b.close(5000);

  await_gateway_idle(harness.gw);
  EXPECT_EQ(harness.gw.engine().session_count(), 0u);
  EXPECT_EQ(harness.gw.connection_count(), 0u);
}

TEST_F(NetLoopbackTest, ConcurrentMixedPolicyClients) {
  net::GatewayConfig gcfg;
  gcfg.fleet.threads = 4;
  gcfg.fleet.shards = 2;
  GatewayHarness harness(*bundle_, gcfg);

  constexpr std::size_t kClients = 4;
  std::vector<std::vector<double>> leads;
  std::vector<std::vector<VerdictSig>> got(kClients);
  std::vector<net::TxStats> stats(kClients);
  for (std::size_t i = 0; i < kClients; ++i)
    leads.push_back(patient_lead(i, 15.0));

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      net::NodeConfig ncfg;
      ncfg.port = harness.gw.port();
      ncfg.node_id = static_cast<std::uint32_t>(i);
      ncfg.policy = i % 2 == 0 ? net::TxPolicy::StreamEverything
                               : net::TxPolicy::Selective;
      net::SensorNodeClient client(*bundle_, ncfg);
      client.set_verdict_sink(
          [&got, i](std::uint64_t seq, const net::BeatVerdictMsg& v) {
            got[i].push_back(
                VerdictSig{seq, v.r_peak, v.beat_class, v.quality});
          });
      client.push(std::span<const double>(leads[i]));
      client.finish();
      EXPECT_TRUE(client.drain(30000)) << "client " << i;
      client.close(5000);
      stats[i] = client.stats();
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < kClients; ++i) {
    if (i % 2 == 0) {
      // Streaming clients: the wire stream is bit-identical to direct
      // ingest even with three other sessions competing for the engine.
      EXPECT_EQ(got[i], direct_ingest(*bundle_, wire_codes(leads[i]), 1, 1))
          << "client " << i;
      EXPECT_EQ(stats[i].verdict_seq_gaps, 0u);
    } else {
      EXPECT_EQ(got[i].size(), stats[i].beats_uploaded) << "client " << i;
    }
    EXPECT_EQ(stats[i].frames_dropped, 0u) << "client " << i;
  }
}

TEST_F(NetLoopbackTest, IdleTimeoutEvictsSilentClientAndClosesSession) {
  net::GatewayConfig gcfg;
  gcfg.idle_timeout_ms = 60;
  GatewayHarness harness(*bundle_, gcfg);

  // Heartbeat interval far beyond the timeout: once the client stops
  // being polled it goes silent from the gateway's point of view.
  net::NodeConfig ncfg;
  ncfg.port = harness.gw.port();
  ncfg.heartbeat_interval_ms = 10000;
  net::SensorNodeClient client(*bundle_, ncfg);
  ASSERT_TRUE(poll_client_until(client, [&] { return client.established(); }));
  EXPECT_EQ(harness.gw.engine().session_count(), 1u);

  // Do NOT poll the client again: no heartbeats leave the node. The
  // gateway must evict the connection and tear down its fleet session.
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (harness.gw.stats().conns_dropped_idle.load() == 0 &&
         Clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  EXPECT_EQ(harness.gw.stats().conns_dropped_idle.load(), 1u);
  await_gateway_idle(harness.gw);
  EXPECT_EQ(harness.gw.connection_count(), 0u);
  EXPECT_EQ(harness.gw.engine().session_count(), 0u);
  EXPECT_EQ(harness.gw.stats().conns_closed.load(), 1u);

  // A heartbeating client under the same timeout is never evicted.
  net::NodeConfig live_cfg;
  live_cfg.port = harness.gw.port();
  live_cfg.heartbeat_interval_ms = 15;
  net::SensorNodeClient live(*bundle_, live_cfg);
  ASSERT_TRUE(poll_client_until(live, [&] { return live.established(); }));
  const auto hold = Clock::now() + std::chrono::milliseconds(300);
  while (Clock::now() < hold) live.poll_once(2);
  EXPECT_TRUE(live.established());
  EXPECT_EQ(harness.gw.stats().conns_dropped_idle.load(), 1u);
  live.close(5000);
  await_gateway_idle(harness.gw);
  EXPECT_EQ(harness.gw.engine().session_count(), 0u);
  EXPECT_EQ(harness.gw.connection_count(), 0u);
}

}  // namespace
