// Drift tracking end-to-end: training-centroid export, the streaming
// monitor hook, the fleet's thread/shard bit-identity contract, telemetry
// JSON, the morphology_shift scenario, and drift-triggered FULL_BEAT
// escalation surviving chaos-proxy connection kills without duplicate
// gateway counting.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "ecg/dataset.hpp"
#include "scenario/chaos.hpp"
#include "scenario/episodes.hpp"
#include "scenario/runner.hpp"
#include "service/fleet.hpp"

namespace {

using namespace hbrp;
using scenario::ChaosConfig;
using scenario::EpisodeKind;
using scenario::ScenarioSpec;

class DriftIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecg::DatasetBuilderConfig cfg;
    cfg.record_duration_s = 120.0;
    cfg.max_per_record_per_class = 20;
    cfg.seed = 231;
    ts1_ = new ecg::BeatDataset(ecg::build_dataset({150, 150, 150}, cfg));
    cfg.max_per_record_per_class = 80;
    cfg.seed = 232;
    const auto ts2 = ecg::build_dataset({1200, 120, 150}, cfg);
    core::TwoStepConfig tcfg;
    tcfg.ga.population = 4;
    tcfg.ga.generations = 2;
    tcfg.seed = 23;
    const core::TwoStepTrainer trainer(*ts1_, ts2, tcfg);
    bundle_ = new embedded::EmbeddedClassifier(trainer.run().quantize());
    centroids_ = std::make_shared<const drift::TrainingCentroids>(
        core::compute_training_centroids(*bundle_, *ts1_));
  }
  static void TearDownTestSuite() {
    centroids_.reset();
    delete bundle_;
    bundle_ = nullptr;
    delete ts1_;
    ts1_ = nullptr;
  }

  static ScenarioSpec shift_spec() {
    ScenarioSpec spec;
    spec.name = "morphology_shift";
    spec.seed = 401;
    spec.duration_s = 90.0;
    spec.episodes.push_back(
        {EpisodeKind::MorphologyShift, 20.0, 60.0, 1.0});
    return spec;
  }

  static ScenarioSpec clean_spec() {
    ScenarioSpec spec;
    spec.name = "clean_control";
    spec.seed = 402;
    spec.duration_s = 90.0;
    return spec;
  }

  static service::FleetConfig drift_fleet_config(std::size_t threads,
                                                 std::size_t shards) {
    service::FleetConfig cfg;
    cfg.threads = threads;
    cfg.shards = shards;
    cfg.session.drift_centroids = centroids_;
    return cfg;
  }

  static const ecg::BeatDataset* ts1_;
  static const embedded::EmbeddedClassifier* bundle_;
  static std::shared_ptr<const drift::TrainingCentroids> centroids_;
};

const ecg::BeatDataset* DriftIntegrationTest::ts1_ = nullptr;
const embedded::EmbeddedClassifier* DriftIntegrationTest::bundle_ = nullptr;
std::shared_ptr<const drift::TrainingCentroids>
    DriftIntegrationTest::centroids_;

TEST_F(DriftIntegrationTest, TrainingCentroidExportMatchesModel) {
  const auto& tc = *centroids_;
  EXPECT_EQ(tc.coefficients, bundle_->projector().coefficients());
  ASSERT_GE(tc.centroids.size(), 2u);  // at least N and one pathology
  ASSERT_LE(tc.centroids.size(), 4u);
  EXPECT_GE(tc.scale, 1.0);
  double mass = 0.0;
  for (const auto& c : tc.centroids) {
    EXPECT_EQ(c.mean.size(), tc.coefficients);
    EXPECT_GT(c.mass, 0.0);
    mass += c.mass;
  }
  EXPECT_DOUBLE_EQ(mass, static_cast<double>(ts1_->beats.size()));
}

TEST_F(DriftIntegrationTest, MonitorHookObservesEveryClassifiedBeat) {
  const auto stream = scenario::build_scenario(clean_spec());
  core::StreamingBeatMonitor monitor(*bundle_);
  drift::DriftTracker tracker(*centroids_);
  monitor.set_drift_tracker(&tracker);
  std::size_t classified = 0;
  const core::BeatSink sink = [&](const core::MonitorBeat& b) {
    if (b.quality == dsp::SignalQuality::Good) ++classified;
  };
  monitor.push_block(std::span<const double>(stream.samples), sink);
  monitor.flush(sink);
  ASSERT_GT(classified, 50u);
  // Every Good beat was classified and observed; Suspect beats carry no
  // projection and are skipped.
  EXPECT_EQ(tracker.beats(), classified);
}

TEST_F(DriftIntegrationTest, FleetDriftStateIsThreadShardBitIdentical) {
  const auto stream = scenario::build_scenario(shift_spec());
  std::vector<dsp::Sample> codes;
  codes.reserve(stream.samples.size());
  {
    const core::MonitorConfig mc;
    dsp::Sample last = 0;
    for (const double x : stream.samples)
      codes.push_back(
          net::SensorNodeClient::sanitize(x, mc.quality, last, nullptr));
  }

  auto run = [&](std::size_t threads, std::size_t shards) {
    service::FleetEngine engine(*bundle_, drift_fleet_config(threads, shards));
    const auto id = engine.open_session([](const service::SessionResult&) {});
    EXPECT_TRUE(id.has_value());
    std::size_t off = 0;
    const std::span<const dsp::Sample> all(codes);
    while (off < codes.size()) {
      const std::size_t n = std::min<std::size_t>(1024, codes.size() - off);
      off += engine.offer(*id, all.subspan(off, n)).accepted;
      engine.pump();
    }
    engine.drain();
    const drift::DriftTracker* t = engine.session_drift(*id);
    EXPECT_NE(t, nullptr);
    struct Snapshot {
      std::uint64_t digest, beats, novel;
    } snap{t->state_digest(), t->beats(), t->novel_beats()};
    EXPECT_TRUE(engine.close_session(*id));
    return snap;
  };

  const auto a = run(1, 1);
  const auto b = run(4, 3);
  ASSERT_GT(a.beats, 50u);
  EXPECT_EQ(a.digest, b.digest)
      << "drift state must be bit-identical for any thread/shard layout";
  EXPECT_EQ(a.beats, b.beats);
  EXPECT_EQ(a.novel, b.novel);
}

TEST_F(DriftIntegrationTest, TelemetryJsonCarriesSchemaAndDriftFields) {
  const auto stream = scenario::build_scenario(clean_spec());
  service::FleetEngine engine(*bundle_, drift_fleet_config(1, 1));
  const auto id = engine.open_session([](const service::SessionResult&) {});
  ASSERT_TRUE(id.has_value());
  std::size_t off = 0;
  const std::span<const double> all(stream.samples);
  while (off < all.size()) {
    const std::size_t n = std::min<std::size_t>(4096, all.size() - off);
    off += engine.offer(*id, all.subspan(off, n)).accepted;
    engine.pump();
  }
  engine.drain();
  const std::string json = engine.telemetry_json();
  const std::string version_field =
      "\"schema_version\": " +
      std::to_string(hbrp::service::kTelemetrySchemaVersion);
  EXPECT_NE(json.find(version_field), std::string::npos) << json;
  EXPECT_NE(json.find("\"drift_beats\""), std::string::npos);
  EXPECT_NE(json.find("\"drift_novel_beats\""), std::string::npos);
  EXPECT_NE(json.find("\"drift_alarm_sessions\""), std::string::npos);
  EXPECT_NE(json.find("\"drift_score\""), std::string::npos);

  const service::SessionTelemetry* st = engine.session_telemetry(*id);
  ASSERT_NE(st, nullptr);
  EXPECT_GT(st->drift_beats.load(), 50u);
  EXPECT_TRUE(engine.close_session(*id));
}

TEST_F(DriftIntegrationTest, MorphologyShiftAlarmsCleanStaysQuiet) {
  // Drift alarms only on the *silent* failure mode: novel shapes the
  // classifier keeps calling normal. The fixture's deliberately tiny GA
  // is seed-sensitive about the composite's verdict — for most scenario
  // seeds it calls the shift beats pathological (so they escalate via the
  // classifier path and are rightly gated out of the novelty score). This
  // wiring test pins a seed/magnitude where the crude model takes the
  // silent path, with a slightly tightened threshold; calibration of the
  // shipped defaults against the full training recipe is bench_drift's
  // job.
  drift::DriftConfig dc;
  dc.novelty_threshold = 1.2;
  auto alarms_for = [&](const ScenarioSpec& spec) {
    const auto stream = scenario::build_scenario(spec);
    core::StreamingBeatMonitor monitor(*bundle_);
    drift::DriftTracker tracker(*centroids_, dc);
    monitor.set_drift_tracker(&tracker);
    const core::BeatSink sink = [](const core::MonitorBeat&) {};
    monitor.push_block(std::span<const double>(stream.samples), sink);
    monitor.flush(sink);
    return tracker.alarms();
  };
  ScenarioSpec mild = shift_spec();
  mild.seed = 9100;
  mild.episodes[0].magnitude = 0.5;
  EXPECT_GE(alarms_for(mild), 1u)
      << "a sustained novel morphology must trip the drift alarm";
  EXPECT_EQ(alarms_for(clean_spec()), 0u)
      << "a clean ward must never trip the drift alarm";
}

// Satellite: drift-triggered FULL_BEAT escalation through the wire path
// under seeded connection kills. The node uses an artificially tight
// novelty threshold so ordinary normal beats escalate deterministically;
// the assertions pin the at-least-once contract: every escalation the
// client counted is acked, and the gateway's fleet-rollup counter sees it
// exactly once despite retransmission.
TEST_F(DriftIntegrationTest, DriftEscalationSurvivesConnectionKills) {
  ScenarioSpec spec;
  spec.name = "drift_escalation_chaos";
  spec.seed = 403;
  spec.duration_s = 40.0;
  const auto stream = scenario::build_scenario(spec);

  net::NodeConfig tmpl;
  tmpl.drift_centroids = centroids_;
  tmpl.drift.novelty_threshold = 0.15;  // everything looks novel
  tmpl.drift_min_gap_beats = 2;

  const auto clean = scenario::run_wire(
      *bundle_, stream, net::TxPolicy::Selective, nullptr, 1, 1, 30000,
      &tmpl);
  ASSERT_TRUE(clean.completed);
  ASSERT_GT(clean.tx.drift_escalations, 5u);
  EXPECT_EQ(clean.gateway_drift_escalations, clean.tx.drift_escalations);

  ChaosConfig chaos;
  chaos.seed = 17;
  chaos.kill_probability = 0.6;
  chaos.kill_after_min_bytes = 1500;
  chaos.kill_after_max_bytes = 6000;
  const auto wire = scenario::run_wire(
      *bundle_, stream, net::TxPolicy::Selective, &chaos, 1, 1,
      /*drain_budget_ms=*/60000, &tmpl);

  ASSERT_TRUE(wire.completed) << "drain must finish despite kills";
  EXPECT_GT(wire.chaos_kills, 0u) << "the chaos must actually bite";

  // Escalation decisions are made locally from the sanitized stream, so
  // the link cannot change them.
  EXPECT_EQ(wire.tx.drift_escalations, clean.tx.drift_escalations);

  // The fleet rollup counts each escalated beat exactly once: dedup by
  // upload seq holds even when kills force retransmission.
  EXPECT_EQ(wire.gateway_drift_escalations, wire.tx.drift_escalations);

  // The usual at-least-once invariants still hold around escalations.
  EXPECT_EQ(wire.tx.verdicts_rx, wire.tx.beats_uploaded);
  std::set<std::uint64_t> seqs;
  for (const auto& v : wire.verdicts) seqs.insert(v.seq);
  EXPECT_EQ(seqs.size(), wire.verdicts.size());
}

}  // namespace
