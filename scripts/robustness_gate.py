#!/usr/bin/env python3
"""CI robustness gate over the committed adversarial-scenario baseline.

Usage: robustness_gate.py BASELINE_JSON FRESH_JSON [--tolerance=0.02]
                                                   [--bytes-tolerance=0.10]
                                                   [--beats-tolerance=6]

Both inputs are bench reports. When they are BENCH_drift.json reports
(``"bench": "drift"``) the drift mode gates instead:

  - ``drift_identity`` false — the tracker's state diverged across
    thread/shard layouts (fatal, no tolerance);
  - ``drift_false_alarm_rate`` rose above the baseline — a previously
    quiet scenario now alarms (fatal);
  - a ``drift_detect_beats_m*`` that the baseline detected (value >= 0)
    comes back -1 (never alarmed) or slower by more than
    ``beats-tolerance`` beats (fatal);
  - ``all_ok`` false — the bench's own internal gate tripped.

When they are BENCH_lifecycle.json reports (``"bench": "lifecycle"``) the
lifecycle mode gates:

  - ``lifecycle_identity_pass`` false — a hot-swap failed to split the
    verdict stream into exact per-model halves (fatal, no tolerance);
  - ``lifecycle_corrupt_push_nacked`` false — a tampered MODEL_PUSH was
    not rejected (fatal);
  - an ``ab_{a,b}_{ndr,arr}`` dropping, or ``ab_{a,b}_{miss,false}_rate``
    rising, by more than ``tolerance`` (fatal — the suite is seeded, so
    drift is a real behavior change);
  - ``all_ok`` false — the bench's own internal gate tripped.
  - ``swap_latency_*`` / ``push_mb_per_s`` are wall-clock on a shared
    host: a large drift only WARNS.

Otherwise the inputs are BENCH_scenarios.json reports
(bench_scenarios --json=...). For every scenario the two reports share,
the gate FAILS (exit 1) when:

  - the fresh ``sc_<name>_identity`` or ``sc_<name>_selective_ok`` flag is
    false — the wire path diverged from direct ingest, or the selective
    path lost/duplicated an upload under chaos (these are correctness
    bits, tolerance does not apply);
  - ``ndr`` or ``arr`` dropped by more than ``tolerance`` (absolute);
  - ``miss_rate`` or ``false_rate`` rose by more than ``tolerance``.

Bytes-on-wire (``bytes_stream``/``bytes_selective``) drifting more than
``bytes-tolerance`` (relative) only WARNS: byte counts move legitimately
with protocol framing changes, and the paper's energy argument has its own
bench. Scenarios present only in the baseline are warn-skipped, so a
``--quick`` fresh run (a trimmed suite) still gates what it covers.
Everything both runs compute is deterministic (fixed seeds, fixed trainer
config), so any numeric drift at all is a real behavior change, not noise;
the tolerance only absorbs intentional small reshapes of the pipeline.

Reports stamp a ``schema_version``; this gate understands version
KNOWN_SCHEMA. A report with a newer schema warns once and the gate skips
any key it does not recognize instead of failing, so adding report keys
never breaks an older checkout's CI.

Exit codes: 0 pass/skip, 1 regression, 2 usage or unreadable input.
"""

import json
import sys

DEFAULT_TOLERANCE = 0.02
DEFAULT_BYTES_TOLERANCE = 0.10
DEFAULT_BEATS_TOLERANCE = 6
KNOWN_SCHEMA = 2

# Per-scenario metrics: (suffix, direction, fatal). direction +1 = higher
# is better (a drop fails), -1 = lower is better (a rise fails).
METRICS = [
    ("ndr", +1, True),
    ("arr", +1, True),
    ("miss_rate", -1, True),
    ("false_rate", -1, True),
]
FLAG_SUFFIXES = ["identity", "selective_ok"]
BYTES_SUFFIXES = ["bytes_stream", "bytes_selective"]


def load_report(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"robustness_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict):
        print(f"robustness_gate: {path} is valid JSON but not an object "
              f"(got {type(data).__name__}); not a bench report",
              file=sys.stderr)
        sys.exit(2)
    return data


def check_schema(report, path):
    version = report.get("schema_version")
    if isinstance(version, int) and version > KNOWN_SCHEMA:
        print(f"robustness_gate: WARNING — {path} has schema_version "
              f"{version} (this gate knows {KNOWN_SCHEMA}); unknown keys "
              f"are skipped, not failed")


def gate_drift(base, fresh, base_path, beats_tolerance):
    """BENCH_drift.json mode: detection latency, false alarms, identity."""
    failures = []

    if fresh.get("drift_identity") is not True:
        failures.append(("drift_identity",
                         "tracker state diverged across thread/shard "
                         "layouts"))

    b_rate, f_rate = base.get("drift_false_alarm_rate"), \
        fresh.get("drift_false_alarm_rate")
    if numeric(b_rate) and numeric(f_rate):
        marker = ""
        if f_rate > b_rate:
            marker = "  <-- REGRESSION"
            failures.append(("drift_false_alarm_rate",
                             f"{b_rate:.3f} -> {f_rate:.3f}"))
        print(f"  {'drift_false_alarm_rate':<38} {b_rate:>7.3f} -> "
              f"{f_rate:>7.3f}{marker}")
    else:
        print("robustness_gate: WARNING — drift_false_alarm_rate is not a "
              f"comparable pair ({b_rate!r} vs {f_rate!r}), skipped")

    detect_keys = sorted(k for k in base
                         if k.startswith("drift_detect_beats_"))
    for key in detect_keys:
        b, f = base.get(key), fresh.get(key)
        if not (numeric(b) and numeric(f)):
            print(f"robustness_gate: WARNING — {key} missing from fresh "
                  f"run, skipped")
            continue
        if b < 0:
            # The baseline never alarmed at this magnitude (below the
            # detection floor by design); nothing to hold the fresh run to.
            continue
        marker = ""
        if f < 0:
            marker = "  <-- REGRESSION"
            failures.append((key, f"detected in {b:.0f} beats -> never"))
        elif f - b > beats_tolerance:
            marker = "  <-- REGRESSION"
            failures.append((key, f"{b:.0f} -> {f:.0f} beats"))
        print(f"  {key:<38} {b:>7.0f} -> {f:>7.0f}{marker}")

    b_clean = base.get("drift_max_clean_score")
    f_clean = fresh.get("drift_max_clean_score")
    if numeric(b_clean) and numeric(f_clean) and f_clean > b_clean + 0.05:
        print(f"robustness_gate: WARNING — drift_max_clean_score rose "
              f"{b_clean:.3f} -> {f_clean:.3f}; the false-alarm margin is "
              f"shrinking")

    if fresh.get("all_ok") is False:
        failures.append(("all_ok",
                         "bench_drift reported an internal gate failure"))

    if failures:
        print(f"\nrobustness_gate: FAIL — {len(failures)} drift "
              f"regression(s) vs {base_path}:")
        for key, detail in failures:
            print(f"  {key}: {detail}")
        print("If the change is intentional, regenerate the baseline with\n"
              "  ./build/bench/bench_drift --threads=0 "
              "--json=BENCH_drift.json\nand commit it with the change that "
              "explains it.")
        return 1
    print(f"robustness_gate: PASS — drift detection/false-alarm/identity "
          f"within bounds of {base_path}")
    return 0


def gate_lifecycle(base, fresh, base_path, tolerance):
    """BENCH_lifecycle.json mode: swap identity, push rejection, A/B arms."""
    failures = []

    for flag, detail in [
        ("lifecycle_identity_pass",
         "hot-swap verdict stream no longer splits into exact per-model "
         "halves"),
        ("lifecycle_corrupt_push_nacked",
         "a tampered MODEL_PUSH was not rejected"),
    ]:
        if fresh.get(flag) is not True:
            failures.append((flag, detail))

    for arm in ("a", "b"):
        for suffix, direction in [("ndr", +1), ("arr", +1),
                                  ("miss_rate", -1), ("false_rate", -1)]:
            key = f"ab_{arm}_{suffix}"
            b, f = base.get(key), fresh.get(key)
            if not (numeric(b) and numeric(f)):
                print(f"robustness_gate: WARNING — {key} is not a "
                      f"comparable pair ({b!r} vs {f!r}), skipped")
                continue
            delta = (f - b) * direction  # negative = got worse
            marker = ""
            if delta < -tolerance:
                marker = "  <-- REGRESSION"
                failures.append((key, f"{b:.3f} -> {f:.3f}"))
            print(f"  {key:<38} {b:>7.3f} -> {f:>7.3f}{marker}")

    for key in ("swap_latency_p50_us", "swap_latency_p99_us",
                "push_mb_per_s"):
        b, f = base.get(key), fresh.get(key)
        if not (numeric(b) and numeric(f)) or b <= 0:
            continue
        ratio = f / b
        worse = ratio > 3.0 if key.startswith("swap") else ratio < 1.0 / 3.0
        if worse:
            print(f"robustness_gate: WARNING — {key} moved {b:.1f} -> "
                  f"{f:.1f}; wall-clock on a shared host, not fatal, but "
                  f"check the swap/push path if this persists")

    if fresh.get("all_ok") is False:
        failures.append(("all_ok",
                         "bench_lifecycle reported an internal gate "
                         "failure"))

    if failures:
        print(f"\nrobustness_gate: FAIL — {len(failures)} lifecycle "
              f"regression(s) vs {base_path}:")
        for key, detail in failures:
            print(f"  {key}: {detail}")
        print("If the change is intentional, regenerate the baseline with\n"
              "  ./build/bench/bench_lifecycle --threads=0 "
              "--json=BENCH_lifecycle.json\nand commit it with the change "
              "that explains it.")
        return 1
    print(f"robustness_gate: PASS — lifecycle identity/push/A-B within "
          f"bounds of {base_path}")
    return 0


def scenario_names(report):
    names = []
    for key in report:
        if key.startswith("sc_") and key.endswith("_ndr"):
            names.append(key[len("sc_"):-len("_ndr")])
    return sorted(names)


def numeric(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def main(argv):
    tolerance = DEFAULT_TOLERANCE
    bytes_tolerance = DEFAULT_BYTES_TOLERANCE
    beats_tolerance = DEFAULT_BEATS_TOLERANCE
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--beats-tolerance="):
            try:
                beats_tolerance = float(arg.split("=", 1)[1])
            except ValueError:
                print(f"robustness_gate: bad value in '{arg}'",
                      file=sys.stderr)
                return 2
        elif arg.startswith("--tolerance="):
            try:
                tolerance = float(arg.split("=", 1)[1])
            except ValueError:
                print(f"robustness_gate: bad value in '{arg}'",
                      file=sys.stderr)
                return 2
        elif arg.startswith("--bytes-tolerance="):
            try:
                bytes_tolerance = float(arg.split("=", 1)[1])
            except ValueError:
                print(f"robustness_gate: bad value in '{arg}'",
                      file=sys.stderr)
                return 2
        else:
            paths.append(arg)
    if len(paths) != 2 or not 0.0 <= tolerance < 1.0:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2

    base = load_report(paths[0])
    fresh = load_report(paths[1])
    check_schema(base, paths[0])
    check_schema(fresh, paths[1])

    for mode in ("drift", "lifecycle"):
        if base.get("bench") == mode or fresh.get("bench") == mode:
            if base.get("bench") != fresh.get("bench"):
                print(f"robustness_gate: cannot compare a "
                      f"'{base.get('bench')}' report against a "
                      f"'{fresh.get('bench')}' report", file=sys.stderr)
                return 2
            if mode == "drift":
                return gate_drift(base, fresh, paths[0], beats_tolerance)
            return gate_lifecycle(base, fresh, paths[0], tolerance)

    base_names = scenario_names(base)
    fresh_names = scenario_names(fresh)
    shared = [n for n in base_names if n in fresh_names]
    only_base = [n for n in base_names if n not in fresh_names]
    only_fresh = [n for n in fresh_names if n not in base_names]
    if only_base:
        print(f"robustness_gate: WARNING — {len(only_base)} baseline "
              f"scenario(s) missing from fresh run, skipped: "
              f"{', '.join(only_base)}")
    if only_fresh:
        print(f"robustness_gate: note — new scenario(s) not in baseline "
              f"yet: {', '.join(only_fresh)}")
    if not shared:
        print("robustness_gate: SKIP — no shared scenarios to compare")
        return 0

    failures = []
    for name in shared:
        prefix = f"sc_{name}_"
        for suffix in FLAG_SUFFIXES:
            flag = fresh.get(prefix + suffix)
            if flag is None:
                print(f"robustness_gate: WARNING — {prefix + suffix} "
                      f"missing from fresh run, skipped")
            elif flag is not True:
                failures.append((name, suffix, "correctness flag is false"))
        for suffix, direction, fatal in METRICS:
            key = prefix + suffix
            b, f = base.get(key), fresh.get(key)
            if not (numeric(b) and numeric(f)):
                print(f"robustness_gate: WARNING — {key} is not a "
                      f"comparable pair ({b!r} vs {f!r}), skipped")
                continue
            delta = (f - b) * direction  # negative = got worse
            marker = ""
            if delta < -tolerance:
                marker = "  <-- REGRESSION" if fatal else "  (warn)"
                if fatal:
                    failures.append(
                        (name, suffix, f"{b:.3f} -> {f:.3f}"))
            print(f"  {key:<38} {b:>7.3f} -> {f:>7.3f}{marker}")
        for suffix in BYTES_SUFFIXES:
            key = prefix + suffix
            b, f = base.get(key), fresh.get(key)
            if not (numeric(b) and numeric(f)) or b <= 0:
                continue
            drift = f / b - 1.0
            if abs(drift) > bytes_tolerance:
                print(f"robustness_gate: WARNING — {key} drifted "
                      f"{drift:+.1%} ({b:.0f} -> {f:.0f} bytes); not fatal, "
                      f"but check the framing if this is unexpected")

    if fresh.get("all_ok") is False:
        failures.append(("(suite)", "all_ok",
                         "bench_scenarios reported an internal gate failure"))

    if failures:
        print(f"\nrobustness_gate: FAIL — {len(failures)} regression(s) vs "
              f"{paths[0]}:")
        for name, metric, detail in failures:
            print(f"  {name}/{metric}: {detail}")
        print("If the change is intentional, regenerate the baseline with\n"
              "  ./build/bench/bench_scenarios --threads=0 "
              "--json=BENCH_scenarios.json\n"
              "and commit it with the change that explains it.")
        return 1

    print(f"robustness_gate: PASS — {len(shared)} scenario(s) within "
          f"{tolerance:.2f} of {paths[0]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
