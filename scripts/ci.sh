#!/usr/bin/env bash
# Full CI sweep: tier-1 build + tests, then the sanitizer matrix.
#
#   1. default (Release) build, full ctest suite — the tier-1 gate — then
#      the DSP kernel-equivalence subset re-run under HBRP_FORCE_SCALAR=1,
#      so the scalar halves of the block kernels are gated even on AVX2
#      hosts;
#   2. ASan + UBSan build (-DENABLE_SANITIZERS=ON), full ctest suite;
#   3. TSan build (-DENABLE_TSAN=ON), executor/engine/fleet/net-focused
#      ctest subset — races in core::Executor, the parallel GA fitness
#      fan-out, the chunked metric merges, the fleet engine's producer/pump
#      concurrency and the gateway/client loopback traffic would surface
#      here;
#   4. fleet soak smoke: bench_fleet --quick --threads=0 — the
#      sessions x reactors scaling grid with its serial-vs-sharded
#      bit-identity gate (exits non-zero on any per-session sequence
#      divergence), then perf_gate.py compares its identity/speedup keys
#      against the committed BENCH_fleet.json (the full-run-only
#      fleet_widest_speedup key warn-skips on quick grids by design);
#   5. gateway loopback soak smoke: gateway_ward (8 concurrent sensor
#      clients over real loopback TCP, one with an injected flaky
#      electrode; exits non-zero on an unclean close or a verdict sequence
#      gap), bench_net --quick, whose stream runs gate wire verdicts
#      against direct in-process ingest bit-for-bit across the reactor
#      axis (plus the same perf_gate comparison vs BENCH_net.json), and
#      fleet_soak — 10k concurrent loopback sessions through a 2-reactor
#      gateway with a 1.5 GB peak-RSS ceiling;
#   6. perf gate: a quick bench_microkernels pass compared against the
#      committed BENCH_microkernels.json by scripts/perf_gate.py — fails on
#      >15% per-op CPU-time regression (tolerance doubled on virtualized
#      hosts, skipped outright when the CPU model is unknown or differs
#      from the baseline's). One retry absorbs a noisy first pass;
#   7. robustness gate: a quick bench_scenarios pass (adversarial ward
#      suite replayed direct + over chaotic loopback TCP) compared against
#      the committed BENCH_scenarios.json by scripts/robustness_gate.py —
#      fails when AAMI NDR/ARR degrade, miss/false rates rise, or a
#      wire-identity/selective-integrity flag goes false. No retry: the
#      scenario metrics are fully seeded, so any drift is a real behavior
#      change. A tamper self-check first asserts the gate actually fails
#      on an injected regression, so a silently broken gate cannot pass;
#   8. drift gate: a quick bench_drift pass (tracker cost, morphology-shift
#      detection latency, false-alarm sweep, thread/shard identity)
#      compared against the committed BENCH_drift.json by the same
#      robustness_gate.py (drift mode), with its own tamper self-check;
#   9. lifecycle gate: a quick bench_lifecycle pass (hot-swap verdict-split
#      identity across thread layouts, MODEL_PUSH throughput + corrupt-push
#      rejection, stage->apply swap latency, per-A/B-arm scenario metrics)
#      compared against the committed BENCH_lifecycle.json by the same
#      robustness_gate.py (lifecycle mode), with its own tamper self-check,
#      plus an ab_ward smoke run (the per-arm rollout report must build its
#      table and exit clean).
#
# Usage: scripts/ci.sh [--skip-sanitizers]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SANITIZERS=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SANITIZERS=1 ;;
    *)
      echo "usage: scripts/ci.sh [--skip-sanitizers]" >&2
      exit 2
      ;;
  esac
done

run_suite() {
  local build_dir="$1"
  shift
  local cmake_flags=("$@")
  echo "==== configure ${build_dir} (${cmake_flags[*]:-default})"
  cmake -B "${build_dir}" -S . "${cmake_flags[@]}"
  echo "==== build ${build_dir}"
  cmake --build "${build_dir}" -j
}

# --- 1. tier-1: default build + full suite --------------------------------
run_suite build
ctest --test-dir build --output-on-failure -j

# --- 1a. DSP kernel equivalence, forced-scalar dispatch -------------------
# The full suite above already ran the KernelsDsp/DetectorEquivalence/Drift
# binaries under the default once-per-process dispatch (AVX2 where the host
# has it); this re-run pins the dispatcher to the scalar kernels so both
# code paths of every block DSP kernel are gated on every CI host. The
# drift suites ride along because the tracker consumes the projections the
# kernels produce — its digests must be dispatch-independent too.
echo "==== DSP kernel equivalence under HBRP_FORCE_SCALAR=1"
HBRP_FORCE_SCALAR=1 ctest --test-dir build --output-on-failure \
  -R 'KernelsDsp|DetectorEquivalence|Drift|Lifecycle' -j

# --- 1b. fleet soak smoke: scaling grid + bit-identity gate ---------------
# Quick-run reports stay under build/ so a CI pass never dirties the tree
# (the committed BENCH_*.json are full-run baselines, written deliberately).
echo "==== fleet soak smoke (bench_fleet --quick)"
./build/bench/bench_fleet --quick --threads=0 --json=build/BENCH_fleet_quick.json
echo "==== fleet gate (identity/speedup keys vs BENCH_fleet.json)"
# The quick grid deliberately omits the full-run fleet_widest_speedup key,
# so that comparison warn-skips; identity_pass is gated hard.
python3 scripts/perf_gate.py BENCH_fleet.json build/BENCH_fleet_quick.json

# --- 1c. gateway loopback soak smoke --------------------------------------
echo "==== gateway soak smoke (gateway_ward: 8 clients + fault injection)"
./build/examples/gateway_ward 8 20 0
echo "==== net identity gate (bench_net --quick)"
./build/bench/bench_net --quick --threads=0 --json=build/BENCH_net_quick.json
python3 scripts/perf_gate.py BENCH_net.json build/BENCH_net_quick.json

# --- 1c2. 10k-session loopback soak smoke ---------------------------------
# Ramps 10k concurrent SensorNodeClients (2 s of signal each) against a
# 2-reactor gateway and fails on any unestablished node, unclean close,
# verdict gap, or a peak RSS above 1.5 GB. Where the host's hard fd limit
# cannot hold 2 fds per node the driver self-scales the node count down
# and says so — the pass criteria then apply to the scaled count.
echo "==== fleet soak smoke (fleet_soak: 10k sessions, RSS-capped)"
./build/examples/fleet_soak 10000 2 2 1536

# --- 1d. perf gate: microkernels vs committed baseline --------------------
echo "==== perf gate (bench_microkernels vs BENCH_microkernels.json)"
run_perf_gate() {
  ./build/bench/bench_microkernels --benchmark_min_time=0.05 \
    --json=build/BENCH_microkernels_fresh.json >/dev/null
  python3 scripts/perf_gate.py BENCH_microkernels.json \
    build/BENCH_microkernels_fresh.json
}
if ! run_perf_gate; then
  echo "==== perf gate failed; retrying once to rule out timing noise"
  run_perf_gate
fi

# --- 1e. robustness gate: adversarial scenarios vs committed baseline -----
echo "==== robustness gate self-check (gate must fail on injected regression)"
./build/bench/bench_scenarios --quick --threads=0 \
  --json=build/BENCH_scenarios_quick.json
python3 - <<'EOF'
import json
with open("build/BENCH_scenarios_quick.json", encoding="utf-8") as f:
    report = json.load(f)
report["sc_sustained_vt_arr"] -= 0.10
with open("build/BENCH_scenarios_tampered.json", "w", encoding="utf-8") as f:
    json.dump(report, f)
EOF
if python3 scripts/robustness_gate.py BENCH_scenarios.json \
    build/BENCH_scenarios_tampered.json >/dev/null 2>&1; then
  echo "robustness gate self-check FAILED: tampered report passed the gate" >&2
  exit 1
fi
echo "==== robustness gate (bench_scenarios vs BENCH_scenarios.json)"
python3 scripts/robustness_gate.py BENCH_scenarios.json \
  build/BENCH_scenarios_quick.json

# --- 1f. drift gate: morphology-drift detection vs committed baseline -----
echo "==== drift gate self-check (gate must fail on injected regression)"
./build/bench/bench_drift --quick --threads=0 \
  --json=build/BENCH_drift_quick.json
python3 - <<'EOF'
import json
with open("build/BENCH_drift_quick.json", encoding="utf-8") as f:
    report = json.load(f)
report["drift_false_alarm_rate"] = 0.5
with open("build/BENCH_drift_tampered.json", "w", encoding="utf-8") as f:
    json.dump(report, f)
EOF
if python3 scripts/robustness_gate.py BENCH_drift.json \
    build/BENCH_drift_tampered.json >/dev/null 2>&1; then
  echo "drift gate self-check FAILED: tampered report passed the gate" >&2
  exit 1
fi
echo "==== drift gate (bench_drift vs BENCH_drift.json)"
python3 scripts/robustness_gate.py BENCH_drift.json \
  build/BENCH_drift_quick.json

# --- 1g. lifecycle gate: hot-swap/push/A-B vs committed baseline ----------
echo "==== lifecycle gate self-check (gate must fail on injected regression)"
./build/bench/bench_lifecycle --quick --threads=0 \
  --json=build/BENCH_lifecycle_quick.json
python3 - <<'EOF'
import json
with open("build/BENCH_lifecycle_quick.json", encoding="utf-8") as f:
    report = json.load(f)
report["lifecycle_identity_pass"] = False
with open("build/BENCH_lifecycle_tampered.json", "w", encoding="utf-8") as f:
    json.dump(report, f)
EOF
if python3 scripts/robustness_gate.py BENCH_lifecycle.json \
    build/BENCH_lifecycle_tampered.json >/dev/null 2>&1; then
  echo "lifecycle gate self-check FAILED: tampered report passed the gate" >&2
  exit 1
fi
echo "==== lifecycle gate (bench_lifecycle vs BENCH_lifecycle.json)"
python3 scripts/robustness_gate.py BENCH_lifecycle.json \
  build/BENCH_lifecycle_quick.json
echo "==== A/B rollout report smoke (ab_ward)"
./build/examples/ab_ward 8 50 42

if [[ "${SKIP_SANITIZERS}" -eq 1 ]]; then
  echo "==== sanitizer jobs skipped"
  exit 0
fi

# --- 2. ASan + UBSan ------------------------------------------------------
run_suite build-asan -DENABLE_SANITIZERS=ON
ctest --test-dir build-asan --output-on-failure -j

# --- 3. TSan: executor + engine + fleet + net + scenario + drift tests ----
# NB: -R must precede bare -j — ctest 3.25 otherwise consumes "-R" as the
# job count and silently runs the full suite.
run_suite build-tsan -DENABLE_TSAN=ON
ctest --test-dir build-tsan --output-on-failure \
  -R 'Executor|BeatBatch|EngineFixture|Determinism|Ga\.|Fleet|Net|Reactor|Gateway|Wire|Scenario|KernelsDsp|DetectorEquivalence|Drift|Lifecycle' -j

echo "==== CI sweep complete"
