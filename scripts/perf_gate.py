#!/usr/bin/env python3
"""CI perf-regression gate over the committed micro-benchmark baseline.

Usage: perf_gate.py BASELINE_JSON FRESH_JSON [--tolerance=0.15]

Compares every ``*_ns_per_op`` key the two reports share (per-op CPU time,
written by bench_microkernels --json=...) and fails when any fresh number is
more than ``tolerance`` slower than the committed baseline.

Also gated, with the same warn-skip policy for missing keys:
  - ``*_speedup`` keys (higher is better — parallel/SIMD speedup ratios,
    e.g. bench_fleet's ``fleet_widest_speedup``): a regression is a fresh
    value below baseline*(1 - tol), where tol is floored at 50% because
    speedups fold in scheduler and core-count noise that per-op CPU time
    does not;
  - ``*identity_pass`` booleans (bit-identity gates): FAIL if the baseline
    says true and the fresh run says false — determinism is never allowed
    to regress, whatever the timing noise.

Comparability rules (the gate must never fail on numbers that were never
comparable in the first place):
  - if either report's ``cpu_model`` is missing or "unknown", or the two
    models differ, the gate SKIPS (exit 0) with a clear message — a baseline
    recorded on one machine says nothing about another;
  - if either report says ``virtualized: true`` the tolerance is doubled and
    a notice is printed — VM timing is noisy even for CPU time;
  - keys present in only one report are listed but never fatal, so adding or
    retiring a benchmark (or a quick run that intentionally omits full-grid
    keys) does not require regenerating the baseline in the same commit.

Exit codes: 0 pass/skip, 1 regression, 2 usage or unreadable input.
"""

import json
import sys

DEFAULT_TOLERANCE = 0.15


def load_report(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"perf_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict):
        print(f"perf_gate: {path} is valid JSON but not an object "
              f"(got {type(data).__name__}); not a bench report",
              file=sys.stderr)
        sys.exit(2)
    return data


def main(argv):
    tolerance = DEFAULT_TOLERANCE
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            try:
                tolerance = float(arg.split("=", 1)[1])
            except ValueError:
                print(f"perf_gate: bad value in '{arg}'", file=sys.stderr)
                return 2
            if not 0.0 < tolerance < 10.0:
                print(f"perf_gate: tolerance out of range in '{arg}'",
                      file=sys.stderr)
                return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2

    base = load_report(paths[0])
    fresh = load_report(paths[1])

    base_cpu = base.get("cpu_model", "unknown")
    fresh_cpu = fresh.get("cpu_model", "unknown")
    if base_cpu == "unknown" or fresh_cpu == "unknown":
        print("perf_gate: SKIP — cpu_model unknown "
              f"(baseline: '{base_cpu}', fresh: '{fresh_cpu}'); "
              "numbers are not comparable on an unidentified machine")
        return 0
    if base_cpu != fresh_cpu:
        print("perf_gate: SKIP — baseline was recorded on a different CPU\n"
              f"  baseline: {base_cpu}\n  fresh:    {fresh_cpu}")
        return 0

    if base.get("virtualized") or fresh.get("virtualized"):
        tolerance *= 2.0
        print(f"perf_gate: virtualized host — tolerance widened to "
              f"{tolerance:.0%}")

    # Warn-skips accumulated across every shared_keys()/comparable() call,
    # summarized once at exit so a partial run's coverage gap is visible in
    # one line instead of scattered warnings.
    skipped = {"missing": 0, "incomparable": 0}

    def shared_keys(suffix):
        keys = sorted(k for k in base if k.endswith(suffix))
        in_both = [k for k in keys if k in fresh]
        only_base = [k for k in keys if k not in fresh]
        only_fresh = sorted(k for k in fresh
                            if k.endswith(suffix) and k not in base)
        if only_base:
            # Warn-and-skip, never fail: a quick/partial fresh run (or a
            # retired benchmark) legitimately lacks baseline keys.
            skipped["missing"] += len(only_base)
            print(f"perf_gate: WARNING — {len(only_base)} baseline key(s) "
                  f"missing from fresh run, skipped: {', '.join(only_base)}")
        if only_fresh:
            print(f"perf_gate: note — {len(only_fresh)} new key(s) not in "
                  f"baseline yet: {', '.join(only_fresh)}")
        return in_both

    def comparable(key, b, f):
        if isinstance(b, bool) or isinstance(f, bool) or not (
                isinstance(b, (int, float)) and isinstance(f, (int, float))
                and b > 0):
            skipped["incomparable"] += 1
            print(f"perf_gate: WARNING — {key} is not a comparable pair "
                  f"({b!r} vs {f!r}), skipped")
            return False
        return True

    shared = shared_keys("_ns_per_op")
    regressions = []
    for key in shared:
        b, f = base[key], fresh[key]
        if not comparable(key, b, f):
            continue
        ratio = f / b
        marker = ""
        if ratio > 1.0 + tolerance:
            regressions.append((key, b, f, ratio))
            marker = "  <-- REGRESSION"
        print(f"  {key:<40} {b:>12.1f} -> {f:>12.1f} ns/op "
              f"({ratio - 1.0:+7.1%}){marker}")

    # Speedup ratios: higher is better, tolerance floored at 50% (parallel
    # speedups carry scheduler/core-count noise per-op CPU time does not).
    speedup_tol = max(tolerance, 0.5)
    speedups = shared_keys("_speedup")
    for key in speedups:
        b, f = base[key], fresh[key]
        if not comparable(key, b, f):
            continue
        ratio = f / b
        marker = ""
        if ratio < 1.0 - speedup_tol:
            regressions.append((key, b, f, ratio))
            marker = "  <-- REGRESSION"
        print(f"  {key:<40} {b:>11.2f}x -> {f:>11.2f}x speedup "
              f"({ratio - 1.0:+7.1%}){marker}")

    # Bit-identity booleans: a true baseline must never turn false.
    identity_failures = []
    identities = shared_keys("identity_pass")
    for key in identities:
        b, f = base[key], fresh[key]
        if not (isinstance(b, bool) and isinstance(f, bool)):
            print(f"perf_gate: WARNING — {key} is not a boolean pair "
                  f"({b!r} vs {f!r}), skipped")
            continue
        marker = ""
        if b and not f:
            identity_failures.append(key)
            marker = "  <-- IDENTITY BROKEN"
        print(f"  {key:<40} {str(b):>12} -> {str(f):>12}{marker}")

    total_skipped = skipped["missing"] + skipped["incomparable"]
    if total_skipped:
        print(f"perf_gate: {total_skipped} key(s) warn-skipped "
              f"({skipped['missing']} missing from fresh run, "
              f"{skipped['incomparable']} not comparable) — these were NOT "
              f"gated")

    if not shared and not speedups and not identities:
        print("perf_gate: SKIP — no shared gated keys to compare")
        return 0

    if identity_failures:
        print(f"\nperf_gate: FAIL — bit-identity regressed on: "
              f"{', '.join(identity_failures)}\n"
              "A true baseline identity gate turned false; this is a "
              "determinism bug, not timing noise — fix it, do not "
              "regenerate the baseline.")
        return 1

    if regressions:
        print(f"\nperf_gate: FAIL — {len(regressions)} benchmark(s) more "
              f"than {tolerance:.0%} slower than {paths[0]}:")
        for key, b, f, ratio in regressions:
            print(f"  {key}: {b:.1f} -> {f:.1f} ns/op ({ratio - 1.0:+.1%})")
        print("If the slowdown is intentional, regenerate the baseline with\n"
              "  ./build/bench/bench_microkernels --json=BENCH_microkernels.json\n"
              "and commit it with the change that explains it.")
        return 1

    compared = len(shared) + len(speedups) + len(identities)
    print(f"perf_gate: PASS — {compared} gated key(s) within tolerance "
          f"of {paths[0]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
