// The integer (WBSN-side) neuro-fuzzy classifier.
//
// This is the classifier the paper actually deploys: quantized membership
// functions (linearized or triangular), a fuzzification layer that keeps
// maximum precision in 32-bit registers by block-renormalizing the three
// class accumulators with a common left shift and then discarding the low
// 16 bits after every multiply (Section III-B), and a division-free
// defuzzification that compares (M1 - M2) * 2^16 against alpha_q16 * S using
// only widening multiplies.
//
// The defuzzification rule only depends on the *ratios* of the fuzzy values,
// so the renormalization (a common scale factor) does not change decisions
// — only the bounded precision does, which is exactly the NDR-PC vs
// NDR-WBSN gap Table II measures.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "ecg/types.hpp"
#include "embedded/linear_mf.hpp"
#include "nfc/classifier.hpp"

namespace hbrp::embedded {

enum class MfShape : std::uint8_t { Linearized, Triangular };

/// Reusable workspace for the batched fuzzification path: a transposed
/// coefficient tile (SoA, so each MF sweeps a contiguous run) and the grade
/// tile the MF kernels fill. Sized lazily on first use; one per thread of
/// execution, zero steady-state heap allocation.
struct FuzzifyScratch {
  std::vector<std::int32_t> transposed;   // [k][tile] coefficient columns
  std::vector<std::uint16_t> grades;      // [k][class][tile] MF grades
};

class IntClassifier {
 public:
  /// Quantizes a trained float NFC. Coefficient inputs are the integer
  /// random-projection outputs, so MF centres/widths quantize directly in
  /// the same units.
  static IntClassifier from_float(const nfc::NeuroFuzzyClassifier& nfc,
                                  MfShape shape = MfShape::Linearized);

  std::size_t coefficients() const { return coefficients_; }
  MfShape shape() const { return shape_; }

  /// Membership grade of coefficient k for class cls.
  std::uint16_t grade(std::size_t k, std::size_t cls, std::int32_t x) const;

  /// Fuzzification layer: renormalized per-class fuzzy accumulators.
  /// Values are on a common (power-of-two) scale; only ratios are meaningful.
  std::array<std::uint32_t, ecg::kNumClasses> fuzzify(
      std::span<const std::int32_t> u) const;

  /// Division-free defuzzification on integer fuzzy values.
  /// If every fuzzy value is zero (possible with triangular MFs far from all
  /// classes) the beat is Unknown — i.e. pathological, the safe direction.
  static ecg::BeatClass defuzzify(
      const std::array<std::uint32_t, ecg::kNumClasses>& fuzzy,
      std::uint32_t alpha_q16);

  /// Full integer classification of a projected beat.
  ecg::BeatClass classify(std::span<const std::int32_t> u,
                          std::uint32_t alpha_q16) const;

  /// Batch integer classification: `u` holds `count` beats of
  /// coefficients() projected values each, row-major; one decision per
  /// beat is written to `out`. Bit-identical to classify() per row: the
  /// batched path evaluates the MF grades through the (dispatching) batch
  /// kernels over transposed tiles, then runs the exact renormalization
  /// chain per beat. Allocation-free given a warm `scratch`.
  void classify_batch(std::span<const std::int32_t> u, std::size_t count,
                      std::uint32_t alpha_q16, std::span<ecg::BeatClass> out,
                      FuzzifyScratch& scratch) const;

  /// Convenience overload with a throwaway scratch (one allocation per call).
  void classify_batch(std::span<const std::int32_t> u, std::size_t count,
                      std::uint32_t alpha_q16,
                      std::span<ecg::BeatClass> out) const;

  /// RAM the parameter tables occupy on the node.
  std::size_t memory_bytes() const;

  /// Raw MF table access (deployment export / diagnostics). Only the table
  /// matching shape() may be read.
  const LinearizedMF& linear_mf(std::size_t k, std::size_t cls) const;
  const TriangularMF& triangular_mf(std::size_t k, std::size_t cls) const;

 private:
  IntClassifier() = default;

  std::size_t coefficients_ = 0;
  MfShape shape_ = MfShape::Linearized;
  // Indexed [k * kNumClasses + cls]; only the table matching `shape_` is
  // populated.
  std::vector<LinearizedMF> linear_;
  std::vector<TriangularMF> triangular_;
};

}  // namespace hbrp::embedded
