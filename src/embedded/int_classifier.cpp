#include "embedded/int_classifier.hpp"

#include <algorithm>

#include "kernels/fuzzify.hpp"
#include "math/check.hpp"
#include "math/fixed.hpp"

namespace hbrp::embedded {

IntClassifier IntClassifier::from_float(const nfc::NeuroFuzzyClassifier& nfc,
                                        MfShape shape) {
  IntClassifier out;
  out.coefficients_ = nfc.coefficients();
  out.shape_ = shape;
  const std::size_t n = out.coefficients_ * ecg::kNumClasses;
  if (shape == MfShape::Linearized) {
    out.linear_.reserve(n);
    for (std::size_t k = 0; k < out.coefficients_; ++k)
      for (std::size_t l = 0; l < ecg::kNumClasses; ++l) {
        const nfc::GaussianMF& m = nfc.mf(k, l);
        out.linear_.push_back(LinearizedMF::from_gaussian(m.center, m.sigma));
      }
  } else {
    out.triangular_.reserve(n);
    for (std::size_t k = 0; k < out.coefficients_; ++k)
      for (std::size_t l = 0; l < ecg::kNumClasses; ++l) {
        const nfc::GaussianMF& m = nfc.mf(k, l);
        out.triangular_.push_back(
            TriangularMF::from_gaussian(m.center, m.sigma));
      }
  }
  return out;
}

std::uint16_t IntClassifier::grade(std::size_t k, std::size_t cls,
                                   std::int32_t x) const {
  HBRP_REQUIRE(k < coefficients_ && cls < ecg::kNumClasses,
               "IntClassifier::grade(): index out of range");
  const std::size_t idx = k * ecg::kNumClasses + cls;
  return shape_ == MfShape::Linearized ? linear_[idx].eval(x)
                                       : triangular_[idx].eval(x);
}

std::array<std::uint32_t, ecg::kNumClasses> IntClassifier::fuzzify(
    std::span<const std::int32_t> u) const {
  HBRP_REQUIRE(u.size() == coefficients_,
               "IntClassifier::fuzzify(): input size mismatch");
  std::array<std::uint32_t, ecg::kNumClasses> acc{};

  // Seed with the first coefficient's grades.
  for (std::size_t l = 0; l < ecg::kNumClasses; ++l)
    acc[l] = grade(0, l, u[0]);

  for (std::size_t k = 1; k < coefficients_; ++k) {
    // Renormalize: shift all three accumulators left by the largest common
    // safe amount (dictated by the current maximum), then drop the low 16
    // bits. This keeps the leading 16 bits of the dominant class while
    // preserving the ratios between classes.
    const std::uint32_t top = *std::max_element(acc.begin(), acc.end());
    const int shift = math::headroom32(top);
    for (std::uint32_t& a : acc) a = (a << shift) >> 16;
    // Multiply in the next membership grades: 16-bit x 16-bit -> 32-bit,
    // no overflow possible.
    for (std::size_t l = 0; l < ecg::kNumClasses; ++l)
      acc[l] *= grade(k, l, u[k]);
  }
  return acc;
}

ecg::BeatClass IntClassifier::defuzzify(
    const std::array<std::uint32_t, ecg::kNumClasses>& fuzzy,
    std::uint32_t alpha_q16) {
  HBRP_REQUIRE(alpha_q16 <= math::kQ16One,
               "IntClassifier::defuzzify(): alpha must be <= 1.0 in Q16");
  std::size_t best = 0;
  for (std::size_t l = 1; l < fuzzy.size(); ++l)
    if (fuzzy[l] > fuzzy[best]) best = l;

  std::uint32_t m2 = 0;
  std::uint64_t sum = 0;
  for (std::size_t l = 0; l < fuzzy.size(); ++l) {
    sum += fuzzy[l];
    if (l != best) m2 = std::max(m2, fuzzy[l]);
  }
  if (sum == 0) return ecg::BeatClass::Unknown;

  // (M1 - M2) >= alpha * S, evaluated as
  // (M1 - M2) * 2^16 >= alpha_q16 * S with 64-bit widening multiplies —
  // no division required on the node.
  const std::uint64_t lhs =
      (static_cast<std::uint64_t>(fuzzy[best] - m2)) << 16;
  const std::uint64_t rhs = static_cast<std::uint64_t>(alpha_q16) * sum;
  if (lhs >= rhs) return static_cast<ecg::BeatClass>(best);
  return ecg::BeatClass::Unknown;
}

ecg::BeatClass IntClassifier::classify(std::span<const std::int32_t> u,
                                       std::uint32_t alpha_q16) const {
  return defuzzify(fuzzify(u), alpha_q16);
}

void IntClassifier::classify_batch(std::span<const std::int32_t> u,
                                   std::size_t count, std::uint32_t alpha_q16,
                                   std::span<ecg::BeatClass> out,
                                   FuzzifyScratch& scratch) const {
  HBRP_REQUIRE(u.size() == count * coefficients_,
               "IntClassifier::classify_batch(): input size mismatch");
  HBRP_REQUIRE(out.size() >= count,
               "IntClassifier::classify_batch(): output too small");
  const std::size_t k = coefficients_;

  // Tiny batches: the transpose + kernel launch overhead isn't paid back.
  if (count < 8) {
    for (std::size_t i = 0; i < count; ++i)
      out[i] = classify(u.subspan(i * k, k), alpha_q16);
    return;
  }

  constexpr std::size_t kTile = 128;
  scratch.transposed.resize(k * kTile);
  scratch.grades.resize(k * ecg::kNumClasses * kTile);

  for (std::size_t done = 0; done < count; done += kTile) {
    const std::size_t n = std::min(kTile, count - done);

    // Transpose the tile to SoA so each MF sweeps a contiguous column.
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t* row = u.data() + (done + i) * k;
      for (std::size_t j = 0; j < k; ++j)
        scratch.transposed[j * kTile + i] = row[j];
    }

    // Membership layer through the batch kernels: one kernel call per
    // (coefficient, class) MF over the whole tile.
    for (std::size_t j = 0; j < k; ++j) {
      const std::int32_t* col = scratch.transposed.data() + j * kTile;
      for (std::size_t l = 0; l < ecg::kNumClasses; ++l) {
        const std::size_t idx = j * ecg::kNumClasses + l;
        std::uint16_t* g =
            scratch.grades.data() + (j * ecg::kNumClasses + l) * kTile;
        if (shape_ == MfShape::Linearized)
          kernels::linearized_eval_batch(linear_[idx].center, linear_[idx].s,
                                         col, n, g);
        else
          kernels::triangular_eval_batch(triangular_[idx].center,
                                         triangular_[idx].half_base, col, n, g);
      }
    }

    // Fuzzification + decision per beat: the exact renormalization chain of
    // fuzzify() over the precomputed grades — same arithmetic, same order,
    // so decisions are bit-identical to classify() per row.
    for (std::size_t i = 0; i < n; ++i) {
      std::array<std::uint32_t, ecg::kNumClasses> acc{};
      for (std::size_t l = 0; l < ecg::kNumClasses; ++l)
        acc[l] = scratch.grades[l * kTile + i];
      for (std::size_t j = 1; j < k; ++j) {
        const std::uint32_t top = *std::max_element(acc.begin(), acc.end());
        const int shift = math::headroom32(top);
        for (std::uint32_t& a : acc) a = (a << shift) >> 16;
        for (std::size_t l = 0; l < ecg::kNumClasses; ++l)
          acc[l] *= scratch.grades[(j * ecg::kNumClasses + l) * kTile + i];
      }
      out[done + i] = defuzzify(acc, alpha_q16);
    }
  }
}

void IntClassifier::classify_batch(std::span<const std::int32_t> u,
                                   std::size_t count, std::uint32_t alpha_q16,
                                   std::span<ecg::BeatClass> out) const {
  FuzzifyScratch scratch;
  classify_batch(u, count, alpha_q16, out, scratch);
}

const LinearizedMF& IntClassifier::linear_mf(std::size_t k,
                                             std::size_t cls) const {
  HBRP_REQUIRE(shape_ == MfShape::Linearized,
               "IntClassifier::linear_mf(): classifier is triangular");
  HBRP_REQUIRE(k < coefficients_ && cls < ecg::kNumClasses,
               "IntClassifier::linear_mf(): index out of range");
  return linear_[k * ecg::kNumClasses + cls];
}

const TriangularMF& IntClassifier::triangular_mf(std::size_t k,
                                                 std::size_t cls) const {
  HBRP_REQUIRE(shape_ == MfShape::Triangular,
               "IntClassifier::triangular_mf(): classifier is linearized");
  HBRP_REQUIRE(k < coefficients_ && cls < ecg::kNumClasses,
               "IntClassifier::triangular_mf(): index out of range");
  return triangular_[k * ecg::kNumClasses + cls];
}

std::size_t IntClassifier::memory_bytes() const {
  return shape_ == MfShape::Linearized
             ? linear_.size() * sizeof(LinearizedMF)
             : triangular_.size() * sizeof(TriangularMF);
}

}  // namespace hbrp::embedded
