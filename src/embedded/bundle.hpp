// Deployable embedded classifier bundle.
//
// Everything the WBSN firmware needs for the paper's early-classification
// stage, in its memory-optimized form: the 2-bit packed projection matrix,
// the downsampling factor, the integer MF tables and the Q16 decision
// threshold. classify_window() is bit-exact with what runs on the node, and
// export_c_header() emits the tables as a self-contained C header for
// actual firmware integration.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "embedded/int_classifier.hpp"
#include "rp/packed_matrix.hpp"
#include "rp/projector.hpp"

namespace hbrp::embedded {

/// Reusable workspace for EmbeddedClassifier::classify_batch. The projected-
/// coefficient buffer grows to the largest batch seen and is then reused:
/// steady-state batch classification performs no heap allocation.
struct ClassifyScratch {
  rp::ProjectionScratch projection;
  std::vector<std::int32_t> u;
  FuzzifyScratch fuzzify;
};

class EmbeddedClassifier {
 public:
  EmbeddedClassifier(rp::BeatProjector projector, IntClassifier classifier,
                     std::uint32_t alpha_q16);

  /// Classifies one beat window at the acquisition rate (e.g. 200 samples
  /// at 360 Hz): downsample -> sparse-index projection -> integer NFC.
  ecg::BeatClass classify_window(const dsp::Signal& window) const;

  /// Allocation-free form for streaming callers: the projected-coefficient
  /// buffer lives in `scratch`. Bit-identical to classify_window above.
  ecg::BeatClass classify_window(std::span<const dsp::Sample> window,
                                 ClassifyScratch& scratch) const;

  /// Batch form of classify_window over `count` windows concatenated in
  /// `windows` (each projector().expected_window() samples). Equivalent to
  /// classify_window per beat; all intermediate buffers live in `scratch`.
  void classify_batch(std::span<const dsp::Sample> windows, std::size_t count,
                      std::span<ecg::BeatClass> out,
                      ClassifyScratch& scratch) const;

  /// Changes the test-time threshold (paper: alpha_test is tunable
  /// independently of alpha_train).
  void set_alpha_q16(std::uint32_t alpha_q16);
  std::uint32_t alpha_q16() const { return alpha_q16_; }

  const rp::BeatProjector& projector() const { return projector_; }
  const IntClassifier& classifier() const { return classifier_; }

  /// Total parameter RAM on the node: packed matrix + MF tables.
  std::size_t memory_bytes() const;

  /// Writes the classifier as a C header (static const tables + metadata).
  void export_c_header(std::ostream& out, const char* symbol_prefix) const;

 private:
  rp::BeatProjector projector_;
  IntClassifier classifier_;
  std::uint32_t alpha_q16_ = 0;
};

}  // namespace hbrp::embedded
