#include "embedded/linear_mf.hpp"

#include <cmath>
#include <cstdlib>

#include "math/check.hpp"

namespace hbrp::embedded {

std::uint16_t LinearizedMF::eval(std::int32_t x) const noexcept {
  // Canonical scalar form lives in the kernel layer, shared with the batch
  // (and AVX2) MF kernels so all paths stay bit-identical.
  return kernels::linearized_grade(center, s, x);
}

LinearizedMF LinearizedMF::from_gaussian(double center, double sigma) {
  HBRP_REQUIRE(sigma > 0.0, "LinearizedMF: sigma must be positive");
  LinearizedMF mf;
  mf.center = static_cast<std::int32_t>(std::lround(center));
  const double s_real = 2.35 * sigma;
  mf.s = static_cast<std::uint32_t>(std::lround(std::max(1.0, s_real)));
  return mf;
}

std::uint16_t TriangularMF::eval(std::int32_t x) const noexcept {
  return kernels::triangular_grade(center, half_base, x);
}

TriangularMF TriangularMF::from_gaussian(double center, double sigma) {
  HBRP_REQUIRE(sigma > 0.0, "TriangularMF: sigma must be positive");
  TriangularMF mf;
  mf.center = static_cast<std::int32_t>(std::lround(center));
  mf.half_base =
      static_cast<std::uint32_t>(std::lround(std::max(1.0, 2.0 * 2.35 * sigma)));
  return mf;
}

double linearized_reference(double center, double sigma, double x) {
  HBRP_REQUIRE(sigma > 0.0, "linearized_reference: sigma must be positive");
  const double s = 2.35 * sigma;
  const double dist = std::abs(x - center);
  const double at_s = std::exp(-0.5 * 2.35 * 2.35);
  const double floor_grade = 1.0 / 65535.0;
  if (dist >= 4 * s) return 0.0;
  if (dist >= 2 * s) return floor_grade;
  if (dist >= s) return at_s - (dist - s) / s * (at_s - floor_grade);
  return 1.0 - dist / s * (1.0 - at_s);
}

double triangular_reference(double center, double sigma, double x) {
  HBRP_REQUIRE(sigma > 0.0, "triangular_reference: sigma must be positive");
  const double base = 2.0 * 2.35 * sigma;
  const double dist = std::abs(x - center);
  if (dist >= base) return 0.0;
  return 1.0 - dist / base;
}

}  // namespace hbrp::embedded
