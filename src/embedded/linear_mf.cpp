#include "embedded/linear_mf.hpp"

#include <cmath>
#include <cstdlib>

#include "math/check.hpp"

namespace hbrp::embedded {

namespace {

// |x - c| without signed overflow (the difference of two int32 can exceed
// int32 range).
std::uint32_t abs_distance(std::int32_t x, std::int32_t c) {
  const std::int64_t d = static_cast<std::int64_t>(x) - c;
  return static_cast<std::uint32_t>(d >= 0 ? d : -d);
}

}  // namespace

std::uint16_t LinearizedMF::eval(std::int32_t x) const noexcept {
  const std::uint32_t dist = abs_distance(x, center);
  if (dist >= 4 * static_cast<std::uint64_t>(s)) return 0;
  if (dist >= 2 * s) return 1;
  if (dist >= s) {
    // Shallow segment: kGradeAtS at S down to 1 at 2S.
    const std::uint64_t drop =
        static_cast<std::uint64_t>(dist - s) * (kGradeAtS - 1);
    return static_cast<std::uint16_t>(kGradeAtS - drop / s);
  }
  // Steep segment: 65535 at the centre down to kGradeAtS at S.
  const std::uint64_t drop =
      static_cast<std::uint64_t>(dist) * (65535 - kGradeAtS);
  return static_cast<std::uint16_t>(65535 - drop / s);
}

LinearizedMF LinearizedMF::from_gaussian(double center, double sigma) {
  HBRP_REQUIRE(sigma > 0.0, "LinearizedMF: sigma must be positive");
  LinearizedMF mf;
  mf.center = static_cast<std::int32_t>(std::lround(center));
  const double s_real = 2.35 * sigma;
  mf.s = static_cast<std::uint32_t>(std::lround(std::max(1.0, s_real)));
  return mf;
}

std::uint16_t TriangularMF::eval(std::int32_t x) const noexcept {
  const std::uint32_t dist = abs_distance(x, center);
  if (dist >= half_base) return 0;
  const std::uint64_t drop = static_cast<std::uint64_t>(dist) * 65535;
  return static_cast<std::uint16_t>(65535 - drop / half_base);
}

TriangularMF TriangularMF::from_gaussian(double center, double sigma) {
  HBRP_REQUIRE(sigma > 0.0, "TriangularMF: sigma must be positive");
  TriangularMF mf;
  mf.center = static_cast<std::int32_t>(std::lround(center));
  mf.half_base =
      static_cast<std::uint32_t>(std::lround(std::max(1.0, 2.0 * 2.35 * sigma)));
  return mf;
}

double linearized_reference(double center, double sigma, double x) {
  HBRP_REQUIRE(sigma > 0.0, "linearized_reference: sigma must be positive");
  const double s = 2.35 * sigma;
  const double dist = std::abs(x - center);
  const double at_s = std::exp(-0.5 * 2.35 * 2.35);
  const double floor_grade = 1.0 / 65535.0;
  if (dist >= 4 * s) return 0.0;
  if (dist >= 2 * s) return floor_grade;
  if (dist >= s) return at_s - (dist - s) / s * (at_s - floor_grade);
  return 1.0 - dist / s * (1.0 - at_s);
}

double triangular_reference(double center, double sigma, double x) {
  HBRP_REQUIRE(sigma > 0.0, "triangular_reference: sigma must be positive");
  const double base = 2.0 * 2.35 * sigma;
  const double dist = std::abs(x - center);
  if (dist >= base) return 0.0;
  return 1.0 - dist / base;
}

}  // namespace hbrp::embedded
