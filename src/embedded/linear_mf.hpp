// Integer membership functions for the WBSN-side classifier.
//
// Section III-B of the paper: the trained Gaussian MFs cannot run on the
// target (no FPU, no exp), so each is approximated on the integer range
// [0, 2^16 - 1] by four segments with breakpoints at S, 2S and 4S from the
// centre, where S = 2.35 sigma (the Gaussian full-width-half-maximum):
//
//   MFlin(x) = 0                         if |c - x| >= 4S
//            = 1                         if 2S <= |c - x| < 4S
//            = lin. approx 1 (shallow)   if  S <= |c - x| < 2S
//            = lin. approx 2 (steep)     if       |c - x| < S
//
// The long tail of grade 1 out to 4S is the property Fig. 4 highlights: a
// fuzzy product rarely collapses to zero, unlike the simpler triangular MF
// (also provided here, as the paper's Fig. 5 ablation baseline), which is
// identically zero outside |c - x| < 2S.
//
// Segment anchor values quantize the Gaussian itself: grade 65535 at the
// centre and exp(-2.35^2 / 2) * 65535 ~= 4147 at |c - x| = S.
#pragma once

#include <cstdint>

#include "kernels/fuzzify.hpp"
#include "math/fixed.hpp"

namespace hbrp::embedded {

/// Quantized Gaussian grade at one S (= 2.35 sigma) from the centre.
/// Canonical home is the kernel layer (shared with the batch MF kernels).
inline constexpr std::uint16_t kGradeAtS = kernels::kLinGradeAtS;

/// Four-segment linearized membership function. All arithmetic is integer;
/// eval() is the kernel executed per coefficient per class on the WBSN.
struct LinearizedMF {
  std::int32_t center = 0;
  /// S = 2.35 sigma in input units; always >= 1.
  std::uint32_t s = 1;

  /// Membership grade in [0, 65535].
  std::uint16_t eval(std::int32_t x) const noexcept;

  /// Quantizes a trained Gaussian (centre, sigma).
  static LinearizedMF from_gaussian(double center, double sigma);
};

/// Triangular membership function: 65535 at the centre, linearly down to 0
/// at |c - x| = 2S (matching the linearized MF's sloped support), 0 outside.
struct TriangularMF {
  std::int32_t center = 0;
  std::uint32_t half_base = 1;  ///< 2S in input units; always >= 1

  std::uint16_t eval(std::int32_t x) const noexcept;

  static TriangularMF from_gaussian(double center, double sigma);
};

/// Float-side reference of the linearized shape (for Fig. 4 style error
/// analysis against the true Gaussian, without quantization effects).
double linearized_reference(double center, double sigma, double x);
double triangular_reference(double center, double sigma, double x);

}  // namespace hbrp::embedded
