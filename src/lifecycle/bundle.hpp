// lifecycle::ModelBundle — the versioned deployment artefact.
//
// A trained classifier is only half of what a fleet deploys: the drift
// tracker's centroid seeds are computed from the *same* training split and
// projections, and a session running model version N against seeds exported
// for version M silently corrupts novelty detection (the centroids live in
// the old matrix's RP space). The bundle closes that gap by packaging the
// TrainedClassifier, its RP matrix identity and its drift centroids/sigmas
// as one atomic unit under a monotonic `version` and a content digest.
//
// The encoded image reuses the hardened model_io v2 framing discipline —
// version-bearing magic, explicit payload size, CRC32 over the payload
// verified before any length field is trusted, bounds-checked dimensions,
// atomic temp+rename saves — with its own magic ("HBRPBN01") so the two
// formats can never be confused. The same byte image is what streams over
// MODEL_PUSH_PART frames: `bundle_digest()` over the image is the
// end-to-end integrity check the gateway recomputes after reassembly,
// independent of the per-frame CRCs.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <vector>

#include "core/trainer.hpp"
#include "drift/tracker.hpp"
#include "service/session.hpp"

namespace hbrp::lifecycle {

struct ModelBundle {
  /// Monotonic deployment version; the registry refuses downgrades.
  std::uint64_t version = 1;
  core::TrainedClassifier model;
  /// Drift seeds exported with the model (empty `centroids.centroids`
  /// means the bundle ships no seeds and sessions run with drift off).
  drift::TrainingCentroids centroids;
  /// Deployment threshold for quantize(); negative = use alpha_train.
  double alpha_test = -1.0;
};

/// Serializes the bundle to its canonical byte image (magic + sizes + CRC
/// + payload) — the unit that is saved to disk and streamed over the wire.
std::vector<unsigned char> encode_bundle(const ModelBundle& bundle);

/// Parses an image produced by encode_bundle(). Throws hbrp::Error on bad
/// magic, bad CRC, truncation or any malformed/out-of-bounds field.
ModelBundle decode_bundle(std::span<const unsigned char> image);

/// FNV-1a 64-bit content digest over the full encoded image. Announced in
/// MODEL_PUSH and recomputed by the gateway over the reassembled parts.
std::uint64_t bundle_digest(std::span<const unsigned char> image);

/// Atomic save (temp + rename, parents created). Throws hbrp::Error.
void save_bundle(const ModelBundle& bundle, const std::filesystem::path& path);

/// Loads an image written by save_bundle(). Throws hbrp::Error.
ModelBundle load_bundle(const std::filesystem::path& path);

/// Deprecated-cache shim: loads `path` as a bundle, falling back to the
/// pre-lifecycle model_io v2 format (a bare TrainedClassifier) when the
/// magic says so — wrapped as version 1 with no drift seeds, since the old
/// format never carried any. New code should save bundles; this exists so
/// old on-disk model caches keep booting nodes across the transition.
ModelBundle load_bundle_or_model(const std::filesystem::path& path);

/// Quantizes the bundle into the runtime handle sessions actually hold:
/// the embedded classifier at alpha_test (or alpha_train when negative)
/// plus the shared centroid seeds (null when the bundle ships none).
/// Throws hbrp::Error when non-empty centroids disagree with the model's
/// coefficient count — the exact skew the bundle exists to prevent.
std::shared_ptr<const service::SessionModel> instantiate_bundle(
    const ModelBundle& bundle);

}  // namespace hbrp::lifecycle
