// lifecycle::BundleRegistry — bounded, pin-aware model-version store.
//
// The gateway keeps every deployable SessionModel here: a small fixed
// number of slots (an embedded collector cannot hoard every version ever
// pushed), an `active` version that new sessions and fleet-wide swaps
// target, and the previously active version kept addressable for
// rollback. Reclamation is by pin count: a slot's model is "pinned" while
// anything outside the registry still references it (live sessions hold
// the SessionModel by shared_ptr, so the pin count is simply the
// shared_ptr's external use count) — an evicted version can therefore
// never be one a session is still classifying with.
//
// Admission is deliberately strict and deterministic:
//   - a version already registered is refused (Duplicate) even with
//     identical content — re-pushing is a pusher-side bug worth surfacing;
//   - a version older than the active one is refused (Downgrade); going
//     back is what rollback() is for, on the version already vetted;
//   - a model whose window length or coefficient count differs from the
//     incumbent's is refused (BadGeometry) — sessions swap classifiers at
//     a beat boundary without re-windowing, so shapes must match;
//   - at capacity the lowest-version unpinned slot that is neither active
//     nor the rollback target is evicted; if none qualifies the push is
//     refused (RegistryFull) rather than evicting something live.
//
// All operations are mutex-guarded and cold-path: the hot path holds
// SessionModel shared_ptrs and never touches the registry.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "service/session.hpp"

namespace hbrp::lifecycle {

struct RegistryConfig {
  /// Bounded version slots (>= 2 so active + one candidate always fit).
  std::size_t max_slots = 4;
};

enum class AdmitResult : std::uint8_t {
  Ok = 0,
  Duplicate,
  Downgrade,
  BadGeometry,
  RegistryFull,
};

const char* to_string(AdmitResult r);

class BundleRegistry {
 public:
  explicit BundleRegistry(RegistryConfig cfg = {});

  /// Registers a decoded, digest-verified model. On Ok the model occupies
  /// a slot but nothing is promoted — deployment is a separate decision.
  AdmitResult admit(std::shared_ptr<const service::SessionModel> model,
                    std::uint64_t digest);

  /// Makes `version` the active deployment target; the incumbent becomes
  /// the rollback target. False when the version is not registered.
  bool promote(std::uint64_t version);

  /// Reverts active to the previously active version (they swap, so a
  /// second rollback undoes the first). False when there is none.
  bool rollback();

  std::shared_ptr<const service::SessionModel> active() const;
  std::uint64_t active_version() const;
  std::shared_ptr<const service::SessionModel> find(
      std::uint64_t version) const;
  /// External (non-registry) references on a registered version's model —
  /// the pin count eviction honours. 0 when unknown or unpinned.
  std::size_t pins(std::uint64_t version) const;
  std::size_t size() const;
  std::size_t capacity() const { return cfg_.max_slots; }

 private:
  struct Slot {
    std::shared_ptr<const service::SessionModel> model;
    std::uint64_t digest = 0;
  };

  RegistryConfig cfg_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
  std::uint64_t active_ = 0;    // version; 0 = none
  std::uint64_t previous_ = 0;  // rollback target; 0 = none
};

}  // namespace hbrp::lifecycle
