// lifecycle::AbSplit — deterministic A/B arm assignment for a ward.
//
// Partitions sessions between two registered model versions by a seeded
// hash of the node id: the assignment is a pure function of (seed,
// percent_b, node_id), so every reactor, every restart and every offline
// scorer agrees on which arm a node belongs to without any shared state —
// the property that lets examples/ab_ward replay the adversarial suite
// per-arm and compare against the live gateway's split.
//
// The hash is splitmix64 (Steele et al.), a full-period 64-bit mixer with
// measured near-uniform avalanche — `node_id % 2` style splits would
// correlate with ward wiring order and silently bias the arms.
#pragma once

#include <cstdint>

namespace hbrp::lifecycle {

struct AbSplit {
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  /// Percentage of nodes assigned to arm B (the candidate), 0..100.
  std::uint32_t percent_b = 50;

  /// 0 = arm A (incumbent), 1 = arm B (candidate).
  std::uint8_t arm(std::uint64_t node_id) const {
    std::uint64_t z = node_id + seed + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return (z % 100) < percent_b ? 1 : 0;
  }
};

}  // namespace hbrp::lifecycle
