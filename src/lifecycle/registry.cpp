#include "lifecycle/registry.hpp"

#include <algorithm>

#include "math/check.hpp"

namespace hbrp::lifecycle {

const char* to_string(AdmitResult r) {
  switch (r) {
    case AdmitResult::Ok: return "ok";
    case AdmitResult::Duplicate: return "duplicate-version";
    case AdmitResult::Downgrade: return "downgrade";
    case AdmitResult::BadGeometry: return "bad-geometry";
    case AdmitResult::RegistryFull: return "registry-full";
  }
  return "?";
}

BundleRegistry::BundleRegistry(RegistryConfig cfg) : cfg_(cfg) {
  HBRP_REQUIRE(cfg_.max_slots >= 2,
               "BundleRegistry: max_slots must be >= 2 (active + candidate)");
  slots_.reserve(cfg_.max_slots);
}

AdmitResult BundleRegistry::admit(
    std::shared_ptr<const service::SessionModel> model, std::uint64_t digest) {
  HBRP_REQUIRE(model != nullptr && model->version >= 1,
               "BundleRegistry: model must be non-null with version >= 1");
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& s : slots_)
    if (s.model->version == model->version) return AdmitResult::Duplicate;
  const Slot* incumbent = nullptr;
  for (const Slot& s : slots_)
    if (s.model->version == active_) incumbent = &s;
  if (incumbent != nullptr) {
    if (model->version < active_) return AdmitResult::Downgrade;
    const auto& in = incumbent->model->classifier.projector();
    const auto& nu = model->classifier.projector();
    if (in.expected_window() != nu.expected_window() ||
        in.coefficients() != nu.coefficients())
      return AdmitResult::BadGeometry;
  }
  if (slots_.size() >= cfg_.max_slots) {
    // Evict the lowest-version slot that is unpinned (use_count == 1:
    // only the registry's own reference remains) and neither active nor
    // the rollback target.
    std::size_t victim = slots_.size();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& s = slots_[i];
      const std::uint64_t v = s.model->version;
      if (v == active_ || v == previous_ || s.model.use_count() != 1)
        continue;
      if (victim == slots_.size() ||
          v < slots_[victim].model->version)
        victim = i;
    }
    if (victim == slots_.size()) return AdmitResult::RegistryFull;
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  slots_.push_back(Slot{std::move(model), digest});
  return AdmitResult::Ok;
}

bool BundleRegistry::promote(std::uint64_t version) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find_if(slots_.begin(), slots_.end(),
                               [&](const Slot& s) {
                                 return s.model->version == version;
                               });
  if (it == slots_.end()) return false;
  if (active_ != version) {
    previous_ = active_;
    active_ = version;
  }
  return true;
}

bool BundleRegistry::rollback() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (previous_ == 0) return false;
  std::swap(active_, previous_);
  return true;
}

std::shared_ptr<const service::SessionModel> BundleRegistry::active() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& s : slots_)
    if (s.model->version == active_) return s.model;
  return nullptr;
}

std::uint64_t BundleRegistry::active_version() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

std::shared_ptr<const service::SessionModel> BundleRegistry::find(
    std::uint64_t version) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& s : slots_)
    if (s.model->version == version) return s.model;
  return nullptr;
}

std::size_t BundleRegistry::pins(std::uint64_t version) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& s : slots_)
    if (s.model->version == version)
      return static_cast<std::size_t>(
          std::max<long>(0, s.model.use_count() - 1));
  return 0;
}

std::size_t BundleRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

}  // namespace hbrp::lifecycle
