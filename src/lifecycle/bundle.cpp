#include "lifecycle/bundle.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "core/model_io.hpp"
#include "math/check.hpp"
#include "math/crc32.hpp"
#include "math/endian.hpp"

namespace hbrp::lifecycle {

namespace {

// Image layout (all multi-byte fields little-endian via math/endian.hpp):
//   magic "HBRPBN01" (8 bytes)
//   u32 payload_size | u32 crc32(payload)
//   payload:
//     u64 version | double alpha_test
//     u32 rows | u32 cols | u32 downsample
//     rows*cols int8 matrix
//     rows*kNumClasses {double center, double sigma}
//     double alpha_train
//     u32 centroid_count
//     when centroid_count > 0:
//       u32 coefficients (must equal rows) | double scale
//       per centroid: double mass | double sigma | coefficients doubles
constexpr char kMagic[8] = {'H', 'B', 'R', 'P', 'B', 'N', '0', '1'};

// Same sanity bounds as model_io v2, plus a centroid budget far above any
// real export (one centroid per beat class) but too small to let a corrupt
// count demand gigabytes.
constexpr std::uint32_t kMaxRows = 4096;
constexpr std::uint32_t kMaxCols = 65536;
constexpr std::uint32_t kMaxDownsample = 4096;
constexpr std::uint32_t kMaxCentroids = 256;
constexpr std::size_t kMaxImageBytes = std::size_t{1} << 28;
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(std::uint32_t);

void append_payload(std::vector<unsigned char>& out,
                    const ModelBundle& bundle) {
  using math::append_le;
  const rp::TernaryMatrix& p = bundle.model.projector.matrix();
  const std::size_t k = bundle.model.nfc.coefficients();
  HBRP_REQUIRE(k == p.rows(), "bundle: inconsistent model");
  HBRP_REQUIRE(bundle.version >= 1, "bundle: version must be >= 1");
  append_le(out, bundle.version);
  append_le(out, bundle.alpha_test);
  append_le(out, static_cast<std::uint32_t>(p.rows()));
  append_le(out, static_cast<std::uint32_t>(p.cols()));
  append_le(out, static_cast<std::uint32_t>(
                     bundle.model.projector.downsample_factor()));
  for (std::size_t r = 0; r < p.rows(); ++r)
    for (std::size_t c = 0; c < p.cols(); ++c)
      append_le(out, static_cast<std::int8_t>(p.at(r, c)));
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t l = 0; l < ecg::kNumClasses; ++l) {
      const nfc::GaussianMF& m = bundle.model.nfc.mf(i, l);
      append_le(out, m.center);
      append_le(out, m.sigma);
    }
  append_le(out, bundle.model.alpha_train);
  const auto& seeds = bundle.centroids;
  append_le(out, static_cast<std::uint32_t>(seeds.centroids.size()));
  if (!seeds.centroids.empty()) {
    HBRP_REQUIRE(seeds.coefficients == k,
                 "bundle: centroid coefficients differ from the model");
    append_le(out, static_cast<std::uint32_t>(seeds.coefficients));
    append_le(out, seeds.scale);
    for (const auto& c : seeds.centroids) {
      HBRP_REQUIRE(c.mean.size() == seeds.coefficients,
                   "bundle: centroid dimension mismatch");
      append_le(out, c.mass);
      append_le(out, c.sigma);
      for (const double v : c.mean) append_le(out, v);
    }
  }
}

ModelBundle decode_payload(std::span<const unsigned char> payload) {
  math::ByteReader r(payload.data(), payload.size());
  HBRP_REQUIRE(payload.size() >= 8 + 8 + 3 * 4, "bundle: truncated payload");
  const auto version = r.get<std::uint64_t>();
  const double alpha_test = r.get<double>();
  const auto rows = r.get<std::uint32_t>();
  const auto cols = r.get<std::uint32_t>();
  const auto downsample = r.get<std::uint32_t>();
  HBRP_REQUIRE(version >= 1, "bundle: version must be >= 1");
  HBRP_REQUIRE(std::isfinite(alpha_test) || alpha_test < 0.0,
               "bundle: alpha_test not finite");
  HBRP_REQUIRE(alpha_test <= 1.0, "bundle: alpha_test out of range");
  HBRP_REQUIRE(rows >= 1 && rows <= kMaxRows && cols >= 1 &&
                   cols <= kMaxCols && downsample >= 1 &&
                   downsample <= kMaxDownsample,
               "bundle: malformed model header");
  const std::size_t model_bytes =
      static_cast<std::size_t>(rows) * cols +
      static_cast<std::size_t>(rows) * ecg::kNumClasses * 2 * sizeof(double) +
      sizeof(double) + sizeof(std::uint32_t);
  HBRP_REQUIRE(r.remaining() >= model_bytes, "bundle: truncated model");

  rp::TernaryMatrix p(rows, cols);
  for (std::size_t row = 0; row < rows; ++row)
    for (std::size_t c = 0; c < cols; ++c)
      p.set(row, c, r.get<std::int8_t>());  // set() validates {-1, 0, 1}

  nfc::NeuroFuzzyClassifier classifier(rows);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t l = 0; l < ecg::kNumClasses; ++l) {
      nfc::GaussianMF m;
      m.center = r.get<double>();
      m.sigma = r.get<double>();
      HBRP_REQUIRE(std::isfinite(m.center) && std::isfinite(m.sigma) &&
                       m.sigma > 0.0,
                   "bundle: invalid membership function");
      classifier.mf(i, l) = m;
    }
  const double alpha_train = r.get<double>();
  HBRP_REQUIRE(std::isfinite(alpha_train) && alpha_train >= 0.0 &&
                   alpha_train <= 1.0,
               "bundle: alpha_train out of range");

  ModelBundle bundle{version,
                     core::TrainedClassifier{
                         rp::BeatProjector(std::move(p), downsample),
                         std::move(classifier), alpha_train},
                     {},
                     alpha_test};

  const auto centroid_count = r.get<std::uint32_t>();
  HBRP_REQUIRE(centroid_count <= kMaxCentroids,
               "bundle: implausible centroid count");
  if (centroid_count > 0) {
    HBRP_REQUIRE(r.remaining() >= sizeof(std::uint32_t) + sizeof(double),
                 "bundle: truncated centroid header");
    const auto coefficients = r.get<std::uint32_t>();
    const double scale = r.get<double>();
    HBRP_REQUIRE(coefficients == rows,
                 "bundle: centroid coefficients differ from the model");
    HBRP_REQUIRE(std::isfinite(scale) && scale > 0.0,
                 "bundle: centroid scale out of range");
    const std::size_t per_centroid =
        2 * sizeof(double) + coefficients * sizeof(double);
    HBRP_REQUIRE(r.remaining() == centroid_count * per_centroid,
                 "bundle: centroid block size mismatch");
    bundle.centroids.coefficients = coefficients;
    bundle.centroids.scale = scale;
    bundle.centroids.centroids.resize(centroid_count);
    for (auto& c : bundle.centroids.centroids) {
      c.mass = r.get<double>();
      c.sigma = r.get<double>();
      HBRP_REQUIRE(std::isfinite(c.mass) && c.mass >= 0.0 &&
                       std::isfinite(c.sigma) && c.sigma >= 0.0,
                   "bundle: invalid centroid moments");
      c.mean.resize(coefficients);
      for (double& v : c.mean) {
        v = r.get<double>();
        HBRP_REQUIRE(std::isfinite(v), "bundle: non-finite centroid mean");
      }
    }
  }
  HBRP_REQUIRE(r.remaining() == 0, "bundle: trailing bytes in payload");
  return bundle;
}

}  // namespace

std::vector<unsigned char> encode_bundle(const ModelBundle& bundle) {
  std::vector<unsigned char> payload;
  append_payload(payload, bundle);
  std::vector<unsigned char> image;
  image.reserve(kHeaderBytes + payload.size());
  image.insert(image.end(), kMagic, kMagic + sizeof(kMagic));
  math::append_le(image, static_cast<std::uint32_t>(payload.size()));
  math::append_le(image, math::crc32(payload.data(), payload.size()));
  image.insert(image.end(), payload.begin(), payload.end());
  return image;
}

ModelBundle decode_bundle(std::span<const unsigned char> image) {
  HBRP_REQUIRE(image.size() >= kHeaderBytes && image.size() <= kMaxImageBytes,
               "bundle: implausible image size");
  HBRP_REQUIRE(std::equal(kMagic, kMagic + sizeof(kMagic),
                          reinterpret_cast<const char*>(image.data())),
               "bundle: bad magic");
  const auto declared =
      math::load_le<std::uint32_t>(image.data() + sizeof(kMagic));
  const auto crc_stored =
      math::load_le<std::uint32_t>(image.data() + sizeof(kMagic) + 4);
  HBRP_REQUIRE(declared == image.size() - kHeaderBytes,
               "bundle: payload size mismatch");
  const std::span<const unsigned char> payload = image.subspan(kHeaderBytes);
  HBRP_REQUIRE(math::crc32(payload.data(), payload.size()) == crc_stored,
               "bundle: checksum mismatch");
  return decode_payload(payload);
}

std::uint64_t bundle_digest(std::span<const unsigned char> image) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  for (const unsigned char b : image) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

void save_bundle(const ModelBundle& bundle,
                 const std::filesystem::path& path) {
  const std::vector<unsigned char> image = encode_bundle(bundle);
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    HBRP_REQUIRE(out.good(), "bundle: cannot open for write: " + tmp.string());
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    out.flush();
    HBRP_REQUIRE(out.good(), "bundle: write failure: " + tmp.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp);
    HBRP_REQUIRE(false,
                 "bundle: cannot publish " + path.string() + ": " +
                     ec.message());
  }
}

ModelBundle load_bundle(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  HBRP_REQUIRE(in.good(), "bundle: cannot open: " + path.string());
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path, ec);
  HBRP_REQUIRE(!ec, "bundle: cannot stat: " + path.string());
  HBRP_REQUIRE(file_size >= kHeaderBytes && file_size <= kMaxImageBytes,
               "bundle: implausible file size in " + path.string());
  std::vector<unsigned char> image(static_cast<std::size_t>(file_size));
  in.read(reinterpret_cast<char*>(image.data()),
          static_cast<std::streamsize>(image.size()));
  HBRP_REQUIRE(in.good(), "bundle: truncated read: " + path.string());
  return decode_bundle(image);
}

ModelBundle load_bundle_or_model(const std::filesystem::path& path) {
  {
    std::ifstream in(path, std::ios::binary);
    HBRP_REQUIRE(in.good(), "bundle: cannot open: " + path.string());
    char magic[sizeof(kMagic)] = {};
    in.read(magic, sizeof(magic));
    if (in.good() && std::equal(magic, magic + sizeof(kMagic), kMagic))
      return load_bundle(path);
  }
  // Pre-lifecycle cache: a bare model_io v2 TrainedClassifier. No drift
  // seeds existed in that format, so the shim wraps it seedless at
  // version 1 — callers that need tracking must re-export a real bundle.
  ModelBundle bundle{1, core::load_model(path), {}, -1.0};
  return bundle;
}

std::shared_ptr<const service::SessionModel> instantiate_bundle(
    const ModelBundle& bundle) {
  std::shared_ptr<const drift::TrainingCentroids> seeds;
  if (!bundle.centroids.centroids.empty()) {
    HBRP_REQUIRE(bundle.centroids.coefficients ==
                     bundle.model.nfc.coefficients(),
                 "bundle: centroid coefficients differ from the model");
    seeds = std::make_shared<const drift::TrainingCentroids>(bundle.centroids);
  }
  return std::make_shared<const service::SessionModel>(service::SessionModel{
      bundle.version,
      bundle.model.quantize(embedded::MfShape::Linearized, bundle.alpha_test),
      std::move(seeds)});
}

}  // namespace hbrp::lifecycle
