// Multi-scale Morphological Derivative (MMD) wave delineation.
//
// The paper's "detailed analysis" stage — the expensive workload its RP
// classifier gates — is the multi-lead delineation of Rincon et al. (IEEE
// TITB 2011), which locates the onset, peak and end of the P wave, QRS
// complex and T wave using morphological derivatives.
//
// The MMD operator at scale s is
//     MMD_s(x)[n] = dilate_s(x)[n] + erode_s(x)[n] - 2 x[n]
// (a second-derivative analogue that is immune to impulse noise): it is
// strongly positive at valley-shaped points and strongly negative at
// peak-shaped ones, with wave boundaries appearing as extrema of the
// response at a scale matched to the wave's width.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/signal.hpp"
#include "ecg/types.hpp"

namespace hbrp::delineation {

/// MMD response of `x` at structuring-element scale `length` (odd samples).
dsp::Signal mmd(const dsp::Signal& x, std::size_t length);

struct DelineatorConfig {
  int fs_hz = dsp::kMitBihFs;
  /// MMD structuring-element lengths, in seconds, for QRS-scale and
  /// P/T-scale analysis.
  double qrs_scale_s = 0.06;
  double wave_scale_s = 0.14;
  /// Search windows relative to the R peak (seconds).
  double qrs_onset_search_s = 0.18;
  double qrs_end_search_s = 0.20;
  double p_search_s = 0.32;
  double t_search_s = 0.48;
  /// Amplitude threshold (fraction of wave peak MMD response) used to
  /// accept a P/T wave as present.
  double wave_presence_frac = 0.08;
};

/// Delineates one beat on conditioned single-lead data.
/// Returns fiducial sample indices (absolute); absent waves are flagged
/// with Fiducials::kNoFiducial.
ecg::Fiducials delineate_beat(const dsp::Signal& conditioned,
                              std::size_t r_peak,
                              const DelineatorConfig& cfg = {});

/// Multi-lead delineation: each lead is delineated independently and the
/// per-lead fiducials are fused by median (the multi-lead rule of [1],
/// which rejects a single noisy lead).
ecg::Fiducials delineate_beat_multilead(
    const std::vector<dsp::Signal>& conditioned_leads, std::size_t r_peak,
    const DelineatorConfig& cfg = {});

/// Mean absolute error (in samples) between detected and reference
/// fiducials, over the points present in both.
struct DelineationError {
  double mean_abs_error_samples = 0.0;
  std::size_t points_compared = 0;
  std::size_t points_missed = 0;  ///< present in reference, not detected
};
DelineationError compare_fiducials(const ecg::Fiducials& detected,
                                   const ecg::Fiducials& reference);

}  // namespace hbrp::delineation
