#include "delineation/mmd.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "dsp/morphology.hpp"
#include "math/check.hpp"

namespace hbrp::delineation {

dsp::Signal mmd(const dsp::Signal& x, std::size_t length) {
  const dsp::Signal d = dsp::dilate(x, length);
  const dsp::Signal e = dsp::erode(x, length);
  dsp::Signal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = d[i] + e[i] - 2 * x[i];
  return out;
}

namespace {

std::size_t odd_samples(double seconds, int fs) {
  auto n = static_cast<std::size_t>(seconds * fs);
  if (n % 2 == 0) ++n;
  return std::max<std::size_t>(n, 3);
}

// Scans from `from` in `step` direction (+1/-1) until |resp| stays below
// `thr` for `run` consecutive samples or `limit` is reached; returns the
// first sample of that quiet run (the wave boundary).
std::size_t scan_boundary(const dsp::Signal& resp, std::size_t from, int step,
                          dsp::Sample thr, std::size_t run,
                          std::size_t limit) {
  std::size_t quiet = 0;
  std::size_t i = from;
  std::size_t boundary = limit;
  for (;;) {
    if (std::abs(resp[i]) < thr) {
      if (quiet == 0) boundary = i;
      if (++quiet >= run) return boundary;
    } else {
      quiet = 0;
    }
    if (i == limit) break;
    i = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(i) + step);
  }
  return limit;
}

// Scans outward from a wave peak until the signal amplitude decays below
// 5% of the peak (matching the generator's +-2.5 sigma ground-truth extent)
// plus a small noise floor.
std::size_t amplitude_boundary(const dsp::Signal& x, std::size_t peak,
                               int step, std::size_t limit) {
  const auto peak_amp = static_cast<double>(std::abs(x[peak]));
  const double thr = std::max(3.0, 0.05 * peak_amp);
  std::size_t i = peak;
  while (i != limit) {
    const auto next =
        static_cast<std::size_t>(static_cast<std::ptrdiff_t>(i) + step);
    if (std::abs(x[next]) < thr) return next;
    i = next;
  }
  return limit;
}

// Largest-|amplitude| sample in [lo, hi].
std::size_t abs_argmax(const dsp::Signal& x, std::size_t lo, std::size_t hi) {
  std::size_t best = lo;
  for (std::size_t i = lo; i <= hi; ++i)
    if (std::abs(x[i]) > std::abs(x[best])) best = i;
  return best;
}

}  // namespace

ecg::Fiducials delineate_beat(const dsp::Signal& conditioned,
                              std::size_t r_peak,
                              const DelineatorConfig& cfg) {
  HBRP_REQUIRE(cfg.fs_hz > 0, "delineate_beat(): fs must be positive");
  HBRP_REQUIRE(r_peak < conditioned.size(),
               "delineate_beat(): r_peak out of range");

  const int fs = cfg.fs_hz;
  auto samples = [fs](double s) {
    return static_cast<std::size_t>(s * fs);
  };

  // Work on a crop around the beat so per-beat cost is O(beat), not O(record).
  const std::size_t margin = samples(0.75);
  const std::size_t crop_lo = r_peak > margin ? r_peak - margin : 0;
  const std::size_t crop_hi =
      std::min(conditioned.size() - 1, r_peak + margin);
  dsp::Signal crop(conditioned.begin() + static_cast<std::ptrdiff_t>(crop_lo),
                   conditioned.begin() + static_cast<std::ptrdiff_t>(crop_hi) +
                       1);
  const std::size_t r = r_peak - crop_lo;
  const std::size_t last = crop.size() - 1;

  const dsp::Signal q_resp = mmd(crop, odd_samples(cfg.qrs_scale_s, fs));

  ecg::Fiducials f;
  f.r_peak = r_peak;

  // --- QRS boundaries ------------------------------------------------------
  const std::size_t qrs_lo =
      r > samples(cfg.qrs_onset_search_s) ? r - samples(cfg.qrs_onset_search_s)
                                          : 0;
  const std::size_t qrs_hi =
      std::min(last, r + samples(cfg.qrs_end_search_s));
  dsp::Sample qrs_max = 0;
  for (std::size_t i = qrs_lo; i <= qrs_hi; ++i)
    qrs_max = std::max(qrs_max, static_cast<dsp::Sample>(std::abs(q_resp[i])));
  const auto thr = static_cast<dsp::Sample>(
      std::max<dsp::Sample>(1, qrs_max / 10));
  const std::size_t run = std::max<std::size_t>(2, samples(0.014));

  const std::size_t start_l = r > samples(0.008) ? r - samples(0.008) : 0;
  const std::size_t start_r = std::min(last, r + samples(0.008));
  const std::size_t onset =
      scan_boundary(q_resp, start_l, -1, thr, run, qrs_lo);
  const std::size_t end = scan_boundary(q_resp, start_r, +1, thr, run, qrs_hi);
  f.qrs_onset = crop_lo + onset;
  f.qrs_end = crop_lo + end;

  // --- P wave --------------------------------------------------------------
  const std::size_t p_lo =
      r > samples(cfg.p_search_s) ? r - samples(cfg.p_search_s) : 0;
  const std::size_t p_hi = onset > samples(0.012) ? onset - samples(0.012) : 0;
  if (p_hi > p_lo + samples(0.03)) {
    const std::size_t p_peak = abs_argmax(crop, p_lo, p_hi);
    const double r_amp = std::abs(static_cast<double>(crop[r]));
    if (std::abs(static_cast<double>(crop[p_peak])) >=
            std::max(4.0, cfg.wave_presence_frac * r_amp) &&
        p_peak > p_lo && p_peak < p_hi) {
      f.p_peak = crop_lo + p_peak;
      f.p_onset = crop_lo + amplitude_boundary(crop, p_peak, -1, p_lo);
      f.p_end = crop_lo + amplitude_boundary(crop, p_peak, +1, p_hi);
    }
  }

  // --- T wave --------------------------------------------------------------
  const std::size_t t_lo = std::min(last, end + samples(0.016));
  const std::size_t t_hi = std::min(last, r + samples(cfg.t_search_s));
  if (t_hi > t_lo + samples(0.05)) {
    const std::size_t t_peak = abs_argmax(crop, t_lo, t_hi);
    const double r_amp = std::abs(static_cast<double>(crop[r]));
    if (std::abs(static_cast<double>(crop[t_peak])) >=
            std::max(4.0, cfg.wave_presence_frac * r_amp) &&
        t_peak > t_lo && t_peak < t_hi) {
      f.t_peak = crop_lo + t_peak;
      f.t_onset = crop_lo + amplitude_boundary(crop, t_peak, -1, t_lo);
      f.t_end = crop_lo + amplitude_boundary(crop, t_peak, +1, t_hi);
    }
  }
  return f;
}

namespace {

constexpr std::size_t kNone = ecg::Fiducials::kNoFiducial;

// Median fuse of one fiducial across leads: present if detected on a
// majority of leads; value is the median of the detections.
std::size_t fuse(std::vector<std::size_t> values, std::size_t num_leads) {
  std::erase(values, kNone);
  const std::size_t majority = num_leads / 2 + 1;
  if (values.size() < std::min(majority, num_leads)) return kNone;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

ecg::Fiducials delineate_beat_multilead(
    const std::vector<dsp::Signal>& conditioned_leads, std::size_t r_peak,
    const DelineatorConfig& cfg) {
  HBRP_REQUIRE(!conditioned_leads.empty(),
               "delineate_beat_multilead(): no leads");
  std::vector<ecg::Fiducials> per_lead;
  per_lead.reserve(conditioned_leads.size());
  for (const dsp::Signal& lead : conditioned_leads)
    per_lead.push_back(delineate_beat(lead, r_peak, cfg));

  const std::size_t n = per_lead.size();
  auto collect = [&per_lead](std::size_t ecg::Fiducials::* field) {
    std::vector<std::size_t> vals;
    for (const auto& f : per_lead) vals.push_back(f.*field);
    return vals;
  };

  ecg::Fiducials fused;
  fused.r_peak = r_peak;
  fused.p_onset = fuse(collect(&ecg::Fiducials::p_onset), n);
  fused.p_peak = fuse(collect(&ecg::Fiducials::p_peak), n);
  fused.p_end = fuse(collect(&ecg::Fiducials::p_end), n);
  fused.qrs_onset = fuse(collect(&ecg::Fiducials::qrs_onset), n);
  fused.qrs_end = fuse(collect(&ecg::Fiducials::qrs_end), n);
  fused.t_onset = fuse(collect(&ecg::Fiducials::t_onset), n);
  fused.t_peak = fuse(collect(&ecg::Fiducials::t_peak), n);
  fused.t_end = fuse(collect(&ecg::Fiducials::t_end), n);
  return fused;
}

DelineationError compare_fiducials(const ecg::Fiducials& detected,
                                   const ecg::Fiducials& reference) {
  const std::array<std::pair<std::size_t, std::size_t>, 9> pairs = {{
      {detected.p_onset, reference.p_onset},
      {detected.p_peak, reference.p_peak},
      {detected.p_end, reference.p_end},
      {detected.qrs_onset, reference.qrs_onset},
      {detected.r_peak, reference.r_peak},
      {detected.qrs_end, reference.qrs_end},
      {detected.t_onset, reference.t_onset},
      {detected.t_peak, reference.t_peak},
      {detected.t_end, reference.t_end},
  }};
  DelineationError err;
  double acc = 0.0;
  for (const auto& [det, ref] : pairs) {
    if (ref == kNone) continue;
    if (det == kNone) {
      ++err.points_missed;
      continue;
    }
    acc += std::abs(static_cast<double>(det) - static_cast<double>(ref));
    ++err.points_compared;
  }
  if (err.points_compared > 0)
    err.mean_abs_error_samples = acc / static_cast<double>(err.points_compared);
  return err;
}

}  // namespace hbrp::delineation
