// 2-bit packed representation of ternary projection matrices.
//
// Section III-B of the paper: because P only takes values {+1, -1, 0}, each
// element is coded on two bits, using a quarter of the memory of an 8-bit
// representation — the difference between fitting and not fitting alongside
// everything else in a 96 KB WBSN. Encoding: 00 -> 0, 01 -> +1, 10 -> -1
// (11 is invalid), four elements per byte, row-major.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/signal.hpp"
#include "rp/achlioptas.hpp"

namespace hbrp::rp {

class PackedTernaryMatrix {
 public:
  PackedTernaryMatrix() = default;

  /// Packs a dense ternary matrix.
  explicit PackedTernaryMatrix(const TernaryMatrix& m);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::int8_t at(std::size_t r, std::size_t c) const;

  /// Storage actually used by the packed element array.
  std::size_t memory_bytes() const { return data_.size(); }

  /// u = P v in integer arithmetic (the embedded projection kernel).
  std::vector<std::int32_t> apply(std::span<const dsp::Sample> v) const;

  /// Allocation-free form: writes rows() coefficients into `out`.
  void apply_into(std::span<const dsp::Sample> v,
                  std::span<std::int32_t> out) const;

  /// Unpacks back to the dense form (exact round trip).
  TernaryMatrix unpack() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> data_;  // 4 elements per byte, rows padded
  std::size_t bytes_per_row_ = 0;
};

}  // namespace hbrp::rp
