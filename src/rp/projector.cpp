#include "rp/projector.hpp"

#include "math/check.hpp"

namespace hbrp::rp {

BeatProjector::BeatProjector(TernaryMatrix p, std::size_t downsample_factor)
    : dense_(std::move(p)),
      packed_(dense_),
      sparse_(kernels::SparseTernary::build(
          dense_.rows(), dense_.cols(),
          [this](std::size_t r, std::size_t c) { return dense_.at(r, c); })),
      downsample_(downsample_factor) {
  HBRP_REQUIRE(downsample_ >= 1, "BeatProjector: downsample factor >= 1");
  HBRP_REQUIRE(dense_.rows() >= 1 && dense_.cols() >= 1,
               "BeatProjector: empty projection matrix");
}

math::Vec BeatProjector::project(const dsp::Signal& window) const {
  math::Vec v(coefficients());
  ProjectionScratch scratch;
  project_into(window, v, scratch);
  return v;
}

std::vector<std::int32_t> BeatProjector::project_int(
    const dsp::Signal& window) const {
  std::vector<std::int32_t> out(coefficients());
  ProjectionScratch scratch;
  project_int_into(window, out, scratch);
  return out;
}

void BeatProjector::project_into(std::span<const dsp::Sample> window,
                                 std::span<double> out,
                                 ProjectionScratch& scratch) const {
  HBRP_REQUIRE(window.size() == expected_window(),
               "BeatProjector::project_into(): window size mismatch");
  scratch.downsampled.resize(dense_.cols());
  dsp::downsample_avg_into(window, downsample_, scratch.downsampled);
  // Sparse execution format; bit-identical to dense_.apply_into() because
  // all partial sums of integer samples are exact in both int64 and double.
  sparse_.apply_into(scratch.downsampled, out);
}

void BeatProjector::project_int_into(std::span<const dsp::Sample> window,
                                     std::span<std::int32_t> out,
                                     ProjectionScratch& scratch) const {
  HBRP_REQUIRE(window.size() == expected_window(),
               "BeatProjector::project_int_into(): window size mismatch");
  scratch.downsampled.resize(dense_.cols());
  dsp::downsample_avg_into(window, downsample_, scratch.downsampled);
  // Sparse execution format; bit-identical to packed_.apply_into() (integer
  // addition regroups freely mod 2^32).
  sparse_.apply_into(scratch.downsampled, out);
}

void BeatProjector::project_batch(std::span<const dsp::Sample> windows,
                                  std::size_t count, std::span<double> out,
                                  ProjectionScratch& scratch) const {
  const std::size_t w = expected_window();
  const std::size_t k = coefficients();
  HBRP_REQUIRE(windows.size() == count * w,
               "BeatProjector::project_batch(): windows size mismatch");
  HBRP_REQUIRE(out.size() >= count * k,
               "BeatProjector::project_batch(): output too small");
  for (std::size_t i = 0; i < count; ++i)
    project_into(windows.subspan(i * w, w), out.subspan(i * k, k), scratch);
}

void BeatProjector::project_int_batch(std::span<const dsp::Sample> windows,
                                      std::size_t count,
                                      std::span<std::int32_t> out,
                                      ProjectionScratch& scratch) const {
  const std::size_t w = expected_window();
  const std::size_t k = coefficients();
  HBRP_REQUIRE(windows.size() == count * w,
               "BeatProjector::project_int_batch(): windows size mismatch");
  HBRP_REQUIRE(out.size() >= count * k,
               "BeatProjector::project_int_batch(): output too small");
  for (std::size_t i = 0; i < count; ++i)
    project_int_into(windows.subspan(i * w, w), out.subspan(i * k, k),
                     scratch);
}

}  // namespace hbrp::rp
