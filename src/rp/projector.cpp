#include "rp/projector.hpp"

#include "math/check.hpp"

namespace hbrp::rp {

BeatProjector::BeatProjector(TernaryMatrix p, std::size_t downsample_factor)
    : dense_(std::move(p)), packed_(dense_), downsample_(downsample_factor) {
  HBRP_REQUIRE(downsample_ >= 1, "BeatProjector: downsample factor >= 1");
  HBRP_REQUIRE(dense_.rows() >= 1 && dense_.cols() >= 1,
               "BeatProjector: empty projection matrix");
}

math::Vec BeatProjector::project(const dsp::Signal& window) const {
  HBRP_REQUIRE(window.size() == expected_window(),
               "BeatProjector::project(): window size mismatch");
  const dsp::Signal ds = dsp::downsample_avg(window, downsample_);
  math::Vec v(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i)
    v[i] = static_cast<double>(ds[i]);
  return dense_.apply(v);
}

std::vector<std::int32_t> BeatProjector::project_int(
    const dsp::Signal& window) const {
  HBRP_REQUIRE(window.size() == expected_window(),
               "BeatProjector::project_int(): window size mismatch");
  const dsp::Signal ds = dsp::downsample_avg(window, downsample_);
  return packed_.apply(ds);
}

}  // namespace hbrp::rp
