#include "rp/packed_matrix.hpp"

#include "math/check.hpp"

namespace hbrp::rp {

namespace {
constexpr std::uint8_t encode(std::int8_t v) {
  // 00 -> 0, 01 -> +1, 10 -> -1.
  return v == 0 ? 0u : (v == 1 ? 1u : 2u);
}
constexpr std::int8_t decode(std::uint8_t bits) {
  return bits == 0 ? 0 : (bits == 1 ? 1 : -1);
}
}  // namespace

PackedTernaryMatrix::PackedTernaryMatrix(const TernaryMatrix& m)
    : rows_(m.rows()),
      cols_(m.cols()),
      bytes_per_row_((m.cols() + 3) / 4) {
  data_.assign(rows_ * bytes_per_row_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::uint8_t bits = encode(m.at(r, c));
      data_[r * bytes_per_row_ + c / 4] |=
          static_cast<std::uint8_t>(bits << (2 * (c % 4)));
    }
  }
}

std::int8_t PackedTernaryMatrix::at(std::size_t r, std::size_t c) const {
  HBRP_REQUIRE(r < rows_ && c < cols_,
               "PackedTernaryMatrix::at(): index out of range");
  const std::uint8_t byte = data_[r * bytes_per_row_ + c / 4];
  return decode((byte >> (2 * (c % 4))) & 0x3u);
}

std::vector<std::int32_t> PackedTernaryMatrix::apply(
    std::span<const dsp::Sample> v) const {
  std::vector<std::int32_t> out(rows_, 0);
  apply_into(v, out);
  return out;
}

void PackedTernaryMatrix::apply_into(std::span<const dsp::Sample> v,
                                     std::span<std::int32_t> out) const {
  HBRP_REQUIRE(v.size() == cols_,
               "PackedTernaryMatrix::apply_into(): size mismatch");
  HBRP_REQUIRE(out.size() >= rows_,
               "PackedTernaryMatrix::apply_into(): output too small");
  for (std::size_t r = 0; r < rows_; ++r) {
    std::int32_t acc = 0;
    const std::uint8_t* row_bytes = data_.data() + r * bytes_per_row_;
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::uint8_t bits =
          (row_bytes[c / 4] >> (2 * (c % 4))) & 0x3u;
      if (bits == 1)
        acc += v[c];
      else if (bits == 2)
        acc -= v[c];
    }
    out[r] = acc;
  }
}

TernaryMatrix PackedTernaryMatrix::unpack() const {
  TernaryMatrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) m.set(r, c, at(r, c));
  return m;
}

}  // namespace hbrp::rp
