#include "rp/achlioptas.hpp"

#include <algorithm>
#include <cmath>

namespace hbrp::rp {

math::Vec TernaryMatrix::apply(std::span<const double> v) const {
  HBRP_REQUIRE(v.size() == cols_, "TernaryMatrix::apply(): size mismatch");
  math::Vec out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const std::int8_t* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::int8_t e = row_ptr[c];
      if (e == 1)
        acc += v[c];
      else if (e == -1)
        acc -= v[c];
    }
    out[r] = acc;
  }
  return out;
}

std::vector<std::int32_t> TernaryMatrix::apply(
    std::span<const dsp::Sample> v) const {
  HBRP_REQUIRE(v.size() == cols_, "TernaryMatrix::apply(): size mismatch");
  std::vector<std::int32_t> out(rows_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::int32_t acc = 0;
    const std::int8_t* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::int8_t e = row_ptr[c];
      if (e == 1)
        acc += v[c];
      else if (e == -1)
        acc -= v[c];
    }
    out[r] = acc;
  }
  return out;
}

void TernaryMatrix::apply_into(std::span<const dsp::Sample> v,
                               std::span<double> out) const {
  HBRP_REQUIRE(v.size() == cols_, "TernaryMatrix::apply_into(): size mismatch");
  HBRP_REQUIRE(out.size() >= rows_,
               "TernaryMatrix::apply_into(): output too small");
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const std::int8_t* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::int8_t e = row_ptr[c];
      if (e == 1)
        acc += static_cast<double>(v[c]);
      else if (e == -1)
        acc -= static_cast<double>(v[c]);
    }
    out[r] = acc;
  }
}

void TernaryMatrix::apply_into(std::span<const dsp::Sample> v,
                               std::span<std::int32_t> out) const {
  HBRP_REQUIRE(v.size() == cols_, "TernaryMatrix::apply_into(): size mismatch");
  HBRP_REQUIRE(out.size() >= rows_,
               "TernaryMatrix::apply_into(): output too small");
  for (std::size_t r = 0; r < rows_; ++r) {
    std::int32_t acc = 0;
    const std::int8_t* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::int8_t e = row_ptr[c];
      if (e == 1)
        acc += v[c];
      else if (e == -1)
        acc -= v[c];
    }
    out[r] = acc;
  }
}

double TernaryMatrix::density() const {
  if (data_.empty()) return 0.0;
  const auto nz = static_cast<double>(
      std::count_if(data_.begin(), data_.end(),
                    [](std::int8_t v) { return v != 0; }));
  return nz / static_cast<double>(data_.size());
}

math::Mat TernaryMatrix::to_mat() const {
  math::Mat m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      m.at(r, c) = static_cast<double>(at(r, c));
  return m;
}

std::int8_t sample_achlioptas_element(math::Rng& rng) {
  // One draw in [0, 6): 0 -> +1, 1 -> -1, 2..5 -> 0.
  const std::uint64_t u = rng.uniform_index(6);
  if (u == 0) return 1;
  if (u == 1) return -1;
  return 0;
}

TernaryMatrix make_achlioptas(std::size_t k, std::size_t d, math::Rng& rng) {
  HBRP_REQUIRE(k >= 1 && d >= 1, "make_achlioptas(): empty shape");
  TernaryMatrix p(k, d);
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < d; ++c)
      p.set(r, c, sample_achlioptas_element(rng));
  return p;
}

DistortionStats jl_distortion(const TernaryMatrix& p,
                              const math::Mat& points) {
  HBRP_REQUIRE(points.cols() == p.cols(),
               "jl_distortion(): point dimension mismatch");
  HBRP_REQUIRE(points.rows() >= 2, "jl_distortion(): need at least 2 points");
  // E[(P v)_r^2] = (1/3)||v||^2 per row, so sqrt(3/k) P is the unbiased
  // JL estimator for Achlioptas matrices.
  const double scale = std::sqrt(3.0 / static_cast<double>(p.rows()));
  DistortionStats stats;
  stats.min = 1e300;
  stats.max = 0.0;
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    for (std::size_t j = i + 1; j < points.rows(); ++j) {
      const math::Vec diff = math::sub(points.row(i), points.row(j));
      const double orig = math::norm2(diff);
      if (orig == 0.0) continue;
      const math::Vec proj = p.apply(diff);
      const double ratio = scale * math::norm2(proj) / orig;
      stats.min = std::min(stats.min, ratio);
      stats.max = std::max(stats.max, ratio);
      sum += ratio;
      ++count;
    }
  }
  HBRP_REQUIRE(count > 0, "jl_distortion(): all points identical");
  stats.mean = sum / static_cast<double>(count);
  return stats;
}

}  // namespace hbrp::rp
