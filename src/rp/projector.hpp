// Beat-window projector: downsampling + random projection as one unit.
//
// The paper's classifier input chain is: 200-sample beat window at 360 Hz ->
// 4x downsampling (50 samples at 90 Hz) -> k-coefficient random projection.
// BeatProjector owns the trained matrix in both its dense (training) and
// 2-bit packed (embedded) forms and applies the full chain on either data
// path, guaranteeing the two stay consistent.
#pragma once

#include <cstdint>

#include "dsp/resample.hpp"
#include "kernels/sparse_ternary.hpp"
#include "rp/achlioptas.hpp"
#include "rp/packed_matrix.hpp"

namespace hbrp::rp {

/// Reusable workspace for the allocation-free projection entry points. One
/// scratch per thread of execution; sized lazily on first use and then
/// reused, so the steady state performs no heap allocation per beat.
struct ProjectionScratch {
  dsp::Signal downsampled;
};

class BeatProjector {
 public:
  /// `p` has one column per *downsampled* window sample.
  BeatProjector(TernaryMatrix p, std::size_t downsample_factor);

  std::size_t coefficients() const { return dense_.rows(); }
  std::size_t downsample_factor() const { return downsample_; }
  /// Window length expected at the acquisition rate.
  std::size_t expected_window() const {
    return dense_.cols() * downsample_;
  }

  /// Float path (training): downsample then project to doubles.
  math::Vec project(const dsp::Signal& window) const;

  /// Integer path (embedded): downsample then project via the packed matrix.
  std::vector<std::int32_t> project_int(const dsp::Signal& window) const;

  /// Allocation-free float-path projection of one window into `out`
  /// (coefficients() doubles). Bit-identical to project().
  void project_into(std::span<const dsp::Sample> window, std::span<double> out,
                    ProjectionScratch& scratch) const;

  /// Allocation-free integer-path projection of one window into `out`
  /// (coefficients() values). Bit-identical to project_int().
  void project_int_into(std::span<const dsp::Sample> window,
                        std::span<std::int32_t> out,
                        ProjectionScratch& scratch) const;

  /// Batch float-path projection: `windows` holds `count` windows of
  /// expected_window() samples each, concatenated; `out` receives count x
  /// coefficients() doubles, row-major. No per-beat heap allocation: the
  /// only buffer is scratch.downsampled, reused across beats.
  void project_batch(std::span<const dsp::Sample> windows, std::size_t count,
                     std::span<double> out, ProjectionScratch& scratch) const;

  /// Batch integer-path projection, same layout contract as project_batch.
  void project_int_batch(std::span<const dsp::Sample> windows,
                         std::size_t count, std::span<std::int32_t> out,
                         ProjectionScratch& scratch) const;

  const TernaryMatrix& matrix() const { return dense_; }
  const PackedTernaryMatrix& packed() const { return packed_; }
  const kernels::SparseTernary& sparse() const { return sparse_; }

 private:
  TernaryMatrix dense_;
  PackedTernaryMatrix packed_;
  // Runtime execution format: per-row +1/-1 index lists built once from the
  // dense matrix. dense_ stays the train-time form, packed_ the
  // storage/serialization form; every projection entry point executes from
  // sparse_ (bit-identical by the kernels equivalence contract).
  kernels::SparseTernary sparse_;
  std::size_t downsample_ = 1;
};

}  // namespace hbrp::rp
