// Achlioptas sparse random projections.
//
// The dimensionality reduction at the heart of the paper: a k x d matrix P
// whose entries are +1 with probability 1/6, -1 with probability 1/6 and 0
// with probability 2/3 (Achlioptas, JCSS 2003). Such projections satisfy the
// Johnson-Lindenstrauss distance-preservation bound while needing only
// additions/subtractions to apply — exactly what a WBSN without hardware
// multiplier wants — and only two bits of storage per element.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/signal.hpp"
#include "math/mat.hpp"
#include "math/rng.hpp"
#include "math/vec.hpp"

namespace hbrp::rp {

/// Dense ternary matrix with elements in {-1, 0, +1}, one int8 each.
/// This is the train-time representation (mutated by the genetic algorithm);
/// the run-time 2-bit form is rp::PackedTernaryMatrix.
class TernaryMatrix {
 public:
  TernaryMatrix() = default;
  TernaryMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::int8_t at(std::size_t r, std::size_t c) const {
    HBRP_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  void set(std::size_t r, std::size_t c, std::int8_t v) {
    HBRP_REQUIRE(v == -1 || v == 0 || v == 1,
                 "TernaryMatrix: values must be -1, 0 or +1");
    HBRP_REQUIRE(r < rows_ && c < cols_, "TernaryMatrix: index out of range");
    data_[r * cols_ + c] = v;
  }

  std::span<const std::int8_t> row(std::size_t r) const {
    HBRP_REQUIRE(r < rows_, "TernaryMatrix::row(): out of range");
    return {data_.data() + r * cols_, cols_};
  }

  /// u = P v over doubles (training path).
  math::Vec apply(std::span<const double> v) const;

  /// u = P v over integer samples (embedded path); accumulators are 32-bit,
  /// sufficient for d <= 2^20 samples of 11-bit data.
  std::vector<std::int32_t> apply(std::span<const dsp::Sample> v) const;

  /// Allocation-free float-path projection of an integer sample vector:
  /// writes rows() doubles into `out`. Accumulation is in doubles, in the
  /// same order as apply(span<const double>), so results are bit-identical
  /// to converting `v` to doubles first.
  void apply_into(std::span<const dsp::Sample> v, std::span<double> out) const;

  /// Allocation-free integer-path projection: writes rows() values to `out`.
  void apply_into(std::span<const dsp::Sample> v,
                  std::span<std::int32_t> out) const;

  /// Fraction of non-zero entries.
  double density() const;

  /// Dense double copy (for diagnostics / linear-algebra interop).
  math::Mat to_mat() const;

  bool operator==(const TernaryMatrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int8_t> data_;
};

/// Samples a k x d Achlioptas matrix: P(+1) = P(-1) = 1/6, P(0) = 2/3.
TernaryMatrix make_achlioptas(std::size_t k, std::size_t d, math::Rng& rng);

/// Resamples a single element from the Achlioptas distribution
/// (the genetic algorithm's mutation primitive).
std::int8_t sample_achlioptas_element(math::Rng& rng);

/// Johnson-Lindenstrauss distortion diagnostics: distribution of
/// ||sqrt(3/k) P (x_i - x_j)|| / ||x_i - x_j|| over all point pairs.
struct DistortionStats {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};
DistortionStats jl_distortion(const TernaryMatrix& p,
                              const math::Mat& points);

}  // namespace hbrp::rp
