// Differentiable-objective interface consumed by the SCG optimizer.
#pragma once

#include <span>

namespace hbrp::opt {

class Objective {
 public:
  virtual ~Objective() = default;

  /// Number of parameters this objective expects.
  virtual std::size_t dimension() const = 0;

  /// Returns the loss at `params` and writes its gradient into `grad`
  /// (grad.size() == params.size() == dimension()).
  virtual double eval(std::span<const double> params,
                      std::span<double> grad) = 0;
};

}  // namespace hbrp::opt
