// Scaled Conjugate Gradient minimization (Moller, Neural Networks 1993).
//
// The paper trains its neuro-fuzzy classifier with SCG [11][12] because it
// avoids the line searches of classical conjugate gradient — each iteration
// costs one gradient plus one extra gradient for the Hessian-vector finite
// difference — and needs only O(n) memory, which is why it beats SVM/LDA
// training on the problem sizes involved here.
#pragma once

#include <vector>

#include "opt/objective.hpp"

namespace hbrp::opt {

struct ScgOptions {
  int max_iterations = 300;
  /// Stop when the gradient infinity-norm falls below this.
  double grad_tolerance = 1e-6;
  /// Stop when the step and loss improvements both fall below this.
  double step_tolerance = 1e-12;
  /// Moller's sigma for the Hessian-vector finite difference.
  double sigma0 = 1e-4;
  /// Initial Levenberg-Marquardt damping.
  double lambda0 = 1e-6;
};

struct ScgResult {
  double initial_loss = 0.0;
  double final_loss = 0.0;
  int iterations = 0;
  bool converged = false;
  /// Loss after every accepted step (for training-curve diagnostics).
  std::vector<double> history;
};

/// Minimizes `objective` starting from (and updating) `params`.
ScgResult minimize_scg(Objective& objective, std::vector<double>& params,
                       const ScgOptions& options = {});

}  // namespace hbrp::opt
