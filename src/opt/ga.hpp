// Genetic optimization of random projection matrices.
//
// Section III-A of the paper: the Achlioptas matrix itself is a design
// variable. Each matrix in the population is a chromosome; crossover swaps
// rows between parents (a row == one projected coefficient, a natural gene
// boundary), mutation resamples individual elements from the Achlioptas
// distribution (preserving the ensemble sparsity), and fitness is the score
// of an NFC trained with this projection. The paper uses a population of 20
// for 30 generations.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/executor.hpp"
#include "rp/achlioptas.hpp"

namespace hbrp::opt {

struct GaOptions {
  std::size_t population = 20;
  std::size_t generations = 30;
  /// Individuals copied unchanged into the next generation.
  std::size_t elite = 2;
  /// Tournament size for parent selection.
  std::size_t tournament = 3;
  /// Per-row probability of taking the row from the second parent.
  double row_crossover_prob = 0.5;
  /// Per-element probability of resampling from the Achlioptas distribution.
  double mutation_rate = 0.01;
  std::uint64_t seed = 1;
  /// Executor for concurrent fitness evaluation (null = serial; requires a
  /// thread-safe fitness function — all hbrp trainers are). Deterministic:
  /// the population is bred serially from the seeded RNG on the calling
  /// thread, only the evaluations fan out, and each result lands in its
  /// individual's slot — so the outcome is bit-identical to a serial run
  /// for any executor and thread count.
  const core::Executor* executor = nullptr;
};

/// Fitness: higher is better. Evaluated once per individual per generation.
/// With GaOptions::executor the callable is invoked from multiple threads
/// simultaneously and must be thread-safe (const captures / local state).
using FitnessFn = std::function<double(const rp::TernaryMatrix&)>;

struct GaResult {
  rp::TernaryMatrix best;
  double best_fitness = 0.0;
  /// Best fitness after each generation (monotone non-decreasing).
  std::vector<double> history;
  std::size_t evaluations = 0;
};

/// Evolves k x d ternary matrices to maximize `fitness`.
GaResult optimize_projection(std::size_t k, std::size_t d,
                             const FitnessFn& fitness,
                             const GaOptions& options = {});

}  // namespace hbrp::opt
