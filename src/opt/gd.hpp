// Gradient descent with momentum — the baseline trainer SCG is compared
// against.
//
// The paper motivates the scaled-conjugate-gradient choice by pointing at
// the standard NFC training algorithm, plain gradient descent [9]. This
// implementation uses momentum plus "bold driver" step adaptation (grow the
// rate on improvement, shrink and retry on regression), which is the
// strongest form of GD that keeps the same O(n) memory footprint as SCG.
// bench_ablation_training quantifies the convergence gap.
#pragma once

#include <vector>

#include "opt/objective.hpp"

namespace hbrp::opt {

struct GdOptions {
  int max_iterations = 300;
  double learning_rate = 0.01;
  double momentum = 0.9;
  /// Bold-driver adaptation: rate *= grow on improvement, *= shrink (with
  /// step rollback) on regression.
  double grow = 1.05;
  double shrink = 0.5;
  double grad_tolerance = 1e-6;
};

struct GdResult {
  double initial_loss = 0.0;
  double final_loss = 0.0;
  int iterations = 0;
  bool converged = false;
  std::vector<double> history;  ///< loss after every accepted step
};

/// Minimizes `objective` starting from (and updating) `params`.
GdResult minimize_gd(Objective& objective, std::vector<double>& params,
                     const GdOptions& options = {});

}  // namespace hbrp::opt
