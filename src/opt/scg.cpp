#include "opt/scg.hpp"

#include <algorithm>
#include <cmath>

#include "math/check.hpp"
#include "math/vec.hpp"

namespace hbrp::opt {

ScgResult minimize_scg(Objective& objective, std::vector<double>& params,
                       const ScgOptions& options) {
  const std::size_t n = objective.dimension();
  HBRP_REQUIRE(params.size() == n, "minimize_scg(): parameter size mismatch");
  HBRP_REQUIRE(options.max_iterations >= 1,
               "minimize_scg(): max_iterations must be >= 1");

  ScgResult result;

  std::vector<double> grad(n), grad_new(n), grad_probe(n);
  std::vector<double> p(n), r(n), w_probe(n), w_new(n);

  double f_w = objective.eval(params, grad);
  result.initial_loss = f_w;
  result.history.push_back(f_w);

  // r = p = -grad
  for (std::size_t i = 0; i < n; ++i) r[i] = p[i] = -grad[i];

  double lambda = options.lambda0;
  double lambda_bar = 0.0;
  bool success = true;
  double delta = 0.0;
  std::vector<double> s(n);

  const int restart_every = static_cast<int>(n);

  for (int k = 1; k <= options.max_iterations; ++k) {
    const double p_norm_sq = math::norm2_sq(p);
    if (p_norm_sq <= options.step_tolerance) {
      result.converged = true;
      break;
    }

    if (success) {
      // Second-order information via a finite difference along p.
      const double sigma = options.sigma0 / std::sqrt(p_norm_sq);
      for (std::size_t i = 0; i < n; ++i) w_probe[i] = params[i] + sigma * p[i];
      objective.eval(w_probe, grad_probe);
      for (std::size_t i = 0; i < n; ++i)
        s[i] = (grad_probe[i] + r[i]) / sigma;  // grad(w) == -r
      delta = math::dot(p, s);
    }

    // Scale (Levenberg-Marquardt damping) and make the Hessian estimate
    // positive definite.
    delta += (lambda - lambda_bar) * p_norm_sq;
    if (delta <= 0.0) {
      lambda_bar = 2.0 * (lambda - delta / p_norm_sq);
      delta = -delta + lambda * p_norm_sq;
      lambda = lambda_bar;
    }

    const double mu = math::dot(p, r);
    const double alpha = mu / delta;

    for (std::size_t i = 0; i < n; ++i) w_new[i] = params[i] + alpha * p[i];
    const double f_new = objective.eval(w_new, grad_new);

    // Comparison parameter: how well the quadratic model predicted the
    // actual decrease.
    const double big_delta = 2.0 * delta * (f_w - f_new) / (mu * mu);

    if (big_delta >= 0.0) {
      // Successful step.
      const double improvement = f_w - f_new;
      params = w_new;
      f_w = f_new;
      result.history.push_back(f_w);
      lambda_bar = 0.0;
      success = true;

      // New conjugate direction (Polak-Ribiere-style as in Moller's paper),
      // with periodic restart to plain steepest descent.
      double r_new_sq = 0.0, r_new_dot_r = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        r_new_sq += grad_new[i] * grad_new[i];
        r_new_dot_r += grad_new[i] * (-r[i]);
      }
      const double beta =
          (k % restart_every == 0) ? 0.0 : (r_new_sq - r_new_dot_r) / mu;
      for (std::size_t i = 0; i < n; ++i) {
        r[i] = -grad_new[i];
        p[i] = r[i] + beta * p[i];
      }

      if (big_delta >= 0.75) lambda = std::max(lambda * 0.25, 1e-15);

      const double grad_inf = math::max_abs(r);
      if (grad_inf < options.grad_tolerance ||
          (improvement >= 0.0 && improvement < options.step_tolerance &&
           std::abs(alpha) * std::sqrt(p_norm_sq) < options.step_tolerance)) {
        result.iterations = k;
        result.converged = true;
        result.final_loss = f_w;
        return result;
      }
    } else {
      // Reduction failed: raise damping and retry the same direction.
      lambda_bar = lambda;
      success = false;
    }

    if (big_delta < 0.25)
      lambda += delta * (1.0 - big_delta) / p_norm_sq;
    // Guard against runaway damping making steps vanish entirely.
    if (lambda > 1e20) {
      result.iterations = k;
      break;
    }
    result.iterations = k;
  }

  result.final_loss = f_w;
  return result;
}

}  // namespace hbrp::opt
