#include "opt/gd.hpp"

#include <algorithm>
#include <cmath>

#include "math/check.hpp"
#include "math/vec.hpp"

namespace hbrp::opt {

GdResult minimize_gd(Objective& objective, std::vector<double>& params,
                     const GdOptions& options) {
  const std::size_t n = objective.dimension();
  HBRP_REQUIRE(params.size() == n, "minimize_gd(): parameter size mismatch");
  HBRP_REQUIRE(options.max_iterations >= 1,
               "minimize_gd(): max_iterations must be >= 1");
  HBRP_REQUIRE(options.learning_rate > 0.0,
               "minimize_gd(): learning rate must be positive");
  HBRP_REQUIRE(options.momentum >= 0.0 && options.momentum < 1.0,
               "minimize_gd(): momentum must be in [0, 1)");

  GdResult result;
  std::vector<double> grad(n), velocity(n, 0.0), backup(n);
  double rate = options.learning_rate;

  double loss = objective.eval(params, grad);
  result.initial_loss = loss;
  result.history.push_back(loss);

  for (int k = 1; k <= options.max_iterations; ++k) {
    result.iterations = k;
    if (math::max_abs(grad) < options.grad_tolerance) {
      result.converged = true;
      break;
    }
    backup = params;
    for (std::size_t i = 0; i < n; ++i) {
      velocity[i] = options.momentum * velocity[i] - rate * grad[i];
      params[i] += velocity[i];
    }
    std::vector<double> new_grad(n);
    const double new_loss = objective.eval(params, new_grad);
    if (new_loss <= loss) {
      loss = new_loss;
      grad = std::move(new_grad);
      result.history.push_back(loss);
      rate *= options.grow;
    } else {
      // Regression: roll back, kill the momentum, shrink the rate.
      params = backup;
      std::fill(velocity.begin(), velocity.end(), 0.0);
      rate *= options.shrink;
      if (rate < 1e-15) break;
      // Re-evaluate to restore `grad` for the retried step.
      loss = objective.eval(params, grad);
    }
  }
  result.final_loss = loss;
  return result;
}

}  // namespace hbrp::opt
