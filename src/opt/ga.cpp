#include "opt/ga.hpp"

#include <algorithm>

#include "math/check.hpp"

namespace hbrp::opt {

namespace {

struct Individual {
  rp::TernaryMatrix matrix;
  double fitness = 0.0;
};

// Evaluates fitness for every individual in [begin, end), across the
// executor when one is supplied. Each result is written to its own
// individual's slot, so the outcome is independent of scheduling.
void evaluate_all(std::vector<Individual>& pop, std::size_t begin,
                  const FitnessFn& fitness, const core::Executor* executor) {
  if (executor == nullptr || executor->threads() <= 1 ||
      pop.size() - begin <= 1) {
    for (std::size_t i = begin; i < pop.size(); ++i)
      pop[i].fitness = fitness(pop[i].matrix);
    return;
  }
  executor->parallel_for(pop.size() - begin, [&pop, &fitness,
                                              begin](std::size_t i) {
    pop[begin + i].fitness = fitness(pop[begin + i].matrix);
  });
}

std::size_t tournament_pick(const std::vector<Individual>& pop,
                            std::size_t tournament, math::Rng& rng) {
  std::size_t best = rng.uniform_index(pop.size());
  for (std::size_t t = 1; t < tournament; ++t) {
    const std::size_t cand = rng.uniform_index(pop.size());
    if (pop[cand].fitness > pop[best].fitness) best = cand;
  }
  return best;
}

rp::TernaryMatrix crossover(const rp::TernaryMatrix& a,
                            const rp::TernaryMatrix& b, double row_prob,
                            math::Rng& rng) {
  rp::TernaryMatrix child(a.rows(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const rp::TernaryMatrix& src = rng.bernoulli(row_prob) ? b : a;
    for (std::size_t c = 0; c < a.cols(); ++c)
      child.set(r, c, src.at(r, c));
  }
  return child;
}

void mutate(rp::TernaryMatrix& m, double rate, math::Rng& rng) {
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      if (rng.bernoulli(rate))
        m.set(r, c, rp::sample_achlioptas_element(rng));
}

}  // namespace

GaResult optimize_projection(std::size_t k, std::size_t d,
                             const FitnessFn& fitness,
                             const GaOptions& options) {
  HBRP_REQUIRE(fitness != nullptr, "optimize_projection(): null fitness");
  HBRP_REQUIRE(options.population >= 2,
               "optimize_projection(): population must be >= 2");
  HBRP_REQUIRE(options.elite < options.population,
               "optimize_projection(): elite must be < population");
  HBRP_REQUIRE(options.tournament >= 1,
               "optimize_projection(): tournament must be >= 1");
  HBRP_REQUIRE(options.generations >= 1,
               "optimize_projection(): generations must be >= 1");

  math::Rng rng(options.seed);
  GaResult result;

  std::vector<Individual> pop(options.population);
  for (Individual& ind : pop) ind.matrix = rp::make_achlioptas(k, d, rng);
  evaluate_all(pop, 0, fitness, options.executor);
  result.evaluations += pop.size();

  auto by_fitness_desc = [](const Individual& a, const Individual& b) {
    return a.fitness > b.fitness;
  };

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    std::sort(pop.begin(), pop.end(), by_fitness_desc);
    result.history.push_back(pop.front().fitness);

    std::vector<Individual> next;
    next.reserve(options.population);
    for (std::size_t e = 0; e < options.elite; ++e) next.push_back(pop[e]);

    // Breed all offspring serially (keeps the RNG stream identical to a
    // sequential run), then score them in parallel.
    const std::size_t first_child = next.size();
    while (next.size() < options.population) {
      const Individual& pa = pop[tournament_pick(pop, options.tournament, rng)];
      const Individual& pb = pop[tournament_pick(pop, options.tournament, rng)];
      Individual child;
      child.matrix =
          crossover(pa.matrix, pb.matrix, options.row_crossover_prob, rng);
      mutate(child.matrix, options.mutation_rate, rng);
      next.push_back(std::move(child));
    }
    evaluate_all(next, first_child, fitness, options.executor);
    result.evaluations += next.size() - first_child;
    pop = std::move(next);
  }

  std::sort(pop.begin(), pop.end(), by_fitness_desc);
  result.history.push_back(pop.front().fitness);
  result.best = pop.front().matrix;
  result.best_fitness = pop.front().fitness;
  return result;
}

}  // namespace hbrp::opt
