#include "ecg/mitdb.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "math/check.hpp"

namespace hbrp::ecg::mitdb {

namespace {

constexpr int kSkipCode = 59;

// Bounds for header fields: a corrupt or hostile .hea file must fail a
// cheap check instead of driving a multi-gigabyte allocation or an
// out-of-bounds read loop.
constexpr std::size_t kMaxSignals = 64;
constexpr std::size_t kMaxSamples = 100'000'000;  // ~77 h at 360 Hz
constexpr int kMaxFsHz = 100'000;

void require_stream(const std::ios& s, const std::string& what) {
  HBRP_REQUIRE(s.good(), "mitdb: I/O failure while " + what);
}

// --- signal packing -------------------------------------------------------

// Format 212: two 12-bit two's-complement samples in 3 bytes.
void write_212(std::ofstream& out, const dsp::Signal& a,
               const dsp::Signal& b) {
  HBRP_REQUIRE(a.size() == b.size(), "mitdb: 212 leads must be equal length");
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto s0 = static_cast<std::uint32_t>(a[i]) & 0xFFFu;
    const auto s1 = static_cast<std::uint32_t>(b[i]) & 0xFFFu;
    const std::uint8_t bytes[3] = {
        static_cast<std::uint8_t>(s0 & 0xFF),
        static_cast<std::uint8_t>(((s1 >> 8) << 4) | (s0 >> 8)),
        static_cast<std::uint8_t>(s1 & 0xFF),
    };
    out.write(reinterpret_cast<const char*>(bytes), 3);
  }
}

dsp::Sample sign_extend_12(std::uint32_t v) {
  return (v & 0x800u) ? static_cast<dsp::Sample>(v) - 4096
                      : static_cast<dsp::Sample>(v);
}

void read_212(std::ifstream& in, std::size_t n_samples, dsp::Signal& a,
              dsp::Signal& b) {
  a.resize(n_samples);
  b.resize(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    std::uint8_t bytes[3];
    in.read(reinterpret_cast<char*>(bytes), 3);
    require_stream(in, "reading 212 samples");
    const std::uint32_t s0 =
        static_cast<std::uint32_t>(bytes[0]) |
        ((static_cast<std::uint32_t>(bytes[1]) & 0x0Fu) << 8);
    const std::uint32_t s1 =
        static_cast<std::uint32_t>(bytes[2]) |
        ((static_cast<std::uint32_t>(bytes[1]) & 0xF0u) << 4);
    a[i] = sign_extend_12(s0);
    b[i] = sign_extend_12(s1);
  }
}

void write_16(std::ofstream& out, const std::vector<dsp::Signal>& leads) {
  const std::size_t n = leads.front().size();
  for (std::size_t i = 0; i < n; ++i) {
    for (const dsp::Signal& lead : leads) {
      const auto v = static_cast<std::int16_t>(lead[i]);
      const std::uint8_t bytes[2] = {
          static_cast<std::uint8_t>(static_cast<std::uint16_t>(v) & 0xFF),
          static_cast<std::uint8_t>(static_cast<std::uint16_t>(v) >> 8),
      };
      out.write(reinterpret_cast<const char*>(bytes), 2);
    }
  }
}

void read_16(std::ifstream& in, std::size_t n_samples,
             std::vector<dsp::Signal>& leads) {
  for (dsp::Signal& lead : leads) lead.resize(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    for (dsp::Signal& lead : leads) {
      std::uint8_t bytes[2];
      in.read(reinterpret_cast<char*>(bytes), 2);
      require_stream(in, "reading 16-bit samples");
      const auto raw = static_cast<std::uint16_t>(
          bytes[0] | (static_cast<std::uint16_t>(bytes[1]) << 8));
      lead[i] = static_cast<std::int16_t>(raw);
    }
  }
}

// --- annotation packing ---------------------------------------------------

void put_word(std::ofstream& out, int code, std::uint32_t time) {
  HBRP_ASSERT(time < 1024);
  const auto word = static_cast<std::uint16_t>(
      (static_cast<std::uint32_t>(code) << 10) | time);
  const std::uint8_t bytes[2] = {static_cast<std::uint8_t>(word & 0xFF),
                                 static_cast<std::uint8_t>(word >> 8)};
  out.write(reinterpret_cast<const char*>(bytes), 2);
}

std::uint16_t get_word(std::ifstream& in, bool& eof) {
  std::uint8_t bytes[2];
  in.read(reinterpret_cast<char*>(bytes), 2);
  if (!in.good()) {
    eof = true;
    return 0;
  }
  return static_cast<std::uint16_t>(
      bytes[0] | (static_cast<std::uint16_t>(bytes[1]) << 8));
}

}  // namespace

std::optional<BeatClass> beat_class_from_code(int code) {
  switch (code) {
    case kCodeNormal: return BeatClass::N;
    case kCodeLbbb: return BeatClass::L;
    case kCodePvc: return BeatClass::V;
    default: return std::nullopt;
  }
}

int code_from_beat_class(BeatClass cls) {
  switch (cls) {
    case BeatClass::N: return kCodeNormal;
    case BeatClass::L: return kCodeLbbb;
    case BeatClass::V: return kCodePvc;
    case BeatClass::Unknown: break;
  }
  HBRP_REQUIRE(false, "mitdb: Unknown has no annotation code");
}

void write_record(const Record& record, const std::filesystem::path& dir,
                  const WriteOptions& options) {
  HBRP_REQUIRE(!record.name.empty(), "mitdb: record needs a name");
  HBRP_REQUIRE(!record.leads.empty(), "mitdb: record has no leads");
  for (const auto& lead : record.leads)
    HBRP_REQUIRE(lead.size() == record.duration_samples(),
                 "mitdb: all leads must have equal length");
  HBRP_REQUIRE(options.signal_format == 212 || options.signal_format == 16,
               "mitdb: unsupported signal format");
  HBRP_REQUIRE(options.signal_format != 212 || record.leads.size() == 2,
               "mitdb: format 212 stores exactly two signals");

  std::filesystem::create_directories(dir);
  const AdcSpec adc;  // MIT-BIH standard gain/zero

  // Header.
  {
    std::ofstream hea(dir / (record.name + ".hea"));
    require_stream(hea, "opening header for write");
    hea << record.name << ' ' << record.leads.size() << ' ' << record.fs_hz
        << ' ' << record.duration_samples() << '\n';
    for (std::size_t s = 0; s < record.leads.size(); ++s) {
      hea << record.name << ".dat " << options.signal_format << ' '
          << adc.gain_adu_per_mv << " 11 " << adc.baseline_adu << " 0 0 0 lead"
          << s << '\n';
    }
    require_stream(hea, "writing header");
  }

  // Signal file.
  {
    std::ofstream dat(dir / (record.name + ".dat"), std::ios::binary);
    require_stream(dat, "opening signal file for write");
    if (options.signal_format == 212)
      write_212(dat, record.leads[0], record.leads[1]);
    else
      write_16(dat, record.leads);
    require_stream(dat, "writing signal file");
  }

  // Annotations.
  {
    std::ofstream atr(dir / (record.name + ".atr"), std::ios::binary);
    require_stream(atr, "opening annotation file for write");
    std::size_t prev = 0;
    for (const BeatAnnotation& ann : record.beats) {
      HBRP_REQUIRE(ann.sample >= prev,
                   "mitdb: annotations must be sorted by sample");
      std::size_t delta = ann.sample - prev;
      if (delta >= 1024) {
        // SKIP escape: zero-time skip word followed by a 32-bit interval
        // (high half first, both little-endian), then the annotation with
        // time 0.
        put_word(atr, kSkipCode, 0);
        const auto d32 = static_cast<std::uint32_t>(delta);
        put_word(atr, static_cast<int>(d32 >> 26),
                 (d32 >> 16) & 0x3FFu);  // high 16 bits as raw word
        put_word(atr, static_cast<int>((d32 & 0xFFFFu) >> 10),
                 d32 & 0x3FFu);  // low 16 bits as raw word
        delta = 0;
      }
      put_word(atr, code_from_beat_class(ann.cls),
               static_cast<std::uint32_t>(delta));
      prev = ann.sample;
    }
    put_word(atr, 0, 0);  // end of annotations
    require_stream(atr, "writing annotation file");
  }
}

Record read_record(const std::filesystem::path& dir, const std::string& name) {
  Record rec;
  rec.name = name;

  std::size_t n_samples = 0;
  std::size_t n_signals = 0;
  int fmt = 0;

  {
    std::ifstream hea(dir / (name + ".hea"));
    HBRP_REQUIRE(hea.good(), "mitdb: cannot open header " + name + ".hea");
    std::string line;
    std::getline(hea, line);
    std::istringstream head(line);
    std::string rec_name;
    head >> rec_name >> n_signals >> rec.fs_hz >> n_samples;
    HBRP_REQUIRE(!head.fail(), "mitdb: malformed record line");
    HBRP_REQUIRE(n_signals >= 1 && n_signals <= kMaxSignals,
                 "mitdb: implausible signal count in header");
    HBRP_REQUIRE(rec.fs_hz > 0 && rec.fs_hz <= kMaxFsHz,
                 "mitdb: implausible sampling rate in header");
    HBRP_REQUIRE(n_samples <= kMaxSamples,
                 "mitdb: implausible sample count in header");
    for (std::size_t s = 0; s < n_signals; ++s) {
      std::getline(hea, line);
      require_stream(hea, "reading signal lines");
      std::istringstream sig(line);
      std::string file;
      int this_fmt = 0;
      sig >> file >> this_fmt;
      HBRP_REQUIRE(!sig.fail(), "mitdb: malformed signal line");
      if (s == 0)
        fmt = this_fmt;
      else
        HBRP_REQUIRE(this_fmt == fmt,
                     "mitdb: mixed signal formats are unsupported");
    }
  }
  HBRP_REQUIRE(fmt == 212 || fmt == 16, "mitdb: unsupported signal format");
  HBRP_REQUIRE(fmt != 212 || n_signals == 2,
               "mitdb: format 212 requires two signals");

  {
    const std::filesystem::path dat_path = dir / (name + ".dat");
    // Bounded read: the declared sample count must be backed by actual
    // bytes on disk *before* any buffer is sized from it, so a truncated
    // or length-inflated header throws instead of allocating garbage.
    std::error_code ec;
    const auto dat_size = std::filesystem::file_size(dat_path, ec);
    HBRP_REQUIRE(!ec, "mitdb: cannot stat signal file " + name + ".dat");
    const std::size_t needed =
        fmt == 212 ? n_samples * 3 : n_samples * n_signals * 2;
    HBRP_REQUIRE(dat_size >= needed,
                 "mitdb: signal file shorter than header declares: " + name +
                     ".dat");

    std::ifstream dat(dat_path, std::ios::binary);
    HBRP_REQUIRE(dat.good(), "mitdb: cannot open signal file " + name + ".dat");
    rec.leads.resize(n_signals);
    if (fmt == 212)
      read_212(dat, n_samples, rec.leads[0], rec.leads[1]);
    else
      read_16(dat, n_samples, rec.leads);
  }

  {
    std::ifstream atr(dir / (name + ".atr"), std::ios::binary);
    HBRP_REQUIRE(atr.good(),
                 "mitdb: cannot open annotation file " + name + ".atr");
    std::size_t t = 0;
    bool eof = false;
    for (;;) {
      const std::uint16_t word = get_word(atr, eof);
      if (eof) break;
      const int code = word >> 10;
      const std::uint32_t delta = word & 0x3FFu;
      if (code == 0 && delta == 0) break;  // end marker
      if (code == kSkipCode) {
        const std::uint16_t hi = get_word(atr, eof);
        const std::uint16_t lo = get_word(atr, eof);
        HBRP_REQUIRE(!eof, "mitdb: truncated SKIP annotation");
        t += (static_cast<std::size_t>(hi) << 16) | lo;
        HBRP_REQUIRE(t <= n_samples,
                     "mitdb: SKIP interval beyond end of record in " + name +
                         ".atr");
        continue;
      }
      t += delta;
      HBRP_REQUIRE(t <= n_samples,
                   "mitdb: annotation beyond end of record in " + name +
                       ".atr");
      if (const auto cls = beat_class_from_code(code)) {
        BeatAnnotation ann;
        ann.sample = t;
        ann.cls = *cls;
        rec.beats.push_back(ann);
      }
      // Unsupported codes (rhythm changes, comments) are skipped silently,
      // as WFDB readers conventionally do for unknown beat types.
    }
  }
  return rec;
}

}  // namespace hbrp::ecg::mitdb
