#include "ecg/morphology.hpp"

#include <algorithm>
#include <cmath>

#include "math/check.hpp"

namespace hbrp::ecg {

namespace {
constexpr double kWaveExtentSigmas = 2.5;
}

BeatMorphology::BeatMorphology(std::vector<WaveParams> waves)
    : waves_(std::move(waves)) {
  HBRP_REQUIRE(!waves_.empty(), "BeatMorphology needs at least one wave");
  support_begin_ = waves_.front().center_s;
  support_end_ = waves_.front().center_s;
  for (const WaveParams& w : waves_) {
    HBRP_REQUIRE(w.width_s > 0.0, "wave width must be positive");
    support_begin_ =
        std::min(support_begin_, w.center_s - kWaveExtentSigmas * w.width_s);
    support_end_ =
        std::max(support_end_, w.center_s + kWaveExtentSigmas * w.width_s);
  }
}

double BeatMorphology::value_at(double t) const {
  double acc = 0.0;
  for (const WaveParams& w : waves_) {
    const double z = (t - w.center_s) / w.width_s;
    if (std::abs(z) > 5.0) continue;  // negligible tail
    acc += w.amp_mv * std::exp(-0.5 * z * z);
  }
  return acc;
}

RelativeFiducials BeatMorphology::fiducials() const {
  RelativeFiducials f;
  bool qrs_seen = false;
  for (const WaveParams& w : waves_) {
    const double lo = w.center_s - kWaveExtentSigmas * w.width_s;
    const double hi = w.center_s + kWaveExtentSigmas * w.width_s;
    switch (w.role) {
      case WaveRole::P:
        f.has_p = true;
        f.p_onset = lo;
        f.p_peak = w.center_s;
        f.p_end = hi;
        break;
      case WaveRole::T:
        f.has_t = true;
        f.t_onset = lo;
        f.t_peak = w.center_s;
        f.t_end = hi;
        break;
      default:  // QRS-role waves
        if (!qrs_seen) {
          f.qrs_onset = lo;
          f.qrs_end = hi;
          qrs_seen = true;
        } else {
          f.qrs_onset = std::min(f.qrs_onset, lo);
          f.qrs_end = std::max(f.qrs_end, hi);
        }
        break;
    }
  }
  return f;
}

MorphologyVariation record_variation() {
  return {0.26, 0.20, 0.015, 0.0, 1.0};
}
MorphologyVariation beat_variation() {
  // ~10% of beats are aberrant, with QRS width scaled toward the opposing
  // class (wide-ish normals, narrow-ish ectopics).
  return {0.08, 0.07, 0.005, 0.16, 1.45};
}

namespace {

// Base class templates (lead-II-like amplitudes in mV, times in seconds
// relative to the R peak).
std::vector<WaveParams> base_waves(BeatClass cls) {
  using enum WaveRole;
  switch (cls) {
    case BeatClass::N:
      return {
          {P, 0.15, -0.180, 0.025},
          {Q, -0.10, -0.022, 0.010},
          {R, 1.00, 0.000, 0.012},
          {S, -0.25, 0.026, 0.012},
          {T, 0.35, 0.300, 0.060},
      };
    case BeatClass::L:
      // LBBB: preserved P, broad slurred/notched R (QRS ~140 ms), absent Q,
      // discordant T.
      return {
          {P, 0.12, -0.200, 0.025},
          {R, 0.85, -0.012, 0.030},
          {R2, 0.55, 0.052, 0.034},
          {S, -0.15, 0.110, 0.022},
          {T, -0.28, 0.340, 0.070},
      };
    case BeatClass::V:
      // PVC: no P wave, wide bizarre high-amplitude QRS, large discordant T.
      return {
          {R, 1.35, 0.000, 0.042},
          {S, -0.80, 0.075, 0.048},
          {T, -0.50, 0.360, 0.085},
      };
    case BeatClass::Unknown:
      break;
  }
  HBRP_REQUIRE(false, "no morphology template for Unknown class");
}

std::vector<WaveParams> perturb(const std::vector<WaveParams>& waves,
                                math::Rng& rng,
                                const MorphologyVariation& var) {
  // Aberrant conduction: QRS widths pushed toward the opposing class
  // (widened or narrowed with equal probability), amplitude compensated to
  // keep the deflection area roughly constant.
  // Widening dominates (aberrantly-conducted supraventricular beats are the
  // common case clinically); it also stresses NDR — wide normals drift
  // toward the V/L morphologies — which is where real MIT-BIH classifiers
  // lose their few NDR points.
  double qrs_width_factor = 1.0;
  if (var.aberrant_prob > 0.0 && rng.bernoulli(var.aberrant_prob))
    qrs_width_factor = rng.bernoulli(0.75) ? var.aberrant_width_factor
                                           : 1.0 / var.aberrant_width_factor;

  std::vector<WaveParams> out;
  out.reserve(waves.size());
  for (const WaveParams& w : waves) {
    WaveParams p = w;
    p.amp_mv *= 1.0 + var.amp_frac * rng.normal();
    p.width_s *= std::max(0.4, 1.0 + var.width_frac * rng.normal());
    if (qrs_width_factor != 1.0 && is_qrs_role(p.role)) {
      p.width_s *= qrs_width_factor;
      p.amp_mv /= std::sqrt(qrs_width_factor);
    }
    // The R apex anchors the beat: never shift the wave that defines t = 0,
    // otherwise annotations would drift off the actual peak.
    if (!(p.role == WaveRole::R && w.center_s == 0.0))
      p.center_s += var.center_jitter_s * rng.normal();
    out.push_back(p);
  }
  return out;
}

}  // namespace

BeatMorphology make_template(BeatClass cls, math::Rng& rng,
                             const MorphologyVariation& var) {
  return BeatMorphology(perturb(base_waves(cls), rng, var));
}

BeatMorphology jitter_morphology(const BeatMorphology& base, math::Rng& rng,
                                 const MorphologyVariation& var) {
  return BeatMorphology(perturb(base.waves(), rng, var));
}

}  // namespace hbrp::ecg
