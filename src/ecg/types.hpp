// Core ECG domain types shared by the generator, dataset builder and
// classification pipeline.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dsp/signal.hpp"

namespace hbrp::ecg {

/// Heartbeat classes considered by the paper: normal sinus (N), premature
/// ventricular contraction (V), left bundle branch block (L). `Unknown` is
/// the defuzzifier's low-confidence output; it never labels ground truth.
enum class BeatClass : std::uint8_t { N = 0, V = 1, L = 2, Unknown = 3 };

/// Number of ground-truth classes (N, V, L).
inline constexpr std::size_t kNumClasses = 3;

/// Abnormal == pathological for the paper's binary decision: V, L and
/// low-confidence Unknown beats all activate the detailed analysis.
constexpr bool is_pathological(BeatClass c) { return c != BeatClass::N; }

constexpr const char* to_string(BeatClass c) {
  switch (c) {
    case BeatClass::N: return "N";
    case BeatClass::V: return "V";
    case BeatClass::L: return "L";
    case BeatClass::Unknown: return "U";
  }
  return "?";
}

/// Ground-truth fiducial points of one beat, in record sample indices.
/// Values of kNoFiducial mean the wave is absent (e.g. no P wave in a PVC).
struct Fiducials {
  static constexpr std::size_t kNoFiducial = static_cast<std::size_t>(-1);

  std::size_t p_onset = kNoFiducial;
  std::size_t p_peak = kNoFiducial;
  std::size_t p_end = kNoFiducial;
  std::size_t qrs_onset = kNoFiducial;
  std::size_t r_peak = kNoFiducial;
  std::size_t qrs_end = kNoFiducial;
  std::size_t t_onset = kNoFiducial;
  std::size_t t_peak = kNoFiducial;
  std::size_t t_end = kNoFiducial;

  bool has_p() const { return p_peak != kNoFiducial; }
  /// Number of fiducial points that are present.
  std::size_t count() const;
};

/// One annotated beat of a record.
struct BeatAnnotation {
  std::size_t sample = 0;  ///< R-peak sample index
  BeatClass cls = BeatClass::N;
  Fiducials fiducials;     ///< generator ground truth
};

/// A multi-lead ECG recording with beat annotations (the synthetic stand-in
/// for one MIT-BIH record).
struct Record {
  std::string name;
  int fs_hz = dsp::kMitBihFs;
  std::vector<dsp::Signal> leads;
  std::vector<BeatAnnotation> beats;

  std::size_t duration_samples() const {
    return leads.empty() ? 0 : leads.front().size();
  }
  double duration_s() const {
    return fs_hz > 0
               ? static_cast<double>(duration_samples()) / fs_hz
               : 0.0;
  }
};

/// MIT-BIH-style ADC parameters (11-bit, 200 adu/mV, mid-range baseline).
struct AdcSpec {
  double gain_adu_per_mv = 200.0;
  int baseline_adu = 1024;
  int min_adu = 0;
  int max_adu = 2047;

  dsp::Sample to_adu(double mv) const;
  double to_mv(dsp::Sample adu) const;
};

}  // namespace hbrp::ecg
