// MIT-BIH (PhysioBank WFDB) on-disk format support.
//
// The paper evaluates on the MIT-BIH Arrhythmia Database. That data cannot
// ship with this repository, but the on-disk formats can be fully supported:
// synthetic records are written in genuine WFDB form (.hea header, format
// 212 or 16 signal file, .atr annotation file) and read back through the
// same parser the real database would use. This keeps the ingestion path of
// a downstream user — point the library at WFDB files — fully exercised.
//
// Supported subset:
//   - header: record line (name, #signals, fs, #samples) + signal lines
//     (file, format, gain, ADC resolution, ADC zero);
//   - signal formats: 212 (two 12-bit samples packed in 3 bytes, exactly the
//     Arrhythmia DB layout) and 16 (interleaved little-endian int16, used
//     for three-lead records);
//   - annotations: MIT .atr coding (6-bit type + 10-bit time increment,
//     SKIP escape for long gaps) with beat codes NORMAL=1, LBBB=3, PVC=5.
#pragma once

#include <filesystem>
#include <optional>

#include "ecg/types.hpp"

namespace hbrp::ecg::mitdb {

/// PhysioNet annotation codes for the beat classes this library handles.
enum AnnotationCode : int {
  kCodeNormal = 1,
  kCodeLbbb = 3,
  kCodePvc = 5,
};

/// Maps a PhysioNet beat code to a BeatClass (nullopt for unsupported codes).
std::optional<BeatClass> beat_class_from_code(int code);
int code_from_beat_class(BeatClass cls);

struct WriteOptions {
  /// 212 requires exactly two signals; 16 supports any count.
  int signal_format = 212;
};

/// Writes `record` as <dir>/<record.name>.hea / .dat / .atr.
/// Throws hbrp::Error on I/O failure or unsupported configuration
/// (e.g. format 212 with a lead count other than two).
void write_record(const Record& record, const std::filesystem::path& dir,
                  const WriteOptions& options = {});

/// Reads a record previously written by write_record() (or any WFDB record
/// within the supported subset). `name` is the record name without
/// extension. Fiducial ground truth is not part of WFDB and reads back
/// empty.
Record read_record(const std::filesystem::path& dir, const std::string& name);

}  // namespace hbrp::ecg::mitdb
