#include "ecg/dataset.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "dsp/morphology.hpp"
#include "dsp/resample.hpp"
#include "math/check.hpp"
#include "math/rng.hpp"

namespace hbrp::ecg {

namespace {

// Matches detected peaks to annotations (both sorted). Returns, per
// annotation, the index of its matched detection or npos.
std::vector<std::size_t> match_annotations(
    const std::vector<std::size_t>& detected,
    const std::vector<BeatAnnotation>& annotations, std::size_t tolerance) {
  constexpr auto npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> match(annotations.size(), npos);
  std::size_t di = 0;
  for (std::size_t ai = 0; ai < annotations.size(); ++ai) {
    const std::size_t ref = annotations[ai].sample;
    while (di < detected.size() && detected[di] + tolerance < ref) ++di;
    // Choose the closest detection within tolerance.
    std::size_t best = npos;
    std::size_t best_dist = tolerance + 1;
    for (std::size_t j = di; j < detected.size(); ++j) {
      if (detected[j] > ref + tolerance) break;
      const std::size_t dist =
          detected[j] > ref ? detected[j] - ref : ref - detected[j];
      if (dist < best_dist) {
        best_dist = dist;
        best = j;
      }
    }
    match[ai] = best;
  }
  return match;
}

RecordProfile pick_profile(const DatasetSpec& remaining, std::size_t round) {
  if (remaining.l > 0) return RecordProfile::Lbbb;
  if (remaining.v > 0)
    // Alternate PVC densities for rhythm variety.
    return round % 2 == 0 ? RecordProfile::PvcBigeminy
                          : RecordProfile::PvcOccasional;
  return RecordProfile::NormalSinus;
}

constexpr char kMagic[8] = {'H', 'B', 'R', 'P', 'D', 'S', '0', '2'};

template <typename T>
void put(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  HBRP_REQUIRE(in.good(), "dataset: truncated file");
  return value;
}

}  // namespace

DatasetSpec BeatDataset::counts() const {
  DatasetSpec c;
  for (const BeatWindow& b : beats) {
    switch (b.label) {
      case BeatClass::N: ++c.n; break;
      case BeatClass::V: ++c.v; break;
      case BeatClass::L: ++c.l; break;
      case BeatClass::Unknown: break;
    }
  }
  return c;
}

BeatDataset build_dataset(const DatasetSpec& spec,
                          const DatasetBuilderConfig& cfg) {
  HBRP_REQUIRE(spec.total() > 0, "build_dataset(): empty spec");
  HBRP_REQUIRE(cfg.num_leads >= 1 && cfg.num_leads <= 3,
               "build_dataset(): 1..3 leads supported");
  BeatDataset ds;
  ds.window_before = cfg.window_before;
  ds.window_after = cfg.window_after;
  ds.num_leads = cfg.num_leads;
  ds.beats.reserve(spec.total());

  DatasetSpec remaining = spec;
  math::Rng rng(cfg.seed);
  const auto filter_cfg = dsp::FilterConfig::for_rate(dsp::kMitBihFs);
  const dsp::PeakDetectorConfig det_cfg;

  // Beats too close to the record edge would have heavily clamped windows.
  const std::size_t edge_guard =
      std::max(cfg.window_before, cfg.window_after) + dsp::kMitBihFs / 2;

  std::size_t round = 0;
  const std::size_t max_records = 4000;
  for (; remaining.total() > 0; ++round) {
    HBRP_REQUIRE(round < max_records,
                 "build_dataset(): could not fill quotas — generator mix "
                 "cannot reach the requested class counts");
    SynthConfig sc;
    sc.profile = pick_profile(remaining, round);
    sc.duration_s = cfg.record_duration_s;
    sc.num_leads = static_cast<int>(cfg.num_leads);
    sc.seed = rng.next();
    const Record rec = generate_record(sc);

    // Lead 0 is the reference for peak detection; all leads contribute
    // window samples.
    std::vector<dsp::Signal> conditioned_leads;
    conditioned_leads.reserve(rec.leads.size());
    for (const dsp::Signal& lead : rec.leads)
      conditioned_leads.push_back(dsp::condition_ecg(lead, filter_cfg));
    const dsp::Signal& conditioned = conditioned_leads[0];
    std::vector<std::size_t> peaks;
    if (cfg.use_detected_peaks) {
      peaks = dsp::detect_r_peaks(conditioned, det_cfg);
    } else {
      peaks.reserve(rec.beats.size());
      for (const BeatAnnotation& ann : rec.beats) peaks.push_back(ann.sample);
    }
    const std::vector<std::size_t> match =
        match_annotations(peaks, rec.beats, cfg.match_tolerance);

    std::array<std::size_t, kNumClasses> taken_this_record{};
    for (std::size_t ai = 0; ai < rec.beats.size(); ++ai) {
      if (match[ai] == static_cast<std::size_t>(-1)) continue;
      const std::size_t peak = peaks[match[ai]];
      if (peak < edge_guard || peak + edge_guard >= conditioned.size())
        continue;
      std::size_t* quota = nullptr;
      switch (rec.beats[ai].cls) {
        case BeatClass::N: quota = &remaining.n; break;
        case BeatClass::V: quota = &remaining.v; break;
        case BeatClass::L: quota = &remaining.l; break;
        case BeatClass::Unknown: break;
      }
      if (quota == nullptr || *quota == 0) continue;
      auto& taken = taken_this_record[static_cast<std::size_t>(
          rec.beats[ai].cls)];
      if (taken >= cfg.max_per_record_per_class) continue;
      ++taken;
      --*quota;
      BeatWindow bw;
      bw.label = rec.beats[ai].cls;
      bw.samples.reserve(ds.window_size());
      for (const dsp::Signal& lead : conditioned_leads) {
        const dsp::Signal w = dsp::extract_window(
            lead, peak, cfg.window_before, cfg.window_after);
        bw.samples.insert(bw.samples.end(), w.begin(), w.end());
      }
      ds.beats.push_back(std::move(bw));
    }
  }
  return ds;
}

void save_dataset(const BeatDataset& ds, const std::filesystem::path& path) {
  std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  HBRP_REQUIRE(out.good(), "dataset: cannot open for write: " + path.string());
  out.write(kMagic, sizeof(kMagic));
  put<std::int32_t>(out, ds.fs_hz);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(ds.window_before));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(ds.window_after));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(ds.num_leads));
  put<std::uint64_t>(out, ds.beats.size());
  for (const BeatWindow& b : ds.beats) {
    put<std::uint8_t>(out, static_cast<std::uint8_t>(b.label));
    HBRP_REQUIRE(b.samples.size() == ds.window_size(),
                 "dataset: inconsistent window size");
    out.write(reinterpret_cast<const char*>(b.samples.data()),
              static_cast<std::streamsize>(b.samples.size() *
                                           sizeof(dsp::Sample)));
  }
  HBRP_REQUIRE(out.good(), "dataset: write failure: " + path.string());
}

BeatDataset load_dataset(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  HBRP_REQUIRE(in.good(), "dataset: cannot open: " + path.string());
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  HBRP_REQUIRE(in.good() && std::equal(magic, magic + sizeof(kMagic), kMagic),
               "dataset: bad magic in " + path.string());
  BeatDataset ds;
  ds.fs_hz = get<std::int32_t>(in);
  ds.window_before = get<std::uint32_t>(in);
  ds.window_after = get<std::uint32_t>(in);
  ds.num_leads = get<std::uint32_t>(in);
  HBRP_REQUIRE(ds.num_leads >= 1, "dataset: invalid lead count");
  const auto count = get<std::uint64_t>(in);
  ds.beats.resize(count);
  for (BeatWindow& b : ds.beats) {
    const auto label = get<std::uint8_t>(in);
    HBRP_REQUIRE(label <= 2, "dataset: invalid label");
    b.label = static_cast<BeatClass>(label);
    b.samples.resize(ds.window_size());
    in.read(reinterpret_cast<char*>(b.samples.data()),
            static_cast<std::streamsize>(b.samples.size() *
                                         sizeof(dsp::Sample)));
    HBRP_REQUIRE(in.good(), "dataset: truncated beats in " + path.string());
  }
  return ds;
}

BeatDataset load_or_build(const std::filesystem::path& path,
                          const DatasetSpec& spec,
                          const DatasetBuilderConfig& cfg) {
  if (std::filesystem::exists(path)) {
    try {
      BeatDataset ds = load_dataset(path);
      const DatasetSpec c = ds.counts();
      if (c.n == spec.n && c.v == spec.v && c.l == spec.l &&
          ds.num_leads == cfg.num_leads)
        return ds;
      // Stale cache (different spec): rebuild below.
    } catch (const Error&) {
      // Corrupt or old-format cache: rebuild below.
    }
  }
  BeatDataset ds = build_dataset(spec, cfg);
  save_dataset(ds, path);
  return ds;
}

std::filesystem::path default_cache_dir() {
  if (const char* env = std::getenv("HBRP_CACHE_DIR")) return env;
  return "/tmp/hbrp-cache";
}

PaperSplits load_paper_splits(double test_scale) {
  HBRP_REQUIRE(test_scale > 0.0 && test_scale <= 1.0,
               "load_paper_splits(): test_scale must be in (0, 1]");
  auto scaled = [test_scale](const DatasetSpec& s) {
    if (test_scale == 1.0) return s;
    auto f = [test_scale](std::size_t x) {
      return std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(x) * test_scale));
    };
    return DatasetSpec{f(s.n), f(s.v), f(s.l)};
  };
  const auto dir = default_cache_dir();
  auto name = [&dir](const char* tag, const DatasetSpec& s,
                     std::uint64_t seed) {
    return dir / ("ds_" + std::string(tag) + "_" + std::to_string(s.n) + "_" +
                  std::to_string(s.v) + "_" + std::to_string(s.l) + "_" +
                  std::to_string(seed) + ".bin");
  };

  PaperSplits splits;
  DatasetBuilderConfig cfg;
  // Small splits must still span many "patients" (see
  // DatasetBuilderConfig::max_per_record_per_class).
  cfg.seed = 101;
  cfg.max_per_record_per_class = 30;
  splits.training1 =
      load_or_build(name("ts1", kTrainingSet1, cfg.seed), kTrainingSet1, cfg);
  cfg.seed = 202;
  cfg.max_per_record_per_class = 150;
  splits.training2 =
      load_or_build(name("ts2", kTrainingSet2, cfg.seed), kTrainingSet2, cfg);
  cfg.seed = 303;
  cfg.max_per_record_per_class = 400;
  const DatasetSpec test_spec = scaled(kTestSet);
  splits.test = load_or_build(name("test", test_spec, cfg.seed), test_spec, cfg);
  return splits;
}

}  // namespace hbrp::ecg
