#include "ecg/types.hpp"

#include <algorithm>
#include <cmath>

namespace hbrp::ecg {

std::size_t Fiducials::count() const {
  const std::array<std::size_t, 9> all = {p_onset, p_peak, p_end,
                                          qrs_onset, r_peak, qrs_end,
                                          t_onset, t_peak, t_end};
  return static_cast<std::size_t>(
      std::count_if(all.begin(), all.end(),
                    [](std::size_t v) { return v != kNoFiducial; }));
}

dsp::Sample AdcSpec::to_adu(double mv) const {
  const double raw = mv * gain_adu_per_mv + baseline_adu;
  const double clamped = std::clamp(
      raw, static_cast<double>(min_adu), static_cast<double>(max_adu));
  return static_cast<dsp::Sample>(std::lround(clamped));
}

double AdcSpec::to_mv(dsp::Sample adu) const {
  return (static_cast<double>(adu) - baseline_adu) / gain_adu_per_mv;
}

}  // namespace hbrp::ecg
