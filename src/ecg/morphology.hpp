// Analytic beat-morphology model for the synthetic ECG generator.
//
// Each heartbeat is a sum of Gaussian waves (the classic ECGSYN approach of
// McSharry et al.), parameterized per class to reproduce the morphological
// distinctions the paper's classifier exploits:
//   N — normal sinus: P wave, narrow QRS (Q/R/S), upright T;
//   L — left bundle branch block: P wave preserved, wide slurred/notched QRS
//       (~140 ms), discordant (inverted) T;
//   V — premature ventricular contraction: no P wave, wide bizarre
//       high-amplitude QRS, large discordant T, premature timing followed by
//       a compensatory pause (timing handled by the rhythm model in synth).
// The model also yields analytic ground-truth fiducial points, which the
// delineation experiments score against.
#pragma once

#include <vector>

#include "ecg/types.hpp"
#include "math/rng.hpp"

namespace hbrp::ecg {

/// Role of one Gaussian component inside a beat.
enum class WaveRole : std::uint8_t { P = 0, Q, R, R2, S, T };
inline constexpr std::size_t kNumWaveRoles = 6;

struct WaveParams {
  WaveRole role = WaveRole::R;
  double amp_mv = 0.0;    ///< signed peak amplitude
  double center_s = 0.0;  ///< centre relative to the R peak (seconds)
  double width_s = 0.0;   ///< Gaussian sigma (seconds)
};

constexpr bool is_qrs_role(WaveRole r) {
  return r == WaveRole::Q || r == WaveRole::R || r == WaveRole::R2 ||
         r == WaveRole::S;
}

/// Fiducial points relative to the R peak (seconds). NaN-free: absent waves
/// are flagged with `has_p` / `has_t`.
struct RelativeFiducials {
  bool has_p = false;
  bool has_t = false;
  double p_onset = 0.0, p_peak = 0.0, p_end = 0.0;
  double qrs_onset = 0.0, qrs_end = 0.0;
  double t_onset = 0.0, t_peak = 0.0, t_end = 0.0;
};

class BeatMorphology {
 public:
  explicit BeatMorphology(std::vector<WaveParams> waves);

  /// Membrane potential contribution at time `t` seconds from the R peak.
  double value_at(double t) const;

  /// Analytic fiducials: each wave's extent is taken as +-2.5 sigma around
  /// its centre; QRS onset/end aggregate all QRS-role components.
  RelativeFiducials fiducials() const;

  /// Earliest/latest time at which the beat contributes meaningful signal.
  double support_begin_s() const { return support_begin_; }
  double support_end_s() const { return support_end_; }

  const std::vector<WaveParams>& waves() const { return waves_; }

 private:
  std::vector<WaveParams> waves_;
  double support_begin_ = 0.0;
  double support_end_ = 0.0;
};

/// Per-record morphology individuality: each synthetic "patient" draws a
/// template once per record; per-beat jitter is applied on top.
struct MorphologyVariation {
  double amp_frac = 0.0;      ///< relative amplitude perturbation (1 sigma)
  double width_frac = 0.0;    ///< relative width perturbation (1 sigma)
  double center_jitter_s = 0.0;  ///< absolute centre jitter (1 sigma)
  /// Probability that a beat is "aberrant": its QRS widths are additionally
  /// scaled by aberrant_width_factor. Aberrantly-conducted normal beats and
  /// narrow fusion-like PVCs are what make real MIT-BIH classification hard;
  /// without them every class is trivially separable by QRS width.
  double aberrant_prob = 0.0;
  double aberrant_width_factor = 1.0;
};

/// Default inter-patient variation (drawn once per record).
MorphologyVariation record_variation();
/// Default beat-to-beat variation (drawn per beat).
MorphologyVariation beat_variation();

/// Creates a class template with inter-patient variation applied.
BeatMorphology make_template(BeatClass cls, math::Rng& rng,
                             const MorphologyVariation& var = record_variation());

/// Applies beat-to-beat jitter to a template.
BeatMorphology jitter_morphology(const BeatMorphology& base, math::Rng& rng,
                                 const MorphologyVariation& var = beat_variation());

}  // namespace hbrp::ecg
