// Labeled beat-window datasets (Table I of the paper).
//
// The paper trains and evaluates on beat windows of 100 samples before +
// 100 after each R peak at 360 Hz, extracted from MIT-BIH recordings after
// filtering and peak detection. This module assembles the same three splits
// from synthetic records:
//     training set 1:   150 N /   150 V /   150 L   (NFC training, SCG)
//     training set 2: 10024 N /   892 V /  1084 L   (projection fitness, GA)
//     test set:       74355 N /  6618 V /  8039 L   (all reported results)
// Windows are cut around *detected* peaks (the real pipeline's behaviour);
// labels come from matching detections to generator annotations.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "dsp/peak_detect.hpp"
#include "ecg/synth.hpp"
#include "ecg/types.hpp"

namespace hbrp::ecg {

/// Per-class beat quotas of one split.
struct DatasetSpec {
  std::size_t n = 0;
  std::size_t v = 0;
  std::size_t l = 0;

  std::size_t total() const { return n + v + l; }
};

/// The paper's three splits (Table I).
inline constexpr DatasetSpec kTrainingSet1{150, 150, 150};
inline constexpr DatasetSpec kTrainingSet2{10024, 892, 1084};
inline constexpr DatasetSpec kTestSet{74355, 6618, 8039};

/// One labeled beat window (conditioned samples at the acquisition rate).
/// For multi-lead datasets the per-lead windows are concatenated
/// lead-major: [lead0 window | lead1 window | ...].
struct BeatWindow {
  dsp::Signal samples;
  BeatClass label = BeatClass::N;
};

struct BeatDataset {
  int fs_hz = dsp::kMitBihFs;
  std::size_t window_before = 100;
  std::size_t window_after = 100;
  std::size_t num_leads = 1;
  std::vector<BeatWindow> beats;

  /// Total samples per beat across all leads.
  std::size_t window_size() const {
    return num_leads * (window_before + window_after);
  }
  DatasetSpec counts() const;
};

struct DatasetBuilderConfig {
  std::size_t window_before = 100;
  std::size_t window_after = 100;
  /// Leads per beat window (concatenated). The paper classifies on a single
  /// lead; 3 reproduces the multi-lead random-projection features of its
  /// inspiration work [18] (see bench_extension_multilead).
  std::size_t num_leads = 1;
  /// Synthetic record length; shorter records mean more distinct "patients".
  double record_duration_s = 600.0;
  /// Peak-to-annotation matching tolerance in samples (~42 ms at 360 Hz).
  std::size_t match_tolerance = 15;
  /// When false, windows are cut on annotated peaks (oracle; for ablation).
  bool use_detected_peaks = true;
  /// Cap on beats taken per class from any single record, so small splits
  /// still span many "patients" (morphology templates). Training on beats
  /// of one or two records would underestimate within-class variance and
  /// produce overconfident, quantization-hostile membership functions.
  std::size_t max_per_record_per_class = 400;
  std::uint64_t seed = 20130318;  // DATE'13 session date
};

/// Builds a dataset satisfying `spec` by generating records until all class
/// quotas are filled. Deterministic in cfg.seed.
BeatDataset build_dataset(const DatasetSpec& spec,
                          const DatasetBuilderConfig& cfg = {});

/// Binary (de)serialization, so expensive splits are built once per machine.
void save_dataset(const BeatDataset& ds, const std::filesystem::path& path);
BeatDataset load_dataset(const std::filesystem::path& path);

/// Loads `path` if present, otherwise builds per `spec`/`cfg` and saves.
BeatDataset load_or_build(const std::filesystem::path& path,
                          const DatasetSpec& spec,
                          const DatasetBuilderConfig& cfg = {});

/// Default cache location for the three paper splits, derived from the
/// HBRP_CACHE_DIR environment variable or /tmp/hbrp-cache.
std::filesystem::path default_cache_dir();

/// Convenience: the three paper splits with caching, sharing one seed base.
struct PaperSplits {
  BeatDataset training1;
  BeatDataset training2;
  BeatDataset test;
};
PaperSplits load_paper_splits(double test_scale = 1.0);

}  // namespace hbrp::ecg
