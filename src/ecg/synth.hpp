// Synthetic multi-lead ECG record generator.
//
// Stand-in for the MIT-BIH Arrhythmia Database (see DESIGN.md §2): produces
// annotated records whose beats carry the morphological structure the
// paper's classifier discriminates, embedded in realistic acquisition
// conditions — RR-interval dynamics with PVC prematurity and compensatory
// pauses, per-record ("per-patient") morphology individuality, baseline
// wander, EMG noise, powerline interference, and 11-bit ADC quantization.
#pragma once

#include <cstdint>
#include <span>

#include "ecg/morphology.hpp"
#include "ecg/types.hpp"

namespace hbrp::ecg {

/// Rhythm/beat-mix archetypes mirroring MIT-BIH record families.
enum class RecordProfile : std::uint8_t {
  NormalSinus,     ///< nearly all N, sporadic PVCs (< 1%)
  PvcOccasional,   ///< N with ~7% PVCs
  PvcBigeminy,     ///< N with runs of every-other-beat PVCs
  Lbbb,            ///< LBBB patient: nearly all L, sporadic PVCs
};

struct NoiseConfig {
  double baseline_mv = 0.14;   ///< baseline-wander amplitude (1 sigma of mix)
  double emg_mv = 0.035;       ///< white EMG noise sigma
  double powerline_mv = 0.008; ///< 60 Hz interference amplitude
  double powerline_hz = 60.0;
};

struct SynthConfig {
  int fs_hz = dsp::kMitBihFs;
  double duration_s = 1800.0;  ///< MIT-BIH records are ~30 min
  int num_leads = 3;
  RecordProfile profile = RecordProfile::NormalSinus;
  /// Mean heart rate; 0 draws a per-record rate in [55, 95] bpm.
  double heart_rate_bpm = 0.0;
  NoiseConfig noise;
  /// Scales all noise amplitudes; 0 disables noise entirely (for tests).
  double noise_scale = 1.0;
  std::uint64_t seed = 1;
  AdcSpec adc;
};

/// Generates one annotated record. Deterministic in `cfg.seed`.
Record generate_record(const SynthConfig& cfg);

/// One externally scripted beat for render_planned(): where it lands, what
/// class it is, and how it is reported. The scenario engine (src/scenario)
/// uses this to compose rhythms generate_record()'s profile model cannot
/// express — AFib-like irregular RR, sustained VT runs, paced rhythms,
/// fusion beats (a second, non-annotated beat overlapping an annotated one).
struct PlacedBeat {
  double center_s = 0.0;         ///< R-peak time (seconds)
  BeatClass cls = BeatClass::N;  ///< morphology template + annotation class
  double amp_scale = 1.0;        ///< extra amplitude factor (fusion blending)
  bool annotate = true;          ///< false: render only, no annotation
};

/// Renders an externally planned beat sequence through the same per-record
/// morphology templates, lead gains, noise model and ADC as
/// generate_record(). Deterministic in `cfg.seed`, and shares the seed
/// layout with generate_record(): the same seed yields the same "patient"
/// (templates, gain, noise character) regardless of which entry point
/// renders them. `beats` must be sorted by center_s; cfg.profile and
/// cfg.heart_rate_bpm are ignored (the plan replaces the rhythm model).
Record render_planned(const SynthConfig& cfg,
                      std::span<const PlacedBeat> beats);

/// Fraction of beats of each class a profile produces on average
/// (used by the dataset builder to plan record counts).
struct ProfileMix {
  double n = 0.0, v = 0.0, l = 0.0;
};
ProfileMix expected_mix(RecordProfile profile);

}  // namespace hbrp::ecg
