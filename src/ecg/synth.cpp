#include "ecg/synth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "math/check.hpp"

namespace hbrp::ecg {

namespace {

// Per-lead gain applied to each wave role, emulating three electrode
// placements viewing the same cardiac activity. Lead 0 is the reference
// (lead-II-like); lead 2 is V1-like with reduced R and accentuated
// negative deflections.
constexpr double kLeadGain[3][kNumWaveRoles] = {
    //  P      Q      R      R2     S      T
    {1.00, 1.00, 1.00, 1.00, 1.00, 1.00},
    {0.70, 0.80, 0.85, 0.80, 0.90, 0.75},
    {0.50, 1.20, 0.45, 0.55, 1.60, -0.60},
};

struct PlannedBeat {
  double center_s = 0.0;
  BeatClass cls = BeatClass::N;
};

// Plans the beat sequence: classes per the profile, RR intervals with
// respiratory modulation and jitter, PVC prematurity + compensatory pause.
std::vector<PlannedBeat> plan_rhythm(const SynthConfig& cfg,
                                     math::Rng& rng) {
  const double hr = cfg.heart_rate_bpm > 0.0 ? cfg.heart_rate_bpm
                                             : rng.uniform(55.0, 95.0);
  const double rr_base = 60.0 / hr;
  const double resp_freq = rng.uniform(0.15, 0.35);   // breathing rate (Hz)
  const double resp_depth = rng.uniform(0.01, 0.04);  // RR modulation depth
  const double resp_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);

  std::vector<PlannedBeat> beats;
  double t = 0.6;  // leave room for the first beat's P wave
  bool in_bigeminy_run = false;
  std::size_t run_left = 0;
  bool prev_was_pvc = false;

  const double margin = 0.7;  // keep last beat's T wave inside the record
  while (t < cfg.duration_s - margin) {
    BeatClass cls = BeatClass::N;
    switch (cfg.profile) {
      case RecordProfile::NormalSinus:
        cls = (!prev_was_pvc && rng.bernoulli(0.008)) ? BeatClass::V
                                                      : BeatClass::N;
        break;
      case RecordProfile::PvcOccasional:
        cls = (!prev_was_pvc && rng.bernoulli(0.07)) ? BeatClass::V
                                                     : BeatClass::N;
        break;
      case RecordProfile::PvcBigeminy:
        if (!in_bigeminy_run && rng.bernoulli(0.02)) {
          in_bigeminy_run = true;
          run_left = static_cast<std::size_t>(rng.uniform_int(6, 20));
        }
        if (in_bigeminy_run) {
          cls = prev_was_pvc ? BeatClass::N : BeatClass::V;
          if (run_left-- == 0) in_bigeminy_run = false;
        } else {
          cls = (!prev_was_pvc && rng.bernoulli(0.01)) ? BeatClass::V
                                                       : BeatClass::N;
        }
        break;
      case RecordProfile::Lbbb:
        cls = (!prev_was_pvc && rng.bernoulli(0.02)) ? BeatClass::V
                                                     : BeatClass::L;
        break;
    }

    beats.push_back({t, cls});

    // Next RR interval.
    const double resp = 1.0 + resp_depth * std::sin(2.0 * std::numbers::pi *
                                                        resp_freq * t +
                                                    resp_phase);
    const double jitter = 1.0 + 0.025 * rng.normal();
    double rr = rr_base * resp * std::clamp(jitter, 0.8, 1.2);
    if (cls == BeatClass::V) {
      // This beat was premature: shorten the interval *into* it by moving it
      // earlier, and lengthen the interval out of it (compensatory pause).
      const double prematurity = rng.uniform(0.25, 0.40);
      beats.back().center_s -= prematurity * rr_base;
      if (beats.size() >= 2 &&
          beats.back().center_s - beats[beats.size() - 2].center_s < 0.3)
        beats.back().center_s = beats[beats.size() - 2].center_s + 0.3;
      rr += prematurity * rr_base;  // pause restores the underlying rhythm
    }
    t += rr;
    prev_was_pvc = (cls == BeatClass::V);
  }
  return beats;
}

std::size_t to_sample(double t_s, int fs, std::size_t n) {
  const auto idx = static_cast<std::ptrdiff_t>(std::lround(t_s * fs));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(n) - 1));
}

Fiducials absolute_fiducials(const RelativeFiducials& rel, double center_s,
                             int fs, std::size_t n) {
  Fiducials f;
  f.r_peak = to_sample(center_s, fs, n);
  f.qrs_onset = to_sample(center_s + rel.qrs_onset, fs, n);
  f.qrs_end = to_sample(center_s + rel.qrs_end, fs, n);
  if (rel.has_p) {
    f.p_onset = to_sample(center_s + rel.p_onset, fs, n);
    f.p_peak = to_sample(center_s + rel.p_peak, fs, n);
    f.p_end = to_sample(center_s + rel.p_end, fs, n);
  }
  if (rel.has_t) {
    f.t_onset = to_sample(center_s + rel.t_onset, fs, n);
    f.t_peak = to_sample(center_s + rel.t_peak, fs, n);
    f.t_end = to_sample(center_s + rel.t_end, fs, n);
  }
  return f;
}

// The per-record "patient" identity shared by both entry points: class
// templates drawn from the morphology split and the overall gain.
struct PatientTemplates {
  BeatMorphology n, v, l;
  double gain = 1.0;
};

// Renders `beats` into an annotated record. Consumes `beat_rng` (one
// jitter draw sequence per beat, in order) and `rng` (one split per lead
// for noise), so the caller's preamble fixes the whole draw layout.
Record render_core(const SynthConfig& cfg, std::span<const PlacedBeat> beats,
                   const PatientTemplates& tmpl, math::Rng& beat_rng,
                   math::Rng& rng) {
  const auto n =
      static_cast<std::size_t>(cfg.duration_s * cfg.fs_hz);

  // Accumulate the clean signal in mV per lead.
  std::vector<std::vector<double>> mv(
      static_cast<std::size_t>(cfg.num_leads), std::vector<double>(n, 0.0));

  Record rec;
  rec.fs_hz = cfg.fs_hz;
  rec.beats.reserve(beats.size());

  for (const PlacedBeat& pb : beats) {
    const BeatMorphology& base = pb.cls == BeatClass::N   ? tmpl.n
                                 : pb.cls == BeatClass::V ? tmpl.v
                                                          : tmpl.l;
    const BeatMorphology beat = jitter_morphology(base, beat_rng);

    const double lo_s = pb.center_s + beat.support_begin_s();
    const double hi_s = pb.center_s + beat.support_end_s();
    const auto lo = static_cast<std::size_t>(
        std::max(0.0, std::floor(lo_s * cfg.fs_hz)));
    const auto hi = std::min(
        n, static_cast<std::size_t>(std::max(0.0, std::ceil(hi_s * cfg.fs_hz))));

    for (std::size_t i = lo; i < hi; ++i) {
      const double t = static_cast<double>(i) / cfg.fs_hz - pb.center_s;
      // Evaluate each wave once, then fan out through the lead gains.
      for (const WaveParams& w : beat.waves()) {
        const double z = (t - w.center_s) / w.width_s;
        if (std::abs(z) > 5.0) continue;
        const double g =
            pb.amp_scale * tmpl.gain * w.amp_mv * std::exp(-0.5 * z * z);
        for (int lead = 0; lead < cfg.num_leads; ++lead)
          mv[static_cast<std::size_t>(lead)][i] +=
              g * kLeadGain[lead][static_cast<std::size_t>(w.role)];
      }
    }

    if (!pb.annotate) continue;
    BeatAnnotation ann;
    ann.sample = to_sample(pb.center_s, cfg.fs_hz, n);
    ann.cls = pb.cls;
    ann.fiducials =
        absolute_fiducials(beat.fiducials(), pb.center_s, cfg.fs_hz, n);
    rec.beats.push_back(ann);
  }

  // Additive noise, independently drawn per lead.
  if (cfg.noise_scale > 0.0) {
    for (int lead = 0; lead < cfg.num_leads; ++lead) {
      math::Rng noise_rng = rng.split();
      auto& sig = mv[static_cast<std::size_t>(lead)];

      // Baseline wander: two slow sinusoids (respiration + electrode drift).
      const double a1 = cfg.noise_scale * cfg.noise.baseline_mv *
                        noise_rng.uniform(0.5, 1.0);
      const double a2 = a1 * noise_rng.uniform(0.3, 0.7);
      const double f1 = noise_rng.uniform(0.15, 0.30);
      const double f2 = noise_rng.uniform(0.30, 0.45);
      const double p1 = noise_rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double p2 = noise_rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double emg = cfg.noise_scale * cfg.noise.emg_mv *
                         noise_rng.uniform(0.5, 1.5);
      const double pl_amp = cfg.noise_scale * cfg.noise.powerline_mv *
                            noise_rng.uniform(0.3, 1.5);
      const double pl_phase = noise_rng.uniform(0.0, 2.0 * std::numbers::pi);

      for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / cfg.fs_hz;
        sig[i] += a1 * std::sin(2.0 * std::numbers::pi * f1 * t + p1) +
                  a2 * std::sin(2.0 * std::numbers::pi * f2 * t + p2) +
                  emg * noise_rng.normal() +
                  pl_amp * std::sin(2.0 * std::numbers::pi *
                                        cfg.noise.powerline_hz * t +
                                    pl_phase);
      }
    }
  }

  // 11-bit ADC digitization.
  rec.leads.resize(static_cast<std::size_t>(cfg.num_leads));
  for (int lead = 0; lead < cfg.num_leads; ++lead) {
    auto& out = rec.leads[static_cast<std::size_t>(lead)];
    out.resize(n);
    const auto& sig = mv[static_cast<std::size_t>(lead)];
    for (std::size_t i = 0; i < n; ++i) out[i] = cfg.adc.to_adu(sig[i]);
  }
  return rec;
}

void check_config(const SynthConfig& cfg, const char* who) {
  HBRP_REQUIRE(cfg.fs_hz > 0, "fs must be positive");
  HBRP_REQUIRE(cfg.num_leads >= 1 && cfg.num_leads <= 3,
               "1..3 leads supported");
  HBRP_REQUIRE(cfg.duration_s >= 2.0, "duration must be >= 2 s");
  (void)who;
}

// The seed layout both entry points share: one morphology split (three
// templates), the patient gain, one split reserved for the rhythm model,
// one split for per-beat jitter, then per-lead noise splits inside
// render_core. render_planned() discards the rhythm split so that a given
// seed names the same patient whichever entry point renders it.
PatientTemplates draw_patient(math::Rng& rng) {
  math::Rng morph_rng = rng.split();
  const BeatMorphology tmpl_n = make_template(BeatClass::N, morph_rng);
  const BeatMorphology tmpl_v = make_template(BeatClass::V, morph_rng);
  const BeatMorphology tmpl_l = make_template(BeatClass::L, morph_rng);
  const double gain = rng.uniform(0.8, 1.25);
  return PatientTemplates{tmpl_n, tmpl_v, tmpl_l, gain};
}

}  // namespace

Record generate_record(const SynthConfig& cfg) {
  check_config(cfg, "generate_record()");

  math::Rng rng(cfg.seed);
  const PatientTemplates tmpl = draw_patient(rng);

  math::Rng rhythm_rng = rng.split();
  const std::vector<PlannedBeat> planned = plan_rhythm(cfg, rhythm_rng);
  std::vector<PlacedBeat> placed;
  placed.reserve(planned.size());
  for (const PlannedBeat& pb : planned)
    placed.push_back(PlacedBeat{pb.center_s, pb.cls, 1.0, true});

  math::Rng beat_rng = rng.split();
  return render_core(cfg, placed, tmpl, beat_rng, rng);
}

Record render_planned(const SynthConfig& cfg,
                      std::span<const PlacedBeat> beats) {
  check_config(cfg, "render_planned()");
  for (std::size_t i = 1; i < beats.size(); ++i)
    HBRP_REQUIRE(beats[i - 1].center_s <= beats[i].center_s,
                 "render_planned(): beats must be sorted by center_s");

  math::Rng rng(cfg.seed);
  const PatientTemplates tmpl = draw_patient(rng);
  (void)rng.split();  // rhythm split: unused, keeps the seed layout shared
  math::Rng beat_rng = rng.split();
  return render_core(cfg, beats, tmpl, beat_rng, rng);
}

ProfileMix expected_mix(RecordProfile profile) {
  switch (profile) {
    case RecordProfile::NormalSinus: return {0.992, 0.008, 0.0};
    case RecordProfile::PvcOccasional: return {0.93, 0.07, 0.0};
    case RecordProfile::PvcBigeminy: return {0.85, 0.15, 0.0};
    case RecordProfile::Lbbb: return {0.0, 0.02, 0.98};
  }
  return {};
}

}  // namespace hbrp::ecg
