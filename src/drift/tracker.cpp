#include "drift/tracker.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "math/check.hpp"

namespace hbrp::drift {

namespace {

// FNV-1a, fed the raw bytes of doubles/ints so any bit-level divergence
// between two tracker states changes the digest.
inline void fnv_mix(std::uint64_t& h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
}

}  // namespace

DriftTracker::DriftTracker(const TrainingCentroids& seed, DriftConfig cfg)
    : cfg_(cfg), k_(seed.coefficients) {
  HBRP_REQUIRE(k_ > 0, "DriftTracker: coefficients must be > 0");
  HBRP_REQUIRE(!seed.centroids.empty(),
               "DriftTracker: at least one training centroid required");
  HBRP_REQUIRE(seed.scale > 0.0, "DriftTracker: scale must be > 0");
  HBRP_REQUIRE(cfg_.max_clusters > seed.centroids.size(),
               "DriftTracker: max_clusters must exceed the seeded "
               "centroid count");
  HBRP_REQUIRE(cfg_.window_beats > 0,
               "DriftTracker: window_beats must be > 0");
  inv_norm_ = 1.0 / (seed.scale * std::sqrt(static_cast<double>(k_)));

  seeds_.reserve(seed.centroids.size());
  seed_inv_norm_.reserve(seed.centroids.size());
  for (const auto& c : seed.centroids) {
    HBRP_REQUIRE(c.mean.size() == k_,
                 "DriftTracker: centroid dimension mismatch");
    HBRP_REQUIRE(c.sigma >= 0.0, "DriftTracker: negative centroid sigma");
    Cluster cl;
    cl.mean = c.mean;
    cl.m2.assign(k_, 0.0);
    cl.mass = c.mass > 0.0 ? c.mass : 1.0;
    cl.seeded = true;
    seeds_.push_back(std::move(cl));
    seed_inv_norm_.push_back(
        c.sigma > 0.0 ? 1.0 / (c.sigma * std::sqrt(static_cast<double>(k_)))
                      : inv_norm_);
  }
  clusters_.reserve(cfg_.max_clusters);
  clusters_ = seeds_;
  // Spare clusters with preallocated k-sized buffers: founding, eviction
  // and merging shuffle Cluster objects between clusters_ and pool_ by
  // move, so observe() never touches the allocator. The pool is sized for
  // the worst case (reset_session parks every live cluster at once).
  pool_.reserve(cfg_.max_clusters);
  for (std::size_t i = seeds_.size(); i < cfg_.max_clusters; ++i) {
    Cluster spare;
    spare.mean.assign(k_, 0.0);
    spare.m2.assign(k_, 0.0);
    pool_.push_back(std::move(spare));
  }
  window_.assign(cfg_.window_beats, 0);
}

DriftTracker::Cluster DriftTracker::take_pooled() {
  HBRP_REQUIRE(!pool_.empty(), "DriftTracker: cluster pool exhausted");
  Cluster c = std::move(pool_.back());
  pool_.pop_back();
  return c;
}

void DriftTracker::recycle(std::size_t idx) {
  pool_.push_back(std::move(clusters_[idx]));
  clusters_.erase(clusters_.begin() + static_cast<std::ptrdiff_t>(idx));
}

ClusterInfo DriftTracker::cluster(std::size_t i) const {
  HBRP_REQUIRE(i < clusters_.size(), "DriftTracker::cluster: index");
  const Cluster& c = clusters_[i];
  return {std::span<const double>(c.mean), std::span<const double>(c.m2),
          c.mass, c.seeded};
}

double DriftTracker::distance_to(const Cluster& c,
                                 std::span<const std::int32_t> u) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < k_; ++i) {
    const double d = static_cast<double>(u[i]) - c.mean[i];
    acc += d * d;
  }
  return std::sqrt(acc) * inv_norm_;
}

double DriftTracker::centroid_distance(const Cluster& a,
                                       const Cluster& b) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < k_; ++i) {
    const double d = a.mean[i] - b.mean[i];
    acc += d * d;
  }
  return std::sqrt(acc) * inv_norm_;
}

void DriftTracker::welford_update(Cluster& c,
                                  std::span<const std::int32_t> u) {
  c.mass += 1.0;
  for (std::size_t i = 0; i < k_; ++i) {
    const double x = static_cast<double>(u[i]);
    const double delta = x - c.mean[i];
    c.mean[i] += delta / c.mass;
    c.m2[i] += delta * (x - c.mean[i]);
  }
}

void DriftTracker::merge_pass(std::size_t touched) {
  // Only the cluster that just moved (or was founded) can have drifted
  // into another's merge radius, so one scan against it suffices. The
  // survivor is the lower index (stable for seeded clusters, which always
  // precede discovered ones founded later); a seeded survivor absorbs the
  // mass but the merged cluster's flag never promotes to seeded.
  for (std::size_t j = 0; j < clusters_.size(); ++j) {
    if (j == touched) continue;
    if (centroid_distance(clusters_[j], clusters_[touched]) >=
        cfg_.merge_threshold) {
      continue;
    }
    const std::size_t keep = j < touched ? j : touched;
    const std::size_t drop = j < touched ? touched : j;
    Cluster& a = clusters_[keep];
    Cluster& b = clusters_[drop];
    const double total = a.mass + b.mass;
    for (std::size_t i = 0; i < k_; ++i) {
      const double delta = b.mean[i] - a.mean[i];
      const double mean = a.mean[i] + delta * (b.mass / total);
      // Chan's pooled update: M2 = M2a + M2b + delta^2 * na*nb/n.
      a.m2[i] = a.m2[i] + b.m2[i] + delta * delta * (a.mass * b.mass / total);
      a.mean[i] = mean;
    }
    a.mass = total;
    a.seeded = a.seeded || b.seeded;
    recycle(drop);
    ++merges_;
    return;  // at most one merge per beat keeps the scan O(budget)
  }
}

void DriftTracker::push_window(bool normal, bool novel) {
  if (window_fill_ == window_.size()) {
    const std::uint8_t old = window_[window_head_];
    window_normals_ -= old & 1u;
    window_novel_ -= (old >> 1) & 1u;
  } else {
    ++window_fill_;
  }
  const std::uint8_t entry =
      static_cast<std::uint8_t>((normal ? 1u : 0u) | (novel ? 2u : 0u));
  window_[window_head_] = entry;
  window_normals_ += entry & 1u;
  window_novel_ += (entry >> 1) & 1u;
  window_head_ = (window_head_ + 1) % window_.size();
}

double DriftTracker::score() const {
  // Novel normals over normal-classified beats in the window. The
  // denominator is floored at half the window so a window holding only a
  // handful of normals (mid-VT, early stream) cannot alarm off ratio
  // noise — an episode must both classify normal and look novel for a
  // sustained run to score.
  const std::size_t floor_n = cfg_.window_beats / 2 > 0
                                  ? cfg_.window_beats / 2
                                  : std::size_t{1};
  const std::size_t denom =
      window_normals_ > floor_n ? window_normals_ : floor_n;
  return static_cast<double>(window_novel_) / static_cast<double>(denom);
}

DriftObservation DriftTracker::observe(std::span<const std::int32_t> u,
                                       bool normal_classified) {
  HBRP_REQUIRE(u.size() == k_, "DriftTracker::observe: wrong width");
  ++beats_;

  double best = std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const double d = distance_to(clusters_[i], u);
    if (d < best) {
      best = d;
      best_idx = i;
    }
  }
  // Novelty is judged against the PRISTINE training centroids, not the
  // live seeded clusters: the live ones adapt (Welford) so a sustained
  // shift would drag them toward itself and launder the very drift this
  // tracker exists to flag. seeds_ is the immutable reference frame, and
  // each seed measures in its own within-class sigma so a wide class
  // cannot stretch the unit for everyone.
  double best_seeded = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < seeds_.size(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < k_; ++j) {
      const double d = static_cast<double>(u[j]) - seeds_[i].mean[j];
      acc += d * d;
    }
    const double d = std::sqrt(acc) * seed_inv_norm_[i];
    if (d < best_seeded) best_seeded = d;
  }

  DriftObservation obs;
  obs.distance = best_seeded;
  obs.novel = normal_classified && best_seeded > cfg_.novelty_threshold;
  if (obs.novel) ++novel_beats_;

  if (best <= cfg_.assign_threshold) {
    welford_update(clusters_[best_idx], u);
    merge_pass(best_idx);
  } else {
    if (clusters_.size() == cfg_.max_clusters) {
      // Evict the least-mass unseeded cluster, lowest index on ties. At
      // least one exists: the budget strictly exceeds the seed count and
      // seeded clusters are never erased (merges keep the seeded slot).
      std::size_t victim = clusters_.size();
      double victim_mass = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < clusters_.size(); ++i) {
        if (clusters_[i].seeded) continue;
        if (clusters_[i].mass < victim_mass) {
          victim_mass = clusters_[i].mass;
          victim = i;
        }
      }
      HBRP_REQUIRE(victim < clusters_.size(),
                   "DriftTracker: no evictable cluster");
      recycle(victim);
      ++evictions_;
    }
    Cluster fresh = take_pooled();
    for (std::size_t i = 0; i < k_; ++i) {
      fresh.mean[i] = static_cast<double>(u[i]);
      fresh.m2[i] = 0.0;
    }
    fresh.mass = 1.0;
    fresh.seeded = false;
    clusters_.push_back(std::move(fresh));
    merge_pass(clusters_.size() - 1);
  }

  push_window(normal_classified, obs.novel);
  obs.score = score();
  const bool above =
      beats_ >= cfg_.min_beats && obs.score >= cfg_.alarm_threshold;
  if (above && !alarm_active_) ++alarms_;
  alarm_active_ = above;
  obs.alarm = alarm_active_;
  return obs;
}

void DriftTracker::reset_session() {
  // Seeded clusters can have merged into each other, so the live set may
  // hold fewer than seeds_.size() entries; park everything and rebuild.
  while (!clusters_.empty()) recycle(clusters_.size() - 1);
  for (const auto& s : seeds_) {
    Cluster c = take_pooled();
    c.mean = s.mean;
    c.m2 = s.m2;
    c.mass = s.mass;
    c.seeded = true;
    clusters_.push_back(std::move(c));
  }
  window_.assign(cfg_.window_beats, 0);
  window_head_ = 0;
  window_fill_ = 0;
  window_normals_ = 0;
  window_novel_ = 0;
  alarm_active_ = false;
}

std::uint64_t DriftTracker::state_digest() const {
  std::uint64_t h = 1469598103934665603ull;
  const std::uint64_t n = clusters_.size();
  fnv_mix(h, &n, sizeof n);
  for (const auto& c : clusters_) {
    fnv_mix(h, c.mean.data(), c.mean.size() * sizeof(double));
    fnv_mix(h, c.m2.data(), c.m2.size() * sizeof(double));
    fnv_mix(h, &c.mass, sizeof c.mass);
    const std::uint8_t s = c.seeded ? 1 : 0;
    fnv_mix(h, &s, sizeof s);
  }
  fnv_mix(h, &beats_, sizeof beats_);
  fnv_mix(h, &novel_beats_, sizeof novel_beats_);
  fnv_mix(h, &alarms_, sizeof alarms_);
  fnv_mix(h, &evictions_, sizeof evictions_);
  fnv_mix(h, &merges_, sizeof merges_);
  fnv_mix(h, &window_normals_, sizeof window_normals_);
  fnv_mix(h, &window_novel_, sizeof window_novel_);
  return h;
}

}  // namespace hbrp::drift
