// drift::DriftTracker — online morphology clustering in RP space.
//
// The projection stage already reduces every beat to k (8–32) integer
// coefficients, and the random matrix preserves morphology geometry there
// (Johnson–Lindenstrauss is the paper's whole premise). That makes online
// centroid maintenance in the projected space nearly free — a handful of
// multiply-accumulates per beat — and it answers the question the N/V/L
// classifier cannot: "this patient's beats stopped looking like anything
// we trained on."
//
// Mechanics, per observe(u):
//
//   1. Nearest-centroid scan over a bounded set of clusters. Each cluster
//      keeps a Welford running mean/M2/mass per coefficient. Distances are
//      Euclidean in RP space, normalized by the training-set within-class
//      RMS sigma (carried in TrainingCentroids::scale) and by sqrt(k), so
//      thresholds are in "training sigmas" regardless of k or the integer
//      projection's dynamic range.
//   2. The beat joins the nearest cluster when within assign_threshold
//      (Welford update), otherwise it founds a new cluster. At the budget,
//      the least-mass *unseeded* cluster is evicted first (lowest index on
//      ties); clusters seeded from training centroids are never evicted,
//      so the reference frame cannot be squeezed out by a long anomaly.
//   3. After an update/founding, clusters whose centroids drifted within
//      merge_threshold of each other are merged (deterministic lowest-
//      index-first scan, moment-preserving pooled Welford combine).
//   4. Novelty: a beat the caller marked normal-classified is novel when
//      its distance to the nearest *pristine* training centroid (the
//      immutable seed export, not the live adapting copy) exceeds
//      novelty_threshold — neither discovered clusters absorbing repeats
//      of a novel shape nor a seeded cluster drifting toward it can
//      launder it into normality. That distance is normalized by the
//      nearest centroid's own within-class sigma (falling back to the
//      global scale when a seed carries none), so a wide class like V
//      does not make every far beat look novel. Beats classified
//      pathological are never novel: they already escalate through the
//      classifier path, and counting them would re-alarm on VT or pacing
//      the fleet has known about for years — drift is specifically the
//      *silent* failure mode where the classifier keeps saying "normal"
//      about shapes it was never trained on.
//   5. Score: over a ring of the last window_beats beats, the fraction of
//      normal-classified beats that were novel, with the denominator
//      floored at window_beats/2 so a window holding only a handful of
//      normals (e.g. mid-VT) cannot alarm off ratio noise. The alarm
//      latches while the score sits at/above alarm_threshold once
//      min_beats have been seen; rising edges are counted so telemetry
//      can rate alarms.
//
// Everything is preallocated in the constructor; observe() never
// allocates. All arithmetic is double with a fixed evaluation order, so a
// given observation sequence produces bit-identical tracker state on any
// host/thread layout — the service layer leans on this for its
// thread/shard-count identity gate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hbrp::drift {

/// Per-class training centroids exported at model-build time (see
/// core::compute_training_centroids). `scale` is the within-class RMS
/// sigma of the training projections — the unit all tracker thresholds
/// are expressed in.
struct TrainingCentroids {
  struct Centroid {
    std::vector<double> mean;  ///< k coefficients
    double mass = 0.0;         ///< training beats behind this centroid
    /// Within-class RMS sigma of this class's training projections; the
    /// novelty distance to this centroid is expressed in these units.
    /// 0 means "not exported" — the tracker falls back to the global
    /// `scale` (hand-built centroids in tests rely on this).
    double sigma = 0.0;
  };

  std::size_t coefficients = 0;
  double scale = 1.0;
  std::vector<Centroid> centroids;
};

struct DriftConfig {
  /// Total cluster budget, including the training-seeded ones.
  std::size_t max_clusters = 16;
  /// Join the nearest cluster when within this many training sigmas.
  /// (The global RMS scale is dominated by the widest coefficients, so
  /// in-distribution beats sit well below 1.0 — typically 0.2–0.5 —
  /// which is why these defaults look small; see bench_drift for the
  /// measured clean/shift distance distributions backing them.)
  double assign_threshold = 0.5;
  /// A normal-classified beat further than this (in the nearest seed's
  /// own within-class sigmas) from every *pristine* training centroid is
  /// novel. Clean streams sit around 0.8–1.1 per-class sigmas and the
  /// tightest confounder (electrode-drop recovery beats) tops out near
  /// 1.3, so the default sits right at the top of that band — see
  /// bench_drift's false-alarm sweep for the measured margins.
  double novelty_threshold = 1.3;
  /// Two centroids closer than this are merged after an update.
  double merge_threshold = 0.25;
  /// Ring-buffer length for the windowed drift score.
  std::size_t window_beats = 48;
  /// Alarm latches while (novel normals in window) /
  /// max(normals in window, window_beats/2) >= this.
  double alarm_threshold = 0.5;
  /// No alarm before this many beats have been observed (the window must
  /// carry real history before its fraction means anything).
  std::size_t min_beats = 32;
};

/// Read-only view of one live cluster (tests, debugging, telemetry).
struct ClusterInfo {
  std::span<const double> mean;
  std::span<const double> m2;  ///< Welford sum of squared deviations
  double mass = 0.0;
  bool seeded = false;
};

/// What observe() tells the caller about one beat.
struct DriftObservation {
  /// Distance to the nearest pristine training centroid, in that
  /// centroid's own within-class sigmas.
  double distance = 0.0;
  double score = 0.0;  ///< windowed novel-normal ratio after this beat
  bool novel = false;  ///< always false for pathological-classified beats
  bool alarm = false;  ///< alarm state after this beat
};

class DriftTracker {
 public:
  /// Seeds one cluster per training centroid. Requires at least one
  /// centroid, coefficients > 0, and max_clusters strictly greater than
  /// the seed count (there must be room to discover something).
  DriftTracker(const TrainingCentroids& seed, DriftConfig cfg = {});

  /// Observe one classified beat's integer projection (u.size() must be
  /// the seeded coefficient count). `normal_classified` is whether the
  /// classifier called the beat normal — only those can be novel (see the
  /// header comment); pathological beats still update the cluster map and
  /// the score window's denominator bookkeeping. Never allocates.
  DriftObservation observe(std::span<const std::int32_t> u,
                           bool normal_classified = true);

  /// Drops discovered clusters and the score window; training-seeded
  /// clusters revert to their seed moments. Counters are preserved.
  void reset_session();

  std::size_t coefficients() const { return k_; }
  std::size_t cluster_count() const { return clusters_.size(); }
  ClusterInfo cluster(std::size_t i) const;
  std::uint64_t beats() const { return beats_; }
  std::uint64_t novel_beats() const { return novel_beats_; }
  std::uint64_t alarms() const { return alarms_; }
  bool alarm_active() const { return alarm_active_; }
  double score() const;
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t merges() const { return merges_; }

  /// FNV-1a over the exact bit patterns of every cluster moment plus the
  /// counters — two trackers that saw the same observation sequence have
  /// equal digests, and any arithmetic divergence changes it.
  std::uint64_t state_digest() const;

 private:
  struct Cluster {
    std::vector<double> mean;
    std::vector<double> m2;
    double mass = 0.0;
    bool seeded = false;
  };

  double distance_to(const Cluster& c,
                     std::span<const std::int32_t> u) const;
  double centroid_distance(const Cluster& a, const Cluster& b) const;
  void welford_update(Cluster& c, std::span<const std::int32_t> u);
  void merge_pass(std::size_t touched);
  void push_window(bool normal, bool novel);
  Cluster take_pooled();
  void recycle(std::size_t idx);

  DriftConfig cfg_;
  std::size_t k_ = 0;
  double inv_norm_ = 1.0;  ///< 1 / (scale * sqrt(k)), clustering distances
  /// Per-seed 1 / (sigma * sqrt(k)) for the novelty distance (falls back
  /// to inv_norm_ when the export carried no sigma).
  std::vector<double> seed_inv_norm_;
  std::vector<Cluster> clusters_;
  std::vector<Cluster> seeds_;  ///< pristine copies for reset_session
  std::vector<Cluster> pool_;   ///< spare clusters with k-sized buffers
  /// Ring buffer: bit 0 = normal-classified, bit 1 = novel.
  std::vector<std::uint8_t> window_;
  std::size_t window_head_ = 0;
  std::size_t window_fill_ = 0;
  std::size_t window_normals_ = 0;
  std::size_t window_novel_ = 0;
  std::uint64_t beats_ = 0;
  std::uint64_t novel_beats_ = 0;
  std::uint64_t alarms_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t merges_ = 0;
  bool alarm_active_ = false;
};

}  // namespace hbrp::drift
