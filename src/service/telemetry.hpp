// Lock-free telemetry for the fleet service layer.
//
// Every counter a production collector wants from a multi-patient streaming
// deployment, with the constraint that recording must never serialize the
// hot path: all state is relaxed std::atomic — per-session counters are
// written only by the pump shard that owns the session (so they are
// uncontended in steady state) and read by snapshot_json() from any thread
// without stopping the engine. Latencies go into a fixed power-of-two
// bucket histogram (no allocation, no locks) from which p50/p99 are read
// as bucket upper edges — exact enough for fleet dashboards, O(1) to
// record, and safely concurrent.
//
// Snapshots are emitted as JSON (see DESIGN.md §9 for the schema) so a
// host-side collector can scrape the engine without linking against it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace hbrp::service {

/// Relaxed-atomic running maximum (queue-depth high-water marks).
class AtomicMax {
 public:
  void note(std::uint64_t v) {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> max_{0};
};

/// Fixed-bucket latency histogram: bucket 0 holds [0, 1) us, bucket i >= 1
/// holds [2^(i-1), 2^i) us, the last bucket saturates (~33 s). Quantiles
/// are reported as the upper edge of the bucket containing the requested
/// rank, so they are conservative (never under-report latency).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 26;

  void record_us(double us);
  std::uint64_t count() const {
    return total_.load(std::memory_order_relaxed);
  }
  /// Upper bucket edge (us) at quantile q in (0, 1]; 0 when empty.
  double quantile_us(double q) const;
  double mean_us() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_us_{0};
};

/// Per-session counters. Ingest-side fields are updated under the session's
/// queue lock (offer path); processing-side fields are written only by the
/// pump shard currently servicing the session.
struct SessionTelemetry {
  std::atomic<std::uint64_t> samples_offered{0};
  std::atomic<std::uint64_t> samples_accepted{0};
  std::atomic<std::uint64_t> samples_deferred{0};  ///< Block: retry later
  std::atomic<std::uint64_t> samples_rejected{0};  ///< Reject/admission loss
  std::atomic<std::uint64_t> samples_evicted{0};   ///< DropOldest loss
  std::atomic<std::uint64_t> samples_processed{0};
  std::atomic<std::uint64_t> beats_out{0};
  std::atomic<std::uint64_t> pathological_beats{0};
  std::atomic<std::uint64_t> suspect_beats{0};
  /// Mirrored from core::MonitorStats after each pump round.
  std::atomic<std::uint64_t> sqi_degradations{0};
  std::atomic<std::uint64_t> sqi_recoveries{0};
  std::atomic<std::uint64_t> nonfinite_rejected{0};
  /// Mirrored from the session's drift::DriftTracker after each pump
  /// round; all zero when drift tracking is disabled.
  std::atomic<std::uint64_t> drift_beats{0};
  std::atomic<std::uint64_t> drift_novel_beats{0};
  std::atomic<std::uint64_t> drift_alarms{0};       ///< rising edges
  std::atomic<std::uint64_t> drift_alarm_active{0};  ///< 0/1 latch
  std::atomic<std::uint64_t> drift_clusters{0};
  std::atomic<std::uint64_t> drift_score_ppm{0};  ///< windowed score * 1e6
  /// Version of the SessionModel currently classifying this session and
  /// the number of hot-swaps applied so far (schema v4; written by the
  /// owning pump thread when a staged swap lands at a beat boundary).
  std::atomic<std::uint64_t> model_version{0};
  std::atomic<std::uint64_t> swap_count{0};
  AtomicMax queue_high_water;
  LatencyHistogram latency;  ///< sample-ingest to result-delivery, per beat

  /// Fraction of delivered beats flagged pathological (V/L/Unknown).
  double pathological_rate() const;
  /// One JSON object (no trailing newline); `id` and the live queue depth
  /// are supplied by the engine.
  std::string json(std::uint64_t id, std::uint64_t queue_depth) const;
};

/// Fleet-level counters (admission control and pump activity).
struct FleetTelemetry {
  std::atomic<std::uint64_t> sessions_opened{0};
  std::atomic<std::uint64_t> sessions_closed{0};
  std::atomic<std::uint64_t> sessions_rejected{0};  ///< admission: max_sessions
  std::atomic<std::uint64_t> offers_rejected{0};    ///< admission: queue bound
  std::atomic<std::uint64_t> pumps{0};        ///< whole-fleet pump() rounds
  std::atomic<std::uint64_t> shard_pumps{0};  ///< per-shard pump bodies run
  std::atomic<std::uint64_t> batches{0};        ///< non-empty BeatBatch runs
  std::atomic<std::uint64_t> batched_beats{0};  ///< windows classified in batch
  std::atomic<std::uint64_t> beats_out{0};
  /// Cumulative wall time spent in each pump phase, summed over shard
  /// bodies (so with S shards pumping concurrently the totals grow S times
  /// faster than wall clock — they measure work, not elapsed time). The
  /// drain/classify phases are the parallel halves of a shard body; the
  /// deliver phase is the per-shard serial half whose fraction decides how
  /// far the engine can scale.
  std::atomic<std::uint64_t> drain_ns{0};
  std::atomic<std::uint64_t> classify_ns{0};
  std::atomic<std::uint64_t> deliver_ns{0};
  /// Model-lifecycle rollup: swaps staged (by pushes/rollbacks) and swaps
  /// actually applied at a beat boundary (schema v4).
  std::atomic<std::uint64_t> swaps_staged{0};
  std::atomic<std::uint64_t> swaps_applied{0};
  /// Fleet-wide beat latency (sample-ingest to result-delivery), the union
  /// of every session's per-session histogram.
  LatencyHistogram latency;

  /// The drift arguments are the fleet-level novel-morphology rollup,
  /// aggregated over live sessions by the engine at snapshot time (they
  /// are per-session tracker state, not fleet counters).
  std::string json(std::uint64_t sessions_open, std::uint64_t queued_samples,
                   std::uint64_t drift_alarm_sessions = 0,
                   std::uint64_t drift_novel_beats = 0) const;
};

/// Version stamp for every telemetry/stats JSON snapshot this layer (and
/// the gateway) emits. Bump when fields change shape or meaning — readers
/// warn-skip keys they do not know, but use this to detect a format they
/// should not silently reinterpret. Version 2 added the drift_* fields;
/// version 3 added the pump phase timers, the per-shard rollup array and
/// the fleet-wide beat-latency histogram; version 4 added the model
/// lifecycle fields (per-session model_version/swap_count, fleet
/// swaps_staged/swaps_applied, gateway bundle-push counters).
inline constexpr std::uint64_t kTelemetrySchemaVersion = 4;

}  // namespace hbrp::service
