// FleetEngine: the host-side multi-session streaming service.
//
// The paper's deployment story is a fleet of WBSN nodes, each running the
// embedded classifier and shipping beats to a collector. This engine is the
// collector's ingest path: it multiplexes N concurrent patient sessions —
// each an independent fault-tolerant core::StreamingBeatMonitor with its own
// SQI/degradation state — over a sharded core::Executor worker pool.
//
// One pump() round is a deterministic three-phase schedule:
//   1. shard fan-out (parallel): every session is assigned to exactly one
//      shard; the shard drains up to the session's rate cap from its ingest
//      queue, runs the monitor in deferred-classification mode, and appends
//      every finalized beat window to the shard's core::BeatBatch — the
//      cross-session batch that is this layer's throughput headline;
//   2. batch classification (parallel, same fan-out): each shard classifies
//      its batch in one embedded::classify_batch sweep with reusable
//      per-shard scratch — zero per-beat allocation in steady state;
//   3. in-order delivery (serial): sessions are visited in id order and each
//      delivers its pending beats to its result sink with a dense,
//      strictly increasing per-session sequence number.
//
// Determinism: a session's stream is consumed identically regardless of the
// shard/thread count (the rate cap and queue state are caller-driven, and
// each beat's classification depends only on its own window), so per-session
// result sequences are bit-identical for any threads/shards setting —
// bench_fleet gates on exactly this.
//
// Admission control: open_session() refuses beyond max_sessions; offer()
// refuses when the fleet-wide queued-sample gauge would exceed
// max_queued_samples (a soft bound under concurrent producers); within a
// session the bounded queue applies its BackpressurePolicy (see
// session.hpp). Telemetry for all of it is lock-free (telemetry.hpp) and
// snapshot-able as JSON while the engine runs.
//
// Threading contract: offer() is safe from any number of producer threads
// concurrently with one pump()/drain() driver; open/close are serialized
// against both. Result sinks run on the pump (or close) thread and must not
// call back into the engine.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/executor.hpp"
#include "service/session.hpp"
#include "service/telemetry.hpp"

namespace hbrp::service {

struct FleetConfig {
  /// Executor threads (0 = hardware concurrency, 1 = fully serial).
  std::size_t threads = 1;
  /// Session shards per pump round (0 = one per executor thread).
  std::size_t shards = 0;
  /// Admission: maximum concurrently open sessions.
  std::size_t max_sessions = 64;
  /// Admission: fleet-wide bound on queued samples across all sessions.
  std::size_t max_queued_samples = 1u << 22;
  /// Per-session defaults for open_session() (queue bound, backpressure
  /// policy, rate cap, monitor geometry).
  SessionConfig session;
};

class FleetEngine {
 public:
  explicit FleetEngine(embedded::EmbeddedClassifier classifier,
                       FleetConfig cfg = {});
  /// Closes every remaining session WITHOUT invoking result sinks (their
  /// captures may already be dead). Close explicitly to get the tail beats.
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Admits a new session with the fleet-default SessionConfig; nullopt
  /// when the fleet is at max_sessions.
  std::optional<SessionId> open_session(ResultSink sink);
  std::optional<SessionId> open_session(ResultSink sink, SessionConfig cfg);

  /// Flushes the session's remaining stream through the classifier,
  /// delivers the tail in order, and frees the slot. False if unknown.
  bool close_session(SessionId id);

  /// Enqueues raw samples for `id`, applying fleet admission control and
  /// the session's backpressure policy. The double overload is the
  /// untrusted front-end boundary (non-finite samples survive the queue
  /// and are sanitized by the monitor); the integer overload enqueues
  /// directly, with no intermediate double buffer. Safe from any thread.
  OfferOutcome offer(SessionId id, std::span<const double> samples);
  OfferOutcome offer(SessionId id, std::span<const dsp::Sample> samples);

  /// Runs one scheduling round (see file header); returns beats delivered.
  std::size_t pump();

  /// Pumps until every ingest queue is empty; returns beats delivered.
  /// Deferred (Block-policy) samples live on the producer side and are not
  /// waited for.
  std::size_t drain();

  std::size_t session_count() const;
  std::size_t queued_samples() const {
    return queued_samples_.load(std::memory_order_relaxed);
  }
  const FleetTelemetry& telemetry() const { return fleet_; }
  /// Live per-session counters; nullptr if unknown. The pointer is valid
  /// until the session is closed.
  const SessionTelemetry* session_telemetry(SessionId id) const;
  /// The session's drift tracker (nullptr when unknown or tracking is
  /// off). Safe to *read* only while no pump()/drain()/close is running —
  /// it is live pump-thread state, unlike the mirrored telemetry.
  const drift::DriftTracker* session_drift(SessionId id) const;
  /// Full snapshot: {"fleet": {...}, "sessions": [{...}, ...]}.
  std::string telemetry_json() const;

  const core::Executor& executor() const { return executor_; }
  std::size_t shard_count() const { return shards_.size(); }

 private:
  /// Shared body of the two offer() overloads (defined in fleet.cpp).
  template <typename T>
  OfferOutcome offer_impl(SessionId id, std::span<const T> samples);

  struct Shard {
    explicit Shard(std::size_t window_length) : batch(window_length) {}
    core::BeatBatch batch;
    std::vector<ecg::BeatClass> classes;
    embedded::ClassifyScratch scratch;
    std::vector<Session*> sessions;  // this round's assignment
  };

  embedded::EmbeddedClassifier classifier_;
  FleetConfig cfg_;
  core::Executor executor_;
  std::vector<Shard> shards_;

  mutable std::shared_mutex registry_mutex_;
  std::map<SessionId, std::unique_ptr<Session>> sessions_;  // id order
  SessionId next_id_ = 1;

  std::mutex pump_mutex_;  // one pump round at a time
  std::atomic<std::uint64_t> queued_samples_{0};
  FleetTelemetry fleet_;
};

}  // namespace hbrp::service
