// FleetEngine: the host-side multi-session streaming service.
//
// The paper's deployment story is a fleet of WBSN nodes, each running the
// embedded classifier and shipping beats to a collector. This engine is the
// collector's ingest path: it multiplexes N concurrent patient sessions —
// each an independent fault-tolerant core::StreamingBeatMonitor with its own
// SQI/degradation state — over a sharded core::Executor worker pool.
//
// Sessions have *stable shard affinity*: open_session() pins each session
// to one shard (round-robin by default, or by explicit hint — the gateway
// pins a connection's session to its owning reactor's shard) and it never
// migrates. One shard pump body is a deterministic three-phase schedule:
//   1. drain + window: the shard drains up to each member session's rate
//      cap from its ingest queue, runs the monitor in
//      deferred-classification mode, and appends every finalized beat
//      window to the shard's core::BeatBatch — the cross-session batch
//      that is this layer's throughput headline;
//   2. batch classification: the shard classifies its batch in one
//      embedded::classify_batch sweep with reusable per-shard scratch —
//      zero per-beat allocation in steady state;
//   3. in-order delivery (serial *per shard*, not globally): the shard's
//      sessions are visited in id order and each delivers its pending
//      beats to its result sink with a dense, strictly increasing
//      per-session sequence number. Shards never wait on each other's
//      delivery, which is what lets N reactor threads pump N shards
//      without serializing.
//
// pump() runs every shard body through the executor (one whole-fleet
// round); pump_shard() runs exactly one shard body on the calling thread —
// the multi-reactor gateway's path, where reactor r owns shard r. Distinct
// shards may be pumped concurrently; a per-shard mutex serializes
// same-shard pumps.
//
// Determinism: a session's stream is consumed identically regardless of the
// shard/thread/reactor count (the rate cap and queue state are
// caller-driven, each beat's classification depends only on its own window,
// and drift observation order is per-session), so per-session result
// sequences are bit-identical for any threads/shards setting — bench_fleet
// gates on exactly this.
//
// Admission control: open_session() refuses beyond max_sessions; offer()
// refuses when the fleet-wide queued-sample gauge would exceed
// max_queued_samples (a soft bound under concurrent producers); within a
// session the bounded queue applies its BackpressurePolicy (see
// session.hpp). Telemetry for all of it is lock-free (telemetry.hpp) and
// snapshot-able as JSON while the engine runs.
//
// Threading contract: offer() is safe from any number of producer threads
// concurrently with pump()/pump_shard()/drain() drivers; open/close are
// serialized against both. A session's result sink runs on whichever thread
// pumps (or closes) that session's shard — serialized per session, but
// sinks of sessions on *different* shards may run concurrently, so a sink
// shared across sessions must synchronize its own state. Sinks must not
// call back into the engine.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/executor.hpp"
#include "service/session.hpp"
#include "service/telemetry.hpp"

namespace hbrp::service {

struct FleetConfig {
  /// Executor threads (0 = hardware concurrency, 1 = fully serial).
  std::size_t threads = 1;
  /// Session shards per pump round (0 = one per executor thread).
  std::size_t shards = 0;
  /// Admission: maximum concurrently open sessions.
  std::size_t max_sessions = 64;
  /// Admission: fleet-wide bound on queued samples across all sessions.
  std::size_t max_queued_samples = 1u << 22;
  /// Per-session defaults for open_session() (queue bound, backpressure
  /// policy, rate cap, monitor geometry).
  SessionConfig session;
  /// Version stamped on the engine's construction-time classifier (the
  /// default SessionModel every session starts on unless its SessionConfig
  /// names another). Hot-swapped bundles must carry a newer version.
  std::uint64_t initial_model_version = 1;
};

class FleetEngine {
 public:
  explicit FleetEngine(embedded::EmbeddedClassifier classifier,
                       FleetConfig cfg = {});
  /// Closes every remaining session WITHOUT invoking result sinks (their
  /// captures may already be dead). Close explicitly to get the tail beats.
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Admits a new session with the fleet-default SessionConfig; nullopt
  /// when the fleet is at max_sessions. Shard affinity is round-robin
  /// unless a hint pins it (hint is taken modulo shard_count()).
  std::optional<SessionId> open_session(ResultSink sink);
  std::optional<SessionId> open_session(ResultSink sink, SessionConfig cfg);
  std::optional<SessionId> open_session(ResultSink sink, SessionConfig cfg,
                                        std::size_t shard_hint);

  /// Flushes the session's remaining stream through the classifier,
  /// delivers the tail in order, and frees the slot. False if unknown.
  bool close_session(SessionId id);

  /// Enqueues raw samples for `id`, applying fleet admission control and
  /// the session's backpressure policy. The double overload is the
  /// untrusted front-end boundary (non-finite samples survive the queue
  /// and are sanitized by the monitor); the integer overload enqueues
  /// directly, with no intermediate double buffer. Safe from any thread.
  OfferOutcome offer(SessionId id, std::span<const double> samples);
  OfferOutcome offer(SessionId id, std::span<const dsp::Sample> samples);

  /// Runs one whole-fleet scheduling round — every shard body, through the
  /// executor (see file header); returns beats delivered.
  std::size_t pump();

  /// Runs one shard's pump body on the calling thread; returns beats
  /// delivered. Safe to call concurrently for *distinct* shards (the
  /// multi-reactor gateway pumps shard r from reactor thread r); same-shard
  /// calls serialize on the shard mutex. The shard's sinks run on the
  /// calling thread.
  std::size_t pump_shard(std::size_t shard);

  /// Pumps until every ingest queue is empty; returns beats delivered.
  /// Deferred (Block-policy) samples live on the producer side and are not
  /// waited for.
  std::size_t drain();

  /// The engine's construction-time classifier wrapped as a versioned
  /// SessionModel (version = FleetConfig::initial_model_version, no
  /// bundled centroids — sessions fall back to cfg.drift_centroids).
  const std::shared_ptr<const SessionModel>& default_model() const {
    return default_model_;
  }

  // --- model hot-swap ------------------------------------------------------
  // Staging is thread-safe and non-blocking for the hot path: the new
  // model lands in a per-session mutex-guarded slot and is *applied* by
  // the session's owning pump thread at the top of its next pump round (a
  // beat boundary — in-flight beats finish on the old bundle). The model
  // must match the engine's geometry (window length and coefficient
  // count); version ordering is the registry's concern, not the engine's.

  /// Stages `model` onto one session; false when the id is unknown.
  bool stage_swap(SessionId id, std::shared_ptr<const SessionModel> model);
  /// Stages `model` onto every open session; returns how many were staged.
  std::size_t stage_swap_all(std::shared_ptr<const SessionModel> model);
  /// Stages `model` onto every open session whose SessionConfig::ab_arm
  /// equals `arm`; returns how many were staged.
  std::size_t stage_swap_arm(std::uint8_t arm,
                             std::shared_ptr<const SessionModel> model);
  /// The session's current model (nullptr when unknown). Single-writer
  /// pump-thread state: call only from the thread that pumps the
  /// session's shard, or while no pump is running.
  const SessionModel* session_model(SessionId id) const;

  std::size_t session_count() const;
  std::size_t queued_samples() const {
    return queued_samples_.load(std::memory_order_relaxed);
  }
  /// Queued samples across the sessions pinned to one shard (a reactor
  /// uses this to tell whether its own shard still has pump work).
  std::size_t shard_queued_samples(std::size_t shard) const;
  const FleetTelemetry& telemetry() const { return fleet_; }
  /// Live per-session counters; nullptr if unknown. The pointer is valid
  /// until the session is closed.
  const SessionTelemetry* session_telemetry(SessionId id) const;
  /// The session's drift tracker (nullptr when unknown or tracking is
  /// off). Safe to *read* only while no pump()/drain()/close is running —
  /// it is live pump-thread state, unlike the mirrored telemetry.
  const drift::DriftTracker* session_drift(SessionId id) const;
  /// Full snapshot: {"fleet": {...}, "sessions": [{...}, ...]}.
  std::string telemetry_json() const;

  const core::Executor& executor() const { return executor_; }
  std::size_t shard_count() const { return shards_.size(); }

 private:
  /// Shared body of the two offer() overloads (defined in fleet.cpp).
  template <typename T>
  OfferOutcome offer_impl(SessionId id, std::span<const T> samples);

  struct Shard {
    explicit Shard(std::size_t window_length) : batch(window_length) {}
    /// Serializes pump bodies on this shard (distinct shards run freely).
    std::mutex mutex;
    /// Stable membership, id-sorted. Mutated only under the registry
    /// *unique* lock (open/close), read under the shared lock — so pump
    /// bodies and snapshots never race the list itself.
    std::vector<Session*> members;
    core::BeatBatch batch;
    std::vector<ecg::BeatClass> classes;
    embedded::ClassifyScratch scratch;
    /// Cumulative batch size after each member's phase-1 drain: member i
    /// owns batch slots [run_ends[i-1], run_ends[i]). Lets phase 2 classify
    /// contiguous same-model runs when sessions run different bundles.
    std::vector<std::size_t> run_ends;
    /// Row-major integer projections for the whole batch (row = slot),
    /// gathered across the per-run classify calls so phase 3's drift
    /// observation indexes by slot exactly as before.
    std::vector<std::int32_t> u_all;
    /// Queued-sample gauge across member sessions (same soft-bound
    /// semantics as the fleet-wide gauge); O(1) for a reactor asking
    /// whether its own shard still has pump work.
    std::atomic<std::uint64_t> queued{0};
    // Rollup counters: written under `mutex`, read lock-free by snapshots.
    std::atomic<std::uint64_t> pumps{0};
    std::atomic<std::uint64_t> beats{0};
    std::atomic<std::uint64_t> drain_ns{0};
    std::atomic<std::uint64_t> classify_ns{0};
    std::atomic<std::uint64_t> deliver_ns{0};
  };

  /// Shard body: phases 1-3 for one shard. Caller holds the registry
  /// shared lock; the shard mutex is taken inside.
  std::size_t pump_shard_body(std::size_t shard);
  /// Admission + placement under the registry unique lock (held by caller).
  std::optional<SessionId> open_session_locked(ResultSink sink,
                                               SessionConfig cfg,
                                               std::size_t shard);
  /// Geometry guard + per-session staging (caller holds any registry lock).
  void stage_on(Session& session, std::shared_ptr<const SessionModel> model);

  embedded::EmbeddedClassifier classifier_;
  FleetConfig cfg_;
  std::shared_ptr<const SessionModel> default_model_;
  core::Executor executor_;
  std::vector<std::unique_ptr<Shard>> shards_;  // non-movable: stable slots

  mutable std::shared_mutex registry_mutex_;
  std::map<SessionId, std::unique_ptr<Session>> sessions_;  // id order
  SessionId next_id_ = 1;
  std::size_t next_shard_ = 0;  // round-robin affinity cursor (unique lock)

  std::mutex pump_mutex_;  // one whole-fleet pump() round at a time
  std::atomic<std::uint64_t> queued_samples_{0};
  FleetTelemetry fleet_;
};

}  // namespace hbrp::service
