#include "service/session.hpp"

#include <algorithm>

#include "ecg/types.hpp"
#include "math/check.hpp"

namespace hbrp::service {

const char* to_string(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::Block: return "block";
    case BackpressurePolicy::DropOldest: return "drop-oldest";
    case BackpressurePolicy::Reject: return "reject";
  }
  return "?";
}

namespace {
// Checked before monitor_ dereferences the model in the initializer list.
std::shared_ptr<const SessionModel> require_model(
    std::shared_ptr<const SessionModel> m) {
  HBRP_REQUIRE(m != nullptr, "Session: model must be non-null");
  return m;
}
}  // namespace

Session::Session(SessionId id, std::shared_ptr<const SessionModel> model,
                 SessionConfig cfg, ResultSink sink)
    : id_(id),
      cfg_(std::move(cfg)),
      model_(require_model(std::move(model))),
      monitor_(model_->classifier, cfg_.monitor),
      sink_(std::move(sink)) {
  HBRP_REQUIRE(cfg_.queue_capacity >= 1, "Session: queue_capacity must be >= 1");
  HBRP_REQUIRE(cfg_.max_samples_per_pump >= 1,
               "Session: max_samples_per_pump must be >= 1");
  reseed_drift();
  telemetry_.model_version.store(model_->version, std::memory_order_relaxed);
}

void Session::reseed_drift() {
  const std::shared_ptr<const drift::TrainingCentroids>& seeds =
      model_->centroids != nullptr ? model_->centroids : cfg_.drift_centroids;
  if (seeds != nullptr) {
    drift_.emplace(*seeds, cfg_.drift);
    // The hook only fires on the monitor's own classifying path — the
    // close() tail here. Pump-round beats go through the PendingBeatSink
    // and are observed in deliver(), so no beat is counted twice.
    monitor_.set_drift_tracker(&*drift_);
  } else {
    monitor_.set_drift_tracker(nullptr);
    drift_.reset();
  }
}

void Session::apply_pending_swap() {
  if (!swap_pending_.load(std::memory_order_relaxed)) return;
  std::shared_ptr<const SessionModel> next;
  {
    const std::lock_guard<std::mutex> lock(swap_mutex_);
    next = std::move(pending_swap_);
    swap_pending_.store(false, std::memory_order_relaxed);
  }
  if (next == nullptr || next == model_) return;
  model_ = std::move(next);
  // Cold-path classifier copy into the monitor so the close()-tail and
  // suspect-escalation paths classify with the same bundle as the batch
  // phase; geometry equality was enforced when the swap was staged.
  monitor_.set_classifier(model_->classifier);
  // Fresh tracker, new seeds: the drift baseline is part of the bundle,
  // so alarms re-arm against the new centroids rather than comparing new
  // projections to the old model's geometry.
  reseed_drift();
  swap_sequence_ = next_sequence_;
  ++swap_count_;
  telemetry_.model_version.store(model_->version, std::memory_order_relaxed);
  telemetry_.swap_count.store(swap_count_, std::memory_order_relaxed);
  mirror_drift();
  if (fleet_telemetry_ != nullptr)
    fleet_telemetry_->swaps_applied.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Session::queued() const {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

template <typename T>
OfferOutcome Session::enqueue(std::span<const T> samples,
                              Clock::time_point now,
                              std::ptrdiff_t* queue_delta) {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  const std::size_t depth_before = queue_.size();
  OfferOutcome out;
  const std::size_t n = samples.size();
  telemetry_.samples_offered.fetch_add(n, std::memory_order_relaxed);

  std::size_t free = cfg_.queue_capacity - queue_.size();
  std::span<const T> accept = samples;
  switch (cfg_.backpressure) {
    case BackpressurePolicy::Block: {
      const std::size_t take = std::min(n, free);
      accept = samples.first(take);
      out.deferred = n - take;
      break;
    }
    case BackpressurePolicy::Reject: {
      const std::size_t take = std::min(n, free);
      accept = samples.first(take);
      out.rejected = n - take;
      break;
    }
    case BackpressurePolicy::DropOldest: {
      if (n > free) {
        const std::size_t evict =
            std::min(n - free, queue_.size());
        queue_.erase(queue_.begin(),
                     queue_.begin() + static_cast<std::ptrdiff_t>(evict));
        front_pos_ += evict;
        out.evicted = evict;
        while (!stamps_.empty() && stamps_.front().upto <= front_pos_)
          stamps_.pop_front();
        free = cfg_.queue_capacity - queue_.size();
        if (n > free) {
          // The offer alone exceeds the whole queue: the overflowing prefix
          // of the *incoming* samples is the oldest data, so it is evicted.
          accept = samples.last(free);
          out.evicted += n - free;
        }
      }
      break;
    }
  }

  out.accepted = accept.size();
  if (!accept.empty()) {
    queue_.insert(queue_.end(), accept.begin(), accept.end());
    ingested_ += accept.size();
    stamps_.push_back({ingested_, now});
  }

  telemetry_.samples_accepted.fetch_add(out.accepted,
                                        std::memory_order_relaxed);
  telemetry_.samples_deferred.fetch_add(out.deferred,
                                        std::memory_order_relaxed);
  telemetry_.samples_rejected.fetch_add(out.rejected,
                                        std::memory_order_relaxed);
  telemetry_.samples_evicted.fetch_add(out.evicted,
                                       std::memory_order_relaxed);
  telemetry_.queue_high_water.note(queue_.size());
  if (queue_delta != nullptr)
    *queue_delta = static_cast<std::ptrdiff_t>(queue_.size()) -
                   static_cast<std::ptrdiff_t>(depth_before);
  return out;
}

// The two producer-facing element types: the untrusted double front end and
// trusted integer-sample producers (no intermediate double copy).
template OfferOutcome Session::enqueue<double>(std::span<const double>,
                                               Clock::time_point,
                                               std::ptrdiff_t*);
template OfferOutcome Session::enqueue<dsp::Sample>(std::span<const dsp::Sample>,
                                                    Clock::time_point,
                                                    std::ptrdiff_t*);

std::size_t Session::begin_drain() {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  const std::size_t take = std::min(cfg_.max_samples_per_pump, queue_.size());
  drain_buf_.assign(queue_.begin(),
                    queue_.begin() + static_cast<std::ptrdiff_t>(take));
  queue_.erase(queue_.begin(),
               queue_.begin() + static_cast<std::ptrdiff_t>(take));
  drain_base_ = front_pos_;
  front_pos_ += take;
  drain_stamps_.clear();
  for (const Stamp& s : stamps_) {
    drain_stamps_.push_back(s);
    if (s.upto >= front_pos_) break;
  }
  while (!stamps_.empty() && stamps_.front().upto <= front_pos_)
    stamps_.pop_front();
  return take;
}

void Session::process_drained(core::BeatBatch& shard_batch) {
  std::size_t stamp_i = 0;
  Clock::time_point current_stamp{};
  if (!drain_stamps_.empty()) current_stamp = drain_stamps_.front().at;
  const core::PendingBeatSink sink = [&](const core::PendingBeat& pb) {
    Pending p;
    p.beat = pb.beat;
    p.needs_classification = pb.needs_classification;
    p.enqueued_at = current_stamp;
    if (pb.needs_classification) {
      p.slot = static_cast<std::uint32_t>(shard_batch.size());
      shard_batch.append(pb.window, ecg::BeatClass::Unknown);
    }
    pending_.push_back(p);
  };
  // Feed the drained samples in stamp-delimited blocks: every sample in a
  // block shares its enqueue stamp, so the monitor's block path (which
  // batches conditioning across the whole run) sees the same per-beat
  // stamps the old per-sample loop produced.
  std::size_t i = 0;
  while (i < drain_buf_.size()) {
    const std::uint64_t absolute = drain_base_ + i;
    while (stamp_i < drain_stamps_.size() &&
           drain_stamps_[stamp_i].upto <= absolute)
      ++stamp_i;
    std::size_t end = drain_buf_.size();
    if (stamp_i < drain_stamps_.size()) {
      current_stamp = drain_stamps_[stamp_i].at;
      const std::uint64_t upto = drain_stamps_[stamp_i].upto;
      if (upto - drain_base_ < end)
        end = static_cast<std::size_t>(upto - drain_base_);
    }
    monitor_.push_block(
        std::span<const double>(drain_buf_.data() + i, end - i), sink);
    i = end;
  }
  telemetry_.samples_processed.fetch_add(drain_buf_.size(),
                                         std::memory_order_relaxed);
  drain_buf_.clear();
}

std::size_t Session::deliver(std::span<const ecg::BeatClass> shard_classes,
                             std::span<const std::int32_t> shard_u,
                             std::size_t coefficients) {
  for (Pending& p : pending_) {
    if (p.needs_classification) {
      p.beat.predicted = shard_classes[p.slot];
      if (drift_.has_value()) {
        // The shard batch's projections are observed here, in the serial
        // delivery phase, so the tracker sees beats in per-session
        // sequence order regardless of how the parallel classify phase
        // was sharded. Suspect beats (needs_classification == false)
        // carry no projection and are skipped.
        drift_->observe(shard_u.subspan(p.slot * coefficients, coefficients),
                        !ecg::is_pathological(p.beat.predicted));
      }
    }
    deliver_one(p.beat, p.enqueued_at);
  }
  const std::size_t n = pending_.size();
  pending_.clear();
  mirror_monitor_stats();
  mirror_drift();
  return n;
}

void Session::deliver_one(const core::MonitorBeat& beat,
                          Clock::time_point enqueued_at) {
  SessionResult result;
  result.session = id_;
  result.sequence = next_sequence_++;
  result.model_version = model_->version;
  result.beat = beat;
  telemetry_.beats_out.fetch_add(1, std::memory_order_relaxed);
  if (ecg::is_pathological(beat.predicted))
    telemetry_.pathological_beats.fetch_add(1, std::memory_order_relaxed);
  const double us =
      std::chrono::duration<double, std::micro>(Clock::now() - enqueued_at)
          .count();
  telemetry_.latency.record_us(us);
  if (fleet_telemetry_ != nullptr) fleet_telemetry_->latency.record_us(us);
  if (sink_) sink_(result);
}

void Session::mirror_monitor_stats() {
  const core::MonitorStats& stats = monitor_.stats();
  telemetry_.suspect_beats.store(stats.suspect_beats,
                                 std::memory_order_relaxed);
  telemetry_.sqi_degradations.store(stats.degradations,
                                    std::memory_order_relaxed);
  telemetry_.sqi_recoveries.store(stats.recoveries,
                                  std::memory_order_relaxed);
  telemetry_.nonfinite_rejected.store(stats.rejected_nonfinite,
                                      std::memory_order_relaxed);
}

void Session::mirror_drift() {
  if (!drift_.has_value()) return;
  const drift::DriftTracker& t = *drift_;
  telemetry_.drift_beats.store(t.beats(), std::memory_order_relaxed);
  telemetry_.drift_novel_beats.store(t.novel_beats(),
                                     std::memory_order_relaxed);
  telemetry_.drift_alarms.store(t.alarms(), std::memory_order_relaxed);
  telemetry_.drift_alarm_active.store(t.alarm_active() ? 1 : 0,
                                      std::memory_order_relaxed);
  telemetry_.drift_clusters.store(t.cluster_count(),
                                  std::memory_order_relaxed);
  telemetry_.drift_score_ppm.store(
      static_cast<std::uint64_t>(t.score() * 1e6 + 0.5),
      std::memory_order_relaxed);
}

std::size_t Session::close() {
  // Close is a beat boundary too: a swap staged after the session's last
  // pump round still lands before the tail is flushed, so the tail's
  // verdicts carry the version the fleet believes is deployed.
  apply_pending_swap();
  std::size_t removed = 0;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    removed = queue_.size();
    drain_buf_.assign(queue_.begin(), queue_.end());
    queue_.clear();
    stamps_.clear();
    front_pos_ += removed;
  }
  // The close path classifies serially through the monitor's own sink —
  // the tail is tiny and there is no batch to share with other sessions.
  const Clock::time_point now = Clock::now();
  const core::BeatSink sink = [&](const core::MonitorBeat& b) {
    deliver_one(b, now);
  };
  monitor_.push_block(std::span<const double>(drain_buf_), sink);
  telemetry_.samples_processed.fetch_add(drain_buf_.size(),
                                         std::memory_order_relaxed);
  drain_buf_.clear();
  monitor_.flush(sink);
  mirror_monitor_stats();
  mirror_drift();
  return removed;
}

}  // namespace hbrp::service
