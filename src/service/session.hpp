// One patient stream inside the fleet engine.
//
// A Session owns everything that is per-patient: the fault-tolerant
// StreamingBeatMonitor (with its own SQI/degradation state), a bounded
// MPSC ingest queue of raw samples with an explicit backpressure policy,
// the monotonically sequenced result log, and the session's telemetry
// counters. Producers (radio threads, replay harnesses) call
// FleetEngine::offer() from any thread; the engine's pump() drains each
// session on exactly one shard per round, so all monitor state is
// single-writer and needs no lock — only the ingest queue itself is
// mutex-guarded, and only for the few microseconds of a bulk enqueue or
// dequeue.
//
// Backpressure policies when an offer does not fit the bounded queue:
//   Block      — accept the prefix that fits; the remainder is *deferred*
//                (returned un-consumed) so a lossless producer stalls its
//                stream and retries after the next pump. Nothing is lost.
//   DropOldest — evict the oldest queued samples to make room and accept
//                everything; the eviction count is telemetered. The splice
//                is exactly the DropSamples acquisition fault the monitor
//                is already hardened against (testing/fault_inject).
//   Reject     — tail-drop: accept the prefix that fits, permanently
//                discard the overflow (counted as rejected).
//
// Per-beat latency is measured end to end (sample enqueued -> result
// delivered): each offer is stamped with its arrival time and the stamp
// rides along until the beat it finalizes is handed to the result sink.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/batch.hpp"
#include "core/streaming.hpp"
#include "drift/tracker.hpp"
#include "service/telemetry.hpp"

namespace hbrp::service {

using SessionId = std::uint64_t;

/// A versioned, immutable deployment unit: the quantized classifier plus
/// the drift centroid seeds it was exported with, under one monotonic
/// version. Sessions hold these by shared_ptr so a whole ward references
/// one instance per version; the lifecycle registry (src/lifecycle) pins
/// and reclaims them by that same ref-count. Routing the centroids through
/// the model — instead of a separate SessionConfig field — is what keeps a
/// classifier and its drift seeds from ever skewing after a hot-swap.
struct SessionModel {
  std::uint64_t version = 0;
  embedded::EmbeddedClassifier classifier;
  /// Drift seeds exported alongside the classifier; null disables drift
  /// tracking for sessions running this model.
  std::shared_ptr<const drift::TrainingCentroids> centroids;
};

enum class BackpressurePolicy : std::uint8_t { Block, DropOldest, Reject };

const char* to_string(BackpressurePolicy policy);

struct SessionConfig {
  core::MonitorConfig monitor;
  /// Ingest queue bound, in samples (default ~45 s at 360 Hz).
  std::size_t queue_capacity = 1u << 14;
  BackpressurePolicy backpressure = BackpressurePolicy::Block;
  /// Per-session rate cap: at most this many queued samples are serviced
  /// per FleetEngine::pump() round, so one chatty node cannot starve the
  /// rest of its shard.
  std::size_t max_samples_per_pump = 1u << 13;
  /// Opt-in RP-space morphology drift tracking: when `drift_centroids` is
  /// set, the session owns a drift::DriftTracker seeded from it and
  /// observes every classified beat's projection — batch-classified beats
  /// during the serial delivery phase (so the observation order equals the
  /// delivery order and the tracker state is bit-identical for any
  /// thread/shard count), monitor-classified beats (the close() tail) via
  /// the monitor hook. Tracker state is mirrored into SessionTelemetry
  /// after every pump round. Shared (not copied) so a fleet of sessions
  /// references one centroid export. Deprecated in favour of routing the
  /// seeds through `model` (a SessionModel carries its own centroids, so
  /// classifier and seeds can never skew); still honoured when `model` is
  /// unset or carries no centroids of its own.
  std::shared_ptr<const drift::TrainingCentroids> drift_centroids;
  drift::DriftConfig drift;
  /// Versioned model this session starts on; when null the engine's
  /// default model (its construction-time classifier at version
  /// `FleetConfig::initial_model_version`) is used.
  std::shared_ptr<const SessionModel> model;
  /// A/B arm assignment (0 = incumbent arm). Set by the gateway at HELLO
  /// from the lifecycle AbSplit; FleetEngine::stage_swap_arm() targets
  /// sessions by this tag.
  std::uint8_t ab_arm = 0;
};

/// What happened to the `n` samples of one offer: accepted + deferred +
/// rejected == n, and `evicted` older samples were lost making room.
struct OfferOutcome {
  std::size_t accepted = 0;
  std::size_t deferred = 0;
  std::size_t evicted = 0;
  std::size_t rejected = 0;
};

/// One classified beat leaving the fleet engine. `sequence` is dense and
/// strictly increasing per session — the delivery order contract.
struct SessionResult {
  SessionId session = 0;
  std::uint64_t sequence = 0;
  /// Version of the SessionModel that classified this beat — the verdict's
  /// provenance tag (telemetry schema v4).
  std::uint64_t model_version = 0;
  core::MonitorBeat beat;
};

using ResultSink = std::function<void(const SessionResult&)>;

class Session {
 public:
  /// `model` must be non-null; its centroids (or, as a deprecated
  /// fallback when it has none, cfg.drift_centroids) seed the optional
  /// drift tracker.
  Session(SessionId id, std::shared_ptr<const SessionModel> model,
          SessionConfig cfg, ResultSink sink);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  SessionId id() const { return id_; }
  const SessionConfig& config() const { return cfg_; }
  const SessionTelemetry& telemetry() const { return telemetry_; }
  /// Current ingest queue depth (thread-safe).
  std::size_t queued() const;
  /// Results delivered so far (single-writer: pump/close thread).
  std::uint64_t delivered() const { return next_sequence_; }
  /// The model currently classifying this session's beats. Read it only
  /// between pump rounds (single-writer: the pump thread).
  const SessionModel& model() const { return *model_; }
  /// Applied hot-swaps so far (single-writer: the pump thread).
  std::uint64_t swap_count() const { return swap_count_; }
  /// The session's drift tracker, or nullptr when tracking is disabled.
  /// Read it only between pump rounds (single-writer: the pump thread).
  const drift::DriftTracker* drift_tracker() const {
    return drift_.has_value() ? &*drift_ : nullptr;
  }

 private:
  friend class FleetEngine;

  using Clock = std::chrono::steady_clock;

  /// A beat finalized during this pump round, awaiting classification
  /// and in-order delivery. `slot` indexes the owning shard's BeatBatch.
  struct Pending {
    core::MonitorBeat beat;
    std::uint32_t slot = 0;
    bool needs_classification = false;
    Clock::time_point enqueued_at;
  };

  /// Enqueues under the queue lock, applying the backpressure policy.
  /// `queue_delta` receives the net change in queue depth (accepted minus
  /// samples evicted *from the queue* — DropOldest may also count incoming
  /// samples as evicted, which never touch the queue), so the engine can
  /// maintain the fleet-wide gauge exactly. Templated over the element type
  /// (double for the untrusted front end, dsp::Sample for trusted integer
  /// producers) so neither path copies into a temporary buffer first;
  /// explicit instantiations live in session.cpp.
  template <typename T>
  OfferOutcome enqueue(std::span<const T> samples, Clock::time_point now,
                       std::ptrdiff_t* queue_delta);
  /// Moves up to max_samples_per_pump queued samples (and their arrival
  /// stamps) into the drain buffers; returns how many.
  std::size_t begin_drain();
  /// Feeds the drained samples through the monitor, appending windows that
  /// need classification to `shard_batch` and recording a Pending for every
  /// finalized beat. Called from the owning pump shard only.
  void process_drained(core::BeatBatch& shard_batch);
  /// Delivers this round's pending beats in order, patching predictions
  /// from `shard_classes` (the shard batch's classify_batch output) and —
  /// when drift tracking is on — observing each batch-classified beat's
  /// projection out of `shard_u` (the shard scratch's count x
  /// `coefficients` row-major integer coefficients, still valid in the
  /// serial phase; row index = Pending::slot). Returns the number of
  /// beats delivered.
  std::size_t deliver(std::span<const ecg::BeatClass> shard_classes,
                      std::span<const std::int32_t> shard_u,
                      std::size_t coefficients);
  /// Drains whatever is still queued through the classifying path, flushes
  /// the monitor tail and delivers everything; returns the number of
  /// queued samples consumed (for the fleet-wide gauge).
  std::size_t close();

  void deliver_one(const core::MonitorBeat& beat, Clock::time_point enq);
  void mirror_monitor_stats();
  void mirror_drift();
  /// (Re)seeds the drift tracker from the current model's centroids (or
  /// the deprecated cfg_.drift_centroids fallback) and re-attaches the
  /// monitor hook. Owning pump thread only.
  void reseed_drift();
  /// If a swap is staged, installs it: rebinds the monitor's classifier,
  /// re-seeds the drift tracker from the new bundle's centroids, and bumps
  /// model_version/swap_count telemetry. Called by the owning pump thread
  /// at the top of its pump round (and by close()), i.e. at a beat
  /// boundary — every beat delivered before the call carries the old
  /// version, every beat after it the new one.
  void apply_pending_swap();

  const SessionId id_;
  const SessionConfig cfg_;
  /// Current model; written only by the owning pump thread (apply), read
  /// by the same thread during classify/deliver.
  std::shared_ptr<const SessionModel> model_;
  std::optional<drift::DriftTracker> drift_;  // before monitor_: hook target
  core::StreamingBeatMonitor monitor_;
  ResultSink sink_;

  // Hot-swap staging: any thread may stage (mutex-guarded), only the
  // owning pump thread applies. The atomic flag is a cheap hint so the
  // pump round's fast path never takes the mutex.
  std::mutex swap_mutex_;
  std::shared_ptr<const SessionModel> pending_swap_;
  std::atomic<bool> swap_pending_{false};
  std::uint64_t swap_count_ = 0;
  /// Verdict sequence at which the last swap took effect (diagnostics).
  std::uint64_t swap_sequence_ = 0;
  SessionTelemetry telemetry_;
  /// Fleet-wide rollup (latency histogram); set by the engine at admission,
  /// null for a free-standing Session.
  FleetTelemetry* fleet_telemetry_ = nullptr;
  /// Stable shard affinity, assigned once at open_session() and never
  /// migrated, so the same shard (and under the gateway, the same reactor
  /// thread) services this session on every pump round.
  std::size_t shard_ = 0;

  // Ingest queue. `front_pos_` is the absolute stream index of queue_[0];
  // stamps_ maps absolute index ranges (everything up to `upto`) to the
  // offer arrival time, compressed to one entry per offer call.
  mutable std::mutex queue_mutex_;
  std::deque<double> queue_;
  struct Stamp {
    std::uint64_t upto = 0;
    Clock::time_point at;
  };
  std::deque<Stamp> stamps_;
  std::uint64_t ingested_ = 0;
  std::uint64_t front_pos_ = 0;

  // Drain buffers, touched only by the owning pump shard.
  std::vector<double> drain_buf_;
  std::vector<Stamp> drain_stamps_;
  std::uint64_t drain_base_ = 0;
  std::vector<Pending> pending_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace hbrp::service
