#include "service/telemetry.hpp"

#include <cmath>

namespace hbrp::service {

namespace {

void append_field(std::string& out, const char* key, std::uint64_t v,
                  bool first = false) {
  if (!first) out += ", ";
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(v);
}

void append_field(std::string& out, const char* key, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += ", \"";
  out += key;
  out += "\": ";
  out += buf;
}

}  // namespace

void LatencyHistogram::record_us(double us) {
  std::size_t idx = 0;
  if (us >= 1.0) {
    idx = 1 + static_cast<std::size_t>(std::floor(std::log2(us)));
    if (idx >= kBuckets) idx = kBuckets - 1;
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us > 0.0 ? static_cast<std::uint64_t>(us + 0.5) : 0,
                    std::memory_order_relaxed);
}

double LatencyHistogram::quantile_us(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = static_cast<std::uint64_t>(std::ceil(q * total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return std::ldexp(1.0, static_cast<int>(i));
  }
  return std::ldexp(1.0, static_cast<int>(kBuckets - 1));
}

double LatencyHistogram::mean_us() const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
         static_cast<double>(total);
}

double SessionTelemetry::pathological_rate() const {
  const std::uint64_t beats = beats_out.load(std::memory_order_relaxed);
  if (beats == 0) return 0.0;
  return static_cast<double>(
             pathological_beats.load(std::memory_order_relaxed)) /
         static_cast<double>(beats);
}

std::string SessionTelemetry::json(std::uint64_t id,
                                   std::uint64_t queue_depth) const {
  const auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  std::string out = "{";
  append_field(out, "schema_version", kTelemetrySchemaVersion,
               /*first=*/true);
  append_field(out, "id", id);
  append_field(out, "samples_offered", load(samples_offered));
  append_field(out, "samples_accepted", load(samples_accepted));
  append_field(out, "samples_deferred", load(samples_deferred));
  append_field(out, "samples_rejected", load(samples_rejected));
  append_field(out, "samples_evicted", load(samples_evicted));
  append_field(out, "samples_processed", load(samples_processed));
  append_field(out, "beats_out", load(beats_out));
  append_field(out, "pathological_beats", load(pathological_beats));
  append_field(out, "pathological_rate", pathological_rate());
  append_field(out, "suspect_beats", load(suspect_beats));
  append_field(out, "sqi_degradations", load(sqi_degradations));
  append_field(out, "sqi_recoveries", load(sqi_recoveries));
  append_field(out, "nonfinite_rejected", load(nonfinite_rejected));
  append_field(out, "drift_beats", load(drift_beats));
  append_field(out, "drift_novel_beats", load(drift_novel_beats));
  append_field(out, "drift_alarms", load(drift_alarms));
  append_field(out, "drift_alarm_active", load(drift_alarm_active));
  append_field(out, "drift_clusters", load(drift_clusters));
  append_field(out, "drift_score",
               static_cast<double>(load(drift_score_ppm)) / 1e6);
  append_field(out, "model_version", load(model_version));
  append_field(out, "swap_count", load(swap_count));
  append_field(out, "queue_depth", queue_depth);
  append_field(out, "queue_high_water", queue_high_water.value());
  append_field(out, "beat_latency_count", latency.count());
  append_field(out, "beat_latency_mean_us", latency.mean_us());
  append_field(out, "beat_latency_p50_us", latency.quantile_us(0.50));
  append_field(out, "beat_latency_p99_us", latency.quantile_us(0.99));
  out += "}";
  return out;
}

std::string FleetTelemetry::json(std::uint64_t sessions_open,
                                 std::uint64_t queued_samples,
                                 std::uint64_t drift_alarm_sessions,
                                 std::uint64_t drift_novel_beats) const {
  const auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  std::string out = "{";
  append_field(out, "schema_version", kTelemetrySchemaVersion,
               /*first=*/true);
  append_field(out, "sessions_open", sessions_open);
  append_field(out, "sessions_opened", load(sessions_opened));
  append_field(out, "sessions_closed", load(sessions_closed));
  append_field(out, "sessions_rejected", load(sessions_rejected));
  append_field(out, "offers_rejected", load(offers_rejected));
  append_field(out, "queued_samples", queued_samples);
  append_field(out, "pumps", load(pumps));
  append_field(out, "shard_pumps", load(shard_pumps));
  append_field(out, "batches", load(batches));
  append_field(out, "batched_beats", load(batched_beats));
  append_field(out, "beats_out", load(beats_out));
  append_field(out, "pump_drain_s", static_cast<double>(load(drain_ns)) / 1e9);
  append_field(out, "pump_classify_s",
               static_cast<double>(load(classify_ns)) / 1e9);
  append_field(out, "pump_deliver_s",
               static_cast<double>(load(deliver_ns)) / 1e9);
  append_field(out, "swaps_staged", load(swaps_staged));
  append_field(out, "swaps_applied", load(swaps_applied));
  append_field(out, "beat_latency_count", latency.count());
  append_field(out, "beat_latency_p50_us", latency.quantile_us(0.50));
  append_field(out, "beat_latency_p99_us", latency.quantile_us(0.99));
  append_field(out, "drift_alarm_sessions", drift_alarm_sessions);
  append_field(out, "drift_novel_beats", drift_novel_beats);
  out += "}";
  return out;
}

}  // namespace hbrp::service
