#include "service/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "math/check.hpp"

namespace hbrp::service {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::uint64_t ns_between(SteadyClock::time_point a, SteadyClock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

FleetEngine::FleetEngine(embedded::EmbeddedClassifier classifier,
                         FleetConfig cfg)
    : classifier_(std::move(classifier)),
      cfg_(std::move(cfg)),
      executor_(cfg_.threads) {
  HBRP_REQUIRE(cfg_.max_sessions >= 1, "FleetEngine: max_sessions must be >= 1");
  const std::size_t shards =
      std::max<std::size_t>(1, cfg_.shards != 0 ? cfg_.shards
                                                : executor_.threads());
  const std::size_t window = classifier_.projector().expected_window();
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s)
    shards_.push_back(std::make_unique<Shard>(window));
  // No bundled centroids on the default model: sessions opened against it
  // keep honouring SessionConfig::drift_centroids (the pre-lifecycle path)
  // unchanged. Bundle-routed centroids arrive only via SessionConfig::model
  // or a staged swap.
  default_model_ = std::make_shared<const SessionModel>(
      SessionModel{cfg_.initial_model_version, classifier_, nullptr});
}

FleetEngine::~FleetEngine() {
  const std::unique_lock<std::shared_mutex> lock(registry_mutex_);
  for (auto& [id, session] : sessions_) {
    // Sinks may capture state that outlives the engine only if the caller
    // closed the session explicitly; at destruction they must not fire.
    session->sink_ = nullptr;
    session->close();
    fleet_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
  }
  sessions_.clear();
  for (auto& shard : shards_) shard->members.clear();
}

std::optional<SessionId> FleetEngine::open_session(ResultSink sink) {
  return open_session(std::move(sink), cfg_.session);
}

std::optional<SessionId> FleetEngine::open_session(ResultSink sink,
                                                   SessionConfig cfg) {
  const std::unique_lock<std::shared_mutex> lock(registry_mutex_);
  const std::size_t shard = next_shard_;
  next_shard_ = (next_shard_ + 1) % shards_.size();
  return open_session_locked(std::move(sink), std::move(cfg), shard);
}

std::optional<SessionId> FleetEngine::open_session(ResultSink sink,
                                                   SessionConfig cfg,
                                                   std::size_t shard_hint) {
  const std::unique_lock<std::shared_mutex> lock(registry_mutex_);
  return open_session_locked(std::move(sink), std::move(cfg),
                             shard_hint % shards_.size());
}

std::optional<SessionId> FleetEngine::open_session_locked(ResultSink sink,
                                                          SessionConfig cfg,
                                                          std::size_t shard) {
  if (sessions_.size() >= cfg_.max_sessions) {
    fleet_.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const SessionId id = next_id_++;
  std::shared_ptr<const SessionModel> model =
      cfg.model != nullptr ? cfg.model : default_model_;
  HBRP_REQUIRE(model->classifier.projector().expected_window() ==
                       classifier_.projector().expected_window() &&
                   model->classifier.projector().coefficients() ==
                       classifier_.projector().coefficients(),
               "FleetEngine: session model geometry differs from the engine");
  auto session = std::make_unique<Session>(id, std::move(model),
                                           std::move(cfg), std::move(sink));
  session->fleet_telemetry_ = &fleet_;
  session->shard_ = shard;
  // Session ids are monotonic, so push_back keeps the member list id-sorted.
  shards_[shard]->members.push_back(session.get());
  sessions_.emplace(id, std::move(session));
  fleet_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool FleetEngine::close_session(SessionId id) {
  std::unique_ptr<Session> victim;
  {
    const std::unique_lock<std::shared_mutex> lock(registry_mutex_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    victim = std::move(it->second);
    sessions_.erase(it);
    auto& members = shards_[victim->shard_]->members;
    members.erase(std::remove(members.begin(), members.end(), victim.get()),
                  members.end());
  }
  // The tail flush classifies and delivers on the calling thread, outside
  // the registry lock so producers and the pumps are not stalled by it. The
  // victim is already invisible to every shard body, so no pump races it.
  const std::uint64_t before = victim->delivered();
  const std::size_t removed = victim->close();
  queued_samples_.fetch_sub(removed, std::memory_order_relaxed);
  shards_[victim->shard_]->queued.fetch_sub(removed,
                                            std::memory_order_relaxed);
  fleet_.beats_out.fetch_add(victim->delivered() - before,
                             std::memory_order_relaxed);
  fleet_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FleetEngine::stage_on(Session& session,
                           std::shared_ptr<const SessionModel> model) {
  HBRP_REQUIRE(model != nullptr, "FleetEngine: staged model must be non-null");
  HBRP_REQUIRE(model->classifier.projector().expected_window() ==
                       classifier_.projector().expected_window() &&
                   model->classifier.projector().coefficients() ==
                       classifier_.projector().coefficients(),
               "FleetEngine: staged model geometry differs from the engine");
  {
    const std::lock_guard<std::mutex> lock(session.swap_mutex_);
    session.pending_swap_ = std::move(model);
  }
  session.swap_pending_.store(true, std::memory_order_relaxed);
  fleet_.swaps_staged.fetch_add(1, std::memory_order_relaxed);
}

bool FleetEngine::stage_swap(SessionId id,
                             std::shared_ptr<const SessionModel> model) {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  stage_on(*it->second, std::move(model));
  return true;
}

std::size_t FleetEngine::stage_swap_all(
    std::shared_ptr<const SessionModel> model) {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  for (auto& [id, session] : sessions_) stage_on(*session, model);
  return sessions_.size();
}

std::size_t FleetEngine::stage_swap_arm(
    std::uint8_t arm, std::shared_ptr<const SessionModel> model) {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  std::size_t staged = 0;
  for (auto& [id, session] : sessions_) {
    if (session->config().ab_arm != arm) continue;
    stage_on(*session, model);
    ++staged;
  }
  return staged;
}

const SessionModel* FleetEngine::session_model(SessionId id) const {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second->model();
}

template <typename T>
OfferOutcome FleetEngine::offer_impl(SessionId id,
                                     std::span<const T> samples) {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  const auto it = sessions_.find(id);
  OfferOutcome out;
  if (it == sessions_.end()) {
    out.rejected = samples.size();
    return out;
  }
  Session& session = *it->second;
  if (queued_samples_.load(std::memory_order_relaxed) + samples.size() >
      cfg_.max_queued_samples) {
    fleet_.offers_rejected.fetch_add(1, std::memory_order_relaxed);
    session.telemetry_.samples_offered.fetch_add(samples.size(),
                                                 std::memory_order_relaxed);
    session.telemetry_.samples_rejected.fetch_add(samples.size(),
                                                  std::memory_order_relaxed);
    out.rejected = samples.size();
    return out;
  }
  std::ptrdiff_t delta = 0;
  out = session.enqueue(samples, Session::Clock::now(), &delta);
  std::atomic<std::uint64_t>& shard_gauge = shards_[session.shard_]->queued;
  if (delta >= 0) {
    queued_samples_.fetch_add(static_cast<std::uint64_t>(delta),
                              std::memory_order_relaxed);
    shard_gauge.fetch_add(static_cast<std::uint64_t>(delta),
                          std::memory_order_relaxed);
  } else {
    queued_samples_.fetch_sub(static_cast<std::uint64_t>(-delta),
                              std::memory_order_relaxed);
    shard_gauge.fetch_sub(static_cast<std::uint64_t>(-delta),
                          std::memory_order_relaxed);
  }
  return out;
}

OfferOutcome FleetEngine::offer(SessionId id,
                                std::span<const double> samples) {
  return offer_impl(id, samples);
}

OfferOutcome FleetEngine::offer(SessionId id,
                                std::span<const dsp::Sample> samples) {
  return offer_impl(id, samples);
}

std::size_t FleetEngine::pump_shard_body(std::size_t s) {
  Shard& shard = *shards_[s];
  const std::lock_guard<std::mutex> shard_lock(shard.mutex);
  if (shard.members.empty()) return 0;
  const SteadyClock::time_point t0 = SteadyClock::now();

  // Phase 1: drain + window. Each member session is serviced by exactly
  // this shard and the shard writes only its own batch and scratch — the
  // core::Executor single-writer discipline, now held per reactor too.
  // Staged model swaps are installed first, before any sample of this
  // round is drained: the pump-round edge is a beat boundary, so every
  // beat delivered last round carries the old bundle's version and every
  // beat from here on the new one.
  shard.batch.clear();
  shard.run_ends.clear();
  std::uint64_t drained = 0;
  for (Session* session : shard.members) {
    session->apply_pending_swap();
    drained += session->begin_drain();
    session->process_drained(shard.batch);
    shard.run_ends.push_back(shard.batch.size());
  }
  queued_samples_.fetch_sub(drained, std::memory_order_relaxed);
  shard.queued.fetch_sub(drained, std::memory_order_relaxed);
  const SteadyClock::time_point t1 = SteadyClock::now();

  // Phase 2: classify the cross-session batch. Members drain in order, so
  // each session's windows are a contiguous slot run; consecutive members
  // sharing one SessionModel collapse into a single classify_batch sweep —
  // with a fleet on one model (the steady state) this is exactly the old
  // whole-batch call. Per-run projections are gathered into u_all so slot
  // indexing survives the split.
  const std::size_t k = classifier_.projector().coefficients();
  const std::size_t window = classifier_.projector().expected_window();
  shard.classes.resize(shard.batch.size());
  shard.u_all.resize(shard.batch.size() * k);
  if (!shard.batch.empty()) {
    const std::span<const dsp::Sample> windows = shard.batch.windows();
    std::size_t begin_slot = 0;
    std::size_t m = 0;
    while (m < shard.members.size()) {
      const SessionModel* model = &shard.members[m]->model();
      std::size_t m_end = m + 1;
      while (m_end < shard.members.size() &&
             &shard.members[m_end]->model() == model)
        ++m_end;
      const std::size_t end_slot = shard.run_ends[m_end - 1];
      const std::size_t count = end_slot - begin_slot;
      if (count > 0) {
        model->classifier.classify_batch(
            windows.subspan(begin_slot * window, count * window), count,
            std::span<ecg::BeatClass>(shard.classes.data() + begin_slot,
                                      count),
            shard.scratch);
        std::copy_n(shard.scratch.u.data(), count * k,
                    shard.u_all.data() + begin_slot * k);
      }
      begin_slot = end_slot;
      m = m_end;
    }
  }
  const SteadyClock::time_point t2 = SteadyClock::now();

  // Phase 3: in-order delivery, serial within the shard only. u_all holds
  // this round's row-major integer projections (row = slot), so
  // drift-enabled sessions observe them here at zero extra projection
  // cost — in per-session delivery order, keeping tracker state
  // bit-identical across thread/shard/reactor counts.
  std::size_t beats = 0;
  for (Session* session : shard.members)
    beats += session->deliver(
        shard.classes,
        std::span<const std::int32_t>(shard.u_all.data(), shard.u_all.size()),
        k);
  const SteadyClock::time_point t3 = SteadyClock::now();

  shard.pumps.fetch_add(1, std::memory_order_relaxed);
  shard.beats.fetch_add(beats, std::memory_order_relaxed);
  shard.drain_ns.fetch_add(ns_between(t0, t1), std::memory_order_relaxed);
  shard.classify_ns.fetch_add(ns_between(t1, t2), std::memory_order_relaxed);
  shard.deliver_ns.fetch_add(ns_between(t2, t3), std::memory_order_relaxed);

  fleet_.shard_pumps.fetch_add(1, std::memory_order_relaxed);
  fleet_.drain_ns.fetch_add(ns_between(t0, t1), std::memory_order_relaxed);
  fleet_.classify_ns.fetch_add(ns_between(t1, t2), std::memory_order_relaxed);
  fleet_.deliver_ns.fetch_add(ns_between(t2, t3), std::memory_order_relaxed);
  if (!shard.batch.empty()) {
    fleet_.batches.fetch_add(1, std::memory_order_relaxed);
    fleet_.batched_beats.fetch_add(shard.batch.size(),
                                   std::memory_order_relaxed);
  }
  fleet_.beats_out.fetch_add(beats, std::memory_order_relaxed);
  return beats;
}

std::size_t FleetEngine::pump_shard(std::size_t shard) {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  HBRP_REQUIRE(shard < shards_.size(), "FleetEngine: shard out of range");
  return pump_shard_body(shard);
}

std::size_t FleetEngine::pump() {
  const std::lock_guard<std::mutex> pump_lock(pump_mutex_);
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  fleet_.pumps.fetch_add(1, std::memory_order_relaxed);
  if (sessions_.empty()) return 0;

  std::atomic<std::uint64_t> beats{0};
  executor_.parallel_for(shards_.size(), [&](std::size_t s) {
    beats.fetch_add(pump_shard_body(s), std::memory_order_relaxed);
  });
  return static_cast<std::size_t>(beats.load(std::memory_order_relaxed));
}

std::size_t FleetEngine::drain() {
  std::size_t beats = 0;
  std::uint64_t before = queued_samples();
  while (before > 0) {
    const std::size_t delivered = pump();
    beats += delivered;
    const std::uint64_t after = queued_samples();
    // Defensive: a round that consumed nothing and delivered nothing means
    // the gauge and the queues disagree — stop instead of spinning.
    if (after >= before && delivered == 0) break;
    before = after;
  }
  return beats;
}

std::size_t FleetEngine::session_count() const {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  return sessions_.size();
}

std::size_t FleetEngine::shard_queued_samples(std::size_t shard) const {
  if (shard >= shards_.size()) return 0;
  return shards_[shard]->queued.load(std::memory_order_relaxed);
}

const SessionTelemetry* FleetEngine::session_telemetry(SessionId id) const {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second->telemetry();
}

const drift::DriftTracker* FleetEngine::session_drift(SessionId id) const {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second->drift_tracker();
}

std::string FleetEngine::telemetry_json() const {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  // Fleet-level novel-morphology rollup, aggregated from the per-session
  // mirrors (relaxed atomics — never the live trackers, which belong to
  // the pump thread).
  std::uint64_t alarm_sessions = 0;
  std::uint64_t novel_beats = 0;
  for (const auto& [id, session] : sessions_) {
    const SessionTelemetry& t = session->telemetry();
    alarm_sessions +=
        t.drift_alarm_active.load(std::memory_order_relaxed) != 0 ? 1 : 0;
    novel_beats += t.drift_novel_beats.load(std::memory_order_relaxed);
  }
  std::string out = "{\n  \"fleet\": ";
  out += fleet_.json(sessions_.size(), queued_samples(), alarm_sessions,
                     novel_beats);
  out += ",\n  \"shards\": [";
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    const auto load = [](const std::atomic<std::uint64_t>& a) {
      return a.load(std::memory_order_relaxed);
    };
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"shard\": %zu, \"sessions\": %zu, "
                  "\"pumps\": %llu, \"beats\": %llu, \"drain_s\": %.6g, "
                  "\"classify_s\": %.6g, \"deliver_s\": %.6g}",
                  s == 0 ? "" : ",", s, shard.members.size(),
                  static_cast<unsigned long long>(load(shard.pumps)),
                  static_cast<unsigned long long>(load(shard.beats)),
                  static_cast<double>(load(shard.drain_ns)) / 1e9,
                  static_cast<double>(load(shard.classify_ns)) / 1e9,
                  static_cast<double>(load(shard.deliver_ns)) / 1e9);
    out += buf;
  }
  out += shards_.empty() ? "]" : "\n  ]";
  out += ",\n  \"sessions\": [";
  bool first = true;
  for (const auto& [id, session] : sessions_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += session->telemetry().json(id, session->queued());
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace hbrp::service
