#include "service/fleet.hpp"

#include <algorithm>

#include "math/check.hpp"

namespace hbrp::service {

FleetEngine::FleetEngine(embedded::EmbeddedClassifier classifier,
                         FleetConfig cfg)
    : classifier_(std::move(classifier)),
      cfg_(std::move(cfg)),
      executor_(cfg_.threads) {
  HBRP_REQUIRE(cfg_.max_sessions >= 1, "FleetEngine: max_sessions must be >= 1");
  const std::size_t shards =
      std::max<std::size_t>(1, cfg_.shards != 0 ? cfg_.shards
                                                : executor_.threads());
  const std::size_t window = classifier_.projector().expected_window();
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) shards_.emplace_back(window);
}

FleetEngine::~FleetEngine() {
  const std::unique_lock<std::shared_mutex> lock(registry_mutex_);
  for (auto& [id, session] : sessions_) {
    // Sinks may capture state that outlives the engine only if the caller
    // closed the session explicitly; at destruction they must not fire.
    session->sink_ = nullptr;
    session->close();
    fleet_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
  }
  sessions_.clear();
}

std::optional<SessionId> FleetEngine::open_session(ResultSink sink) {
  return open_session(std::move(sink), cfg_.session);
}

std::optional<SessionId> FleetEngine::open_session(ResultSink sink,
                                                   SessionConfig cfg) {
  const std::unique_lock<std::shared_mutex> lock(registry_mutex_);
  if (sessions_.size() >= cfg_.max_sessions) {
    fleet_.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const SessionId id = next_id_++;
  sessions_.emplace(id, std::make_unique<Session>(id, classifier_,
                                                  std::move(cfg),
                                                  std::move(sink)));
  fleet_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool FleetEngine::close_session(SessionId id) {
  std::unique_ptr<Session> victim;
  {
    const std::unique_lock<std::shared_mutex> lock(registry_mutex_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    victim = std::move(it->second);
    sessions_.erase(it);
  }
  // The tail flush classifies and delivers on the calling thread, outside
  // the registry lock so producers and the pump are not stalled by it.
  const std::uint64_t before = victim->delivered();
  const std::size_t removed = victim->close();
  queued_samples_.fetch_sub(removed, std::memory_order_relaxed);
  fleet_.beats_out.fetch_add(victim->delivered() - before,
                             std::memory_order_relaxed);
  fleet_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
  return true;
}

template <typename T>
OfferOutcome FleetEngine::offer_impl(SessionId id,
                                     std::span<const T> samples) {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  const auto it = sessions_.find(id);
  OfferOutcome out;
  if (it == sessions_.end()) {
    out.rejected = samples.size();
    return out;
  }
  Session& session = *it->second;
  if (queued_samples_.load(std::memory_order_relaxed) + samples.size() >
      cfg_.max_queued_samples) {
    fleet_.offers_rejected.fetch_add(1, std::memory_order_relaxed);
    session.telemetry_.samples_offered.fetch_add(samples.size(),
                                                 std::memory_order_relaxed);
    session.telemetry_.samples_rejected.fetch_add(samples.size(),
                                                  std::memory_order_relaxed);
    out.rejected = samples.size();
    return out;
  }
  std::ptrdiff_t delta = 0;
  out = session.enqueue(samples, Session::Clock::now(), &delta);
  if (delta >= 0)
    queued_samples_.fetch_add(static_cast<std::uint64_t>(delta),
                              std::memory_order_relaxed);
  else
    queued_samples_.fetch_sub(static_cast<std::uint64_t>(-delta),
                              std::memory_order_relaxed);
  return out;
}

OfferOutcome FleetEngine::offer(SessionId id,
                                std::span<const double> samples) {
  return offer_impl(id, samples);
}

OfferOutcome FleetEngine::offer(SessionId id,
                                std::span<const dsp::Sample> samples) {
  return offer_impl(id, samples);
}

std::size_t FleetEngine::pump() {
  const std::lock_guard<std::mutex> pump_lock(pump_mutex_);
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  fleet_.pumps.fetch_add(1, std::memory_order_relaxed);

  std::vector<Session*> active;
  active.reserve(sessions_.size());
  for (auto& [id, session] : sessions_) active.push_back(session.get());
  if (active.empty()) return 0;

  const std::size_t nshards = std::min(shards_.size(), active.size());
  for (std::size_t s = 0; s < nshards; ++s) {
    shards_[s].sessions.clear();
    shards_[s].batch.clear();
  }
  for (std::size_t i = 0; i < active.size(); ++i)
    shards_[i % nshards].sessions.push_back(active[i]);

  // Phases 1 + 2: drain, window, and classify per shard. Each session is
  // touched by exactly one shard and each shard writes only its own batch
  // and scratch — the core::Executor single-writer discipline.
  std::atomic<std::uint64_t> drained{0};
  executor_.parallel_for(nshards, [&](std::size_t s) {
    Shard& shard = shards_[s];
    std::uint64_t shard_drained = 0;
    for (Session* session : shard.sessions) {
      shard_drained += session->begin_drain();
      session->process_drained(shard.batch);
    }
    drained.fetch_add(shard_drained, std::memory_order_relaxed);
    shard.classes.resize(shard.batch.size());
    if (!shard.batch.empty())
      classifier_.classify_batch(shard.batch.windows(), shard.batch.size(),
                                 shard.classes, shard.scratch);
  });
  queued_samples_.fetch_sub(drained.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);

  // Phase 3: serial in-order delivery, sessions in id order. The shard
  // scratch still holds this round's row-major integer projections, so
  // drift-enabled sessions observe them here at zero extra projection
  // cost — and in delivery order, keeping tracker state bit-identical
  // across thread/shard counts.
  const std::size_t k = classifier_.projector().coefficients();
  std::size_t beats = 0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    const Shard& shard = shards_[i % nshards];
    beats += active[i]->deliver(
        shard.classes,
        std::span<const std::int32_t>(shard.scratch.u.data(),
                                      shard.scratch.u.size()),
        k);
  }

  for (std::size_t s = 0; s < nshards; ++s) {
    if (shards_[s].batch.empty()) continue;
    fleet_.batches.fetch_add(1, std::memory_order_relaxed);
    fleet_.batched_beats.fetch_add(shards_[s].batch.size(),
                                   std::memory_order_relaxed);
  }
  fleet_.beats_out.fetch_add(beats, std::memory_order_relaxed);
  return beats;
}

std::size_t FleetEngine::drain() {
  std::size_t beats = 0;
  std::uint64_t before = queued_samples();
  while (before > 0) {
    const std::size_t delivered = pump();
    beats += delivered;
    const std::uint64_t after = queued_samples();
    // Defensive: a round that consumed nothing and delivered nothing means
    // the gauge and the queues disagree — stop instead of spinning.
    if (after >= before && delivered == 0) break;
    before = after;
  }
  return beats;
}

std::size_t FleetEngine::session_count() const {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  return sessions_.size();
}

const SessionTelemetry* FleetEngine::session_telemetry(SessionId id) const {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second->telemetry();
}

const drift::DriftTracker* FleetEngine::session_drift(SessionId id) const {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second->drift_tracker();
}

std::string FleetEngine::telemetry_json() const {
  const std::shared_lock<std::shared_mutex> lock(registry_mutex_);
  // Fleet-level novel-morphology rollup, aggregated from the per-session
  // mirrors (relaxed atomics — never the live trackers, which belong to
  // the pump thread).
  std::uint64_t alarm_sessions = 0;
  std::uint64_t novel_beats = 0;
  for (const auto& [id, session] : sessions_) {
    const SessionTelemetry& t = session->telemetry();
    alarm_sessions +=
        t.drift_alarm_active.load(std::memory_order_relaxed) != 0 ? 1 : 0;
    novel_beats += t.drift_novel_beats.load(std::memory_order_relaxed);
  }
  std::string out = "{\n  \"fleet\": ";
  out += fleet_.json(sessions_.size(), queued_samples(), alarm_sessions,
                     novel_beats);
  out += ",\n  \"sessions\": [";
  bool first = true;
  for (const auto& [id, session] : sessions_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += session->telemetry().json(id, session->queued());
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace hbrp::service
