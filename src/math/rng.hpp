// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (synthetic ECG, Achlioptas
// matrices, genetic algorithm, train/test splits) draws from an explicitly
// seeded Rng so that all experiments are bit-reproducible across runs and
// platforms. The generator is xoshiro256** (Blackman & Vigna), chosen for
// speed, tiny state and well-studied statistical quality; we do not rely on
// std::mt19937 because libstdc++/libc++ distributions are not guaranteed to
// produce identical streams.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "math/check.hpp"

namespace hbrp::math {

/// xoshiro256** generator with SplitMix64 seeding.
/// Satisfies UniformRandomBitGenerator so it can also feed <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Unbiased uniform integer in [0, n) (Lemire-style rejection).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Draws an index from an (unnormalized) weight table.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator (for parallel-safe substreams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace hbrp::math
