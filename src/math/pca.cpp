#include "math/pca.hpp"

#include <algorithm>
#include <cmath>

#include "math/check.hpp"
#include "math/eig.hpp"

namespace hbrp::math {

Pca Pca::fit(const Mat& data, std::size_t components) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  HBRP_REQUIRE(n >= 2, "Pca::fit(): needs at least two observations");
  HBRP_REQUIRE(components >= 1 && components <= d,
               "Pca::fit(): components must be in [1, dimension]");

  Pca pca;
  pca.mean_.assign(d, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < d; ++c) pca.mean_[c] += data.at(r, c);
  for (double& m : pca.mean_) m /= static_cast<double>(n);

  // Sample covariance (d x d). d <= 200 in this library, so dense is fine.
  Mat cov(d, d);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < d; ++i) {
      const double xi = data.at(r, i) - pca.mean_[i];
      if (xi == 0.0) continue;
      for (std::size_t j = i; j < d; ++j)
        cov.at(i, j) += xi * (data.at(r, j) - pca.mean_[j]);
    }
  }
  const double scale = 1.0 / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = i; j < d; ++j) {
      cov.at(i, j) *= scale;
      cov.at(j, i) = cov.at(i, j);
    }

  EigResult eig = eig_symmetric(cov);

  double total = 0.0;
  for (double w : eig.values) total += std::max(w, 0.0);
  double captured = 0.0;

  pca.basis_ = Mat(components, d);
  pca.variance_.resize(components);
  for (std::size_t k = 0; k < components; ++k) {
    pca.variance_[k] = std::max(eig.values[k], 0.0);
    captured += pca.variance_[k];
    for (std::size_t c = 0; c < d; ++c)
      pca.basis_.at(k, c) = eig.vectors.at(c, k);
  }
  pca.captured_ratio_ = total > 0.0 ? captured / total : 0.0;
  return pca;
}

Vec Pca::transform(std::span<const double> x) const {
  HBRP_REQUIRE(x.size() == dimension(), "Pca::transform(): size mismatch");
  Vec centred(x.begin(), x.end());
  for (std::size_t i = 0; i < centred.size(); ++i) centred[i] -= mean_[i];
  return basis_.mul(centred);
}

Mat Pca::transform(const Mat& data) const {
  HBRP_REQUIRE(data.cols() == dimension(), "Pca::transform(): size mismatch");
  Mat out(data.rows(), components());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const Vec scores = transform(data.row(r));
    for (std::size_t k = 0; k < scores.size(); ++k) out.at(r, k) = scores[k];
  }
  return out;
}

Vec Pca::inverse_transform(std::span<const double> scores) const {
  HBRP_REQUIRE(scores.size() == components(),
               "Pca::inverse_transform(): size mismatch");
  Vec x = mean_;
  for (std::size_t k = 0; k < components(); ++k)
    for (std::size_t c = 0; c < dimension(); ++c)
      x[c] += scores[k] * basis_.at(k, c);
  return x;
}

}  // namespace hbrp::math
