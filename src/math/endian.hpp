// Explicit little-endian (de)serialization primitives.
//
// Every persisted or transmitted byte in this codebase — model files
// (core/model_io) and wire frames (net/wire) — goes through these helpers,
// so there is exactly one audited codec instead of one per subsystem. The
// byte order is little-endian *by construction* (shift/or, never memcpy of
// a native representation), so the format is identical on any host;
// floating-point values travel as the IEEE-754 bit pattern of their
// same-width unsigned integer.
//
// Two call shapes cover every producer/consumer in the tree:
//   - raw pointers:   store_le<T>(p, v) / load_le<T>(p)     (framing)
//   - growable blobs: append_le<T>(str_or_vec, v)           (payload build)
// plus ByteReader, the bounds-checked sequential decoder: every get<T>()
// verifies the remaining length BEFORE touching memory, so a truncated or
// hostile payload can never read out of bounds — it throws hbrp::Error
// (HBRP_REQUIRE) instead.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "math/check.hpp"

namespace hbrp::math {

namespace detail {

/// Maps a serializable type to the unsigned integer that carries its bits.
template <typename T>
struct wire_carrier {
  static_assert(std::is_integral_v<T> && !std::is_same_v<T, bool>,
                "endian.hpp: only integral and floating types are serializable");
  using type = std::make_unsigned_t<T>;
};
template <>
struct wire_carrier<float> {
  using type = std::uint32_t;
};
template <>
struct wire_carrier<double> {
  using type = std::uint64_t;
};

template <typename T>
using wire_carrier_t = typename wire_carrier<T>::type;

}  // namespace detail

/// Serialized width of T (identical to sizeof(T) for all supported types;
/// spelled out so format descriptions can reference it).
template <typename T>
inline constexpr std::size_t wire_size_v = sizeof(detail::wire_carrier_t<T>);

/// Writes `v` at `p` in little-endian byte order. `p` must have
/// wire_size_v<T> writable bytes; no alignment requirement.
template <typename T>
inline void store_le(unsigned char* p, T v) {
  using U = detail::wire_carrier_t<T>;
  const U bits = std::bit_cast<U>(v);
  for (std::size_t i = 0; i < sizeof(U); ++i)
    p[i] = static_cast<unsigned char>((bits >> (8 * i)) & 0xFFu);
}

/// Reads a little-endian T from `p` (wire_size_v<T> bytes, unaligned OK).
template <typename T>
inline T load_le(const unsigned char* p) {
  using U = detail::wire_carrier_t<T>;
  U bits = 0;
  for (std::size_t i = 0; i < sizeof(U); ++i)
    bits |= static_cast<U>(static_cast<unsigned char>(p[i])) << (8 * i);
  return std::bit_cast<T>(bits);
}

/// Appends the little-endian image of `v` to a growable byte container
/// (std::string or std::vector<unsigned char> — anything with resize/data).
template <typename T, typename Buffer>
inline void append_le(Buffer& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + wire_size_v<T>);
  store_le<T>(reinterpret_cast<unsigned char*>(out.data()) + at, v);
}

/// Bounds-checked sequential little-endian decoder over an in-memory
/// buffer. Throws hbrp::Error (never reads) when the buffer is shorter
/// than the caller's next field — the defense model_io and net/wire both
/// rely on for untrusted input.
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size)
      : data_(static_cast<const unsigned char*>(data)), size_(size) {}

  template <typename T>
  T get() {
    HBRP_REQUIRE(size_ - pos_ >= wire_size_v<T>,
                 "endian: payload shorter than its header claims");
    const T v = load_le<T>(data_ + pos_);
    pos_ += wire_size_v<T>;
    return v;
  }

  /// Borrows the next `n` raw bytes (no copy); bounds-checked like get().
  const unsigned char* bytes(std::size_t n) {
    HBRP_REQUIRE(size_ - pos_ >= n,
                 "endian: payload shorter than its header claims");
    const unsigned char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t consumed() const { return pos_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace hbrp::math
