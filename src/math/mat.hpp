// Dense row-major matrix of doubles.
//
// Sized for this library's needs: projection matrices (k x d with d <= 200),
// covariance matrices for PCA (d x d), and batches of projected beats. All
// operations are straightforward O(n^3)/O(n^2) loops — matrices here are
// small enough that cache blocking or external BLAS would be over-engineering.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "math/check.hpp"
#include "math/vec.hpp"

namespace hbrp::math {

class Mat {
 public:
  Mat() = default;

  /// rows x cols matrix, zero-initialized.
  Mat(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix with explicit contents (row-major, size rows*cols).
  Mat(std::size_t rows, std::size_t cols, std::vector<double> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c) {
    HBRP_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    HBRP_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Row r as a mutable span.
  std::span<double> row(std::size_t r) {
    HBRP_REQUIRE(r < rows_, "Mat::row(): index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    HBRP_REQUIRE(r < rows_, "Mat::row(): index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  std::span<const double> flat() const { return data_; }
  std::span<double> flat() { return data_; }

  /// Matrix-vector product: out = (*this) * v.
  Vec mul(std::span<const double> v) const;

  /// Matrix-matrix product.
  Mat mul(const Mat& other) const;

  /// Transpose copy.
  Mat transposed() const;

  /// Identity matrix.
  static Mat identity(std::size_t n);

  bool operator==(const Mat& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hbrp::math
