#include "math/mat.hpp"

namespace hbrp::math {

Mat::Mat(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  HBRP_REQUIRE(data_.size() == rows_ * cols_,
               "Mat(): data size does not match rows*cols");
}

Vec Mat::mul(std::span<const double> v) const {
  HBRP_REQUIRE(v.size() == cols_, "Mat::mul(vec): size mismatch");
  Vec out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = dot(row(r), v);
  return out;
}

Mat Mat::mul(const Mat& other) const {
  HBRP_REQUIRE(cols_ == other.rows_, "Mat::mul(mat): inner size mismatch");
  Mat out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;  // projection matrices are 2/3 zeros
      for (std::size_t c = 0; c < other.cols_; ++c)
        out.at(r, c) += a * other.at(k, c);
    }
  }
  return out;
}

Mat Mat::transposed() const {
  Mat out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  return out;
}

Mat Mat::identity(std::size_t n) {
  Mat out(n, n);
  for (std::size_t i = 0; i < n; ++i) out.at(i, i) = 1.0;
  return out;
}

}  // namespace hbrp::math
