#include "math/vec.hpp"

#include <cmath>

namespace hbrp::math {

double dot(std::span<const double> a, std::span<const double> b) {
  HBRP_REQUIRE(a.size() == b.size(), "dot(): size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> a) { return std::sqrt(norm2_sq(a)); }

double norm2_sq(std::span<const double> a) {
  double acc = 0.0;
  for (double v : a) acc += v * v;
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  HBRP_REQUIRE(x.size() == y.size(), "axpy(): size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

Vec sub(std::span<const double> a, std::span<const double> b) {
  HBRP_REQUIRE(a.size() == b.size(), "sub(): size mismatch");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec add(std::span<const double> a, std::span<const double> b) {
  HBRP_REQUIRE(a.size() == b.size(), "add(): size mismatch");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

double mean(std::span<const double> a) {
  HBRP_REQUIRE(!a.empty(), "mean() of empty range");
  double acc = 0.0;
  for (double v : a) acc += v;
  return acc / static_cast<double>(a.size());
}

double variance(std::span<const double> a) {
  HBRP_REQUIRE(a.size() >= 2, "variance() needs at least two elements");
  const double m = mean(a);
  double acc = 0.0;
  for (double v : a) acc += (v - m) * (v - m);
  return acc / static_cast<double>(a.size() - 1);
}

double max_abs(std::span<const double> a) {
  double best = 0.0;
  for (double v : a) best = std::max(best, std::abs(v));
  return best;
}

}  // namespace hbrp::math
