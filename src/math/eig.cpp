#include "math/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "math/check.hpp"

namespace hbrp::math {

EigResult eig_symmetric(const Mat& input, int max_sweeps) {
  HBRP_REQUIRE(input.rows() == input.cols(),
               "eig_symmetric(): matrix must be square");
  const std::size_t n = input.rows();
  double max_elem = 0.0;
  for (double v : input.flat()) max_elem = std::max(max_elem, std::abs(v));
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r + 1; c < n; ++c)
      HBRP_REQUIRE(std::abs(input.at(r, c) - input.at(c, r)) <=
                       1e-9 * std::max(1.0, max_elem),
                   "eig_symmetric(): matrix must be symmetric");

  Mat a = input;
  Mat v = Mat::identity(n);

  auto off_diag_norm = [&a, n]() {
    double s = 0.0;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = r + 1; c < n; ++c) s += a.at(r, c) * a.at(r, c);
    return std::sqrt(2.0 * s);
  };

  const double tol = 1e-12 * std::max(1.0, max_elem);
  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    if (off_diag_norm() <= tol) {
      converged = true;
      break;
    }
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::abs(apq) <= tol) continue;
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        // Stable rotation computation (Golub & Van Loan, Alg. 8.4.1).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!converged)
    HBRP_REQUIRE(off_diag_norm() <= std::sqrt(tol) * std::max(1.0, max_elem),
                 "eig_symmetric(): Jacobi iteration failed to converge");

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&a](std::size_t i, std::size_t j) {
    return a.at(i, i) > a.at(j, j);
  });

  EigResult result;
  result.values.resize(n);
  result.vectors = Mat(n, n);
  for (std::size_t out = 0; out < n; ++out) {
    const std::size_t src = order[out];
    result.values[out] = a.at(src, src);
    for (std::size_t k = 0; k < n; ++k)
      result.vectors.at(k, out) = v.at(k, src);
  }
  return result;
}

}  // namespace hbrp::math
