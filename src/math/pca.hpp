// Principal Component Analysis.
//
// Implements the off-line PCA dimensionality-reduction baseline the paper
// compares against (Table II, row "PCA-PC", following Ceylan & Ozbay 2007):
// beats are centred and projected onto the top-k eigenvectors of the sample
// covariance matrix.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "math/mat.hpp"
#include "math/vec.hpp"

namespace hbrp::math {

class Pca {
 public:
  /// Fits on a dataset of row-vectors (each row one observation of dimension
  /// `data.cols()`); keeps the top `components` principal directions.
  /// Requires at least two observations and 1 <= components <= dimension.
  static Pca fit(const Mat& data, std::size_t components);

  /// Projects one observation onto the retained components.
  Vec transform(std::span<const double> x) const;

  /// Projects a batch (rows are observations).
  Mat transform(const Mat& data) const;

  /// Reconstructs an observation from its component scores (inverse map up
  /// to the subspace): x_hat = mean + basis^T * scores.
  Vec inverse_transform(std::span<const double> scores) const;

  std::size_t components() const { return basis_.rows(); }
  std::size_t dimension() const { return mean_.size(); }

  /// Eigenvalues of the retained components, descending.
  const std::vector<double>& explained_variance() const { return variance_; }

  /// Fraction of total variance captured by the retained components.
  double explained_variance_ratio() const { return captured_ratio_; }

  /// Basis as a components x dimension matrix (rows are unit eigenvectors).
  const Mat& basis() const { return basis_; }
  const Vec& mean() const { return mean_; }

 private:
  Pca() = default;

  Mat basis_;               // k x d, rows orthonormal
  Vec mean_;                // d
  std::vector<double> variance_;  // k eigenvalues
  double captured_ratio_ = 0.0;
};

}  // namespace hbrp::math
