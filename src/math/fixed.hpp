// Fixed-point helpers for the embedded (WBSN-side) arithmetic.
//
// The embedded classifier works entirely in integer arithmetic: membership
// grades are Q0.16 values in [0, 65535], the defuzzification threshold alpha
// is a Q16 fraction, and intermediate fuzzy products live in 32-bit
// accumulators that are re-normalized by shifting. These helpers centralize
// the conversions and the overflow-free primitives those kernels rely on.
#pragma once

#include <bit>
#include <cstdint>

#include "math/check.hpp"

namespace hbrp::math {

/// Maximum value of an unsigned 16-bit membership grade.
inline constexpr std::uint32_t kGradeMax = 0xFFFFu;

/// One in Q16 fixed point (used for alpha thresholds).
inline constexpr std::uint32_t kQ16One = 1u << 16;

/// Converts a real in [0, 1] to a Q0.16 grade with round-to-nearest.
constexpr std::uint16_t to_grade(double x) {
  if (x <= 0.0) return 0;
  if (x >= 1.0) return static_cast<std::uint16_t>(kGradeMax);
  return static_cast<std::uint16_t>(x * 65535.0 + 0.5);
}

/// Converts a Q0.16 grade back to a real in [0, 1].
constexpr double from_grade(std::uint16_t g) {
  return static_cast<double>(g) / 65535.0;
}

/// Converts a real fraction in [0, 1] to Q16.
constexpr std::uint32_t to_q16(double x) {
  if (x <= 0.0) return 0;
  if (x >= 1.0) return kQ16One;
  return static_cast<std::uint32_t>(x * static_cast<double>(kQ16One) + 0.5);
}

constexpr double from_q16(std::uint32_t q) {
  return static_cast<double>(q) / static_cast<double>(kQ16One);
}

/// Number of left-shift positions available before `x` would lose its top
/// bit out of 32 bits. For x == 0 the result is 31 (shifting zero is safe).
constexpr int headroom32(std::uint32_t x) {
  return x == 0 ? 31 : std::countl_zero(x);
}

/// Saturating conversion of a wide signed value into int16 (ADC-style clamp).
constexpr std::int16_t saturate_i16(std::int32_t x) {
  if (x > 32767) return 32767;
  if (x < -32768) return -32768;
  return static_cast<std::int16_t>(x);
}

/// Rounded integer division-by-power-of-two for signed values (shifts in C++
/// truncate toward negative infinity for negative operands; the embedded
/// kernels need symmetric rounding for sample downscaling).
constexpr std::int32_t rshift_round(std::int32_t x, int shift) {
  HBRP_ASSERT(shift >= 0 && shift < 31);
  if (shift == 0) return x;
  const std::int32_t bias = std::int32_t{1} << (shift - 1);
  return (x >= 0) ? ((x + bias) >> shift) : -((-x + bias) >> shift);
}

}  // namespace hbrp::math
