// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Used by the PCA baseline (Table II, row PCA-PC). Beat windows have at most
// d = 200 samples, so the covariance matrices are <= 200 x 200 and Jacobi —
// simple, robust and dependency-free — is entirely adequate.
#pragma once

#include <vector>

#include "math/mat.hpp"

namespace hbrp::math {

struct EigResult {
  /// Eigenvalues sorted in descending order.
  std::vector<double> values;
  /// Eigenvectors as matrix columns, in the same order as `values`.
  Mat vectors;
};

/// Decomposes a symmetric matrix A = V diag(w) V^T.
/// Throws hbrp::Error if A is not square or not symmetric (within 1e-9
/// of relative tolerance), or if convergence fails.
EigResult eig_symmetric(const Mat& a, int max_sweeps = 100);

}  // namespace hbrp::math
