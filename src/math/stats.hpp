// Descriptive statistics used by the evaluation harnesses and the synthetic
// ECG generator's self-checks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hbrp::math {

/// Streaming mean/variance accumulator (Welford's algorithm).
/// Numerically stable for long runs (e.g. 26M-sample test signals).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 until two samples are seen.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merges another accumulator (parallel reduction support).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linearly interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> values, double p);

/// Median convenience wrapper.
double median(std::span<const double> values);

/// Pearson correlation coefficient of two equal-length series.
double pearson(std::span<const double> a, std::span<const double> b);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the end buckets.
std::vector<std::size_t> histogram(std::span<const double> values, double lo,
                                   double hi, std::size_t bins);

}  // namespace hbrp::math
