#include "math/stats.hpp"

#include <algorithm>
#include <cmath>

#include "math/check.hpp"

namespace hbrp::math {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> values, double p) {
  HBRP_REQUIRE(!values.empty(), "percentile() of empty range");
  HBRP_REQUIRE(p >= 0.0 && p <= 100.0, "percentile() needs p in [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) {
  return percentile(values, 50.0);
}

double pearson(std::span<const double> a, std::span<const double> b) {
  HBRP_REQUIRE(a.size() == b.size() && a.size() >= 2,
               "pearson() needs two equal-length series of >= 2 samples");
  RunningStats sa, sb;
  for (double v : a) sa.add(v);
  for (double v : b) sb.add(v);
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  cov /= static_cast<double>(a.size() - 1);
  const double denom = sa.stddev() * sb.stddev();
  HBRP_REQUIRE(denom > 0.0, "pearson() undefined for constant series");
  return cov / denom;
}

std::vector<std::size_t> histogram(std::span<const double> values, double lo,
                                   double hi, std::size_t bins) {
  HBRP_REQUIRE(bins > 0, "histogram() needs at least one bin");
  HBRP_REQUIRE(hi > lo, "histogram() needs hi > lo");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : values) {
    double idx = (v - lo) / width;
    auto b = idx <= 0.0 ? std::size_t{0}
                        : std::min(bins - 1, static_cast<std::size_t>(idx));
    ++counts[b];
  }
  return counts;
}

}  // namespace hbrp::math
