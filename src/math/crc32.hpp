// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used to guard persisted artefacts (trained models) against silent flash /
// filesystem corruption: a single flipped bit anywhere in the payload is
// detected before any length field is trusted. Table-driven, one lookup per
// byte — negligible next to the file I/O it protects.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hbrp::math {

/// Incremental CRC-32: pass the previous return value as `seed` to continue
/// a running checksum (initial call uses the default seed).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace hbrp::math
