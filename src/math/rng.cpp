#include "math/rng.hpp"

#include <cmath>
#include <numbers>

namespace hbrp::math {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro256** must not be seeded with the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
    state_[0] = 0x1ULL;
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // Top 53 bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HBRP_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  HBRP_REQUIRE(n > 0, "uniform_index(0) is undefined");
  // Rejection sampling on the top bits to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  HBRP_REQUIRE(lo <= hi, "uniform_int(lo, hi) needs lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0x1.0p-60);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  HBRP_REQUIRE(stddev >= 0.0, "normal() needs stddev >= 0");
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  HBRP_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli(p) needs p in [0,1]");
  return uniform() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  HBRP_REQUIRE(!weights.empty(), "categorical() needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    HBRP_REQUIRE(w >= 0.0, "categorical() weights must be non-negative");
    total += w;
  }
  HBRP_REQUIRE(total > 0.0, "categorical() weights must not all be zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // guard against rounding at the top end
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::split() {
  // A fresh generator seeded from two draws of the parent; streams from
  // distinct SplitMix64 seeds are effectively independent.
  return Rng(next() ^ rotl(next(), 33));
}

}  // namespace hbrp::math
