// Small dense-vector utilities on std::vector<double>.
//
// The library's training-side numerics (SCG, NFC gradients, PCA) operate on
// plain std::vector<double> buffers; these free functions provide the BLAS-1
// level operations they need without pulling in an external linear-algebra
// dependency.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "math/check.hpp"

namespace hbrp::math {

using Vec = std::vector<double>;

/// Dot product. Both spans must have equal length.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> a);

/// Squared Euclidean norm.
double norm2_sq(std::span<const double> a);

/// y += alpha * x (in place).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha (in place).
void scale(std::span<double> x, double alpha);

/// Element-wise a - b as a new vector.
Vec sub(std::span<const double> a, std::span<const double> b);

/// Element-wise a + b as a new vector.
Vec add(std::span<const double> a, std::span<const double> b);

/// Arithmetic mean of the elements (requires non-empty input).
double mean(std::span<const double> a);

/// Unbiased sample variance (requires at least two elements).
double variance(std::span<const double> a);

/// Maximum absolute element (0 for empty input).
double max_abs(std::span<const double> a);

}  // namespace hbrp::math
