// Lightweight precondition / invariant checking used across all hbrp modules.
//
// HBRP_REQUIRE is for *caller* errors (bad arguments, malformed config) and is
// always on: it throws hbrp::Error so misuse is diagnosable in release builds.
// HBRP_ASSERT is for *internal* invariants and compiles out in NDEBUG builds,
// keeping the embedded-model kernels free of checking overhead when measured.
#pragma once

#include <stdexcept>
#include <string>

namespace hbrp {

/// Exception thrown on precondition violations anywhere in the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise_require(const char* cond, const char* file,
                                       int line, const std::string& msg) {
  std::string full = std::string("HBRP_REQUIRE failed: (") + cond + ") at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw Error(full);
}
}  // namespace detail

}  // namespace hbrp

#define HBRP_REQUIRE(cond, msg)                                         \
  do {                                                                  \
    if (!(cond))                                                        \
      ::hbrp::detail::raise_require(#cond, __FILE__, __LINE__, (msg));  \
  } while (0)

#ifdef NDEBUG
#define HBRP_ASSERT(cond) ((void)0)
#else
#define HBRP_ASSERT(cond)                                              \
  do {                                                                 \
    if (!(cond))                                                       \
      ::hbrp::detail::raise_require(#cond, __FILE__, __LINE__,         \
                                    "internal invariant");             \
  } while (0)
#endif
