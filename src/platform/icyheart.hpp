// IcyHeart platform specification and system-level duty-cycle accounting.
//
// Composes the per-stage kernel costs into the three (sub)systems of the
// paper's Fig. 6 and Table III:
//   - RP classifier alone;
//   - sub-system (1): single-lead filtering + peak detection + RP classifier;
//   - sub-system (2): three-lead filtering + peak detection + always-on
//     multi-lead MMD delineation;
//   - system (3): sub-system (1) gating, with the remaining two leads
//     filtered and the delineation executed only for beats the classifier
//     flags pathological.
#pragma once

#include <cstddef>

#include "platform/cycles.hpp"

namespace hbrp::platform {

struct IcyHeartSpec {
  double clock_hz = 6.0e6;          ///< the paper runs the core at 6 MHz
  std::size_t ram_bytes = 96 * 1024;  ///< embedded RAM of the SoC
};

/// Workload parameters of a monitoring scenario.
struct ScenarioParams {
  /// Average heart rate of the input, beats per second (test set: ~1.2).
  double beat_rate_hz = 1.2;
  /// Fraction of beats the classifier flags pathological (true abnormals
  /// plus false alarms); drives the gated delineation duty.
  double flagged_fraction = 0.2;
  std::size_t num_leads = 3;
  std::size_t coefficients = 8;
  std::size_t window = 200;
  std::size_t downsample = 4;
  /// Drift-tracker cluster budget charged per classified beat (src/drift);
  /// 0 = tracking disabled, which leaves every legacy load unchanged.
  std::size_t drift_clusters = 0;
};

/// Cycle consumption of one (sub)system.
struct SystemLoad {
  double cycles_per_second = 0.0;

  double duty_cycle(const IcyHeartSpec& spec) const {
    return cycles_per_second / spec.clock_hz;
  }
};

SystemLoad load_rp_classifier(const KernelCosts& k, const ScenarioParams& p);
SystemLoad load_subsystem1(const KernelCosts& k, const ScenarioParams& p);
SystemLoad load_subsystem2(const KernelCosts& k, const ScenarioParams& p);
SystemLoad load_system3(const KernelCosts& k, const ScenarioParams& p);

}  // namespace hbrp::platform
