#include "platform/icyheart.hpp"

#include "math/check.hpp"

namespace hbrp::platform {

namespace {
void validate(const ScenarioParams& p) {
  HBRP_REQUIRE(p.beat_rate_hz > 0.0, "ScenarioParams: beat rate > 0");
  HBRP_REQUIRE(p.flagged_fraction >= 0.0 && p.flagged_fraction <= 1.0,
               "ScenarioParams: flagged fraction in [0, 1]");
  HBRP_REQUIRE(p.num_leads >= 1, "ScenarioParams: at least one lead");
  HBRP_REQUIRE(p.downsample >= 1 && p.window % p.downsample == 0,
               "ScenarioParams: window must be divisible by downsample");
}
}  // namespace

namespace {

// The drift tracker rides the classifier's projection, so its only cost
// is the per-beat centroid update — zero when tracking is off.
double drift_cycles_per_second(const KernelCosts& k,
                               const ScenarioParams& p) {
  if (p.drift_clusters == 0) return 0.0;
  return p.beat_rate_hz *
         k.drift_update_per_beat(p.coefficients, p.drift_clusters);
}

}  // namespace

SystemLoad load_rp_classifier(const KernelCosts& k, const ScenarioParams& p) {
  validate(p);
  return {p.beat_rate_hz * k.rp_classifier_per_beat(p.coefficients, p.window,
                                                    p.downsample) +
          drift_cycles_per_second(k, p)};
}

SystemLoad load_subsystem1(const KernelCosts& k, const ScenarioParams& p) {
  validate(p);
  const double fs = static_cast<double>(k.fs_hz());
  const double per_second =
      fs * (k.conditioning_per_sample() + k.wavelet_per_sample() +
            k.peak_logic_per_sample()) +
      p.beat_rate_hz *
          k.rp_classifier_per_beat(p.coefficients, p.window, p.downsample) +
      drift_cycles_per_second(k, p);
  return {per_second};
}

SystemLoad load_subsystem2(const KernelCosts& k, const ScenarioParams& p) {
  validate(p);
  const double fs = static_cast<double>(k.fs_hz());
  // All leads filtered continuously; peak detection on the reference lead;
  // every beat delineated.
  const double per_second =
      fs * (static_cast<double>(p.num_leads) * k.conditioning_per_sample() +
            k.wavelet_per_sample() + k.peak_logic_per_sample()) +
      p.beat_rate_hz * k.delineation_per_beat(p.num_leads);
  return {per_second};
}

SystemLoad load_system3(const KernelCosts& k, const ScenarioParams& p) {
  validate(p);
  const double fs = static_cast<double>(k.fs_hz());
  // Sub-system (1) runs continuously. For flagged beats only, the remaining
  // leads are conditioned over the beat's analysis crop (~1.5 s of signal)
  // and the multi-lead delineation executes.
  const double crop_samples = 1.5 * fs;
  const double extra_leads = static_cast<double>(p.num_leads - 1);
  const double gated_per_beat =
      extra_leads * crop_samples * k.conditioning_per_sample() +
      k.delineation_per_beat(p.num_leads);
  const double per_second =
      load_subsystem1(k, p).cycles_per_second +
      p.beat_rate_hz * p.flagged_fraction * gated_per_beat;
  return {per_second};
}

}  // namespace hbrp::platform
