// Code-size inventory for the firmware stages (Table III, first column).
//
// Code size is a property of the compiled icyflex binaries of [1] and cannot
// be measured without that toolchain; this inventory models it as a sum of
// per-function footprints, with the per-function numbers calibrated so the
// stage totals reproduce the figures reported for the reference firmware
// (RP classifier 1.64 KB; sub-system (1) 30.29 KB; sub-system (2) 46.39 KB;
// complete system (3) = (1) + (2) sharing nothing = 76.68 KB). The
// *composition* rules (which functions belong to which stage, what is shared)
// are the model; the calibration constants are data.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hbrp::platform {

struct CodeItem {
  std::string name;
  double bytes = 0.0;
};

class CodeSizeModel {
 public:
  CodeSizeModel();

  /// Per-function inventory of one stage.
  const std::vector<CodeItem>& rp_classifier_items() const {
    return rp_classifier_;
  }
  const std::vector<CodeItem>& acquisition_items() const {
    return acquisition_;
  }
  const std::vector<CodeItem>& delineation_items() const {
    return delineation_;
  }

  /// Stage totals, in KB, matching the Table III rows.
  double rp_classifier_kb() const;
  /// (1) RP classifier + filtering + peak detection.
  double subsystem1_kb() const;
  /// (2) three-lead filtering + multi-lead delineation.
  double subsystem2_kb() const;
  /// (3) complete gated system: (1) and (2) coexist in flash.
  double system3_kb() const;

 private:
  std::vector<CodeItem> rp_classifier_;
  std::vector<CodeItem> acquisition_;   // filtering + peak detection
  std::vector<CodeItem> delineation_;   // 3-lead delineation stage
};

}  // namespace hbrp::platform
