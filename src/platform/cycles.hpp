// Cycle-cost model of the embedded kernels on an IcyHeart-class MCU.
//
// The paper measures duty cycles on the IcyHeart SoC (icyflex core, 6 MHz).
// Without that silicon, this module models per-stage cycle consumption
// analytically from the *operation structure of the kernels in this
// library*: every formula below is the literal count of ALU ops, multiplies,
// loads/stores, shifts and branches in the corresponding inner loop,
// weighted by a per-operation cycle table typical of a small in-order
// 32-bit RISC core. Stage-to-stage duty-cycle *ratios* — what Table III and
// the Section IV energy study actually report — therefore follow from the
// real arithmetic workload rather than from tuned constants.
//
// The morphological filters can be modelled in two variants:
//   - NaivePerSample: the textbook O(L)-per-sample structuring-element scan,
//     which matches the firmware of [1] that the paper profiles;
//   - MonotonicDeque: this library's O(1) amortized implementation, exposed
//     as an ablation (bench_table3_runtime --deque) showing how much of the
//     filtering duty cycle is an implementation artefact.
#pragma once

#include <cstddef>

#include "dsp/morphology.hpp"

namespace hbrp::platform {

/// Cycles per primitive operation (in-order 32-bit RISC, single-issue,
/// 2-cycle SRAM access, 3-cycle multiplier, no divider — division is a
/// ~35-cycle software routine).
struct CycleModel {
  double alu = 1.0;
  double mul = 3.0;
  double div = 35.0;
  double load = 2.0;
  double store = 2.0;
  double branch = 2.0;
  double shift = 1.0;
};

enum class MorphologyImpl { NaivePerSample, MonotonicDeque };

/// Per-stage cycle costs for the processing chain of Fig. 6.
class KernelCosts {
 public:
  KernelCosts(CycleModel ops, int fs_hz,
              MorphologyImpl morph = MorphologyImpl::NaivePerSample);

  const CycleModel& ops() const { return ops_; }
  int fs_hz() const { return fs_hz_; }
  MorphologyImpl morphology() const { return morph_; }

  /// One erosion or dilation pass, per input sample, for a structuring
  /// element of `length` samples.
  double morphology_pass_per_sample(std::size_t length) const;

  /// Full single-lead conditioning chain (baseline removal + noise
  /// suppression, 12 erosion/dilation passes plus combining arithmetic),
  /// per input sample.
  double conditioning_per_sample() const;

  /// Four-scale a-trous decomposition, per input sample.
  double wavelet_per_sample() const;

  /// Peak detector bookkeeping (extrema scan, thresholds, pairing),
  /// per input sample.
  double peak_logic_per_sample() const;

  /// Downsampling + packed ternary projection, per beat.
  double rp_projection_per_beat(std::size_t coefficients, std::size_t window,
                                std::size_t downsample) const;

  /// Integer MF evaluation + shift-normalized fuzzification +
  /// division-free defuzzification, per beat.
  double nfc_per_beat(std::size_t coefficients) const;

  /// Complete RP classifier (projection + NFC), per beat.
  /// Online drift tracking (src/drift) per classified beat: the
  /// nearest-centroid scan over `clusters` centroids of `coefficients`
  /// dims, one Welford moment update of the winner, and the score-window
  /// ring-buffer bookkeeping. The projection itself is NOT charged here —
  /// the tracker reuses the classifier's coefficients.
  double drift_update_per_beat(std::size_t coefficients,
                               std::size_t clusters) const;

  double rp_classifier_per_beat(std::size_t coefficients, std::size_t window,
                                std::size_t downsample) const;

  /// Multi-lead MMD delineation of one beat (crop, two MMD scales, boundary
  /// scans and wave searches on each of `num_leads` leads, plus fusion).
  double delineation_per_beat(std::size_t num_leads) const;

 private:
  CycleModel ops_;
  int fs_hz_;
  MorphologyImpl morph_;
  dsp::FilterConfig filter_;
};

}  // namespace hbrp::platform
