// Node-level energy model (Section IV-E).
//
// The paper's energy argument has three parts:
//   1. computation energy follows the MCU duty cycle (active vs sleep power);
//   2. wireless energy follows the transmitted payload: the baseline policy
//      sends every fiducial point of every beat, the optimized policy sends
//      only the R peak for beats classified normal and the full fiducial set
//      for pathological ones;
//   3. computation + communication jointly account for ~34% of total node
//      energy in a typical WBSN [1], which converts the per-subsystem
//      savings (63% computation, 68% wireless) into the ~23% whole-node
//      figure.
#pragma once

#include <cstddef>

#include "platform/icyheart.hpp"

namespace hbrp::platform {

struct PowerModel {
  /// MCU active power at the modelled clock (W).
  double mcu_active_w = 1.5e-3;
  /// MCU sleep/retention power (W).
  double mcu_sleep_w = 6.0e-6;
  /// Radio energy per transmitted byte (J/byte), including protocol
  /// overhead amortization (typical low-power 2.4 GHz transceiver).
  double radio_j_per_byte = 1.6e-6;
  /// Power of everything else on the node — analog front-end, ADC, leakage
  /// (W). Sized so computation + radio sit near the 34% share reported
  /// in [1] for the baseline (always-delineating, send-everything) system.
  double rest_of_node_w = 2.45e-3;
};

/// Per-beat payload sizes (bytes) for the two reporting policies.
struct PayloadModel {
  /// Bytes per fiducial point (sample offset, 2 bytes).
  std::size_t bytes_per_point = 2;
  /// Fiducial points of a fully delineated beat (P on/peak/end, QRS
  /// on/peak/end, T on/peak/end).
  std::size_t points_full = 9;
  /// Per-beat framing: beat class + flags.
  std::size_t header_bytes = 2;

  std::size_t full_beat_bytes() const {
    return header_bytes + points_full * bytes_per_point;
  }
  std::size_t normal_beat_bytes() const {
    // R peak only.
    return header_bytes + bytes_per_point;
  }
};

struct EnergyBreakdown {
  double compute_w = 0.0;
  double radio_w = 0.0;
  double rest_w = 0.0;

  double total_w() const { return compute_w + radio_w + rest_w; }
  /// Fraction of node power spent on computation + radio.
  double compute_radio_share() const {
    return (compute_w + radio_w) / total_w();
  }
};

/// Baseline: always-on delineation (sub-system (2)), every beat transmitted
/// with all fiducial points.
EnergyBreakdown energy_baseline(const KernelCosts& kernels,
                                const ScenarioParams& scenario,
                                const IcyHeartSpec& soc,
                                const PowerModel& power,
                                const PayloadModel& payload);

/// Proposed: gated system (3); normal beats transmit the peak only,
/// flagged beats the full fiducial set.
EnergyBreakdown energy_proposed(const KernelCosts& kernels,
                                const ScenarioParams& scenario,
                                const IcyHeartSpec& soc,
                                const PowerModel& power,
                                const PayloadModel& payload);

/// Relative saving helper: (base - proposed) / base.
double relative_saving(double base, double proposed);

}  // namespace hbrp::platform
