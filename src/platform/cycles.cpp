#include "platform/cycles.hpp"

#include "math/check.hpp"

namespace hbrp::platform {

KernelCosts::KernelCosts(CycleModel ops, int fs_hz, MorphologyImpl morph)
    : ops_(ops), fs_hz_(fs_hz), morph_(morph),
      filter_(dsp::FilterConfig::for_rate(fs_hz)) {
  HBRP_REQUIRE(fs_hz > 0, "KernelCosts: fs must be positive");
}

double KernelCosts::morphology_pass_per_sample(std::size_t length) const {
  if (morph_ == MorphologyImpl::NaivePerSample) {
    // For each output sample: scan the L-sample window keeping a running
    // min/max — per element one load, one compare, one conditional move,
    // plus loop branch; plus one store per sample.
    const auto len = static_cast<double>(length);
    return len * (ops_.load + 2.0 * ops_.alu + ops_.branch) + ops_.store;
  }
  // Monotonic deque: every element is pushed once and popped at most once;
  // per sample ~1 push (store + index alu), ~1 amortized pop (load +
  // compare + branch), window-eviction check, and the output store.
  return 2.0 * ops_.load + 2.0 * ops_.store + 3.0 * ops_.alu +
         2.0 * ops_.branch;
}

double KernelCosts::conditioning_per_sample() const {
  // Baseline estimate: open (erode+dilate at open_len) then close
  // (dilate+erode at close_len) -> 4 passes; subtraction -> 1 alu + ld/st.
  const double baseline =
      2.0 * morphology_pass_per_sample(filter_.baseline_open_len) +
      2.0 * morphology_pass_per_sample(filter_.baseline_close_len) +
      ops_.alu + ops_.load + ops_.store;
  // Noise suppression: open-close and close-open with the short element
  // (4 + 4 = 8 passes) plus the rounding average (2 alu + shift + ld/st).
  const double noise =
      8.0 * morphology_pass_per_sample(filter_.noise_len) + 2.0 * ops_.alu +
      ops_.shift + 2.0 * ops_.load + ops_.store;
  return baseline + noise;
}

double KernelCosts::wavelet_per_sample() const {
  // Per scale: lowpass = 3 adds + scaling shift + 4 loads + 1 store;
  // highpass = 1 subtract + 1 shift + 2 loads + 1 store.
  const double lowpass =
      3.0 * ops_.alu + ops_.shift + 4.0 * ops_.load + ops_.store;
  const double highpass =
      ops_.alu + ops_.shift + 2.0 * ops_.load + ops_.store;
  return 4.0 * (lowpass + highpass);
}

double KernelCosts::peak_logic_per_sample() const {
  // Extrema tracking (compare + direction state), adaptive threshold
  // bookkeeping and the amortized pair/zero-crossing scans.
  return 4.0 * ops_.alu + 2.0 * ops_.branch + 2.0 * ops_.load + ops_.store;
}

double KernelCosts::rp_projection_per_beat(std::size_t coefficients,
                                           std::size_t window,
                                           std::size_t downsample) const {
  HBRP_REQUIRE(downsample >= 1, "rp_projection_per_beat(): downsample >= 1");
  const auto d = static_cast<double>(window / downsample);
  // Downsampling: accumulate `window` samples, one shift+store per output.
  const double ds_cost =
      static_cast<double>(window) * (ops_.load + ops_.alu) +
      d * (ops_.shift + ops_.store);
  // Packed projection: per element 2-bit extract (shift + mask), branch on
  // the code, conditional add/sub, amortized quarter byte-load per element.
  const double per_element = 2.0 * ops_.shift + ops_.branch + ops_.alu +
                             0.25 * ops_.load;
  return ds_cost + static_cast<double>(coefficients) * d * per_element +
         static_cast<double>(coefficients) * ops_.store;
}

double KernelCosts::nfc_per_beat(std::size_t coefficients) const {
  // MF eval per (coefficient, class): |x - c| (subtract + abs), three
  // breakpoint compares/branches, one slope multiply + shift, table loads.
  const double mf_eval = 2.0 * ops_.alu + 3.0 * ops_.branch + ops_.mul +
                         ops_.shift + 2.0 * ops_.load;
  // Fuzzification per coefficient: 3-way max (2 cmp), CLZ (1), 3 x
  // (shift-left, shift-right-16, multiply).
  const double fuzz_step = 2.0 * ops_.alu + ops_.shift +
                           3.0 * (2.0 * ops_.shift + ops_.mul);
  // Defuzzification: max/2nd-max scan, 64-bit widening multiply (2 muls),
  // compare.
  const double defuzz = 6.0 * ops_.alu + 2.0 * ops_.mul + 2.0 * ops_.branch;
  const auto k = static_cast<double>(coefficients);
  return k * 3.0 * mf_eval + k * fuzz_step + defuzz;
}

double KernelCosts::drift_update_per_beat(std::size_t coefficients,
                                          std::size_t clusters) const {
  // Distance scan, per (cluster, coefficient): centroid load, subtract,
  // square (multiply), accumulate. Per cluster: squared-distance compare +
  // branch for the argmin and the seeded-nearest tracks (no sqrt on the
  // embedded path — thresholds compare squared).
  const double dist_elem = ops_.load + 2.0 * ops_.alu + ops_.mul;
  const double per_cluster =
      static_cast<double>(coefficients) * dist_elem + 2.0 * ops_.alu +
      2.0 * ops_.branch;
  // Welford update of the winning centroid: one reciprocal-mass divide per
  // beat, then per coefficient mean/M2 loads+stores, delta adds, two
  // multiplies.
  const double welford =
      ops_.div + static_cast<double>(coefficients) *
                     (2.0 * ops_.load + 2.0 * ops_.store + 3.0 * ops_.alu +
                      2.0 * ops_.mul);
  // Novelty ring buffer + windowed-score compare + alarm latch.
  const double window =
      2.0 * ops_.load + ops_.store + 3.0 * ops_.alu + 2.0 * ops_.branch;
  return static_cast<double>(clusters) * per_cluster + welford + window;
}

double KernelCosts::rp_classifier_per_beat(std::size_t coefficients,
                                           std::size_t window,
                                           std::size_t downsample) const {
  return rp_projection_per_beat(coefficients, window, downsample) +
         nfc_per_beat(coefficients);
}

double KernelCosts::delineation_per_beat(std::size_t num_leads) const {
  // Per lead: a ~1.5 s crop is analyzed.
  const double crop_samples = 1.5 * fs_hz_;
  // Two MMD responses (QRS scale ~0.06 s, wave scale ~0.14 s): each is an
  // erosion + a dilation + the combine (2 alu + ld/st) over the crop.
  const double mmd_qrs =
      crop_samples * (2.0 * morphology_pass_per_sample(
                                static_cast<std::size_t>(0.06 * fs_hz_) | 1) +
                      2.0 * ops_.alu + ops_.load + ops_.store);
  const double mmd_wave =
      crop_samples * (2.0 * morphology_pass_per_sample(
                                static_cast<std::size_t>(0.14 * fs_hz_) | 1) +
                      2.0 * ops_.alu + ops_.load + ops_.store);
  // Boundary scans and P/T searches: a few linear passes over the crop.
  const double scans =
      3.0 * crop_samples * (ops_.load + 2.0 * ops_.alu + ops_.branch);
  const double per_lead = mmd_qrs + mmd_wave + scans;
  // Median fusion across leads: negligible but non-zero.
  const double fusion = 9.0 * 8.0 * ops_.alu;
  return static_cast<double>(num_leads) * per_lead + fusion;
}

}  // namespace hbrp::platform
