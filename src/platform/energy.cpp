#include "platform/energy.hpp"

#include "math/check.hpp"

namespace hbrp::platform {

namespace {

double mcu_power(double duty, const PowerModel& power) {
  HBRP_REQUIRE(duty >= 0.0 && duty <= 1.0,
               "energy model: duty cycle out of [0, 1] — workload exceeds "
               "the platform's real-time capacity");
  return duty * power.mcu_active_w + (1.0 - duty) * power.mcu_sleep_w;
}

}  // namespace

EnergyBreakdown energy_baseline(const KernelCosts& kernels,
                                const ScenarioParams& scenario,
                                const IcyHeartSpec& soc,
                                const PowerModel& power,
                                const PayloadModel& payload) {
  EnergyBreakdown out;
  const double duty = load_subsystem2(kernels, scenario).duty_cycle(soc);
  out.compute_w = mcu_power(duty, power);
  const double bytes_per_s =
      scenario.beat_rate_hz * static_cast<double>(payload.full_beat_bytes());
  out.radio_w = bytes_per_s * power.radio_j_per_byte;
  out.rest_w = power.rest_of_node_w;
  return out;
}

EnergyBreakdown energy_proposed(const KernelCosts& kernels,
                                const ScenarioParams& scenario,
                                const IcyHeartSpec& soc,
                                const PowerModel& power,
                                const PayloadModel& payload) {
  EnergyBreakdown out;
  const double duty = load_system3(kernels, scenario).duty_cycle(soc);
  out.compute_w = mcu_power(duty, power);
  const double normal_rate =
      scenario.beat_rate_hz * (1.0 - scenario.flagged_fraction);
  const double flagged_rate = scenario.beat_rate_hz * scenario.flagged_fraction;
  const double bytes_per_s =
      normal_rate * static_cast<double>(payload.normal_beat_bytes()) +
      flagged_rate * static_cast<double>(payload.full_beat_bytes());
  out.radio_w = bytes_per_s * power.radio_j_per_byte;
  out.rest_w = power.rest_of_node_w;
  return out;
}

double relative_saving(double base, double proposed) {
  HBRP_REQUIRE(base > 0.0, "relative_saving(): base must be positive");
  return (base - proposed) / base;
}

}  // namespace hbrp::platform
