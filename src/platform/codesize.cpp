#include "platform/codesize.hpp"

namespace hbrp::platform {

namespace {
double total_bytes(const std::vector<CodeItem>& items) {
  double acc = 0.0;
  for (const CodeItem& it : items) acc += it.bytes;
  return acc;
}
constexpr double kKb = 1024.0;
}  // namespace

CodeSizeModel::CodeSizeModel() {
  // RP classifier stage: 2-bit projection kernel, MF tables + evaluation,
  // fuzzification/defuzzification. Total 1.64 KB.
  rp_classifier_ = {
      {"rp_project_packed", 420.0},
      {"mf_linear_eval", 300.0},
      {"fuzzify_renorm", 390.0},
      {"defuzzify_int", 180.0},
      {"classifier_tables_glue", 389.0},
  };

  // Filtering + peak detection (single lead) — with sub-system (1) control
  // code this accounts for 30.29 - 1.64 = 28.65 KB.
  acquisition_ = {
      {"morph_erode_dilate", 3600.0},
      {"baseline_removal", 2900.0},
      {"noise_suppression", 2700.0},
      {"wavelet_atrous_4scale", 5400.0},
      {"modmax_pair_search", 4400.0},
      {"zero_crossing_refine", 2100.0},
      {"adaptive_threshold", 2300.0},
      {"searchback", 1900.0},
      {"beat_buffering_control", 4037.6},
  };

  // Three-lead delineation stage: per-lead MMD machinery, wave searches,
  // multi-lead fusion and its own filtering of the two extra leads.
  // Total 46.39 KB.
  delineation_ = {
      {"mmd_operator", 5200.0},
      {"qrs_boundary_scan", 4700.0},
      {"p_wave_search", 5400.0},
      {"t_wave_search", 5400.0},
      {"multilead_fusion", 3800.0},
      {"extra_lead_filtering", 9800.0},
      {"fiducial_encoding", 3600.0},
      {"delineation_control", 9603.4},
  };
}

double CodeSizeModel::rp_classifier_kb() const {
  return total_bytes(rp_classifier_) / kKb;
}

double CodeSizeModel::subsystem1_kb() const {
  return (total_bytes(rp_classifier_) + total_bytes(acquisition_)) / kKb;
}

double CodeSizeModel::subsystem2_kb() const {
  return total_bytes(delineation_) / kKb;
}

double CodeSizeModel::system3_kb() const {
  return subsystem1_kb() + subsystem2_kb();
}

}  // namespace hbrp::platform
