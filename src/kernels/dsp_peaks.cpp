#include "kernels/dsp_peaks.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "math/check.hpp"
#include "math/stats.hpp"

namespace hbrp::kernels {

namespace {

using dsp::PeakDetectorConfig;
using dsp::Sample;
using dsp::Signal;
using Extremum = PeakScratch::Extremum;
using Candidate = PeakScratch::Candidate;

// The helpers below are the same algorithm steps as dsp/peak_detect.cpp,
// writing into caller-owned vectors instead of returning fresh ones. Keep
// the arithmetic in lockstep with the reference: detect_r_peaks_block is
// contractually bit-identical to dsp::detect_r_peaks.

void local_extrema(const Signal& w, std::vector<Extremum>& out) {
  out.clear();
  if (w.size() < 3) return;
  int prev_dir = 0;
  std::size_t last_change = 0;
  for (std::size_t i = 1; i < w.size(); ++i) {
    const int dir = w[i] > w[i - 1] ? 1 : (w[i] < w[i - 1] ? -1 : 0);
    if (dir == 0) continue;
    if (prev_dir == 1 && dir == -1) out.push_back({last_change, w[last_change]});
    if (prev_dir == -1 && dir == 1) out.push_back({last_change, w[last_change]});
    prev_dir = dir;
    last_change = i;
  }
}

void threshold_envelope(const Signal& w, const PeakDetectorConfig& cfg,
                        std::vector<double>& block_max,
                        std::vector<double>& thr) {
  const auto block = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.block_s * cfg.fs_hz));
  block_max.clear();
  for (std::size_t start = 0; start < w.size(); start += block) {
    const std::size_t end = std::min(w.size(), start + block);
    Sample m = 0;
    for (std::size_t i = start; i < end; ++i)
      m = std::max(m, static_cast<Sample>(std::abs(w[i])));
    block_max.push_back(static_cast<double>(m));
  }
  if (block_max.empty()) {
    thr.clear();
    return;
  }
  const double med = hbrp::math::median(block_max);
  thr.resize(w.size());
  for (std::size_t start = 0, b = 0; start < w.size(); start += block, ++b) {
    const double env = std::clamp(block_max[b], 0.5 * med, 2.0 * med);
    const std::size_t end = std::min(w.size(), start + block);
    for (std::size_t i = start; i < end; ++i)
      thr[i] = cfg.threshold_frac * env;
  }
}

std::size_t zero_crossing(const Signal& w, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    const bool crosses =
        (w[i] >= 0 && w[i + 1] < 0) || (w[i] <= 0 && w[i + 1] > 0);
    if (crosses) return std::abs(w[i]) <= std::abs(w[i + 1]) ? i : i + 1;
  }
  return (lo + hi) / 2;
}

void scan_pairs(const Signal& w, const std::vector<Extremum>& ext,
                const std::vector<double>& thr, const Signal& fine,
                const std::vector<double>& fine_thr, double scale,
                double confirm_frac, std::size_t lo, std::size_t hi,
                std::size_t pair_window, std::vector<Candidate>& out) {
  for (std::size_t e = 0; e + 1 < ext.size(); ++e) {
    const Extremum& a = ext[e];
    const Extremum& b = ext[e + 1];
    if (a.index < lo || b.index >= hi) continue;
    if (b.index - a.index > pair_window) continue;
    if ((a.value > 0) == (b.value > 0)) continue;
    const double ta = scale * thr[a.index];
    const double tb = scale * thr[b.index];
    if (std::abs(a.value) < ta || std::abs(b.value) < tb) continue;

    double fine_max = 0.0;
    for (std::size_t i = a.index; i <= b.index; ++i)
      fine_max = std::max(fine_max, std::abs(static_cast<double>(fine[i])));
    if (fine_max < confirm_frac * fine_thr[(a.index + b.index) / 2]) continue;

    Candidate c;
    c.peak = zero_crossing(w, a.index, b.index);
    c.strength = std::abs(static_cast<double>(a.value)) +
                 std::abs(static_cast<double>(b.value));
    out.push_back(c);
  }
}

void apply_refractory(std::vector<Candidate>& cands, std::size_t refractory,
                      std::vector<Candidate>& merged) {
  std::sort(
      cands.begin(), cands.end(),
      [](const Candidate& a, const Candidate& b) { return a.peak < b.peak; });
  merged.clear();
  for (const Candidate& c : cands) {
    if (!merged.empty() && c.peak - merged.back().peak < refractory) {
      if (c.strength > merged.back().strength) merged.back() = c;
    } else {
      merged.push_back(c);
    }
  }
  cands.swap(merged);
}

// Signed-polarity apex refinement shared by both detectors (see the long
// comment in dsp/peak_detect.cpp): pick the record's dominant R polarity,
// then move each candidate to the signed extremum within +-radius.
void refine_apexes(const Signal& conditioned,
                   const std::vector<Candidate>& cands,
                   std::size_t refine_radius, std::vector<std::size_t>& peaks) {
  std::int64_t polarity_acc = 0;
  for (const Candidate& c : cands) {
    const std::size_t lo = c.peak > refine_radius ? c.peak - refine_radius : 0;
    const std::size_t hi =
        std::min(conditioned.size() - 1, c.peak + refine_radius);
    Sample mx = conditioned[c.peak], mn = conditioned[c.peak];
    for (std::size_t i = lo; i <= hi; ++i) {
      mx = std::max(mx, conditioned[i]);
      mn = std::min(mn, conditioned[i]);
    }
    polarity_acc += static_cast<std::int64_t>(mx) + mn;
  }
  const bool positive = polarity_acc >= 0;
  peaks.clear();
  peaks.reserve(cands.size());
  for (const Candidate& c : cands) {
    const std::size_t lo = c.peak > refine_radius ? c.peak - refine_radius : 0;
    const std::size_t hi =
        std::min(conditioned.size() - 1, c.peak + refine_radius);
    std::size_t best = c.peak;
    for (std::size_t i = lo; i <= hi; ++i) {
      if (positive ? conditioned[i] > conditioned[best]
                   : conditioned[i] < conditioned[best])
        best = i;
    }
    peaks.push_back(best);
  }
  std::sort(peaks.begin(), peaks.end());
  peaks.erase(std::unique(peaks.begin(), peaks.end()), peaks.end());
}

}  // namespace

void detect_r_peaks_block(const Signal& conditioned,
                          const PeakDetectorConfig& cfg, PeakScratch& scr,
                          std::vector<std::size_t>& peaks) {
  HBRP_REQUIRE(cfg.fs_hz > 0, "detect_r_peaks_block(): fs must be positive");
  HBRP_REQUIRE(cfg.detect_scale < dsp::kWaveletScales,
               "detect_r_peaks_block(): detect_scale out of range");
  peaks.clear();
  if (conditioned.size() < 8) return;

  wavelet_decompose_block(conditioned, dsp::kWaveletScales, scr.wavelet,
                          scr.dec);
  const Signal& w = scr.dec.detail[cfg.detect_scale];
  const Signal& fine = scr.dec.detail[cfg.detect_scale > 0
                                          ? cfg.detect_scale - 1
                                          : cfg.detect_scale];
  local_extrema(w, scr.ext);
  threshold_envelope(w, cfg, scr.block_max, scr.thr);
  threshold_envelope(fine, cfg, scr.block_max, scr.fine_thr);
  const auto pair_window =
      static_cast<std::size_t>(cfg.pair_window_s * cfg.fs_hz);
  const auto refractory =
      static_cast<std::size_t>(cfg.refractory_s * cfg.fs_hz);

  scr.cands.clear();
  scan_pairs(w, scr.ext, scr.thr, fine, scr.fine_thr, 1.0, 0.5, 0, w.size(),
             pair_window, scr.cands);

  if (cfg.detect_scale + 1 < dsp::kWaveletScales) {
    const Signal& coarse = scr.dec.detail[cfg.detect_scale + 1];
    local_extrema(coarse, scr.coarse_ext);
    threshold_envelope(coarse, cfg, scr.block_max, scr.coarse_thr);
    scan_pairs(coarse, scr.coarse_ext, scr.coarse_thr, w, scr.thr, 1.0, 1.3, 0,
               coarse.size(), 2 * pair_window, scr.cands);
  }
  apply_refractory(scr.cands, refractory, scr.merged);

  if (scr.cands.size() >= 3) {
    scr.extra.clear();
    const std::size_t window = 8;
    double mean_rr = 0.0;
    std::size_t rr_count = 0;
    for (std::size_t i = 1; i < scr.cands.size(); ++i) {
      const double rr =
          static_cast<double>(scr.cands[i].peak - scr.cands[i - 1].peak);
      if (rr_count < window) {
        mean_rr = (mean_rr * static_cast<double>(rr_count) + rr) /
                  static_cast<double>(rr_count + 1);
        ++rr_count;
      } else {
        mean_rr = 0.875 * mean_rr + 0.125 * rr;
      }
      if (rr > cfg.searchback_rr_factor * mean_rr) {
        const std::size_t lo = scr.cands[i - 1].peak + refractory;
        const std::size_t hi =
            scr.cands[i].peak > refractory ? scr.cands[i].peak - refractory : 0;
        if (lo < hi)
          scan_pairs(w, scr.ext, scr.thr, fine, scr.fine_thr,
                     cfg.searchback_frac, 0.5 * cfg.searchback_frac, lo, hi,
                     pair_window, scr.extra);
      }
    }
    if (!scr.extra.empty()) {
      scr.cands.insert(scr.cands.end(), scr.extra.begin(), scr.extra.end());
      apply_refractory(scr.cands, refractory, scr.merged);
    }
  }

  const auto refine_radius = static_cast<std::size_t>(0.08 * cfg.fs_hz);
  refine_apexes(conditioned, scr.cands, refine_radius, peaks);
}

void detect_r_peaks_adaptive(const Signal& conditioned,
                             const PeakDetectorConfig& cfg, PeakScratch& scr,
                             std::vector<std::size_t>& peaks) {
  HBRP_REQUIRE(cfg.fs_hz > 0,
               "detect_r_peaks_adaptive(): fs must be positive");
  peaks.clear();
  const std::size_t n = conditioned.size();
  if (n < 8) return;

  // Slope energy (the Pan–Tompkins derivative/square/integrate idiom).
  // The central difference before squaring attenuates T waves quadratically
  // in their frequency ratio to the QRS — tall-T records double-fire a pure
  // amplitude threshold at ~300 ms after every beat, but the T-wave upslope
  // is a tenth of the QRS upslope. The trailing ~80 ms integration window
  // then suppresses single-sample noise spikes (which otherwise reach the
  // threshold on noisy leads) while the QRS, coherent across the window,
  // keeps its energy.
  scr.thr.resize(n);
  scr.thr[0] = 0.0;
  scr.thr[n - 1] = 0.0;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double d = static_cast<double>(conditioned[i + 1]) -
                     static_cast<double>(conditioned[i - 1]);
    scr.thr[i] = d * d;
  }
  const auto integrate = std::max<std::size_t>(
      1, static_cast<std::size_t>(0.08 * cfg.fs_hz));
  scr.energy.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += scr.thr[i];
    if (i >= integrate) acc -= scr.thr[i - integrate];
    scr.energy[i] = acc;
  }

  // Seed and floor from the median per-block energy maximum, like the
  // wavelet detector's envelope: blocks nearly always contain a beat, so the
  // median tracks typical QRS energy and the floor keeps long pauses from
  // decaying the estimate into the noise.
  const auto block = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.block_s * cfg.fs_hz));
  scr.block_max.clear();
  for (std::size_t start = 0; start < n; start += block) {
    const std::size_t end = std::min(n, start + block);
    double m = 0.0;
    for (std::size_t i = start; i < end; ++i)
      m = std::max(m, scr.energy[i]);
    scr.block_max.push_back(m);
  }
  const double med = hbrp::math::median(scr.block_max);
  if (med <= 0.0) return;  // flat record: nothing to detect
  const double floor_amp = cfg.adaptive_floor_frac * med;
  const double decay = std::clamp(
      1.0 - cfg.adaptive_decay_per_s / static_cast<double>(cfg.fs_hz), 0.0,
      1.0);
  const auto refractory =
      static_cast<std::size_t>(cfg.refractory_s * cfg.fs_hz);
  const auto search = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.adaptive_search_s * cfg.fs_hz));

  double amp = med;
  std::size_t next_ok = 0;
  scr.cands.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= next_ok && scr.energy[i] >= cfg.adaptive_frac * amp) {
      // Threshold crossing on the QRS upslope: the apex is the energy
      // maximum within the short forward window.
      const std::size_t hi = std::min(n - 1, i + search);
      std::size_t apex = i;
      for (std::size_t j = i + 1; j <= hi; ++j)
        if (scr.energy[j] > scr.energy[apex]) apex = j;
      scr.cands.push_back({apex, scr.energy[apex]});
      next_ok = apex + refractory;
    }
    amp = std::max(amp * decay, std::max(scr.energy[i], floor_amp));
  }

  // Same signed-polarity apex convention as the wavelet detector, so the
  // two detectors cut beat windows at the same samples on agreement.
  const auto refine_radius = static_cast<std::size_t>(0.08 * cfg.fs_hz);
  refine_apexes(conditioned, scr.cands, refine_radius, peaks);
}

void detect_r_peaks_kind(const Signal& conditioned,
                         const PeakDetectorConfig& cfg, PeakScratch& scratch,
                         std::vector<std::size_t>& peaks) {
  if (cfg.kind == dsp::PeakDetectorKind::AdaptiveThreshold)
    detect_r_peaks_adaptive(conditioned, cfg, scratch, peaks);
  else
    detect_r_peaks_block(conditioned, cfg, scratch, peaks);
}

}  // namespace hbrp::kernels
