// Batch fuzzification kernels: float (log-domain Gaussian) and integer
// (linearized / triangular MF) membership evaluation over many beats.
//
// Layout contract. The float kernel is SoA: MF parameters are passed as two
// arrays of kFuzzyClasses * k doubles laid out [class][coefficient] —
// `centers` holds the Gaussian centres and `nhiv` the precomputed
// -1 / (2 sigma^2) factors, so the per-element work is one subtract, one
// multiply-square and one multiply-accumulate, with no division and no exp
// (exp happens once per class per beat, after the sum, in the caller).
//
// Dispatch. The public entry points select between a portable scalar form
// and an AVX2 form via kernels::active_level() (see cpu.hpp). Both forms of
// each kernel execute the *same* IEEE operation sequence per element — the
// AVX2 forms vectorize across beats, keeping per-beat accumulation order
// sequential in k, and are compiled without FMA contraction — so scalar and
// AVX2 results are bit-identical and HBRP_FORCE_SCALAR=1 can never change a
// classification. tests/test_kernels.cpp gates this.
//
// The integer kernels mirror embedded::LinearizedMF / TriangularMF::eval
// exactly (those structs delegate to the scalar grades below); the AVX2
// linearized form replaces the two per-element 64-bit divisions with an
// exact reciprocal-multiply-and-fixup in double precision, which yields the
// same floor quotient for every reachable operand (see fuzzify_avx2.cpp).
#pragma once

#include <cstdint>
#include <cstdlib>

#include "kernels/cpu.hpp"

namespace hbrp::kernels {

/// Class count the fuzzify kernels are specialized for ({N, V, L}).
inline constexpr std::size_t kFuzzyClasses = 3;

/// Quantized Gaussian grade at S = 2.35 sigma from the centre:
/// round(exp(-2.35^2 / 2) * 65535). Canonical home of the constant shared
/// by the embedded MFs and the batch kernels.
inline constexpr std::uint16_t kLinGradeAtS = 4147;

/// |x - c| without signed overflow (int32 differences can exceed int32).
inline std::uint32_t abs_distance(std::int32_t x, std::int32_t c) noexcept {
  const std::int64_t d = static_cast<std::int64_t>(x) - c;
  return static_cast<std::uint32_t>(d >= 0 ? d : -d);
}

/// Four-segment linearized MF grade in [0, 65535] — the canonical scalar
/// form; embedded::LinearizedMF::eval delegates here.
inline std::uint16_t linearized_grade(std::int32_t center, std::uint32_t s,
                                      std::int32_t x) noexcept {
  const std::uint32_t dist = abs_distance(x, center);
  if (dist >= 4 * static_cast<std::uint64_t>(s)) return 0;
  if (dist >= 2 * static_cast<std::uint64_t>(s)) return 1;
  if (dist >= s) {
    // Shallow segment: kLinGradeAtS at S down to 1 at 2S.
    const std::uint64_t drop =
        static_cast<std::uint64_t>(dist - s) * (kLinGradeAtS - 1);
    return static_cast<std::uint16_t>(kLinGradeAtS - drop / s);
  }
  // Steep segment: 65535 at the centre down to kLinGradeAtS at S.
  const std::uint64_t drop =
      static_cast<std::uint64_t>(dist) * (65535 - kLinGradeAtS);
  return static_cast<std::uint16_t>(65535 - drop / s);
}

/// Triangular MF grade in [0, 65535] — canonical scalar form;
/// embedded::TriangularMF::eval delegates here.
inline std::uint16_t triangular_grade(std::int32_t center,
                                      std::uint32_t half_base,
                                      std::int32_t x) noexcept {
  const std::uint32_t dist = abs_distance(x, center);
  if (dist >= half_base) return 0;
  const std::uint64_t drop = static_cast<std::uint64_t>(dist) * 65535;
  return static_cast<std::uint16_t>(65535 - drop / half_base);
}

/// Log-domain fuzzy values for `count` beats at once.
/// `u` is row-major [count][k]; `centers` and `nhiv` are [kFuzzyClasses][k]
/// (nhiv[l][j] = -1 / (2 sigma_{l,j}^2)); `out` is row-major
/// [count][kFuzzyClasses], out[i][l] = sum_j (u[i][j] - c[l][j])^2 * nhiv[l][j]
/// accumulated in j order. Dispatches scalar / AVX2.
void log_fuzzy_batch(const double* u, std::size_t count, std::size_t k,
                     const double* centers, const double* nhiv, double* out);
void log_fuzzy_batch_scalar(const double* u, std::size_t count, std::size_t k,
                            const double* centers, const double* nhiv,
                            double* out);

/// grades[i] = linearized_grade(center, s, x[i]) for i < n. Dispatches.
void linearized_eval_batch(std::int32_t center, std::uint32_t s,
                           const std::int32_t* x, std::size_t n,
                           std::uint16_t* grades);
void linearized_eval_batch_scalar(std::int32_t center, std::uint32_t s,
                                  const std::int32_t* x, std::size_t n,
                                  std::uint16_t* grades);

/// grades[i] = triangular_grade(center, half_base, x[i]) for i < n.
/// Scalar only: the triangular shape is the paper's Fig. 5 ablation
/// baseline, not the deployed hot path.
void triangular_eval_batch(std::int32_t center, std::uint32_t half_base,
                           const std::int32_t* x, std::size_t n,
                           std::uint16_t* grades);

#if HBRP_KERNELS_X86
void log_fuzzy_batch_avx2(const double* u, std::size_t count, std::size_t k,
                          const double* centers, const double* nhiv,
                          double* out);
void linearized_eval_batch_avx2(std::int32_t center, std::uint32_t s,
                                const std::int32_t* x, std::size_t n,
                                std::uint16_t* grades);
#endif

}  // namespace hbrp::kernels
