// Runtime CPU dispatch for the kernel layer.
//
// The kernel layer ships two implementations of each hot primitive: a
// portable scalar form and an AVX2 form. Which one runs is decided once per
// process from the host CPU's capabilities, overridable for debugging with
// HBRP_FORCE_SCALAR=1 (see README). The AVX2 kernels are written to be
// bit-identical to the scalar ones — same IEEE operation sequence per
// element, no FMA contraction — so the dispatch decision can never change
// results, only throughput.
#pragma once

#include <string>

#if defined(__x86_64__) || defined(__i386__)
#define HBRP_KERNELS_X86 1
#else
#define HBRP_KERNELS_X86 0
#endif

namespace hbrp::kernels {

enum class SimdLevel : unsigned char { Scalar, Avx2 };

const char* to_string(SimdLevel level);

/// Raw capability probe (no env override, no caching).
bool cpu_supports_avx2();

/// Pure resolution rule, exposed for unit tests: `env` is the value of
/// HBRP_FORCE_SCALAR (nullptr when unset). "1", "true", "yes", "on" force
/// the scalar path; anything else defers to the capability probe.
SimdLevel resolve_level(const char* env, bool has_avx2);

/// The level every dispatching kernel uses. Resolved once on first call
/// (capability probe + HBRP_FORCE_SCALAR) and then cached.
SimdLevel active_level();

/// Host CPU model name from /proc/cpuinfo ("unknown" when unavailable).
/// Stamped into BENCH JSON reports so cross-machine numbers are
/// interpretable, and used by the CI perf gate's skip rule.
std::string cpu_model_name();

/// True when the host advertises the `hypervisor` CPUID bit (VM guest).
/// Virtualized timing is noisy; the perf gate widens its tolerance on it.
bool cpu_is_virtualized();

}  // namespace hbrp::kernels
