#include "kernels/fuzzify.hpp"

namespace hbrp::kernels {

void log_fuzzy_batch_scalar(const double* u, std::size_t count, std::size_t k,
                            const double* centers, const double* nhiv,
                            double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const double* row = u + i * k;
    double* o = out + i * kFuzzyClasses;
    for (std::size_t l = 0; l < kFuzzyClasses; ++l) {
      const double* c = centers + l * k;
      const double* h = nhiv + l * k;
      double acc = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        const double d = row[j] - c[j];
        acc += (d * d) * h[j];
      }
      o[l] = acc;
    }
  }
}

void linearized_eval_batch_scalar(std::int32_t center, std::uint32_t s,
                                  const std::int32_t* x, std::size_t n,
                                  std::uint16_t* grades) {
  for (std::size_t i = 0; i < n; ++i)
    grades[i] = linearized_grade(center, s, x[i]);
}

void triangular_eval_batch(std::int32_t center, std::uint32_t half_base,
                           const std::int32_t* x, std::size_t n,
                           std::uint16_t* grades) {
  for (std::size_t i = 0; i < n; ++i)
    grades[i] = triangular_grade(center, half_base, x[i]);
}

void log_fuzzy_batch(const double* u, std::size_t count, std::size_t k,
                     const double* centers, const double* nhiv, double* out) {
#if HBRP_KERNELS_X86
  if (active_level() == SimdLevel::Avx2) {
    log_fuzzy_batch_avx2(u, count, k, centers, nhiv, out);
    return;
  }
#endif
  log_fuzzy_batch_scalar(u, count, k, centers, nhiv, out);
}

void linearized_eval_batch(std::int32_t center, std::uint32_t s,
                           const std::int32_t* x, std::size_t n,
                           std::uint16_t* grades) {
#if HBRP_KERNELS_X86
  if (active_level() == SimdLevel::Avx2) {
    linearized_eval_batch_avx2(center, s, x, n, grades);
    return;
  }
#endif
  linearized_eval_batch_scalar(center, s, x, n, grades);
}

}  // namespace hbrp::kernels
