// AVX2 forms of the block-conditioning passes. This TU is compiled with
// -mavx2 (no FMA — the chain is pure integer, but the flag set matches the
// other AVX2 TUs). Every pass below performs the same exact integer
// min/max/add/sub/shift per element as its scalar counterpart in
// dsp_condition.cpp, so scalar and AVX2 conditioning are bit-identical by
// construction; tests/test_kernels_dsp.cpp gates it anyway.
#include "kernels/dsp_condition.hpp"

#if HBRP_KERNELS_X86

#include <immintrin.h>

#include <algorithm>
#include <limits>

namespace hbrp::kernels::detail {

namespace {

using dsp::Sample;

inline __m256i load(const Sample* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store(Sample* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

}  // namespace

void merge_extremum_avx2(const Sample* suffix, const Sample* prefix,
                         std::size_t n, bool is_min, Sample* out) {
  std::size_t i = 0;
  if (is_min) {
    for (; i + 8 <= n; i += 8)
      store(out + i, _mm256_min_epi32(load(suffix + i), load(prefix + i)));
    for (; i < n; ++i) out[i] = std::min(suffix[i], prefix[i]);
  } else {
    for (; i + 8 <= n; i += 8)
      store(out + i, _mm256_max_epi32(load(suffix + i), load(prefix + i)));
    for (; i < n; ++i) out[i] = std::max(suffix[i], prefix[i]);
  }
}

void extremum3_avx2(const Sample* x, std::size_t n, bool is_min,
                    Sample* out) {
  // Centred 3-tap window directly over the input (n >= 2, out != x):
  // out[i] = op(x[i - 1], x[i], x[i + 1]) with replicated borders, which
  // collapses to 2-tap at both ends.
  if (is_min) {
    out[0] = std::min(x[0], x[1]);
    std::size_t i = 1;
    for (; i + 9 <= n; i += 8)
      store(out + i, _mm256_min_epi32(
                         _mm256_min_epi32(load(x + i - 1), load(x + i)),
                         load(x + i + 1)));
    for (; i + 1 < n; ++i) out[i] = std::min({x[i - 1], x[i], x[i + 1]});
    out[n - 1] = std::min(x[n - 2], x[n - 1]);
  } else {
    out[0] = std::max(x[0], x[1]);
    std::size_t i = 1;
    for (; i + 9 <= n; i += 8)
      store(out + i, _mm256_max_epi32(
                         _mm256_max_epi32(load(x + i - 1), load(x + i)),
                         load(x + i + 1)));
    for (; i + 1 < n; ++i) out[i] = std::max({x[i - 1], x[i], x[i + 1]});
    out[n - 1] = std::max(x[n - 2], x[n - 1]);
  }
}

namespace {

// In-register inclusive scans (log-step shift network). `ident` fills the
// lanes shifted in: INT32_MAX for min, INT32_MIN for max, so the extra op
// is a no-op on real lanes and exactness is preserved.
template <bool IsMin>
inline __m256i vop(__m256i a, __m256i b) {
  if constexpr (IsMin) return _mm256_min_epi32(a, b);
  return _mm256_max_epi32(a, b);
}

template <bool IsMin>
inline __m256i scan_prefix8(__m256i v, __m256i ident) {
  // Shift values toward higher lanes by 1, 2, then 4, combining each time.
  __m256i t = _mm256_permute2x128_si256(v, ident, 0x02);  // [ident.lo, v.lo]
  v = vop<IsMin>(v, _mm256_alignr_epi8(v, t, 12));
  t = _mm256_permute2x128_si256(v, ident, 0x02);
  v = vop<IsMin>(v, _mm256_alignr_epi8(v, t, 8));
  v = vop<IsMin>(v, _mm256_permute2x128_si256(v, ident, 0x02));
  return v;
}

template <bool IsMin>
inline __m256i scan_suffix8(__m256i v, __m256i ident) {
  // Mirror image: shift values toward lower lanes by 1, 2, then 4.
  __m256i t = _mm256_permute2x128_si256(v, ident, 0x21);  // [v.hi, ident.lo]
  v = vop<IsMin>(v, _mm256_alignr_epi8(t, v, 4));
  t = _mm256_permute2x128_si256(v, ident, 0x21);
  v = vop<IsMin>(v, _mm256_alignr_epi8(t, v, 8));
  v = vop<IsMin>(v, _mm256_permute2x128_si256(v, ident, 0x21));
  return v;
}

template <bool IsMin>
inline Sample sop(Sample a, Sample b) {
  if constexpr (IsMin) return a < b ? a : b;
  return a > b ? a : b;
}

template <bool IsMin>
void prefix_scan_blocks(const Sample* q, std::size_t total,
                        std::size_t block_len, Sample* out) {
  const Sample identity =
      IsMin ? std::numeric_limits<Sample>::max()
            : std::numeric_limits<Sample>::min();
  const __m256i identv = _mm256_set1_epi32(identity);
  for (std::size_t b = 0; b < total; b += block_len) {
    const std::size_t end = std::min(total, b + block_len);
    __m256i carry = identv;
    std::size_t j = b;
    for (; j + 8 <= end; j += 8) {
      __m256i v = scan_prefix8<IsMin>(load(q + j), identv);
      v = vop<IsMin>(v, carry);
      store(out + j, v);
      // Broadcast the last lane as the next chunk's carry-in.
      carry = _mm256_permutevar8x32_epi32(v, _mm256_set1_epi32(7));
    }
    Sample run = _mm256_cvtsi256_si32(carry);
    for (; j < end; ++j) {
      run = sop<IsMin>(run, q[j]);
      out[j] = run;
    }
  }
}

template <bool IsMin>
void suffix_scan_blocks(Sample* q, std::size_t total, std::size_t block_len) {
  const Sample identity =
      IsMin ? std::numeric_limits<Sample>::max()
            : std::numeric_limits<Sample>::min();
  const __m256i identv = _mm256_set1_epi32(identity);
  for (std::size_t b = 0; b < total; b += block_len) {
    const std::size_t end = std::min(total, b + block_len);
    const std::size_t len = end - b;
    const std::size_t vec_end = b + (len / 8) * 8;  // vector region [b, vec_end)
    Sample run = identity;
    for (std::size_t j = end; j-- > vec_end;) {
      run = sop<IsMin>(run, q[j]);
      q[j] = run;
    }
    __m256i carry = _mm256_set1_epi32(run);
    for (std::size_t j = vec_end; j > b; j -= 8) {
      __m256i v = scan_suffix8<IsMin>(load(q + j - 8), identv);
      v = vop<IsMin>(v, carry);
      store(q + j - 8, v);
      carry = _mm256_broadcastd_epi32(_mm256_castsi256_si128(v));
    }
  }
}

}  // namespace

void prefix_scan_blocks_avx2(const Sample* q, std::size_t total,
                             std::size_t block_len, bool is_min, Sample* out) {
  if (is_min)
    prefix_scan_blocks<true>(q, total, block_len, out);
  else
    prefix_scan_blocks<false>(q, total, block_len, out);
}

void suffix_scan_blocks_avx2(Sample* q, std::size_t total,
                             std::size_t block_len, bool is_min) {
  if (is_min)
    suffix_scan_blocks<true>(q, total, block_len);
  else
    suffix_scan_blocks<false>(q, total, block_len);
}

void subtract_avx2(const Sample* a, const Sample* b, std::size_t n,
                   Sample* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    store(out + i, _mm256_sub_epi32(load(a + i), load(b + i)));
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void average_round_avx2(const Sample* a, const Sample* b, std::size_t n,
                        Sample* out) {
  // (a + b + 1) >> 1 with an arithmetic shift, matching the scalar form
  // (and dsp::suppress_noise) on negative sums.
  const __m256i one = _mm256_set1_epi32(1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i sum =
        _mm256_add_epi32(_mm256_add_epi32(load(a + i), load(b + i)), one);
    store(out + i, _mm256_srai_epi32(sum, 1));
  }
  for (; i < n; ++i) out[i] = (a[i] + b[i] + 1) >> 1;
}

}  // namespace hbrp::kernels::detail

#endif  // HBRP_KERNELS_X86
