#include "kernels/dsp_condition.hpp"

#include <algorithm>

#include "math/check.hpp"

namespace hbrp::kernels {

namespace {

using dsp::Sample;
using dsp::Signal;

template <bool IsMin>
inline Sample op2(Sample a, Sample b) {
  if constexpr (IsMin)
    return a < b ? a : b;
  else
    return a > b ? a : b;
}

// Edge-replicated padded copy q[j] = x[clamp(j - h, 0, n - 1)], j in [0, N).
void build_padded(const Sample* x, std::size_t n, std::size_t h,
                  Signal& padded) {
  padded.resize(n + 2 * h);
  std::fill_n(padded.data(), h, x[0]);
  std::copy_n(x, n, padded.data() + h);
  std::fill_n(padded.data() + h + n, h, x[n - 1]);
}

// van Herk–Gil-Werman sliding extremum over a centred window of odd length
// L: partition the padded signal into blocks of L, compute a suffix scan S
// (extremum from j to its block's end) and a prefix scan R (extremum from
// its block's start to j); the window [c, c + L - 1] straddles at most one
// block boundary, so out[c] = op(S[c], R[c + L - 1]) — three comparisons
// per sample however long the structuring element is. min/max over the same
// window is exact, so this is bit-identical to the monotonic-deque form in
// dsp/morphology.cpp.
template <bool IsMin>
void hgw_extremum(const Sample* x, std::size_t n, std::size_t L,
                  SimdLevel level, ConditionScratch& scr, Sample* out) {
  if (n == 0) return;
  if (L == 1) {
    if (out != x) std::copy_n(x, n, out);
    return;
  }
  if (L == 3) {
    // The noise element is this short at every supported rate; a direct
    // 3-tap pass over the unpadded input (border replication folds into
    // 2-tap ends) beats the two scans. Requires out != x — the chain
    // always ping-pongs between distinct scratch buffers.
    if (n == 1) {
      out[0] = x[0];
      return;
    }
#if HBRP_KERNELS_X86
    if (level == SimdLevel::Avx2) {
      detail::extremum3_avx2(x, n, IsMin, out);
      return;
    }
#endif
    (void)level;
    out[0] = op2<IsMin>(x[0], x[1]);
    for (std::size_t i = 1; i + 1 < n; ++i)
      out[i] = op2<IsMin>(op2<IsMin>(x[i - 1], x[i]), x[i + 1]);
    out[n - 1] = op2<IsMin>(x[n - 2], x[n - 1]);
    return;
  }

  const std::size_t h = L / 2;
  build_padded(x, n, h, scr.padded);
  const std::size_t N = n + 2 * h;

  // Prefix scan R into scr.prefix (reads the untouched padded values),
  // restarting at every block boundary, then suffix scan S in place over
  // padded. Block-at-a-time loops keep the inner scans branch-free (no
  // per-sample modulo); the AVX2 forms run the same exact min/max scan as
  // a log-step shift network.
  scr.prefix.resize(N);
#if HBRP_KERNELS_X86
  if (level == SimdLevel::Avx2) {
    detail::prefix_scan_blocks_avx2(scr.padded.data(), N, L, IsMin,
                                    scr.prefix.data());
    detail::suffix_scan_blocks_avx2(scr.padded.data(), N, L, IsMin);
  } else
#endif
  {
    {
      const Sample* q = scr.padded.data();
      Sample* r = scr.prefix.data();
      for (std::size_t b = 0; b < N; b += L) {
        const std::size_t end = std::min(N, b + L);
        Sample run = q[b];
        r[b] = run;
        for (std::size_t j = b + 1; j < end; ++j) {
          run = op2<IsMin>(run, q[j]);
          r[j] = run;
        }
      }
    }
    {
      Sample* q = scr.padded.data();
      for (std::size_t b = 0; b < N; b += L) {
        const std::size_t end = std::min(N, b + L);
        for (std::size_t j = end - 1; j-- > b;)
          q[j] = op2<IsMin>(q[j], q[j + 1]);
      }
    }
  }
  // Merge: out[c] = op(S[c], R[c + L - 1]).
  const Sample* s = scr.padded.data();
  const Sample* r = scr.prefix.data() + (L - 1);
#if HBRP_KERNELS_X86
  if (level == SimdLevel::Avx2) {
    detail::merge_extremum_avx2(s, r, n, IsMin, out);
    return;
  }
#endif
  for (std::size_t c = 0; c < n; ++c) out[c] = op2<IsMin>(s[c], r[c]);
}

void subtract(const Sample* a, const Sample* b, std::size_t n, Sample* out,
              SimdLevel level) {
#if HBRP_KERNELS_X86
  if (level == SimdLevel::Avx2) {
    detail::subtract_avx2(a, b, n, out);
    return;
  }
#endif
  (void)level;
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void average_round(const Sample* a, const Sample* b, std::size_t n,
                   Sample* out, SimdLevel level) {
#if HBRP_KERNELS_X86
  if (level == SimdLevel::Avx2) {
    detail::average_round_avx2(a, b, n, out);
    return;
  }
#endif
  (void)level;
  // Round-to-nearest average, same arithmetic-shift form as
  // dsp::suppress_noise (operands are 11-bit scale, no overflow).
  for (std::size_t i = 0; i < n; ++i) out[i] = (a[i] + b[i] + 1) >> 1;
}

void check_config(const dsp::FilterConfig& cfg) {
  HBRP_REQUIRE(cfg.baseline_open_len % 2 == 1 &&
                   cfg.baseline_close_len % 2 == 1 && cfg.noise_len % 2 == 1,
               "condition_ecg_block(): element lengths must be odd");
  HBRP_REQUIRE(cfg.baseline_open_len < cfg.baseline_close_len,
               "condition_ecg_block(): baseline opening element must be "
               "shorter than closing one");
}

void condition_impl(const Signal& x, const dsp::FilterConfig& cfg,
                    SimdLevel level, ConditionScratch& scr, Signal& out) {
  check_config(cfg);
  const std::size_t n = x.size();
  out.resize(n);
  if (n == 0) return;
  const std::size_t open_len = cfg.baseline_open_len;
  const std::size_t close_len = cfg.baseline_close_len;
  const std::size_t noise_len = cfg.noise_len;

  auto mn = [&](const Signal& in, std::size_t len, Signal& o) {
    o.resize(in.size());
    hgw_extremum<true>(in.data(), in.size(), len, level, scr, o.data());
  };
  auto mx = [&](const Signal& in, std::size_t len, Signal& o) {
    o.resize(in.size());
    hgw_extremum<false>(in.data(), in.size(), len, level, scr, o.data());
  };

  // Baseline estimate: close(open(x, open_len), close_len).
  mn(x, open_len, scr.stage_a);
  mx(scr.stage_a, open_len, scr.stage_b);
  mx(scr.stage_b, close_len, scr.stage_a);
  mn(scr.stage_a, close_len, scr.baseline);

  // z = x - baseline.
  scr.z.resize(n);
  subtract(x.data(), scr.baseline.data(), n, scr.z.data(), level);

  // oc = open(close(z)) = dilate(erode(erode(dilate(z)))).
  mx(scr.z, noise_len, scr.stage_a);
  mn(scr.stage_a, noise_len, scr.stage_b);
  mn(scr.stage_b, noise_len, scr.stage_a);
  mx(scr.stage_a, noise_len, scr.oc);

  // co = close(open(z)) = erode(dilate(dilate(erode(z)))).
  mn(scr.z, noise_len, scr.stage_a);
  mx(scr.stage_a, noise_len, scr.stage_b);
  mx(scr.stage_b, noise_len, scr.stage_a);
  mn(scr.stage_a, noise_len, scr.co);

  average_round(scr.oc.data(), scr.co.data(), n, out.data(), level);
}

}  // namespace

void erode_block(const Signal& x, std::size_t length, ConditionScratch& scr,
                 Signal& out) {
  HBRP_REQUIRE(length >= 1 && length % 2 == 1,
               "erode_block(): length must be odd and >= 1");
  out.resize(x.size());
  hgw_extremum<true>(x.data(), x.size(), length, active_level(), scr,
                     out.data());
}

void dilate_block(const Signal& x, std::size_t length, ConditionScratch& scr,
                  Signal& out) {
  HBRP_REQUIRE(length >= 1 && length % 2 == 1,
               "dilate_block(): length must be odd and >= 1");
  out.resize(x.size());
  hgw_extremum<false>(x.data(), x.size(), length, active_level(), scr,
                      out.data());
}

void condition_ecg_block(const Signal& x, const dsp::FilterConfig& cfg,
                         ConditionScratch& scratch, Signal& out) {
  condition_impl(x, cfg, active_level(), scratch, out);
}

void condition_ecg_block_scalar(const Signal& x, const dsp::FilterConfig& cfg,
                                ConditionScratch& scratch, Signal& out) {
  condition_impl(x, cfg, SimdLevel::Scalar, scratch, out);
}

#if HBRP_KERNELS_X86
void condition_ecg_block_avx2(const Signal& x, const dsp::FilterConfig& cfg,
                              ConditionScratch& scratch, Signal& out) {
  condition_impl(x, cfg, SimdLevel::Avx2, scratch, out);
}
#endif

BlockConditioner::BlockConditioner(const dsp::FilterConfig& cfg) : cfg_(cfg) {
  check_config(cfg);
  delay_ = (cfg.baseline_open_len - 1) + (cfg.baseline_close_len - 1) +
           2 * (cfg.noise_len - 1);
  history_.reserve(2 * delay_);
  pending_.reserve(kMinBatch);
}

void BlockConditioner::push(dsp::Sample x, Signal& out) {
  pending_.push_back(x);
  if (pending_.size() >= kMinBatch) process_pending(out);
}

void BlockConditioner::push_block(std::span<const Sample> xs, Signal& out) {
  pending_.insert(pending_.end(), xs.begin(), xs.end());
  if (pending_.size() >= kMinBatch) process_pending(out);
}

void BlockConditioner::sync(Signal& out) {
  if (!pending_.empty()) process_pending(out);
}

void BlockConditioner::process_pending(Signal& out) {
  const std::uint64_t total = consumed_ + pending_.size();
  // Condition over the raw history plus the new batch. Every output of
  // index a in [emitted_, total - delay_) reads inputs [a - delay_,
  // a + delay_], and the window keeps 2*delay_ samples of left context, so
  // those outputs never see the window's replicated left border: each one
  // is bit-identical to conditioning the whole stream from sample 0.
  window_.clear();
  window_.insert(window_.end(), history_.begin(), history_.end());
  window_.insert(window_.end(), pending_.begin(), pending_.end());
  const std::uint64_t w0 = total - window_.size();
  condition_ecg_block(window_, cfg_, scratch_, window_out_);
  const std::uint64_t new_emit = total > delay_ ? total - delay_ : 0;
  if (new_emit > emitted_) {
    const auto lo = static_cast<std::ptrdiff_t>(emitted_ - w0);
    const auto hi = static_cast<std::ptrdiff_t>(new_emit - w0);
    out.insert(out.end(), window_out_.begin() + lo, window_out_.begin() + hi);
    emitted_ = new_emit;
  }
  history_.insert(history_.end(), pending_.begin(), pending_.end());
  if (history_.size() > 2 * delay_)
    history_.erase(history_.begin(),
                   history_.end() - static_cast<std::ptrdiff_t>(2 * delay_));
  consumed_ = total;
  pending_.clear();
}

void BlockConditioner::flush_tail(Signal& out) {
  if (!pending_.empty()) process_pending(out);
  if (consumed_ > emitted_) {
    // The final window's batch right border replicates the last sample —
    // exactly the tail dsp::StreamingConditioner::flush() emits.
    window_.assign(history_.begin(), history_.end());
    const std::uint64_t w0 = consumed_ - window_.size();
    condition_ecg_block(window_, cfg_, scratch_, window_out_);
    out.insert(out.end(),
               window_out_.begin() + static_cast<std::ptrdiff_t>(emitted_ - w0),
               window_out_.end());
  }
  reset();
}

void BlockConditioner::reset() {
  history_.clear();
  pending_.clear();
  consumed_ = 0;
  emitted_ = 0;
}

}  // namespace hbrp::kernels
