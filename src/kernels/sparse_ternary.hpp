// Sparse-index execution format for ternary projection matrices.
//
// Storage and execution are different problems. The 2-bit packed form
// (rp::PackedTernaryMatrix) is the paper's *storage* answer — Section III-B
// packs {+1, -1, 0} into two bits so the matrix fits a 96 KB WBSN — and
// stays the serialization format. But executing from it decodes every
// element of every row per beat, zeros included, even though an Achlioptas
// matrix is 2/3 structural zeros (P(0) = 2/3, Achlioptas JCSS 2003 — and
// the JL guarantee is a property of the sampled matrix, independent of how
// it is stored). This is the *execution* answer: per-row lists of the +1
// and -1 column indices, turning each output coefficient into two
// index-gather sums with zero multiplies and zero decode work — on average
// d/3 additions per row instead of d decode-and-branch steps.
//
// Equivalence contract (gated by tests/test_kernels.cpp):
//   - integer path: bit-identical to the dense/packed kernels. Integer
//     addition is commutative mod 2^32, so regrouping (+1 terms, then -1
//     terms) cannot change the result.
//   - float path: bit-identical too, not merely ULP-close, for this
//     codebase's inputs. Projection inputs are integer samples, and every
//     partial sum of <= 2^20 samples of |v| < 2^31 stays far below 2^53,
//     so both the dense double accumulation and this int64 accumulation
//     are exact; the final cast is the only rounding and it rounds an
//     exactly-representable value. Accumulation order within a row is
//     fixed, so results are deterministic for any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dsp/signal.hpp"

namespace hbrp::kernels {

class SparseTernary {
 public:
  SparseTernary() = default;

  /// Builds the index lists from any ternary source. `at(r, c)` must
  /// return -1, 0 or +1. Construction is one-time (model load / train
  /// step); the hot path only ever reads the finished lists.
  static SparseTernary build(
      std::size_t rows, std::size_t cols,
      const std::function<std::int8_t(std::size_t, std::size_t)>& at);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  /// Non-zero entries (diagnostic; the execution cost per output row).
  std::size_t nonzeros() const { return idx_.size(); }

  /// u = P v, integer path: writes rows() int32 accumulators into `out`.
  /// Bit-identical to TernaryMatrix/PackedTernaryMatrix::apply_into.
  void apply_into(std::span<const dsp::Sample> v,
                  std::span<std::int32_t> out) const;

  /// u = P v, float path: writes rows() doubles into `out`. Exact integer
  /// accumulation (see header comment), bit-identical to the dense float
  /// kernel for integer sample inputs.
  void apply_into(std::span<const dsp::Sample> v,
                  std::span<double> out) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // Column indices, row-major: row r's +1 columns occupy
  // [pos_[2r], pos_[2r+1]) and its -1 columns [pos_[2r+1], pos_[2r+2]).
  // uint16 halves the cache footprint of the hot lists; window lengths are
  // far below 65536 (enforced in build()).
  std::vector<std::uint16_t> idx_;
  std::vector<std::uint32_t> pos_;
};

}  // namespace hbrp::kernels
