// AVX2 interior passes of the block wavelet transform. Same mod-2^32
// integer arithmetic as the scalar forms in dsp_wavelet.cpp (epi32 adds,
// subs and shifts wrap exactly like the uint32 scalar accumulation), so
// scalar and AVX2 decompositions are bit-identical unconditionally.
#include "kernels/dsp_wavelet.hpp"

#if HBRP_KERNELS_X86

#include <immintrin.h>

#include <cstdint>

namespace hbrp::kernels::detail {

namespace {

using dsp::Sample;

inline __m256i load(const Sample* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store(Sample* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

}  // namespace

void wavelet_lowpass_interior_avx2(const Sample* a, std::size_t begin,
                                   std::size_t end, std::ptrdiff_t s,
                                   Sample* y) {
  // y[i] = (a[i] + 3 a[i-s] + 3 a[i-2s] + a[i-3s] + 4) >> 3 for i >= 3s
  // (the caller has already produced [0, begin) with clamped edges).
  const auto us = static_cast<std::size_t>(s);
  const __m256i four = _mm256_set1_epi32(4);
  std::size_t i = begin;
  for (; i + 8 <= end; i += 8) {
    const __m256i x0 = load(a + i);
    const __m256i x1 = load(a + i - us);
    const __m256i x2 = load(a + i - 2 * us);
    const __m256i x3 = load(a + i - 3 * us);
    const __m256i x1x3 = _mm256_add_epi32(_mm256_add_epi32(x1, x1), x1);
    const __m256i x2x3 = _mm256_add_epi32(_mm256_add_epi32(x2, x2), x2);
    __m256i acc = _mm256_add_epi32(x0, x3);
    acc = _mm256_add_epi32(acc, _mm256_add_epi32(x1x3, x2x3));
    acc = _mm256_add_epi32(acc, four);
    store(y + i, _mm256_srai_epi32(acc, 3));
  }
  for (; i < end; ++i) {
    const std::uint32_t acc = static_cast<std::uint32_t>(a[i]) +
                              3u * static_cast<std::uint32_t>(a[i - us]) +
                              3u * static_cast<std::uint32_t>(a[i - 2 * us]) +
                              static_cast<std::uint32_t>(a[i - 3 * us]) + 4u;
    y[i] = static_cast<Sample>(acc) >> 3;
  }
}

void wavelet_detail_interior_avx2(const Sample* a, std::size_t count,
                                  std::ptrdiff_t d, std::ptrdiff_t s,
                                  Sample* det) {
  // det[i] = 2 * (a[i + d] - a[i + d - s]) for i < count (= n - d); the
  // caller covers the clamped right border. d >= s at every scale, so the
  // second load never goes negative.
  const auto ud = static_cast<std::size_t>(d);
  const auto us = static_cast<std::size_t>(s);
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i hi = load(a + i + ud);
    const __m256i lo = load(a + i + ud - us);
    store(det + i, _mm256_slli_epi32(_mm256_sub_epi32(hi, lo), 1));
  }
  for (; i < count; ++i) {
    const std::uint32_t diff = static_cast<std::uint32_t>(a[i + ud]) -
                               static_cast<std::uint32_t>(a[i + ud - us]);
    det[i] = static_cast<Sample>(diff * 2u);
  }
}

}  // namespace hbrp::kernels::detail

#endif  // HBRP_KERNELS_X86
