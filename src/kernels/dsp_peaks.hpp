// Block-mode R-peak detectors with reusable scratch.
//
// Two detectors behind one scratch object:
//
//  - detect_r_peaks_block: the paper's cross-scale wavelet modulus-maxima
//    detector, identical in output to dsp::detect_r_peaks, restated over the
//    block wavelet kernel (kernels/dsp_wavelet.hpp) with every intermediate
//    (decomposition, extrema, threshold envelopes, candidate lists) living in
//    caller-owned scratch so repeated streaming scans allocate nothing in
//    steady state.
//
//  - detect_r_peaks_adaptive: an O(1)-per-sample fast path — slope energy
//    (derivative, square, short integration: the Pan–Tompkins front end)
//    against a running amplitude estimate that decays exponentially
//    between beats (the classic wearable-HRV detector idiom). No wavelet
//    transform at all; candidates are refined to the same signed-polarity
//    apex convention as the wavelet detector, so downstream beat windows cut
//    identically. Accuracy is gated against the wavelet detector by
//    tests/test_detector_equivalence.cpp.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/peak_detect.hpp"
#include "dsp/signal.hpp"
#include "kernels/dsp_wavelet.hpp"

namespace hbrp::kernels {

/// Reusable workspace for both detectors. Hold one per stream and the
/// steady-state scan path performs no allocations.
struct PeakScratch {
  struct Extremum {
    std::size_t index = 0;
    dsp::Sample value = 0;
  };
  struct Candidate {
    std::size_t peak = 0;
    double strength = 0.0;  // |w| sum of the generating pair
  };

  dsp::WaveletDecomposition dec;
  WaveletScratch wavelet;
  std::vector<Extremum> ext;
  std::vector<Extremum> coarse_ext;
  std::vector<double> thr;
  std::vector<double> fine_thr;
  std::vector<double> coarse_thr;
  std::vector<double> block_max;
  std::vector<Candidate> cands;
  std::vector<Candidate> merged;
  std::vector<Candidate> found;
  std::vector<Candidate> extra;
  std::vector<double> energy;
};

/// Wavelet detector: bit-identical peak list to dsp::detect_r_peaks for the
/// same input and config (gated by tests/test_kernels_dsp.cpp).
void detect_r_peaks_block(const dsp::Signal& conditioned,
                          const dsp::PeakDetectorConfig& cfg,
                          PeakScratch& scratch,
                          std::vector<std::size_t>& peaks);

/// Adaptive-threshold detector: running-amplitude decay over the squared
/// conditioned signal; reads the cfg.adaptive_* fields.
void detect_r_peaks_adaptive(const dsp::Signal& conditioned,
                             const dsp::PeakDetectorConfig& cfg,
                             PeakScratch& scratch,
                             std::vector<std::size_t>& peaks);

/// Runs the detector selected by cfg.kind.
void detect_r_peaks_kind(const dsp::Signal& conditioned,
                         const dsp::PeakDetectorConfig& cfg,
                         PeakScratch& scratch, std::vector<std::size_t>& peaks);

}  // namespace hbrp::kernels
