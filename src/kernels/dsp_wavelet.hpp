// Block-mode à-trous wavelet decomposition behind the scalar/AVX2 dispatch.
//
// Same transform as dsp::wavelet_decompose (Mallat quadratic-spline filters,
// four dyadic scales, per-scale group-delay compensation), restated as flat
// array passes with reusable scratch: the highpass + phase-advance pair is
// fused into one indexed pass per scale, and the lowpass runs vectorized
// over the interior (the first 3*2^(j-1) samples keep the scalar
// edge-replicating form).
//
// Contract: bit-identical to dsp::wavelet_decompose for every input the
// chain can see (|x| < 2^26 — the scalar reference accumulates the 8x
// lowpass sum in 64-bit, the kernels in exact 32-bit; conditioned ECG is
// 13-bit scale, orders of magnitude inside the bound), and the scalar/AVX2
// forms are bit-identical to each other unconditionally (both wrap mod
// 2^32). tests/test_kernels_dsp.cpp gates both claims.
#pragma once

#include <cstddef>

#include "dsp/signal.hpp"
#include "dsp/wavelet.hpp"
#include "kernels/cpu.hpp"

namespace hbrp::kernels {

/// Reusable workspace: ping-pong buffers for the cascaded approximations.
struct WaveletScratch {
  dsp::Signal approx_a;
  dsp::Signal approx_b;
};

/// Decomposes `x` into `scales` dyadic detail signals plus the final
/// approximation, writing into `out` (detail slots past `scales` are
/// cleared). Dispatches scalar/AVX2 once per process.
void wavelet_decompose_block(const dsp::Signal& x, std::size_t scales,
                             WaveletScratch& scratch,
                             dsp::WaveletDecomposition& out);
void wavelet_decompose_block_scalar(const dsp::Signal& x, std::size_t scales,
                                    WaveletScratch& scratch,
                                    dsp::WaveletDecomposition& out);
#if HBRP_KERNELS_X86
void wavelet_decompose_block_avx2(const dsp::Signal& x, std::size_t scales,
                                  WaveletScratch& scratch,
                                  dsp::WaveletDecomposition& out);
#endif

namespace detail {
#if HBRP_KERNELS_X86
// Interior passes living in the -mavx2 TU; the caller handles the clamped
// edges scalar. Identical mod-2^32 integer arithmetic to the scalar forms.
void wavelet_lowpass_interior_avx2(const dsp::Sample* a, std::size_t begin,
                                   std::size_t end, std::ptrdiff_t s,
                                   dsp::Sample* y);
void wavelet_detail_interior_avx2(const dsp::Sample* a, std::size_t count,
                                  std::ptrdiff_t d, std::ptrdiff_t s,
                                  dsp::Sample* det);
#endif
}  // namespace detail

}  // namespace hbrp::kernels
