#include "kernels/sparse_ternary.hpp"

#include <cassert>
#include <cstdint>
#include <limits>

#include "math/check.hpp"

namespace hbrp::kernels {

SparseTernary SparseTernary::build(
    std::size_t rows, std::size_t cols,
    const std::function<std::int8_t(std::size_t, std::size_t)>& at) {
  HBRP_REQUIRE(cols <= std::numeric_limits<std::uint16_t>::max() + std::size_t{1},
               "SparseTernary::build(): column indices must fit uint16");
  SparseTernary s;
  s.rows_ = rows;
  s.cols_ = cols;
  s.pos_.reserve(2 * rows + 1);
  s.pos_.push_back(0);
  // Expected fill for Achlioptas is 1/3; reserve to avoid regrowth churn.
  s.idx_.reserve(rows * cols / 3 + rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c)
      if (at(r, c) > 0) s.idx_.push_back(static_cast<std::uint16_t>(c));
    s.pos_.push_back(static_cast<std::uint32_t>(s.idx_.size()));
    for (std::size_t c = 0; c < cols; ++c)
      if (at(r, c) < 0) s.idx_.push_back(static_cast<std::uint16_t>(c));
    s.pos_.push_back(static_cast<std::uint32_t>(s.idx_.size()));
  }
  return s;
}

namespace {

// Shared gather core: plus-sum minus minus-sum in int64. Exact for any
// realistic window (|sum| < 2^47 even at full-scale int32 samples over
// 2^16 columns), so both public overloads just cast the same value.
inline std::int64_t row_sum(const std::uint16_t* idx, std::uint32_t plus_begin,
                            std::uint32_t plus_end, std::uint32_t minus_end,
                            const dsp::Sample* v) {
  std::int64_t plus = 0;
  for (std::uint32_t i = plus_begin; i < plus_end; ++i) plus += v[idx[i]];
  std::int64_t minus = 0;
  for (std::uint32_t i = plus_end; i < minus_end; ++i) minus += v[idx[i]];
  return plus - minus;
}

}  // namespace

void SparseTernary::apply_into(std::span<const dsp::Sample> v,
                               std::span<std::int32_t> out) const {
  assert(v.size() == cols_);
  assert(out.size() == rows_);
  const std::uint16_t* idx = idx_.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::int64_t acc =
        row_sum(idx, pos_[2 * r], pos_[2 * r + 1], pos_[2 * r + 2], v.data());
    out[r] = static_cast<std::int32_t>(acc);
  }
}

void SparseTernary::apply_into(std::span<const dsp::Sample> v,
                               std::span<double> out) const {
  assert(v.size() == cols_);
  assert(out.size() == rows_);
  const std::uint16_t* idx = idx_.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::int64_t acc =
        row_sum(idx, pos_[2 * r], pos_[2 * r + 1], pos_[2 * r + 2], v.data());
    out[r] = static_cast<double>(acc);
  }
}

}  // namespace hbrp::kernels
