// Block-mode ECG conditioning: the dsp/morphology chain as SoA kernels.
//
// dsp::condition_ecg walks a monotonic deque one sample at a time — ~108 ns
// per sample on the committed baseline, which bounds samples/s/core for the
// whole fleet gateway. This module re-states the same chain as whole-array
// passes: each erosion/dilation runs as a van Herk–Gil-Werman (HGW) sliding
// extremum (one suffix scan, one prefix scan, one merge — 3 comparisons per
// sample independent of the element length), and the pointwise subtract /
// round-to-nearest average steps become flat array loops the AVX2 TU
// vectorizes 8 lanes at a time.
//
// Contract: condition_ecg_block() is bit-identical to dsp::condition_ecg()
// for every input (min/max over the same windows with the same replicated
// borders is exact integer arithmetic — there is no floating-point anywhere
// in the chain), and the scalar/AVX2 forms are bit-identical to each other,
// so kernels::active_level() / HBRP_FORCE_SCALAR=1 can never change a
// conditioned sample. tests/test_kernels_dsp.cpp gates both claims.
//
// BlockConditioner is the streaming wrapper the beat monitor uses: it
// accepts samples in arbitrary-sized pushes, defers them into a pending
// batch, and runs the block kernel over a bounded history window whenever
// enough samples accumulate — emitting exactly the sample sequence
// dsp::StreamingConditioner would emit per-sample (same fixed group delay,
// same left-border replication, same flush tail), with bounded memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dsp/morphology.hpp"
#include "dsp/signal.hpp"
#include "kernels/cpu.hpp"

namespace hbrp::kernels {

/// Reusable workspace for the block conditioning chain (no allocation in
/// steady state once the vectors have grown to the record size).
struct ConditionScratch {
  dsp::Signal padded;   ///< edge-replicated input + in-place suffix scan
  dsp::Signal prefix;   ///< HGW prefix scan
  dsp::Signal stage_a;  ///< ping buffer between morphology stages
  dsp::Signal stage_b;  ///< pong buffer
  dsp::Signal baseline; ///< close(open(x)) baseline estimate
  dsp::Signal z;        ///< baseline-removed signal
  dsp::Signal oc;       ///< open(close(z)) noise branch
  dsp::Signal co;       ///< close(open(z)) noise branch
};

/// Sliding-window minimum over a centred window of odd `length`, replicated
/// borders — bit-identical to dsp::erode(). Dispatches scalar/AVX2.
void erode_block(const dsp::Signal& x, std::size_t length,
                 ConditionScratch& scratch, dsp::Signal& out);

/// Sliding-window maximum, same conventions — bit-identical to dsp::dilate().
void dilate_block(const dsp::Signal& x, std::size_t length,
                  ConditionScratch& scratch, dsp::Signal& out);

/// Full conditioning chain (baseline removal + impulsive-noise suppression),
/// bit-identical to dsp::condition_ecg(x, cfg). Dispatches scalar/AVX2 once
/// per process via kernels::active_level().
void condition_ecg_block(const dsp::Signal& x, const dsp::FilterConfig& cfg,
                         ConditionScratch& scratch, dsp::Signal& out);
void condition_ecg_block_scalar(const dsp::Signal& x,
                                const dsp::FilterConfig& cfg,
                                ConditionScratch& scratch, dsp::Signal& out);
#if HBRP_KERNELS_X86
void condition_ecg_block_avx2(const dsp::Signal& x,
                              const dsp::FilterConfig& cfg,
                              ConditionScratch& scratch, dsp::Signal& out);
#endif

namespace detail {
#if HBRP_KERNELS_X86
// Low-level vector passes living in the -mavx2 TU. Each executes the same
// integer operation sequence as its scalar counterpart (min/max/add/sub and
// arithmetic shifts are exact), so results are bit-identical by construction.
void merge_extremum_avx2(const dsp::Sample* suffix, const dsp::Sample* prefix,
                         std::size_t n, bool is_min, dsp::Sample* out);
void prefix_scan_blocks_avx2(const dsp::Sample* q, std::size_t total,
                             std::size_t block_len, bool is_min,
                             dsp::Sample* out);
void suffix_scan_blocks_avx2(dsp::Sample* q, std::size_t total,
                             std::size_t block_len, bool is_min);
void extremum3_avx2(const dsp::Sample* padded, std::size_t n, bool is_min,
                    dsp::Sample* out);
void subtract_avx2(const dsp::Sample* a, const dsp::Sample* b, std::size_t n,
                   dsp::Sample* out);
void average_round_avx2(const dsp::Sample* a, const dsp::Sample* b,
                        std::size_t n, dsp::Sample* out);
#endif
}  // namespace detail

/// Streaming wrapper over the block kernel: same observable output sequence
/// as dsp::StreamingConditioner (one conditioned sample per input after a
/// fixed `delay()`, then `flush_tail()` finishes the right border), but
/// amortized through condition_ecg_block over a bounded history window.
///
/// Usage: call push()/push_block() freely; conditioned samples are appended
/// to `out` in order, possibly in bursts (the conditioner defers work until
/// a batch is worth processing). sync() forces everything already pushed
/// through — after it, all outputs up to (inputs - delay()) have been
/// appended. flush_tail() emits the remaining delay() border outputs with
/// batch right-edge semantics and resets the conditioner.
class BlockConditioner {
 public:
  explicit BlockConditioner(const dsp::FilterConfig& cfg = {});

  /// Feeds one raw sample; appends zero or more conditioned samples.
  void push(dsp::Sample x, dsp::Signal& out);

  /// Feeds a whole block; appends zero or more conditioned samples.
  void push_block(std::span<const dsp::Sample> xs, dsp::Signal& out);

  /// Processes everything pending: afterwards every output of index
  /// < inputs - delay() has been appended (exactly the samples
  /// dsp::StreamingConditioner::push would have returned by now).
  void sync(dsp::Signal& out);

  /// Emits the final delay() outputs (right border, replicating the last
  /// input as the batch operator does) and resets. Pending samples are
  /// sync()ed through first.
  void flush_tail(dsp::Signal& out);

  /// Drops all state (history, pending, counters) without emitting.
  void reset();

  /// Fixed input-to-output group delay in samples (identical to
  /// dsp::StreamingConditioner::delay()).
  std::size_t delay() const { return delay_; }

  /// Worst-case extra latency on top of delay(): outputs may be withheld
  /// until a batch fills.
  std::size_t batch_slack() const { return kMinBatch - 1; }

  /// Upper bound on retained samples (history window + pending batch;
  /// kernel scratch is proportional to the same figure).
  std::size_t memory_samples() const { return 2 * delay_ + kMinBatch; }

 private:
  void process_pending(dsp::Signal& out);

  // Smallest batch worth paying the 2*delay() history re-scan for: at 256
  // the amortized window/batch ratio is < 2.8x even for the default 224-
  // sample delay, and pump-sized blocks (thousands of samples) approach 1x.
  static constexpr std::size_t kMinBatch = 256;

  dsp::FilterConfig cfg_;
  std::size_t delay_ = 0;
  std::vector<dsp::Sample> history_;  ///< last <= 2*delay_ consumed samples
  std::vector<dsp::Sample> pending_;  ///< accepted, not yet processed
  std::uint64_t consumed_ = 0;        ///< samples moved into history_
  std::uint64_t emitted_ = 0;         ///< conditioned samples appended
  ConditionScratch scratch_;
  dsp::Signal window_;
  dsp::Signal window_out_;
};

}  // namespace hbrp::kernels
