#include "kernels/dsp_wavelet.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "math/check.hpp"

namespace hbrp::kernels {

namespace {

using dsp::Sample;
using dsp::Signal;

// Clamped (edge-replicating) access, as in dsp/wavelet.cpp.
inline Sample at(const Sample* x, std::size_t n, std::ptrdiff_t i) {
  const auto last = static_cast<std::ptrdiff_t>(n) - 1;
  return x[static_cast<std::size_t>(std::clamp(i, std::ptrdiff_t{0}, last))];
}

// Exact 32-bit lowpass tap: (x[i] + 3 x[i-s] + 3 x[i-2s] + x[i-3s] + 4) >> 3
// accumulated in uint32 (wraps identically to the AVX2 epi32 adds; equal to
// the reference's int64 form whenever the sum fits int32).
inline Sample lowpass_tap(std::uint32_t x0, std::uint32_t x1, std::uint32_t x2,
                          std::uint32_t x3) {
  const std::uint32_t acc = x0 + x1 + x1 + x1 + x2 + x2 + x2 + x3 + 4u;
  return static_cast<Sample>(acc) >> 3;
}

// detail[i] = 2 * (a[m] - a[max(m - s, 0)]) with m = min(i + d, n - 1):
// highpass at spacing s fused with the phase advance by d.
inline Sample detail_tap(const Sample* a, std::size_t n, std::ptrdiff_t i,
                         std::ptrdiff_t d, std::ptrdiff_t s) {
  const auto last = static_cast<std::ptrdiff_t>(n) - 1;
  const std::ptrdiff_t m = std::min(i + d, last);
  const std::uint32_t diff =
      static_cast<std::uint32_t>(a[static_cast<std::size_t>(m)]) -
      static_cast<std::uint32_t>(at(a, n, m - s));
  return static_cast<Sample>(diff * 2u);
}

void wavelet_impl(const Signal& x, std::size_t scales, SimdLevel level,
                  WaveletScratch& scr, dsp::WaveletDecomposition& out) {
  HBRP_REQUIRE(scales >= 1 && scales <= dsp::kWaveletScales,
               "wavelet_decompose_block(): scales must be in [1, 4]");
  const std::size_t n = x.size();
  for (std::size_t j = scales; j < dsp::kWaveletScales; ++j)
    out.detail[j].clear();
  if (n == 0) {
    for (std::size_t j = 0; j < scales; ++j) out.detail[j].clear();
    out.approx.clear();
    return;
  }

  const Sample* approx = x.data();
  Signal* next = &scr.approx_a;
  Signal* other = &scr.approx_b;
  double approx_delay = 0.0;
  for (std::size_t j = 1; j <= scales; ++j) {
    const auto s = static_cast<std::ptrdiff_t>(1) << (j - 1);
    const double detail_delay = approx_delay + static_cast<double>(s) / 2.0;
    const auto d = static_cast<std::ptrdiff_t>(detail_delay + 0.5);

    Signal& det = out.detail[j - 1];
    det.resize(n);
    // Interior: i + d <= n - 1 avoids the right clamp, and d >= s at every
    // scale keeps m - s >= 0, so the fused tap is two loads, a subtract
    // and a shift.
    const std::size_t interior =
        n > static_cast<std::size_t>(d) ? n - static_cast<std::size_t>(d) : 0;
#if HBRP_KERNELS_X86
    if (level == SimdLevel::Avx2) {
      detail::wavelet_detail_interior_avx2(approx, interior, d, s, det.data());
    } else
#endif
    {
      for (std::size_t i = 0; i < interior; ++i)
        det[i] = detail_tap(approx, n, static_cast<std::ptrdiff_t>(i), d, s);
    }
    for (std::size_t i = interior; i < n; ++i)
      det[i] = detail_tap(approx, n, static_cast<std::ptrdiff_t>(i), d, s);

    next->resize(n);
    Sample* y = next->data();
    const std::size_t edge = std::min(n, static_cast<std::size_t>(3 * s));
    for (std::size_t i = 0; i < edge; ++i) {
      const auto ii = static_cast<std::ptrdiff_t>(i);
      y[i] = lowpass_tap(static_cast<std::uint32_t>(approx[i]),
                         static_cast<std::uint32_t>(at(approx, n, ii - s)),
                         static_cast<std::uint32_t>(at(approx, n, ii - 2 * s)),
                         static_cast<std::uint32_t>(at(approx, n, ii - 3 * s)));
    }
#if HBRP_KERNELS_X86
    if (level == SimdLevel::Avx2) {
      detail::wavelet_lowpass_interior_avx2(approx, edge, n, s, y);
    } else
#endif
    {
      const auto us = static_cast<std::size_t>(s);
      for (std::size_t i = edge; i < n; ++i)
        y[i] = lowpass_tap(static_cast<std::uint32_t>(approx[i]),
                           static_cast<std::uint32_t>(approx[i - us]),
                           static_cast<std::uint32_t>(approx[i - 2 * us]),
                           static_cast<std::uint32_t>(approx[i - 3 * us]));
    }

    approx = next->data();
    std::swap(next, other);
    approx_delay += 1.5 * static_cast<double>(s);
  }

  // Final smooth approximation, phase-advanced like dsp::wavelet_decompose.
  out.approx.resize(n);
  const auto adv = static_cast<std::ptrdiff_t>(approx_delay + 0.5);
  const std::size_t off = std::min(static_cast<std::size_t>(adv), n);
  const std::size_t copy_n = n - off;
  std::copy_n(approx + off, copy_n, out.approx.data());
  std::fill(out.approx.begin() + static_cast<std::ptrdiff_t>(copy_n),
            out.approx.end(), approx[n - 1]);
}

}  // namespace

void wavelet_decompose_block(const Signal& x, std::size_t scales,
                             WaveletScratch& scratch,
                             dsp::WaveletDecomposition& out) {
  wavelet_impl(x, scales, active_level(), scratch, out);
}

void wavelet_decompose_block_scalar(const Signal& x, std::size_t scales,
                                    WaveletScratch& scratch,
                                    dsp::WaveletDecomposition& out) {
  wavelet_impl(x, scales, SimdLevel::Scalar, scratch, out);
}

#if HBRP_KERNELS_X86
void wavelet_decompose_block_avx2(const Signal& x, std::size_t scales,
                                  WaveletScratch& scratch,
                                  dsp::WaveletDecomposition& out) {
  wavelet_impl(x, scales, SimdLevel::Avx2, scratch, out);
}
#endif

}  // namespace hbrp::kernels
