#include "kernels/cpu.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>

namespace hbrp::kernels {

const char* to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Avx2: return "avx2";
  }
  return "?";
}

bool cpu_supports_avx2() {
#if HBRP_KERNELS_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdLevel resolve_level(const char* env, bool has_avx2) {
  if (env != nullptr &&
      (std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
       std::strcmp(env, "yes") == 0 || std::strcmp(env, "on") == 0))
    return SimdLevel::Scalar;
  return has_avx2 ? SimdLevel::Avx2 : SimdLevel::Scalar;
}

SimdLevel active_level() {
  static const SimdLevel level =
      resolve_level(std::getenv("HBRP_FORCE_SCALAR"), cpu_supports_avx2());
  return level;
}

namespace {

// First "<key> : <value>" line of /proc/cpuinfo matching `key`.
std::string cpuinfo_field(const char* key) {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  const std::size_t key_len = std::strlen(key);
  while (std::getline(in, line)) {
    if (line.compare(0, key_len, key) != 0) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::size_t start = colon + 1;
    while (start < line.size() && line[start] == ' ') ++start;
    return line.substr(start);
  }
  return {};
}

}  // namespace

std::string cpu_model_name() {
  std::string model = cpuinfo_field("model name");
  return model.empty() ? "unknown" : model;
}

bool cpu_is_virtualized() {
  const std::string flags = cpuinfo_field("flags");
  return flags.find("hypervisor") != std::string::npos;
}

}  // namespace hbrp::kernels
