// AVX2 forms of the fuzzify kernels. This translation unit is the only one
// compiled with -mavx2 (and deliberately NOT -mfma: FMA contraction would
// fuse the (d*d)*nhiv multiply-add chains and change float results vs. the
// scalar TU). Everything here vectorizes across *beats*; per-beat operation
// order is identical to the scalar kernels, so results are bit-identical
// and dispatch can never change a classification.
//
// The linearized integer MF form replaces the two 64-bit integer divisions
// per element with an exact floor division in double precision:
//   q0 = trunc(num * (1/s));  r = num - q0 * s;
//   q  = q0 - (r < 0) + (r >= s)
// Every operand is an integer exactly representable in double (num <= 2^48,
// q0 * s within one s of num), and the relative error of the
// reciprocal-multiply is < 2^-51, so |q0 - floor(num/s)| <= 1 and the
// one-step two-sided fixup recovers the exact quotient. Lanes in the flat
// segments (grade 0 / grade 1) run the same arithmetic on out-of-range
// numerators; their (possibly huge) quotients are blended away to the flat
// grades *before* the double -> int32 conversion, which would otherwise
// overflow.
#include "kernels/fuzzify.hpp"

#if HBRP_KERNELS_X86

#include <immintrin.h>

namespace hbrp::kernels {

void log_fuzzy_batch_avx2(const double* u, std::size_t count, std::size_t k,
                          const double* centers, const double* nhiv,
                          double* out) {
  static_assert(kFuzzyClasses == 3);
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const double* r0 = u + (i + 0) * k;
    const double* r1 = u + (i + 1) * k;
    const double* r2 = u + (i + 2) * k;
    const double* r3 = u + (i + 3) * k;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd();
    for (std::size_t j = 0; j < k; ++j) {
      const __m256d x = _mm256_set_pd(r3[j], r2[j], r1[j], r0[j]);
      const __m256d d0 = _mm256_sub_pd(x, _mm256_set1_pd(centers[j]));
      acc0 = _mm256_add_pd(
          acc0, _mm256_mul_pd(_mm256_mul_pd(d0, d0), _mm256_set1_pd(nhiv[j])));
      const __m256d d1 = _mm256_sub_pd(x, _mm256_set1_pd(centers[k + j]));
      acc1 = _mm256_add_pd(
          acc1,
          _mm256_mul_pd(_mm256_mul_pd(d1, d1), _mm256_set1_pd(nhiv[k + j])));
      const __m256d d2 = _mm256_sub_pd(x, _mm256_set1_pd(centers[2 * k + j]));
      acc2 = _mm256_add_pd(
          acc2, _mm256_mul_pd(_mm256_mul_pd(d2, d2),
                              _mm256_set1_pd(nhiv[2 * k + j])));
    }
    alignas(32) double lane[3][4];
    _mm256_store_pd(lane[0], acc0);
    _mm256_store_pd(lane[1], acc1);
    _mm256_store_pd(lane[2], acc2);
    for (std::size_t b = 0; b < 4; ++b) {
      double* o = out + (i + b) * kFuzzyClasses;
      o[0] = lane[0][b];
      o[1] = lane[1][b];
      o[2] = lane[2][b];
    }
  }
  if (i < count)
    log_fuzzy_batch_scalar(u + i * k, count - i, k, centers, nhiv,
                           out + i * kFuzzyClasses);
}

void linearized_eval_batch_avx2(std::int32_t center, std::uint32_t s,
                                const std::int32_t* x, std::size_t n,
                                std::uint16_t* grades) {
  const double sd = static_cast<double>(s);
  const __m256d vc = _mm256_set1_pd(static_cast<double>(center));
  const __m256d vs = _mm256_set1_pd(sd);
  const __m256d v2s = _mm256_set1_pd(2.0 * sd);
  const __m256d v4s = _mm256_set1_pd(4.0 * sd);
  const __m256d vrecip = _mm256_set1_pd(1.0 / sd);
  const __m256d steep_mul = _mm256_set1_pd(65535.0 - kLinGradeAtS);
  const __m256d shallow_mul = _mm256_set1_pd(kLinGradeAtS - 1.0);
  const __m256d steep_base = _mm256_set1_pd(65535.0);
  const __m256d shallow_base =
      _mm256_set1_pd(static_cast<double>(kLinGradeAtS));
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i xi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m256d xd = _mm256_cvtepi32_pd(xi);
    const __m256d dist = _mm256_andnot_pd(sign_mask, _mm256_sub_pd(xd, vc));

    const __m256d m_flat0 = _mm256_cmp_pd(dist, v4s, _CMP_GE_OQ);
    const __m256d m_flat1 = _mm256_cmp_pd(dist, v2s, _CMP_GE_OQ);
    const __m256d m_shallow = _mm256_cmp_pd(dist, vs, _CMP_GE_OQ);

    const __m256d num_steep = _mm256_mul_pd(dist, steep_mul);
    const __m256d num_shallow =
        _mm256_mul_pd(_mm256_sub_pd(dist, vs), shallow_mul);
    const __m256d num = _mm256_blendv_pd(num_steep, num_shallow, m_shallow);
    const __m256d base = _mm256_blendv_pd(steep_base, shallow_base, m_shallow);

    __m256d q = _mm256_round_pd(_mm256_mul_pd(num, vrecip),
                                _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
    const __m256d r = _mm256_sub_pd(num, _mm256_mul_pd(q, vs));
    q = _mm256_sub_pd(q, _mm256_and_pd(_mm256_cmp_pd(r, zero, _CMP_LT_OQ), one));
    q = _mm256_add_pd(q, _mm256_and_pd(_mm256_cmp_pd(r, vs, _CMP_GE_OQ), one));

    __m256d g = _mm256_sub_pd(base, q);
    g = _mm256_blendv_pd(g, one, m_flat1);
    g = _mm256_andnot_pd(m_flat0, g);

    const __m128i gi = _mm256_cvttpd_epi32(g);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(grades + i),
                     _mm_packus_epi32(gi, gi));
  }
  if (i < n) linearized_eval_batch_scalar(center, s, x + i, n - i, grades + i);
}

}  // namespace hbrp::kernels

#endif  // HBRP_KERNELS_X86
