#include "dsp/peak_detect.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "math/check.hpp"
#include "math/stats.hpp"

namespace hbrp::dsp {

namespace {

struct Extremum {
  std::size_t index = 0;
  Sample value = 0;
};

// Local extrema of w (strict against the previous differing sample, so
// plateaus yield a single extremum at their first sample).
std::vector<Extremum> local_extrema(const Signal& w) {
  std::vector<Extremum> out;
  if (w.size() < 3) return out;
  int prev_dir = 0;
  std::size_t last_change = 0;
  for (std::size_t i = 1; i < w.size(); ++i) {
    const int dir = w[i] > w[i - 1] ? 1 : (w[i] < w[i - 1] ? -1 : 0);
    if (dir == 0) continue;
    if (prev_dir == 1 && dir == -1) out.push_back({last_change, w[last_change]});
    if (prev_dir == -1 && dir == 1) out.push_back({last_change, w[last_change]});
    if (dir != 0) {
      prev_dir = dir;
      last_change = i;
    }
  }
  return out;
}

// Per-sample detection threshold: fraction of an amplitude envelope built
// from per-block maxima of |w|, clamped around the record-wide median so
// silent blocks do not collapse the threshold.
std::vector<double> threshold_envelope(const Signal& w,
                                       const PeakDetectorConfig& cfg) {
  const auto block =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   cfg.block_s * cfg.fs_hz));
  std::vector<double> block_max;
  for (std::size_t start = 0; start < w.size(); start += block) {
    const std::size_t end = std::min(w.size(), start + block);
    Sample m = 0;
    for (std::size_t i = start; i < end; ++i)
      m = std::max(m, static_cast<Sample>(std::abs(w[i])));
    block_max.push_back(static_cast<double>(m));
  }
  if (block_max.empty()) return {};
  const double med = hbrp::math::median(block_max);
  std::vector<double> thr(w.size());
  for (std::size_t start = 0, b = 0; start < w.size(); start += block, ++b) {
    const double env =
        std::clamp(block_max[b], 0.5 * med, 2.0 * med);
    const std::size_t end = std::min(w.size(), start + block);
    for (std::size_t i = start; i < end; ++i)
      thr[i] = cfg.threshold_frac * env;
  }
  return thr;
}

// Zero crossing of w between two opposite-sign extrema; returns the sample
// index nearest to the crossing.
std::size_t zero_crossing(const Signal& w, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    const bool crosses = (w[i] >= 0 && w[i + 1] < 0) ||
                         (w[i] <= 0 && w[i + 1] > 0);
    if (crosses)
      return std::abs(w[i]) <= std::abs(w[i + 1]) ? i : i + 1;
  }
  return (lo + hi) / 2;
}

struct Candidate {
  std::size_t peak = 0;
  double strength = 0.0;  // |w| sum of the generating pair
};

// Scans the extremum list for opposite-sign pairs above `scale` * threshold
// inside [lo, hi) and emits their zero-crossing candidates. Candidates must
// also be confirmed on the next finer wavelet scale (`fine` with its own
// threshold envelope `fine_thr`): QRS complexes have energy across scales,
// while T waves and motion artifacts live only at the coarse one — the
// cross-scale rule of Li et al.
std::vector<Candidate> scan_pairs(const Signal& w,
                                  const std::vector<Extremum>& ext,
                                  const std::vector<double>& thr,
                                  const Signal& fine,
                                  const std::vector<double>& fine_thr,
                                  double scale, double confirm_frac,
                                  std::size_t lo, std::size_t hi,
                                  std::size_t pair_window) {
  std::vector<Candidate> out;
  for (std::size_t e = 0; e + 1 < ext.size(); ++e) {
    const Extremum& a = ext[e];
    const Extremum& b = ext[e + 1];
    if (a.index < lo || b.index >= hi) continue;
    if (b.index - a.index > pair_window) continue;
    if ((a.value > 0) == (b.value > 0)) continue;
    const double ta = scale * thr[a.index];
    const double tb = scale * thr[b.index];
    if (std::abs(a.value) < ta || std::abs(b.value) < tb) continue;

    // Cross-scale confirmation on the finer detail signal.
    double fine_max = 0.0;
    for (std::size_t i = a.index; i <= b.index; ++i)
      fine_max = std::max(fine_max,
                          std::abs(static_cast<double>(fine[i])));
    if (fine_max < confirm_frac * fine_thr[(a.index + b.index) / 2])
      continue;

    Candidate c;
    c.peak = zero_crossing(w, a.index, b.index);
    c.strength = std::abs(static_cast<double>(a.value)) +
                 std::abs(static_cast<double>(b.value));
    out.push_back(c);
  }
  return out;
}

// Applies the refractory rule: candidates closer than `refractory` collapse
// onto the strongest one.
std::vector<Candidate> apply_refractory(std::vector<Candidate> cands,
                                        std::size_t refractory) {
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.peak < b.peak;
            });
  std::vector<Candidate> out;
  for (const Candidate& c : cands) {
    if (!out.empty() && c.peak - out.back().peak < refractory) {
      if (c.strength > out.back().strength) out.back() = c;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::vector<std::size_t> detect_r_peaks(const Signal& conditioned,
                                        const PeakDetectorConfig& cfg) {
  HBRP_REQUIRE(cfg.fs_hz > 0, "detect_r_peaks(): fs must be positive");
  HBRP_REQUIRE(cfg.detect_scale < kWaveletScales,
               "detect_r_peaks(): detect_scale out of range");
  if (conditioned.size() < 8) return {};

  const WaveletDecomposition dec = wavelet_decompose(conditioned);
  const Signal& w = dec.detail[cfg.detect_scale];
  const Signal& fine =
      dec.detail[cfg.detect_scale > 0 ? cfg.detect_scale - 1
                                      : cfg.detect_scale];
  const std::vector<Extremum> ext = local_extrema(w);
  const std::vector<double> thr = threshold_envelope(w, cfg);
  const std::vector<double> fine_thr = threshold_envelope(fine, cfg);
  const auto pair_window = static_cast<std::size_t>(
      cfg.pair_window_s * cfg.fs_hz);
  const auto refractory =
      static_cast<std::size_t>(cfg.refractory_s * cfg.fs_hz);

  std::vector<Candidate> cands = scan_pairs(w, ext, thr, fine, fine_thr, 1.0,
                                            0.5, 0, w.size(), pair_window);

  // Second pass one scale up: wide ectopic complexes (PVCs) concentrate
  // their energy at the next dyadic scale and can sit below the detection
  // threshold at the primary one. The primary scale serves as the
  // cross-scale confirmation signal here.
  if (cfg.detect_scale + 1 < kWaveletScales) {
    const Signal& coarse = dec.detail[cfg.detect_scale + 1];
    const std::vector<Extremum> coarse_ext = local_extrema(coarse);
    const std::vector<double> coarse_thr = threshold_envelope(coarse, cfg);
    // Wide complexes spread their maxima pair further apart. Demand a
    // full-strength confirmation at the primary scale: T waves pass the
    // coarse threshold but have little primary-scale energy.
    auto coarse_found =
        scan_pairs(coarse, coarse_ext, coarse_thr, w, thr, 1.0, 1.3, 0,
                   coarse.size(), 2 * pair_window);
    cands.insert(cands.end(), coarse_found.begin(), coarse_found.end());
  }
  cands = apply_refractory(std::move(cands), refractory);

  // Search-back: revisit abnormally long RR gaps with a lowered threshold.
  if (cands.size() >= 3) {
    std::vector<Candidate> extra;
    const std::size_t window = 8;
    double mean_rr = 0.0;
    std::size_t rr_count = 0;
    for (std::size_t i = 1; i < cands.size(); ++i) {
      const double rr = static_cast<double>(cands[i].peak - cands[i - 1].peak);
      if (rr_count < window) {
        mean_rr = (mean_rr * static_cast<double>(rr_count) + rr) /
                  static_cast<double>(rr_count + 1);
        ++rr_count;
      } else {
        mean_rr = 0.875 * mean_rr + 0.125 * rr;
      }
      if (rr > cfg.searchback_rr_factor * mean_rr) {
        const std::size_t lo = cands[i - 1].peak + refractory;
        const std::size_t hi = cands[i].peak > refractory
                                   ? cands[i].peak - refractory
                                   : 0;
        if (lo < hi) {
          auto found =
              scan_pairs(w, ext, thr, fine, fine_thr, cfg.searchback_frac,
                         0.5 * cfg.searchback_frac, lo, hi, pair_window);
          extra.insert(extra.end(), found.begin(), found.end());
        }
      }
    }
    if (!extra.empty()) {
      cands.insert(cands.end(), extra.begin(), extra.end());
      cands = apply_refractory(std::move(cands), refractory);
    }
  }

  // Refine each candidate to the R apex of the conditioned signal: the
  // wavelet zero crossing drifts by tens of milliseconds on wide (ectopic)
  // complexes, and downstream beat windows must be cut on the actual apex.
  // The apex is the *signed* extremum in the record's dominant R polarity —
  // refining to max |x| would lock onto the S wave of beats whose S runs
  // deeper than their R and desynchronize the beat windows across records.
  const auto refine_radius =
      static_cast<std::size_t>(0.08 * cfg.fs_hz);
  // Dominant polarity: sum of (max + min) around every candidate — positive
  // when R waves run taller than S waves run deep, record-wide.
  std::int64_t polarity_acc = 0;
  for (const Candidate& c : cands) {
    const std::size_t lo = c.peak > refine_radius ? c.peak - refine_radius : 0;
    const std::size_t hi =
        std::min(conditioned.size() - 1, c.peak + refine_radius);
    Sample mx = conditioned[c.peak], mn = conditioned[c.peak];
    for (std::size_t i = lo; i <= hi; ++i) {
      mx = std::max(mx, conditioned[i]);
      mn = std::min(mn, conditioned[i]);
    }
    polarity_acc += static_cast<std::int64_t>(mx) + mn;
  }
  const bool positive = polarity_acc >= 0;
  std::vector<std::size_t> peaks;
  peaks.reserve(cands.size());
  for (const Candidate& c : cands) {
    const std::size_t lo = c.peak > refine_radius ? c.peak - refine_radius : 0;
    const std::size_t hi =
        std::min(conditioned.size() - 1, c.peak + refine_radius);
    std::size_t best = c.peak;
    for (std::size_t i = lo; i <= hi; ++i) {
      if (positive ? conditioned[i] > conditioned[best]
                   : conditioned[i] < conditioned[best])
        best = i;
    }
    peaks.push_back(best);
  }
  // Refinement can merge neighbours; keep the list sorted and unique.
  std::sort(peaks.begin(), peaks.end());
  peaks.erase(std::unique(peaks.begin(), peaks.end()), peaks.end());
  return peaks;
}

double PeakMatchStats::sensitivity() const {
  const std::size_t denom = true_positive + false_negative;
  return denom ? static_cast<double>(true_positive) /
                     static_cast<double>(denom)
               : 0.0;
}

double PeakMatchStats::positive_predictivity() const {
  const std::size_t denom = true_positive + false_positive;
  return denom ? static_cast<double>(true_positive) /
                     static_cast<double>(denom)
               : 0.0;
}

PeakMatchStats match_peaks(const std::vector<std::size_t>& detected,
                           const std::vector<std::size_t>& reference,
                           std::size_t tolerance) {
  PeakMatchStats stats;
  std::size_t di = 0;
  std::vector<bool> used(detected.size(), false);
  for (const std::size_t ref : reference) {
    // Advance to the first detection that could still match.
    while (di < detected.size() &&
           detected[di] + tolerance < ref)
      ++di;
    bool matched = false;
    for (std::size_t j = di; j < detected.size(); ++j) {
      if (detected[j] > ref + tolerance) break;
      if (!used[j]) {
        used[j] = true;
        matched = true;
        break;
      }
    }
    if (matched)
      ++stats.true_positive;
    else
      ++stats.false_negative;
  }
  for (std::size_t j = 0; j < detected.size(); ++j)
    if (!used[j]) ++stats.false_positive;
  return stats;
}

}  // namespace hbrp::dsp
