#include "dsp/morphology.hpp"

#include <algorithm>
#include <deque>

#include "math/check.hpp"

namespace hbrp::dsp {

namespace {

enum class Extremum { Min, Max };

// Sliding-window extremum with a centred window of `length` samples using a
// monotonic deque of indices; edge samples are replicated beyond the borders.
Signal sliding_extremum(const Signal& x, std::size_t length, Extremum kind) {
  HBRP_REQUIRE(length >= 1, "structuring element must be non-empty");
  HBRP_REQUIRE(length % 2 == 1, "structuring element length must be odd");
  if (x.empty() || length == 1) return x;

  const auto n = static_cast<std::ptrdiff_t>(x.size());
  const auto half = static_cast<std::ptrdiff_t>(length / 2);
  Signal out(x.size());

  auto at = [&x, n](std::ptrdiff_t i) {
    // Replicated borders.
    return x[static_cast<std::size_t>(std::clamp(i, std::ptrdiff_t{0}, n - 1))];
  };
  auto better = [kind](Sample candidate, Sample incumbent) {
    return kind == Extremum::Min ? candidate <= incumbent
                                 : candidate >= incumbent;
  };

  std::deque<std::ptrdiff_t> q;  // indices into the virtual padded signal
  for (std::ptrdiff_t i = -half; i < n + half; ++i) {
    while (!q.empty() && better(at(i), at(q.back()))) q.pop_back();
    q.push_back(i);
    const std::ptrdiff_t center = i - half;     // window [center-half, i]
    if (center < 0) continue;
    while (q.front() < center - half) q.pop_front();
    out[static_cast<std::size_t>(center)] = at(q.front());
  }
  return out;
}

}  // namespace

Signal erode(const Signal& x, std::size_t length) {
  return sliding_extremum(x, length, Extremum::Min);
}

Signal dilate(const Signal& x, std::size_t length) {
  return sliding_extremum(x, length, Extremum::Max);
}

Signal open(const Signal& x, std::size_t length) {
  return dilate(erode(x, length), length);
}

Signal close(const Signal& x, std::size_t length) {
  return erode(dilate(x, length), length);
}

FilterConfig FilterConfig::for_rate(int fs_hz) {
  HBRP_REQUIRE(fs_hz > 0, "sampling rate must be positive");
  auto odd = [](double samples) {
    auto v = static_cast<std::size_t>(samples);
    if (v % 2 == 0) ++v;
    return std::max<std::size_t>(v, 1);
  };
  FilterConfig cfg;
  cfg.baseline_open_len = odd(0.2 * fs_hz);
  cfg.baseline_close_len = odd(0.42 * fs_hz);
  cfg.noise_len = odd(0.008 * fs_hz);
  return cfg;
}

Signal baseline_estimate(const Signal& x, const FilterConfig& cfg) {
  HBRP_REQUIRE(cfg.baseline_open_len < cfg.baseline_close_len,
               "baseline opening element must be shorter than closing one");
  return close(open(x, cfg.baseline_open_len), cfg.baseline_close_len);
}

Signal remove_baseline(const Signal& x, const FilterConfig& cfg) {
  const Signal base = baseline_estimate(x, cfg);
  Signal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - base[i];
  return out;
}

Signal suppress_noise(const Signal& x, const FilterConfig& cfg) {
  const Signal oc = open(close(x, cfg.noise_len), cfg.noise_len);
  const Signal co = close(open(x, cfg.noise_len), cfg.noise_len);
  Signal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    // Round-to-nearest average; operands are 11-bit-scale so no overflow.
    out[i] = (oc[i] + co[i] + 1) >> 1;
  }
  return out;
}

Signal condition_ecg(const Signal& x, const FilterConfig& cfg) {
  return suppress_noise(remove_baseline(x, cfg), cfg);
}

}  // namespace hbrp::dsp
