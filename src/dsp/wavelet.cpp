#include "dsp/wavelet.hpp"

#include <algorithm>

#include "math/check.hpp"

namespace hbrp::dsp {

namespace {

// Clamped (edge-replicating) access.
inline Sample at(const Signal& x, std::ptrdiff_t i) {
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  return x[static_cast<std::size_t>(std::clamp(i, std::ptrdiff_t{0}, n - 1))];
}

// Causal quadratic-spline lowpass at tap spacing `s`:
//   y[n] = (x[n] + 3 x[n-s] + 3 x[n-2s] + x[n-3s] + 4) / 8
// Group delay: 1.5 s samples.
Signal lowpass(const Signal& x, std::ptrdiff_t s) {
  Signal y(x.size());
  for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(x.size()); ++n) {
    const std::int64_t acc = static_cast<std::int64_t>(at(x, n)) +
                             3LL * at(x, n - s) + 3LL * at(x, n - 2 * s) +
                             at(x, n - 3 * s);
    y[static_cast<std::size_t>(n)] =
        static_cast<Sample>((acc + 4) >> 3);  // round-to-nearest /8
  }
  return y;
}

// Causal quadratic-spline highpass (first difference scaled by 2) at tap
// spacing `s`: y[n] = 2 (x[n] - x[n-s]). Group delay: s/2 samples.
Signal highpass(const Signal& x, std::ptrdiff_t s) {
  Signal y(x.size());
  for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(x.size()); ++n)
    y[static_cast<std::size_t>(n)] =
        2 * (at(x, n) - at(x, n - s));
  return y;
}

// Shifts a signal left by `delay` samples (compensating a causal filter's
// group delay), replicating the final sample at the tail.
Signal advance(Signal y, std::ptrdiff_t delay) {
  if (delay <= 0 || y.empty()) return y;
  const auto n = static_cast<std::ptrdiff_t>(y.size());
  for (std::ptrdiff_t i = 0; i < n; ++i)
    y[static_cast<std::size_t>(i)] = at(y, i + delay);
  return y;
}

}  // namespace

WaveletDecomposition wavelet_decompose(const Signal& x, std::size_t scales) {
  HBRP_REQUIRE(scales >= 1 && scales <= kWaveletScales,
               "wavelet_decompose(): scales must be in [1, 4]");
  WaveletDecomposition out;
  Signal approx = x;
  double approx_delay = 0.0;  // cumulative group delay of `approx`
  for (std::size_t j = 1; j <= scales; ++j) {
    const auto s = static_cast<std::ptrdiff_t>(1) << (j - 1);
    const double detail_delay =
        approx_delay + static_cast<double>(s) / 2.0;
    Signal detail = highpass(approx, s);
    out.detail[j - 1] =
        advance(std::move(detail),
                static_cast<std::ptrdiff_t>(detail_delay + 0.5));

    approx = lowpass(approx, s);
    approx_delay += 1.5 * static_cast<double>(s);
  }
  out.approx =
      advance(std::move(approx), static_cast<std::ptrdiff_t>(approx_delay + 0.5));
  return out;
}

}  // namespace hbrp::dsp
