// À-trous dyadic wavelet transform with the quadratic-spline wavelet.
//
// This is the transform behind the paper's peak detector (Rincon et al. 2011,
// after Li et al. / Mallat): the ECG is decomposed into four dyadic scales
// 2^1..2^4 without subsampling; QRS complexes appear as modulus-maximum pairs
// of opposite sign across scales, and the R peak is the zero-crossing between
// them on the finest scale.
//
// Filters (Mallat's quadratic spline, integer-friendly):
//   lowpass  h = (1/8) [1 3 3 1]
//   highpass g = 2 [1 -1]
// At level j the taps are spaced 2^(j-1) samples apart ("holes"). Each output
// is phase-compensated for its group delay so that wavelet extrema align with
// the temporal location of the generating slope in the input signal.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "dsp/signal.hpp"

namespace hbrp::dsp {

/// Maximum decomposition depth supported (the detector uses all four).
inline constexpr std::size_t kWaveletScales = 4;

struct WaveletDecomposition {
  /// detail[j] is W_{2^(j+1)} x, aligned to the input timeline.
  std::array<Signal, kWaveletScales> detail;
  /// Final smooth approximation S_{2^4} x.
  Signal approx;
};

/// Decomposes `x` into `scales` dyadic detail signals (1..kWaveletScales).
/// All outputs have the same length as the input.
WaveletDecomposition wavelet_decompose(const Signal& x,
                                       std::size_t scales = kWaveletScales);

}  // namespace hbrp::dsp
