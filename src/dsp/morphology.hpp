// Flat-structuring-element mathematical morphology on 1-D integer signals.
//
// These operators implement the ECG conditioning chain of Rincon et al.
// (IEEE TITB 2011), which the paper adopts for its filtering stage:
//   - baseline-wander removal: the signal's baseline is estimated by an
//     opening (removes peaks) followed by a closing (removes pits) with
//     structuring elements sized to span the QRS complex and the full beat
//     respectively, and subtracted from the input;
//   - impulsive-noise suppression: the average of open-close and close-open
//     with a short element.
// Erosion/dilation use the monotonic-wedge algorithm (van Herk style deque),
// O(1) amortized per sample, matching what fits a 6 MHz WBSN budget.
#pragma once

#include <cstddef>

#include "dsp/signal.hpp"

namespace hbrp::dsp {

/// Sliding-window minimum with a centred flat structuring element of
/// `length` samples (length must be odd and >= 1). Borders replicate the
/// edge samples.
Signal erode(const Signal& x, std::size_t length);

/// Sliding-window maximum, same conventions as erode().
Signal dilate(const Signal& x, std::size_t length);

/// Opening: dilate(erode(x)). Removes positive peaks narrower than the
/// structuring element.
Signal open(const Signal& x, std::size_t length);

/// Closing: erode(dilate(x)). Removes negative pits narrower than the
/// structuring element.
Signal close(const Signal& x, std::size_t length);

/// Parameters of the ECG conditioning chain, in samples.
struct FilterConfig {
  /// Structuring element spanning slightly more than the widest QRS
  /// (default 0.2 s at 360 Hz, must be odd).
  std::size_t baseline_open_len = 71;
  /// Element spanning a whole beat for the closing step (default ~0.42 s).
  std::size_t baseline_close_len = 151;
  /// Short element for impulsive noise suppression (default ~8 ms).
  std::size_t noise_len = 3;

  /// Scales the defaults (tuned for 360 Hz) to another sampling rate.
  static FilterConfig for_rate(int fs_hz);
};

/// Estimates the baseline wander of `x` (opening then closing).
Signal baseline_estimate(const Signal& x, const FilterConfig& cfg = {});

/// Removes baseline wander: x - baseline_estimate(x).
Signal remove_baseline(const Signal& x, const FilterConfig& cfg = {});

/// Suppresses impulsive noise: (open(close(x)) + close(open(x))) / 2.
Signal suppress_noise(const Signal& x, const FilterConfig& cfg = {});

/// Full conditioning chain: baseline removal followed by noise suppression.
Signal condition_ecg(const Signal& x, const FilterConfig& cfg = {});

}  // namespace hbrp::dsp
