#include "dsp/streaming.hpp"

#include <array>
#include <span>

#include "math/check.hpp"

namespace hbrp::dsp {

namespace {

using Chain = std::span<SlidingExtremum* const>;

// Feeds one sample through a cascade of stages.
std::optional<Sample> chain_push(Chain chain, Sample x) {
  std::optional<Sample> value = x;
  for (SlidingExtremum* stage : chain) {
    if (!value) return std::nullopt;
    value = stage->push(*value);
  }
  return value;
}

// Drains a cascade: each stage's right-border tail is propagated through
// the remaining stages, then those stages flush in turn.
std::vector<Sample> chain_flush(Chain chain) {
  std::vector<Sample> pending;
  for (SlidingExtremum* stage : chain) {
    std::vector<Sample> next;
    for (const Sample s : pending)
      if (const auto y = stage->push(s)) next.push_back(*y);
    const std::vector<Sample> tail = stage->flush();
    next.insert(next.end(), tail.begin(), tail.end());
    pending = std::move(next);
  }
  return pending;
}

}  // namespace

SlidingExtremum::SlidingExtremum(Kind kind, std::size_t length)
    : kind_(kind), half_(length / 2), ring_(length + 1) {
  HBRP_REQUIRE(length >= 1 && length % 2 == 1,
               "SlidingExtremum: length must be odd and >= 1");
}

SlidingExtremum::Entry& SlidingExtremum::wedge_back() {
  std::size_t i = head_ + count_ - 1;
  if (i >= ring_.size()) i -= ring_.size();
  return ring_[i];
}

void SlidingExtremum::wedge_insert(std::ptrdiff_t index, Sample value) {
  // Erode the wedge from the back: entries no better than the newcomer can
  // never be a window extremum again (the newcomer is newer and at least as
  // good). Ties evict too, keeping the wedge minimal.
  const bool is_min = kind_ == Kind::Min;
  while (count_ > 0) {
    const Sample incumbent = wedge_back().value;
    const bool better = is_min ? value <= incumbent : value >= incumbent;
    if (!better) break;
    --count_;
  }
  std::size_t i = head_ + count_;
  if (i >= ring_.size()) i -= ring_.size();
  ring_[i] = {index, value};
  ++count_;
}

std::optional<Sample> SlidingExtremum::push(Sample x) {
  if (next_in_ == 0) {
    // Left border: the batch operator replicates x[0] outside the signal.
    for (std::ptrdiff_t i = -static_cast<std::ptrdiff_t>(half_); i < 0; ++i)
      wedge_insert(i, x);
  }
  wedge_insert(next_in_, x);
  last_ = x;
  const std::ptrdiff_t center = next_in_ - static_cast<std::ptrdiff_t>(half_);
  ++next_in_;
  if (center < 0) return std::nullopt;
  return emit_for_center(center);
}

std::optional<Sample> SlidingExtremum::emit_for_center(std::ptrdiff_t center) {
  HBRP_ASSERT(center == next_out_);
  const std::ptrdiff_t lower = center - static_cast<std::ptrdiff_t>(half_);
  while (count_ > 0 && ring_[head_].index < lower) {
    --count_;
    if (++head_ == ring_.size()) head_ = 0;
  }
  HBRP_ASSERT(count_ > 0);
  ++next_out_;
  return ring_[head_].value;
}

std::vector<Sample> SlidingExtremum::flush() {
  std::vector<Sample> out;
  // Right border: replicate the final sample for the last half_ outputs.
  for (std::size_t k = 0; k < half_ && next_in_ > 0; ++k)
    if (const auto y = push(last_)) out.push_back(*y);
  head_ = 0;
  count_ = 0;
  next_in_ = 0;
  next_out_ = 0;
  return out;
}

DelayLine::DelayLine(std::size_t delay) : delay_(delay) {}

std::optional<Sample> DelayLine::push(Sample x) {
  fifo_.push_back(x);
  if (fifo_.size() <= delay_) return std::nullopt;
  const Sample out = fifo_.front();
  fifo_.pop_front();
  return out;
}

std::vector<Sample> DelayLine::flush() {
  std::vector<Sample> out(fifo_.begin(), fifo_.end());
  fifo_.clear();
  return out;
}

StreamingConditioner::StreamingConditioner(const FilterConfig& cfg)
    : cfg_(cfg),
      b_erode_(SlidingExtremum::Kind::Min, cfg.baseline_open_len),
      b_dilate_(SlidingExtremum::Kind::Max, cfg.baseline_open_len),
      b_dilate2_(SlidingExtremum::Kind::Max, cfg.baseline_close_len),
      b_erode2_(SlidingExtremum::Kind::Min, cfg.baseline_close_len),
      x_delay_((cfg.baseline_open_len - 1) + (cfg.baseline_close_len - 1)),
      oc_dilate_(SlidingExtremum::Kind::Max, cfg.noise_len),
      oc_erode_(SlidingExtremum::Kind::Min, cfg.noise_len),
      oc_erode2_(SlidingExtremum::Kind::Min, cfg.noise_len),
      oc_dilate2_(SlidingExtremum::Kind::Max, cfg.noise_len),
      co_erode_(SlidingExtremum::Kind::Min, cfg.noise_len),
      co_dilate_(SlidingExtremum::Kind::Max, cfg.noise_len),
      co_dilate2_(SlidingExtremum::Kind::Max, cfg.noise_len),
      co_erode2_(SlidingExtremum::Kind::Min, cfg.noise_len) {
  HBRP_REQUIRE(cfg.baseline_open_len < cfg.baseline_close_len,
               "StreamingConditioner: opening element must be shorter than "
               "closing one");
  total_delay_ = x_delay_.delay() + 2 * (cfg.noise_len - 1);
}

std::optional<Sample> StreamingConditioner::push(Sample x) {
  // Baseline branch: open (erode, dilate) then close (dilate, erode), with
  // the raw input running down a parallel delay line for the subtraction.
  const std::array<SlidingExtremum*, 4> baseline = {&b_erode_, &b_dilate_,
                                                    &b_dilate2_, &b_erode2_};
  const std::optional<Sample> base = chain_push(baseline, x);
  const std::optional<Sample> delayed = x_delay_.push(x);
  HBRP_ASSERT(base.has_value() == delayed.has_value());
  if (!base) return std::nullopt;
  return push_baseline_removed(*delayed - *base);
}

std::optional<Sample> StreamingConditioner::push_baseline_removed(Sample z) {
  // Noise suppression: open(close(z)) and close(open(z)) run in parallel at
  // identical group delay, then average with round-to-nearest.
  const std::array<SlidingExtremum*, 4> oc = {&oc_dilate_, &oc_erode_,
                                              &oc_erode2_, &oc_dilate2_};
  const std::array<SlidingExtremum*, 4> co = {&co_erode_, &co_dilate_,
                                              &co_dilate2_, &co_erode2_};
  const std::optional<Sample> a = chain_push(oc, z);
  const std::optional<Sample> b = chain_push(co, z);
  HBRP_ASSERT(a.has_value() == b.has_value());
  if (!a) return std::nullopt;
  return static_cast<Sample>((*a + *b + 1) >> 1);
}

std::vector<Sample> StreamingConditioner::flush() {
  const std::array<SlidingExtremum*, 4> baseline = {&b_erode_, &b_dilate_,
                                                    &b_dilate2_, &b_erode2_};
  const std::array<SlidingExtremum*, 4> oc = {&oc_dilate_, &oc_erode_,
                                              &oc_erode2_, &oc_dilate2_};
  const std::array<SlidingExtremum*, 4> co = {&co_erode_, &co_dilate_,
                                              &co_dilate2_, &co_erode2_};

  // Remaining baseline estimates pair one-to-one with the raw samples still
  // in the delay line.
  const std::vector<Sample> base_tail = chain_flush(baseline);
  const std::vector<Sample> x_tail = x_delay_.flush();
  HBRP_REQUIRE(base_tail.size() == x_tail.size(),
               "StreamingConditioner: branch desynchronization on flush");

  std::vector<Sample> out;
  for (std::size_t i = 0; i < x_tail.size(); ++i)
    if (const auto y = push_baseline_removed(x_tail[i] - base_tail[i]))
      out.push_back(*y);

  const std::vector<Sample> oc_tail = chain_flush(oc);
  const std::vector<Sample> co_tail = chain_flush(co);
  HBRP_REQUIRE(oc_tail.size() == co_tail.size(),
               "StreamingConditioner: noise branches desynchronized");
  for (std::size_t i = 0; i < oc_tail.size(); ++i)
    out.push_back(static_cast<Sample>((oc_tail[i] + co_tail[i] + 1) >> 1));
  return out;
}

std::size_t StreamingConditioner::memory_samples() const {
  std::size_t acc = x_delay_.delay();
  const std::array<const SlidingExtremum*, 12> stages = {
      &b_erode_,   &b_dilate_,  &b_dilate2_,  &b_erode2_,
      &oc_dilate_, &oc_erode_,  &oc_erode2_,  &oc_dilate2_,
      &co_erode_,  &co_dilate_, &co_dilate2_, &co_erode2_};
  for (const SlidingExtremum* s : stages) acc += s->memory_samples();
  return acc;
}

}  // namespace hbrp::dsp
