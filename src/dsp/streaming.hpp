// Streaming (sample-by-sample) signal conditioning with bounded memory.
//
// The batch operators in dsp/morphology.hpp process whole records — fine for
// offline evaluation, impossible on a WBSN that sees one ADC sample at a
// time and owns 96 KB of RAM. This module provides the firmware-shaped
// equivalents: push one sample, get conditioned samples out after a fixed
// group delay, never holding more than a few structuring-element lengths of
// history.
//
// Equivalence contract (tested): away from the record borders, the
// streaming chain emits exactly the samples the batch chain produces; at
// the left border both replicate the first sample, and flush() finishes the
// tail with the batch right-border semantics.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "dsp/morphology.hpp"
#include "dsp/signal.hpp"

namespace hbrp::dsp {

/// Sliding-window extremum over a centred window of odd `length`, one
/// sample in, at most one out. Output lags input by length/2 samples.
class SlidingExtremum {
 public:
  enum class Kind { Min, Max };

  SlidingExtremum(Kind kind, std::size_t length);

  /// Feeds one sample; returns the next output sample once the window has
  /// warmed up (after length/2 pushes), else nullopt.
  std::optional<Sample> push(Sample x);

  /// Emits the remaining length/2 outputs (right border, replicating the
  /// last input as the batch operator does). The filter is left in its
  /// initial (empty) state.
  std::vector<Sample> flush();

  std::size_t delay() const { return half_; }
  /// Upper bound on retained samples (the RAM the kernel needs). Also the
  /// wedge ring capacity: the window spans length samples and one extra
  /// slot absorbs the push-before-evict transient.
  std::size_t memory_samples() const { return 2 * half_ + 2; }

 private:
  /// One monotonic-wedge entry: a sample that is still a candidate extremum
  /// for some future window position.
  struct Entry {
    std::ptrdiff_t index = 0;
    Sample value = 0;
  };

  std::optional<Sample> emit_for_center(std::ptrdiff_t center);
  void wedge_insert(std::ptrdiff_t index, Sample value);
  Entry& wedge_back();

  Kind kind_;
  std::size_t half_;
  // Monotonic wedge in a fixed flat ring (no deque, no per-sample heap
  // traffic): values run from the window extremum at the front towards the
  // newest sample at the back, front-evicted as the window slides.
  std::vector<Entry> ring_;
  std::size_t head_ = 0;   // ring slot of the front entry
  std::size_t count_ = 0;  // live entries
  std::ptrdiff_t next_in_ = 0;   // index of the next input sample
  std::ptrdiff_t next_out_ = 0;  // centre index of the next output
  Sample last_ = 0;
};

/// A fixed-delay FIFO used to align parallel branches of a filter graph.
class DelayLine {
 public:
  explicit DelayLine(std::size_t delay);

  /// Pushes a sample; returns the sample from `delay` pushes ago once
  /// primed.
  std::optional<Sample> push(Sample x);

  /// Remaining buffered samples, oldest first. Resets the line.
  std::vector<Sample> flush();

  std::size_t delay() const { return delay_; }

 private:
  std::size_t delay_;
  std::deque<Sample> fifo_;
};

/// The full ECG conditioning chain (baseline removal + impulsive-noise
/// suppression) in streaming form. Group delay is fixed and queryable;
/// outputs are bit-exact with dsp::condition_ecg() away from borders.
class StreamingConditioner {
 public:
  explicit StreamingConditioner(const FilterConfig& cfg = {});

  /// Feeds one raw sample; returns zero or one conditioned samples.
  std::optional<Sample> push(Sample x);

  /// Drains everything still in flight (right-border handling) and resets.
  std::vector<Sample> flush();

  /// Total input-to-output delay in samples.
  std::size_t delay() const { return total_delay_; }

  /// Worst-case retained samples across all internal state (the figure to
  /// compare against the WBSN's RAM).
  std::size_t memory_samples() const;

 private:
  std::optional<Sample> push_baseline_removed(Sample z);

  FilterConfig cfg_;
  // Baseline branch: open(x) then close(...), with the raw input delayed in
  // parallel for the subtraction.
  SlidingExtremum b_erode_, b_dilate_, b_dilate2_, b_erode2_;
  DelayLine x_delay_;
  // Noise-suppression stage on the baseline-free signal: open-close and
  // close-open branches averaged.
  SlidingExtremum oc_dilate_, oc_erode_, oc_erode2_, oc_dilate2_;
  SlidingExtremum co_erode_, co_dilate_, co_dilate2_, co_erode2_;
  std::size_t total_delay_ = 0;
};

}  // namespace hbrp::dsp
