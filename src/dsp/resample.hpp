// Integer-factor resampling and beat-window extraction.
//
// The paper's embedded classifier consumes beats downsampled 4x (360 Hz ->
// 90 Hz, 200-sample window -> 50 samples), both to shrink the stored random
// projection matrix and to cut per-beat arithmetic. Downsampling here
// averages each group of `factor` samples (a box anti-alias filter that is
// exact in integer arithmetic), with plain decimation also available since
// dropping matrix columns — the paper's trick — is equivalent to decimating
// the input.
#pragma once

#include <cstddef>

#include "dsp/signal.hpp"

namespace hbrp::dsp {

/// Box-filtered downsampling: output[i] = round(mean(x[i*f .. i*f+f-1])).
/// A trailing partial group is averaged over its actual length.
Signal downsample_avg(const Signal& x, std::size_t factor);

/// Plain decimation: output[i] = x[i * factor].
Signal decimate(const Signal& x, std::size_t factor);

/// Extracts a window of `before + after` samples centred on `peak`
/// (samples [peak - before, peak + after)), replicating edge samples when
/// the window overruns the signal boundary.
Signal extract_window(const Signal& x, std::size_t peak, std::size_t before,
                      std::size_t after);

}  // namespace hbrp::dsp
