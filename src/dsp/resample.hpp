// Integer-factor resampling and beat-window extraction.
//
// The paper's embedded classifier consumes beats downsampled 4x (360 Hz ->
// 90 Hz, 200-sample window -> 50 samples), both to shrink the stored random
// projection matrix and to cut per-beat arithmetic. Downsampling here
// averages each group of `factor` samples (a box anti-alias filter that is
// exact in integer arithmetic), with plain decimation also available since
// dropping matrix columns — the paper's trick — is equivalent to decimating
// the input.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/signal.hpp"

namespace hbrp::dsp {

/// Number of samples downsample_avg() produces for an n-sample input.
constexpr std::size_t downsampled_size(std::size_t n, std::size_t factor) {
  return (n + factor - 1) / factor;
}

/// Box-filtered downsampling: output[i] = round(mean(x[i*f .. i*f+f-1])).
/// A trailing partial group is averaged over its actual length.
Signal downsample_avg(const Signal& x, std::size_t factor);

/// Allocation-free form of downsample_avg() for batch hot paths: writes
/// exactly downsampled_size(x.size(), factor) samples into `out` (which must
/// be at least that large) and returns that count.
std::size_t downsample_avg_into(std::span<const Sample> x, std::size_t factor,
                                std::span<Sample> out);

/// Plain decimation: output[i] = x[i * factor].
Signal decimate(const Signal& x, std::size_t factor);

/// Extracts a window of `before + after` samples centred on `peak`
/// (samples [peak - before, peak + after)), replicating edge samples when
/// the window overruns the signal boundary.
Signal extract_window(const Signal& x, std::size_t peak, std::size_t before,
                      std::size_t after);

}  // namespace hbrp::dsp
