// Streaming signal-quality estimation (SQI) for the acquisition front-end.
//
// A field-deployed WBSN sees lead-off intervals (electrode detached: the
// front-end rails or flat-lines), amplifier/ADC saturation, motion bursts
// and electrosurgery impulses. Classifying beats through those segments
// produces garbage labels at best and poisons the adaptive detector
// threshold at worst. This module grades the raw ADC stream in fixed-length
// chunks using four integer-only checks — rail clipping, flat-line runs,
// chunk variance (lead-off collapse) and impulsive sample-to-sample jumps —
// and drives a three-state machine with hysteresis:
//
//   Good ──(suspect/bad chunk)──▶ Suspect ──(bad chunk)──▶ Bad
//   Bad  ──(N clean chunks)────▶ Suspect ──(N clean chunks)──▶ Good
//
// Demotion is immediate (one offending chunk), promotion requires
// `recover_chunks` consecutive clean chunks, so a flapping electrode cannot
// oscillate the consumer. All per-sample work is integer compares and
// 64-bit accumulation — affordable on the 6 MHz target next to the
// morphological conditioner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "dsp/signal.hpp"

namespace hbrp::dsp {

/// Acquisition-quality grade of a signal segment.
enum class SignalQuality : std::uint8_t {
  Good = 0,     ///< trust detections and classifications
  Suspect = 1,  ///< detect, but escalate beats to the safe default (Unknown)
  Bad = 2,      ///< suppress detection entirely (lead-off / saturation)
};

constexpr const char* to_string(SignalQuality q) {
  switch (q) {
    case SignalQuality::Good: return "good";
    case SignalQuality::Suspect: return "suspect";
    case SignalQuality::Bad: return "bad";
  }
  return "?";
}

struct QualityConfig {
  int fs_hz = kMitBihFs;
  /// SQI evaluation granularity (s). Short enough that one bad chunk costs
  /// little signal, long enough to hold a statistically meaningful count.
  double chunk_s = 0.5;

  /// ADC rails (MIT-BIH-style 11-bit front end). Samples outside are
  /// clamped to the rails before accumulation, so arbitrarily corrupt
  /// int32 garbage degrades into detectable clipping instead of overflow.
  Sample rail_low = 0;
  Sample rail_high = 2047;
  /// A sample within this distance of a rail counts as clipped.
  Sample rail_margin = 8;

  /// |x[n] - x[n-1]| <= flat_delta counts toward the flat-line fraction.
  /// Zero means exact repeats only: a detached electrode is *exactly*
  /// constant, whereas clean quantized ECG dithers by ±1 adu even in quiet
  /// diastole, so this separates the two without false alarms.
  Sample flat_delta = 0;
  /// |x[n] - x[n-1]| >= impulse_delta counts toward the impulse fraction.
  Sample impulse_delta = 700;

  /// Chunk fractions that demote to Bad.
  double clip_bad_frac = 0.10;
  double flat_bad_frac = 0.80;
  /// Chunk variance (adu^2) at or below which the chunk is a flat-line /
  /// lead-off chunk regardless of the run-length check.
  double bad_variance = 2.0;

  /// Chunk fractions that demote to (at least) Suspect.
  double clip_suspect_frac = 0.02;
  double flat_suspect_frac = 0.50;
  double impulse_suspect_frac = 0.02;

  /// Consecutive clean chunks required to step one state toward Good.
  int recover_chunks = 2;
};

/// Integer summary of one graded chunk (exposed for tests and telemetry).
struct QualityMetrics {
  std::size_t samples = 0;
  std::size_t clipped = 0;
  std::size_t flat = 0;
  std::size_t impulses = 0;
  double variance = 0.0;
  SignalQuality grade = SignalQuality::Good;
};

class SignalQualityEstimator {
 public:
  explicit SignalQualityEstimator(const QualityConfig& cfg = {});

  /// Feeds one raw ADC sample. Returns the (possibly unchanged) machine
  /// state whenever a chunk boundary is crossed, nullopt otherwise.
  std::optional<SignalQuality> push(Sample x);

  /// Current state of the hysteresis machine.
  SignalQuality state() const { return state_; }

  /// Metrics of the most recently completed chunk.
  const QualityMetrics& last_chunk() const { return last_; }

  /// Samples per grading chunk.
  std::size_t chunk_samples() const { return chunk_samples_; }

  /// Returns to the initial (Good, empty-chunk) state.
  void reset();

 private:
  SignalQuality grade_chunk();

  QualityConfig cfg_;
  std::size_t chunk_samples_ = 0;

  // Per-chunk integer accumulators.
  std::size_t n_ = 0;
  std::size_t clipped_ = 0;
  std::size_t flat_ = 0;
  std::size_t impulses_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t sum_sq_ = 0;
  Sample prev_ = 0;
  bool has_prev_ = false;

  // Precomputed integer thresholds (counts per chunk), so the per-chunk
  // grading is compare-only.
  std::size_t clip_bad_count_ = 0;
  std::size_t flat_bad_count_ = 0;
  std::size_t clip_suspect_count_ = 0;
  std::size_t flat_suspect_count_ = 0;
  std::size_t impulse_suspect_count_ = 0;

  SignalQuality state_ = SignalQuality::Good;
  int clean_streak_ = 0;
  QualityMetrics last_;
};

}  // namespace hbrp::dsp
