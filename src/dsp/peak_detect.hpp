// Wavelet-based R-peak detection.
//
// Implements the detector the paper inherits from Rincon et al. 2011 (after
// Li et al. 1995): QRS complexes generate pairs of modulus maxima with
// opposite signs across the dyadic wavelet scales; the R peak is the
// zero-crossing between the members of a pair on a fine scale. An adaptive
// per-block threshold rejects noise maxima, a refractory period suppresses
// double detections (T waves), and a search-back pass with a lowered
// threshold recovers low-amplitude beats when an abnormally long RR interval
// is observed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsp/signal.hpp"
#include "dsp/wavelet.hpp"

namespace hbrp::dsp {

/// Which R-peak detector a streaming consumer runs. Wavelet is the paper's
/// cross-scale modulus-maxima detector (the accuracy reference);
/// AdaptiveThreshold is the O(1)-per-sample running-amplitude-decay fast
/// path in kernels/dsp_peaks.hpp, accuracy-gated against the wavelet
/// detector by tests/test_detector_equivalence.cpp.
enum class PeakDetectorKind : std::uint8_t { Wavelet, AdaptiveThreshold };

struct PeakDetectorConfig {
  int fs_hz = kMitBihFs;
  /// Wavelet scale index (0-based) whose modulus maxima drive detection;
  /// scale 2^3 concentrates QRS energy at 360 Hz.
  std::size_t detect_scale = 2;
  /// Minimum separation between beats (s). 250 ms == 240 bpm ceiling.
  double refractory_s = 0.25;
  /// Maximum separation between the two maxima of a QRS pair (s).
  double pair_window_s = 0.12;
  /// Adaptive threshold as a fraction of the running signal-peak estimate.
  double threshold_frac = 0.3;
  /// Analysis block used to seed the adaptive threshold (s).
  double block_s = 2.0;
  /// Search-back triggers when RR exceeds this multiple of the running mean.
  double searchback_rr_factor = 1.66;
  /// Threshold scaling during search-back.
  double searchback_frac = 0.4;

  /// Detector selection for streaming consumers (core::StreamingBeatMonitor
  /// and everything above it). Batch dsp::detect_r_peaks always runs the
  /// wavelet detector; kernels::detect_r_peaks_adaptive reads the fields
  /// below.
  PeakDetectorKind kind = PeakDetectorKind::Wavelet;
  /// Exponential decay rate (per second) of the running QRS-energy estimate
  /// between beats.
  double adaptive_decay_per_s = 1.0;
  /// Trigger threshold as a fraction of the running QRS-energy estimate.
  /// 0.5 clears synthetic tall-T and noisy-LBBB records with the
  /// slope-energy front end (see kernels::detect_r_peaks_adaptive).
  double adaptive_frac = 0.5;
  /// Floor for the running estimate, as a fraction of the median per-block
  /// energy maximum (keeps long pauses from decaying into the noise floor).
  double adaptive_floor_frac = 0.05;
  /// Forward apex-search window after a threshold crossing (s).
  double adaptive_search_s = 0.10;
};

/// Detects R-peak sample indices in a conditioned (baseline-free) ECG lead.
/// Returned indices are sorted and unique.
std::vector<std::size_t> detect_r_peaks(const Signal& conditioned,
                                        const PeakDetectorConfig& cfg = {});

/// Detection quality versus reference annotations: a detection matches a
/// reference peak if within `tolerance` samples.
struct PeakMatchStats {
  std::size_t true_positive = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;

  double sensitivity() const;
  double positive_predictivity() const;
};

PeakMatchStats match_peaks(const std::vector<std::size_t>& detected,
                           const std::vector<std::size_t>& reference,
                           std::size_t tolerance);

}  // namespace hbrp::dsp
