// Common signal types for the acquisition/processing chain.
//
// Samples are signed 32-bit integers throughout the embedded-facing DSP path:
// the MIT-BIH-style ADC emits 11-bit codes, all filters here are exact in
// integer arithmetic (morphology) or use power-of-two scaling (spline
// wavelet), and the WBSN platform the paper targets has no FPU.
#pragma once

#include <cstdint>
#include <vector>

namespace hbrp::dsp {

using Sample = std::int32_t;
using Signal = std::vector<Sample>;

/// Sampling rate of the MIT-BIH Arrhythmia recordings (Hz).
inline constexpr int kMitBihFs = 360;

/// Embedded-side sampling rate after the paper's 4x downsampling (Hz).
inline constexpr int kEmbeddedFs = 90;

}  // namespace hbrp::dsp
