#include "dsp/quality.hpp"

#include <algorithm>
#include <cmath>

#include "math/check.hpp"

namespace hbrp::dsp {

namespace {

std::size_t frac_count(double frac, std::size_t chunk) {
  // Threshold count for "fraction of the chunk"; ceil so a zero fraction
  // still requires at least one sample and frac==1 requires the full chunk.
  return static_cast<std::size_t>(
      std::ceil(frac * static_cast<double>(chunk)));
}

}  // namespace

SignalQualityEstimator::SignalQualityEstimator(const QualityConfig& cfg)
    : cfg_(cfg) {
  HBRP_REQUIRE(cfg.fs_hz > 0, "SignalQualityEstimator: fs_hz must be > 0");
  HBRP_REQUIRE(cfg.chunk_s > 0.0,
               "SignalQualityEstimator: chunk_s must be > 0");
  HBRP_REQUIRE(cfg.rail_low < cfg.rail_high,
               "SignalQualityEstimator: rail_low must be below rail_high");
  HBRP_REQUIRE(cfg.recover_chunks >= 1,
               "SignalQualityEstimator: recover_chunks must be >= 1");
  chunk_samples_ = static_cast<std::size_t>(cfg.chunk_s * cfg.fs_hz);
  HBRP_REQUIRE(chunk_samples_ >= 8,
               "SignalQualityEstimator: chunk must span at least 8 samples");
  clip_bad_count_ = std::max<std::size_t>(
      1, frac_count(cfg.clip_bad_frac, chunk_samples_));
  flat_bad_count_ = std::max<std::size_t>(
      1, frac_count(cfg.flat_bad_frac, chunk_samples_));
  clip_suspect_count_ = std::max<std::size_t>(
      1, frac_count(cfg.clip_suspect_frac, chunk_samples_));
  flat_suspect_count_ = std::max<std::size_t>(
      1, frac_count(cfg.flat_suspect_frac, chunk_samples_));
  impulse_suspect_count_ = std::max<std::size_t>(
      1, frac_count(cfg.impulse_suspect_frac, chunk_samples_));
}

void SignalQualityEstimator::reset() {
  n_ = clipped_ = flat_ = impulses_ = 0;
  sum_ = sum_sq_ = 0;
  has_prev_ = false;
  state_ = SignalQuality::Good;
  clean_streak_ = 0;
  last_ = QualityMetrics{};
}

std::optional<SignalQuality> SignalQualityEstimator::push(Sample x) {
  // Clamp first: corrupt samples far outside the ADC range must degrade
  // into countable clipping, not overflow the accumulators.
  const Sample clamped = std::clamp(x, cfg_.rail_low, cfg_.rail_high);
  if (clamped - cfg_.rail_low <= cfg_.rail_margin ||
      cfg_.rail_high - clamped <= cfg_.rail_margin)
    ++clipped_;
  if (has_prev_) {
    const std::int64_t jump = std::abs(static_cast<std::int64_t>(clamped) -
                                       static_cast<std::int64_t>(prev_));
    if (jump <= cfg_.flat_delta) ++flat_;
    if (jump >= cfg_.impulse_delta) ++impulses_;
  }
  prev_ = clamped;
  has_prev_ = true;
  sum_ += clamped;
  sum_sq_ += static_cast<std::int64_t>(clamped) * clamped;
  if (++n_ < chunk_samples_) return std::nullopt;

  const SignalQuality grade = grade_chunk();
  n_ = clipped_ = flat_ = impulses_ = 0;
  sum_ = sum_sq_ = 0;
  // prev_ is kept across the boundary so the first delta of the next chunk
  // is still meaningful.

  if (grade == SignalQuality::Good) {
    if (state_ != SignalQuality::Good &&
        ++clean_streak_ >= cfg_.recover_chunks) {
      state_ = state_ == SignalQuality::Bad ? SignalQuality::Suspect
                                            : SignalQuality::Good;
      clean_streak_ = 0;
    }
  } else {
    // Demotion is immediate and resets any progress toward recovery.
    clean_streak_ = 0;
    state_ = std::max(state_, grade);
  }
  return state_;
}

SignalQuality SignalQualityEstimator::grade_chunk() {
  const auto n = static_cast<std::int64_t>(n_);
  // variance * n^2 == n * sum_sq - sum^2, exact in int64 for 11-bit chunks.
  const std::int64_t var_num = n * sum_sq_ - sum_ * sum_;
  const double variance =
      static_cast<double>(var_num) / (static_cast<double>(n) * n);

  last_.samples = n_;
  last_.clipped = clipped_;
  last_.flat = flat_;
  last_.impulses = impulses_;
  last_.variance = variance;

  if (clipped_ >= clip_bad_count_ || flat_ >= flat_bad_count_ ||
      variance <= cfg_.bad_variance)
    last_.grade = SignalQuality::Bad;
  else if (clipped_ >= clip_suspect_count_ || flat_ >= flat_suspect_count_ ||
           impulses_ >= impulse_suspect_count_)
    last_.grade = SignalQuality::Suspect;
  else
    last_.grade = SignalQuality::Good;
  return last_.grade;
}

}  // namespace hbrp::dsp
