#include "dsp/resample.hpp"

#include <algorithm>

#include "math/check.hpp"

namespace hbrp::dsp {

std::size_t downsample_avg_into(std::span<const Sample> x, std::size_t factor,
                                std::span<Sample> out) {
  HBRP_REQUIRE(factor >= 1, "downsample_avg_into(): factor must be >= 1");
  const std::size_t n = downsampled_size(x.size(), factor);
  HBRP_REQUIRE(out.size() >= n, "downsample_avg_into(): output too small");
  std::size_t o = 0;
  for (std::size_t start = 0; start < x.size(); start += factor) {
    const std::size_t end = std::min(x.size(), start + factor);
    std::int64_t acc = 0;
    for (std::size_t i = start; i < end; ++i) acc += x[i];
    const auto len = static_cast<std::int64_t>(end - start);
    // Round-to-nearest signed division.
    const std::int64_t rounded =
        acc >= 0 ? (acc + len / 2) / len : -((-acc + len / 2) / len);
    out[o++] = static_cast<Sample>(rounded);
  }
  return n;
}

Signal downsample_avg(const Signal& x, std::size_t factor) {
  HBRP_REQUIRE(factor >= 1, "downsample_avg(): factor must be >= 1");
  if (factor == 1) return x;
  Signal out(downsampled_size(x.size(), factor));
  downsample_avg_into(x, factor, out);
  return out;
}

Signal decimate(const Signal& x, std::size_t factor) {
  HBRP_REQUIRE(factor >= 1, "decimate(): factor must be >= 1");
  if (factor == 1) return x;
  Signal out;
  out.reserve(x.size() / factor + 1);
  for (std::size_t i = 0; i < x.size(); i += factor) out.push_back(x[i]);
  return out;
}

Signal extract_window(const Signal& x, std::size_t peak, std::size_t before,
                      std::size_t after) {
  HBRP_REQUIRE(!x.empty(), "extract_window(): empty signal");
  HBRP_REQUIRE(peak < x.size(), "extract_window(): peak out of range");
  Signal out(before + after);
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  const auto p = static_cast<std::ptrdiff_t>(peak);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::ptrdiff_t src =
        p - static_cast<std::ptrdiff_t>(before) +
        static_cast<std::ptrdiff_t>(i);
    out[i] = x[static_cast<std::size_t>(
        std::clamp(src, std::ptrdiff_t{0}, n - 1))];
  }
  return out;
}

}  // namespace hbrp::dsp
