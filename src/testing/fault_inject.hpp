// Deterministic acquisition-fault injection for robustness testing.
//
// Wraps any sample stream and overlays the failure modes a wearable ECG
// front-end actually exhibits: lead-off flat-lines, amplifier/ADC
// saturation plateaus, dropped and duplicated samples (radio/DMA glitches),
// Gaussian and impulsive noise bursts (motion, electrosurgery), and
// non-finite garbage from a misbehaving driver layer. All randomness flows
// from an explicit seed, so a faulted run is bit-reproducible in CI and a
// failure seed can be replayed.
//
// The injector emits `double` samples: that is the only way to represent
// the NaN/Inf fault class, and it mirrors the untrusted raw-ADC boundary
// the monitor's sanitizing push(double) overload defends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsp/signal.hpp"
#include "math/rng.hpp"

namespace hbrp::testing {

enum class FaultKind : std::uint8_t {
  LeadOff,       ///< electrode detached: output pinned to `level`
  Saturation,    ///< front-end railed: output pinned to the high rail
  DropSamples,   ///< samples silently lost (each input yields no output)
  DupSamples,    ///< samples duplicated (each input yields two outputs)
  GaussianNoise, ///< additive white noise, sigma = `magnitude`
  ImpulseNoise,  ///< sparse spikes of amplitude `magnitude` at `rate`
  NonFinite,     ///< NaN / +-Inf substituted at `rate`
};

const char* to_string(FaultKind kind);

/// One fault active over [start, start + duration) of the *input* stream.
struct FaultEvent {
  FaultKind kind = FaultKind::LeadOff;
  std::size_t start = 0;
  std::size_t duration = 0;
  /// LeadOff: output level (adu). GaussianNoise: sigma (adu).
  /// ImpulseNoise: spike amplitude (adu). Others: unused.
  double magnitude = 0.0;
  /// ImpulseNoise / NonFinite: per-sample corruption probability.
  double rate = 0.05;
};

struct FaultInjectorConfig {
  std::vector<FaultEvent> events;
  std::uint64_t seed = 1;
  /// Rails used by the Saturation fault and as the clamp for noisy output.
  dsp::Sample rail_low = 0;
  dsp::Sample rail_high = 2047;
};

/// Appends a seeded train of `count` short `kind` bursts scattered over
/// input indices [start, start + span): each burst's length is drawn
/// uniformly from [min_len, max_len] and its offset uniformly within the
/// window (bursts may overlap; FaultInjector composes overlapping events).
/// `magnitude`/`rate` carry through to every burst. The scenario engine
/// uses this for artefact storms and electrode-drop episodes; determinism
/// flows entirely from the caller's `rng`.
void append_burst_train(std::vector<FaultEvent>& events, math::Rng& rng,
                        FaultKind kind, std::size_t start, std::size_t span,
                        std::size_t count, std::size_t min_len,
                        std::size_t max_len, double magnitude,
                        double rate = 0.05);

class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorConfig cfg);

  /// Feeds one clean input sample; returns zero, one or two corrupted
  /// output samples depending on the faults active at this input index.
  std::vector<double> feed(dsp::Sample x);

  /// Number of input samples consumed so far.
  std::size_t input_index() const { return index_; }

  /// True if any event is active at input index `i`.
  bool active_at(std::size_t i) const;

  /// Convenience: runs a whole signal through a fresh injector.
  static std::vector<double> apply(const dsp::Signal& in,
                                   const FaultInjectorConfig& cfg);

 private:
  FaultInjectorConfig cfg_;
  math::Rng rng_;
  std::size_t index_ = 0;
};

}  // namespace hbrp::testing
