#include "testing/fault_inject.hpp"

#include <algorithm>
#include <limits>

#include "math/check.hpp"

namespace hbrp::testing {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::LeadOff: return "lead-off";
    case FaultKind::Saturation: return "saturation";
    case FaultKind::DropSamples: return "sample-drop";
    case FaultKind::DupSamples: return "sample-dup";
    case FaultKind::GaussianNoise: return "gaussian-noise";
    case FaultKind::ImpulseNoise: return "impulse-noise";
    case FaultKind::NonFinite: return "non-finite";
  }
  return "?";
}

void append_burst_train(std::vector<FaultEvent>& events, math::Rng& rng,
                        FaultKind kind, std::size_t start, std::size_t span,
                        std::size_t count, std::size_t min_len,
                        std::size_t max_len, double magnitude, double rate) {
  HBRP_REQUIRE(min_len > 0 && min_len <= max_len,
               "append_burst_train: need 0 < min_len <= max_len");
  HBRP_REQUIRE(span >= max_len,
               "append_burst_train: window shorter than the longest burst");
  for (std::size_t b = 0; b < count; ++b) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(min_len),
        static_cast<std::int64_t>(max_len)));
    const std::size_t offset = rng.uniform_index(span - len + 1);
    FaultEvent e;
    e.kind = kind;
    e.start = start + offset;
    e.duration = len;
    e.magnitude = magnitude;
    e.rate = rate;
    events.push_back(e);
  }
}

FaultInjector::FaultInjector(FaultInjectorConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed) {
  HBRP_REQUIRE(cfg_.rail_low < cfg_.rail_high,
               "FaultInjector: rail_low must be below rail_high");
  for (const FaultEvent& e : cfg_.events) {
    HBRP_REQUIRE(e.duration > 0, "FaultInjector: event duration must be > 0");
    HBRP_REQUIRE(e.rate >= 0.0 && e.rate <= 1.0,
                 "FaultInjector: event rate must be in [0, 1]");
  }
}

bool FaultInjector::active_at(std::size_t i) const {
  return std::any_of(cfg_.events.begin(), cfg_.events.end(),
                     [i](const FaultEvent& e) {
                       return i >= e.start && i < e.start + e.duration;
                     });
}

std::vector<double> FaultInjector::feed(dsp::Sample x) {
  const std::size_t i = index_++;
  double value = static_cast<double>(x);
  bool drop = false;
  bool dup = false;

  // Later events in the list win when windows overlap; drop/dup compose
  // with value faults (a saturated stretch can also lose samples).
  for (const FaultEvent& e : cfg_.events) {
    if (i < e.start || i >= e.start + e.duration) continue;
    switch (e.kind) {
      case FaultKind::LeadOff:
        value = e.magnitude;
        break;
      case FaultKind::Saturation:
        value = static_cast<double>(cfg_.rail_high);
        break;
      case FaultKind::DropSamples:
        drop = true;
        break;
      case FaultKind::DupSamples:
        dup = true;
        break;
      case FaultKind::GaussianNoise:
        value = std::clamp(value + rng_.normal(0.0, e.magnitude),
                           static_cast<double>(cfg_.rail_low),
                           static_cast<double>(cfg_.rail_high));
        break;
      case FaultKind::ImpulseNoise:
        if (rng_.bernoulli(e.rate))
          value = std::clamp(
              value + (rng_.bernoulli(0.5) ? e.magnitude : -e.magnitude),
              static_cast<double>(cfg_.rail_low),
              static_cast<double>(cfg_.rail_high));
        break;
      case FaultKind::NonFinite:
        if (rng_.bernoulli(e.rate)) {
          const auto pick = rng_.uniform_index(3);
          value = pick == 0
                      ? std::numeric_limits<double>::quiet_NaN()
                      : (pick == 1 ? std::numeric_limits<double>::infinity()
                                   : -std::numeric_limits<double>::infinity());
        }
        break;
    }
  }

  if (drop) return {};
  if (dup) return {value, value};
  return {value};
}

std::vector<double> FaultInjector::apply(const dsp::Signal& in,
                                         const FaultInjectorConfig& cfg) {
  FaultInjector injector(cfg);
  std::vector<double> out;
  out.reserve(in.size());
  for (const dsp::Sample x : in) {
    const auto ys = injector.feed(x);
    out.insert(out.end(), ys.begin(), ys.end());
  }
  return out;
}

}  // namespace hbrp::testing
