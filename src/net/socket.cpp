#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "math/check.hpp"

namespace hbrp::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  HBRP_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "socket: cannot set O_NONBLOCK");
}

void set_nodelay(int fd) {
  // Verdict frames are tiny; without TCP_NODELAY Nagle would batch them
  // behind the next chunk and wreck the latency figures for nothing.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

IoResult send_some(int fd, std::span<const unsigned char> bytes) {
  IoResult r;
  if (bytes.empty()) return r;
  const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  if (n > 0) {
    r.n = static_cast<std::size_t>(n);
    return r;
  }
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
    r.would_block = true;
    return r;
  }
  r.error = true;
  return r;
}

IoResult recv_some(int fd, std::span<unsigned char> into) {
  IoResult r;
  if (into.empty()) return r;
  const ssize_t n = ::recv(fd, into.data(), into.size(), 0);
  if (n > 0) {
    r.n = static_cast<std::size_t>(n);
    return r;
  }
  if (n == 0) {
    r.eof = true;
    return r;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    r.would_block = true;
    return r;
  }
  r.error = true;
  return r;
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HBRP_REQUIRE(fd >= 0, "socket: cannot create listener");
  listener_ = Socket(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  HBRP_REQUIRE(
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
      "socket: cannot bind 127.0.0.1:" + std::to_string(port));
  HBRP_REQUIRE(::listen(fd, backlog) == 0, "socket: listen failed");
  set_nonblocking(fd);

  socklen_t len = sizeof(addr);
  HBRP_REQUIRE(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      "socket: getsockname failed");
  port_ = ntohs(addr.sin_port);
}

Socket TcpListener::accept() {
  const int fd = ::accept(listener_.fd(), nullptr, nullptr);
  if (fd < 0) return Socket();
  Socket s(fd);
  set_nonblocking(fd);
  set_nodelay(fd);
  return s;
}

Socket connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket();
  Socket s(fd);
  set_nonblocking(fd);
  set_nodelay(fd);
  const sockaddr_in addr = loopback_addr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
      0)
    return s;  // loopback can complete synchronously
  if (errno == EINPROGRESS || errno == EINTR) return s;
  return Socket();
}

bool connect_finished(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return false;
  return err == 0;
}

}  // namespace hbrp::net
