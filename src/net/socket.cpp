#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "math/check.hpp"

namespace hbrp::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  HBRP_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "socket: cannot set O_NONBLOCK");
}

void set_nodelay(int fd) {
  // Verdict frames are tiny; without TCP_NODELAY Nagle would batch them
  // behind the next chunk and wreck the latency figures for nothing.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

IoResult send_some(int fd, std::span<const unsigned char> bytes) {
  IoResult r;
  if (bytes.empty()) return r;
  const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  if (n > 0) {
    r.n = static_cast<std::size_t>(n);
    return r;
  }
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
    r.would_block = true;
    return r;
  }
  r.error = true;
  return r;
}

IoResult recv_some(int fd, std::span<unsigned char> into) {
  IoResult r;
  if (into.empty()) return r;
  const ssize_t n = ::recv(fd, into.data(), into.size(), 0);
  if (n > 0) {
    r.n = static_cast<std::size_t>(n);
    return r;
  }
  if (n == 0) {
    r.eof = true;
    return r;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    r.would_block = true;
    return r;
  }
  r.error = true;
  return r;
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HBRP_REQUIRE(fd >= 0, "socket: cannot create listener");
  listener_ = Socket(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  HBRP_REQUIRE(
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
      "socket: cannot bind 127.0.0.1:" + std::to_string(port));
  HBRP_REQUIRE(::listen(fd, backlog) == 0, "socket: listen failed");
  set_nonblocking(fd);

  socklen_t len = sizeof(addr);
  HBRP_REQUIRE(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      "socket: getsockname failed");
  port_ = ntohs(addr.sin_port);
}

Socket TcpListener::accept() {
  const int fd = ::accept(listener_.fd(), nullptr, nullptr);
  if (fd < 0) return Socket();
  Socket s(fd);
  set_nonblocking(fd);
  set_nodelay(fd);
  return s;
}

Socket connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket();
  Socket s(fd);
  set_nonblocking(fd);
  set_nodelay(fd);
  const sockaddr_in addr = loopback_addr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
      0)
    return s;  // loopback can complete synchronously
  if (errno == EINPROGRESS || errno == EINTR) return s;
  return Socket();
}

bool connect_finished(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return false;
  return err == 0;
}

EventPoller::EventPoller() {
#ifdef __linux__
  // HBRP_NET_POLL=1 pins the poll(2) fallback so CI exercises both
  // backends on Linux hosts; anything else (or unset) takes epoll.
  const char* force = std::getenv("HBRP_NET_POLL");
  if (force == nullptr || force[0] != '1')
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
#endif
}

EventPoller::~EventPoller() {
#ifdef __linux__
  if (epfd_ >= 0) ::close(epfd_);
#endif
}

void EventPoller::watch(int fd, bool read, bool write) {
  if (fd < 0) return;
  if (!read && !write) {
    unwatch(fd);
    return;
  }
  const auto it = interest_.find(fd);
  if (it != interest_.end() && it->second.read == read &&
      it->second.write == write)
    return;  // steady state: no syscall, no map churn
#ifdef __linux__
  if (epfd_ >= 0) {
    epoll_event ev{};
    ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    const int op = it == interest_.end() ? EPOLL_CTL_ADD : EPOLL_CTL_MOD;
    if (::epoll_ctl(epfd_, op, fd, &ev) != 0 && errno == ENOENT)
      (void)::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  }
#endif
  interest_[fd] = Interest{read, write};
}

void EventPoller::unwatch(int fd) {
  if (fd < 0) return;
  const auto it = interest_.find(fd);
  if (it == interest_.end()) return;
#ifdef __linux__
  if (epfd_ >= 0) (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  interest_.erase(it);
}

std::size_t EventPoller::wait(int timeout_ms, std::vector<PollEvent>& out) {
  out.clear();
#ifdef __linux__
  if (epfd_ >= 0) {
    // 256 events per wait is plenty: level-triggered epoll re-reports
    // anything not consumed on the next wait, so a burst larger than the
    // batch just takes extra rounds, never loses readiness.
    epoll_event evs[256];
    const int n = ::epoll_wait(epfd_, evs, 256, timeout_ms);
    for (int i = 0; i < n; ++i) {
      PollEvent e;
      e.fd = evs[i].data.fd;
      e.readable = (evs[i].events & EPOLLIN) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.broken = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
    return out.size();
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, in] : interest_) {
    pollfd p{};
    p.fd = fd;
    p.events = static_cast<short>((in.read ? POLLIN : 0) |
                                  (in.write ? POLLOUT : 0));
    fds.push_back(p);
  }
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n <= 0) return 0;
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    PollEvent e;
    e.fd = p.fd;
    e.readable = (p.revents & POLLIN) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.broken = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(e);
  }
  return out.size();
}

WakePipe::WakePipe() {
  int fds[2] = {-1, -1};
  HBRP_REQUIRE(::pipe(fds) == 0, "socket: cannot create wake pipe");
  read_end_ = Socket(fds[0]);
  write_end_ = Socket(fds[1]);
  set_nonblocking(fds[0]);
  set_nonblocking(fds[1]);
}

void WakePipe::notify() {
  const unsigned char token = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  (void)::write(write_end_.fd(), &token, 1);
}

void WakePipe::consume() {
  unsigned char sink[256];
  while (::read(read_end_.fd(), sink, sizeof sink) > 0) {
  }
}

}  // namespace hbrp::net
