#include "net/client.hpp"

#include <poll.h>

#include <algorithm>
#include <cmath>
#include <thread>

#include "ecg/types.hpp"
#include "math/check.hpp"

namespace hbrp::net {

const char* to_string(LinkState s) {
  switch (s) {
    case LinkState::Idle: return "idle";
    case LinkState::Connecting: return "connecting";
    case LinkState::AwaitAck: return "await-ack";
    case LinkState::Established: return "established";
    case LinkState::Backoff: return "backoff";
    case LinkState::Closed: return "closed";
  }
  return "?";
}

SensorNodeClient::SensorNodeClient(embedded::EmbeddedClassifier classifier,
                                   NodeConfig cfg)
    : classifier_(std::move(classifier)), cfg_(std::move(cfg)) {
  HBRP_REQUIRE(cfg_.port != 0, "SensorNodeClient: gateway port is required");
  HBRP_REQUIRE(cfg_.chunk_samples >= 1 &&
                   cfg_.chunk_samples <= kMaxChunkSamples,
               "SensorNodeClient: chunk_samples out of range");
  backoff_ms_ = std::max(1, cfg_.backoff_initial_ms);
  if (cfg_.policy == TxPolicy::Selective) {
    monitor_.emplace(classifier_, cfg_.monitor);
    pending_sink_ = [this](const core::PendingBeat& pb) {
      on_pending_beat(pb);
    };
    // Drift escalation observes in on_pending_beat (which classifies every
    // beat itself, including the monitor flush tail), so the monitor hook
    // is deliberately NOT set — it would double-observe nothing here, but
    // the single observation point keeps the accounting obvious.
    if (cfg_.drift_centroids != nullptr)
      drift_.emplace(*cfg_.drift_centroids, cfg_.drift);
  }
}

dsp::Sample SensorNodeClient::sanitize(double x,
                                       const dsp::QualityConfig& rails,
                                       dsp::Sample& last,
                                       std::uint64_t* nonfinite_count) {
  if (!std::isfinite(x)) {
    // Sample-hold, exactly like StreamingBeatMonitor's untrusted boundary:
    // the timeline keeps its cadence and a sustained burst flat-lines into
    // something the SQI estimator degrades on.
    if (nonfinite_count != nullptr) ++*nonfinite_count;
    return last;
  }
  const double clamped =
      std::clamp(x, static_cast<double>(rails.rail_low),
                 static_cast<double>(rails.rail_high));
  last = static_cast<dsp::Sample>(std::lround(clamped));
  return last;
}

void SensorNodeClient::push(dsp::Sample x) {
  ++stats_.samples_in;
  if (monitor_.has_value())
    monitor_->push(x, pending_sink_);
  else
    stage_stream_sample(x);
}

void SensorNodeClient::push(double x) {
  push(sanitize(x, cfg_.monitor.quality, last_code_,
                &stats_.sanitized_nonfinite));
}

void SensorNodeClient::push(std::span<const dsp::Sample> xs) {
  if (monitor_.has_value()) {
    // Block fast path: the monitor's conditioner batches across the whole
    // span instead of sample-at-a-time.
    stats_.samples_in += xs.size();
    monitor_->push_block(xs, pending_sink_);
    return;
  }
  for (const dsp::Sample x : xs) push(x);
}

void SensorNodeClient::push(std::span<const double> xs) {
  for (const double x : xs) push(x);
}

void SensorNodeClient::finish() {
  if (finished_) return;
  finished_ = true;
  if (monitor_.has_value())
    monitor_->flush(pending_sink_);
  else
    flush_stage(/*final_partial=*/true);
}

void SensorNodeClient::on_pending_beat(const core::PendingBeat& pb) {
  const ecg::BeatClass verdict =
      pb.needs_classification
          ? classifier_.classify_window(pb.window, scratch_)
          : pb.beat.predicted;
  const auto cls = static_cast<std::uint8_t>(verdict);
  const auto quality = static_cast<std::uint8_t>(pb.beat.quality);
  bool escalate = false;
  if (drift_.has_value() && pb.needs_classification) {
    // classify_window above left this beat's projection in scratch_.u —
    // the tracker reuses it at zero extra projection cost. Suspect beats
    // (needs_classification == false) carry no projection and are already
    // uploaded in full anyway. Only normal verdicts can come back novel,
    // which is exactly the escalation condition: a beat the selective
    // policy would silently log as one local byte.
    const drift::DriftObservation obs = drift_->observe(
        std::span<const std::int32_t>(scratch_.u.data(), scratch_.u.size()),
        !ecg::is_pathological(verdict));
    if (obs.novel) {
      const std::uint64_t beat_no = drift_->beats();
      if (last_escalation_beat_ == 0 ||
          beat_no - last_escalation_beat_ > cfg_.drift_min_gap_beats) {
        escalate = true;
        last_escalation_beat_ = beat_no;
      }
    }
  }
  if (!ecg::is_pathological(verdict) &&
      pb.beat.quality == dsp::SignalQuality::Good) {
    if (!escalate) {
      // The paper's optimized policy: a normal beat costs one local byte
      // and zero radio. Class in bits [0,2), quality in bits [2,4).
      ++stats_.beats_local;
      local_log_.push_back(static_cast<std::uint8_t>(
          (cls & 0x3u) | ((quality & 0x3u) << 2)));
      return;
    }
    // Drift escalation: the beat classified normal but its morphology is
    // novel — upload the full window so the gateway can see it. The frame
    // is an ordinary FULL_BEAT (held unacked, retransmitted across
    // reconnects, deduped gateway-side by seq), just with a normal+Good
    // header that the plain selective policy never produces.
    ++stats_.drift_escalations;
  }
  FullBeatMsg m;
  m.r_peak = pb.beat.r_peak;
  m.beat_class = cls;
  m.quality = quality;
  std::vector<unsigned char> payload = encode_full_beat(m, pb.window);
  const std::uint64_t seq = next_beat_seq_++;
  if (unacked_.size() >= cfg_.max_unacked_full_beats) {
    unacked_.erase(unacked_.begin());
    ++stats_.frames_dropped;
  }
  unacked_.emplace(seq, UnackedBeat{payload, false});
  ++stats_.beats_uploaded;
  enqueue(FrameType::FullBeat, seq, /*seq_at_send=*/false,
          std::move(payload));
}

void SensorNodeClient::stage_stream_sample(dsp::Sample x) {
  stage_.push_back(x);
  if (stage_.size() >= cfg_.chunk_samples) flush_stage(false);
}

void SensorNodeClient::flush_stage(bool final_partial) {
  std::size_t at = 0;
  while (stage_.size() - at >= cfg_.chunk_samples) {
    enqueue(FrameType::SampleChunk, 0, /*seq_at_send=*/true,
            encode_sample_chunk(std::span<const dsp::Sample>(
                stage_.data() + at, cfg_.chunk_samples)));
    at += cfg_.chunk_samples;
  }
  if (final_partial && at < stage_.size()) {
    enqueue(FrameType::SampleChunk, 0, /*seq_at_send=*/true,
            encode_sample_chunk(std::span<const dsp::Sample>(
                stage_.data() + at, stage_.size() - at)));
    at = stage_.size();
  }
  stage_.erase(stage_.begin(), stage_.begin() + static_cast<std::ptrdiff_t>(at));
}

void SensorNodeClient::enqueue(FrameType type, std::uint64_t seq,
                               bool seq_at_send,
                               std::vector<unsigned char> payload) {
  const std::size_t frame_bytes = kHeaderBytes + payload.size();
  // Shed oldest droppable traffic (sample chunks, heartbeats) first; a
  // FULL_BEAT is never shed to make room for anything else.
  while (sendq_bytes_ + frame_bytes > cfg_.send_buffer_cap) {
    auto victim = std::find_if(sendq_.begin(), sendq_.end(),
                               [](const QueuedFrame& f) {
                                 return f.type == FrameType::SampleChunk ||
                                        f.type == FrameType::Heartbeat;
                               });
    if (victim == sendq_.end()) break;
    sendq_bytes_ -= kHeaderBytes + victim->payload.size();
    sendq_.erase(victim);
    ++stats_.frames_dropped;
  }
  if (sendq_bytes_ + frame_bytes > cfg_.send_buffer_cap) {
    ++stats_.frames_dropped;
    if (type == FrameType::FullBeat) unacked_.erase(seq);
    return;
  }
  sendq_bytes_ += frame_bytes;
  sendq_.push_back(QueuedFrame{type, seq, seq_at_send, std::move(payload)});
}

bool SensorNodeClient::fill_wire_out() {
  if (wire_head_ < wire_out_.size() || sendq_.empty()) return false;
  wire_out_.clear();
  wire_head_ = 0;
  QueuedFrame f = std::move(sendq_.front());
  sendq_.pop_front();
  sendq_bytes_ -= kHeaderBytes + f.payload.size();
  std::uint64_t seq = f.seq;
  if (f.seq_at_send)
    seq = f.type == FrameType::SampleChunk ? next_chunk_seq_++
                                           : next_heartbeat_seq_++;
  append_frame(wire_out_, f.type, seq, f.payload);
  if (f.type == FrameType::FullBeat) {
    const auto it = unacked_.find(f.seq);
    if (it != unacked_.end()) it->second.sent = true;
  }
  ++stats_.frames_tx;
  return true;
}

std::size_t SensorNodeClient::pending_bytes() const {
  return sendq_bytes_ + (wire_out_.size() - wire_head_);
}

void SensorNodeClient::send_hello() {
  wire_out_.clear();
  wire_head_ = 0;
  parser_ = FrameParser();
  HelloMsg m;
  m.node_id = cfg_.node_id;
  m.policy = cfg_.policy;
  m.window = static_cast<std::uint16_t>(
      classifier_.projector().expected_window());
  m.fs_hz = cfg_.fs_hz;
  append_frame(wire_out_, FrameType::Hello, 0, encode_hello(m));
  ++stats_.frames_tx;
}

void SensorNodeClient::on_established(Clock::time_point now) {
  state_ = LinkState::Established;
  state_since_ = now;
  last_tx_ = now;
  backoff_ms_ = std::max(1, cfg_.backoff_initial_ms);
  if (ever_established_) ++stats_.reconnects;
  ever_established_ = true;
  if (cfg_.policy == TxPolicy::StreamEverything) next_verdict_seq_ = 0;
  // A fresh connection is a fresh session: the dense chunk numbering
  // restarts, and every unacked upload goes out again (at-least-once).
  // Beats already waiting in the send queue are NOT re-enqueued — on the
  // first establishment nothing has cleared the queue, so beats pushed
  // before the link came up are still there and a blind re-add would
  // transmit every upload twice.
  next_chunk_seq_ = 0;
  for (auto& [seq, beat] : unacked_) {
    const bool queued = std::any_of(
        sendq_.begin(), sendq_.end(), [&](const QueuedFrame& f) {
          return f.type == FrameType::FullBeat && f.seq == seq;
        });
    if (queued) continue;
    if (beat.sent) ++stats_.retransmits;
    enqueue(FrameType::FullBeat, seq, /*seq_at_send=*/false, beat.payload);
  }
  // Beats classified during the backoff window are already queued with
  // HIGHER seqs than the retransmissions appended above, so the queue can
  // now hold uploads out of seq order. The gateway dedups cross-reconnect
  // escalation counting with a per-node seq high-water, which silently
  // swallows any upload arriving below an already-seen seq — FULL_BEATs
  // must hit the wire in ascending seq. Reorder the queued FULL_BEATs
  // (and only them — chunk frames keep their slots and their dense
  // at-send numbering) back into seq order.
  std::vector<std::size_t> slots;
  for (std::size_t i = 0; i < sendq_.size(); ++i)
    if (sendq_[i].type == FrameType::FullBeat) slots.push_back(i);
  std::vector<QueuedFrame> fulls;
  fulls.reserve(slots.size());
  for (const std::size_t i : slots) fulls.push_back(std::move(sendq_[i]));
  std::sort(fulls.begin(), fulls.end(),
            [](const QueuedFrame& a, const QueuedFrame& b) {
              return a.seq < b.seq;
            });
  for (std::size_t j = 0; j < slots.size(); ++j)
    sendq_[slots[j]] = std::move(fulls[j]);
}

void SensorNodeClient::disconnect(Clock::time_point now, bool backoff) {
  sock_.close();
  wire_out_.clear();
  wire_head_ = 0;
  for (const QueuedFrame& f : sendq_)
    if (f.type == FrameType::SampleChunk) ++stats_.frames_dropped;
  sendq_.clear();
  sendq_bytes_ = 0;
  parser_ = FrameParser();
  if (!backoff) {
    state_ = LinkState::Closed;
    return;
  }
  state_ = LinkState::Backoff;
  next_attempt_ = now + std::chrono::milliseconds(backoff_ms_);
  backoff_ms_ = std::min(backoff_ms_ * 2, std::max(1, cfg_.backoff_max_ms));
}

void SensorNodeClient::handle_frame(const FrameView& f) {
  const auto now = Clock::now();
  switch (f.type) {
    case FrameType::HelloAck: {
      const auto ack = decode_hello_ack(f.payload);
      if (!ack.has_value() || state_ != LinkState::AwaitAck) {
        ++stats_.parse_rejects;
        disconnect(now, true);
        return;
      }
      if (ack->status != HelloStatus::Ok) {
        ++stats_.hello_rejects;
        disconnect(now, true);
        return;
      }
      on_established(now);
      return;
    }
    case FrameType::BeatVerdict: {
      const auto v = decode_beat_verdict(f.payload);
      if (!v.has_value()) {
        ++stats_.parse_rejects;
        disconnect(now, true);
        return;
      }
      if (cfg_.policy == TxPolicy::StreamEverything) {
        ++stats_.verdicts_rx;
        if (f.seq != next_verdict_seq_) ++stats_.verdict_seq_gaps;
        next_verdict_seq_ = f.seq + 1;
        if (on_verdict_) on_verdict_(f.seq, *v);
        return;
      }
      // Selective: the verdict is the authoritative acknowledgement of
      // upload seq f.seq — release the held payload. At-least-once
      // retransmission plus the gateway's dup re-verdict means the same
      // seq can arrive again; dedup so the application sees each upload's
      // verdict exactly once.
      unacked_.erase(f.seq);
      if (!mark_verdict_seen(f.seq)) {
        ++stats_.verdict_dups;
        return;
      }
      ++stats_.verdicts_rx;
      if (on_verdict_) on_verdict_(f.seq, *v);
      return;
    }
    case FrameType::Ack: {
      const auto ack = decode_ack(f.payload);
      if (!ack.has_value()) {
        ++stats_.parse_rejects;
        disconnect(now, true);
        return;
      }
      // A FULL_BEAT's wire-level ACK confirms receipt only; the upload
      // stays held until its BEAT_VERDICT (see above) so a drop between
      // ACK and verdict cannot lose the gateway's answer.
      return;
    }
    case FrameType::Heartbeat: {
      enqueue(FrameType::Ack, f.seq, false,
              encode_ack(AckMsg{FrameType::Heartbeat}));
      return;
    }
    default:
      // Hello / SampleChunk / FullBeat / Bye never flow gateway -> node.
      ++stats_.parse_rejects;
      disconnect(now, true);
      return;
  }
}

bool SensorNodeClient::mark_verdict_seen(std::uint64_t seq) {
  if (seq < verdict_seen_below_) return false;
  if (!verdict_seen_.insert(seq).second) return false;
  // Compact the contiguous prefix: upload seqs are dense from 0, so in the
  // common in-order case the set stays empty and the watermark advances.
  while (!verdict_seen_.empty() &&
         *verdict_seen_.begin() == verdict_seen_below_) {
    verdict_seen_.erase(verdict_seen_.begin());
    ++verdict_seen_below_;
  }
  return true;
}

bool SensorNodeClient::pump_io(Clock::time_point now, int timeout_ms) {
  bool progress = false;
  const bool want_write =
      wire_head_ < wire_out_.size() ||
      (!sendq_.empty() && state_ == LinkState::Established);
  pollfd p{};
  p.fd = sock_.fd();
  p.events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
  (void)::poll(&p, 1, timeout_ms);
  if ((p.revents & POLLNVAL) != 0) {
    disconnect(now, true);
    return true;
  }

  // Write side: flush the handshake / queued frames until would-block.
  while (state_ == LinkState::AwaitAck ||
         state_ == LinkState::Established) {
    if (wire_head_ >= wire_out_.size()) {
      // Only an established link may pull application frames; the
      // handshake flushes nothing but the HELLO already staged.
      if (state_ != LinkState::Established || !fill_wire_out()) break;
    }
    const IoResult r = send_some(
        sock_.fd(), std::span<const unsigned char>(wire_out_)
                        .subspan(wire_head_));
    if (r.n > 0) {
      wire_head_ += r.n;
      stats_.bytes_tx += r.n;
      last_tx_ = now;
      progress = true;
      continue;
    }
    if (r.would_block) break;
    disconnect(now, true);
    return true;
  }

  // Read side: drain the socket, parse, dispatch.
  unsigned char buf[16384];
  while (state_ == LinkState::AwaitAck ||
         state_ == LinkState::Established) {
    const IoResult r = recv_some(sock_.fd(), buf);
    if (r.n > 0) {
      stats_.bytes_rx += r.n;
      progress = true;
      if (!parser_.feed(std::span<const unsigned char>(buf, r.n))) {
        ++stats_.parse_rejects;
        disconnect(now, true);
        return true;
      }
      FrameView f;
      FrameParser::Status st;
      while ((st = parser_.next(f)) == FrameParser::Status::Ok) {
        ++stats_.frames_rx;
        handle_frame(f);
        if (state_ != LinkState::AwaitAck &&
            state_ != LinkState::Established)
          return true;  // handle_frame tore the link down
      }
      if (st == FrameParser::Status::Corrupt) {
        ++stats_.parse_rejects;
        disconnect(now, true);
        return true;
      }
      continue;
    }
    if (r.would_block) break;
    if (r.eof) {
      peer_closed_ = true;
      disconnect(now, /*backoff=*/!closing_);
      return true;
    }
    disconnect(now, true);
    return true;
  }
  return progress;
}

bool SensorNodeClient::step_link(Clock::time_point now, int timeout_ms) {
  switch (state_) {
    case LinkState::Closed:
      return false;
    case LinkState::Idle: {
      sock_ = connect_loopback(cfg_.port);
      if (!sock_.valid()) {
        disconnect(now, true);
        return true;
      }
      state_ = LinkState::Connecting;
      state_since_ = now;
      return true;
    }
    case LinkState::Backoff: {
      if (now >= next_attempt_) {
        state_ = LinkState::Idle;
        return true;
      }
      if (timeout_ms > 0) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                next_attempt_ - now);
        std::this_thread::sleep_for(std::min(
            remaining, std::chrono::milliseconds(timeout_ms)));
      }
      return false;
    }
    case LinkState::Connecting: {
      pollfd p{};
      p.fd = sock_.fd();
      p.events = POLLOUT;
      (void)::poll(&p, 1, timeout_ms);
      if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        disconnect(now, true);
        return true;
      }
      if ((p.revents & POLLOUT) != 0) {
        if (!connect_finished(sock_.fd())) {
          disconnect(now, true);
          return true;
        }
        send_hello();
        state_ = LinkState::AwaitAck;
        state_since_ = now;
        return true;
      }
      if (now - state_since_ >
          std::chrono::milliseconds(cfg_.handshake_timeout_ms)) {
        disconnect(now, true);
        return true;
      }
      return false;
    }
    case LinkState::AwaitAck: {
      if (now - state_since_ >
          std::chrono::milliseconds(cfg_.handshake_timeout_ms)) {
        disconnect(now, true);
        return true;
      }
      return pump_io(now, timeout_ms);
    }
    case LinkState::Established: {
      if (cfg_.heartbeat_interval_ms > 0 && pending_bytes() == 0 &&
          now - last_tx_ >
              std::chrono::milliseconds(cfg_.heartbeat_interval_ms))
        enqueue(FrameType::Heartbeat, 0, /*seq_at_send=*/true, {});
      return pump_io(now, timeout_ms);
    }
  }
  return false;
}

bool SensorNodeClient::poll_once(int timeout_ms) {
  return step_link(Clock::now(), timeout_ms);
}

bool SensorNodeClient::drain(int deadline_ms) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(deadline_ms);
  while (true) {
    if (state_ == LinkState::Established && pending_bytes() == 0 &&
        unacked_.empty())
      return true;
    if (Clock::now() >= deadline)
      return pending_bytes() == 0 && unacked_.empty();
    poll_once(5);
  }
}

void SensorNodeClient::close(int deadline_ms) {
  finish();
  closing_ = true;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(deadline_ms);
  while (state_ != LinkState::Closed && Clock::now() < deadline) {
    if (state_ == LinkState::Established && !bye_sent_ &&
        pending_bytes() == 0 && unacked_.empty()) {
      enqueue(FrameType::Bye, 0, false, {});
      bye_sent_ = true;
    }
    poll_once(5);
  }
  sock_.close();
  state_ = LinkState::Closed;
}

}  // namespace hbrp::net
