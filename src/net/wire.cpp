#include "net/wire.hpp"

#include <cstring>

#include "math/check.hpp"
#include "math/crc32.hpp"
#include "math/endian.hpp"

namespace hbrp::net {

namespace {

using math::append_le;
using math::ByteReader;
using math::load_le;
using math::store_le;

constexpr std::size_t kFullBeatFixedBytes =
    8 + 1 + 1 + 2;  // r_peak, class, quality, count

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::Hello) &&
         t <= static_cast<std::uint8_t>(FrameType::ModelAck);
}

/// CRC over the first 16 header bytes (magic through seq) continued over
/// the payload — one definition shared by append_frame and the parser.
std::uint32_t frame_crc(const unsigned char* header,
                        std::span<const unsigned char> payload) {
  std::uint32_t crc = math::crc32(header, kHeaderBytes - 4);
  if (!payload.empty()) crc = math::crc32(payload.data(), payload.size(), crc);
  return crc;
}

}  // namespace

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::Hello: return "HELLO";
    case FrameType::HelloAck: return "HELLO_ACK";
    case FrameType::SampleChunk: return "SAMPLE_CHUNK";
    case FrameType::BeatVerdict: return "BEAT_VERDICT";
    case FrameType::FullBeat: return "FULL_BEAT";
    case FrameType::Heartbeat: return "HEARTBEAT";
    case FrameType::Ack: return "ACK";
    case FrameType::Bye: return "BYE";
    case FrameType::ModelPush: return "MODEL_PUSH";
    case FrameType::ModelPushPart: return "MODEL_PUSH_PART";
    case FrameType::ModelAck: return "MODEL_ACK";
  }
  return "?";
}

const char* to_string(ModelPushStatus s) {
  switch (s) {
    case ModelPushStatus::Ok: return "ok";
    case ModelPushStatus::Malformed: return "malformed";
    case ModelPushStatus::BadDigest: return "bad-digest";
    case ModelPushStatus::Duplicate: return "duplicate-version";
    case ModelPushStatus::Downgrade: return "downgrade";
    case ModelPushStatus::BadGeometry: return "bad-geometry";
    case ModelPushStatus::TooLarge: return "too-large";
    case ModelPushStatus::RegistryFull: return "registry-full";
  }
  return "?";
}

const char* to_string(TxPolicy p) {
  switch (p) {
    case TxPolicy::StreamEverything: return "stream-everything";
    case TxPolicy::Selective: return "selective";
  }
  return "?";
}

const char* to_string(HelloStatus s) {
  switch (s) {
    case HelloStatus::Ok: return "ok";
    case HelloStatus::FleetFull: return "fleet-full";
    case HelloStatus::BadWindow: return "bad-window";
    case HelloStatus::BadVersion: return "bad-version";
  }
  return "?";
}

void append_frame(std::vector<unsigned char>& out, FrameType type,
                  std::uint64_t seq, std::span<const unsigned char> payload) {
  HBRP_REQUIRE(payload.size() <= kMaxPayloadBytes,
               "wire: frame payload exceeds kMaxPayloadBytes");
  const std::size_t at = out.size();
  out.resize(at + kHeaderBytes);
  unsigned char* h = out.data() + at;
  store_le<std::uint16_t>(h, kWireMagic);
  h[2] = kProtocolVersion;
  h[3] = static_cast<std::uint8_t>(type);
  store_le<std::uint32_t>(h + 4, static_cast<std::uint32_t>(payload.size()));
  store_le<std::uint64_t>(h + 8, seq);
  store_le<std::uint32_t>(h + 16, frame_crc(h, payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<unsigned char> encode_hello(const HelloMsg& m) {
  std::vector<unsigned char> p;
  append_le(p, m.node_id);
  append_le(p, static_cast<std::uint8_t>(m.policy));
  append_le(p, m.window);
  append_le(p, m.fs_hz);
  return p;
}

std::vector<unsigned char> encode_hello_ack(const HelloAckMsg& m) {
  std::vector<unsigned char> p;
  append_le(p, m.session);
  append_le(p, static_cast<std::uint8_t>(m.status));
  return p;
}

std::vector<unsigned char> encode_beat_verdict(const BeatVerdictMsg& m) {
  std::vector<unsigned char> p;
  append_le(p, m.r_peak);
  append_le(p, m.beat_class);
  append_le(p, m.quality);
  return p;
}

std::vector<unsigned char> encode_ack(const AckMsg& m) {
  std::vector<unsigned char> p;
  append_le(p, static_cast<std::uint8_t>(m.acked));
  return p;
}

std::vector<unsigned char> encode_model_push(const ModelPushMsg& m) {
  std::vector<unsigned char> p;
  append_le(p, m.version);
  append_le(p, m.total_bytes);
  append_le(p, m.digest);
  append_le(p, m.part_count);
  append_le(p, m.chunk_bytes);
  return p;
}

std::vector<unsigned char> encode_model_ack(const ModelAckMsg& m) {
  std::vector<unsigned char> p;
  append_le(p, static_cast<std::uint8_t>(m.status));
  append_le(p, m.version);
  return p;
}

std::vector<unsigned char> encode_sample_chunk(
    std::span<const dsp::Sample> samples) {
  HBRP_REQUIRE(samples.size() <= kMaxChunkSamples,
               "wire: sample chunk exceeds kMaxChunkSamples");
  std::vector<unsigned char> p;
  p.reserve(samples.size() * sizeof(std::int32_t));
  for (const dsp::Sample s : samples)
    append_le(p, static_cast<std::int32_t>(s));
  return p;
}

std::vector<unsigned char> encode_full_beat(
    FullBeatMsg m, std::span<const dsp::Sample> window) {
  HBRP_REQUIRE(window.size() <= kMaxWindowSamples,
               "wire: beat window exceeds kMaxWindowSamples");
  m.count = static_cast<std::uint16_t>(window.size());
  std::vector<unsigned char> p;
  p.reserve(kFullBeatFixedBytes + window.size() * sizeof(std::int32_t));
  append_le(p, m.r_peak);
  append_le(p, m.beat_class);
  append_le(p, m.quality);
  append_le(p, m.count);
  for (const dsp::Sample s : window)
    append_le(p, static_cast<std::int32_t>(s));
  return p;
}

std::optional<HelloMsg> decode_hello(std::span<const unsigned char> payload) {
  if (payload.size() != 4 + 1 + 2 + 4) return std::nullopt;
  ByteReader r(payload.data(), payload.size());
  HelloMsg m;
  m.node_id = r.get<std::uint32_t>();
  const auto policy = r.get<std::uint8_t>();
  if (policy > static_cast<std::uint8_t>(TxPolicy::Selective))
    return std::nullopt;
  m.policy = static_cast<TxPolicy>(policy);
  m.window = r.get<std::uint16_t>();
  m.fs_hz = r.get<std::uint32_t>();
  return m;
}

std::optional<HelloAckMsg> decode_hello_ack(
    std::span<const unsigned char> payload) {
  if (payload.size() != 8 + 1) return std::nullopt;
  ByteReader r(payload.data(), payload.size());
  HelloAckMsg m;
  m.session = r.get<std::uint64_t>();
  const auto status = r.get<std::uint8_t>();
  if (status > static_cast<std::uint8_t>(HelloStatus::BadVersion))
    return std::nullopt;
  m.status = static_cast<HelloStatus>(status);
  return m;
}

std::optional<BeatVerdictMsg> decode_beat_verdict(
    std::span<const unsigned char> payload) {
  if (payload.size() != 8 + 1 + 1) return std::nullopt;
  ByteReader r(payload.data(), payload.size());
  BeatVerdictMsg m;
  m.r_peak = r.get<std::uint64_t>();
  m.beat_class = r.get<std::uint8_t>();
  m.quality = r.get<std::uint8_t>();
  return m;
}

std::optional<AckMsg> decode_ack(std::span<const unsigned char> payload) {
  if (payload.size() != 1) return std::nullopt;
  if (!valid_type(payload[0])) return std::nullopt;
  return AckMsg{static_cast<FrameType>(payload[0])};
}

std::optional<ModelPushMsg> decode_model_push(
    std::span<const unsigned char> payload) {
  if (payload.size() != 8 + 8 + 8 + 4 + 4) return std::nullopt;
  ByteReader r(payload.data(), payload.size());
  ModelPushMsg m;
  m.version = r.get<std::uint64_t>();
  m.total_bytes = r.get<std::uint64_t>();
  m.digest = r.get<std::uint64_t>();
  m.part_count = r.get<std::uint32_t>();
  m.chunk_bytes = r.get<std::uint32_t>();
  return m;
}

std::optional<ModelAckMsg> decode_model_ack(
    std::span<const unsigned char> payload) {
  if (payload.size() != 1 + 8) return std::nullopt;
  ByteReader r(payload.data(), payload.size());
  const auto status = r.get<std::uint8_t>();
  if (status > static_cast<std::uint8_t>(ModelPushStatus::RegistryFull))
    return std::nullopt;
  ModelAckMsg m;
  m.status = static_cast<ModelPushStatus>(status);
  m.version = r.get<std::uint64_t>();
  return m;
}

bool decode_sample_chunk(std::span<const unsigned char> payload,
                         std::vector<dsp::Sample>& out) {
  if (payload.size() % sizeof(std::int32_t) != 0) return false;
  const std::size_t count = payload.size() / sizeof(std::int32_t);
  if (count == 0 || count > kMaxChunkSamples) return false;
  const std::size_t at = out.size();
  out.resize(at + count);
  for (std::size_t i = 0; i < count; ++i)
    out[at + i] = load_le<std::int32_t>(payload.data() + i * 4);
  return true;
}

bool decode_full_beat(std::span<const unsigned char> payload, FullBeatMsg& m,
                      std::vector<dsp::Sample>& window) {
  if (payload.size() < kFullBeatFixedBytes) return false;
  ByteReader r(payload.data(), payload.size());
  m.r_peak = r.get<std::uint64_t>();
  m.beat_class = r.get<std::uint8_t>();
  m.quality = r.get<std::uint8_t>();
  m.count = r.get<std::uint16_t>();
  if (m.count > kMaxWindowSamples) return false;
  if (r.remaining() != m.count * sizeof(std::int32_t)) return false;
  window.clear();
  window.reserve(m.count);
  const unsigned char* s = r.bytes(m.count * sizeof(std::int32_t));
  for (std::size_t i = 0; i < m.count; ++i)
    window.push_back(load_le<std::int32_t>(s + i * 4));
  return true;
}

bool FrameParser::feed(std::span<const unsigned char> bytes) {
  if (corrupt_) return false;
  // One frame can occupy at most kHeaderBytes + kMaxPayloadBytes; double
  // that bounds any legitimate backlog mid-frame plus a full queued frame.
  constexpr std::size_t kMaxBacklog = 2 * (kHeaderBytes + kMaxPayloadBytes);
  if (buffered() + bytes.size() > kMaxBacklog) {
    fail("receive backlog exceeded");
    return false;
  }
  // Compact before growing: keeps the buffer from creeping even when the
  // consumer always drains everything.
  if (head_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  return true;
}

FrameParser::Status FrameParser::fail(const char* reason) {
  corrupt_ = true;
  error_ = reason;
  return Status::Corrupt;
}

FrameParser::Status FrameParser::next(FrameView& out) {
  if (corrupt_) return Status::Corrupt;
  const std::size_t avail = buffered();
  if (avail < kHeaderBytes) return Status::NeedMore;
  const unsigned char* h = buf_.data() + head_;
  if (load_le<std::uint16_t>(h) != kWireMagic) return fail("bad frame magic");
  if (h[2] != kProtocolVersion) return fail("protocol version mismatch");
  if (!valid_type(h[3])) return fail("unknown frame type");
  const auto payload_len = load_le<std::uint32_t>(h + 4);
  if (payload_len > kMaxPayloadBytes) return fail("implausible payload length");
  if (avail < kHeaderBytes + payload_len) return Status::NeedMore;
  const std::span<const unsigned char> payload(h + kHeaderBytes, payload_len);
  if (load_le<std::uint32_t>(h + 16) != frame_crc(h, payload))
    return fail("frame checksum mismatch");
  out.type = static_cast<FrameType>(h[3]);
  out.seq = load_le<std::uint64_t>(h + 8);
  out.payload = payload;
  head_ += kHeaderBytes + payload_len;
  return Status::Ok;
}

}  // namespace hbrp::net
