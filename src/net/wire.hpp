// WBSN wire protocol v1: versioned little-endian binary framing.
//
// The transport between a sensor node and the ward gateway. Every frame is
// a fixed 20-byte header followed by a bounded payload:
//
//   offset size field
//   0      2    magic 0xECB5
//   2      1    protocol version (kProtocolVersion)
//   3      1    frame type (FrameType)
//   4      4    payload length (bytes, <= kMaxPayloadBytes)
//   8      8    sequence number (meaning depends on the frame type)
//   16     4    CRC-32 over header bytes [0, 16) then the payload
//
// All multi-byte fields are little-endian via math/endian.hpp — the same
// audited codec core/model_io uses for persisted models. The CRC (the
// existing math::crc32) covers the length and sequence fields, so a
// corrupted header can never drive a bogus allocation or a silent seq jump;
// payload_len is additionally bounded before the CRC is even attempted so
// a hostile length cannot stall the parser waiting for gigabytes.
//
// Frame types and their seq/payload contracts:
//   Hello        client -> gateway   seq 0; HelloMsg (node id, TxPolicy,
//                                    window length, sample rate)
//   HelloAck     gateway -> client   seq 0; HelloAckMsg (session id, status)
//   SampleChunk  client -> gateway   seq = dense chunk counter from 0; the
//                                    gateway rejects any gap or reorder.
//                                    Payload: N x int32 ADC codes.
//   BeatVerdict  gateway -> client   seq = per-session verdict sequence
//                                    (dense, the FleetEngine delivery
//                                    order contract); BeatVerdictMsg.
//   FullBeat     client -> gateway   seq = dense beat-upload counter;
//                                    FullBeatMsg + window samples. Resent
//                                    after reconnect until its BeatVerdict
//                                    arrives (at-least-once; the gateway
//                                    re-verdicts duplicates and the client
//                                    dedupes verdicts by seq).
//   Heartbeat    either direction    seq = sender's heartbeat counter;
//                                    empty payload; peer echoes with Ack.
//   Ack          either direction    seq echoes the acknowledged frame's
//                                    seq; AckMsg names the acked type.
//   Bye          client -> gateway   graceful close: the gateway flushes
//                                    the session tail as BeatVerdict
//                                    frames, then closes the connection.
//   ModelPush    pusher -> gateway   seq 0; ModelPushMsg announces a
//                                    versioned model bundle upload: total
//                                    encoded size, content digest, chunk
//                                    size and part count. Must be the
//                                    FIRST frame of its connection — the
//                                    connection becomes a control channel
//                                    (no session is opened).
//   ModelPushPart pusher -> gateway  seq = dense part counter from 0; the
//                                    payload is the next raw slice of the
//                                    encoded bundle. The gateway rejects
//                                    any gap, reorder or overrun.
//   ModelAck     gateway -> pusher   seq 0; ModelAckMsg reports the push
//                                    outcome (Ok or a NACK reason) and the
//                                    bundle version it refers to.
//
// FrameParser is the receive side: feed() raw socket bytes, then pull
// complete frames with next(). It is incremental (handles any fragmentation
// TCP produces) and fails *sticky*: a bad magic, version, length or CRC
// marks the stream Corrupt and every later next() repeats that verdict —
// on a byte stream there is no trustworthy resynchronization point, so the
// connection must be torn down and re-established (the client's
// reconnect/backoff path).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dsp/signal.hpp"

namespace hbrp::net {

inline constexpr std::uint16_t kWireMagic = 0xECB5;
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;
/// Upper bound on one frame's payload; caps parser buffering and keeps a
/// corrupt length field from ever looking plausible. Large enough for a
/// FullBeat of kMaxWindowSamples plus its fixed fields.
inline constexpr std::size_t kMaxPayloadBytes = 1u << 16;
/// Bounds for the typed payloads (checked by the codecs on both sides).
inline constexpr std::size_t kMaxChunkSamples = 8192;
inline constexpr std::size_t kMaxWindowSamples = 4096;
/// Upper bound on one encoded model bundle streamed via MODEL_PUSH_PART
/// frames; caps the gateway's reassembly buffer per control connection.
inline constexpr std::size_t kMaxBundleBytes = 1u << 24;

enum class FrameType : std::uint8_t {
  Hello = 1,
  HelloAck = 2,
  SampleChunk = 3,
  BeatVerdict = 4,
  FullBeat = 5,
  Heartbeat = 6,
  Ack = 7,
  Bye = 8,
  ModelPush = 9,
  ModelPushPart = 10,
  ModelAck = 11,
};

const char* to_string(FrameType t);

/// Node -> gateway transmission policy (the paper's energy knob).
enum class TxPolicy : std::uint8_t {
  /// Ship every raw sample; the gateway classifies (baseline system).
  StreamEverything = 0,
  /// Classify on the node; normal beats leave a 1-byte local record,
  /// pathological/Unknown beats upload the full window (proposed system).
  Selective = 1,
};

const char* to_string(TxPolicy p);

struct HelloMsg {
  std::uint32_t node_id = 0;
  TxPolicy policy = TxPolicy::StreamEverything;
  /// Beat window length the node will upload in FullBeat frames; the
  /// gateway refuses a handshake whose window does not match its model.
  std::uint16_t window = 0;
  std::uint32_t fs_hz = 0;
};

enum class HelloStatus : std::uint8_t {
  Ok = 0,
  FleetFull = 1,     ///< admission control refused the session
  BadWindow = 2,     ///< window length does not match the gateway's model
  BadVersion = 3,    ///< protocol version mismatch
};

const char* to_string(HelloStatus s);

struct HelloAckMsg {
  std::uint64_t session = 0;
  HelloStatus status = HelloStatus::Ok;
};

struct BeatVerdictMsg {
  std::uint64_t r_peak = 0;
  std::uint8_t beat_class = 0;  ///< ecg::BeatClass
  std::uint8_t quality = 0;     ///< dsp::SignalQuality
};

/// Fixed prefix of a FullBeat payload; `count` window samples follow.
struct FullBeatMsg {
  std::uint64_t r_peak = 0;
  std::uint8_t beat_class = 0;  ///< node's local verdict (ecg::BeatClass)
  std::uint8_t quality = 0;     ///< dsp::SignalQuality at the beat
  std::uint16_t count = 0;      ///< window samples in this frame (0 when the
                                ///< signal was Suspect: escalation metadata
                                ///< only, no trustworthy window exists)
};

struct AckMsg {
  FrameType acked = FrameType::Ack;
};

/// Announces a model-bundle upload (first frame of a control connection).
/// `digest` is the FNV-1a 64-bit digest of the full encoded bundle image;
/// the gateway recomputes it over the reassembled parts before trusting
/// the payload, independently of the per-frame CRCs.
struct ModelPushMsg {
  std::uint64_t version = 0;      ///< bundle's monotonic version
  std::uint64_t total_bytes = 0;  ///< encoded bundle size (<= kMaxBundleBytes)
  std::uint64_t digest = 0;       ///< content digest of the encoded image
  std::uint32_t part_count = 0;   ///< MODEL_PUSH_PART frames that follow
  std::uint32_t chunk_bytes = 0;  ///< size of every part but the last
};

/// Push outcome. Everything except Ok is a NACK: the gateway keeps serving
/// the incumbent model and the pusher must not assume any session swapped.
enum class ModelPushStatus : std::uint8_t {
  Ok = 0,
  Malformed = 1,     ///< announcement/payload failed structural validation
  BadDigest = 2,     ///< reassembled bytes do not match the announced digest
  Duplicate = 3,     ///< version already registered with different content
  Downgrade = 4,     ///< version is older than the active bundle
  BadGeometry = 5,   ///< window/coefficient shape differs from the incumbent
  TooLarge = 6,      ///< announced size exceeds kMaxBundleBytes
  RegistryFull = 7,  ///< all registry slots are pinned or active
};

const char* to_string(ModelPushStatus s);

struct ModelAckMsg {
  ModelPushStatus status = ModelPushStatus::Ok;
  std::uint64_t version = 0;  ///< bundle version the verdict refers to
};

/// One complete, CRC-verified frame as surfaced by FrameParser::next().
/// `payload` views the parser's buffer and is valid only until the next
/// feed()/next() call — decode or copy before continuing.
struct FrameView {
  FrameType type = FrameType::Heartbeat;
  std::uint64_t seq = 0;
  std::span<const unsigned char> payload;
};

// --- encode --------------------------------------------------------------

/// Appends one complete frame (header + payload + CRC) to `out`.
void append_frame(std::vector<unsigned char>& out, FrameType type,
                  std::uint64_t seq, std::span<const unsigned char> payload);

std::vector<unsigned char> encode_hello(const HelloMsg& m);
std::vector<unsigned char> encode_hello_ack(const HelloAckMsg& m);
std::vector<unsigned char> encode_beat_verdict(const BeatVerdictMsg& m);
std::vector<unsigned char> encode_ack(const AckMsg& m);
std::vector<unsigned char> encode_model_push(const ModelPushMsg& m);
std::vector<unsigned char> encode_model_ack(const ModelAckMsg& m);
/// SampleChunk payload: `samples.size()` int32 codes (<= kMaxChunkSamples).
std::vector<unsigned char> encode_sample_chunk(
    std::span<const dsp::Sample> samples);
/// FullBeat payload: fixed fields + `window.size()` int32 codes
/// (<= kMaxWindowSamples; `m.count` is overwritten with window.size()).
std::vector<unsigned char> encode_full_beat(
    FullBeatMsg m, std::span<const dsp::Sample> window);

// --- decode --------------------------------------------------------------
// Strict: the payload must have exactly the expected size (and internally
// consistent counts); anything else returns nullopt/false and the caller
// treats the frame as a protocol violation.

std::optional<HelloMsg> decode_hello(std::span<const unsigned char> payload);
std::optional<HelloAckMsg> decode_hello_ack(
    std::span<const unsigned char> payload);
std::optional<BeatVerdictMsg> decode_beat_verdict(
    std::span<const unsigned char> payload);
std::optional<AckMsg> decode_ack(std::span<const unsigned char> payload);
std::optional<ModelPushMsg> decode_model_push(
    std::span<const unsigned char> payload);
std::optional<ModelAckMsg> decode_model_ack(
    std::span<const unsigned char> payload);
/// Appends the chunk's samples to `out`; false on malformed payload.
bool decode_sample_chunk(std::span<const unsigned char> payload,
                         std::vector<dsp::Sample>& out);
/// Decodes the fixed fields and fills `window`; false on malformed payload.
bool decode_full_beat(std::span<const unsigned char> payload, FullBeatMsg& m,
                      std::vector<dsp::Sample>& window);

// --- incremental receive -------------------------------------------------

class FrameParser {
 public:
  enum class Status : std::uint8_t {
    Ok,        ///< a frame was produced
    NeedMore,  ///< no complete frame buffered yet
    Corrupt,   ///< stream is unrecoverable (sticky; see error())
  };

  /// Appends raw received bytes. Returns false (and goes Corrupt) if the
  /// unconsumed backlog would exceed the parser's bound — a peer that
  /// never completes a frame cannot grow the buffer without limit.
  bool feed(std::span<const unsigned char> bytes);

  /// Extracts the next complete frame into `out` (payload views internal
  /// storage; valid until the next feed()/next()).
  Status next(FrameView& out);

  bool corrupt() const { return corrupt_; }
  const std::string& error() const { return error_; }

  /// Unconsumed buffered bytes (diagnostics / tests).
  std::size_t buffered() const { return buf_.size() - head_; }

 private:
  Status fail(const char* reason);

  std::vector<unsigned char> buf_;
  std::size_t head_ = 0;
  bool corrupt_ = false;
  std::string error_;
};

}  // namespace hbrp::net
