// net::SensorNodeClient — the node side of the WBSN link.
//
// A step-driven, non-blocking TCP client implementing the paper's
// selective-transmission policy, the headline of the whole methodology:
// classify on the node, and spend radio energy only where it buys clinical
// value. Two policies, chosen at handshake:
//
//   StreamEverything  every sanitized ADC code is framed into SAMPLE_CHUNK
//                     uploads; the gateway's FleetEngine classifies and
//                     streams BEAT_VERDICT frames back. The baseline
//                     system, and the path whose verdict sequence must be
//                     bit-identical to direct in-process ingest.
//   Selective         the node runs its own core::StreamingBeatMonitor
//                     (same fault-tolerant pipeline the gateway would run).
//                     A beat classified normal on Good signal becomes a
//                     1-byte verdict record in the local log — zero radio.
//                     A pathological or Unknown beat uploads the full
//                     window as FULL_BEAT so the gateway can run the
//                     detailed analysis; Suspect-signal beats upload a
//                     0-sample escalation record (no trustworthy window).
//
// Link robustness: connect/reconnect with exponential backoff (reset on a
// successful handshake), a bounded send queue that sheds oldest sample
// chunks first (counted, never silently), heartbeats on an idle link, and
// at-least-once FULL_BEAT delivery — an upload is held until its
// BEAT_VERDICT arrives (the verdict is the authoritative acknowledgement;
// the wire-level ACK only confirms receipt) and retransmitted after a
// reconnect. The gateway answers duplicates with a recomputed verdict and
// the client dedupes verdicts by upload seq, so a connection drop between
// ACK and verdict can neither lose a pathological beat's verdict nor
// deliver it twice.
// A CRC/framing violation on the receive path is treated exactly like a
// dead socket: tear down, back off, reconnect.
//
// Every byte and every decision is accounted in TxStats, which feeds the
// paper's transmission-energy model directly: radio_energy_j() converts
// bytes actually transmitted into joules via platform::PowerModel, and
// bench_net reports the selective-vs-everything bytes-on-wire ratio.
//
// Threading: not thread-safe; one owner drives push()/poll_once()/close().
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "core/streaming.hpp"
#include "drift/tracker.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "platform/energy.hpp"

namespace hbrp::net {

struct NodeConfig {
  /// Gateway port on 127.0.0.1.
  std::uint16_t port = 0;
  std::uint32_t node_id = 0;
  TxPolicy policy = TxPolicy::StreamEverything;
  std::uint32_t fs_hz = 360;
  /// Local pipeline geometry (selective policy) and the ADC rails used to
  /// sanitize the untrusted double path in both policies.
  core::MonitorConfig monitor;
  /// Samples per SAMPLE_CHUNK frame.
  std::size_t chunk_samples = 512;
  /// Cap on queued-but-unsent frame bytes; overflow sheds oldest sample
  /// chunks first and never sheds FULL_BEAT uploads silently.
  std::size_t send_buffer_cap = 1u << 20;
  /// Retransmit window: FULL_BEAT uploads held for ack (oldest dropped,
  /// counted, when exceeded).
  std::size_t max_unacked_full_beats = 256;
  int heartbeat_interval_ms = 1000;
  int backoff_initial_ms = 10;
  int backoff_max_ms = 2000;
  /// Give up on a handshake (connect or HELLO_ACK) after this long and
  /// retry with backoff.
  int handshake_timeout_ms = 2000;
  /// Opt-in drift-triggered escalation (selective policy): when set, every
  /// locally classified beat is observed by a drift::DriftTracker seeded
  /// from these centroids, and a *novel* normal+Good beat — which the
  /// selective policy would otherwise reduce to one local byte — is
  /// escalated as a FULL_BEAT upload so the gateway sees the unfamiliar
  /// waveform. Escalations ride the existing unacked/verdict-as-ack
  /// machinery, so they survive reconnects without duplicate gateway
  /// counting.
  std::shared_ptr<const drift::TrainingCentroids> drift_centroids;
  drift::DriftConfig drift;
  /// Rate limit: at least this many observed beats between two drift
  /// escalations (beat-count based, so behavior is deterministic under
  /// replay; 0 = every novel normal beat escalates).
  std::uint64_t drift_min_gap_beats = 8;
};

/// Per-link transmission accounting (single-writer: the driving thread).
struct TxStats {
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint64_t frames_tx = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t frames_dropped = 0;  ///< send-buffer overflow sheds
  std::uint64_t retransmits = 0;     ///< FULL_BEAT resends after reconnect
  std::uint64_t reconnects = 0;      ///< successful re-handshakes after a drop
  std::uint64_t parse_rejects = 0;   ///< CRC/framing violations received
  std::uint64_t hello_rejects = 0;   ///< handshakes refused by the gateway
  std::uint64_t samples_in = 0;      ///< samples pushed by the application
  std::uint64_t sanitized_nonfinite = 0;
  std::uint64_t beats_local = 0;     ///< normal beats kept as local records
  std::uint64_t beats_uploaded = 0;  ///< FULL_BEAT frames queued
  std::uint64_t verdicts_rx = 0;     ///< unique verdicts delivered to the sink
  std::uint64_t verdict_seq_gaps = 0;
  /// Selective only: repeated verdicts for an already-delivered upload seq
  /// (at-least-once retransmission + the gateway's dup re-verdict), dropped
  /// before the sink.
  std::uint64_t verdict_dups = 0;
  /// Normal+Good beats uploaded because the drift tracker flagged them
  /// novel (subset of beats_uploaded).
  std::uint64_t drift_escalations = 0;
};

/// Radio energy implied by this link's transmitted bytes (paper §IV-E):
/// the per-byte cost already amortizes protocol overhead, so bytes_tx is
/// exactly the quantity the model prices.
inline double radio_energy_j(const TxStats& s,
                             const platform::PowerModel& power) {
  return static_cast<double>(s.bytes_tx) * power.radio_j_per_byte;
}

enum class LinkState : std::uint8_t {
  Idle,         ///< not connected, ready to attempt
  Connecting,   ///< non-blocking connect in flight
  AwaitAck,     ///< HELLO sent, waiting for HELLO_ACK
  Established,  ///< handshake accepted; traffic flows
  Backoff,      ///< waiting out the reconnect delay
  Closed,       ///< close() completed; no further attempts
};

const char* to_string(LinkState s);

class SensorNodeClient {
 public:
  /// Called for every BEAT_VERDICT received (gateway classifications in
  /// StreamEverything, upload confirmations in Selective).
  using VerdictSink =
      std::function<void(std::uint64_t seq, const BeatVerdictMsg&)>;

  SensorNodeClient(embedded::EmbeddedClassifier classifier, NodeConfig cfg);

  SensorNodeClient(const SensorNodeClient&) = delete;
  SensorNodeClient& operator=(const SensorNodeClient&) = delete;

  void set_verdict_sink(VerdictSink sink) { on_verdict_ = std::move(sink); }

  /// Feeds ADC samples into the node pipeline (policy-dependent fate).
  /// The double overload sanitizes exactly like the monitor's untrusted
  /// boundary: non-finite is replaced by the last accepted code
  /// (sample-hold), everything else is clamped to the ADC rails — so the
  /// codes on the wire equal the codes a direct in-process monitor would
  /// have accepted.
  void push(dsp::Sample x);
  void push(double x);
  void push(std::span<const dsp::Sample> xs);
  void push(std::span<const double> xs);

  /// Flushes the local pipeline tail (selective) or the partial staged
  /// chunk (stream mode) into the send queue. Idempotent.
  void finish();

  /// One link step: state machine + socket I/O, waiting at most
  /// `timeout_ms` for readiness. Returns true if anything progressed
  /// (bytes moved, frames handled, state changed).
  bool poll_once(int timeout_ms);

  /// Polls until every queued frame is on the wire and every FULL_BEAT is
  /// acked, or `deadline_ms` elapses. True on full drain.
  bool drain(int deadline_ms);

  /// finish() + drain + BYE + read the verdict tail until the gateway
  /// closes (bounded by `deadline_ms`). The link ends in Closed.
  void close(int deadline_ms);

  LinkState state() const { return state_; }
  bool established() const { return state_ == LinkState::Established; }
  const TxStats& stats() const { return stats_; }
  /// One byte per normal beat kept on the node: class in the low 2 bits,
  /// SignalQuality in the next 2 — the paper's "verdict record".
  const std::vector<std::uint8_t>& local_log() const { return local_log_; }
  /// The node's drift tracker (nullptr when drift escalation is off).
  const drift::DriftTracker* drift_tracker() const {
    return drift_.has_value() ? &*drift_ : nullptr;
  }
  /// Bytes queued (send queue + partially written frame), for tests.
  std::size_t pending_bytes() const;
  std::size_t unacked_full_beats() const { return unacked_.size(); }

  /// The sanitization rule of the double path, exposed so tests and
  /// benches can precompute the exact code stream that will cross the
  /// wire. `last` carries the sample-hold state across calls.
  static dsp::Sample sanitize(double x, const dsp::QualityConfig& rails,
                              dsp::Sample& last,
                              std::uint64_t* nonfinite_count);

 private:
  using Clock = std::chrono::steady_clock;

  struct QueuedFrame {
    FrameType type = FrameType::Heartbeat;
    /// Frame seq; SampleChunk/Heartbeat get theirs assigned at send time
    /// (so shed frames never leave a gap in the dense chunk numbering).
    std::uint64_t seq = 0;
    bool seq_at_send = false;
    std::vector<unsigned char> payload;
  };

  struct UnackedBeat {
    std::vector<unsigned char> payload;
    bool sent = false;  ///< reached the wire at least once
  };

  void on_pending_beat(const core::PendingBeat& pb);
  void stage_stream_sample(dsp::Sample x);
  void flush_stage(bool final_partial);
  void enqueue(FrameType type, std::uint64_t seq, bool seq_at_send,
               std::vector<unsigned char> payload);
  bool fill_wire_out();
  bool step_link(Clock::time_point now, int timeout_ms);
  bool pump_io(Clock::time_point now, int timeout_ms);
  void handle_frame(const FrameView& f);
  /// Selective verdict dedup: true exactly once per upload seq. Seen seqs
  /// compact into a contiguous prefix (uploads are densely numbered from
  /// 0), so the set only holds the out-of-order window.
  bool mark_verdict_seen(std::uint64_t seq);
  void on_established(Clock::time_point now);
  void disconnect(Clock::time_point now, bool backoff);
  void send_hello();

  embedded::EmbeddedClassifier classifier_;
  embedded::ClassifyScratch scratch_;
  NodeConfig cfg_;
  std::optional<core::StreamingBeatMonitor> monitor_;  // selective only
  core::PendingBeatSink pending_sink_;
  std::optional<drift::DriftTracker> drift_;  // opt-in novelty escalation
  std::uint64_t last_escalation_beat_ = 0;    // drift_->beats() at last one

  // Ingest staging (stream mode) and the double-path sample-hold state.
  std::vector<dsp::Sample> stage_;
  dsp::Sample last_code_ = 0;
  bool finished_ = false;

  // Send side.
  std::deque<QueuedFrame> sendq_;
  std::size_t sendq_bytes_ = 0;
  std::vector<unsigned char> wire_out_;
  std::size_t wire_head_ = 0;
  std::uint64_t next_chunk_seq_ = 0;
  std::uint64_t next_beat_seq_ = 0;
  std::uint64_t next_heartbeat_seq_ = 0;
  std::map<std::uint64_t, UnackedBeat> unacked_;  // seq order

  // Receive side.
  FrameParser parser_;
  std::uint64_t next_verdict_seq_ = 0;
  std::uint64_t verdict_seen_below_ = 0;      // selective dedup watermark
  std::set<std::uint64_t> verdict_seen_;      // seen seqs >= the watermark
  VerdictSink on_verdict_;

  // Link state machine.
  Socket sock_;
  LinkState state_ = LinkState::Idle;
  Clock::time_point state_since_{};
  Clock::time_point next_attempt_{};
  Clock::time_point last_tx_{};
  int backoff_ms_ = 0;
  bool closing_ = false;
  bool bye_sent_ = false;
  bool peer_closed_ = false;
  bool ever_established_ = false;

  TxStats stats_;
  std::vector<std::uint8_t> local_log_;
};

}  // namespace hbrp::net
